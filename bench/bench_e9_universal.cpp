// E9 (extension) -- the universality of consensus (Section 2.3; Herlihy
// 1991): cost of implementing arbitrary types from consensus slots, and of
// the full tower whose slots are themselves built from binary consensus +
// registers.
#include <benchmark/benchmark.h>

#include "wfregs/consensus/multivalued.hpp"
#include "wfregs/consensus/universal.hpp"
#include "wfregs/registers/chain.hpp"
#include "wfregs/runtime/scheduler.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace {

using namespace wfregs;

void BM_UniversalSteps(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const bool tower = state.range(1) != 0;
  TypeSpec type = zoo::bit_type(2);
  std::vector<InvId> script{1, 0};  // write(0), read for the register
  const char* label = "bit";
  switch (which) {
    case 0:
      type = zoo::bit_type(2);
      script = {zoo::RegisterLayout{2}.write(1),
                zoo::RegisterLayout{2}.read()};
      label = "bit";
      break;
    case 1: {
      type = zoo::test_and_set_type(2);
      script = {zoo::TestAndSetLayout{}.test_and_set()};
      label = "test&set";
      break;
    }
    case 2: {
      type = zoo::queue_type(2, 2, 2);
      const zoo::QueueLayout lay{2, 2};
      script = {lay.enqueue(1), lay.dequeue()};
      label = "queue";
      break;
    }
  }
  const auto impl = consensus::universal_implementation(
      type, 0, /*log_length=*/6,
      tower ? consensus::binary_slot_factory()
            : consensus::SlotFactory{});

  std::size_t steps = 0;
  std::size_t rounds = 0;
  std::uint64_t seed = 3;
  for (auto _ : state) {
    auto sys = std::make_shared<System>(2);
    const ObjectId obj = sys->add_implemented(impl, {0, 1});
    for (ProcId p = 0; p < 2; ++p) {
      ProgramBuilder b;
      for (const InvId inv : script) b.invoke(0, lit(inv), 0);
      b.ret(lit(0));
      sys->set_toplevel(p, b.build("driver"), {obj});
    }
    Engine e{std::move(sys)};
    RandomScheduler sched(seed);
    RandomChooser chooser(seed + 1);
    seed += 2;
    run_to_completion(e, sched, chooser);
    steps += e.time();
    ++rounds;
  }
  state.SetLabel(std::string(label) + (tower ? " (binary tower)" : ""));
  state.counters["base_objects"] =
      static_cast<double>(impl->flattened_base_count());
  state.counters["steps_per_op"] =
      static_cast<double>(steps) /
      (rounds * 2 * script.size());
}

void BM_MultivaluedConsensus(benchmark::State& state) {
  const int values = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const auto impl = consensus::multivalued_from_binary(values, n);
  const zoo::MultiConsensusLayout lay{values};
  std::size_t steps = 0;
  std::size_t rounds = 0;
  std::uint64_t seed = 5;
  for (auto _ : state) {
    auto sys = std::make_shared<System>(n);
    std::vector<PortId> ports;
    for (PortId p = 0; p < n; ++p) ports.push_back(p);
    const ObjectId obj = sys->add_implemented(impl, ports);
    for (ProcId p = 0; p < n; ++p) {
      ProgramBuilder b;
      b.invoke(0, lit(lay.propose(p % values)), 0);
      b.ret(reg(0));
      sys->set_toplevel(p, b.build("driver"), {obj});
    }
    Engine e{std::move(sys)};
    RandomScheduler sched(seed);
    RandomChooser chooser(seed + 1);
    seed += 2;
    run_to_completion(e, sched, chooser);
    steps += e.time();
    ++rounds;
  }
  state.counters["steps_per_propose"] =
      static_cast<double>(steps) / (rounds * n);
  state.counters["base_objects"] =
      static_cast<double>(impl->flattened_base_count());
}

}  // namespace

BENCHMARK(BM_UniversalSteps)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->ArgNames({"type", "tower"})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MultivaluedConsensus)
    ->ArgsProduct({{2, 4, 8, 16}, {2, 3, 4}})
    ->ArgNames({"values", "n"})
    ->Unit(benchmark::kMicrosecond);
