// E14 -- the native conformance lab: the paper's constructions executing as
// real concurrent code (std::thread over cache-line-padded std::atomic base
// registers) with every recorded history fed to the model oracles.
//
// One benchmark per (workload, execution mode).  Modes:
//   free  -- threads race for real, seeded yield injection (throughput);
//   token -- token-stepped deterministic schedules (the replay mode; the
//            serialization cost is the price of bit-for-bit reproduction).
//
// Per benchmark the JSON carries:
//   rounds, histories_checked -- conformance volume per iteration
//   iface_ops_per_sec         -- interface-level operations per second
//   base_accesses_per_sec     -- atomic base-object accesses per second
//   peak_rss_bytes            -- process peak RSS
//   spilled_bytes / resident_arena_bytes -- out-of-core arena residency
//                           (0 when the run stays in-core)
//
// In-run correctness gate: every history must pass its workload's oracles
// (a violation sets error_occurred in the JSON and fails the CI bench
// gate -- a conformance FAILURE is never just a slow benchmark).
//
// Emits BENCH_e14_native.json (Google Benchmark JSON schema).
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench_json_main.hpp"
#include "wfregs/native/conformance.hpp"
#include "wfregs/native/workloads.hpp"

namespace {

using namespace wfregs;

void BM_Conformance(benchmark::State& state, const std::string& name,
                    int threads, bool deterministic) {
  const native::Workload w =
      native::make_workload(name, threads, /*ops_per_thread=*/4);
  native::ConformanceOptions opts;
  opts.rounds = deterministic ? 20 : 40;
  opts.ops_per_thread = 4;
  opts.deterministic = deterministic;

  double seconds = 0;
  std::size_t ops = 0;
  std::size_t accesses = 0;
  std::size_t histories = 0;
  for (auto _ : state) {
    opts.seed += 1;  // fresh schedules every iteration
    const auto start = std::chrono::steady_clock::now();
    const native::ConformanceReport r = native::run_conformance(w, opts);
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    if (!r.ok()) {
      state.SkipWithError(native::describe_failure(r).c_str());
      return;
    }
    ops += r.ops;
    accesses += r.base_accesses;
    histories += r.histories_checked;
    benchmark::DoNotOptimize(r.histories_checked);
  }
  state.counters["rounds"] = static_cast<double>(opts.rounds);
  state.counters["histories_checked"] =
      static_cast<double>(histories) / static_cast<double>(state.iterations());
  state.counters["iface_ops_per_sec"] =
      seconds > 0 ? static_cast<double>(ops) / seconds : 0;
  state.counters["base_accesses_per_sec"] =
      seconds > 0 ? static_cast<double>(accesses) / seconds : 0;
  wfregs::benchjson::memory_counters(state);
}

void register_all() {
  const struct {
    const char* name;
    int threads;
  } targets[] = {
      {"chain", 2},    {"chain", 4},          {"oneuse-array", 2},
      {"simpson", 2},  {"snapshot", 3},       {"shift-register", 4},
  };
  for (const auto& t : targets) {
    for (const bool det : {false, true}) {
      const std::string label = std::string("native/") + t.name + "/t" +
                                std::to_string(t.threads) +
                                (det ? "/token" : "/free");
      benchmark::RegisterBenchmark(label.c_str(), BM_Conformance, t.name,
                                   t.threads, det)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return wfregs::benchjson::run(argc, argv, "BENCH_e14_native.json");
}
