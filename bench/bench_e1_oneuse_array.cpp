// E1 -- Section 4.3 array construction cost.
//
// The paper: a bounded SRSW bit (<= r_b reads, <= w_b writes) costs
// r_b * (w_b + 1) one-use bits; a write touches r_b of them, a read touches
// at most (number of writes observed so far) + 1.
//
// This bench sweeps (r_b, w_b), reporting the space (one-use bits consumed)
// and the measured shared-memory steps per read and per write in a
// sequential workload that alternates writes and reads.
#include <benchmark/benchmark.h>

#include "wfregs/core/bounded_register.hpp"
#include "wfregs/runtime/scheduler.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace {

using namespace wfregs;

void BM_OneUseArray(benchmark::State& state) {
  const int reads = static_cast<int>(state.range(0));
  const int writes = static_cast<int>(state.range(1));
  const zoo::SrswRegisterLayout bit{2};

  std::size_t write_steps = 0;
  std::size_t read_steps = 0;
  std::size_t rounds = 0;
  for (auto _ : state) {
    const auto impl = core::bounded_bit_from_oneuse(reads, writes, 0);
    auto sys = std::make_shared<System>(2);
    const ObjectId obj = sys->add_implemented(impl, {0, 1});
    // Writer: alternate 1/0 for `writes` value-changing writes.
    {
      ProgramBuilder b;
      for (int w = 0; w < writes; ++w) {
        b.invoke(0, lit(bit.write(1 - (w % 2))), 0);
      }
      b.ret(lit(0));
      sys->set_toplevel(1, b.build("writer"), {obj});
    }
    {
      ProgramBuilder b;
      for (int r = 0; r < reads; ++r) b.invoke(0, lit(bit.read()), 0);
      b.ret(lit(0));
      sys->set_toplevel(0, b.build("reader"), {obj});
    }
    Engine e{std::move(sys)};
    // Run the writer to completion, then the reader: sequential costs.
    while (!e.done(1)) e.commit(1);
    const std::size_t after_writes = e.time();
    while (!e.done(0)) e.commit(0);
    write_steps += after_writes;
    read_steps += e.time() - after_writes;
    ++rounds;
  }
  state.counters["oneuse_bits"] = static_cast<double>(
      core::oneuse_bits_needed(reads, writes));
  state.counters["steps_per_write"] =
      writes ? static_cast<double>(write_steps) / (rounds * writes) : 0.0;
  state.counters["steps_per_read"] =
      reads ? static_cast<double>(read_steps) / (rounds * reads) : 0.0;
}

}  // namespace

BENCHMARK(BM_OneUseArray)
    ->ArgsProduct({{1, 2, 4, 8, 16, 32}, {0, 1, 2, 4, 8}})
    ->ArgNames({"r_b", "w_b"})
    ->Unit(benchmark::kMicrosecond);
