// E13 -- the verification service layer: cold batch submission (every
// verdict computed by the explorers) against warm resubmission of the same
// batch (every verdict answered from the persistent store), over an
// E7-flavoured workload -- the consensus protocol zoo under all three
// reduction modes, i.e. the same jobs the service-smoke CI lane replays.
//
// Per benchmark the JSON carries:
//   jobs            -- batch size
//   cold_ms         -- wall time to compute the whole batch cold
//   warm_ms         -- wall time to answer the whole batch from the cache
//   speedup         -- cold_ms / warm_ms
//   cache_hits/cache_misses -- scheduler metrics after both passes
//   peak_rss_bytes  -- process peak RSS after the timing loop
//   spilled_bytes / resident_arena_bytes -- out-of-core arena residency
//                           (0 when the run stays in-core)
//
// Two in-run correctness gates (either failure sets error_occurred in the
// JSON and fails the CI bench gate):
//   * bit identity -- every warm verdict's encode_verdict bytes must equal
//     the cold computation's bytes, and a direct default_runner recompute's
//     bytes (the cache can never change an answer);
//   * the speedup floor -- warm must be at least 10x faster than cold (the
//     acceptance criterion for the service layer's reason to exist).
//
// Emits BENCH_e13_service.json (Google Benchmark JSON schema).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json_main.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/registers/mrsw.hpp"
#include "wfregs/service/scheduler.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace {

using namespace wfregs;
using service::JobKind;
using service::JobScheduler;
using service::SchedulerOptions;
using service::Submitted;
using service::VerifyJob;

/// The batch: the consensus protocol zoo x reduction modes (many small
/// jobs), plus the deep-nesting register workload -- linearizability of an
/// MRSW register built from Simpson SRSW registers built from safe bits --
/// under each reduction mode (few large jobs).  Every entry is a distinct
/// job key.
std::vector<VerifyJob> make_batch() {
  std::vector<VerifyJob> batch;
  const std::vector<std::shared_ptr<const Implementation>> zoo = {
      consensus::from_test_and_set(),
      consensus::from_queue(),
      consensus::from_fetch_and_add(),
  };
  for (const auto& impl : zoo) {
    for (const Reduction r : {Reduction::kNone, Reduction::kSleep,
                              Reduction::kSleepSymmetry}) {
      VerifyJob job;
      job.kind = JobKind::kConsensus;
      job.impl = impl;
      job.options.reduction = r;
      batch.push_back(job);
    }
  }
  const zoo::MrswRegisterLayout lay{2, 2};
  const auto mrsw = registers::mrsw_register(
      2, 2, 0, 2, registers::simpson_srsw_factory());
  for (const Reduction r : {Reduction::kNone, Reduction::kSleep,
                            Reduction::kSleepSymmetry}) {
    VerifyJob job;
    job.kind = JobKind::kLinearizable;
    job.impl = mrsw;
    job.scripts = {{lay.read()}, {lay.read()}, {lay.write(1)}};
    job.options.reduction = r;
    batch.push_back(job);
  }
  return batch;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void BM_WarmVsCold(benchmark::State& state) {
  const std::string store = "/tmp/wfregs_bench_e13_" +
                            std::to_string(::getpid()) + ".log";
  const std::vector<VerifyJob> batch = make_batch();
  const JobScheduler::Runner fresh = JobScheduler::default_runner(1);
  const std::atomic<bool> no_cancel{false};

  double cold_ms = 0;
  double warm_ms = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t snapshot_retries = 0;
  for (auto _ : state) {
    std::remove(store.c_str());
    SchedulerOptions options;
    options.workers = 1;
    options.store_path = store;
    JobScheduler sched(options);

    // Cold pass: everything computed.
    const auto cold_start = std::chrono::steady_clock::now();
    std::vector<Submitted> cold;
    cold.reserve(batch.size());
    for (const VerifyJob& job : batch) cold.push_back(sched.submit(job));
    std::vector<std::vector<std::uint8_t>> cold_bytes;
    cold_bytes.reserve(batch.size());
    for (const Submitted& s : cold) {
      cold_bytes.push_back(service::encode_verdict(s.result.get()));
    }
    cold_ms = ms_since(cold_start);

    // Warm pass: everything answered from the store.
    const auto warm_start = std::chrono::steady_clock::now();
    std::vector<Submitted> warm;
    warm.reserve(batch.size());
    for (const VerifyJob& job : batch) warm.push_back(sched.submit(job));
    std::vector<std::vector<std::uint8_t>> warm_bytes;
    warm_bytes.reserve(batch.size());
    for (const Submitted& s : warm) {
      warm_bytes.push_back(service::encode_verdict(s.result.get()));
    }
    warm_ms = ms_since(warm_start);

    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!warm[i].cached) {
        state.SkipWithError(("warm job " + std::to_string(i) +
                             " missed the cache")
                                .c_str());
        return;
      }
      if (warm_bytes[i] != cold_bytes[i]) {
        state.SkipWithError(("warm/cold verdict bytes differ on job " +
                             std::to_string(i))
                                .c_str());
        return;
      }
    }
    const service::Metrics m = sched.metrics();
    hits = m.cache_hits;
    misses = m.cache_misses;
    snapshot_retries = m.snapshot_retries;
    benchmark::DoNotOptimize(warm_bytes);
  }

  // Bit identity against a recompute outside the scheduler entirely: the
  // store round-trip must not perturb a single byte.
  {
    std::remove(store.c_str());
    SchedulerOptions options;
    options.workers = 1;
    options.store_path = store;
    JobScheduler sched(options);
    for (const VerifyJob& job : batch) sched.submit(job).result.wait();
    for (const VerifyJob& job : batch) {
      const Submitted cached = sched.submit(job);
      if (!cached.cached ||
          service::encode_verdict(cached.result.get()) !=
              service::encode_verdict(fresh(job, no_cancel))) {
        state.SkipWithError("cached verdict differs from direct recompute");
        return;
      }
    }
  }
  std::remove(store.c_str());

  const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0;
  if (speedup < 10.0) {
    state.SkipWithError(("warm speedup " + std::to_string(speedup) +
                         "x below the 10x floor")
                            .c_str());
    return;
  }
  state.counters["jobs"] = static_cast<double>(batch.size());
  state.counters["cold_ms"] = cold_ms;
  state.counters["warm_ms"] = warm_ms;
  state.counters["speedup"] = speedup;
  state.counters["cache_hits"] = static_cast<double>(hits);
  state.counters["cache_misses"] = static_cast<double>(misses);
  // Collect invalidations seen by the scheduler's wait-free metrics
  // aggregator while the workers were publishing (contention telemetry,
  // not gated).
  state.counters["snapshot_retries"] = static_cast<double>(snapshot_retries);
  benchjson::memory_counters(state);
}

void register_all() {
  benchmark::RegisterBenchmark("service/zoo_x_reductions/warm_vs_cold",
                               BM_WarmVsCold)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return wfregs::benchjson::run(argc, argv, "BENCH_e13_service.json");
}
