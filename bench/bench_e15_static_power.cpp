// E15 -- the static consensus-power fast-path: an E13-flavoured batch of
// consensus jobs through the JobScheduler where a fraction of the jobs
// (register-only protocols with the static-power flag set) are answered by
// the certified classifier without any exploration, against the same jobs
// fully explored.
//
// Per benchmark the JSON carries:
//   jobs             -- batch size
//   static_jobs      -- jobs submitted with the static-power flag
//   static_decisions -- scheduler metric: verdicts decided statically
//   static_fraction  -- static_decisions / jobs
//   batch_ms         -- wall time for the whole batch with the fast-path on
//   static_ms        -- wall time to answer the static-eligible jobs via the
//                       fast-path (direct runner, no scheduler overhead)
//   explored_ms      -- the same jobs fully explored (direct runner)
//   speedup          -- explored_ms / static_ms (same jobs, both paths)
//   cert_check_us    -- mean time to re-validate one certificate with the
//                       independent checker (the fast-path's trust step)
//   peak_rss_bytes   -- process peak RSS after the timing loop
//   spilled_bytes / resident_arena_bytes -- out-of-core arena residency
//                           (0 when the run stays in-core)
//
// Three in-run correctness gates (any failure sets error_occurred in the
// JSON and fails the CI bench gate):
//   * the skip-rate floor -- at least 30% of the batch must be decided
//     statically (the acceptance criterion for the fast-path's existence);
//   * decision identity -- for every statically decided job, the
//     decision_projection of the static verdict must encode byte-identically
//     to the decision_projection of a full-exploration recompute of the same
//     implementation (the fast-path can never change an answer, only skip
//     the work; stats and provenance legitimately differ and are masked by
//     the projection);
//   * certificate validity -- every certificate the classifier emits for the
//     zoo sweep must pass the independent checker.
//
// Emits BENCH_e15_static_power.json (Google Benchmark JSON schema).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json_main.hpp"
#include "wfregs/analysis/consensus_power.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/service/scheduler.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace {

using namespace wfregs;
using service::JobKind;
using service::JobScheduler;
using service::Provenance;
using service::SchedulerOptions;
using service::Submitted;
using service::Verdict;
using service::VerifyJob;

/// The batch: the explored consensus zoo (tas/queue/faa x reduction modes)
/// plus the register-only protocols flagged for the static fast-path, under
/// the same reduction modes.  9 explored + 6 static = 40% static-eligible.
std::vector<VerifyJob> make_batch() {
  std::vector<VerifyJob> batch;
  const std::vector<std::shared_ptr<const Implementation>> explored = {
      consensus::from_test_and_set(),
      consensus::from_queue(),
      consensus::from_fetch_and_add(),
  };
  const std::vector<std::shared_ptr<const Implementation>> statically = {
      consensus::registers_only_attempt(2),
      consensus::registers_only_attempt(3),
  };
  for (const auto& impl : explored) {
    for (const Reduction r : {Reduction::kNone, Reduction::kSleep,
                              Reduction::kSleepSymmetry}) {
      VerifyJob job;
      job.kind = JobKind::kConsensus;
      job.impl = impl;
      job.options.reduction = r;
      batch.push_back(job);
    }
  }
  for (const auto& impl : statically) {
    for (const Reduction r : {Reduction::kNone, Reduction::kSleep,
                              Reduction::kSleepSymmetry}) {
      VerifyJob job;
      job.kind = JobKind::kConsensus;
      job.impl = impl;
      job.options.reduction = r;
      job.static_power = true;
      batch.push_back(job);
    }
  }
  return batch;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void BM_StaticVsExplored(benchmark::State& state) {
  const std::string store = "/tmp/wfregs_bench_e15_" +
                            std::to_string(::getpid()) + ".log";
  const std::vector<VerifyJob> batch = make_batch();
  const JobScheduler::Runner fresh = JobScheduler::default_runner(1);
  const std::atomic<bool> no_cancel{false};

  double batch_ms = 0;
  double static_ms = 0;
  double explored_ms = 0;
  std::uint64_t static_decisions = 0;
  std::size_t static_jobs = 0;
  for (const VerifyJob& job : batch) {
    if (job.static_power) ++static_jobs;
  }

  for (auto _ : state) {
    std::remove(store.c_str());
    SchedulerOptions options;
    options.workers = 1;
    options.store_path = store;
    JobScheduler sched(options);

    // The whole batch with the fast-path armed on the eligible jobs.
    const auto batch_start = std::chrono::steady_clock::now();
    std::vector<Submitted> submitted;
    submitted.reserve(batch.size());
    for (const VerifyJob& job : batch) submitted.push_back(sched.submit(job));
    std::vector<Verdict> verdicts;
    verdicts.reserve(batch.size());
    for (const Submitted& s : submitted) verdicts.push_back(s.result.get());
    batch_ms = ms_since(batch_start);
    static_decisions = sched.metrics().static_decisions;

    // Gate: every statically decided verdict must project byte-identically
    // to a full-exploration recompute.  Both paths run through the direct
    // runner here, timed per job, so static_ms / explored_ms compare the
    // SAME work with and without the fast-path.
    static_ms = 0;
    explored_ms = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!batch[i].static_power) continue;
      if (verdicts[i].provenance != Provenance::kStatic) {
        state.SkipWithError(("static-power job " + std::to_string(i) +
                             " fell back to exploration")
                                .c_str());
        return;
      }
      const auto static_start = std::chrono::steady_clock::now();
      const Verdict statically = fresh(batch[i], no_cancel);
      static_ms += ms_since(static_start);
      VerifyJob full = batch[i];
      full.static_power = false;
      const auto explored_start = std::chrono::steady_clock::now();
      const Verdict recomputed = fresh(full, no_cancel);
      explored_ms += ms_since(explored_start);
      if (statically.provenance != Provenance::kStatic) {
        state.SkipWithError("direct static rerun fell back to exploration");
        return;
      }
      if (service::encode_verdict(service::decision_projection(verdicts[i])) !=
              service::encode_verdict(
                  service::decision_projection(recomputed)) ||
          service::encode_verdict(service::decision_projection(statically)) !=
              service::encode_verdict(
                  service::decision_projection(recomputed))) {
        state.SkipWithError(("static/explored decisions differ on job " +
                             std::to_string(i))
                                .c_str());
        return;
      }
    }
    benchmark::DoNotOptimize(verdicts);
  }
  std::remove(store.c_str());

  const double fraction =
      batch.empty() ? 0
                    : static_cast<double>(static_decisions) /
                          static_cast<double>(batch.size());
  if (fraction < 0.30) {
    state.SkipWithError(("static fraction " + std::to_string(fraction) +
                         " below the 0.30 floor")
                            .c_str());
    return;
  }

  // Certificate-check cost: classify the deterministic zoo and time the
  // independent checker over every emitted certificate.
  const std::vector<TypeSpec> zoo_types = {
      zoo::bit_type(2),          zoo::srsw_register_type(4),
      zoo::test_and_set_type(2), zoo::cas_type(2, 2),
      zoo::sticky_bit_type(2),   zoo::queue_type(2, 2, 2),
      zoo::consensus_type(2),    zoo::port_flag_type(2),
      zoo::shift_register_type(2, 2),
  };
  std::size_t checks = 0;
  double check_us_total = 0;
  for (const TypeSpec& t : zoo_types) {
    const auto r = analysis::classify_consensus_power(t);
    for (const auto& claim : r.claims) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto check = analysis::check_certificate(t, claim);
      check_us_total += ms_since(t0) * 1000.0;
      ++checks;
      if (!check.ok) {
        state.SkipWithError(("certificate rejected for " + t.name() + ": " +
                             check.detail)
                                .c_str());
        return;
      }
    }
  }

  state.counters["jobs"] = static_cast<double>(batch.size());
  state.counters["static_jobs"] = static_cast<double>(static_jobs);
  state.counters["static_decisions"] = static_cast<double>(static_decisions);
  state.counters["static_fraction"] = fraction;
  state.counters["batch_ms"] = batch_ms;
  state.counters["static_ms"] = static_ms;
  state.counters["explored_ms"] = explored_ms;
  state.counters["speedup"] = static_ms > 0 ? explored_ms / static_ms : 0;
  state.counters["cert_check_us"] =
      checks > 0 ? check_us_total / static_cast<double>(checks) : 0;
  benchjson::memory_counters(state);
}

void register_all() {
  benchmark::RegisterBenchmark("static_power/zoo_batch/static_vs_explored",
                               BM_StaticVsExplored)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return wfregs::benchjson::run(argc, argv, "BENCH_e15_static_power.json");
}
