// Shared main() helper for benchmarks that emit a machine-readable
// BENCH_<name>.json next to the working directory, in Google Benchmark's
// JSON schema, while keeping the human-readable console output.  Linked
// against benchmark::benchmark (NOT benchmark_main); the binary defines
//   int main(int argc, char** argv) {
//     return wfregs::benchjson::run(argc, argv, "BENCH_<name>.json");
//   }
#ifndef WFREGS_BENCH_JSON_MAIN_HPP
#define WFREGS_BENCH_JSON_MAIN_HPP

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "wfregs/concurrent/contention.hpp"
#include "wfregs/storage/spill_arena.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace wfregs::benchjson {

// Emits the lock-free engine's contention telemetry as benchmark counters,
// one name per ContentionCounters field, so every BENCH_*.json that runs a
// parallel exploration reports cas_retries / steal_attempts / steals /
// snapshot_retries under the same keys (check_bench_regression.py floors
// key on them).
inline void contention_counters(benchmark::State& state,
                                const concurrent::ContentionCounters& c) {
  state.counters["cas_retries"] = static_cast<double>(c.cas_retries);
  state.counters["steal_attempts"] = static_cast<double>(c.steal_attempts);
  state.counters["steals"] = static_cast<double>(c.steals);
  state.counters["snapshot_retries"] = static_cast<double>(c.snapshot_retries);
}

// Peak resident-set size of this process in bytes, 0 where unsupported.
// Monotone over the process lifetime, so benchmarks that want a meaningful
// per-workload reading must run before anything more memory-hungry (see
// bench_e12_compiled_core.cpp, which orders the lean explorer first).
inline double peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss);  // already bytes on macOS
#else
  return static_cast<double>(ru.ru_maxrss) * 1024.0;  // KiB on Linux
#endif
#else
  return 0.0;
#endif
}

// The standard memory triple for every BENCH_*.json: process peak RSS plus
// the out-of-core arena residency telemetry (storage/spill_arena.hpp's
// process-wide accounting).  In-core benchmarks report both arena counters
// as 0; out-of-core ones show how much of the interned state was evicted
// (spilled_bytes) vs resident (resident_arena_bytes) when the counter was
// sampled.  check_bench_regression.py can floor or ceiling any of the
// three.
inline void memory_counters(benchmark::State& state) {
  state.counters["peak_rss_bytes"] = peak_rss_bytes();
  const storage::ArenaGlobalStats arenas = storage::arena_global_stats();
  state.counters["spilled_bytes"] = static_cast<double>(arenas.spilled_bytes);
  state.counters["resident_arena_bytes"] =
      static_cast<double>(arenas.resident_bytes);
}

inline int run(int argc, char** argv, const char* json_path) {
  // Inject the output flags (unless the caller already passed their own)
  // and let the library drive both the console and the JSON file reporter.
  std::vector<std::string> args(argv, argv + argc);
  const bool has_out = std::any_of(args.begin(), args.end(), [](auto& a) {
    return a.rfind("--benchmark_out=", 0) == 0;
  });
  if (!has_out) {
    args.push_back(std::string("--benchmark_out=") + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> cargs;
  for (auto& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!has_out) std::cout << "wrote " << json_path << "\n";
  benchmark::Shutdown();
  return 0;
}

}  // namespace wfregs::benchjson

#endif  // WFREGS_BENCH_JSON_MAIN_HPP
