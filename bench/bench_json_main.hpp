// Shared main() helper for benchmarks that emit a machine-readable
// BENCH_<name>.json next to the working directory, in Google Benchmark's
// JSON schema, while keeping the human-readable console output.  Linked
// against benchmark::benchmark (NOT benchmark_main); the binary defines
//   int main(int argc, char** argv) {
//     return wfregs::benchjson::run(argc, argv, "BENCH_<name>.json");
//   }
#ifndef WFREGS_BENCH_JSON_MAIN_HPP
#define WFREGS_BENCH_JSON_MAIN_HPP

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

namespace wfregs::benchjson {

inline int run(int argc, char** argv, const char* json_path) {
  // Inject the output flags (unless the caller already passed their own)
  // and let the library drive both the console and the JSON file reporter.
  std::vector<std::string> args(argv, argv + argc);
  const bool has_out = std::any_of(args.begin(), args.end(), [](auto& a) {
    return a.rfind("--benchmark_out=", 0) == 0;
  });
  if (!has_out) {
    args.push_back(std::string("--benchmark_out=") + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> cargs;
  for (auto& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!has_out) std::cout << "wrote " << json_path << "\n";
  benchmark::Shutdown();
  return 0;
}

}  // namespace wfregs::benchjson

#endif  // WFREGS_BENCH_JSON_MAIN_HPP
