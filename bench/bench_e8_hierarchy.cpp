// E8 -- the hierarchy survey: how expensive is gathering verified
// h_1 / h_1^r / h_m evidence for a type, and does Theorem 5's h_m = h_m^r
// prediction hold across the zoo?
#include <benchmark/benchmark.h>

#include "wfregs/hierarchy/hierarchy.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace {

using namespace wfregs;

void BM_ClassifyType(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  TypeSpec type = zoo::bit_type(2);
  switch (which) {
    case 0:
      type = zoo::bit_type(2);
      break;
    case 1:
      type = zoo::test_and_set_type(2);
      break;
    case 2:
      type = zoo::queue_type(2, 2, 2);
      break;
    case 3:
      type = zoo::sticky_bit_type(2);
      break;
    case 4:
      type = zoo::mod_counter_type(3, 2);
      break;
  }
  hierarchy::ClassifyOptions options;
  options.probe_h1 = state.range(1) != 0;
  options.h1_probe_depth = 2;
  hierarchy::HierarchyRow row;
  for (auto _ : state) {
    row = hierarchy::classify_type(type, options);
    benchmark::DoNotOptimize(row.theorem5_consistent);
  }
  state.SetLabel(type.name());
  state.counters["h1r_ge_2"] = row.h1r_at_least_2 ? 1 : 0;
  state.counters["hm_ge_2"] = row.hm_at_least_2 ? 1 : 0;
  state.counters["thm5_consistent"] = row.theorem5_consistent ? 1 : 0;
}

void BM_SurveyZoo(benchmark::State& state) {
  hierarchy::ClassifyOptions options;
  options.probe_h1 = false;
  std::vector<hierarchy::HierarchyRow> rows;
  for (auto _ : state) {
    rows = hierarchy::survey_zoo(options);
    benchmark::DoNotOptimize(rows.size());
  }
  int consistent = 0;
  for (const auto& row : rows) consistent += row.theorem5_consistent ? 1 : 0;
  state.counters["types"] = static_cast<double>(rows.size());
  state.counters["thm5_consistent"] = static_cast<double>(consistent);
}

}  // namespace

BENCHMARK(BM_ClassifyType)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0}})
    ->ArgNames({"type", "probe_h1"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClassifyType)
    ->Args({1, 1})
    ->ArgNames({"type", "probe_h1"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_SurveyZoo)->Unit(benchmark::kMillisecond);
