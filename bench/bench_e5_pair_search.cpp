// E5 -- Section 5.1/5.2 witness searches over random finite types.
//
// Sweeps the shape of random deterministic types and measures:
//   * the cost of the Section 5.2 minimal-non-trivial-pair search (Mealy
//     partition refinement + pairwise BFS);
//   * how often random types are trivial;
//   * the length distribution of minimal read sequences (Lemma 2-4 shape).
#include <benchmark/benchmark.h>

#include "wfregs/typesys/random_type.hpp"
#include "wfregs/typesys/triviality.hpp"

namespace {

using namespace wfregs;

void BM_PairSearch(benchmark::State& state) {
  RandomTypeParams params;
  params.ports = static_cast<int>(state.range(0));
  params.num_states = static_cast<int>(state.range(1));
  params.num_invocations = static_cast<int>(state.range(2));
  params.num_responses = 2;

  std::uint64_t seed = 0;
  std::size_t trivial = 0;
  std::size_t total = 0;
  std::size_t seq_len_sum = 0;
  std::size_t seq_len_max = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const auto t = random_type(params, seed++);
    state.ResumeTiming();
    const auto pair = find_nontrivial_pair(t);
    benchmark::DoNotOptimize(pair.has_value());
    state.PauseTiming();
    ++total;
    if (!pair) {
      ++trivial;
    } else {
      seq_len_sum += pair->read_seq.size();
      seq_len_max = std::max(seq_len_max, pair->read_seq.size());
    }
    state.ResumeTiming();
  }
  state.counters["trivial_frac"] =
      total ? static_cast<double>(trivial) / total : 0.0;
  state.counters["avg_seq_len"] =
      (total - trivial)
          ? static_cast<double>(seq_len_sum) / (total - trivial)
          : 0.0;
  state.counters["max_seq_len"] = static_cast<double>(seq_len_max);
}

void BM_ObliviousWitness(benchmark::State& state) {
  RandomTypeParams params;
  params.ports = 2;
  params.num_states = static_cast<int>(state.range(0));
  params.num_invocations = static_cast<int>(state.range(1));
  params.num_responses = 2;
  params.oblivious = true;

  std::uint64_t seed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const auto t = random_type(params, seed++);
    state.ResumeTiming();
    benchmark::DoNotOptimize(find_oblivious_witness(t).has_value());
  }
}

}  // namespace

BENCHMARK(BM_PairSearch)
    ->ArgsProduct({{2, 3}, {4, 8, 16, 32, 64}, {2, 4}})
    ->ArgNames({"ports", "states", "invs"})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ObliviousWitness)
    ->ArgsProduct({{4, 16, 64, 256}, {2, 4}})
    ->ArgNames({"states", "invs"})
    ->Unit(benchmark::kMicrosecond);
