// E16 -- the verification fleet: a coordinator + two worker processes'
// worth of in-process fleet (real TCP sockets, real frames, in-process
// threads) serving the E13 consensus-zoo batch, against a cold single
// daemon computing the same batch alone.
//
// Phases per iteration:
//   * cold single   -- one JobScheduler (the PR-5 daemon's engine) computes
//     the whole batch from scratch; its encode_verdict bytes are the
//     reference.
//   * cold fleet    -- coordinator + 2 workers over an ephemeral TCP port:
//     one batch frame in, jobs sharded/stolen across both workers, results
//     replicated into the coordinator store.
//   * warm fleet    -- the identical batch resubmitted: every job answered
//     "cached" from the coordinator store in one frame pair.
//   * backpressure  -- a workerless coordinator with admission_capacity 1
//     must answer "rejected" (the protocol's EAGAIN), never queue
//     unboundedly.
//
// Per benchmark the JSON carries:
//   jobs                 -- batch size
//   cold_single_ms       -- single-scheduler cold wall time
//   cold_fleet_ms        -- fleet cold wall time (includes dispatch RTTs)
//   warm_fleet_ms        -- fleet warm wall time (pure cache, one RTT)
//   speedup              -- cold_single_ms / warm_fleet_ms
//   dispatched/steals    -- fleet dispatch counters (steals <= dispatched)
//   warm_origins         -- distinct workers credited with warm cache hits
//   min_origin_hits      -- smallest per-origin hit count (>= 1 proves
//                           BOTH workers' verdicts warmed the fleet cache)
//   cross_worker_hits    -- total warm hits attributed to workers
//   admission_rejections -- from the backpressure phase
//   fleet_beats_cold_single -- 1 iff warm_fleet_ms < cold_single_ms
//   peak_rss_bytes       -- process peak RSS after the timing loop
//   spilled_bytes / resident_arena_bytes -- out-of-core arena residency
//                           (0 when the run stays in-core)
//
// In-run correctness gates (each failure sets error_occurred in the JSON,
// which fails the CI gate):
//   * bit identity -- every verdict in the coordinator store after the
//     fleet run must equal the cold single computation's encoded bytes;
//   * the warm batch must answer every job "cached";
//   * steals <= dispatched (counter sanity);
//   * the warm fleet batch must beat the cold single daemon (the fleet's
//     reason to exist: a warmed fleet answers faster than recomputing).
// The deterministic floors (warm_origins, min_origin_hits,
// admission_rejections) are gated by check_bench_regression.py --suite
// e16_fleet against bench/baseline.json suites.e16_fleet.min_counters.
//
// Emits BENCH_e16_fleet.json (Google Benchmark JSON schema).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json_main.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/registers/mrsw.hpp"
#include "wfregs/service/client.hpp"
#include "wfregs/service/fleet.hpp"
#include "wfregs/service/scheduler.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace {

using namespace wfregs;
using namespace std::chrono_literals;
using service::Client;
using service::Coordinator;
using service::CoordinatorOptions;
using service::JobKey;
using service::JobKind;
using service::JobScheduler;
using service::SchedulerOptions;
using service::VerifyJob;
using service::Worker;
using service::WorkerOptions;

/// The E13 batch: the consensus protocol zoo under every reduction mode
/// (many small jobs) plus the deep-nesting MRSW-register linearizability
/// workload (few large jobs -- the compute that makes recomputing
/// expensive and a warmed fleet cache worth having).  Twelve distinct job
/// keys, spread across both fleet shards by the content hash.
std::vector<VerifyJob> make_batch() {
  std::vector<VerifyJob> batch;
  for (const auto& impl :
       {consensus::from_test_and_set(), consensus::from_queue(),
        consensus::from_fetch_and_add()}) {
    for (const Reduction r : {Reduction::kNone, Reduction::kSleep,
                              Reduction::kSleepSymmetry}) {
      VerifyJob job;
      job.kind = JobKind::kConsensus;
      job.impl = impl;
      job.options.reduction = r;
      batch.push_back(job);
    }
  }
  const zoo::MrswRegisterLayout lay{2, 2};
  const auto mrsw = registers::mrsw_register(
      2, 2, 0, 2, registers::simpson_srsw_factory());
  for (const Reduction r : {Reduction::kNone, Reduction::kSleep,
                            Reduction::kSleepSymmetry}) {
    VerifyJob job;
    job.kind = JobKind::kLinearizable;
    job.impl = mrsw;
    job.scripts = {{lay.read()}, {lay.read()}, {lay.write(1)}};
    job.options.reduction = r;
    batch.push_back(job);
  }
  return batch;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::uint64_t json_u64(const std::string& json, const std::string& name) {
  const std::string tag = "\"" + name + "\":";
  const std::size_t pos = json.find(tag);
  if (pos == std::string::npos) return 0;
  std::uint64_t v = 0;
  for (std::size_t k = pos + tag.size();
       k < json.size() && json[k] >= '0' && json[k] <= '9'; ++k) {
    v = v * 10 + static_cast<std::uint64_t>(json[k] - '0');
  }
  return v;
}

bool wait_for(const std::function<bool()>& pred,
              std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

std::size_t count_of(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

void BM_FleetWarmVsColdSingle(benchmark::State& state) {
  const std::string store = "/tmp/wfregs_bench_e16_" +
                            std::to_string(::getpid()) + ".log";
  const std::vector<VerifyJob> batch = make_batch();
  std::vector<std::string> texts;
  std::vector<JobKey> keys;
  for (const VerifyJob& job : batch) {
    texts.push_back(service::print_job(job));
    keys.push_back(service::hash_job_text(texts.back()));
  }

  double cold_single_ms = 0;
  double cold_fleet_ms = 0;
  double warm_fleet_ms = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t steals = 0;
  std::uint64_t warm_origins = 0;
  std::uint64_t min_origin_hits = 0;
  std::uint64_t cross_worker_hits = 0;
  std::uint64_t admission_rejections = 0;

  for (auto _ : state) {
    // --- Cold single daemon: the reference computation and its bytes.
    std::vector<std::vector<std::uint8_t>> cold_bytes;
    {
      SchedulerOptions options;
      options.workers = 1;
      JobScheduler single(options);
      const auto start = std::chrono::steady_clock::now();
      std::vector<service::Submitted> submitted;
      for (const VerifyJob& job : batch) submitted.push_back(single.submit(job));
      for (const service::Submitted& s : submitted) {
        cold_bytes.push_back(service::encode_verdict(s.result.get()));
      }
      cold_single_ms = ms_since(start);
    }

    // --- The fleet: coordinator + two workers over an ephemeral port.
    std::remove(store.c_str());
    CoordinatorOptions copt;
    copt.listen_tcp = "tcp:127.0.0.1:0";
    copt.store_path = store;
    copt.drain_grace = 5000ms;
    Coordinator coordinator(std::move(copt));
    std::thread coord_thread([&coordinator] { (void)coordinator.run(); });
    const std::string endpoint =
        "tcp:127.0.0.1:" + std::to_string(coordinator.tcp_port());
    std::vector<std::unique_ptr<Worker>> workers;
    std::vector<std::thread> worker_threads;
    for (const char* name : {"fleet-a", "fleet-b"}) {
      WorkerOptions wopt;
      wopt.connect = endpoint;
      wopt.name = name;
      wopt.scheduler.workers = 1;
      workers.push_back(std::make_unique<Worker>(std::move(wopt)));
      worker_threads.emplace_back(
          [w = workers.back().get()] { (void)w->run(); });
    }
    const auto join_fleet = [&] {
      for (auto& t : worker_threads) {
        if (t.joinable()) t.join();
      }
      if (coord_thread.joinable()) coord_thread.join();
    };

    Client client(endpoint);
    if (!wait_for([&] { return json_u64(client.stats(), "workers") == 2; },
                  10s)) {
      state.SkipWithError("workers never registered with the coordinator");
      client.shutdown();
      join_fleet();
      break;
    }

    // Cold fleet pass: one batch frame, jobs sharded/stolen across both
    // workers, results replicated back.
    const auto cold_start = std::chrono::steady_clock::now();
    client.submit_batch(texts);
    const bool fleet_done = wait_for(
        [&] { return json_u64(client.stats(), "completed") == texts.size(); },
        60s);
    cold_fleet_ms = ms_since(cold_start);
    if (!fleet_done) {
      state.SkipWithError("fleet never completed the cold batch");
      client.shutdown();
      join_fleet();
      break;
    }

    // Warm fleet pass: the identical batch, answered entirely from the
    // replicated coordinator cache in one frame pair.
    const auto warm_start = std::chrono::steady_clock::now();
    const std::string warm = client.submit_batch(texts);
    warm_fleet_ms = ms_since(warm_start);
    const bool all_cached =
        count_of(warm, "\"status\":\"cached\"") == texts.size();

    client.shutdown();
    join_fleet();

    const service::FleetMetrics m = coordinator.metrics();
    dispatched = m.dispatched;
    steals = m.steals;
    warm_origins = 0;
    min_origin_hits = 0;
    cross_worker_hits = 0;
    for (const auto& [origin, hits] : m.hits_by_origin) {
      if (origin == "local" || hits == 0) continue;
      ++warm_origins;
      cross_worker_hits += hits;
      if (min_origin_hits == 0 || hits < min_origin_hits) {
        min_origin_hits = hits;
      }
    }

    if (!all_cached) {
      state.SkipWithError("warm fleet batch was not fully cached");
      break;
    }
    if (steals > dispatched) {
      state.SkipWithError("steal counter exceeds dispatches");
      break;
    }
    if (warm_fleet_ms >= cold_single_ms) {
      state.SkipWithError("warm fleet did not beat the cold single daemon");
      break;
    }

    // Bit identity: the replicated coordinator store must hold exactly the
    // bytes the reference computation produced.
    {
      service::VerdictStore merged(store);
      for (std::size_t k = 0; k < keys.size(); ++k) {
        const auto encoded = merged.lookup_encoded(keys[k]);
        if (!encoded || *encoded != cold_bytes[k]) {
          state.SkipWithError("fleet verdict bytes diverge from the cold "
                              "single computation");
          break;
        }
      }
    }

    // --- Backpressure: a workerless coordinator with capacity 1 must
    // bounce the second job with "rejected", never queue it.
    {
      CoordinatorOptions bopt;
      bopt.listen_tcp = "tcp:127.0.0.1:0";
      bopt.admission_capacity = 1;
      bopt.drain_grace = 100ms;
      Coordinator bounded(std::move(bopt));
      std::thread bounded_thread([&bounded] { (void)bounded.run(); });
      Client c2("tcp:127.0.0.1:" + std::to_string(bounded.tcp_port()));
      const std::string replies = c2.submit_batch({texts[0], texts[1]});
      c2.shutdown();
      bounded_thread.join();
      admission_rejections = bounded.metrics().admission_rejections;
      if (count_of(replies, "\"status\":\"rejected\"") != 1) {
        state.SkipWithError("bounded admission did not reject at capacity");
        break;
      }
    }
  }

  state.counters["jobs"] = static_cast<double>(batch.size());
  state.counters["cold_single_ms"] = cold_single_ms;
  state.counters["cold_fleet_ms"] = cold_fleet_ms;
  state.counters["warm_fleet_ms"] = warm_fleet_ms;
  state.counters["speedup"] =
      warm_fleet_ms > 0 ? cold_single_ms / warm_fleet_ms : 0;
  state.counters["dispatched"] = static_cast<double>(dispatched);
  state.counters["steals"] = static_cast<double>(steals);
  state.counters["warm_origins"] = static_cast<double>(warm_origins);
  state.counters["min_origin_hits"] = static_cast<double>(min_origin_hits);
  state.counters["cross_worker_hits"] = static_cast<double>(cross_worker_hits);
  state.counters["admission_rejections"] =
      static_cast<double>(admission_rejections);
  state.counters["fleet_beats_cold_single"] =
      (warm_fleet_ms > 0 && warm_fleet_ms < cold_single_ms) ? 1 : 0;
  wfregs::benchjson::memory_counters(state);
  std::remove(store.c_str());
}
BENCHMARK(BM_FleetWarmVsColdSingle)
    ->Name("fleet/zoo_batch/warm_vs_cold_single")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return wfregs::benchjson::run(argc, argv, "BENCH_e16_fleet.json");
}
