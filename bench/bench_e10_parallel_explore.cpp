// E10 -- parallel schedule exploration: the work-stealing explorer over the
// sharded memo table vs. the sequential pass, on identical workloads.
//
// threads=1 is the exact sequential legacy path (explore()); threads>1 runs
// discovery in parallel and reproduces the sequential statistics by
// canonical replay, so every variant reports the same `configs` counter --
// only the wall-clock differs.  Speedup requires real cores: on a
// single-core host all thread counts degenerate to roughly sequential
// throughput plus coordination overhead.
//
// Emits BENCH_e10_parallel_explore.json (Google Benchmark JSON schema).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_json_main.hpp"
#include "wfregs/runtime/explorer.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace {

using namespace wfregs;

// k processes hammering one shared 4-valued register with (write; read)^ops
// programs that fold the read back into process state -- the same
// configuration DAG bench_e7's BM_Explorer measures, here sized to give the
// parallel frontier enough breadth to matter.
Engine register_race(int procs, int ops) {
  const zoo::RegisterLayout lay{4};
  const auto spec =
      std::make_shared<const TypeSpec>(zoo::register_type(4, procs));
  auto sys = std::make_shared<System>(procs);
  std::vector<PortId> ports;
  for (PortId p = 0; p < procs; ++p) ports.push_back(p);
  const ObjectId r = sys->add_base(spec, 0, ports);
  for (ProcId p = 0; p < procs; ++p) {
    ProgramBuilder b;
    for (int k = 0; k < ops; ++k) {
      b.invoke(0, lit(lay.write((p + k) % 4)), 0);
      b.invoke(0, lit(lay.read()), 1);
    }
    b.ret(reg(1));
    sys->set_toplevel(p, b.build("p" + std::to_string(p)), {r});
  }
  return Engine{std::move(sys)};
}

void BM_ExploreParallel(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  const Engine root = register_race(procs, ops);
  ExploreLimits limits;
  limits.track_access_bounds = true;
  std::size_t configs = 0;
  std::size_t interned = 0;
  ContentionStats contention;  // accumulated over iterations (threads>1 only)
  for (auto _ : state) {
    const auto out = explore_parallel(root, {}, limits, threads);
    benchmark::DoNotOptimize(out.stats.configs);
    configs = out.stats.configs;
    interned = out.stats.interned_configs;
    contention.add(out.contention);
  }
  state.counters["configs"] = static_cast<double>(configs);
  state.counters["interned_configs"] = static_cast<double>(interned);
  state.counters["configs_per_sec"] =
      benchmark::Counter(static_cast<double>(configs),
                         benchmark::Counter::kIsIterationInvariantRate);
  benchjson::contention_counters(state, contention);
  benchjson::memory_counters(state);
}

}  // namespace

// threads=1 is the sequential baseline in the same table, so speedup is
// one division inside a single JSON file.
BENCHMARK(BM_ExploreParallel)
    ->ArgsProduct({{3}, {3}, {1, 2, 4, 8}})
    ->ArgsProduct({{4}, {2}, {1, 2, 4, 8}})
    ->ArgNames({"procs", "ops", "threads"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return wfregs::benchjson::run(argc, argv, "BENCH_e10_parallel_explore.json");
}
