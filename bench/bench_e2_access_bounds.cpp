// E2 -- Section 4.2 execution trees: the Koenig bound D and the exploration
// cost of computing it.
//
// The paper: the 2^n execution trees of a wait-free consensus implementation
// are finite; D (the max depth) bounds every object's use.  This bench
// measures the exhaustive-exploration cost for the protocol zoo and reports
// D, the total configuration counts, and the largest per-object access
// bound (the quantity the coarse paper bound r_b = w_b = D over-approximates).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "wfregs/consensus/protocols.hpp"
#include "wfregs/core/access_bounds.hpp"

namespace {

using namespace wfregs;

std::shared_ptr<const Implementation> protocol(int which, int n) {
  switch (which) {
    case 0:
      return consensus::from_test_and_set();
    case 1:
      return consensus::from_queue();
    case 2:
      return consensus::from_fetch_and_add();
    case 3:
      return consensus::from_cas(n);
    case 4:
      return consensus::from_sticky_bit(n);
    case 5:
      return consensus::from_cas_ids(n);
    default:
      return nullptr;
  }
}

const char* names[] = {"tas+bits", "queue+bits", "faa+bits",
                       "cas",      "sticky",     "cas_ids+regs"};

void BM_AccessBounds(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const auto impl = protocol(which, n);
  core::AccessBounds bounds;
  for (auto _ : state) {
    bounds = core::compute_access_bounds(impl);
    benchmark::DoNotOptimize(bounds.depth);
  }
  state.SetLabel(names[which]);
  state.counters["D"] = bounds.depth;
  state.counters["configs"] = static_cast<double>(bounds.configs);
  std::size_t max_bound = 0;
  for (const auto& b : bounds.per_object) {
    max_bound = std::max(max_bound, b.max_accesses);
  }
  state.counters["max_obj_bound"] = static_cast<double>(max_bound);
  state.counters["solves"] = bounds.solves ? 1 : 0;
}

}  // namespace

// 2-process register+racer protocols.
BENCHMARK(BM_AccessBounds)->Args({0, 2})->Args({1, 2})->Args({2, 2})
    ->ArgNames({"proto", "n"})->Unit(benchmark::kMillisecond);
// Register-free n-process protocols: D and tree size vs n.
BENCHMARK(BM_AccessBounds)
    ->Args({3, 2})->Args({3, 3})->Args({3, 4})->Args({3, 5})
    ->Args({4, 2})->Args({4, 3})->Args({4, 4})->Args({4, 5})
    ->ArgNames({"proto", "n"})->Unit(benchmark::kMillisecond);
// Register-using n-process protocol (the heavy case).
BENCHMARK(BM_AccessBounds)->Args({5, 2})->Args({5, 3})
    ->ArgNames({"proto", "n"})->Unit(benchmark::kMillisecond);
