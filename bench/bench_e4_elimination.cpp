// E4 -- Theorem 5 register elimination: transform cost and blow-up.
//
// For each (protocol, substrate) pair this bench runs the full pipeline
// (4.1 normalize, 4.2 bounds, 4.3 arrays, 5.x substrate) and reports:
//   * transform wall time;
//   * base objects before / after (the space blow-up);
//   * the measured D and the one-use bits created;
//   * steps per propose in the register-free result (random schedule);
//   * whether the result still model-checks (it must).
// The paper's coarse bound r_b = w_b = D is compared against the measured
// per-bit bounds via the `uniform` parameter.
#include <benchmark/benchmark.h>

#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/core/oneuse_from_type.hpp"
#include "wfregs/core/register_elimination.hpp"
#include "wfregs/runtime/scheduler.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace {

using namespace wfregs;

std::shared_ptr<const Implementation> protocol(int which) {
  switch (which) {
    case 0:
      return consensus::from_test_and_set();
    case 1:
      return consensus::from_queue();
    default:
      return consensus::from_fetch_and_add();
  }
}

TypeSpec substrate(int which) {
  switch (which) {
    case 0:
      return zoo::test_and_set_type(2);
    case 1:
      return zoo::queue_type(2, 2, 2);
    default:
      return zoo::fetch_and_add_type(2, 2);
  }
}

const char* proto_names[] = {"tas", "queue", "faa"};
const char* sub_names[] = {"tas", "queue", "faa"};

int census_total(const std::map<std::string, int>& census) {
  int total = 0;
  for (const auto& [name, count] : census) total += count;
  return total;
}

void BM_Elimination(benchmark::State& state) {
  const int proto = static_cast<int>(state.range(0));
  const int sub = static_cast<int>(state.range(1));
  const bool uniform = state.range(2) != 0;
  const auto impl = protocol(proto);
  const TypeSpec sub_type = substrate(sub);

  core::EliminationReport report;
  for (auto _ : state) {
    core::EliminationOptions options;
    options.uniform_paper_bound = uniform;
    options.oneuse_factory = [&sub_type] {
      return core::oneuse_from_deterministic(sub_type);
    };
    report = core::eliminate_registers(impl, options);
    benchmark::DoNotOptimize(report.ok);
  }
  state.SetLabel(std::string(proto_names[proto]) + "->" + sub_names[sub] +
                 (uniform ? " (uniform D)" : " (per-bit)"));
  state.counters["ok"] = report.ok ? 1 : 0;
  state.counters["D"] = report.bounds.depth;
  state.counters["objects_before"] =
      static_cast<double>(census_total(report.census_before));
  state.counters["objects_after"] =
      static_cast<double>(census_total(report.census_after));
  state.counters["oneuse_bits"] =
      static_cast<double>(report.oneuse_bits_created);

  // Steps per propose in the transformed protocol (one random schedule).
  if (report.ok) {
    auto sys = consensus::consensus_scenario(report.result, {0, 1});
    Engine e{std::move(sys)};
    RandomScheduler sched(42);
    RandomChooser chooser(43);
    run_to_completion(e, sched, chooser);
    state.counters["steps_per_propose"] =
        static_cast<double>(e.time()) / 2.0;
  }
}

void BM_EliminationVerify(benchmark::State& state) {
  // The expensive part: exhaustively re-checking the transformed protocol.
  const int proto = static_cast<int>(state.range(0));
  const auto impl = protocol(proto);
  core::EliminationOptions options;
  options.oneuse_factory = [] {
    return core::oneuse_from_deterministic(zoo::test_and_set_type(2));
  };
  const auto report = core::eliminate_registers(impl, options);
  consensus::ConsensusCheckResult check;
  for (auto _ : state) {
    check = consensus::check_consensus(report.result);
    benchmark::DoNotOptimize(check.solves);
  }
  state.SetLabel(std::string(proto_names[proto]) + "->tas, model check");
  state.counters["solves"] = check.solves ? 1 : 0;
  state.counters["configs"] = static_cast<double>(check.configs);
  state.counters["depth"] = check.depth;
}

}  // namespace

BENCHMARK(BM_Elimination)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}, {0}})
    ->ArgNames({"proto", "substrate", "uniform"})
    ->Unit(benchmark::kMillisecond);
// The paper's uniform bound, for comparison (bigger arrays).
BENCHMARK(BM_Elimination)
    ->Args({0, 0, 1})
    ->ArgNames({"proto", "substrate", "uniform"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EliminationVerify)
    ->Arg(0)->Arg(1)->Arg(2)
    ->ArgNames({"proto"})
    ->Unit(benchmark::kMillisecond);
