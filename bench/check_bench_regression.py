#!/usr/bin/env python3
"""CI gates over the BENCH_*.json benchmark outputs (stdlib only).

Default mode (the historical e11 gate):

    check_bench_regression.py <BENCH_e11_reduction.json> <baseline.json>

Two checks, both on the deterministic ``configs`` counters (never on
wall-clock, which is noise on shared CI runners):

1. Per-benchmark regression: a run whose configs count exceeds the
   checked-in baseline by more than ``tolerance`` (10%) fails.  Counts are
   exact for a given (workload, reduction mode), so any growth means the
   reduction layer lost pruning power -- the 10% headroom only absorbs
   intentional small workload tweaks that forgot a baseline refresh.
2. Aggregate headline: summed over the protocol zoo, reduction=none must
   visit at least ``min_aggregate_ratio`` (3x) more configurations than
   reduction=sleep+symmetry.

Improvements (counts below baseline) pass with a note suggesting a baseline
refresh; benchmarks missing from the baseline warn but do not fail, so a new
workload can land one PR ahead of its baseline entry.

Suite mode (the e12 compiled-core gate):

    check_bench_regression.py --suite e12_compiled_core \\
        <BENCH_e12_compiled_core.json> <baseline.json>

reads baseline["suites"][<name>] and applies:

1. Configs identity: every baselined benchmark's ``configs`` counter must
   EQUAL the baseline exactly (the counts are deterministic; the compiled
   and legacy explorers are contractually bit-identical, so there is no
   tolerance to give).
2. Intern-pool identity: wherever a benchmark reports ``interned_configs``
   it must equal its ``configs`` (arena bookkeeping cross-check).
3. Memory gate: the maximum ``peak_rss_bytes`` over the run must not exceed
   baseline ``max_peak_rss_bytes`` by more than ``rss_tolerance`` (15%) --
   peak RSS is process-monotone, so the maximum is the only portable
   per-binary reading.
4. Informational speedup: for every workload present as both .../compiled
   and .../legacy, the configs_per_sec ratio is printed (not gated:
   wall-clock is noise on shared runners; the record lives in
   EXPERIMENTS.md).

Suites can also declare ``min_counters`` (benchmark name -> {counter:
floor}); each listed counter must be at or above its floor.  The e15 suite
gates the static-decision skip rate this way, and the e16_fleet suite gates
the fleet bench's determinate floors: cross-worker cache warming
(``warm_origins`` / ``min_origin_hits``), the bounded-admission rejection
path (``admission_rejections``), and the warm-fleet-beats-cold-single
verdict bit -- never wall-clock itself.  The dual ``max_counters``
(benchmark name -> {counter: ceiling}) gates counters from above; the
e18_out_of_core suite bounds the sampled peak of resident arena bytes at
1.2x each memory budget this way.
"""

import json
import sys


def load_run(path):
    """name -> benchmark record, failing hard on benchmark-level errors."""
    with open(path) as f:
        data = json.load(f)
    run = {}
    errors = []
    for b in data.get("benchmarks", []):
        if b.get("error_occurred"):
            errors.append(f"{b['name']}: {b.get('error_message', 'error')}")
            continue
        run[b["name"]] = b
    if errors:
        for e in errors:
            print(f"FAIL: benchmark reported an error: {e}")
        sys.exit(1)
    if not run:
        print(f"FAIL: no benchmarks found in {path}")
        sys.exit(1)
    return run


def check_default(run, baseline):
    """The historical e11 gate: tolerant configs counts + aggregate ratio."""
    configs = {name: b["configs"] for name, b in run.items() if "configs" in b}
    if not configs:
        print("FAIL: no 'configs' counters found in run")
        return 1
    tolerance = baseline.get("tolerance", 0.10)
    min_ratio = baseline.get("min_aggregate_ratio", 3.0)
    base_configs = baseline["configs"]

    failed = False
    for name, base in sorted(base_configs.items()):
        if name not in configs:
            print(f"FAIL: baseline benchmark missing from run: {name}")
            failed = True
            continue
        got = configs[name]
        limit = base * (1.0 + tolerance)
        if got > limit:
            print(f"FAIL: {name}: configs {got:.0f} > baseline {base} "
                  f"(+{100 * (got / base - 1):.1f}%, tolerance "
                  f"{100 * tolerance:.0f}%)")
            failed = True
        elif got < base:
            print(f"ok:   {name}: configs {got:.0f} improved on baseline "
                  f"{base} -- consider refreshing bench/baseline.json")
        else:
            print(f"ok:   {name}: configs {got:.0f} (baseline {base})")
    for name in sorted(set(configs) - set(base_configs)):
        print(f"warn: {name} has no baseline entry -- add it to "
              f"bench/baseline.json")

    none_total = sum(v for k, v in configs.items()
                     if k.endswith("/none/real_time"))
    red_total = sum(v for k, v in configs.items()
                    if k.endswith("/sleep+symmetry/real_time"))
    if red_total <= 0:
        print("FAIL: no sleep+symmetry benchmarks in run")
        return 1
    ratio = none_total / red_total
    verdict = "ok:  " if ratio >= min_ratio else "FAIL:"
    print(f"{verdict} aggregate configs none/sleep+symmetry = "
          f"{none_total:.0f}/{red_total:.0f} = {ratio:.2f}x "
          f"(required >= {min_ratio}x)")
    if ratio < min_ratio:
        failed = True
    return 1 if failed else 0


def check_suite(run, suite, suite_name):
    """Configs identity + intern cross-check + peak-RSS growth gate."""
    failed = False

    # 1. Exact configs identity against the baseline.
    base_configs = suite.get("configs", {})
    for name, base in sorted(base_configs.items()):
        if name not in run:
            print(f"FAIL: baseline benchmark missing from run: {name}")
            failed = True
            continue
        got = run[name].get("configs")
        if got is None:
            print(f"FAIL: {name}: no 'configs' counter in run")
            failed = True
        elif got != base:
            print(f"FAIL: {name}: configs {got:.0f} != baseline {base} "
                  f"(suite '{suite_name}' gates on identity: the counts are "
                  f"deterministic)")
            failed = True
        else:
            print(f"ok:   {name}: configs {got:.0f} (identical to baseline)")
    if base_configs:
        for name in sorted(set(run) - set(base_configs)):
            print(f"warn: {name} has no baseline entry -- add it to "
                  f"bench/baseline.json suites.{suite_name}")

    # 2. interned_configs == configs wherever both are reported.
    for name, b in sorted(run.items()):
        if "interned_configs" in b and "configs" in b:
            if b["interned_configs"] != b["configs"]:
                print(f"FAIL: {name}: interned_configs "
                      f"{b['interned_configs']:.0f} != configs "
                      f"{b['configs']:.0f}")
                failed = True

    # 3. Peak-RSS growth gate on the process-wide maximum.
    rss_tolerance = suite.get("rss_tolerance", 0.15)
    base_rss = suite.get("max_peak_rss_bytes", 0)
    peaks = [b["peak_rss_bytes"] for b in run.values()
             if b.get("peak_rss_bytes", 0) > 0]
    if base_rss > 0:
        if not peaks:
            print("FAIL: baseline has max_peak_rss_bytes but the run "
                  "reported no peak_rss_bytes counters")
            failed = True
        else:
            peak = max(peaks)
            limit = base_rss * (1.0 + rss_tolerance)
            verdict = "ok:  " if peak <= limit else "FAIL:"
            print(f"{verdict} peak RSS {peak / 2**20:.1f} MiB vs baseline "
                  f"{base_rss / 2**20:.1f} MiB "
                  f"(+{100 * (peak / base_rss - 1):.1f}%, tolerance "
                  f"{100 * rss_tolerance:.0f}%)")
            if peak > limit:
                failed = True

    # 3b. Counter floors: baseline ``min_counters`` maps benchmark name ->
    # {counter: floor}; the run's counter must be >= the floor (used by the
    # e15 suite to gate the static-decision skip rate, a determinate ratio
    # of the batch composition, never wall-clock).
    for name, floors in sorted(suite.get("min_counters", {}).items()):
        if name not in run:
            print(f"FAIL: min_counters benchmark missing from run: {name}")
            failed = True
            continue
        for counter, floor in sorted(floors.items()):
            got = run[name].get(counter)
            if got is None:
                print(f"FAIL: {name}: no '{counter}' counter in run")
                failed = True
            elif got < floor:
                print(f"FAIL: {name}: {counter} {got} below the baseline "
                      f"floor {floor}")
                failed = True
            else:
                print(f"ok:   {name}: {counter} {got} (floor {floor})")

    # 3c. Counter ceilings: the dual of min_counters -- ``max_counters``
    # maps benchmark name -> {counter: ceiling}; the run's counter must be
    # <= the ceiling (the e18 suite bounds the sampled peak of resident
    # arena bytes at 1.2x each memory budget this way).
    for name, ceilings in sorted(suite.get("max_counters", {}).items()):
        if name not in run:
            print(f"FAIL: max_counters benchmark missing from run: {name}")
            failed = True
            continue
        for counter, ceiling in sorted(ceilings.items()):
            got = run[name].get(counter)
            if got is None:
                print(f"FAIL: {name}: no '{counter}' counter in run")
                failed = True
            elif got > ceiling:
                print(f"FAIL: {name}: {counter} {got} above the baseline "
                      f"ceiling {ceiling}")
                failed = True
            else:
                print(f"ok:   {name}: {counter} {got} (ceiling {ceiling})")

    # 4. Informational compiled/legacy throughput ratios.
    for name in sorted(base_configs):
        if not name.endswith("/compiled"):
            continue
        peer = name[:-len("/compiled")] + "/legacy"
        a = run.get(name, {}).get("configs_per_sec")
        b = run.get(peer, {}).get("configs_per_sec")
        if a and b:
            print(f"info: {name[:-len('/compiled')]}: compiled/legacy "
                  f"throughput = {a / b:.2f}x (not gated)")

    return 1 if failed else 0


def main(argv):
    suite_name = None
    args = list(argv[1:])
    if args and args[0] == "--suite":
        if len(args) < 2:
            print(__doc__)
            return 2
        suite_name = args[1]
        args = args[2:]
    if len(args) != 2:
        print(__doc__)
        return 2
    run = load_run(args[0])
    with open(args[1]) as f:
        baseline = json.load(f)
    if suite_name is None:
        return check_default(run, baseline)
    suites = baseline.get("suites", {})
    if suite_name not in suites:
        print(f"FAIL: baseline has no suites.{suite_name} section")
        return 1
    return check_suite(run, suites[suite_name], suite_name)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
