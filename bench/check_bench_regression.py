#!/usr/bin/env python3
"""CI gate over BENCH_e11_reduction.json (stdlib only).

Usage: check_bench_regression.py <BENCH_e11_reduction.json> <baseline.json>

Two checks, both on the deterministic ``configs`` counters (never on
wall-clock, which is noise on shared CI runners):

1. Per-benchmark regression: a run whose configs count exceeds the
   checked-in baseline by more than ``tolerance`` (10%) fails.  Counts are
   exact for a given (workload, reduction mode), so any growth means the
   reduction layer lost pruning power -- the 10% headroom only absorbs
   intentional small workload tweaks that forgot a baseline refresh.
2. Aggregate headline: summed over the protocol zoo, reduction=none must
   visit at least ``min_aggregate_ratio`` (3x) more configurations than
   reduction=sleep+symmetry.

Improvements (counts below baseline) pass with a note suggesting a baseline
refresh; benchmarks missing from the baseline warn but do not fail, so a new
workload can land one PR ahead of its baseline entry.
"""

import json
import sys


def load_run_configs(path):
    """name -> configs counter, failing hard on benchmark-level errors."""
    with open(path) as f:
        data = json.load(f)
    configs = {}
    errors = []
    for b in data.get("benchmarks", []):
        if b.get("error_occurred"):
            errors.append(f"{b['name']}: {b.get('error_message', 'error')}")
            continue
        if "configs" in b:
            configs[b["name"]] = b["configs"]
    if errors:
        for e in errors:
            print(f"FAIL: benchmark reported an error: {e}")
        sys.exit(1)
    if not configs:
        print(f"FAIL: no 'configs' counters found in {path}")
        sys.exit(1)
    return configs


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 2
    run = load_run_configs(argv[1])
    with open(argv[2]) as f:
        baseline = json.load(f)
    tolerance = baseline.get("tolerance", 0.10)
    min_ratio = baseline.get("min_aggregate_ratio", 3.0)
    base_configs = baseline["configs"]

    failed = False
    for name, base in sorted(base_configs.items()):
        if name not in run:
            print(f"FAIL: baseline benchmark missing from run: {name}")
            failed = True
            continue
        got = run[name]
        limit = base * (1.0 + tolerance)
        if got > limit:
            print(f"FAIL: {name}: configs {got:.0f} > baseline {base} "
                  f"(+{100 * (got / base - 1):.1f}%, tolerance "
                  f"{100 * tolerance:.0f}%)")
            failed = True
        elif got < base:
            print(f"ok:   {name}: configs {got:.0f} improved on baseline "
                  f"{base} -- consider refreshing bench/baseline.json")
        else:
            print(f"ok:   {name}: configs {got:.0f} (baseline {base})")
    for name in sorted(set(run) - set(base_configs)):
        print(f"warn: {name} has no baseline entry -- add it to "
              f"bench/baseline.json")

    none_total = sum(v for k, v in run.items() if k.endswith("/none/real_time"))
    red_total = sum(v for k, v in run.items()
                    if k.endswith("/sleep+symmetry/real_time"))
    if red_total <= 0:
        print("FAIL: no sleep+symmetry benchmarks in run")
        return 1
    ratio = none_total / red_total
    verdict = "ok:  " if ratio >= min_ratio else "FAIL:"
    print(f"{verdict} aggregate configs none/sleep+symmetry = "
          f"{none_total:.0f}/{red_total:.0f} = {ratio:.2f}x "
          f"(required >= {min_ratio}x)")
    if ratio < min_ratio:
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
