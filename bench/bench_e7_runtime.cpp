// E7 -- runtime substrate scaling: the linearizability checker and the
// exhaustive explorer.
//
// The checker is Wing-Gong-style DFS with failure memoization: worst case
// exponential in the number of concurrent operations, near-linear for
// mostly-sequential histories.  The explorer's cost is the number of
// distinct configurations, which this bench reports as configs/second.
//
// Emits BENCH_e7_runtime.json (Google Benchmark JSON schema).
#include <benchmark/benchmark.h>

#include <random>

#include "bench_json_main.hpp"
#include "wfregs/runtime/explorer.hpp"
#include "wfregs/runtime/linearizability.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace {

using namespace wfregs;

// A random-but-consistent register history: `ops` operations by `procs`
// processes with bounded overlap; generated from an actual sequential
// execution so it is always linearizable.
std::vector<OpRecord> random_history(int ops, int procs, int overlap,
                                     std::uint64_t seed) {
  const zoo::RegisterLayout lay{4};
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> val(0, 3);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> jitter(0, overlap);
  std::vector<OpRecord> history;
  int value = 0;
  for (int k = 0; k < ops; ++k) {
    OpRecord rec;
    rec.proc = k % procs;
    rec.object = 0;
    rec.port = rec.proc;
    const std::size_t base = static_cast<std::size_t>(k) * 10;
    rec.invoke_time = base > static_cast<std::size_t>(jitter(rng))
                          ? base - static_cast<std::size_t>(jitter(rng))
                          : 0;
    rec.response_time = base + 5 + static_cast<std::size_t>(jitter(rng));
    if (coin(rng)) {
      const int v = val(rng);
      rec.inv = lay.write(v);
      rec.response = lay.ok();
      value = v;
    } else {
      rec.inv = lay.read();
      rec.response = lay.value_resp(value);
    }
    history.push_back(rec);
  }
  return history;
}

void BM_LinearizabilityChecker(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  const int procs = static_cast<int>(state.range(1));
  const int overlap = static_cast<int>(state.range(2));
  const auto spec = zoo::register_type(4, procs);
  std::uint64_t seed = 7;
  std::size_t explored = 0;
  std::size_t rounds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const auto history = random_history(ops, procs, overlap, seed++);
    state.ResumeTiming();
    const auto r = check_linearizable(history, spec, 0);
    benchmark::DoNotOptimize(r.linearizable);
    explored += r.states_explored;
    ++rounds;
  }
  state.counters["avg_states"] =
      rounds ? static_cast<double>(explored) / rounds : 0.0;
}

void BM_Explorer(benchmark::State& state) {
  // k writer processes hammering one shared register: the configuration
  // DAG grows with k; report configs and configs/sec.
  const int procs = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  const zoo::RegisterLayout lay{4};
  const auto spec =
      std::make_shared<const TypeSpec>(zoo::register_type(4, procs));

  std::size_t configs = 0;
  std::size_t interned = 0;
  for (auto _ : state) {
    auto sys = std::make_shared<System>(procs);
    std::vector<PortId> ports;
    for (PortId p = 0; p < procs; ++p) ports.push_back(p);
    const ObjectId r = sys->add_base(spec, 0, ports);
    for (ProcId p = 0; p < procs; ++p) {
      ProgramBuilder b;
      for (int k = 0; k < ops; ++k) {
        b.invoke(0, lit(lay.write((p + k) % 4)), 0);
        b.invoke(0, lit(lay.read()), 1);
      }
      b.ret(reg(1));
      sys->set_toplevel(p, b.build("p" + std::to_string(p)), {r});
    }
    const Engine root{std::move(sys)};
    const auto out = explore(root);
    benchmark::DoNotOptimize(out.stats.configs);
    configs = out.stats.configs;
    interned = out.stats.interned_configs;
  }
  state.counters["configs"] = static_cast<double>(configs);
  state.counters["interned_configs"] = static_cast<double>(interned);
  state.counters["configs_per_sec"] = benchmark::Counter(
      static_cast<double>(configs), benchmark::Counter::kIsIterationInvariantRate);
  wfregs::benchjson::memory_counters(state);
}

}  // namespace

BENCHMARK(BM_LinearizabilityChecker)
    ->ArgsProduct({{4, 8, 16, 24}, {2, 4}, {4, 12}})
    ->ArgNames({"ops", "procs", "overlap"})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Explorer)
    ->Args({2, 2})->Args({2, 4})->Args({3, 2})->Args({3, 3})->Args({4, 2})
    ->ArgNames({"procs", "ops"})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return wfregs::benchjson::run(argc, argv, "BENCH_e7_runtime.json");
}
