// E17 -- lock-free vs locked parallel exploration under contention: the
// Chase-Lev + lock-free-interner engine (explore_parallel_lockfree) against
// the retained mutex-striped engine (explore_parallel_locked) on the E10
// register-race workload, swept over 1/2/4/8/16 worker threads.
//
// Every row cross-checks its outcome against a one-shot sequential
// explore() reference -- configs / edges / terminals / interned_configs /
// depth / access bounds / verdict must be BIT-IDENTICAL (the canonical-
// replay determinism contract); any divergence is reported via
// SkipWithError, which sets error_occurred in the JSON and fails the CI
// gate.  The lock-free rows additionally emit the engine's contention
// telemetry (cas_retries / steal_attempts / steals / snapshot_retries), the
// counters check_bench_regression.py --suite e17_contention floors: at
// threads >= 2 the work-stealing frontier must actually attempt steals.
//
// The single-thread overhead gate runs both engines at threads=1 inside one
// benchmark, interleaved, and takes the minimum wall time of each: the
// lock-free machinery may cost at most 1.10x the locked machinery when
// there is no contention at all (the price of atomics over uncontended
// mutexes).  Min-of-N in one process keeps the ratio far less noisy than
// any cross-run comparison; a breach sets error_occurred in-binary, so the
// gate needs no wall-clock numbers in baseline.json.
//
// Emits BENCH_e17_contention.json (Google Benchmark JSON schema).
#include <benchmark/benchmark.h>

#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_json_main.hpp"
#include "wfregs/runtime/explorer.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace {

using namespace wfregs;

// The E10 workload: k processes hammering one shared 4-valued register with
// (write; read)^ops programs that fold the read back into process state.
// procs=4, ops=2 gives the frontier enough breadth (~50k configurations)
// that steals and CAS collisions actually happen at every thread count.
Engine register_race(int procs, int ops) {
  const zoo::RegisterLayout lay{4};
  const auto spec =
      std::make_shared<const TypeSpec>(zoo::register_type(4, procs));
  auto sys = std::make_shared<System>(procs);
  std::vector<PortId> ports;
  for (PortId p = 0; p < procs; ++p) ports.push_back(p);
  const ObjectId r = sys->add_base(spec, 0, ports);
  for (ProcId p = 0; p < procs; ++p) {
    ProgramBuilder b;
    for (int k = 0; k < ops; ++k) {
      b.invoke(0, lit(lay.write((p + k) % 4)), 0);
      b.invoke(0, lit(lay.read()), 1);
    }
    b.ret(reg(1));
    sys->set_toplevel(p, b.build("p" + std::to_string(p)), {r});
  }
  return Engine{std::move(sys)};
}

ExploreOptions contention_options() {
  ExploreOptions options;
  options.limits.track_access_bounds = true;
  return options;
}

// The sequential reference outcome, computed once per process: the
// determinism contract says every parallel row must reproduce it exactly.
const ExploreOutcome& reference() {
  static const ExploreOutcome out = [] {
    return explore(register_race(4, 2), contention_options(), {});
  }();
  return out;
}

// Bit-identity over every deterministic field (contention is excluded by
// construction: it measures the nondeterminism, never the answer).
bool matches_reference(const ExploreOutcome& out) {
  const ExploreOutcome& ref = reference();
  return out.wait_free == ref.wait_free && out.complete == ref.complete &&
         out.violation == ref.violation &&
         out.stats.configs == ref.stats.configs &&
         out.stats.edges == ref.stats.edges &&
         out.stats.terminals == ref.stats.terminals &&
         out.stats.interned_configs == ref.stats.interned_configs &&
         out.stats.depth == ref.stats.depth &&
         out.stats.max_accesses == ref.stats.max_accesses &&
         out.stats.max_accesses_by_inv == ref.stats.max_accesses_by_inv;
}

void set_common_counters(benchmark::State& state, const ExploreOutcome& out,
                         const ContentionStats& contention) {
  state.counters["configs"] = static_cast<double>(out.stats.configs);
  state.counters["interned_configs"] =
      static_cast<double>(out.stats.interned_configs);
  state.counters["configs_per_sec"] =
      benchmark::Counter(static_cast<double>(out.stats.configs),
                         benchmark::Counter::kIsIterationInvariantRate);
  benchjson::contention_counters(state, contention);
  state.counters["verdict_identical"] = 1.0;
  benchjson::memory_counters(state);
}

// One engine sweep row: run `engine` at `threads`, accumulate contention,
// gate on reference identity.
template <class Fn>
void run_engine(benchmark::State& state, Fn engine, const char* name) {
  const int threads = static_cast<int>(state.range(0));
  const Engine root = register_race(4, 2);
  const ExploreOptions options = contention_options();
  ExploreOutcome last;
  ContentionStats contention;
  for (auto _ : state) {
    ExploreOutcome out = engine(root, options, threads);
    benchmark::DoNotOptimize(out.stats.configs);
    contention.add(out.contention);
    last = std::move(out);
  }
  if (!matches_reference(last)) {
    state.SkipWithError((std::string(name) + " diverged from explore() at " +
                         std::to_string(threads) + " threads")
                            .c_str());
    return;
  }
  set_common_counters(state, last, contention);
}

void BM_ContentionLocked(benchmark::State& state) {
  run_engine(
      state,
      [](const Engine& root, const ExploreOptions& options, int threads) {
        return explore_parallel_locked(root, {}, options, threads);
      },
      "locked engine");
}

void BM_ContentionLockFree(benchmark::State& state) {
  run_engine(
      state,
      [](const Engine& root, const ExploreOptions& options, int threads) {
        return explore_parallel_lockfree(root, {}, options, threads);
      },
      "lock-free engine");
}

// The threads=1 overhead gate: interleaved min-of-N wall times for both
// engines in this one process, ratio capped at 1.10x.
void BM_OneThreadOverheadGate(benchmark::State& state) {
  const Engine root = register_race(4, 2);
  const ExploreOptions options = contention_options();
  double best_locked_s = std::numeric_limits<double>::infinity();
  double best_lockfree_s = std::numeric_limits<double>::infinity();
  bool identical = true;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const ExploreOutcome locked = explore_parallel_locked(root, {}, options, 1);
    const auto t1 = std::chrono::steady_clock::now();
    const ExploreOutcome lockfree =
        explore_parallel_lockfree(root, {}, options, 1);
    const auto t2 = std::chrono::steady_clock::now();
    best_locked_s =
        std::min(best_locked_s, std::chrono::duration<double>(t1 - t0).count());
    best_lockfree_s = std::min(
        best_lockfree_s, std::chrono::duration<double>(t2 - t1).count());
    identical =
        identical && matches_reference(locked) && matches_reference(lockfree);
    benchmark::DoNotOptimize(lockfree.stats.configs);
  }
  if (!identical) {
    state.SkipWithError("an engine diverged from explore() at 1 thread");
    return;
  }
  const double ratio =
      best_locked_s > 0 ? best_lockfree_s / best_locked_s : 1.0;
  state.counters["lockfree_over_locked_x100"] = 100.0 * ratio;
  state.counters["one_thread_gate_ok"] = ratio <= 1.10 ? 1.0 : 0.0;
  state.counters["verdict_identical"] = 1.0;
  if (ratio > 1.10) {
    state.SkipWithError(("lock-free 1-thread overhead " +
                         std::to_string(ratio) + "x exceeds the 1.10x cap")
                            .c_str());
  }
}

}  // namespace

BENCHMARK(BM_ContentionLocked)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->ArgNames({"threads"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ContentionLockFree)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->ArgNames({"threads"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Fixed at 6 interleaved pairs: min-of-6 is stable, and the gate must not
// shrink to one noisy pair under --benchmark_min_time=0 in CI.
BENCHMARK(BM_OneThreadOverheadGate)
    ->Iterations(6)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return wfregs::benchjson::run(argc, argv, "BENCH_e17_contention.json");
}
