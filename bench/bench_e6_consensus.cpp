// E6 -- consensus substrate costs and bounded protocol synthesis.
//
// Part 1: steps per decide for every protocol in the zoo under seeded
// random scheduling, as n grows (register-free protocols scale in n;
// register-using ones are n = 2).
//
// Part 2: the bounded synthesis search (consensus/power.hpp): node counts
// for the classic solvable and unsolvable instances, including the
// h_1-vs-h_1^r gap instances that motivate the paper.
#include <benchmark/benchmark.h>

#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/power.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/runtime/scheduler.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace {

using namespace wfregs;

void BM_StepsPerDecide(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  std::shared_ptr<const Implementation> impl;
  const char* label = "";
  switch (which) {
    case 0:
      impl = consensus::from_test_and_set();
      label = "tas+bits";
      break;
    case 1:
      impl = consensus::from_cas(n);
      label = "cas";
      break;
    case 2:
      impl = consensus::from_sticky_bit(n);
      label = "sticky";
      break;
    case 3:
      impl = consensus::from_cas_ids(n);
      label = "cas_ids+regs";
      break;
  }
  std::vector<int> inputs;
  for (int p = 0; p < n; ++p) inputs.push_back(p % 2);

  std::size_t steps = 0;
  std::size_t rounds = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto sys = consensus::consensus_scenario(impl, inputs);
    Engine e{std::move(sys)};
    RandomScheduler sched(seed);
    RandomChooser chooser(seed + 1);
    seed += 2;
    run_to_completion(e, sched, chooser);
    steps += e.time();
    ++rounds;
  }
  state.SetLabel(label);
  state.counters["steps_per_decide"] =
      static_cast<double>(steps) / (rounds * n);
}

std::shared_ptr<const TypeSpec> share(TypeSpec t) {
  return std::make_shared<const TypeSpec>(std::move(t));
}

void BM_Synthesis(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  std::vector<consensus::SynthesisObject> objects;
  int depth = 2;
  const char* label = "";
  switch (which) {
    case 0:
      objects = {{share(zoo::sticky_bit_type(2)), 0, {}}};
      depth = 1;
      label = "sticky alone (solvable)";
      break;
    case 1:
      objects = {{share(zoo::cas_old_type(3, 2)), 2, {}}};
      depth = 1;
      label = "cas-old alone (solvable)";
      break;
    case 2:
      objects = {{share(zoo::test_and_set_type(2)), 0, {}}};
      depth = 2;
      label = "one tas alone (unsolvable: h_1 = 1)";
      break;
    case 3:
      objects = {{share(zoo::bit_type(2)), 0, {}}};
      depth = 2;
      label = "one register bit (unsolvable)";
      break;
    case 4: {
      const auto bit = share(zoo::bit_type(2));
      objects = {{bit, 0, {}}, {bit, 0, {}}};
      depth = 1;
      label = "two register bits, depth 1 (unsolvable)";
      break;
    }
    case 5: {
      // The h_m(test&set) = 2 search: test&set + one-use bits, no
      // registers.  Generous cap; kUnknown is reported honestly when the
      // budget runs out before the protocol is found.
      const auto tas = share(zoo::test_and_set_type(2));
      const auto oub = share(zoo::one_use_bit_type());
      const zoo::OneUseBitLayout lay;
      objects = {{tas, 0, {}},
                 {oub, lay.unset(), {1, 0}},
                 {oub, lay.unset(), {0, 1}}};
      depth = 3;
      label = "tas + 2 one-use bits, depth 3";
      break;
    }
  }
  consensus::SynthesisResult result;
  for (auto _ : state) {
    result = consensus::synthesize_two_consensus(objects, depth, 50000000);
    benchmark::DoNotOptimize(result.verdict);
  }
  state.SetLabel(label);
  state.counters["nodes"] = static_cast<double>(result.nodes);
  state.counters["verdict"] = static_cast<double>(result.verdict);
}

}  // namespace

BENCHMARK(BM_StepsPerDecide)->Args({0, 2})
    ->ArgNames({"proto", "n"})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StepsPerDecide)
    ->ArgsProduct({{1, 2}, {2, 3, 4, 6, 8}})
    ->ArgNames({"proto", "n"})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StepsPerDecide)
    ->ArgsProduct({{3}, {2, 3, 4}})
    ->ArgNames({"proto", "n"})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Synthesis)
    ->DenseRange(0, 4)
    ->ArgNames({"case"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Synthesis)
    ->Arg(5)
    ->ArgNames({"case"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
