// E3 -- the Section 4.1 register chain: per-level overhead.
//
// Each rung (Simpson SRSW-from-bits, MRSW-from-SRSW, MRMW-from-MRSW, and
// the full composed chain) is measured as shared-memory steps per read and
// per write in a sequential workload, together with the number of base
// objects the construction consumes.
#include <benchmark/benchmark.h>

#include "wfregs/registers/chain.hpp"
#include "wfregs/registers/mrmw.hpp"
#include "wfregs/registers/mrsw.hpp"
#include "wfregs/registers/simpson.hpp"
#include "wfregs/runtime/engine.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace {

using namespace wfregs;

struct Setup {
  std::shared_ptr<const Implementation> impl;
  PortId reader_port = 0;
  PortId writer_port = 0;
  InvId read_inv = 0;
  InvId write_inv[2] = {0, 0};
};

Setup make(int level, int values, int readers) {
  Setup s;
  switch (level) {
    case 0: {  // Simpson four-slot from bits
      const zoo::SrswRegisterLayout lay{values};
      s.impl = registers::simpson_register(values, 0);
      s.reader_port = zoo::SrswRegisterLayout::reader_port();
      s.writer_port = zoo::SrswRegisterLayout::writer_port();
      s.read_inv = lay.read();
      s.write_inv[0] = lay.write(0);
      s.write_inv[1] = lay.write(1);
      break;
    }
    case 1:    // MRSW over base SRSW registers
    case 2: {  // MRSW over Simpson bits
      const zoo::MrswRegisterLayout lay{values, readers};
      s.impl = registers::mrsw_register(
          values, readers, 0, 16,
          level == 2 ? registers::simpson_srsw_factory()
                     : registers::SrswFactory{});
      s.reader_port = lay.reader_port(0);
      s.writer_port = lay.writer_port();
      s.read_inv = lay.read();
      s.write_inv[0] = lay.write(0);
      s.write_inv[1] = lay.write(1);
      break;
    }
    case 3:    // MRMW over base MRSW registers
    case 4: {  // the full chain, bits at the bottom
      const zoo::RegisterLayout lay{values};
      if (level == 3) {
        s.impl = registers::mrmw_register(values, readers + 1, 0, 16);
      } else {
        registers::ChainOptions options;
        options.mrmw_max_writes = 16;
        options.mrsw_max_writes = 64;
        s.impl = registers::full_chain_register(values, readers + 1, 0,
                                                options);
      }
      s.reader_port = 0;
      s.writer_port = 1;
      s.read_inv = lay.read();
      s.write_inv[0] = lay.write(0);
      s.write_inv[1] = lay.write(1);
      break;
    }
  }
  return s;
}

const char* level_names[] = {"simpson(bits)", "mrsw(base-srsw)",
                             "mrsw(simpson)", "mrmw(base-mrsw)",
                             "full-chain(bits)"};

void BM_RegisterChain(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  const int values = static_cast<int>(state.range(1));
  const int readers = static_cast<int>(state.range(2));
  const Setup s = make(level, values, readers);
  constexpr int kOps = 8;

  std::size_t write_steps = 0;
  std::size_t read_steps = 0;
  std::size_t rounds = 0;
  for (auto _ : state) {
    auto sys = std::make_shared<System>(2);
    // Processes: 0 reads via reader_port, 1 writes via writer_port.
    std::vector<PortId> port_of_process(2, kNoPort);
    port_of_process[0] = s.reader_port;
    port_of_process[1] = s.writer_port;
    const ObjectId obj = sys->add_implemented(s.impl, port_of_process);
    {
      ProgramBuilder b;
      for (int k = 0; k < kOps; ++k) {
        b.invoke(0, lit(s.write_inv[k % 2]), 0);
      }
      b.ret(lit(0));
      sys->set_toplevel(1, b.build("writer"), {obj});
    }
    {
      ProgramBuilder b;
      for (int k = 0; k < kOps; ++k) b.invoke(0, lit(s.read_inv), 0);
      b.ret(lit(0));
      sys->set_toplevel(0, b.build("reader"), {obj});
    }
    Engine e{std::move(sys)};
    while (!e.done(1)) e.commit(1);
    const std::size_t after_writes = e.time();
    while (!e.done(0)) e.commit(0);
    write_steps += after_writes;
    read_steps += e.time() - after_writes;
    ++rounds;
  }
  state.SetLabel(level_names[level]);
  state.counters["base_objects"] =
      static_cast<double>(s.impl->flattened_base_count());
  state.counters["steps_per_write"] =
      static_cast<double>(write_steps) / (rounds * kOps);
  state.counters["steps_per_read"] =
      static_cast<double>(read_steps) / (rounds * kOps);
}

}  // namespace

BENCHMARK(BM_RegisterChain)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {2, 4}, {1, 2, 3}})
    ->ArgNames({"level", "values", "readers"})
    ->Unit(benchmark::kMicrosecond);
