// E11 -- partial-order + symmetry reduction: the sleep-set / canonicalized
// explorer (runtime/reduction.hpp) vs. the plain exhaustive pass, on a zoo
// of 3-process protocol workloads.
//
// Every workload is explored under reduction = none / sleep / sleep+symmetry
// with identical verdicts (checked here: a mismatch fails the benchmark run
// outright) -- only the number of visited configurations and the wall-clock
// differ.  The `configs` counter is DETERMINISTIC for a given workload and
// mode, which is what lets CI gate on bench/baseline.json: any >10% growth
// of a reduced count is a reduction regression, not noise (see
// bench/check_bench_regression.py).  The same script asserts the headline
// number: aggregated over the zoo, sleep+symmetry must visit at least 3x
// fewer configurations than none.
//
// Emits BENCH_e11_reduction.json (Google Benchmark JSON schema).
#include <benchmark/benchmark.h>

#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_json_main.hpp"
#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/runtime/explorer.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace {

using namespace wfregs;

/// Fully symmetric hammer: every process runs the SAME shared program (ops
/// identical invocations, responses folded into the result) on its own port
/// of one shared object.  Shared ProgramRef + port-oblivious object = the
/// whole of S_n is a system automorphism, the regime sleep+symmetry is for.
Engine symmetric_hammer(std::shared_ptr<const TypeSpec> t, InvId inv,
                        int ops) {
  const int n = t->ports();
  auto sys = std::make_shared<System>(n);
  std::vector<PortId> ports(static_cast<std::size_t>(n));
  std::iota(ports.begin(), ports.end(), 0);
  const ObjectId obj = sys->add_base(std::move(t), 0, ports);
  ProgramBuilder b;
  b.assign(1, lit(0));
  for (int k = 0; k < ops; ++k) {
    b.invoke(0, lit(inv), 0);
    b.assign(1, reg(1) * lit(1 << 20) + reg(0) + lit(1));
  }
  b.ret(reg(1));
  const ProgramRef shared_prog = b.build("hammer");
  for (ProcId p = 0; p < n; ++p) {
    sys->set_toplevel(p, shared_prog, {obj});
  }
  return Engine{std::move(sys)};
}

struct Workload {
  std::string name;
  Engine root;
  TerminalCheck check;  ///< empty for pure exploration workloads
};

TerminalCheck agreement_check(int n) {
  return [n](const Engine& e) -> std::optional<std::string> {
    const Val decided = *e.result(0);
    for (ProcId p = 1; p < n; ++p) {
      if (*e.result(p) != decided) return "disagreement";
    }
    return std::nullopt;
  };
}

/// The 3-process protocol zoo.  All-equal-input consensus roots are fully
/// symmetric because consensus_scenario shares one propose program per
/// distinct input value.
std::vector<Workload> zoo() {
  std::vector<Workload> out;
  out.push_back({"faa_sym",
                 symmetric_hammer(
                     std::make_shared<const TypeSpec>(
                         zoo::fetch_and_add_type(4, 3)),
                     0, 2),
                 {}});
  out.push_back({"cas_sym",
                 symmetric_hammer(
                     std::make_shared<const TypeSpec>(zoo::cas_type(2, 3)), 0,
                     2),
                 {}});
  out.push_back({"counter_sym",
                 symmetric_hammer(std::make_shared<const TypeSpec>(
                                      zoo::mod_counter_type(4, 3)),
                                  0, 2),
                 {}});
  out.push_back({"consensus_cas3",
                 Engine{consensus::consensus_scenario(consensus::from_cas(3),
                                                      {1, 1, 1})},
                 agreement_check(3)});
  out.push_back({"consensus_sticky3",
                 Engine{consensus::consensus_scenario(
                     consensus::from_sticky_bit(3), {0, 0, 0})},
                 agreement_check(3)});
  return out;
}

struct Mode {
  const char* name;
  Reduction reduction;
};

constexpr Mode kModes[] = {
    {"none", Reduction::kNone},
    {"sleep", Reduction::kSleep},
    {"sleep+symmetry", Reduction::kSleepSymmetry},
};

ExploreLimits full_limits() {
  ExploreLimits limits;
  limits.track_access_bounds = true;
  limits.stop_at_violation = false;
  return limits;
}

/// One benchmark per (workload, mode).  The unreduced outcome is computed
/// once up front; every reduced run is checked against it so the JSON can
/// never report a speedup bought with a wrong verdict.
void register_all() {
  static const std::vector<Workload> workloads = zoo();
  static std::vector<ExploreOutcome> baselines;
  const ExploreLimits limits = full_limits();
  for (const Workload& w : workloads) {
    baselines.push_back(explore(w.root, ExploreOptions{limits}, w.check));
  }
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    for (const Mode& mode : kModes) {
      const std::string name =
          std::string("reduction/") + workloads[wi].name + "/" + mode.name;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [wi, mode, limits](benchmark::State& state) {
            const Workload& w = workloads[wi];
            const ExploreOutcome& base = baselines[wi];
            std::size_t configs = 0;
            for (auto _ : state) {
              const auto out =
                  explore(w.root, ExploreOptions{limits, mode.reduction},
                          w.check);
              benchmark::DoNotOptimize(out.stats.configs);
              configs = out.stats.configs;
              if (out.wait_free != base.wait_free ||
                  out.complete != base.complete ||
                  out.violation.has_value() != base.violation.has_value() ||
                  out.stats.depth != base.stats.depth ||
                  out.stats.max_accesses != base.stats.max_accesses) {
                state.SkipWithError(("verdict mismatch vs none on " + w.name)
                                        .c_str());
                return;
              }
            }
            state.counters["configs"] = static_cast<double>(configs);
            state.counters["configs_none"] =
                static_cast<double>(base.stats.configs);
            benchjson::memory_counters(state);
          })
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return wfregs::benchjson::run(argc, argv, "BENCH_e11_reduction.json");
}
