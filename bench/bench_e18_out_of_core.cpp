// E18 -- out-of-core exploration: the spillable-arena explorer under a
// memory-budget sweep, and checkpoint/resume against full recomputation.
//
// The workload is the CAS-with-ids 5-process consensus check (32 roots,
// ~101k configurations, ~800 KiB of delta-coded interned keys), chosen so
// the smallest budget in the sweep holds less than a tenth of the interned
// state.  Unlike the other suites this one carries its acceptance gates
// IN-BINARY (state.SkipWithError), because they are statements about one
// process's memory, not about wall-clock:
//
//   * verdict byte-identity -- every budgeted run's encoded service verdict
//     equals the in-core run's, byte for byte (the ORDER CONTRACT);
//   * residency ceiling -- the sampled peak of resident arena bytes stays
//     under 1.2x the budget (the budget is a real bound, not a hint);
//   * overflow ratio -- at the smallest budget the arena holds >= 10x the
//     budget in interned state (the run is genuinely out-of-core);
//   * resume beats recompute -- completing a checkpointed half-run is
//     faster than the observed fresh full run.
//
// check_bench_regression.py --suite e18_out_of_core re-checks the exported
// counters against bench/baseline.json floors/ceilings, so the gates hold
// both in-binary and in CI.
//
// Emits BENCH_e18_out_of_core.json (Google Benchmark JSON schema).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include <unistd.h>

#include "bench_json_main.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/service/job.hpp"
#include "wfregs/service/scheduler.hpp"
#include "wfregs/service/verdict.hpp"
#include "wfregs/storage/options.hpp"
#include "wfregs/storage/spill_arena.hpp"

namespace {

using namespace wfregs;

constexpr int kProcs = 5;
constexpr std::size_t kSegmentBytes = 4096;  // eviction granularity: 1 page

std::filesystem::path scratch_root() {
  static const std::filesystem::path root = [] {
    auto p = std::filesystem::temp_directory_path() /
             ("wfregs_bench_e18." + std::to_string(::getpid()));
    std::filesystem::remove_all(p);
    std::filesystem::create_directories(p);
    return p;
  }();
  return root;
}

/// One consensus verification through the service runner (so the identity
/// gate compares the exact bytes the daemon would cache).
service::Verdict run_consensus(const storage::StorageOptions& st,
                               std::size_t max_configs = 0) {
  service::VerifyJob job;
  job.kind = service::JobKind::kConsensus;
  job.impl = consensus::from_cas_ids(kProcs);
  job.options.threads = 1;
  job.options.storage = st;
  if (max_configs != 0) job.options.limits.max_configs = max_configs;
  static const std::atomic<bool> no_cancel{false};
  static const service::JobScheduler::Runner runner =
      service::JobScheduler::default_runner(1);
  return runner(job, no_cancel);
}

/// The in-core reference verdict, computed once (the byte-identity anchor).
const service::Verdict& incore_reference() {
  static const service::Verdict v = run_consensus({});
  return v;
}

/// Samples the process-wide arena gauges during a run; resolution ~0.2 ms
/// against explorations that take hundreds of ms.
class ArenaSampler {
 public:
  ArenaSampler()
      : thread_([this] {
          while (!stop_.load(std::memory_order_relaxed)) {
            const auto s = storage::arena_global_stats();
            if (s.total_bytes > max_total_) max_total_ = s.total_bytes;
            if (s.resident_bytes > max_resident_) max_resident_ = s.resident_bytes;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }) {}
  ~ArenaSampler() { finish(); }
  void finish() {
    if (thread_.joinable()) {
      stop_.store(true, std::memory_order_relaxed);
      thread_.join();
    }
  }
  std::uint64_t max_total() const { return max_total_; }
  std::uint64_t max_resident() const { return max_resident_; }

 private:
  std::atomic<bool> stop_{false};
  std::uint64_t max_total_ = 0;     // written by the sampler thread only,
  std::uint64_t max_resident_ = 0;  // read after join()
  std::thread thread_;
};

void export_verdict_counters(benchmark::State& state,
                             const service::Verdict& v) {
  state.counters["configs"] = static_cast<double>(v.stats.configs);
  state.counters["interned_configs"] =
      static_cast<double>(v.stats.interned_configs);
  state.counters["terminals"] = static_cast<double>(v.stats.terminals);
  state.counters["solves"] = v.ok ? 1.0 : 0.0;
}

// The in-core anchor, timed for the table (and so the reference is built
// before any budgeted variant runs).
void BM_InCoreReference(benchmark::State& state) {
  service::Verdict v;
  for (auto _ : state) {
    v = run_consensus({});
    benchmark::DoNotOptimize(v.stats.configs);
  }
  if (service::encode_verdict(v) !=
      service::encode_verdict(incore_reference())) {
    state.SkipWithError("in-core verdict is not deterministic");
    return;
  }
  export_verdict_counters(state, v);
  benchjson::memory_counters(state);
}

// The budget sweep.  arg0 = budget in KiB; arg1 = 1 when this budget must
// prove the >= 10x overflow ratio (only the smallest: the ratio shrinks as
// the budget grows, and reporting it unguarded for the larger budgets keeps
// the sweep informative without a vacuous gate).
void BM_OutOfCoreSweep(benchmark::State& state) {
  const std::size_t budget = static_cast<std::size_t>(state.range(0)) << 10;
  const bool gate_overflow = state.range(1) != 0;
  storage::StorageOptions st;
  st.memory_budget_bytes = budget;
  st.arena_segment_bytes = kSegmentBytes;
  const std::uint64_t evictions0 = storage::arena_global_stats().evictions;
  service::Verdict v;
  ArenaSampler sampler;
  for (auto _ : state) {
    v = run_consensus(st);
    benchmark::DoNotOptimize(v.stats.configs);
  }
  sampler.finish();
  const std::uint64_t evictions =
      storage::arena_global_stats().evictions - evictions0;
  const double overflow_ratio =
      static_cast<double>(sampler.max_total()) / static_cast<double>(budget);
  if (service::encode_verdict(v) !=
      service::encode_verdict(incore_reference())) {
    state.SkipWithError("budgeted verdict differs from the in-core verdict");
    return;
  }
  if (sampler.max_resident() >
      static_cast<std::uint64_t>(1.2 * static_cast<double>(budget))) {
    state.SkipWithError("peak resident arena bytes exceed 1.2x the budget");
    return;
  }
  if (gate_overflow && overflow_ratio < 10.0) {
    state.SkipWithError("interned state below 10x the budget: workload is "
                        "not out-of-core at this budget");
    return;
  }
  if (evictions == 0) {
    state.SkipWithError("no evictions: the budget never bound");
    return;
  }
  export_verdict_counters(state, v);
  state.counters["overflow_ratio"] = overflow_ratio;
  state.counters["arena_peak_resident_bytes"] =
      static_cast<double>(sampler.max_resident());
  state.counters["arena_peak_total_bytes"] =
      static_cast<double>(sampler.max_total());
  state.counters["evictions"] = static_cast<double>(evictions);
  state.counters["residency_ok"] = 1.0;
  benchjson::memory_counters(state);
}

// Checkpoint/resume: complete a run whose first half was banked by an
// interrupted run, and gate that it beats the observed fresh full run.
// Setup (untimed): a partial checkpoint tree is produced by running with a
// per-root config budget (the fingerprint excludes max_configs, so the
// full-limit resume accepts it), and a fresh full checkpointed run is timed
// once as the recompute reference.  Each iteration restores a pristine
// copy of the partial tree and times only the resumed completion.
void BM_CheckpointResume(benchmark::State& state) {
  const std::size_t budget = static_cast<std::size_t>(state.range(0)) << 10;
  storage::StorageOptions st;
  st.memory_budget_bytes = budget;
  st.arena_segment_bytes = kSegmentBytes;
  st.checkpoint_every_configs = 256;

  const std::filesystem::path partial = scratch_root() / "partial";
  const std::filesystem::path work = scratch_root() / "resume";
  std::filesystem::remove_all(partial);
  storage::StorageOptions partial_st = st;
  partial_st.checkpoint_dir = partial.string();
  const service::Verdict cut = run_consensus(partial_st, 2600);
  if (cut.complete || !cut.checkpointed) {
    state.SkipWithError("setup: the cut run did not leave a partial "
                        "checkpoint");
    return;
  }

  const std::filesystem::path fresh_dir = scratch_root() / "fresh";
  std::filesystem::remove_all(fresh_dir);
  storage::StorageOptions fresh_st = st;
  fresh_st.checkpoint_dir = fresh_dir.string();
  const auto t0 = std::chrono::steady_clock::now();
  const service::Verdict fresh = run_consensus(fresh_st);
  const double fresh_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  std::filesystem::remove_all(fresh_dir);

  service::Verdict v;
  double resume_ms = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(work);
    std::filesystem::copy(partial, work,
                          std::filesystem::copy_options::recursive);
    storage::StorageOptions resume_st = st;
    resume_st.checkpoint_dir = work.string();
    state.ResumeTiming();
    const auto r0 = std::chrono::steady_clock::now();
    v = run_consensus(resume_st);
    resume_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - r0)
                    .count();
    benchmark::DoNotOptimize(v.stats.configs);
  }
  std::filesystem::remove_all(work);
  if (!v.resumed || !v.complete) {
    state.SkipWithError("resumed run did not resume to completion");
    return;
  }
  if (service::encode_verdict(v) !=
          service::encode_verdict(incore_reference()) ||
      service::encode_verdict(fresh) !=
          service::encode_verdict(incore_reference())) {
    state.SkipWithError("resumed or fresh checkpointed verdict differs "
                        "from the in-core verdict");
    return;
  }
  if (resume_ms >= fresh_ms) {
    state.SkipWithError("resume was not faster than fresh recomputation");
    return;
  }
  export_verdict_counters(state, v);
  state.counters["resumed"] = 1.0;
  state.counters["resume_beats_recompute"] = 1.0;
  state.counters["fresh_full_ms"] = fresh_ms;
  state.counters["resume_ms"] = resume_ms;
  benchjson::memory_counters(state);
}

}  // namespace

BENCHMARK(BM_InCoreReference)
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Smallest budget first: its gate set includes the overflow ratio, and the
// sweep is ordered so each variant's sampled peaks are its own.
BENCHMARK(BM_OutOfCoreSweep)
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({256, 0})
    ->ArgNames({"budget_kb", "gate_overflow"})
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_CheckpointResume)
    ->Args({256})
    ->ArgNames({"budget_kb"})
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return wfregs::benchjson::run(argc, argv, "BENCH_e18_out_of_core.json");
}
