// E12 -- the compiled execution core: undo-based exploration over interned
// configurations (explore) head-to-head against the pre-refactor
// copy-the-engine-to-branch explorer (explore_legacy), on E7's BM_Explorer
// workload so configs/sec is directly comparable with the historical record.
//
// Per benchmark the JSON carries:
//   configs          -- configurations explored (deterministic per workload)
//   interned_configs -- intern-pool occupancy at return (== configs)
//   configs_per_sec  -- throughput
//   peak_rss_bytes   -- process peak RSS after the timing loop
//   spilled_bytes / resident_arena_bytes -- out-of-core arena residency
//                           (0 when the run stays in-core)
//
// Ordering matters for the RSS counter: peak RSS is monotone over the
// process lifetime, so all compiled benchmarks are registered (and run)
// before any legacy one -- their readings bound the compiled core's
// footprint, while the legacy readings include everything before them and
// only the final maximum is meaningful (that maximum is what
// check_bench_regression.py gates).
//
// The legacy benchmarks also cross-check their outcome against explore()
// on the same root: any divergence in configs / edges / depth / verdict is
// reported via SkipWithError, which sets error_occurred in the JSON and
// fails the CI gate -- the speedup can never be bought with a wrong answer.
//
// Emits BENCH_e12_compiled_core.json (Google Benchmark JSON schema).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_json_main.hpp"
#include "wfregs/runtime/explorer.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace {

using namespace wfregs;

struct Workload {
  int procs;
  int ops;
  const char* tag;
};

constexpr Workload kWorkloads[] = {
    {2, 2, "2p2o"}, {2, 4, "2p4o"}, {3, 2, "3p2o"},
    {3, 3, "3p3o"}, {4, 2, "4p2o"},
};

// E7's BM_Explorer system, verbatim: k writers hammering one shared
// 4-valued register with (write; read)^ops programs folding the read back
// into process state.  Rebuilt inside the timing loop, exactly as E7 does,
// so the two throughput records stay comparable.
Engine make_root(int procs, int ops) {
  const zoo::RegisterLayout lay{4};
  const auto spec =
      std::make_shared<const TypeSpec>(zoo::register_type(4, procs));
  auto sys = std::make_shared<System>(procs);
  std::vector<PortId> ports;
  for (PortId p = 0; p < procs; ++p) ports.push_back(p);
  const ObjectId r = sys->add_base(spec, 0, ports);
  for (ProcId p = 0; p < procs; ++p) {
    ProgramBuilder b;
    for (int k = 0; k < ops; ++k) {
      b.invoke(0, lit(lay.write((p + k) % 4)), 0);
      b.invoke(0, lit(lay.read()), 1);
    }
    b.ret(reg(1));
    sys->set_toplevel(p, b.build("p" + std::to_string(p)), {r});
  }
  return Engine{std::move(sys)};
}

void set_counters(benchmark::State& state, const ExploreStats& stats) {
  state.counters["configs"] = static_cast<double>(stats.configs);
  state.counters["interned_configs"] =
      static_cast<double>(stats.interned_configs);
  state.counters["configs_per_sec"] =
      benchmark::Counter(static_cast<double>(stats.configs),
                         benchmark::Counter::kIsIterationInvariantRate);
  benchjson::memory_counters(state);
}

void BM_Compiled(benchmark::State& state, Workload w) {
  ExploreStats stats;
  for (auto _ : state) {
    const Engine root = make_root(w.procs, w.ops);
    const auto out = explore(root);
    benchmark::DoNotOptimize(out.stats.configs);
    stats = out.stats;
  }
  set_counters(state, stats);
}

void BM_Legacy(benchmark::State& state, Workload w) {
  ExploreStats stats;
  for (auto _ : state) {
    const Engine root = make_root(w.procs, w.ops);
    const auto out = explore_legacy(root, ExploreOptions{});
    benchmark::DoNotOptimize(out.stats.configs);
    stats = out.stats;
  }
  // Differential check, outside the timing loop: the compiled explorer must
  // reproduce the legacy outcome bit for bit on this workload.
  const Engine root = make_root(w.procs, w.ops);
  const auto legacy = explore_legacy(root, ExploreOptions{});
  const auto compiled = explore(root);
  if (compiled.wait_free != legacy.wait_free ||
      compiled.complete != legacy.complete ||
      compiled.violation != legacy.violation ||
      compiled.stats.configs != legacy.stats.configs ||
      compiled.stats.edges != legacy.stats.edges ||
      compiled.stats.terminals != legacy.stats.terminals ||
      compiled.stats.interned_configs != legacy.stats.interned_configs ||
      compiled.stats.depth != legacy.stats.depth) {
    state.SkipWithError(
        (std::string("compiled/legacy outcome mismatch on ") + w.tag)
            .c_str());
    return;
  }
  set_counters(state, stats);
}

void register_all() {
  for (const Workload& w : kWorkloads) {
    benchmark::RegisterBenchmark(
        (std::string("compiled_core/") + w.tag + "/compiled").c_str(),
        BM_Compiled, w)
        ->Unit(benchmark::kMillisecond);
  }
  for (const Workload& w : kWorkloads) {
    benchmark::RegisterBenchmark(
        (std::string("compiled_core/") + w.tag + "/legacy").c_str(),
        BM_Legacy, w)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return wfregs::benchjson::run(argc, argv, "BENCH_e12_compiled_core.json");
}
