# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_type_spec[1]_include.cmake")
include("/root/repo/build/tests/test_type_zoo[1]_include.cmake")
include("/root/repo/build/tests/test_triviality[1]_include.cmake")
include("/root/repo/build/tests/test_type_algebra[1]_include.cmake")
include("/root/repo/build/tests/test_program[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_linearizability[1]_include.cmake")
include("/root/repo/build/tests/test_explorer[1]_include.cmake")
include("/root/repo/build/tests/test_registers[1]_include.cmake")
include("/root/repo/build/tests/test_consensus_protocols[1]_include.cmake")
include("/root/repo/build/tests/test_consensus_power[1]_include.cmake")
include("/root/repo/build/tests/test_bounded_register[1]_include.cmake")
include("/root/repo/build/tests/test_oneuse_from_type[1]_include.cmake")
include("/root/repo/build/tests/test_register_elimination[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_universal[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_extras[1]_include.cmake")
include("/root/repo/build/tests/test_snapshot[1]_include.cmake")
include("/root/repo/build/tests/test_weak_registers[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_linearizability_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_dot_export[1]_include.cmake")
include("/root/repo/build/tests/test_schedulers[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
