# Empty dependencies file for test_consensus_protocols.
# This may be replaced when dependencies are built.
