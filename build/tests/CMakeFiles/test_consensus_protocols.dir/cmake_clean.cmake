file(REMOVE_RECURSE
  "CMakeFiles/test_consensus_protocols.dir/consensus_protocols.cpp.o"
  "CMakeFiles/test_consensus_protocols.dir/consensus_protocols.cpp.o.d"
  "test_consensus_protocols"
  "test_consensus_protocols.pdb"
  "test_consensus_protocols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consensus_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
