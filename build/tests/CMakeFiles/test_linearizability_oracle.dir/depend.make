# Empty dependencies file for test_linearizability_oracle.
# This may be replaced when dependencies are built.
