file(REMOVE_RECURSE
  "CMakeFiles/test_linearizability_oracle.dir/linearizability_oracle.cpp.o"
  "CMakeFiles/test_linearizability_oracle.dir/linearizability_oracle.cpp.o.d"
  "test_linearizability_oracle"
  "test_linearizability_oracle.pdb"
  "test_linearizability_oracle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linearizability_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
