file(REMOVE_RECURSE
  "CMakeFiles/test_consensus_power.dir/consensus_power.cpp.o"
  "CMakeFiles/test_consensus_power.dir/consensus_power.cpp.o.d"
  "test_consensus_power"
  "test_consensus_power.pdb"
  "test_consensus_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consensus_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
