# Empty compiler generated dependencies file for test_consensus_power.
# This may be replaced when dependencies are built.
