file(REMOVE_RECURSE
  "CMakeFiles/test_register_elimination.dir/register_elimination.cpp.o"
  "CMakeFiles/test_register_elimination.dir/register_elimination.cpp.o.d"
  "test_register_elimination"
  "test_register_elimination.pdb"
  "test_register_elimination[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_register_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
