file(REMOVE_RECURSE
  "CMakeFiles/test_weak_registers.dir/weak_registers.cpp.o"
  "CMakeFiles/test_weak_registers.dir/weak_registers.cpp.o.d"
  "test_weak_registers"
  "test_weak_registers.pdb"
  "test_weak_registers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weak_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
