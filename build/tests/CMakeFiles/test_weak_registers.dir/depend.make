# Empty dependencies file for test_weak_registers.
# This may be replaced when dependencies are built.
