# Empty dependencies file for test_triviality.
# This may be replaced when dependencies are built.
