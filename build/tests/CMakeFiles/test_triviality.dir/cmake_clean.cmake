file(REMOVE_RECURSE
  "CMakeFiles/test_triviality.dir/triviality.cpp.o"
  "CMakeFiles/test_triviality.dir/triviality.cpp.o.d"
  "test_triviality"
  "test_triviality.pdb"
  "test_triviality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_triviality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
