file(REMOVE_RECURSE
  "CMakeFiles/test_bounded_register.dir/bounded_register.cpp.o"
  "CMakeFiles/test_bounded_register.dir/bounded_register.cpp.o.d"
  "test_bounded_register"
  "test_bounded_register.pdb"
  "test_bounded_register[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bounded_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
