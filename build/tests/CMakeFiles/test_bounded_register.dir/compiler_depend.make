# Empty compiler generated dependencies file for test_bounded_register.
# This may be replaced when dependencies are built.
