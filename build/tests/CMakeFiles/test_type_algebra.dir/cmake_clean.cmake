file(REMOVE_RECURSE
  "CMakeFiles/test_type_algebra.dir/type_algebra.cpp.o"
  "CMakeFiles/test_type_algebra.dir/type_algebra.cpp.o.d"
  "test_type_algebra"
  "test_type_algebra.pdb"
  "test_type_algebra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_type_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
