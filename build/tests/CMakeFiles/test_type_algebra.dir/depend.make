# Empty dependencies file for test_type_algebra.
# This may be replaced when dependencies are built.
