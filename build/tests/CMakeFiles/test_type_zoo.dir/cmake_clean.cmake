file(REMOVE_RECURSE
  "CMakeFiles/test_type_zoo.dir/type_zoo.cpp.o"
  "CMakeFiles/test_type_zoo.dir/type_zoo.cpp.o.d"
  "test_type_zoo"
  "test_type_zoo.pdb"
  "test_type_zoo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_type_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
