# Empty dependencies file for test_type_zoo.
# This may be replaced when dependencies are built.
