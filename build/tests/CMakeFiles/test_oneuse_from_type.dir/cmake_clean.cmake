file(REMOVE_RECURSE
  "CMakeFiles/test_oneuse_from_type.dir/oneuse_from_type.cpp.o"
  "CMakeFiles/test_oneuse_from_type.dir/oneuse_from_type.cpp.o.d"
  "test_oneuse_from_type"
  "test_oneuse_from_type.pdb"
  "test_oneuse_from_type[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oneuse_from_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
