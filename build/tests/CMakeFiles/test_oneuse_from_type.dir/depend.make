# Empty dependencies file for test_oneuse_from_type.
# This may be replaced when dependencies are built.
