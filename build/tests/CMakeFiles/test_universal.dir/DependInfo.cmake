
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/universal.cpp" "tests/CMakeFiles/test_universal.dir/universal.cpp.o" "gcc" "tests/CMakeFiles/test_universal.dir/universal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/consensus/CMakeFiles/wfregs_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/wfregs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/typesys/CMakeFiles/wfregs_typesys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
