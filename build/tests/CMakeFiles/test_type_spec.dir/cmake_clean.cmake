file(REMOVE_RECURSE
  "CMakeFiles/test_type_spec.dir/type_spec.cpp.o"
  "CMakeFiles/test_type_spec.dir/type_spec.cpp.o.d"
  "test_type_spec"
  "test_type_spec.pdb"
  "test_type_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_type_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
