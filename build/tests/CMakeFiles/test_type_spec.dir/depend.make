# Empty dependencies file for test_type_spec.
# This may be replaced when dependencies are built.
