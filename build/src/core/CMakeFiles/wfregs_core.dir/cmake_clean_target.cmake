file(REMOVE_RECURSE
  "libwfregs_core.a"
)
