file(REMOVE_RECURSE
  "CMakeFiles/wfregs_core.dir/access_bounds.cpp.o"
  "CMakeFiles/wfregs_core.dir/access_bounds.cpp.o.d"
  "CMakeFiles/wfregs_core.dir/bounded_register.cpp.o"
  "CMakeFiles/wfregs_core.dir/bounded_register.cpp.o.d"
  "CMakeFiles/wfregs_core.dir/oneuse_from_consensus.cpp.o"
  "CMakeFiles/wfregs_core.dir/oneuse_from_consensus.cpp.o.d"
  "CMakeFiles/wfregs_core.dir/oneuse_from_type.cpp.o"
  "CMakeFiles/wfregs_core.dir/oneuse_from_type.cpp.o.d"
  "CMakeFiles/wfregs_core.dir/register_elimination.cpp.o"
  "CMakeFiles/wfregs_core.dir/register_elimination.cpp.o.d"
  "libwfregs_core.a"
  "libwfregs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfregs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
