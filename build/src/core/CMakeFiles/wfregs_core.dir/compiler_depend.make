# Empty compiler generated dependencies file for wfregs_core.
# This may be replaced when dependencies are built.
