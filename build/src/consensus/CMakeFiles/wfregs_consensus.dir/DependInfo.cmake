
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/check.cpp" "src/consensus/CMakeFiles/wfregs_consensus.dir/check.cpp.o" "gcc" "src/consensus/CMakeFiles/wfregs_consensus.dir/check.cpp.o.d"
  "/root/repo/src/consensus/multivalued.cpp" "src/consensus/CMakeFiles/wfregs_consensus.dir/multivalued.cpp.o" "gcc" "src/consensus/CMakeFiles/wfregs_consensus.dir/multivalued.cpp.o.d"
  "/root/repo/src/consensus/power.cpp" "src/consensus/CMakeFiles/wfregs_consensus.dir/power.cpp.o" "gcc" "src/consensus/CMakeFiles/wfregs_consensus.dir/power.cpp.o.d"
  "/root/repo/src/consensus/protocols.cpp" "src/consensus/CMakeFiles/wfregs_consensus.dir/protocols.cpp.o" "gcc" "src/consensus/CMakeFiles/wfregs_consensus.dir/protocols.cpp.o.d"
  "/root/repo/src/consensus/universal.cpp" "src/consensus/CMakeFiles/wfregs_consensus.dir/universal.cpp.o" "gcc" "src/consensus/CMakeFiles/wfregs_consensus.dir/universal.cpp.o.d"
  "/root/repo/src/consensus/valency.cpp" "src/consensus/CMakeFiles/wfregs_consensus.dir/valency.cpp.o" "gcc" "src/consensus/CMakeFiles/wfregs_consensus.dir/valency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/wfregs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/typesys/CMakeFiles/wfregs_typesys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
