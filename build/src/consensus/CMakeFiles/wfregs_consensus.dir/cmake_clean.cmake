file(REMOVE_RECURSE
  "CMakeFiles/wfregs_consensus.dir/check.cpp.o"
  "CMakeFiles/wfregs_consensus.dir/check.cpp.o.d"
  "CMakeFiles/wfregs_consensus.dir/multivalued.cpp.o"
  "CMakeFiles/wfregs_consensus.dir/multivalued.cpp.o.d"
  "CMakeFiles/wfregs_consensus.dir/power.cpp.o"
  "CMakeFiles/wfregs_consensus.dir/power.cpp.o.d"
  "CMakeFiles/wfregs_consensus.dir/protocols.cpp.o"
  "CMakeFiles/wfregs_consensus.dir/protocols.cpp.o.d"
  "CMakeFiles/wfregs_consensus.dir/universal.cpp.o"
  "CMakeFiles/wfregs_consensus.dir/universal.cpp.o.d"
  "CMakeFiles/wfregs_consensus.dir/valency.cpp.o"
  "CMakeFiles/wfregs_consensus.dir/valency.cpp.o.d"
  "libwfregs_consensus.a"
  "libwfregs_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfregs_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
