# Empty dependencies file for wfregs_consensus.
# This may be replaced when dependencies are built.
