file(REMOVE_RECURSE
  "libwfregs_consensus.a"
)
