file(REMOVE_RECURSE
  "CMakeFiles/wfregs_typesys.dir/random_type.cpp.o"
  "CMakeFiles/wfregs_typesys.dir/random_type.cpp.o.d"
  "CMakeFiles/wfregs_typesys.dir/serialize.cpp.o"
  "CMakeFiles/wfregs_typesys.dir/serialize.cpp.o.d"
  "CMakeFiles/wfregs_typesys.dir/triviality.cpp.o"
  "CMakeFiles/wfregs_typesys.dir/triviality.cpp.o.d"
  "CMakeFiles/wfregs_typesys.dir/type_algebra.cpp.o"
  "CMakeFiles/wfregs_typesys.dir/type_algebra.cpp.o.d"
  "CMakeFiles/wfregs_typesys.dir/type_spec.cpp.o"
  "CMakeFiles/wfregs_typesys.dir/type_spec.cpp.o.d"
  "CMakeFiles/wfregs_typesys.dir/type_zoo.cpp.o"
  "CMakeFiles/wfregs_typesys.dir/type_zoo.cpp.o.d"
  "libwfregs_typesys.a"
  "libwfregs_typesys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfregs_typesys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
