# Empty compiler generated dependencies file for wfregs_typesys.
# This may be replaced when dependencies are built.
