
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/typesys/random_type.cpp" "src/typesys/CMakeFiles/wfregs_typesys.dir/random_type.cpp.o" "gcc" "src/typesys/CMakeFiles/wfregs_typesys.dir/random_type.cpp.o.d"
  "/root/repo/src/typesys/serialize.cpp" "src/typesys/CMakeFiles/wfregs_typesys.dir/serialize.cpp.o" "gcc" "src/typesys/CMakeFiles/wfregs_typesys.dir/serialize.cpp.o.d"
  "/root/repo/src/typesys/triviality.cpp" "src/typesys/CMakeFiles/wfregs_typesys.dir/triviality.cpp.o" "gcc" "src/typesys/CMakeFiles/wfregs_typesys.dir/triviality.cpp.o.d"
  "/root/repo/src/typesys/type_algebra.cpp" "src/typesys/CMakeFiles/wfregs_typesys.dir/type_algebra.cpp.o" "gcc" "src/typesys/CMakeFiles/wfregs_typesys.dir/type_algebra.cpp.o.d"
  "/root/repo/src/typesys/type_spec.cpp" "src/typesys/CMakeFiles/wfregs_typesys.dir/type_spec.cpp.o" "gcc" "src/typesys/CMakeFiles/wfregs_typesys.dir/type_spec.cpp.o.d"
  "/root/repo/src/typesys/type_zoo.cpp" "src/typesys/CMakeFiles/wfregs_typesys.dir/type_zoo.cpp.o" "gcc" "src/typesys/CMakeFiles/wfregs_typesys.dir/type_zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
