file(REMOVE_RECURSE
  "libwfregs_typesys.a"
)
