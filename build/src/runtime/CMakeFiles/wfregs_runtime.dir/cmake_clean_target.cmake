file(REMOVE_RECURSE
  "libwfregs_runtime.a"
)
