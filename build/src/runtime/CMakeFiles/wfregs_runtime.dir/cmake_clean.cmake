file(REMOVE_RECURSE
  "CMakeFiles/wfregs_runtime.dir/dot_export.cpp.o"
  "CMakeFiles/wfregs_runtime.dir/dot_export.cpp.o.d"
  "CMakeFiles/wfregs_runtime.dir/engine.cpp.o"
  "CMakeFiles/wfregs_runtime.dir/engine.cpp.o.d"
  "CMakeFiles/wfregs_runtime.dir/explorer.cpp.o"
  "CMakeFiles/wfregs_runtime.dir/explorer.cpp.o.d"
  "CMakeFiles/wfregs_runtime.dir/fuzz.cpp.o"
  "CMakeFiles/wfregs_runtime.dir/fuzz.cpp.o.d"
  "CMakeFiles/wfregs_runtime.dir/history.cpp.o"
  "CMakeFiles/wfregs_runtime.dir/history.cpp.o.d"
  "CMakeFiles/wfregs_runtime.dir/implementation.cpp.o"
  "CMakeFiles/wfregs_runtime.dir/implementation.cpp.o.d"
  "CMakeFiles/wfregs_runtime.dir/linearizability.cpp.o"
  "CMakeFiles/wfregs_runtime.dir/linearizability.cpp.o.d"
  "CMakeFiles/wfregs_runtime.dir/program.cpp.o"
  "CMakeFiles/wfregs_runtime.dir/program.cpp.o.d"
  "CMakeFiles/wfregs_runtime.dir/regularity.cpp.o"
  "CMakeFiles/wfregs_runtime.dir/regularity.cpp.o.d"
  "CMakeFiles/wfregs_runtime.dir/scheduler.cpp.o"
  "CMakeFiles/wfregs_runtime.dir/scheduler.cpp.o.d"
  "CMakeFiles/wfregs_runtime.dir/system.cpp.o"
  "CMakeFiles/wfregs_runtime.dir/system.cpp.o.d"
  "CMakeFiles/wfregs_runtime.dir/verify.cpp.o"
  "CMakeFiles/wfregs_runtime.dir/verify.cpp.o.d"
  "libwfregs_runtime.a"
  "libwfregs_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfregs_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
