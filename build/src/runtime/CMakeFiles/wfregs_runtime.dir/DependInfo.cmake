
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/dot_export.cpp" "src/runtime/CMakeFiles/wfregs_runtime.dir/dot_export.cpp.o" "gcc" "src/runtime/CMakeFiles/wfregs_runtime.dir/dot_export.cpp.o.d"
  "/root/repo/src/runtime/engine.cpp" "src/runtime/CMakeFiles/wfregs_runtime.dir/engine.cpp.o" "gcc" "src/runtime/CMakeFiles/wfregs_runtime.dir/engine.cpp.o.d"
  "/root/repo/src/runtime/explorer.cpp" "src/runtime/CMakeFiles/wfregs_runtime.dir/explorer.cpp.o" "gcc" "src/runtime/CMakeFiles/wfregs_runtime.dir/explorer.cpp.o.d"
  "/root/repo/src/runtime/fuzz.cpp" "src/runtime/CMakeFiles/wfregs_runtime.dir/fuzz.cpp.o" "gcc" "src/runtime/CMakeFiles/wfregs_runtime.dir/fuzz.cpp.o.d"
  "/root/repo/src/runtime/history.cpp" "src/runtime/CMakeFiles/wfregs_runtime.dir/history.cpp.o" "gcc" "src/runtime/CMakeFiles/wfregs_runtime.dir/history.cpp.o.d"
  "/root/repo/src/runtime/implementation.cpp" "src/runtime/CMakeFiles/wfregs_runtime.dir/implementation.cpp.o" "gcc" "src/runtime/CMakeFiles/wfregs_runtime.dir/implementation.cpp.o.d"
  "/root/repo/src/runtime/linearizability.cpp" "src/runtime/CMakeFiles/wfregs_runtime.dir/linearizability.cpp.o" "gcc" "src/runtime/CMakeFiles/wfregs_runtime.dir/linearizability.cpp.o.d"
  "/root/repo/src/runtime/program.cpp" "src/runtime/CMakeFiles/wfregs_runtime.dir/program.cpp.o" "gcc" "src/runtime/CMakeFiles/wfregs_runtime.dir/program.cpp.o.d"
  "/root/repo/src/runtime/regularity.cpp" "src/runtime/CMakeFiles/wfregs_runtime.dir/regularity.cpp.o" "gcc" "src/runtime/CMakeFiles/wfregs_runtime.dir/regularity.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/runtime/CMakeFiles/wfregs_runtime.dir/scheduler.cpp.o" "gcc" "src/runtime/CMakeFiles/wfregs_runtime.dir/scheduler.cpp.o.d"
  "/root/repo/src/runtime/system.cpp" "src/runtime/CMakeFiles/wfregs_runtime.dir/system.cpp.o" "gcc" "src/runtime/CMakeFiles/wfregs_runtime.dir/system.cpp.o.d"
  "/root/repo/src/runtime/verify.cpp" "src/runtime/CMakeFiles/wfregs_runtime.dir/verify.cpp.o" "gcc" "src/runtime/CMakeFiles/wfregs_runtime.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/typesys/CMakeFiles/wfregs_typesys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
