# Empty dependencies file for wfregs_runtime.
# This may be replaced when dependencies are built.
