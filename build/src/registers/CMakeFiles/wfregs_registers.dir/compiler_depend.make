# Empty compiler generated dependencies file for wfregs_registers.
# This may be replaced when dependencies are built.
