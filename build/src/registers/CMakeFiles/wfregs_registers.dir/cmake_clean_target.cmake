file(REMOVE_RECURSE
  "libwfregs_registers.a"
)
