file(REMOVE_RECURSE
  "CMakeFiles/wfregs_registers.dir/chain.cpp.o"
  "CMakeFiles/wfregs_registers.dir/chain.cpp.o.d"
  "CMakeFiles/wfregs_registers.dir/mrmw.cpp.o"
  "CMakeFiles/wfregs_registers.dir/mrmw.cpp.o.d"
  "CMakeFiles/wfregs_registers.dir/mrsw.cpp.o"
  "CMakeFiles/wfregs_registers.dir/mrsw.cpp.o.d"
  "CMakeFiles/wfregs_registers.dir/simpson.cpp.o"
  "CMakeFiles/wfregs_registers.dir/simpson.cpp.o.d"
  "CMakeFiles/wfregs_registers.dir/snapshot.cpp.o"
  "CMakeFiles/wfregs_registers.dir/snapshot.cpp.o.d"
  "CMakeFiles/wfregs_registers.dir/weak.cpp.o"
  "CMakeFiles/wfregs_registers.dir/weak.cpp.o.d"
  "libwfregs_registers.a"
  "libwfregs_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfregs_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
