
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/registers/chain.cpp" "src/registers/CMakeFiles/wfregs_registers.dir/chain.cpp.o" "gcc" "src/registers/CMakeFiles/wfregs_registers.dir/chain.cpp.o.d"
  "/root/repo/src/registers/mrmw.cpp" "src/registers/CMakeFiles/wfregs_registers.dir/mrmw.cpp.o" "gcc" "src/registers/CMakeFiles/wfregs_registers.dir/mrmw.cpp.o.d"
  "/root/repo/src/registers/mrsw.cpp" "src/registers/CMakeFiles/wfregs_registers.dir/mrsw.cpp.o" "gcc" "src/registers/CMakeFiles/wfregs_registers.dir/mrsw.cpp.o.d"
  "/root/repo/src/registers/simpson.cpp" "src/registers/CMakeFiles/wfregs_registers.dir/simpson.cpp.o" "gcc" "src/registers/CMakeFiles/wfregs_registers.dir/simpson.cpp.o.d"
  "/root/repo/src/registers/snapshot.cpp" "src/registers/CMakeFiles/wfregs_registers.dir/snapshot.cpp.o" "gcc" "src/registers/CMakeFiles/wfregs_registers.dir/snapshot.cpp.o.d"
  "/root/repo/src/registers/weak.cpp" "src/registers/CMakeFiles/wfregs_registers.dir/weak.cpp.o" "gcc" "src/registers/CMakeFiles/wfregs_registers.dir/weak.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/wfregs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/typesys/CMakeFiles/wfregs_typesys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
