# Empty dependencies file for wfregs_hierarchy.
# This may be replaced when dependencies are built.
