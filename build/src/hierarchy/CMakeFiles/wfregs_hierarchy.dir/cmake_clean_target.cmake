file(REMOVE_RECURSE
  "libwfregs_hierarchy.a"
)
