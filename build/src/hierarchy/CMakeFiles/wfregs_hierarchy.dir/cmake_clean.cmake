file(REMOVE_RECURSE
  "CMakeFiles/wfregs_hierarchy.dir/hierarchy.cpp.o"
  "CMakeFiles/wfregs_hierarchy.dir/hierarchy.cpp.o.d"
  "libwfregs_hierarchy.a"
  "libwfregs_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfregs_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
