# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_register_elimination]=] "/root/repo/build/examples/register_elimination_demo" "queue")
set_tests_properties([=[example_register_elimination]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_hierarchy_survey]=] "/root/repo/build/examples/hierarchy_survey" "--probe-depth" "1")
set_tests_properties([=[example_hierarchy_survey]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_execution_trees]=] "/root/repo/build/examples/execution_trees" "--dot" "/root/repo/build/examples/tree.dot")
set_tests_properties([=[example_execution_trees]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_universality_tower]=] "/root/repo/build/examples/universality_tower")
set_tests_properties([=[example_universality_tower]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cli_zoo]=] "/root/repo/build/examples/wfregs_cli" "zoo")
set_tests_properties([=[example_cli_zoo]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
