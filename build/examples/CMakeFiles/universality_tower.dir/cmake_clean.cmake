file(REMOVE_RECURSE
  "CMakeFiles/universality_tower.dir/universality_tower.cpp.o"
  "CMakeFiles/universality_tower.dir/universality_tower.cpp.o.d"
  "universality_tower"
  "universality_tower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universality_tower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
