# Empty compiler generated dependencies file for universality_tower.
# This may be replaced when dependencies are built.
