file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_survey.dir/hierarchy_survey.cpp.o"
  "CMakeFiles/hierarchy_survey.dir/hierarchy_survey.cpp.o.d"
  "hierarchy_survey"
  "hierarchy_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
