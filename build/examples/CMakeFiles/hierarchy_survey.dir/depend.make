# Empty dependencies file for hierarchy_survey.
# This may be replaced when dependencies are built.
