file(REMOVE_RECURSE
  "CMakeFiles/register_elimination_demo.dir/register_elimination_demo.cpp.o"
  "CMakeFiles/register_elimination_demo.dir/register_elimination_demo.cpp.o.d"
  "register_elimination_demo"
  "register_elimination_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/register_elimination_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
