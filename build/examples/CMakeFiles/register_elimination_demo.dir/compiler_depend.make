# Empty compiler generated dependencies file for register_elimination_demo.
# This may be replaced when dependencies are built.
