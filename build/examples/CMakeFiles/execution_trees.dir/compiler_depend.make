# Empty compiler generated dependencies file for execution_trees.
# This may be replaced when dependencies are built.
