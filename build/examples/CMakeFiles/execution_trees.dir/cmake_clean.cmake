file(REMOVE_RECURSE
  "CMakeFiles/execution_trees.dir/execution_trees.cpp.o"
  "CMakeFiles/execution_trees.dir/execution_trees.cpp.o.d"
  "execution_trees"
  "execution_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/execution_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
