# Empty compiler generated dependencies file for wfregs_cli.
# This may be replaced when dependencies are built.
