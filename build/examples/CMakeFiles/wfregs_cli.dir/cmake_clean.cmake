file(REMOVE_RECURSE
  "CMakeFiles/wfregs_cli.dir/wfregs_cli.cpp.o"
  "CMakeFiles/wfregs_cli.dir/wfregs_cli.cpp.o.d"
  "wfregs_cli"
  "wfregs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfregs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
