# Empty compiler generated dependencies file for bench_e3_register_chain.
# This may be replaced when dependencies are built.
