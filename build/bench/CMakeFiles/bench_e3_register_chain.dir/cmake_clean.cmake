file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_register_chain.dir/bench_e3_register_chain.cpp.o"
  "CMakeFiles/bench_e3_register_chain.dir/bench_e3_register_chain.cpp.o.d"
  "bench_e3_register_chain"
  "bench_e3_register_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_register_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
