file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_hierarchy.dir/bench_e8_hierarchy.cpp.o"
  "CMakeFiles/bench_e8_hierarchy.dir/bench_e8_hierarchy.cpp.o.d"
  "bench_e8_hierarchy"
  "bench_e8_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
