# Empty dependencies file for bench_e7_runtime.
# This may be replaced when dependencies are built.
