file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_oneuse_array.dir/bench_e1_oneuse_array.cpp.o"
  "CMakeFiles/bench_e1_oneuse_array.dir/bench_e1_oneuse_array.cpp.o.d"
  "bench_e1_oneuse_array"
  "bench_e1_oneuse_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_oneuse_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
