# Empty dependencies file for bench_e1_oneuse_array.
# This may be replaced when dependencies are built.
