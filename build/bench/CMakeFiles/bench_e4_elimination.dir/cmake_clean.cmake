file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_elimination.dir/bench_e4_elimination.cpp.o"
  "CMakeFiles/bench_e4_elimination.dir/bench_e4_elimination.cpp.o.d"
  "bench_e4_elimination"
  "bench_e4_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
