# Empty compiler generated dependencies file for bench_e5_pair_search.
# This may be replaced when dependencies are built.
