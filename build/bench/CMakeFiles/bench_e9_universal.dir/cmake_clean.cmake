file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_universal.dir/bench_e9_universal.cpp.o"
  "CMakeFiles/bench_e9_universal.dir/bench_e9_universal.cpp.o.d"
  "bench_e9_universal"
  "bench_e9_universal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_universal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
