# Empty dependencies file for bench_e9_universal.
# This may be replaced when dependencies are built.
