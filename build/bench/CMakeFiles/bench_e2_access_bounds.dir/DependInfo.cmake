
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e2_access_bounds.cpp" "bench/CMakeFiles/bench_e2_access_bounds.dir/bench_e2_access_bounds.cpp.o" "gcc" "bench/CMakeFiles/bench_e2_access_bounds.dir/bench_e2_access_bounds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wfregs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/wfregs_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/registers/CMakeFiles/wfregs_registers.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/wfregs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/typesys/CMakeFiles/wfregs_typesys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
