// Bounded synthesis of 2-process consensus protocols.
//
// Given a finite multiset of objects (types + initial states) and a bound k
// on the number of invocations each process may perform before deciding,
// this module decides whether ANY pair of deterministic programs solves
// binary consensus for 2 processes: agreement and validity in every
// interleaving and every nondeterministic object transition, for all four
// input vectors.
//
// A strategy maps a process's view -- its input bit plus the sequence of
// responses it has received -- to its next action (invoke some invocation on
// some object, or decide).  The search backtracks over partial strategies
// while an adversary enumerates schedules; because the recursion carries the
// full list of outstanding proof obligations, a "solvable" answer comes with
// a genuinely consistent strategy and an "unsolvable" answer is an
// exhaustive proof (for the given bound).
//
// This mechanizes the experimental side of the hierarchy questions the
// paper studies: e.g. one test&set object alone CANNOT solve 2-process
// consensus (h_1(test&set) = 1) while test&set plus registers can
// (h_1^r = 2), and -- per this paper's Theorem 5 -- multiple test&set
// objects suffice without registers (h_m = h_m^r = 2).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "wfregs/typesys/type_spec.hpp"

namespace wfregs::consensus {

struct SynthesisObject {
  std::shared_ptr<const TypeSpec> spec;
  StateId initial = 0;
  /// Port used by process p (defaults to port p when empty).
  std::vector<PortId> port_of_process;
};

enum class SynthesisVerdict { kSolvable, kUnsolvable, kUnknown };

struct SynthesisResult {
  SynthesisVerdict verdict = SynthesisVerdict::kUnknown;
  std::size_t nodes = 0;  ///< search nodes visited
};

/// Decides whether 2 processes can solve binary consensus with the given
/// objects in at most `max_ops` invocations per process.  `node_cap` bounds
/// the search; exceeding it yields kUnknown.
SynthesisResult synthesize_two_consensus(
    const std::vector<SynthesisObject>& objects, int max_ops,
    std::size_t node_cap = 5000000);

}  // namespace wfregs::consensus
