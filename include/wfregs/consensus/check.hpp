// Exhaustive consensus checking: does an implementation of T_{c,n} actually
// solve wait-free n-process consensus?
//
// For each of the 2^n input vectors (the roots of the paper's Section 4.2
// execution trees) the checker explores every schedule and every
// nondeterministic object transition, verifying at each terminal
// configuration:
//
//   * agreement  -- all processes return the same value;
//   * validity   -- the returned value was some process's input;
//   * wait-freedom and termination come from the exploration itself (cycle
//     detection and completeness).
//
// The checker also reports the paper's quantities: the depth D = max over
// the 2^n trees of the longest execution (Section 4.2's uniform access
// bound), and optionally per-base-object access bounds (the tighter per-bit
// r_b / w_b that size the Section 4.3 arrays).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "wfregs/runtime/explorer.hpp"
#include "wfregs/runtime/implementation.hpp"

namespace wfregs::consensus {

struct ConsensusCheckResult {
  bool solves = false;      ///< agreement + validity + wait-free, all inputs
  bool wait_free = true;
  bool complete = true;     ///< exploration finished within limits
  /// True when the verdict came from options.static_consensus (no
  /// exploration ran: depth/configs/terminals stay 0 and detail carries the
  /// static justification instead of a violation trace).
  bool static_decision = false;
  /// Any of the per-root explorations resumed from a checkpoint (out-of-core
  /// runs; each input vector checkpoints into its own `root<vec>`
  /// subdirectory of storage.checkpoint_dir).
  bool resumed = false;
  /// The check stopped early but left resumable state behind -- an
  /// interrupt checkpoint for the cut root and/or final snapshots for the
  /// roots already done -- so rerunning with the same checkpoint_dir picks
  /// up where this run stopped.  Always false for complete checks.
  bool checkpointed = false;
  std::string detail;       ///< first violation description
  /// Section 4.2's D: the maximum depth over all 2^n execution trees.
  int depth = 0;
  std::size_t configs = 0;    ///< summed over roots
  std::size_t terminals = 0;  ///< summed over roots
  /// Per-object access bound (indexed by system object id; the consensus
  /// object's system has deterministic ids across roots).  Filled only when
  /// limits.track_access_bounds is set; elementwise max over roots.
  std::vector<std::size_t> max_accesses;
  /// Per-object, per-invocation access bounds (same indexing and max-over-
  /// roots semantics); these split each bit's bound into reads vs writes,
  /// the r_b / w_b of Section 4.3.
  std::vector<std::vector<std::size_t>> max_accesses_by_inv;
  /// The raw per-root exploration stats (one entry per input vector, in
  /// vector-encoding order), kept so downstream analyses can aggregate
  /// within a root before maximizing across roots -- e.g. "writes of any
  /// value" per execution.  Filled only when limits.track_access_bounds.
  std::vector<ExploreStats> per_root;
};

/// Builds the standard consensus scenario system for one input vector:
/// process p proposes inputs[p] (0 or 1) through iface port p.  The object
/// id of the implemented consensus object is the LAST id in the system.
std::shared_ptr<System> consensus_scenario(
    std::shared_ptr<const Implementation> impl,
    const std::vector<int>& inputs);

/// Runs the full check over all 2^n input vectors.  Each root's exploration
/// runs on options.threads workers (0 = hardware concurrency, 1 = the
/// sequential legacy path); see the PARALLEL EXPLORATION contract in
/// explorer.hpp.
ConsensusCheckResult check_consensus(
    std::shared_ptr<const Implementation> impl,
    const VerifyOptions& options = {});

/// Legacy-limits convenience overload; equivalent to passing
/// VerifyOptions{limits} (default thread count).
ConsensusCheckResult check_consensus(
    std::shared_ptr<const Implementation> impl, const ExploreLimits& limits);

}  // namespace wfregs::consensus
