// Wait-free consensus protocols from the classical literature (Herlihy 1991;
// Plotkin 1989), each packaged as an Implementation of the n-process binary
// consensus type T_{c,n} of Section 2.1.
//
// Protocols that need registers take them in the Section 4.1 normal form --
// single-reader single-writer atomic bits / registers -- which both matches
// the paper's reduction ("we can assume that these registers are
// single-reader single-writer bits") and keeps exhaustive verification
// tractable.  These register-using protocols are the inputs to the
// Theorem 5 register-elimination transform.
#pragma once

#include <memory>

#include "wfregs/runtime/implementation.hpp"

namespace wfregs::consensus {

/// 2-process consensus from one test&set bit plus two SRSW bits (Herlihy
/// 1991).  propose(v) by p: publish v in bit[p]; race on test&set; the
/// winner decides its own value, the loser reads the winner's bit.
std::shared_ptr<const Implementation> from_test_and_set();

/// 2-process consensus from one FIFO queue pre-loaded with a winner token
/// plus two SRSW bits (Herlihy 1991).
std::shared_ptr<const Implementation> from_queue();

/// 2-process consensus from one fetch&add object plus two SRSW bits.
std::shared_ptr<const Implementation> from_fetch_and_add();

/// n-process consensus from a single compare&swap object over
/// {0, 1, bottom}; no registers (h_1(cas) >= n).
std::shared_ptr<const Implementation> from_cas(int n);

/// n-process consensus from a single sticky bit; no registers
/// (Plotkin 1989).
std::shared_ptr<const Implementation> from_sticky_bit(int n);

/// n-process consensus from one base consensus object (the identity
/// protocol; useful as a baseline and for Section 5.3 plumbing).
std::shared_ptr<const Implementation> from_consensus_object(int n);

/// n-process consensus from one compare&swap object that decides the WINNING
/// PROCESS ID, plus one MRSW register per process holding its input.  Unlike
/// from_cas, this protocol makes genuine use of multi-reader registers, so
/// it exercises the full register-elimination chain for n > 2.
std::shared_ptr<const Implementation> from_cas_ids(int n);

/// n-process consensus from ONE w-bit shift register initialized to 1, no
/// registers (Aspnes 2025: cons(w-bit shift register) = w).  Each process
/// shifts its input bit in once; the initial marker bit survives w - 1
/// shifts, so every response reveals how many shifts preceded it and what
/// the first shifter's bit was.  Requires n <= width for correctness --
/// larger n is accepted so tests can exhibit the over-width failure.
std::shared_ptr<const Implementation> from_shift_register(int n, int width);
/// Exact-width convenience: n processes on an n-bit shift register.
std::shared_ptr<const Implementation> from_shift_register(int n);

/// The deliberately hopeless protocol: n processes over read/write registers
/// only, each publishing its input and adopting the minimum published value.
/// It is wait-free but NOT a consensus protocol (agreement fails under
/// concurrency) -- registers alone cannot solve 2-process consensus
/// [FLP 1985; Loui & Abu-Amara 1987; Herlihy 1991], and the checker
/// exhibits the violating schedule.
std::shared_ptr<const Implementation> registers_only_attempt(int n);

}  // namespace wfregs::consensus
