// Valency analysis in the style of Fischer-Lynch-Paterson (1985) and
// Herlihy (1991), mechanized over an engine configuration graph.
//
// The valence of a configuration is the set of values that can still be
// decided from it (a configuration is v-univalent when only v is reachable,
// bivalent when both are).  The classical impossibility arguments the paper
// leans on -- "registers cannot implement 2-process consensus" [4, 7, 14] --
// hinge on two facts this module makes observable:
//
//   * a correct protocol has a bivalent initial configuration (for mixed
//     inputs), and
//   * every path from a bivalent configuration in a finite wait-free
//     protocol passes through a CRITICAL configuration (bivalent, all of
//     whose successors are univalent); examining the object accessed at a
//     critical configuration is how one derives which types can and cannot
//     solve consensus.
#pragma once

#include <cstddef>
#include <string>

#include "wfregs/runtime/engine.hpp"

namespace wfregs::consensus {

struct ValencyReport {
  /// All terminal configurations decide unanimously (prerequisite for the
  /// valence notion; reported rather than assumed).
  bool agreement_holds = true;
  bool complete = true;  ///< exploration finished within limits
  std::size_t configs = 0;
  std::size_t zero_valent = 0;
  std::size_t one_valent = 0;
  std::size_t bivalent = 0;
  std::size_t critical = 0;  ///< bivalent, every successor univalent
  bool initial_bivalent = false;
  /// Name of the base type accessed at the first critical configuration
  /// found (the "deciding object" of Herlihy's argument); empty if none.
  std::string critical_object_type;
};

/// Analyzes the configuration graph reachable from `root`.  `max_configs`
/// bounds the exploration.
ValencyReport valency_analysis(const Engine& root,
                               std::size_t max_configs = 1000000);

}  // namespace wfregs::consensus
