// Multi-valued consensus from binary consensus plus registers -- the bridge
// between the paper's binary T_{c,n} and the operation descriptors of
// Herlihy's universal construction (Section 2.3).
//
// Bit-by-bit prefix agreement: each process announces its proposal in an
// MRSW register, then walks the value's bits from most significant to least,
// proposing its current candidate's bit to the j-th binary consensus object.
// When the decided bit disagrees with its candidate, the process adopts some
// ANNOUNCED value whose high bits match the decided prefix -- one always
// exists, because the process that won bit j announced its candidate before
// proposing.  After the last bit, every process holds the same announced
// value.
#pragma once

#include <memory>

#include "wfregs/runtime/implementation.hpp"

namespace wfregs::consensus {

/// Builds an implementation of zoo::multi_consensus_type(values, n) from
/// ceil(log2 values) base binary consensus objects and n announce registers.
std::shared_ptr<const Implementation> multivalued_from_binary(int values,
                                                              int n);

}  // namespace wfregs::consensus
