// Herlihy's universality of consensus (Section 2.3 of the paper; Herlihy
// 1991): consensus objects can implement ANY type, wait-free.
//
// This is the result that motivates the whole hierarchy programme the paper
// refines: if T can implement n-process consensus, T can implement anything
// for n processes.  We build the bounded-log variant suited to exhaustive
// checking:
//
//   * a log of L slots, each an (n * |I|)-valued consensus object deciding
//     which (process, invocation) descriptor occupies that log position;
//   * each port keeps a persistent replica of the implemented type's state
//     plus its position in the log;
//   * an operation walks the log proposing its own descriptor until it wins
//     a slot, replaying every decided descriptor against the type's
//     transition function on the way; its response is the type's response at
//     its own slot.
//
// Wait-freedom within the bound is immediate (an operation touches at most
// L slots; exceeding L aborts loudly); linearizability follows because every
// process applies the SAME decided descriptor sequence to its replica.
// Descriptor slots may be base multi-valued consensus objects or nested
// implementations (e.g. multivalued_from_binary, closing the loop down to
// binary consensus and registers).
#pragma once

#include <memory>

#include "wfregs/runtime/implementation.hpp"

namespace wfregs::consensus {

/// Provides the log's slot objects: slot_factory(values, n) must return an
/// implementation of zoo::multi_consensus_type(values, n).  Empty means
/// "use base multi-valued consensus objects".
using SlotFactory = std::function<std::shared_ptr<const Implementation>(
    int values, int n)>;

/// A SlotFactory backed by multivalued_from_binary (binary consensus +
/// registers underneath).
SlotFactory binary_slot_factory();

/// Builds a wait-free implementation of `type` (which must be deterministic)
/// in state `initial` for all of its ports, from `log_length` consensus
/// slots.  Any execution performing more than `log_length` operations in
/// total aborts loudly.
std::shared_ptr<const Implementation> universal_implementation(
    const TypeSpec& type, StateId initial, int log_length,
    const SlotFactory& slot_factory = {});

}  // namespace wfregs::consensus
