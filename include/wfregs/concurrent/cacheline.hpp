// The one cache-line constant shared by every concurrency-sensitive layer.
//
// std::hardware_destructive_interference_size is the standard spelling, but
// GCC warns (-Winterference-size) that its value is ABI-fragile across
// translation units, and libstdc++ only exposes it behind a feature-test
// macro.  Every mainstream target this library builds on (x86-64, aarch64
// with 64-byte L1D lines) destructively interferes at 64 bytes, so the
// repo-wide constant is pinned here and adopted by the concurrent layer,
// the parallel explorer's shared counters, and the service fleet's hot
// members -- one number, one place to change it.
#pragma once

#include <cstddef>

// ThreadSanitizer neither compiles standalone fences (GCC promotes the
// -Wtsan "atomic_thread_fence is not supported" warning to an error under
// our -Werror) nor models them at runtime, so fence-synchronized non-atomic
// data would produce false race reports.  TSan builds therefore select an
// equivalently ordered fence-FREE formulation of the fence-based algorithms
// (strengthened per-operation orders in place of the standalone fences) via
// kTsanBuild below.
#if defined(__SANITIZE_THREAD__)
#define WFREGS_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WFREGS_TSAN_BUILD 1
#endif
#endif
#ifndef WFREGS_TSAN_BUILD
#define WFREGS_TSAN_BUILD 0
#endif

namespace wfregs::concurrent {

/// Destructive-interference granularity: members of distinct threads'
/// write-hot state must not share a block of this many bytes.
inline constexpr std::size_t kCacheLine = 64;

/// True when compiling under ThreadSanitizer (see the macro block above).
inline constexpr bool kTsanBuild = WFREGS_TSAN_BUILD != 0;

}  // namespace wfregs::concurrent
