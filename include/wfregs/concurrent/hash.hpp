// The repo's ONE splitmix64 mixer and word-sequence hash.
//
// This mixer used to exist three times -- the runtime definition
// (config_intern.hpp, which the service JobKey hasher also called) and two
// private splitmix64 clones in the native lab (runtime.cpp,
// conformance.cpp).  The canonical definition now lives here; runtime and
// service call it through thin compatibility aliases (config_mix64 /
// config_hash_words) and the native lab through splitmix64 below, so every
// hashing site -- interner probes, shard selection, JobKeys, native PRNG
// seeding -- agrees on the exact same avalanche.
#pragma once

#include <cstdint>
#include <span>

namespace wfregs::concurrent {

/// splitmix64 finalizer: a bijective full-avalanche 64-bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// One full splitmix64 step -- the golden-ratio increment followed by the
/// finalizer -- used for deterministic seed derivation (the native lab's
/// per-thread and per-round PRNG streams).
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  return mix64(x + 0x9e3779b97f4a7c15ULL);
}

/// Hash of a word sequence: every word is mixed through mix64 before
/// entering the chain, so single-bit and small-integer differences anywhere
/// in the key avalanche across the whole output.
constexpr std::uint64_t hash_words(
    std::span<const std::uint64_t> words) noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ words.size();
  for (const std::uint64_t w : words) {
    h = mix64(h ^ mix64(w));
  }
  return h;
}

}  // namespace wfregs::concurrent
