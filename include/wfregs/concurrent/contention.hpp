// Per-thread contention counters for the lock-free primitives.
//
// Every primitive in wfregs/concurrent reports how hard it had to fight:
// failed CAS reservations in the interner, steal attempts and successful
// steals on the work-stealing deques, and invalidated collects in the
// snapshot aggregator.  Each worker thread owns one ContentionCounters
// (plain, unshared -- no atomics on the hot path); totals are summed after
// join and surfaced through ExploreOutcome::contention, the service
// Metrics, and the BENCH_*.json counter sets so the perf trajectory records
// contention, not just throughput.
#pragma once

#include <cstdint>

namespace wfregs::concurrent {

struct ContentionCounters {
  /// Interner slot reservations lost to a racing claimer (the CAS loop's
  /// retry count -- 0 on an uncontended run).
  std::uint64_t cas_retries = 0;
  /// steal() calls made against another worker's deque (empty or not).
  std::uint64_t steal_attempts = 0;
  /// steal() calls that actually took an item.
  std::uint64_t steals = 0;
  /// Snapshot reads invalidated by a concurrent publication (per-slot
  /// seqlock retries plus whole-array double-collect rounds).
  std::uint64_t snapshot_retries = 0;

  void add(const ContentionCounters& o) noexcept {
    cas_retries += o.cas_retries;
    steal_attempts += o.steal_attempts;
    steals += o.steals;
    snapshot_retries += o.snapshot_retries;
  }
};

}  // namespace wfregs::concurrent
