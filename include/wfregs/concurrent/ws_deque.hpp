// A Chase-Lev work-stealing deque: owner push/pop are wait-free (no CAS on
// the common path), steals are lock-free (one CAS each), following the C11
// formulation of Le, Pop, Cohen & Zappa Nardelli, "Correct and Efficient
// Work-Stealing for Weak Memory Models" (PPoPP 2013).
//
//   * The owner pushes and pops at the BOTTOM (LIFO -- DFS-like locality
//     for the explorer's frontier); thieves steal from the TOP (FIFO --
//     they grab the oldest, largest subtrees), exactly the discipline the
//     mutex-guarded frontier deques implemented before this layer existed.
//   * Cells hold T* through std::atomic, so the racy pre-CAS read a thief
//     performs is a plain atomic load -- no torn reads, no UB.  Ownership
//     of the pointee transfers with a successful pop()/steal().
//   * The circular array grows owner-side only; superseded arrays are
//     retired to an owner-private list and freed with the deque, so a thief
//     still probing an old array never touches freed memory (the standard
//     reclamation dodge -- total retired space is geometric in the peak).
//   * Progress: push/pop never wait on other threads.  pop() and steal()
//     CAS `top` only when racing for the last element; a failed steal
//     means some other thief or the owner won -- system-wide progress.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "wfregs/concurrent/cacheline.hpp"
#include "wfregs/concurrent/contention.hpp"

namespace wfregs::concurrent {

template <class T>
class WsDeque {
 public:
  explicit WsDeque(std::size_t initial_capacity = 256)
      : array_(new Array(round_up(initial_capacity))) {}

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  ~WsDeque() { delete array_.load(std::memory_order_relaxed); }

  /// Owner only.  Wait-free: one store, plus an owner-side grow when full.
  void push(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    if constexpr (kTsanBuild) {
      // Fence-free for TSan: the release stores order the cell write (and
      // the pointee's construction) before the bottom bump a thief
      // acquires.
      a->cell(b).store(item, std::memory_order_release);
      bottom_.store(b + 1, std::memory_order_release);
    } else {
      a->cell(b).store(item, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_release);
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
  }

  /// Owner only.  nullptr = empty.  CASes only when racing a thief for the
  /// final element.
  T* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    if constexpr (kTsanBuild) {
      // Fence-free for TSan: seq_cst store + seq_cst load keep the
      // bottom-decrement / top-read pair in the single total order the
      // fence provided (the Dekker-style store-load edge).
      bottom_.store(b, std::memory_order_seq_cst);
    } else {
      bottom_.store(b, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
    }
    std::int64_t t = top_.load(kTsanBuild ? std::memory_order_seq_cst
                                          : std::memory_order_relaxed);
    T* item = nullptr;
    if (t <= b) {
      item = a->cell(b).load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;  // a thief got there first
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread.  nullptr = empty or lost the race (both count as one
  /// attempt in `c`; a taken item additionally counts as a steal).
  T* steal(ContentionCounters& c) {
    c.steal_attempts += 1;
    std::int64_t t = top_.load(kTsanBuild ? std::memory_order_seq_cst
                                          : std::memory_order_acquire);
    if constexpr (!kTsanBuild) {
      std::atomic_thread_fence(std::memory_order_seq_cst);
    }
    const std::int64_t b = bottom_.load(kTsanBuild
                                            ? std::memory_order_seq_cst
                                            : std::memory_order_acquire);
    if (t >= b) return nullptr;
    Array* a = array_.load(std::memory_order_acquire);
    // Acquire under TSan pairs with push()'s release cell store (pointee
    // visibility without the fence).
    T* item = a->cell(t).load(kTsanBuild ? std::memory_order_acquire
                                         : std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // owner or another thief won
    }
    c.steals += 1;
    return item;
  }

  /// Racy size estimate (monitoring / tests only).
  std::size_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  struct Array {
    explicit Array(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          cells(std::make_unique<std::atomic<T*>[]>(cap)) {}
    std::atomic<T*>& cell(std::int64_t i) {
      return cells[static_cast<std::size_t>(i) & mask];
    }
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<T*>[]> cells;
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Array(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->cell(i).store(old->cell(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    array_.store(bigger, std::memory_order_release);
    // A thief may still hold `old`; keep it until destruction.
    retired_.emplace_back(old);
    return bigger;
  }

  alignas(kCacheLine) std::atomic<std::int64_t> top_{0};
  alignas(kCacheLine) std::atomic<std::int64_t> bottom_{0};
  alignas(kCacheLine) std::atomic<Array*> array_;
  /// Owner-only: superseded arrays, freed with the deque.
  std::vector<std::unique_ptr<Array>> retired_;
};

}  // namespace wfregs::concurrent
