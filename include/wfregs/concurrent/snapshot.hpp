// A single-writer-per-slot atomic snapshot for statistics aggregation,
// modeled on the wait-free atomic snapshot construction this library model
// checks (registers/snapshot.hpp) and on the double-collect scan of
// minseok127/HYU-ITE4065 project2 (SNIPPETS.md snippet 1): readers obtain a
// CONSISTENT CUT of every writer's counters instead of the torn
// field-by-field atomic loads the explorer and scheduler used before.
//
// Structure (one cache-line-padded slot per writer thread):
//
//   * UPDATE (wait-free, the hot path): the writer accumulates into a
//     slot-private staging array (plain stores, no sharing) and publishes
//     with a bounded burst of stores -- copy the staging array into the
//     inactive half of a double buffer, then bump the slot's sequence
//     number (release).  No CAS, no waiting, no reads of other threads'
//     state: a bounded number of the writer's own steps, exactly the
//     paper's notion of wait-free.
//   * READ SLOT (seqlock over the double buffer): read seq s, copy
//     buffer[s & 1], re-read seq; unchanged means publication s is intact
//     (the writer scribbles that buffer again only when starting
//     publication s + 2, i.e. after seq already moved to s + 1).  A changed
//     seq is the snapshot algorithm's "register moved during the scan": the
//     writer has meanwhile PUBLISHED a complete newer record, so the reader
//     retries against strictly fresher state -- the borrowed-scan argument
//     of the verified construction, with the writer's embedded scan
//     degenerating to its own record because slots are single-writer.
//   * COLLECT (double collect across slots): scan every slot, then re-scan
//     every sequence number; if none moved the per-slot records form one
//     consistent cut.  After `max_rounds` dirty rounds the collect returns
//     the freshest per-slot-consistent records -- each individually intact
//     and current at some instant inside the scan window, which for the
//     monotone counters aggregated here is still bracketed by the cut at
//     scan start and the cut at scan end.  Retries are counted into
//     ContentionCounters::snapshot_retries.
//
// The end-of-run aggregation the explorer's bit-identity contract depends
// on happens after the workers joined (quiescent), where collect() is
// retry-free and exact by construction.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "wfregs/concurrent/cacheline.hpp"
#include "wfregs/concurrent/contention.hpp"

namespace wfregs::concurrent {

namespace detail {

/// Most counters any snapshot user declares (explorer: 2 + the contention
/// set; scheduler: 11).
inline constexpr std::size_t kSnapshotMaxCounters = 16;

/// One writer's register: a double-buffered seqlock record plus the
/// writer-private staging totals.  Cache-line padded -- adjacent writers
/// never share a line, so the aggregator itself cannot reintroduce the
/// false sharing it exists to remove.
struct alignas(kCacheLine) SnapshotSlot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> buf[2][kSnapshotMaxCounters];
  /// Writer-private running totals (monotone counters).
  std::uint64_t staging[kSnapshotMaxCounters];
  SnapshotSlot() {
    for (auto& half : buf) {
      for (auto& v : half) v.store(0, std::memory_order_relaxed);
    }
    for (auto& v : staging) v = 0;
  }
};

}  // namespace detail

class StatsSnapshot {
 public:
  static constexpr std::size_t kMaxCounters = detail::kSnapshotMaxCounters;

  /// `slots` writer threads, each publishing `counters` monotone values.
  StatsSnapshot(std::size_t slots, std::size_t counters);

  StatsSnapshot(const StatsSnapshot&) = delete;
  StatsSnapshot& operator=(const StatsSnapshot&) = delete;

  /// The slot-`i` writer handle; exactly one thread may use it.
  class Writer {
   public:
    Writer() = default;

    /// Accumulates into slot-private staging; not visible until publish().
    void add(std::size_t counter, std::uint64_t delta) {
      slot_->staging[counter] += delta;
    }

    /// Overwrites a staged total (for monotone counters maintained outside
    /// the writer, e.g. ContentionCounters); not visible until publish().
    void set(std::size_t counter, std::uint64_t value) {
      slot_->staging[counter] = value;
    }

    /// Publishes the staged values as one atomic record (wait-free: a
    /// bounded number of stores, no reads of other threads' state).
    void publish() {
      const std::uint64_t s = slot_->seq.load(std::memory_order_relaxed);
      auto& inactive = slot_->buf[(s + 1) & 1];
      for (std::size_t i = 0; i < counters_; ++i) {
        inactive[i].store(slot_->staging[i], std::memory_order_relaxed);
      }
      slot_->seq.store(s + 1, std::memory_order_release);
    }

   private:
    friend class StatsSnapshot;
    Writer(detail::SnapshotSlot* slot, std::size_t counters)
        : slot_(slot), counters_(counters) {}
    detail::SnapshotSlot* slot_ = nullptr;
    std::size_t counters_ = 0;
  };

  Writer writer(std::size_t i) { return Writer(&slots_[i], counters_); }

  /// One consistent record per slot, summed per counter.  `retries` (when
  /// non-null) accumulates seqlock and double-collect invalidations.
  std::vector<std::uint64_t> collect(ContentionCounters* retries = nullptr,
                                     int max_rounds = 8) const;

  std::size_t num_slots() const { return num_slots_; }
  std::size_t num_counters() const { return counters_; }

 private:
  /// One intact record from `s` into out[0..counters_); returns its seq.
  std::uint64_t read_slot(const detail::SnapshotSlot& s, std::uint64_t* out,
                          std::uint64_t* retries) const;

  const std::size_t num_slots_;
  const std::size_t counters_;
  std::unique_ptr<detail::SnapshotSlot[]> slots_;
};

}  // namespace wfregs::concurrent
