// A lock-free open-addressing interner: word-sequence keys -> exactly-once
// constructed payloads, replacing the parallel explorer's 64 mutex-striped
// (ConfigInterner, arena) shard pairs.
//
// CLAIM PROTOCOL (the two-phase publication the tests race):
//
//   1. RESERVE  -- CAS the probe slot empty -> kReserved.  Losing the CAS
//      is not a failure: the loser re-examines the slot (its winner is
//      either this key -- wait for publication and share it -- or a
//      different key -- keep probing) and bumps cas_retries.
//   2. WRITE    -- the winner allocates the node (header + payload + the
//      key words inline, one allocation) and fills it while the slot still
//      reads kReserved; concurrent probers for the same hash spin on the
//      reserved slot (publication is two stores away -- bounded).
//   3. PUBLISH  -- store the node pointer into the slot.  From here the
//      key's payload address is stable for the interner's lifetime.
//
// GROWTH keeps inserts lock-free without migrating keys: tables form a
// chain, newest first.  A claimer that crosses the load threshold SEALS the
// current table (atomic exchange elects one grower) and installs a
// double-size successor; keys already published stay where they are and
// every lookup probes the chain newest -> oldest (O(log n) tables, the
// newest holding most keys).  A claimer that won its CAS in a table that
// turned out sealed converts the reservation into a TOMBSTONE (probers skip
// it, probes continue past it) and retries in the successor -- this is what
// makes a key impossible to publish twice across tables:
//
//   Slot operations on the claim path and the sealed/current flags are
//   seq_cst, so for two racing inserters of the same key either (a) both
//   claim in the same table -- same hash, same probe sequence, the second
//   one meets the first one's reservation and waits -- or (b) the earlier
//   claimer's sealed-check observes the seal that preceded the later
//   claimer's table switch and retires its reservation.  Either way exactly
//   one node per distinct key is ever published, which is what keeps the
//   explorer's `configs` counter (one fetch_add per inserted == true) exact.
//
// DELETION does not exist (the explorer only ever adds configurations), so
// there is no ABA and no reclamation problem: nodes and superseded tables
// are freed by the destructor, single-threaded, after the workers joined.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>

#include "wfregs/concurrent/cacheline.hpp"
#include "wfregs/concurrent/contention.hpp"

namespace wfregs::concurrent {

/// Value: the per-key payload, default-constructed exactly once by the
/// claiming thread (phase 2) before the key becomes visible.  Its address
/// is stable until the interner is destroyed.
template <class Value>
class ConcurrentInterner {
 public:
  struct Ref {
    Value* value = nullptr;
    bool inserted = false;  ///< this call claimed the key
  };

  explicit ConcurrentInterner(std::size_t initial_slots = 1u << 12)
      : current_(new Table(round_up(initial_slots), nullptr)) {}

  ConcurrentInterner(const ConcurrentInterner&) = delete;
  ConcurrentInterner& operator=(const ConcurrentInterner&) = delete;

  ~ConcurrentInterner() {
    Table* t = current_.load(std::memory_order_relaxed);
    while (t != nullptr) {
      for (std::size_t i = 0; i <= t->mask; ++i) {
        Node* n = t->slots[i].load(std::memory_order_relaxed);
        if (is_node(n)) destroy_node(n);
      }
      Table* prev = t->prev;
      delete t;
      t = prev;
    }
  }

  /// The payload of `words` (whose hash is `hash`), claiming it when
  /// absent; `c.cas_retries` counts lost reservations.  Safe from any
  /// number of threads.
  Ref intern(std::span<const std::uint64_t> words, std::uint64_t hash,
             ContentionCounters& c) {
    for (;;) {
      Table* head = current_.load(std::memory_order_seq_cst);
      // Keys can live in any table of the chain; older tables are sealed,
      // so a key found there is fully published and final.
      for (Table* t = head->prev; t != nullptr; t = t->prev) {
        if (Node* n = search(*t, words, hash)) return Ref{&n->value, false};
      }
      const Ref r = claim(*head, words, hash, c);
      if (r.value != nullptr) return r;
      // head was sealed under us; reload the successor and try again.
    }
  }

  /// Lookup without claiming; nullptr when absent.
  Value* find(std::span<const std::uint64_t> words,
              std::uint64_t hash) const {
    for (Table* t = current_.load(std::memory_order_seq_cst); t != nullptr;
         t = t->prev) {
      if (Node* n = search(*t, words, hash)) return &n->value;
    }
    return nullptr;
  }

  /// Number of distinct keys published.
  std::size_t size() const {
    return count_.load(std::memory_order_acquire);
  }

  /// Bytes held by slot tables and published nodes (bench accounting).
  std::size_t memory_bytes() const {
    std::size_t total = node_bytes_.load(std::memory_order_relaxed);
    for (Table* t = current_.load(std::memory_order_acquire); t != nullptr;
         t = t->prev) {
      total += (t->mask + 1) * sizeof(std::atomic<Node*>) + sizeof(Table);
    }
    return total;
  }

 private:
  struct Node {
    std::uint64_t hash;
    std::uint32_t nwords;
    Value value;
    // The key words live immediately after the node (one allocation).
    std::uint64_t* words() {
      return reinterpret_cast<std::uint64_t*>(this + 1);
    }
    const std::uint64_t* words() const {
      return reinterpret_cast<const std::uint64_t*>(this + 1);
    }
  };
  static_assert(alignof(Node) % alignof(std::uint64_t) == 0);

  struct Table {
    Table(std::size_t cap, Table* prev_table)
        : mask(cap - 1), prev(prev_table),
          slots(std::make_unique<std::atomic<Node*>[]>(cap)) {}
    const std::size_t mask;
    Table* const prev;
    std::atomic<bool> sealed{false};
    alignas(kCacheLine) std::atomic<std::size_t> used{0};
    std::unique_ptr<std::atomic<Node*>[]> slots;
  };

  // Sentinel slot states.  Real nodes are aligned pointers > kTombstone.
  static Node* reserved_sentinel() { return reinterpret_cast<Node*>(1); }
  static Node* tombstone_sentinel() { return reinterpret_cast<Node*>(2); }
  static bool is_node(const Node* p) {
    return p != nullptr && p != reserved_sentinel() &&
           p != tombstone_sentinel();
  }

  static std::size_t round_up(std::size_t n) {
    std::size_t p = 8;
    while (p < n) p <<= 1;
    return p;
  }

  static bool key_equals(const Node& n, std::span<const std::uint64_t> words,
                         std::uint64_t hash) {
    if (n.hash != hash || n.nwords != words.size()) return false;
    const std::uint64_t* w = n.words();
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (w[i] != words[i]) return false;
    }
    return true;
  }

  Node* make_node(std::span<const std::uint64_t> words, std::uint64_t hash) {
    const std::size_t bytes =
        sizeof(Node) + words.size() * sizeof(std::uint64_t);
    void* raw = ::operator new(bytes, std::align_val_t{alignof(Node)});
    Node* n = new (raw) Node{hash, static_cast<std::uint32_t>(words.size()),
                             Value{}};
    std::uint64_t* w = n->words();
    for (std::size_t i = 0; i < words.size(); ++i) w[i] = words[i];
    node_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    return n;
  }

  static void destroy_node(Node* n) {
    n->~Node();
    ::operator delete(static_cast<void*>(n),
                      std::align_val_t{alignof(Node)});
  }

  /// Published node for `words` in `t`, or nullptr.  Waits out in-flight
  /// reservations met along the probe path (publication is imminent).
  static Node* search(const Table& t, std::span<const std::uint64_t> words,
                      std::uint64_t hash) {
    for (std::size_t slot = static_cast<std::size_t>(hash) & t.mask;;
         slot = (slot + 1) & t.mask) {
      Node* n = t.slots[slot].load(std::memory_order_seq_cst);
      while (n == reserved_sentinel()) {
        // Mid-publication: the claimer is two stores from done (or about
        // to tombstone); either outcome resolves the slot.
        n = t.slots[slot].load(std::memory_order_seq_cst);
      }
      if (n == nullptr) return nullptr;  // probe chain ends: absent here
      if (n == tombstone_sentinel()) continue;
      if (key_equals(*n, words, hash)) return n;
    }
  }

  /// Claims or finds `words` in `head`.  Ref.value == nullptr means `head`
  /// got sealed out from under the claim: caller must retry on the new
  /// current table.
  Ref claim(Table& head, std::span<const std::uint64_t> words,
            std::uint64_t hash, ContentionCounters& c) {
    for (std::size_t slot = static_cast<std::size_t>(hash) & head.mask;;
         slot = (slot + 1) & head.mask) {
      Node* cur = head.slots[slot].load(std::memory_order_seq_cst);
      if (cur == nullptr) {
        Node* expected = nullptr;
        if (head.slots[slot].compare_exchange_strong(
                expected, reserved_sentinel(), std::memory_order_seq_cst,
                std::memory_order_seq_cst)) {
          if (head.sealed.load(std::memory_order_seq_cst)) {
            // A grower sealed this table before our reservation became
            // the key's home; retire the slot and move to the successor.
            head.slots[slot].store(tombstone_sentinel(),
                                   std::memory_order_seq_cst);
            return Ref{nullptr, false};
          }
          Node* n = nullptr;
          try {
            n = make_node(words, hash);
          } catch (...) {
            // Never leave a reservation behind: probers spin on it.
            head.slots[slot].store(tombstone_sentinel(),
                                   std::memory_order_seq_cst);
            throw;
          }
          head.slots[slot].store(n, std::memory_order_seq_cst);
          count_.fetch_add(1, std::memory_order_acq_rel);
          maybe_grow(head);
          return Ref{&n->value, true};
        }
        c.cas_retries += 1;
        cur = expected;  // re-examine whatever beat us
      }
      while (cur == reserved_sentinel()) {
        cur = head.slots[slot].load(std::memory_order_seq_cst);
      }
      if (cur == tombstone_sentinel()) continue;
      if (key_equals(*cur, words, hash)) return Ref{&cur->value, false};
    }
  }

  void maybe_grow(Table& head) {
    const std::size_t used =
        head.used.fetch_add(1, std::memory_order_acq_rel) + 1;
    // Grow at ~60% load so probe chains stay short under contention.
    if (used * 10 < (head.mask + 1) * 6) return;
    if (head.sealed.exchange(true, std::memory_order_seq_cst)) return;
    // We won the seal: we are the only installer of the successor.
    current_.store(new Table((head.mask + 1) * 2, &head),
                   std::memory_order_seq_cst);
  }

  std::atomic<Table*> current_;
  alignas(kCacheLine) std::atomic<std::size_t> count_{0};
  alignas(kCacheLine) std::atomic<std::size_t> node_bytes_{0};
};

}  // namespace wfregs::concurrent
