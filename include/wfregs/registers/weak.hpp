// The bottom of the classical register ladder cited in Section 4.1
// (Lamport 1986): from SAFE bits to REGULAR bits to regular multi-valued
// registers.
//
// These constructions produce REGULAR registers -- strictly weaker than the
// atomic ones the rest of the chain consumes -- and are verified with the
// regular-semantics checker (wfregs/runtime/regularity.hpp) rather than the
// linearizability checker.  They are included for fidelity to the paper's
// Section 4.1 citations; the Theorem 5 pipeline itself does not need them,
// because the Section 4.3 construction manufactures ATOMIC bits from
// one-use bits directly.
//
// All interfaces use zoo::srsw_register_type(values) purely as an
// invocation/response carrier (invocation 0 = read, 1+v = write(v)); the
// correctness notion is regularity, not the carrier's atomic table.
#pragma once

#include <memory>

#include "wfregs/runtime/implementation.hpp"

namespace wfregs::registers {

/// Lamport's safe-to-regular step: the writer writes ONLY when the value
/// actually changes, so a reader overlapping a write always sees "old or
/// new" even though the base bit is merely safe.
std::shared_ptr<const Implementation> regular_bit_from_safe(
    int initial_value);

/// The same wrapper WITHOUT the write-on-change discipline: writing the
/// same value again over a safe bit lets an overlapping read return the
/// OTHER value.  Deliberately broken; exists so tests can demonstrate why
/// Lamport's discipline matters.
std::shared_ptr<const Implementation> naive_bit_from_safe(int initial_value);

/// Lamport's unary construction: a `values`-valued REGULAR register from
/// `values` regular bits.  write(v) sets bit v and then clears bits
/// v-1 .. 0 downward; a read scans upward and returns the first set bit.
std::shared_ptr<const Implementation> regular_multivalued_from_bits(
    int values, int initial_value);

}  // namespace wfregs::registers
