// Simpson's four-slot algorithm: a wait-free single-reader single-writer
// atomic multi-valued register built from single-reader single-writer atomic
// *bits*.
//
// This realizes the bottom rung of the Section 4.1 chain (the paper cites
// Lamport 1986 / Burns-Peterson 1987 / Peterson 1983 for the historical
// ladder through safe and regular registers; our simulated base objects are
// already atomic bits -- exactly what Section 4.3 manufactures from one-use
// bits -- so the four-slot construction closes the gap from bits to
// multi-valued values in one verified step).
//
// Structure: four data slots data[pair][index] (each ceil(log2 values)
// bits), per-pair slot bits, a `latest` bit (writer -> reader) and a
// `reading` bit (reader -> writer).  The writer always writes into the pair
// the reader is NOT reading and the slot it last left free, so reader and
// writer never touch the same data slot concurrently -- which is why the
// bit-by-bit (non-atomic-as-a-whole) slot accesses are safe.
//
// The writer's knowledge of its own last slot choices is kept in persistent
// per-port local variables, as the paper's constructions do (cf. the
// Section 4.3 reader's i_r, j_r).
#pragma once

#include <memory>

#include "wfregs/runtime/implementation.hpp"

namespace wfregs::registers {

/// Number of bits per data slot for a `values`-valued register.
int slot_bits(int values);

/// Builds a four-slot SRSW atomic register over `values` values, initially
/// holding `initial_value`, from 4*slot_bits(values) + 4 SRSW atomic bits.
/// Interface: zoo::srsw_register_type(values) (port 0 reads, port 1 writes).
std::shared_ptr<const Implementation> simpson_register(int values,
                                                       int initial_value);

}  // namespace wfregs::registers
