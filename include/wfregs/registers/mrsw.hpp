// Multi-reader single-writer atomic register from single-reader
// single-writer atomic registers (the classical construction in the style of
// Israeli-Li / Attiya-Welch; the paper cites Lamport 1986 and
// Burns-Peterson 1987 for this rung of the Section 4.1 chain).
//
// Structure: the writer stamps each value with a sequence number and writes
// (value, seq) to a per-reader table register table[i].  Each reader i reads
// its table entry plus what every other reader last returned
// (report[j][i]), picks the freshest, and reports it to all other readers
// before returning -- the report step is what prevents new/old inversion
// between readers.
//
// Sequence numbers are bounded by `max_writes` (a simulation substitute for
// the unbounded timestamps of the classical construction; the paper's
// Section 4.2 shows bounded use is the only case that matters in wait-free
// consensus implementations).  Exceeding the bound aborts the run loudly.
#pragma once

#include <functional>
#include <memory>

#include "wfregs/runtime/implementation.hpp"

namespace wfregs::registers {

/// Provides SRSW sub-registers: srsw_factory(values, initial) must return an
/// implementation of zoo::srsw_register_type(values).  An empty function
/// means "use base atomic SRSW register objects".
using SrswFactory = std::function<std::shared_ptr<const Implementation>(
    int values, int initial)>;

/// An SrswFactory producing Simpson four-slot registers (so the whole stack
/// bottoms out at SRSW atomic bits).
SrswFactory simpson_srsw_factory();

/// Builds an MRSW atomic register over `values` values with `readers` read
/// ports (interface zoo::mrsw_register_type(values, readers)), supporting at
/// most `max_writes` writes.
std::shared_ptr<const Implementation> mrsw_register(
    int values, int readers, int initial_value, int max_writes,
    const SrswFactory& srsw_factory = {});

}  // namespace wfregs::registers
