// The full Section 4.1 chain, composed: a multi-writer multi-reader atomic
// multi-valued register whose base objects are single-reader single-writer
// atomic BITS -- the register normal form the paper's Theorem 5 transform
// relies on ("we can assume that these registers are single-reader
// single-writer bits").
#pragma once

#include <map>
#include <memory>
#include <string>

#include "wfregs/runtime/implementation.hpp"

namespace wfregs::registers {

struct ChainOptions {
  /// Bound on writes at the MRMW layer (per the Section 4.2 result, bounded
  /// use is all that wait-free consensus ever needs).
  int mrmw_max_writes = 4;
  /// Bound on writes at each inner MRSW register.
  int mrsw_max_writes = 8;
  /// When true, the SRSW rung is Simpson four-slot over atomic bits; when
  /// false, the chain bottoms out at base SRSW multi-valued registers
  /// (useful for isolating layers in tests and benches).
  bool bits_at_bottom = true;
};

/// Builds the composed MRMW-from-MRSW-from-SRSW-from-bits register.
/// Interface: zoo::register_type(values, ports).
std::shared_ptr<const Implementation> full_chain_register(
    int values, int ports, int initial_value, const ChainOptions& options);

/// Census of the flattened base objects of an implementation, keyed by the
/// base TypeSpec name -- e.g. how many srsw_register2 bits a chain uses.
std::map<std::string, int> base_census(const Implementation& impl);

}  // namespace wfregs::registers
