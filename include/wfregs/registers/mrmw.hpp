// Multi-writer multi-reader atomic register from multi-reader single-writer
// atomic registers, in the style of Vitanyi-Awerbuch (the paper cites
// Peterson-Burns 1987 for this rung of the Section 4.1 chain).
//
// Structure: one MRSW register ts[w] per writer, holding (value, seq).  A
// writer reads everyone's (cached for itself), picks seq one larger than the
// maximum, and publishes.  A reader returns the value with the
// lexicographically largest (seq, writer-id).  Each port caches its OWN
// latest (value, seq) in persistent local variables, since a port cannot
// read through its own write-oriented MRSW port -- the cache is exact
// because only that port writes there.
#pragma once

#include <functional>
#include <memory>

#include "wfregs/runtime/implementation.hpp"

namespace wfregs::registers {

/// Provides MRSW sub-registers: mrsw_factory(values, readers, initial) must
/// return an implementation of zoo::mrsw_register_type(values, readers).
/// Empty means "use base atomic MRSW register objects".
using MrswFactory = std::function<std::shared_ptr<const Implementation>(
    int values, int readers, int initial)>;

/// An MrswFactory building the full lower chain: MRSW registers from SRSW
/// registers from (four-slot) SRSW bits.  `srsw_max_writes` bounds the inner
/// sequence numbers.
MrswFactory chained_mrsw_factory(int mrsw_max_writes, bool bits_at_bottom);

/// Builds an MRMW atomic register over `values` values where all `ports`
/// ports may read and write (interface zoo::register_type(values, ports)),
/// supporting at most `max_writes` writes in total per port-sequence rules
/// (any single execution with more than `max_writes` writes aborts loudly).
std::shared_ptr<const Implementation> mrmw_register(
    int values, int ports, int initial_value, int max_writes,
    const MrswFactory& mrsw_factory = {});

}  // namespace wfregs::registers
