// Wait-free single-writer atomic snapshot from MRSW registers, in the style
// of Afek, Attiya, Dolev, Gafni, Merritt & Shavit (1993).
//
// Each port p owns one register holding (sequence number, embedded view,
// value).  An update embeds a fresh scan before writing; a scan repeatedly
// double-collects and either certifies two identical collects or, once some
// component has been observed moving twice, borrows that component's
// embedded view (which was taken entirely inside the scan's interval).
// Both paths terminate in at most `ports` rounds: wait-free.
//
// The snapshot is the classical "stronger-looking abstraction that is still
// consensus number 1": it strengthens registers for reading yet cannot
// implement 2-process consensus, which the bounded-synthesis harness
// confirms on its TypeSpec.
#pragma once

#include <memory>

#include "wfregs/runtime/implementation.hpp"

namespace wfregs::registers {

/// Builds an implementation of zoo::snapshot_type(values, ports) from
/// `ports` MRSW registers, supporting at most `max_updates` updates per
/// port (sequence numbers are capped; exceeding the cap aborts loudly).
std::shared_ptr<const Implementation> snapshot_from_registers(
    int values, int ports, int max_updates);

}  // namespace wfregs::registers
