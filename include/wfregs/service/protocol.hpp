// The wfregsd wire protocol: length-prefixed frames over a Unix-domain
// stream socket.
//
//   frame  := len:u32 (LE, = 1 + payload size) type:u8 payload
//
// Request types (client -> daemon):
//   kSubmit   payload = canonical job text (print_job output)
//   kPoll     payload = 32-hex-digit job key
//   kStats    payload empty
//   kShutdown payload empty (daemon drains and exits)
//
// Response types (daemon -> client):
//   kReply    payload = one JSON object; every request gets exactly one
//   kError    payload = human-readable message (protocol/parse errors)
//
// Reply shapes:
//   submit -> {"key":"<hex>","status":"cached|queued|coalesced|rejected",
//              "verdict":{...}}          (verdict only when cached)
//   poll   -> {"key":"<hex>","status":"queued|running|done|cancelled|
//              failed|unknown","from_cache":0|1,"verdict":{...}}
//   stats  -> the metrics_to_json object
//   shutdown -> {"status":"draining"}
//
// Frames are capped at kMaxFrame to keep a bad length prefix from
// allocating unbounded memory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace wfregs::service {

enum class FrameType : std::uint8_t {
  kSubmit = 1,
  kPoll = 2,
  kStats = 3,
  kShutdown = 4,
  kReply = 0x81,
  kError = 0xFF,
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// 16 MiB: far above any real job text, far below a memory hazard.
inline constexpr std::uint32_t kMaxFrame = 16u << 20;

/// Blocking full-frame write on `fd`; throws std::runtime_error on I/O
/// failure (EINTR retried).
void write_frame(int fd, const Frame& frame);

/// Blocking full-frame read; nullopt on clean EOF at a frame boundary,
/// throws on I/O failure, oversized length, or mid-frame EOF.
std::optional<Frame> read_frame(int fd);

}  // namespace wfregs::service
