// The wfregsd wire protocol: length-prefixed frames over a stream socket
// (Unix-domain or TCP -- see transport.hpp for endpoint addressing).
//
//   frame  := len:u32 (LE, = 1 + payload size) type:u8 payload
//
// Request types (client -> daemon/coordinator):
//   kSubmit      payload = canonical job text (print_job output)
//   kPoll        payload = 32-hex-digit job key
//   kStats       payload empty
//   kShutdown    payload empty (daemon drains and exits)
//   kBatchSubmit payload = pack_batch(job texts); one reply frame carries
//                a JSON array of per-job submit objects, in order
//   kBatchPoll   payload = pack_batch(32-hex keys); one reply frame
//                carries a JSON array of per-key poll objects, in order
//
// Worker protocol (fleet coordinator <-> wfregsd --worker):
//   kWorkerHello   worker -> coordinator, pack_batch({name, capacity})
//   kWorkerWelcome coordinator -> worker, pack_batch({worker id})
//   kAssign        coordinator -> worker, pack_batch({key hex, job text})
//   kWorkerResult  worker -> coordinator,
//                  pack_batch({key hex, state name, encode_verdict bytes})
//   kWorkerSync    worker -> coordinator,
//                  pack_batch({metrics JSON, raw record-log tail bytes});
//                  one-way, the coordinator merges the records by JobKey
//
// Response types (daemon -> client):
//   kReply    payload = one JSON value; every request gets exactly one
//   kError    payload = human-readable message (protocol/parse errors)
//
// Reply shapes:
//   submit -> {"key":"<hex>","status":"cached|queued|coalesced|rejected",
//              "verdict":{...}}          (verdict only when cached)
//   poll   -> {"key":"<hex>","status":"queued|running|done|cancelled|
//              failed|unknown","from_cache":0|1,"verdict":{...}}
//   stats  -> the metrics_to_json object (fleet_metrics_to_json on a
//             coordinator)
//   shutdown -> {"status":"draining"}
//
// "rejected" is the backpressure verdict (the EAGAIN of this protocol): the
// bounded admission queue is full and the client should retry later --
// never an unbounded queue on the server side.
//
// Frames are capped at kMaxFrame to keep a bad length prefix from
// allocating unbounded memory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace wfregs::service {

enum class FrameType : std::uint8_t {
  kSubmit = 1,
  kPoll = 2,
  kStats = 3,
  kShutdown = 4,
  kBatchSubmit = 5,
  kBatchPoll = 6,
  kWorkerHello = 0x10,
  kWorkerResult = 0x11,
  kWorkerSync = 0x12,
  kReply = 0x81,
  kWorkerWelcome = 0x90,
  kAssign = 0x91,
  kError = 0xFF,
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// 16 MiB: far above any real job text, far below a memory hazard.
inline constexpr std::uint32_t kMaxFrame = 16u << 20;

/// Blocking full-frame write on `fd`; throws std::runtime_error on I/O
/// failure (EINTR retried).
void write_frame(int fd, const Frame& frame);

/// Blocking full-frame read; nullopt on clean EOF at a frame boundary,
/// throws on I/O failure, oversized length, or mid-frame EOF.
std::optional<Frame> read_frame(int fd);

/// Packs items (arbitrary bytes, job text or binary verdicts alike) as
///   count:u32 (item_len:u32 item_bytes)*
/// -- the payload format of every batch and worker frame.
std::string pack_batch(const std::vector<std::string>& items);

/// Inverse of pack_batch; throws std::runtime_error on truncated or
/// malformed payloads (the count and every length prefix are validated
/// against the payload size).
std::vector<std::string> unpack_batch(const std::string& payload);

}  // namespace wfregs::service
