// Transport for the service layer: endpoint addressing (Unix-domain or
// TCP), an incremental frame parser, and the poll()-based event loop the
// gateway processes (wfregsd, the fleet coordinator) serve on.
//
// Endpoints are spelled as strings so every flag and API that used to take
// a socket path keeps working:
//
//   /tmp/wfregsd.sock          Unix-domain socket (bare path, the old form)
//   unix:/tmp/wfregsd.sock     the same, explicit
//   tcp:127.0.0.1:7461         TCP over loopback (numeric host only)
//   tcp:7461                   TCP, host defaults to 127.0.0.1
//
// TCP listeners may bind port 0 (ephemeral); local_tcp_port() reads the
// kernel-assigned port back so tests and in-process fleets never race on a
// fixed port.
//
// The EventLoop is the boson event_loop shape: one thread, one poll() over
// every listener and connection, per-connection input/output buffers.  A
// readable connection is drained to EAGAIN and EVERY complete frame in the
// buffer is dispatched in that same wakeup -- a client that pipelines N
// frames in one send() gets N replies without waiting on further poll
// cycles (see tests/service_daemon.cpp, PipelinedFrames*).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "wfregs/service/protocol.hpp"

namespace wfregs::service {

struct Endpoint {
  enum class Kind : std::uint8_t { kUnix = 0, kTcp = 1 };
  Kind kind = Kind::kUnix;
  std::string path;         ///< kUnix: the socket path
  std::string host;         ///< kTcp: numeric address, e.g. "127.0.0.1"
  std::uint16_t port = 0;   ///< kTcp: port (0 = ephemeral when listening)
};

/// Parses the endpoint spellings above; throws std::runtime_error on a
/// malformed spec (empty, bad port, non-numeric TCP host).
Endpoint parse_endpoint(const std::string& spec);

/// The canonical spelling ("unix:<path>" / "tcp:<host>:<port>").
std::string endpoint_to_string(const Endpoint& ep);

/// Binds + listens; returns the CLOEXEC listening fd.  Unix listeners
/// unlink a stale socket first; TCP listeners set SO_REUSEADDR.  Throws on
/// failure.
int listen_endpoint(const Endpoint& ep);

/// Blocking connect; returns the CLOEXEC fd (TCP_NODELAY on TCP -- the
/// frames are small and latency-bound).  Throws on failure.
int connect_endpoint(const Endpoint& ep);

/// The kernel-assigned local port of a bound TCP fd (for port-0 listeners).
std::uint16_t local_tcp_port(int fd);

void set_nonblocking(int fd, bool on);

/// Incremental frame parser: feed() bytes as they arrive, next() yields
/// complete frames.  Throws std::runtime_error on a malformed length
/// prefix (zero or beyond kMaxFrame) -- the caller should drop the
/// connection, exactly like read_frame().
class FrameSplitter {
 public:
  void feed(const char* data, std::size_t n) { buf_.append(data, n); }

  /// Extracts the next complete frame into *out; false = need more bytes.
  bool next(Frame* out);

  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix, compacted lazily
};

/// Nonblocking read of everything currently available on `fd` into the
/// splitter.  Returns false when the peer closed or the connection errored
/// (the fd should be dropped); true means the connection is still open
/// (possibly with zero new bytes).
bool read_available(int fd, FrameSplitter* in);

/// Single-threaded poll() event loop over listeners and framed
/// connections.  Not thread-safe: construct, add listeners and step() from
/// one thread.  Connections are identified by a monotonically increasing
/// id (never reused), so a handler holding a stale id simply no-ops.
class EventLoop {
 public:
  struct Handlers {
    /// A listener accepted a new connection.
    std::function<void(std::uint64_t conn)> on_open;
    /// One complete frame arrived (called once per frame, every buffered
    /// frame per wakeup).
    std::function<void(std::uint64_t conn, Frame&& frame)> on_frame;
    /// The connection closed (peer EOF, error, or malformed framing).
    std::function<void(std::uint64_t conn)> on_close;
  };

  explicit EventLoop(Handlers handlers);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Adds a listening fd (takes ownership; made nonblocking).
  void add_listener(int fd);

  /// Adopts an already-established connection fd (takes ownership); the
  /// returned id is live immediately (no on_open callback).
  std::uint64_t adopt(int fd);

  /// Queues a frame on `conn`; flushed opportunistically and under
  /// POLLOUT.  Unknown ids are ignored (the connection already closed).
  void send(std::uint64_t conn, const Frame& frame);

  /// Flushes what it can, then closes `conn` once the output buffer is
  /// empty (closing connections stop being read).
  void close_conn(std::uint64_t conn);

  /// One poll cycle: accept, read (dispatching every buffered frame),
  /// flush.  Returns after `timeout` when nothing happens.
  void step(std::chrono::milliseconds timeout);

  /// Best-effort blocking flush of every pending output buffer (bounded by
  /// `deadline`); used on shutdown so final replies are not lost.
  void flush_all(std::chrono::milliseconds deadline);

  std::size_t connection_count() const { return conns_.size(); }

 private:
  struct Conn {
    int fd = -1;
    FrameSplitter in;
    std::string out;
    std::size_t out_pos = 0;  ///< flushed prefix of `out`
    bool closing = false;     ///< flush, then close
  };

  bool flush_conn(Conn* c);  ///< false = fatal write error
  void drop(std::uint64_t id);

  Handlers handlers_;
  std::vector<int> listeners_;
  std::map<std::uint64_t, Conn> conns_;
  std::uint64_t next_id_ = 1;
};

}  // namespace wfregs::service
