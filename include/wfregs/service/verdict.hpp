// Verdicts: the service layer's unit of caching.
//
// A Verdict is the outcome of one verification job -- the verdict bits, the
// first-violation detail (the counterexample trace, when one exists), and
// the full ExploreStats -- flattened from VerifyResult /
// RegularVerifyResult / ConsensusCheckResult into one shape so the store,
// the scheduler and the wire protocol handle all three job kinds uniformly.
//
// Two encodings:
//   * encode_verdict / decode_verdict -- a compact length-prefixed binary
//     encoding, the store's record payload.  Byte-identical for equal
//     verdicts, so the E13 bench and the coherence tests can check cached
//     == fresh by comparing encoded bytes.
//   * verdict_to_json -- the structured output shared by `wfregs_cli
//     --json` and the daemon's response frames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wfregs/runtime/explorer.hpp"

namespace wfregs::service {

enum class JobKind : std::uint8_t {
  kLinearizable = 0,  ///< verify_linearizable over a script scenario
  kRegular = 1,       ///< verify_regular over a script scenario
  kConsensus = 2,     ///< check_consensus over all input vectors
};

const char* job_kind_name(JobKind kind);

/// How a verdict was produced: by schedule exploration, by the static
/// consensus-power fast-path (certified classifier, no exploration ran), or
/// cut short by a deadline with a resumable checkpoint left behind.
enum class Provenance : std::uint8_t {
  kExplored = 0,
  kStatic = 1,
  /// Deadline- or shutdown-cancelled, but the run checkpointed before
  /// stopping: resubmitting the same job key resumes the exploration
  /// instead of starting over.  Partial verdicts are never cached; they
  /// appear only in the scheduler's status history and poll() replies.
  kPartial = 2,
};

const char* provenance_name(Provenance p);

struct Verdict {
  JobKind kind = JobKind::kLinearizable;
  /// The headline verdict: linearizable / regular / solves-consensus.
  bool ok = false;
  bool wait_free = false;
  /// Exploration finished within limits (cancelled jobs report false and
  /// are never cached).
  bool complete = false;
  /// First violation / counterexample trace, empty when ok.
  std::string detail;
  /// Aggregate exploration stats.  For consensus jobs configs/terminals are
  /// summed over the 2^n roots and depth is the max (the paper's D); edges
  /// is 0 (the per-root checker does not expose it).  All zero for
  /// statically decided jobs (no exploration ran).
  ExploreStats stats;
  /// kStatic when the consensus-power fast-path answered the job without
  /// exploring; the detail then carries the classifier's justification.
  /// kPartial when a cancelled run left a resumable checkpoint.
  Provenance provenance = Provenance::kExplored;
  /// Transient out-of-core markers: the run resumed from / left a
  /// checkpoint.  NOT encoded and NOT part of equality, so a resumed run's
  /// cached bytes are identical to a fresh run's -- the E18 byte-identity
  /// gate depends on this.
  bool resumed = false;
  bool checkpointed = false;

  friend bool operator==(const Verdict&, const Verdict&);
};

/// Compact binary encoding (deterministic: equal verdicts encode to equal
/// bytes).
std::vector<std::uint8_t> encode_verdict(const Verdict& v);

/// Decodes encode_verdict's output; throws std::runtime_error on malformed
/// or truncated input.
Verdict decode_verdict(const std::uint8_t* data, std::size_t size);

/// The shared structured rendering: one JSON object with kind, verdict
/// bits, provenance, detail and stats.
std::string verdict_to_json(const Verdict& v);

/// The decision-relevant projection of a verdict: kind + ok + wait_free +
/// complete, with stats zeroed, detail cleared and provenance normalized to
/// kExplored.  Two verdicts for the same job agree as DECISIONS iff their
/// projections encode to identical bytes -- the comparison the E15 bench
/// gate uses, since a static verdict legitimately differs from an explored
/// one in stats (all zero) and detail (a justification, not a trace).
Verdict decision_projection(const Verdict& v);

}  // namespace wfregs::service
