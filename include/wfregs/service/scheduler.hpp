// The batched job scheduler: a bounded submission queue in front of a
// worker pool that reuses the exhaustive explorers, with
//
//   * cache-first admission -- a submitted key already in the verdict
//     store is answered immediately (hit), never queued;
//   * in-flight deduplication -- identical keys submitted while a job is
//     queued or running coalesce onto the one computation and share its
//     result;
//   * per-job deadlines and config budgets -- the config budget is part of
//     the job's options (and so of its key); the wall-clock deadline is
//     enforced by a timer thread flipping the job's cancel flag, which the
//     explorers poll cooperatively (ExploreLimits::cancel).  Cancelled and
//     incomplete verdicts are reported but NEVER cached: only complete,
//     deterministic results enter the store;
//   * graceful drain -- drain() stops admission, lets the queue empty and
//     joins the workers; shutdown() additionally cancels running jobs.
//
// The runner is injectable so the unit tests can drive coalescing, queue
// bounds and cancellation with gated fake jobs; default_runner() dispatches
// to verify_linearizable / verify_regular / check_consensus.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "wfregs/concurrent/snapshot.hpp"
#include "wfregs/service/job.hpp"
#include "wfregs/storage/options.hpp"
#include "wfregs/service/metrics.hpp"
#include "wfregs/service/store.hpp"
#include "wfregs/service/verdict.hpp"

namespace wfregs::service {

struct SchedulerOptions {
  /// Worker threads computing verdicts.
  int workers = 1;
  /// Bounded submission queue: submissions beyond this many waiting jobs
  /// are rejected (try_submit returns rejected, submit throws).
  std::size_t queue_capacity = 256;
  /// Verdict log path; empty = in-memory cache only.
  std::string store_path;
  /// Explorer threads per verification (VerifyOptions::threads); 1 keeps
  /// worker-level parallelism the only parallelism.
  int explore_threads = 1;
  /// Default wall-clock deadline per job; zero = none.
  std::chrono::milliseconds default_deadline{0};
  /// Finished-but-uncacheable job statuses (cancelled / failed / incomplete
  /// verdicts) kept for poll(); older entries are evicted.
  std::size_t status_history = 1024;
  /// Out-of-core template applied to every computed job.  When
  /// storage.checkpoint_dir is non-empty, each job runs with these storage
  /// options and its checkpoint directory specialized to
  /// `<checkpoint_dir>/<job_key_hex(key)>`.  A deadline-cancelled job then
  /// leaves a resumable checkpoint (its status-history verdict carries
  /// Provenance::kPartial); resubmitting the same key resumes the
  /// exploration instead of recomputing.  The per-job directory is removed
  /// once a complete verdict is cached.
  storage::StorageOptions storage;
};

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,       ///< verdict available (poll .verdict)
  kCancelled = 3,  ///< deadline or shutdown; verdict has complete=false
  kFailed = 4,     ///< runner threw; detail in verdict.detail
};

const char* job_state_name(JobState s);

struct JobStatus {
  JobState state = JobState::kQueued;
  bool from_cache = false;
  Verdict verdict;  ///< meaningful for kDone / kCancelled / kFailed
};

/// submit() / try_submit() outcome: the job's key, how it was admitted, and
/// a future for its verdict (already satisfied for cache hits).
struct Submitted {
  JobKey key;
  bool cached = false;     ///< answered from the store
  bool coalesced = false;  ///< joined an identical in-flight job
  bool rejected = false;   ///< queue full (try_submit only); future invalid
  std::shared_future<Verdict> result;
};

class JobScheduler {
 public:
  /// Computes a verdict; must poll `cancel` cooperatively (the default
  /// runner wires it into ExploreLimits::cancel).
  using Runner =
      std::function<Verdict(const VerifyJob&, const std::atomic<bool>& cancel)>;

  /// The real thing: dispatch on job.kind to the library verifiers, with
  /// `explore_threads` explorer workers and the standard static precheck
  /// when job.precheck is set.
  static Runner default_runner(int explore_threads);

  explicit JobScheduler(SchedulerOptions options, Runner runner = {});
  ~JobScheduler();  ///< shutdown(): cancels running jobs and joins

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Admits `job`; throws std::runtime_error when the queue is full or the
  /// scheduler is draining.
  Submitted submit(const VerifyJob& job);

  /// As submit(), but reports a full queue as .rejected instead of
  /// throwing.
  Submitted try_submit(const VerifyJob& job);

  /// Pure cache probe (no admission, no metrics beyond the probe).
  std::optional<Verdict> lookup(const JobKey& key) const;

  /// Status of a known key: in-flight state, cached verdict, or recent
  /// uncacheable outcome.  nullopt = never seen (or evicted).
  std::optional<JobStatus> poll(const JobKey& key) const;

  Metrics metrics() const;

  /// Stops admission, waits for the queue to empty and every running job
  /// to finish, joins the pool.  Idempotent.
  void drain();

  /// drain(), but first cancels queued and running jobs.  Idempotent.
  void shutdown();

 private:
  struct InFlight;
  /// Counters each worker publishes through worker_stats_ (wait-free; see
  /// wfregs/concurrent/snapshot.hpp) instead of mutating Metrics under mu_.
  static constexpr std::size_t kWorkerCounters = 13;
  /// `<storage.checkpoint_dir>/<job_key_hex(key)>`; empty when out-of-core
  /// checkpointing is off.
  std::string job_checkpoint_dir(const JobKey& key) const;
  void worker_main(std::size_t wid);
  void timer_main();
  Submitted admit(const VerifyJob& job, bool reject_when_full);
  void finish(const std::shared_ptr<InFlight>& job, Verdict verdict,
              JobState state, concurrent::StatsSnapshot::Writer& w);
  void remember_status(const JobKey& key, JobState state,
                       const Verdict& verdict,
                       concurrent::StatsSnapshot::Writer& w);

  SchedulerOptions options_;
  Runner runner_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;    ///< workers wait for queue items
  std::condition_variable drain_cv_;   ///< drain() waits for quiescence
  std::condition_variable timer_cv_;   ///< timer waits for next deadline
  bool stopping_ = false;              ///< no new admissions
  bool cancel_all_ = false;            ///< shutdown(): abandon the queue

  VerdictStore store_;
  std::deque<std::shared_ptr<InFlight>> queue_;
  /// Key -> queued/running job, the coalescing map.
  std::vector<std::shared_ptr<InFlight>> inflight_;
  /// Recently finished uncacheable statuses, newest last (bounded by
  /// options_.status_history; evictions counted).
  std::deque<std::pair<JobKey, JobStatus>> recent_;

  /// Admission-side counters only (submitted / hits / misses / coalesced /
  /// rejected / lookup latency): inherently serialized under mu_ anyway, so
  /// they stay there.  Worker-side counters live in worker_stats_.
  Metrics metrics_;
  /// One wait-free writer slot per worker (completion / cancellation /
  /// failure / eviction counts and queue / run / append latencies);
  /// metrics() collects a consistent cut without touching mu_ or stalling
  /// any worker.
  concurrent::StatsSnapshot worker_stats_;
  /// Cumulative collect invalidations across metrics() calls (the
  /// Metrics::snapshot_retries source).
  mutable std::atomic<std::uint64_t> collect_retries_{0};
  std::vector<std::thread> workers_;
  std::thread timer_;
};

}  // namespace wfregs::service
