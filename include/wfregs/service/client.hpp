// The daemon's client side: one blocking connection, one JSON reply per
// request.  wfregs_cli's --server mode is a thin wrapper over this.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "wfregs/service/job.hpp"

namespace wfregs::service {

class Client {
 public:
  /// Connects to a daemon or fleet coordinator; `endpoint` is any
  /// transport.hpp spec (a bare Unix socket path, "unix:<path>" or
  /// "tcp:<host>:<port>").  Throws std::runtime_error when the connection
  /// fails.
  explicit Client(const std::string& endpoint);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Submits canonical job text; returns the daemon's JSON reply.
  std::string submit(const std::string& job_text);

  /// Submits N jobs in ONE frame pair (kBatchSubmit); the reply is a JSON
  /// array of per-job submit objects, in order.
  std::string submit_batch(const std::vector<std::string>& job_texts);

  /// Polls a key (hex form); returns the daemon's JSON reply.
  std::string poll(const std::string& key_hex);

  /// Polls N keys in one frame pair; JSON array of poll objects, in order.
  std::string poll_batch(const std::vector<std::string>& key_hexes);

  /// Polls until the reply's status leaves queued/running, sleeping
  /// `interval` between probes.  Returns the final JSON reply.
  std::string wait(const std::string& key_hex,
                   std::chrono::milliseconds interval =
                       std::chrono::milliseconds(20));

  /// Metrics JSON.
  std::string stats();

  /// Asks the daemon to drain and exit; returns its acknowledgement.
  std::string shutdown();

 private:
  std::string roundtrip(std::uint8_t type, const std::string& payload);
  int fd_ = -1;
};

}  // namespace wfregs::service
