// The persistent verdict store: an append-only, CRC-checked record log with
// an in-memory open-addressing index (the ConfigInterner idiom: dense
// record ids, power-of-two probe table, linear probing over cached key
// hashes).
//
// On-disk layout:
//
//   file   := header record*
//   header := "WFVSTOR1" (8 bytes)
//   record := magic:u32 ('W''F''V''1' LE)
//             payload_len:u32
//             key_hi:u64  key_lo:u64
//             crc32:u32 (of the payload bytes)
//             payload bytes (encode_verdict output)
//
// All integers little-endian.  Records are committed by a single append +
// flush; open() replays the log and TRUNCATES at the first torn or
// corrupt record (short header, short payload, bad magic, bad CRC), so a
// crash -- SIGKILL mid-append included -- loses at most the record being
// written and every earlier verdict survives.  Duplicate keys keep the
// later record (last-writer-wins replay), which makes concatenated logs
// well-defined.
//
// Thread-safety: none here; JobScheduler serializes access under its own
// lock.  An empty path gives a purely in-memory store (same API, nothing
// persisted).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wfregs/service/job.hpp"
#include "wfregs/service/verdict.hpp"

namespace wfregs::service {

/// One committed record parsed out of a record stream (the log minus its
/// 8-byte file header): the key and the raw encode_verdict payload.
struct StoreRecord {
  JobKey key;
  std::vector<std::uint8_t> payload;
};

/// Bytes of the "WFVSTOR1" file header every log starts with.
inline constexpr std::size_t kStoreHeaderBytes = 8;

/// Parses a record stream, appending committed records to *out in log
/// order (duplicates included -- the caller applies last-writer-wins).
/// Returns the number of bytes consumed; parsing stops at the first torn
/// or corrupt record (short header, short payload, bad magic, bad CRC),
/// exactly the recovery rule replay() applies.  This is the shared parser
/// behind open()-time replay, the fleet's record-log tail replication and
/// `wfregs_cli store-merge`.
std::size_t parse_store_records(const std::uint8_t* data, std::size_t size,
                                std::vector<StoreRecord>* out);

/// Validates that `data` starts with the store file header.
bool check_store_header(const std::uint8_t* data, std::size_t size);

class VerdictStore {
 public:
  /// Opens (creating if absent) the log at `path`, replaying and
  /// truncating as described above.  Empty path = in-memory only.
  /// Throws std::runtime_error when the file cannot be opened or created.
  explicit VerdictStore(std::string path);
  ~VerdictStore();

  VerdictStore(const VerdictStore&) = delete;
  VerdictStore& operator=(const VerdictStore&) = delete;

  /// The stored verdict for `key`, if any.
  std::optional<Verdict> lookup(const JobKey& key) const;

  /// Raw encoded payload for `key` (the bit-identity probe used by the
  /// coherence tests and the E13 bench).
  std::optional<std::vector<std::uint8_t>> lookup_encoded(
      const JobKey& key) const;

  /// Appends (key, verdict) to the log and indexes it.  A re-put of an
  /// existing key appends a fresh record and repoints the index (last
  /// writer wins).  Throws std::runtime_error on I/O failure.
  void put(const JobKey& key, const Verdict& verdict);

  /// As put(), but with the already-encoded payload -- the replication
  /// path: a record shipped from another store lands byte-identical, never
  /// re-encoded.  The payload is validated by decoding before it is
  /// committed (a corrupt frame must not poison the log).
  void put_encoded(const JobKey& key, std::vector<std::uint8_t> payload);

  /// Idempotent, conflict-free merge of one record: a key we already hold
  /// with the identical payload is skipped (no append, no log growth on
  /// repeated syncs); a new key -- or, degenerately, a differing payload
  /// for a known key, impossible for honest content-addressed stores --
  /// is put_encoded.  Returns true when the record was applied.
  bool merge_encoded(const JobKey& key,
                     const std::vector<std::uint8_t>& payload);

  /// Every currently indexed key (arbitrary order).
  std::vector<JobKey> keys() const;

  /// Records currently indexed (distinct keys).
  std::size_t size() const { return keys_.size() - tombstones_; }

  /// Bytes in the on-disk log (header included); 0 for in-memory stores.
  std::uint64_t file_bytes() const { return file_bytes_; }

  /// Records dropped by torn-tail recovery at open().
  std::size_t recovered_drop() const { return recovered_drop_; }

  const std::string& path() const { return path_; }

 private:
  std::uint32_t find_slot(const JobKey& key) const;
  void index_insert(const JobKey& key, std::uint32_t id);
  void grow();
  void replay();
  void append_record(const JobKey& key,
                     const std::vector<std::uint8_t>& payload);

  std::string path_;
  int fd_ = -1;
  std::uint64_t file_bytes_ = 0;
  std::size_t recovered_drop_ = 0;
  std::size_t tombstones_ = 0;

  // In-memory side: record id -> (key, encoded payload); the probe table
  // maps key hashes to id+1 (0 = empty slot), ConfigInterner-style.
  std::vector<JobKey> keys_;
  std::vector<std::vector<std::uint8_t>> payloads_;
  std::vector<std::uint32_t> slots_;
  std::size_t mask_ = 0;
};

}  // namespace wfregs::service
