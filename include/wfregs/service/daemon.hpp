// wfregsd's serving core: a gateway event loop (transport.hpp) in front of
// a JobScheduler.  The loop is single-threaded -- the heavy lifting is the
// scheduler's worker pool; frame handlers only parse requests and shuttle
// JSON, and every handler is non-blocking (kSubmit uses try_submit, cached
// futures are already satisfied).  A connection that pipelines several
// frames in one send() gets every reply in one wakeup: the loop drains all
// buffered frames per poll cycle.
//
// Listeners: the Unix socket (socket_path) and, when `tcp` is set, a TCP
// endpoint serving the identical protocol.  A shutdown request -- or
// request_stop(), the binary's signal path -- flushes pending replies,
// drains the scheduler and returns from run().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "wfregs/service/protocol.hpp"
#include "wfregs/service/scheduler.hpp"
#include "wfregs/service/transport.hpp"

namespace wfregs::service {

struct DaemonOptions {
  /// Unix-domain socket path; may be empty when `tcp` is set.
  std::string socket_path;
  /// Optional TCP listener spec ("tcp:<host>:<port>", port 0 = ephemeral);
  /// empty = Unix only.
  std::string tcp;
  SchedulerOptions scheduler;
};

class Daemon {
 public:
  /// Binds the listeners (unlinking a stale Unix socket) and starts the
  /// scheduler.  Throws std::runtime_error when nothing can be bound or no
  /// listener is configured.
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Serves until a shutdown frame arrives or request_stop() is called,
  /// then flushes replies and drains the scheduler.  Returns the number of
  /// requests served.
  std::uint64_t run();

  /// Async-signal-unsafe parts deferred: just flips the stop flag; run()
  /// notices within one poll interval.
  void request_stop() { stop_.store(true, std::memory_order_release); }

  JobScheduler& scheduler() { return *scheduler_; }
  const std::string& socket_path() const { return options_.socket_path; }

  /// Kernel-assigned port of the TCP listener (0 when none configured).
  std::uint16_t tcp_port() const { return tcp_port_; }

 private:
  void on_frame(std::uint64_t conn, Frame&& frame);
  std::string handle_request(const Frame& request, bool* shutdown);
  std::string submit_one(const std::string& text);
  std::string poll_one(const std::string& hex);

  DaemonOptions options_;
  std::unique_ptr<JobScheduler> scheduler_;
  std::unique_ptr<EventLoop> loop_;
  std::uint16_t tcp_port_ = 0;
  std::uint64_t served_ = 0;
  bool stopping_ = false;
  std::atomic<bool> stop_{false};
};

}  // namespace wfregs::service
