// wfregsd's serving core: a Unix-domain listener in front of a
// JobScheduler.  Connections are handled on detached-joinable handler
// threads (the heavy lifting is the scheduler's worker pool; handlers only
// parse frames and shuttle JSON), and a shutdown request -- or
// request_stop(), the binary's signal path -- drains the scheduler and
// returns from run().
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "wfregs/service/protocol.hpp"
#include "wfregs/service/scheduler.hpp"

namespace wfregs::service {

struct DaemonOptions {
  std::string socket_path;
  SchedulerOptions scheduler;
};

class Daemon {
 public:
  /// Binds the socket (unlinking a stale one) and starts the scheduler.
  /// Throws std::runtime_error when the socket cannot be bound.
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Serves until a shutdown frame arrives or request_stop() is called,
  /// then drains the scheduler.  Returns the number of requests served.
  std::uint64_t run();

  /// Async-signal-unsafe parts deferred: just flips the stop flag; run()
  /// notices within its accept poll interval.
  void request_stop() { stop_.store(true, std::memory_order_release); }

  JobScheduler& scheduler() { return *scheduler_; }
  const std::string& socket_path() const { return options_.socket_path; }

 private:
  void handle_connection(int fd, std::atomic<std::uint64_t>* served);
  std::string handle_request(const Frame& request, bool* shutdown);

  DaemonOptions options_;
  std::unique_ptr<JobScheduler> scheduler_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
};

}  // namespace wfregs::service
