// Verification jobs and their content-addressed keys.
//
// A VerifyJob is everything a verdict is a pure function of: the job kind,
// the implementation (serialized via print_implementation), the scenario
// scripts, and the *normalized* VerifyOptions (print_verify_options drops
// the thread count -- verdicts are thread-count-invariant by the parallel
// explorer's determinism contract -- and reduces the static_precheck hook
// to an on/off bit).  Serializing the whole job to canonical text and
// hashing that text with the explorer's splitmix64 config_hash_words
// machinery yields a 128-bit JobKey: equal jobs always collide, distinct
// jobs collide with 2^-128 probability, and the key is stable across
// processes and restarts -- the verdict store's address.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "wfregs/runtime/explorer.hpp"
#include "wfregs/runtime/implementation.hpp"
#include "wfregs/service/verdict.hpp"

namespace wfregs::service {

/// 128-bit content hash of a job's canonical text.
struct JobKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const JobKey&, const JobKey&) = default;
};

/// 32 lowercase hex digits (hi then lo); parse_job_key round-trips it.
std::string job_key_hex(const JobKey& key);
/// Parses job_key_hex output; throws std::runtime_error on malformed input.
JobKey parse_job_key(const std::string& hex);

struct VerifyJob {
  JobKind kind = JobKind::kLinearizable;
  std::shared_ptr<const Implementation> impl;
  /// Scenario scripts (kLinearizable / kRegular): scripts[p] is port p's
  /// invocation sequence.  Ignored for kConsensus.
  std::vector<std::vector<InvId>> scripts;
  /// Register value count for kRegular (check_regular's `values`).
  int values = 0;
  /// Verification options; threads and static_precheck are NOT part of the
  /// job identity (see the header comment).  `precheck` is.
  VerifyOptions options;
  /// Run the standard analysis::static_precheck() before exploring.
  bool precheck = false;
  /// kConsensus only: try the certified consensus-power fast-path
  /// (analysis::static_consensus_decider()) before exploring; statically
  /// decided jobs skip exploration and their verdicts carry
  /// Provenance::kStatic.  Part of the job identity (printed as a
  /// `static-power` line only when set, so pre-existing job keys are
  /// unchanged).
  bool static_power = false;
};

/// Canonical text: `job <kind>` + scripts + normalized options + the
/// serialized implementation.  parse_job accepts exactly what print_job
/// emits.  Throws when the implementation cannot be serialized.
std::string print_job(const VerifyJob& job);

/// Parses the canonical text; throws std::runtime_error with a line number
/// on malformed input.
VerifyJob parse_job(const std::string& text);

/// The content-addressed key of `job`: hash_job_text(print_job(job)).
JobKey job_key(const VerifyJob& job);

/// Hashes canonical job text (two salted config_hash_words passes over the
/// text's bytes packed into 64-bit words).
JobKey hash_job_text(const std::string& text);

}  // namespace wfregs::service
