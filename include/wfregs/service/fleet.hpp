// The verification fleet: one Coordinator gateway sharding jobs across N
// `wfregsd --worker` processes, with cache replication back into the
// coordinator's verdict store.
//
//   * Sharding: a submitted job goes to worker (key.hi ^ key.lo) % N -- the
//     JobKey is already a uniform content hash, so no extra hashing and the
//     same job always lands on the same worker (its local cache stays hot).
//   * Work stealing: a worker whose queue is empty and whose inflight
//     window has room is handed work from the largest other queue; the
//     unassigned orphan queue (jobs submitted while no worker was
//     connected, or requeued after a disconnect) is drained first and does
//     not count as stealing.
//   * Bounded admission: queued + inflight jobs are capped by
//     admission_capacity; a submit over the cap gets status "rejected" (the
//     protocol's EAGAIN) -- the coordinator never buffers unboundedly.
//   * Replication: every kWorkerResult carries the encoded verdict, which
//     lands in the coordinator store byte-identical (put via the encoded
//     path, never re-encoded).  kWorkerSync frames additionally ship each
//     worker's record-log tail so verdicts a worker computed before joining
//     -- or for jobs the coordinator never dispatched -- warm the
//     coordinator cache too.  Merging is by JobKey and idempotent:
//     re-shipped records are skipped, so repeated syncs cost nothing.
//   * Observability: per-worker Metrics snapshots (shipped in syncs) are
//     aggregated into the coordinator's stats reply alongside the fleet
//     counters below; cache hits are attributed to the worker that
//     originally computed the verdict (hits_by_origin), which is how the CI
//     fleet-smoke job proves cross-worker cache reuse.
//
// Both Coordinator and Worker are single-threaded event loops (the
// Coordinator on transport.hpp's EventLoop, the Worker on a blocking fd +
// poll); all verification parallelism lives in each worker's JobScheduler.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "wfregs/concurrent/cacheline.hpp"
#include "wfregs/service/metrics.hpp"
#include "wfregs/service/protocol.hpp"
#include "wfregs/service/scheduler.hpp"
#include "wfregs/service/store.hpp"
#include "wfregs/service/transport.hpp"

namespace wfregs::service {

/// Coordinator-level counters and gauges (the per-worker Metrics are
/// aggregated separately; see fleet_metrics_to_json).
struct FleetMetrics {
  // Counters.
  std::uint64_t submitted = 0;       ///< jobs admitted (queued for dispatch)
  std::uint64_t batch_frames = 0;    ///< kBatchSubmit/kBatchPoll frames
  std::uint64_t cache_hits = 0;      ///< answered from the coordinator store
  std::uint64_t dispatched = 0;      ///< kAssign frames sent
  std::uint64_t steals = 0;          ///< dispatches taken from another
                                     ///< worker's queue
  std::uint64_t admission_rejections = 0;  ///< bounced off the admission cap
  std::uint64_t completed = 0;       ///< results landed in the store
  std::uint64_t failed = 0;          ///< cancelled / failed results
  std::uint64_t requeued = 0;        ///< jobs re-queued (worker disconnect
                                     ///< or worker-side rejection)
  std::uint64_t merged_records = 0;  ///< sync records actually applied
  std::uint64_t sync_frames = 0;     ///< kWorkerSync frames received
  // Gauges.
  std::uint64_t workers = 0;
  std::uint64_t queue_depth = 0;     ///< queued (per-worker + orphan)
  std::uint64_t in_flight = 0;       ///< dispatched, result not yet back
  /// Cache hits attributed to the origin that computed the verdict: worker
  /// names, or "local" for records already in the coordinator store at
  /// startup.  Sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> hits_by_origin;
};

/// One JSON object: {"role":"coordinator", ...counters..., "hits_by_origin":
/// {...}, "fleet_totals":<metrics_to_json of the aggregated worker
/// snapshots>} -- the coordinator's kStats reply.
std::string fleet_metrics_to_json(const FleetMetrics& m,
                                  const Metrics& fleet_totals);

struct CoordinatorOptions {
  /// Primary listener endpoint spec (Unix path or tcp:...); empty = none.
  std::string listen;
  /// Optional second listener (the common shape: unix for local clients +
  /// tcp for the fleet).  At least one of the two must be set.
  std::string listen_tcp;
  /// Coordinator verdict store (the replicated cache); empty = in-memory.
  std::string store_path;
  /// Bounded admission: max queued + inflight jobs before "rejected".
  std::size_t admission_capacity = 256;
  /// Inflight window per worker (assignments awaiting a result).
  std::size_t max_inflight_per_worker = 2;
  /// Event-loop poll timeout.
  std::chrono::milliseconds poll_interval{50};
  /// Shutdown: how long to wait for pending jobs and worker goodbyes.
  std::chrono::milliseconds drain_grace{5000};
  /// Finished-but-uncacheable statuses kept for poll.
  std::size_t status_history = 1024;
};

class Coordinator {
 public:
  /// Binds the listeners and opens the store.  Throws std::runtime_error
  /// when no listener is configured or a bind fails.
  explicit Coordinator(CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Serves until a shutdown frame arrives or request_stop() is called,
  /// then drains: admission stops, pending jobs finish (bounded by
  /// drain_grace), workers get kShutdown and their goodbyes are awaited.
  /// Returns the number of request frames served.
  std::uint64_t run();

  /// Signal-path stop: flips a flag; run() begins the drain within one poll
  /// interval.
  void request_stop() { stop_.store(true, std::memory_order_release); }

  /// Kernel-assigned port of the TCP listener (port-0 binds); 0 when no
  /// TCP listener.
  std::uint16_t tcp_port() const { return tcp_port_; }

  /// Snapshots for in-process harnesses (the E16 bench); call only before
  /// run() or after it returned.
  FleetMetrics metrics() const;
  Metrics fleet_totals() const;

 private:
  struct WorkerState {
    std::string name;
    std::size_t window = 0;           ///< min(option, hello capacity)
    std::deque<JobKey> queue;         ///< sharded/requeued, not yet sent
    std::vector<JobKey> inflight;     ///< assigned, result pending
    Metrics last;                     ///< latest synced snapshot
    bool synced = false;              ///< last is meaningful
  };
  enum class Where : std::uint8_t { kWorkerQueue, kOrphan, kInflight };
  struct PendingJob {
    std::string text;
    Where where = Where::kOrphan;
    std::uint64_t conn = 0;  ///< kWorkerQueue / kInflight: owning worker
  };
  using KeyPair = std::pair<std::uint64_t, std::uint64_t>;
  static KeyPair key_pair(const JobKey& k) { return {k.hi, k.lo}; }

  void on_frame(std::uint64_t conn, Frame&& frame);
  void on_close(std::uint64_t conn);
  std::string handle_submit_one(const std::string& text);
  std::string handle_poll_one(const std::string& hex) const;
  void handle_worker_frame(std::uint64_t conn, const Frame& frame);
  void dispatch();
  void assign(std::uint64_t conn, WorkerState* w, const JobKey& key);
  void requeue_worker_jobs(std::uint64_t conn, WorkerState* w);
  void record_origin(const JobKey& key, const std::string& origin);
  const std::string& origin_of(const JobKey& key) const;
  void remember_status(const JobKey& key, const std::string& state,
                       const std::string& verdict_json);
  std::string stats_json() const;
  std::size_t total_pending() const { return pending_.size(); }

  CoordinatorOptions options_;
  std::unique_ptr<EventLoop> loop_;
  VerdictStore store_;
  std::uint16_t tcp_port_ = 0;

  std::map<std::uint64_t, WorkerState> workers_;
  /// Stable dispatch order for sharding: conn ids of live workers, in join
  /// order.
  std::vector<std::uint64_t> worker_order_;
  std::deque<JobKey> orphan_;  ///< jobs with no assigned worker
  std::map<KeyPair, PendingJob> pending_;
  std::map<KeyPair, std::string> origin_;
  /// Recent uncacheable outcomes, newest last: key -> (state, verdict
  /// JSON); bounded by options_.status_history.
  std::deque<std::pair<KeyPair, std::pair<std::string, std::string>>> recent_;

  /// Cache-line aligned: the event loop bumps these counters on every
  /// frame, and they must not share a line with stop_ below (written from
  /// the signal path on another thread).
  alignas(concurrent::kCacheLine) FleetMetrics fleet_;
  std::map<std::string, std::uint64_t> hits_by_origin_;
  /// Last synced snapshots of workers that already disconnected, so
  /// fleet_totals() survives the goodbye.
  Metrics departed_totals_;
  std::uint64_t served_ = 0;
  std::uint64_t next_worker_id_ = 1;
  bool stopping_ = false;
  bool workers_notified_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};
  /// Own cache line: the cross-thread stop flag must not false-share with
  /// the loop's hot bookkeeping above.
  alignas(concurrent::kCacheLine) std::atomic<bool> stop_{false};
};

struct WorkerOptions {
  /// Coordinator endpoint spec to connect to.
  std::string connect;
  /// Worker name for hits_by_origin attribution; empty = coordinator
  /// assigns "w<N>".
  std::string name;
  SchedulerOptions scheduler;
  /// Injectable verdict runner (tests gate it); empty = the scheduler's
  /// default_runner.
  JobScheduler::Runner runner;
  /// How often to ship metrics + record-log tail to the coordinator.
  std::chrono::milliseconds sync_interval{200};
  /// Connection poll timeout (also the future-sweep cadence).
  std::chrono::milliseconds poll_interval{20};
  /// How long to keep retrying the initial connect (coordinator may still
  /// be binding when the worker starts).
  std::chrono::milliseconds connect_timeout{5000};
};

class Worker {
 public:
  explicit Worker(WorkerOptions options);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Connects (retrying within connect_timeout), registers, serves
  /// assignments until the coordinator sends kShutdown or disconnects, then
  /// drains the local scheduler, ships a final sync and returns the number
  /// of results sent.  Throws std::runtime_error when the connect never
  /// succeeds.
  std::uint64_t run();

  void request_stop() { stop_.store(true, std::memory_order_release); }

  JobScheduler& scheduler() { return *scheduler_; }

 private:
  struct PendingResult {
    JobKey key;
    std::shared_future<Verdict> result;
  };

  void handle_frame(int fd, const Frame& frame, bool* shutdown);
  std::size_t sweep_results(int fd);  ///< sends ready results; count sent
  void send_sync(int fd);             ///< metrics + record-log tail

  WorkerOptions options_;
  std::unique_ptr<JobScheduler> scheduler_;
  std::vector<PendingResult> pending_;
  std::uint64_t results_sent_ = 0;
  /// Byte offset into the scheduler's store file already shipped; starts
  /// past the 8-byte header and only ever advances over fully parsed
  /// records (a torn in-progress append is re-read next sync).
  std::uint64_t sync_offset_ = kStoreHeaderBytes;
  /// Own cache line, for the same reason as Coordinator::stop_.
  alignas(concurrent::kCacheLine) std::atomic<bool> stop_{false};
};

}  // namespace wfregs::service
