// Service metrics: a plain snapshot struct dumpable as JSON.  The
// scheduler fills the admission-side counters under its lock and collects
// the worker-side counters from its wait-free StatsSnapshot aggregator
// (wfregs/concurrent/snapshot.hpp).  This is the daemon's `stats` response
// and the E13 bench's hit/miss counter source.
#pragma once

#include <cstdint>
#include <string>

namespace wfregs::service {

struct Metrics {
  // Counters (monotone over the scheduler's lifetime).
  std::uint64_t submitted = 0;      ///< submit() calls accepted
  std::uint64_t cache_hits = 0;     ///< answered from the verdict store
  std::uint64_t cache_misses = 0;   ///< scheduled for computation
  std::uint64_t coalesced = 0;      ///< joined an identical in-flight job
  std::uint64_t rejected = 0;       ///< bounced off the full queue
  std::uint64_t completed = 0;      ///< verdicts computed to completion
  std::uint64_t static_decisions = 0;  ///< verdicts decided by the certified
                                       ///< static fast-path (no exploration)
  std::uint64_t cancelled = 0;      ///< deadline / shutdown cancellations
  std::uint64_t failed = 0;         ///< runner raised an exception
  std::uint64_t evictions = 0;      ///< finished-job entries aged out of the
                                    ///< in-memory status table
  std::uint64_t resumed_jobs = 0;   ///< computed verdicts that resumed from
                                    ///< an out-of-core checkpoint
  std::uint64_t partial_checkpoints = 0;  ///< cancelled jobs that left a
                                          ///< resumable checkpoint behind
                                          ///< (Provenance::kPartial)
  // Gauges (instantaneous).
  std::uint64_t queue_depth = 0;    ///< jobs waiting for a worker
  std::uint64_t in_flight = 0;      ///< jobs currently running
  std::uint64_t store_records = 0;  ///< distinct verdicts in the store
  std::uint64_t store_bytes = 0;    ///< on-disk log size

  // Per-stage latency: totals in nanoseconds plus sample counts, so
  // consumers can form means without the scheduler guessing at quantiles.
  std::uint64_t lookup_ns_total = 0;  ///< submit-time store probes
  std::uint64_t lookup_count = 0;
  std::uint64_t queue_ns_total = 0;   ///< submit -> worker pickup
  std::uint64_t queue_count = 0;
  std::uint64_t run_ns_total = 0;     ///< worker pickup -> verdict
  std::uint64_t run_count = 0;
  std::uint64_t append_ns_total = 0;  ///< store append
  std::uint64_t append_count = 0;

  /// Snapshot collects invalidated by a concurrent worker publication while
  /// assembling this (or an earlier) metrics() reply -- the scheduler's
  /// live-read contention signal from the wait-free aggregator.
  std::uint64_t snapshot_retries = 0;
};

/// One JSON object with every field above.
std::string metrics_to_json(const Metrics& m);

/// Parses metrics_to_json output back into a Metrics snapshot (tolerant:
/// fields missing from the JSON stay zero).  The fleet coordinator uses
/// this to aggregate the per-worker snapshots shipped in kWorkerSync
/// frames into its stats reply.
Metrics parse_metrics_json(const std::string& json);

/// Field-wise sum: every counter, gauge and latency total of `m` added
/// into `into` (fleet-wide aggregation over workers).
void accumulate_metrics(Metrics* into, const Metrics& m);

}  // namespace wfregs::service
