// wfregs-lint: static discipline checking of implementations and types.
//
// The checker walks the Implementation/ObjectDecl/Program graph -- never the
// scheduler -- and certifies the structural disciplines the paper's pipeline
// rests on:
//
//   pass 1 (port discipline, Section 4.1): register-typed base objects are
//     used in single-writer normal form -- each register port is driven by
//     at most one outer port, reads arrive only on reader ports, writes
//     only on the writer port, and MRMW register bases must not be written
//     (or read) from more than one port;
//   pass 2 (one-use discipline, Section 3): along every static path of
//     every program, each one-use bit is read at most once and written at
//     most once, with a counterexample path attached on violation;
//   pass 3 (static access bounds, Section 4.2): a per-base-object upper
//     bound on accesses under the standard scenario (each port performs one
//     operation), computed by loop-free path counting through the object
//     tree; check_bound_dominance() cross-checks it against the exact
//     dynamic bounds from core::compute_access_bounds (static >= dynamic);
//   pass 4 (TypeSpec lints, Section 2.1): totality errors inside lint();
//     determinism / obliviousness / unreachable-state notes via lint_type(),
//     feeding the Section 5 triviality deciders.
//
// Program reachability questions are answered by the exact per-program
// enumeration (exact_facts.hpp) when it applies and by the abstract
// interpreter (program_facts.hpp) otherwise, so every verdict is sound for
// arbitrary builder programs.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "wfregs/analysis/bound.hpp"
#include "wfregs/core/access_bounds.hpp"
#include "wfregs/runtime/implementation.hpp"
#include "wfregs/typesys/type_spec.hpp"

namespace wfregs::analysis {

struct Diagnostic {
  enum class Severity { kError, kWarning };
  enum class Pass {
    kStructure,       ///< wiring: missing programs, kNoPort, id ranges
    kPortDiscipline,  ///< Section 4.1 register usage
    kOneUse,          ///< Section 3 read-once / write-once
    kBounds,          ///< Section 4.2 static-vs-dynamic cross-check
    kTypeSpec,        ///< Section 2.1 table lints
  };

  Severity severity = Severity::kError;
  Pass pass = Pass::kStructure;
  /// Declaration path of the object concerned (empty: the implementation
  /// itself / the type as a whole).
  std::vector<int> path;
  /// Rendered location, e.g. "mrsw_register2_r2 /1(srsw_register8)".
  std::string object;
  std::string message;
  /// Counterexample: rendered instruction path through the outermost
  /// program exhibiting the violation (may be empty).
  std::vector<std::string> trace;

  std::string to_string() const;
};

/// Pass 3 result for one flattened base object.  Bounds follow the
/// Section 4.2 scenario (each outer port performs one operation): the sum
/// over ports of the worst single operation on that port.
struct StaticObjectBound {
  std::vector<int> path;  ///< declaration path, as in core::ObjectBound
  std::string type_name;
  Bound accesses;  ///< any invocation
  Bound reads;     ///< invocation 0 (register convention)
  Bound writes;    ///< invocations >= 1
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;
  /// One entry per flattened base object, in declaration (DFS) order.
  std::vector<StaticObjectBound> bounds;

  bool ok() const { return error_count() == 0; }
  std::size_t error_count() const;
  std::size_t warning_count() const;
  std::string to_string() const;
};

/// Runs passes 1-3 (plus base-type totality) on an implementation.  The
/// assumed usage is the set of (invocation, port) pairs the implementation
/// provides programs for; inner objects' usage is derived from what outer
/// programs can actually reach.
LintReport lint(const Implementation& impl);

/// Pass 4 on a single type table: totality errors, plus warnings for
/// nondeterminism, port-sensitivity (non-obliviousness) and states
/// unreachable from `initial`.
LintReport lint_type(const TypeSpec& spec, StateId initial = 0);

/// Cross-checks pass 3 against exact dynamic bounds: for every dynamic
/// ObjectBound the static bound at the same path must dominate it (static
/// >= dynamic), per invocation class.  Violations indicate a bug in either
/// analysis and are reported as kBounds errors.
std::vector<Diagnostic> check_bound_dominance(const LintReport& statics,
                                              const core::AccessBounds& dyn);

/// A hook for VerifyOptions::static_precheck: lints the implementation and
/// reports the first errors as a failure string (nullopt when clean).
std::function<std::optional<std::string>(const Implementation&)>
static_precheck();

}  // namespace wfregs::analysis
