// Static refinement of the explorer's independence relation.
//
// The runtime baseline (IndependenceTable::build) declares two accesses of a
// base object independent only when they commute in EVERY state of its
// TypeSpec -- sound for any exploration, but needlessly conservative: specs
// frequently carry states a given system can never drive the object into
// (padded value ranges, the "burnt" halves of one-use bits, capacity states
// of queues no program fills), and programs frequently issue only a few of
// the invocations the spec admits.  This header reuses the wfregs-lint
// machinery (abstract interpretation of program bytecode over ValueSets) to
// shrink both axes:
//
//   1. ISSUED INVOCATIONS.  For every base object, every program that can
//      reach it -- top-level process programs for top-level objects, the
//      owning implementation's per-(invocation, port) programs for inner
//      objects -- is abstractly executed, and the possible invocation ids at
//      each reachable invoke site targeting the object are collected per
//      port.  A (port, invocation) access that no program can issue never
//      appears as an enabled step, so pairs involving it commute vacuously.
//   2. REACHABLE STATES.  The object's state space is restricted to the
//      closure of its initial state under the issuable accesses from (1);
//      commutation is then required only on that closure.
//
// Both computations over-approximate (uninspectable programs degrade to
// "issues everything", abstract responses are modelled as top), so every
// "independent" verdict of the refined table is justified by a run of the
// real system: the table is sound wherever the baseline is, and never
// coarser.  Inject the result through ExploreOptions::independence.
#pragma once

#include <string>

#include "wfregs/runtime/reduction.hpp"
#include "wfregs/runtime/system.hpp"

namespace wfregs::analysis {

/// The refined independence table for `sys` (see file comment).  Covers
/// every base object of `sys`; the result must outlive the explorations it
/// is injected into.
IndependenceTable refined_independence(const System& sys);

/// Human-readable comparison of the baseline and refined relations, object
/// by object: issuable accesses, reachable states, and the independent-pair
/// counts each table certifies.  Diagnostics for `wfregs_cli` and tests.
std::string describe_independence(const System& sys);

}  // namespace wfregs::analysis
