// Exact per-program enumeration: the precise counterpart of
// analyze_program().
//
// The abstract interpreter in program_facts.hpp is sound for every program
// but too coarse for the Section 4.3 array walk: the reader's row loop puts
// each one-use bit's read site on a CFG cycle, and only the progress
// argument "i_r strictly increases and the site requires i_r == i" bounds
// the visits.  Enumerating the program's own concrete state space -- states
// are (pc, register file), responses branch over the oracle's response set
// -- captures exactly that argument: the state graph is acyclic precisely
// when the program makes progress, and per-site visit counts become
// longest-path queries on it.
//
// Enumeration runs when all inputs (persistent seeds, oracle responses) are
// finite and the state count stays within limits; otherwise `available` is
// false and callers fall back to the abstract facts.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "wfregs/analysis/bound.hpp"
#include "wfregs/analysis/program_facts.hpp"
#include "wfregs/analysis/value_set.hpp"
#include "wfregs/runtime/program.hpp"

namespace wfregs::analysis {

struct ExactLimits {
  /// Distinct (pc, registers) states before giving up.
  std::size_t max_states = 200000;
  /// Persistent-register seed combinations before giving up.
  std::size_t max_inputs = 4096;
  /// Elements enumerated out of any single ValueSet before giving up.
  std::size_t max_values = 4096;
};

struct ExactProgramFacts {
  /// False when enumeration was not possible (opaque program, unbounded
  /// inputs, state blowup); `detail` says why and every other field is
  /// empty.
  bool available = false;
  std::string detail;

  std::vector<StaticInstr> code;
  /// Per concrete state: the pc it sits at.
  std::vector<int> state_pc;
  /// Per state: invoked slot and concrete invocation id (-1 / 0 when the
  /// state's instruction is not a kInvoke).
  std::vector<int> site_slot;
  std::vector<Val> site_inv;
  std::vector<std::vector<int>> succ;
  /// Entry states, one per persistent seed combination.
  std::vector<int> roots;

  ValueSet return_values;
  std::vector<ValueSet> persistent_out;
  /// Per slot: every invocation id issued on it, over all states.
  std::vector<ValueSet> slot_invs;

  /// Max over concrete executions of the summed site weights.
  Bound max_weight(
      const std::function<Bound(int slot, Val inv)>& weight) const;
  /// A concrete execution visiting >= `want` matching sites (best effort,
  /// see weighted_witness()).
  std::optional<std::vector<int>> witness(
      const std::function<bool(int slot, Val inv)>& site,
      std::size_t want) const;
  /// Human-readable rendering of one state (for diagnostics).
  std::string describe_state(int s) const;
};

/// Enumerates one program's concrete state space.  `persistent_in[i]` seeds
/// register i; remaining registers start at 0.  `num_slots` sizes
/// slot_invs.  `oracle` models invocation responses exactly as in
/// analyze_program (a bottom response kills the path).
ExactProgramFacts enumerate_program(
    const ProgramCode& prog, const std::vector<ValueSet>& persistent_in,
    int num_slots, const ResponseOracle& oracle,
    const ExactLimits& limits = {});

}  // namespace wfregs::analysis
