// The extended-natural bound domain used by the static access-bound and
// one-use passes: a count that is either an exact natural or "unbounded"
// (an access site on a control-flow cycle).  The static analogue of the
// paper's Section 4.2 access bounds.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>

namespace wfregs::analysis {

/// A saturating counter over the naturals extended with infinity.
struct Bound {
  bool finite = true;
  std::size_t n = 0;

  static Bound inf() { return Bound{false, 0}; }
  static Bound of(std::size_t k) { return Bound{true, k}; }

  bool is_zero() const { return finite && n == 0; }
  friend Bound operator+(Bound a, Bound b) {
    if (!a.finite || !b.finite) return inf();
    return of(a.n + b.n);
  }
  friend Bound operator*(Bound a, Bound b) {
    // 0 * anything == 0: a slot never accessed contributes nothing even
    // when the inner bound is unbounded.
    if (a.is_zero() || b.is_zero()) return of(0);
    if (!a.finite || !b.finite) return inf();
    return of(a.n * b.n);
  }
  static Bound max(Bound a, Bound b) {
    if (!a.finite || !b.finite) return inf();
    return of(std::max(a.n, b.n));
  }
  /// a >= b in the extended order (infinity dominates everything).
  static bool dominates(Bound a, std::size_t b) {
    return !a.finite || a.n >= b;
  }
  std::string to_string() const {
    return finite ? std::to_string(n) : "inf";
  }
  friend bool operator==(const Bound&, const Bound&) = default;
};

}  // namespace wfregs::analysis
