// Static consensus-power classification with machine-checkable certificates.
//
// The paper's central results are *static* facts about a type table: the
// Section 5 triviality dichotomy, the shape of a minimal non-trivial pair,
// and the main theorem that registers cannot raise the consensus power of a
// deterministic type (h_m = h_m^r).  This pass computes, from a TypeSpec
// alone -- no schedule exploration -- sound lower and upper bounds on
//
//     cons(T) := h_m^r(T)
//
// (the largest n for which n-process binary consensus is solvable from any
// number of objects of T plus read/write registers, each process holding one
// port of each object it accesses).  Every bound ships with a certificate
// that an INDEPENDENT checker (check_certificate, sharing no code with the
// classifier: it consumes raw TypeSpec::delta, never CompiledType or the
// triviality deciders) re-validates from first principles.
//
// Upper bounds (cons <= 1):
//
//   * kCommuteOverwriteUpper -- the mechanized Herlihy critical-state
//     argument.  If for EVERY state q and every pair of distinct-port
//     accesses alpha = (a, i1), beta = (b, i2) the pair either commutes at q
//     (same final state and same per-access responses in both orders) or one
//     overwrites the other (running beta after alpha yields exactly
//     delta(q, beta): the earlier access is invisible to everyone but its
//     caller), then no 2-process consensus protocol over objects of T and
//     registers exists: at a critical (bivalent) configuration the two
//     pending steps must land on one object, and each disposition collapses
//     the 0-valent and 1-valent successors into configurations
//     indistinguishable to some solo finisher.  Registers themselves satisfy
//     commute-or-overwrite, so the argument tolerates them.  The classifier
//     seeds the per-state table from CompiledType's precomputed pairwise
//     commutation matrix (a commutes-everywhere pair is kCommute in every
//     state) and only inspects delta for the residue.
//
//   * kTrivialObliviousUpper / kTrivialGeneralUpper -- the Section 5
//     triviality argument: a trivial type's port-j response sequence is a
//     function of port j's own invocation sequence, so its objects can be
//     simulated locally and deleted from any protocol; what remains runs on
//     registers alone (cons 1 by FLP / Loui & Abu-Amara / Herlihy).  The
//     oblivious certificate is the full response table plus one-step
//     response invariance (responses constant along every edge, hence along
//     every reachable path); the general certificate is one partition of Q
//     per port that the checker verifies to be a port-local bisimulation
//     (equal classes give equal responses and equal successor classes) that
//     other ports cannot leave (every foreign-port step preserves the
//     class), which is exactly Section 5.2 triviality.
//
// Lower bounds:
//
//   * kSoloLower -- cons >= 1 for every total type (a lone process decides
//     its own input); the certificate is the degenerate depth-1 adopt table.
//
//   * kRaceLower -- cons >= 2 from a cross-port race gadget: a state q and
//     accesses (a, i_a), (b, i_b) on distinct ports where BOTH responses
//     distinguish going first from going second.  Two processes publish
//     their inputs in SRSW announce bits, race on one object of T
//     initialized to q, and the self-identified loser adopts the winner's
//     bit -- the publish/race/adopt protocol of the hierarchy harness,
//     statically detected.  The certificate embeds the derived Section 5.2
//     non-trivial pair (read_seq = [i_a] distinguishes q from
//     delta(q, b, i_b).next), the hook into the paper's Section 4.3/5 chain:
//     a non-trivial T implements one-use bits, one-use bits implement the
//     announce registers, so the bound is register-free (h_m, not just
//     h_m^r) by the main theorem.
//
//   * kAdoptLower -- cons >= d from a depth-d first-value gadget: a state q,
//     per-value invocations inv[0], inv[1] and a decision table decide[v][r]
//     such that along EVERY injective port sequence over ports 0..d-1 and
//     every value assignment, each invoker's response decodes the FIRST
//     value proposed.  One object, no registers, one invocation per process:
//     the pattern behind sticky bits, consensus objects, old-value cas and
//     the Aspnes shift-register structure (the marker bit survives w - 1
//     shifts, so depth w is consistent and depth w + 1 is not).
//
//   * kRegisterAugmentation -- the family rule (classify_family): a member
//     certified cons <= 1 by the rules above can be added to any family
//     without raising the family's bounds (its objects are registers-or-
//     weaker in the critical-state argument), and the family's lower bound
//     is the max over members (cons allows registers already).  This is the
//     paper's main theorem as an absorption law: T x {registers} inherits
//     T's deterministic bounds with no re-analysis.
//
// The classifier never contradicts exploration: lower <= cons(T), and
// upper_finite implies cons(T) <= upper.  Both are exercised by the
// differential gates in tests/consensus_power_static.cpp and tests/fuzz.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "wfregs/runtime/explorer.hpp"
#include "wfregs/runtime/implementation.hpp"
#include "wfregs/typesys/triviality.hpp"
#include "wfregs/typesys/type_spec.hpp"

namespace wfregs::analysis {

// ---- rules -----------------------------------------------------------------

enum class PowerRule : std::uint8_t {
  kSoloLower = 0,             ///< cons >= 1 (degenerate adopt, depth 1)
  kRaceLower = 1,             ///< cons >= 2 (cross-port race gadget)
  kAdoptLower = 2,            ///< cons >= d (depth-d first-value gadget)
  kCommuteOverwriteUpper = 3, ///< cons <= 1 (critical-state argument)
  kTrivialObliviousUpper = 4, ///< cons <= 1 (Section 5.1 triviality)
  kTrivialGeneralUpper = 5,   ///< cons <= 1 (Section 5.2 triviality)
  kRegisterAugmentation = 6,  ///< family absorption (main theorem)
};

const char* power_rule_name(PowerRule rule);

// ---- certificates ----------------------------------------------------------

/// Disposition of one distinct-port access pair at one state, for the
/// critical-state table.  "First" is (a, i1), "second" is (b, i2), a < b.
enum class PairDisposition : std::uint8_t {
  kCommute = 0,               ///< both orders: same state, same responses
  kFirstOverwritesSecond = 1, ///< delta(delta(q,beta).next, alpha) == delta(q,alpha)
  kSecondOverwritesFirst = 2, ///< delta(delta(q,alpha).next, beta) == delta(q,beta)
};

/// Filler for table slots with a >= b (the pair is covered once, at a < b).
inline constexpr std::uint8_t kPairUnused = 0xFF;

/// kCommuteOverwriteUpper: dispositions[((q*P + a)*I + i1)*P*I + b*I + i2]
/// holds a PairDisposition for every state q and distinct-port access pair
/// with a < b; all other slots are kPairUnused.
struct CommuteOverwriteCert {
  std::vector<std::uint8_t> dispositions;
};

/// kTrivialObliviousUpper: the claimed response table resp[q*I + i], checked
/// to match delta and to be invariant along every one-step edge.
struct TrivialObliviousCert {
  std::vector<RespId> resp;
};

/// kTrivialGeneralUpper: classes[j*Q + q] is state q's port-j trace class;
/// checked to be a port-j bisimulation no foreign-port step can leave.
struct TrivialGeneralCert {
  std::vector<int> classes;
};

/// kRaceLower: the race state, the two distinct-port accesses, the four
/// responses (first/second application per side), and the derived
/// Section 5.2 non-trivial pair justifying register elimination.
struct RaceCert {
  StateId q = 0;
  PortId port_a = 0;
  PortId port_b = 0;
  InvId inv_a = 0;
  InvId inv_b = 0;
  RespId first_a = 0;   ///< delta(q, a, i_a).resp
  RespId second_a = 0;  ///< delta(delta(q, b, i_b).next, a, i_a).resp
  RespId first_b = 0;   ///< delta(q, b, i_b).resp
  RespId second_b = 0;  ///< delta(delta(q, a, i_a).next, b, i_b).resp
  NonTrivialPair pair;
};

/// kSoloLower / kAdoptLower: from state q, process p (on port p < depth)
/// invokes inv[v_p] once and decides decide[v_p * R + r] from its response.
/// Consistent when every injective port sequence and value assignment makes
/// every decision equal the first proposed value.  -1 entries are
/// unconstrained (unreachable (value, response) combinations).
struct AdoptCert {
  StateId q = 0;
  int depth = 1;
  InvId inv[2] = {0, 0};
  std::vector<int> decide;
};

/// kRegisterAugmentation: which family members were absorbed (certified
/// cons <= 1 individually) and which member the family lower bound comes
/// from (-1 when every member bottoms out at the solo bound).
struct FamilyCert {
  std::vector<int> absorbed;
  int lower_source = -1;
};

using Certificate =
    std::variant<CommuteOverwriteCert, TrivialObliviousCert,
                 TrivialGeneralCert, RaceCert, AdoptCert, FamilyCert>;

/// One certified bound: `rule` tells whether `bound` is a lower or an upper
/// bound on cons(T).
struct PowerClaim {
  PowerRule rule = PowerRule::kSoloLower;
  int bound = 1;
  Certificate cert;
};

// ---- classification --------------------------------------------------------

struct ConsensusPowerResult {
  std::string type_name;
  bool deterministic = false;
  /// Sound: cons(T) >= lower (always >= 1 for total types).
  int lower = 1;
  /// When upper_finite, sound: cons(T) <= upper (the static rules only ever
  /// prove upper == 1; upper_finite == false means "no static upper bound").
  bool upper_finite = false;
  int upper = 0;
  /// Every claim backing the bounds, each independently checkable.
  std::vector<PowerClaim> claims;
  std::string note;

  /// "cons in [L, U]" / "cons >= L" one-liner plus the rules that fired.
  std::string summary() const;
};

/// Classifies one type.  Requires a total spec (throws std::invalid_argument
/// otherwise); nondeterministic types get the solo bound only.
ConsensusPowerResult classify_consensus_power(const TypeSpec& t);

// ---- independent certificate checking --------------------------------------

struct CertCheckResult {
  bool ok = false;
  std::string detail;  ///< first discrepancy, empty when ok
};

/// Re-validates one claim against the raw delta table.  Shares no code with
/// classify_consensus_power: everything is re-derived from TypeSpec::delta.
/// FamilyCert claims are checked by check_family_result instead (they are
/// claims about a set of types); passing one here fails with a note.
CertCheckResult check_certificate(const TypeSpec& t, const PowerClaim& claim);

// ---- the family rule (register augmentation) -------------------------------

struct FamilyPowerResult {
  /// Sound: a protocol over objects drawn from the family (plus registers)
  /// solving n-consensus exists for n = lower ...
  int lower = 1;
  /// ... and cannot exist for n > upper when upper_finite.
  bool upper_finite = false;
  int upper = 0;
  /// Per-member classification, in input order.
  std::vector<ConsensusPowerResult> members;
  /// The kRegisterAugmentation claim (present iff upper_finite: every
  /// member was individually certified cons <= 1).
  std::optional<PowerClaim> augmentation;
  std::string note;
};

/// Classifies a family of types used together.  The family lower bound is
/// the max over members (cons already allows registers alongside any single
/// member); the family upper bound is 1 exactly when EVERY member carries
/// its own cons <= 1 certificate, by the mixed critical-state argument
/// (trivial members are deleted first, commute-or-overwrite members sustain
/// the bivalence argument).
FamilyPowerResult classify_family(std::span<const TypeSpec> members);

/// Re-validates a family result: every member claim via check_certificate,
/// plus the absorption bookkeeping (bounds really are the max / the
/// all-members-certified conjunction the augmentation claim states).
CertCheckResult check_family_result(std::span<const TypeSpec> members,
                                    const FamilyPowerResult& result);

/// True when every (port, invocation) of `t` is a pure read (never changes
/// state) or a pure write (constant target state and constant response,
/// independent of the pre-state).  Register-shaped types always satisfy the
/// commute-or-overwrite rule; surfaced separately because the paper's main
/// theorem is about exactly these.
bool is_register_shaped(const TypeSpec& t);

// ---- daemon / verifier fast-path -------------------------------------------

/// A hook for VerifyOptions::static_consensus: decides a consensus job
/// without exploration when theory already settles it.  Returns a negative
/// decision (solves = false, wait_free = true) when
///
///   * the implementation's interface has >= 2 ports,
///   * every flattened base object's port wiring is process-exclusive (no
///     two interface ports reach the same port of the same base object),
///   * every flattened base type is deterministic and individually
///     certified cons <= 1 -- with every emitted certificate re-validated
///     by check_certificate before it is trusted,
///   * wfregs-lint reports no errors and every static per-object access
///     bound is finite, and every program in the tree is statically
///     inspectable and loop-free (so all executions terminate: the verdict
///     may honestly claim wait-freedom and completeness);
///
/// and nullopt otherwise (the caller falls back to full exploration).
/// Positive decisions are never produced statically: a lower bound proves
/// some protocol exists, not that THIS implementation is correct.
std::function<std::optional<StaticConsensusDecision>(const Implementation&)>
static_consensus_decider();

}  // namespace wfregs::analysis
