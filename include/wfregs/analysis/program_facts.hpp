// Per-program static analysis: abstract interpretation of one bytecode
// program over ValueSets, plus path counting on the pruned control-flow
// graph.
//
// This is the workhorse under every wfregs-lint pass:
//   * which invoke sites are reachable, and with which invocation ids
//     (port-discipline pass, Section 4.1);
//   * the maximum number of accesses to an environment slot along any
//     static path, with loops mapping to an infinite bound (one-use
//     discipline of Section 3 and the static access bounds of Section 4.2);
//   * the set of values a program can return and can store back into its
//     persistent registers (the inter-program fixpoints in lint.cpp).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "wfregs/analysis/bound.hpp"
#include "wfregs/analysis/value_set.hpp"
#include "wfregs/runtime/program.hpp"

namespace wfregs::analysis {

/// Models the response of invoking `invs` (an over-approximated invocation
/// set) on environment slot `slot` from the program under analysis.
/// Returning bottom means the access cannot produce a response (no such
/// program / invalid invocation): the abstract execution stops there.
using ResponseOracle =
    std::function<ValueSet(int slot, const ValueSet& invs)>;

struct ProgramFacts {
  /// False when the program has no static_code(); every other field is then
  /// empty and the callers must treat the program conservatively.
  bool inspectable = false;
  std::string name;
  std::vector<StaticInstr> code;
  /// Per-pc: reachable under the abstract semantics.
  std::vector<bool> reachable;
  /// Per-pc pruned successor lists (branches whose condition is statically
  /// decided keep only the surviving edge).
  std::vector<std::vector<int>> succ;
  /// Per-pc: possible invocation ids at a reachable kInvoke (bottom
  /// elsewhere).
  std::vector<ValueSet> invoke_invs;
  /// Join of the return expression over all reachable kRet sites.
  ValueSet return_values;
  /// Join of registers 0..persistent_slots-1 at all reachable kRet sites
  /// (what the engine stores back into the per-port persistent state).
  std::vector<ValueSet> persistent_out;

  /// Max over static paths of the sum of `weight(pc)` over the kInvoke
  /// sites visited; a site with nonzero weight on a cycle yields infinity.
  /// This is the composition workhorse: the weight of an invoke on a nested
  /// implementation is the (recursively computed) bound of the inner
  /// program, so path counting telescopes through the object tree.
  Bound max_weight(const std::function<Bound(int pc)>& weight) const;
  /// Max over static paths of the number of reachable kInvoke sites
  /// matching `counted`; infinite when such a site lies on a cycle.
  Bound max_count(const std::function<bool(int pc)>& counted) const;
  /// Convenience: count reachable invokes on `slot`.
  Bound slot_count(int slot) const;
  /// A concrete static path (pc sequence, from entry) witnessing at least
  /// `want` visits of matching sites, when one exists.
  std::optional<std::vector<int>> witness_path(
      const std::function<bool(int pc)>& counted, std::size_t want) const;
  /// Human-readable rendering of one instruction (for diagnostics).
  std::string describe_pc(int pc) const;
};

/// Analyzes one program.  `persistent_in[i]` seeds register i at entry for
/// i < persistent_in.size(); all other registers start at {0} (the engine
/// zero-initializes frames).  `oracle` models invocation responses.
ProgramFacts analyze_program(const ProgramCode& prog,
                             const std::vector<ValueSet>& persistent_in,
                             const ResponseOracle& oracle);

}  // namespace wfregs::analysis
