// Weighted longest-path queries over small directed graphs, shared by the
// abstract (per-pc CFG) and exact (per concrete program state) analyses.
//
// Both layers reduce "how often can this access happen along one execution
// of the program?" to the same question: the maximum, over all walks from a
// root, of the sum of node weights -- where any positively-weighted node
// inside a cycle makes the answer infinite.  Computed by Tarjan SCC
// condensation plus longest-path dynamic programming on the condensation
// DAG.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "wfregs/analysis/bound.hpp"

namespace wfregs::analysis {

/// Maximum over all walks starting at any of `roots` of the sum of
/// `weight(node)` over visited nodes; Bound::inf() when a node with
/// nonzero weight lies on a reachable cycle.  Nodes not reachable from a
/// root are ignored.  Edges must stay within [0, succ.size()).
Bound longest_weighted_path(const std::vector<std::vector<int>>& succ,
                            const std::vector<int>& roots,
                            const std::function<Bound(int)>& weight);

/// A concrete walk from some root visiting nodes satisfying `site` at least
/// `want` times, used to attach counterexample paths to diagnostics.  Best
/// effort: when greedy stitching dead-ends the partial walk (with fewer
/// sites) is still returned; nullopt only when no site is reachable at all.
std::optional<std::vector<int>> weighted_witness(
    const std::vector<std::vector<int>>& succ, const std::vector<int>& roots,
    const std::function<bool(int)>& site, std::size_t want);

}  // namespace wfregs::analysis
