// Abstract value domain for the static discipline checker (wfregs-lint).
//
// The linter re-executes program bytecode over sets of possible register
// values instead of concrete ones.  Precision matters: the Section 4.1
// register constructions compute invocation ids arithmetically (e.g. the
// MRSW writer's `1 + seq * values + v`), and the port-discipline pass must
// prove such an expression can never equal the read invocation (id 0).
// A plain constant-propagation lattice loses that; a pure interval domain
// cannot prune equality branches.  ValueSet therefore degrades gracefully:
//
//   explicit set  --(> kMaxPrecise elements)-->  interval  --(widening)--> top
//
// All arithmetic saturates through __int128 so the abstract semantics never
// trips signed overflow, even on adversarial fixtures.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wfregs/typesys/type_spec.hpp"

namespace wfregs::analysis {

/// A sound over-approximation of the set of Vals a register can hold.
class ValueSet {
 public:
  /// Largest explicit set kept before degrading to an interval.
  static constexpr std::size_t kMaxPrecise = 64;

  /// The empty set (unreachable / no value).
  ValueSet() = default;

  static ValueSet bottom() { return ValueSet(); }
  static ValueSet singleton(Val v);
  /// All integers in [lo, hi]; lo > hi yields bottom.
  static ValueSet range(Val lo, Val hi);
  static ValueSet top();
  /// The set of the given values (deduplicated; degrades past kMaxPrecise).
  static ValueSet of(std::vector<Val> vals);

  bool is_bottom() const { return rep_ == Rep::kBottom; }
  bool is_top() const {
    return rep_ == Rep::kRange && !has_lo_ && !has_hi_;
  }
  /// True when the set is an explicit finite enumeration.
  bool is_precise() const { return rep_ == Rep::kSet; }
  /// The elements of a precise set, sorted; throws otherwise.
  const std::vector<Val>& values() const;

  bool contains(Val v) const;
  bool has_lower_bound() const { return rep_ != Rep::kRange || has_lo_; }
  bool has_upper_bound() const { return rep_ != Rep::kRange || has_hi_; }
  /// Tightest known bounds; only valid when the matching has_*_bound().
  Val lower_bound() const;
  Val upper_bound() const;

  /// Enumerates the members within [lo, hi] (intended for invocation ids,
  /// where the valid universe is small).  Works for any representation.
  std::vector<Val> enumerate_within(Val lo, Val hi) const;

  /// The full membership list when the set is exactly enumerable with at
  /// most `cap` elements (an explicit set, or a fully bounded range that
  /// small); nullopt otherwise.  The exact-enumeration analysis uses this
  /// to decide whether a program's inputs can be run concretely.
  std::optional<std::vector<Val>> enumerate(std::size_t cap) const;

  friend bool operator==(const ValueSet&, const ValueSet&) = default;

  static ValueSet join(const ValueSet& a, const ValueSet& b);
  /// Join with widening: any bound of `next` that moved past `prev` is
  /// pushed to infinity, guaranteeing fixpoint termination.
  static ValueSet widen(const ValueSet& prev, const ValueSet& next);

  // Abstract transfer functions mirroring Expr evaluation.  Division and
  // modulo silently drop zero divisors (the concrete semantics throws, so
  // those executions never produce a value).
  static ValueSet add(const ValueSet& a, const ValueSet& b);
  static ValueSet sub(const ValueSet& a, const ValueSet& b);
  static ValueSet mul(const ValueSet& a, const ValueSet& b);
  static ValueSet div(const ValueSet& a, const ValueSet& b);
  static ValueSet mod(const ValueSet& a, const ValueSet& b);
  static ValueSet cmp_eq(const ValueSet& a, const ValueSet& b);
  static ValueSet cmp_ne(const ValueSet& a, const ValueSet& b);
  static ValueSet cmp_lt(const ValueSet& a, const ValueSet& b);
  static ValueSet cmp_le(const ValueSet& a, const ValueSet& b);
  static ValueSet logic_and(const ValueSet& a, const ValueSet& b);
  static ValueSet logic_or(const ValueSet& a, const ValueSet& b);
  static ValueSet logic_not(const ValueSet& a);

  /// The subset that is <= / >= / == / != the given constant (used for
  /// branch refinement on conditions like `reg <= lit(k)`).
  ValueSet clamp_le(Val k) const;
  ValueSet clamp_ge(Val k) const;
  ValueSet clamp_eq(Val k) const;
  ValueSet clamp_ne(Val k) const;

  std::string to_string() const;

 private:
  enum class Rep { kBottom, kSet, kRange };

  static ValueSet make_range(bool has_lo, Val lo, bool has_hi, Val hi);
  /// Interval view of any non-bottom set (for range arithmetic).
  void bounds(bool& has_lo, Val& lo, bool& has_hi, Val& hi) const;
  /// {0,1} truth-set helpers for comparisons.
  static ValueSet bools(bool can_false, bool can_true);

  Rep rep_ = Rep::kBottom;
  std::vector<Val> vals_;  // kSet: sorted, unique, size <= kMaxPrecise
  bool has_lo_ = false, has_hi_ = false;
  Val lo_ = 0, hi_ = 0;  // kRange (meaningful per has_*)
};

}  // namespace wfregs::analysis
