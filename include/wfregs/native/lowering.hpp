// Lowering compiled type tables onto native atomics.
//
// A base object's state is held in one cache-line-padded std::atomic<
// uint64_t>; every access must apply exactly one legal transition of the
// compiled delta table atomically.  Per (port, invocation) the table is
// classified once, at NativeRuntime construction:
//
//   * kLoad  -- every state maps to itself (next == q) by a single
//     transition: the access is one atomic load plus a response lookup.
//     All reads of register-like types lower this way.
//   * kStore -- every state maps to the SAME successor with the SAME
//     response: the access is one atomic store.  Register writes lower
//     this way.
//   * kRmw   -- anything else: a compare-exchange loop that re-reads the
//     state, picks a legal transition (seeded rng when the cell is
//     nondeterministic), and publishes its successor.  A successful CAS
//     observes q and installs next in one atomic step, so the access
//     linearizes there regardless of contention.
//
// In every case the recorded history contains only legal atomic steps of
// the spec, so a native history that fails the linearizability oracle
// indicts the CONSTRUCTION (or the model), never the lowering.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "wfregs/typesys/compiled_type.hpp"

namespace wfregs::native {

enum class AccessKind { kLoad, kStore, kRmw };

/// One (port, invocation) cell's execution plan.
struct AccessPlan {
  AccessKind kind = AccessKind::kRmw;
  /// kLoad: response per state.
  std::vector<Val> load_resp;
  /// kStore: the state-independent successor and response.
  StateId store_next = 0;
  Val store_resp = 0;
};

/// The padded cell holding one base object's state.  64-byte alignment
/// keeps concurrently-accessed objects off each other's cache lines.
struct alignas(64) PaddedState {
  std::atomic<std::uint64_t> value{0};
};

/// Immutable per-type lowering; shared by every object of the same spec.
class ObjectLowering {
 public:
  explicit ObjectLowering(std::shared_ptr<const CompiledType> compiled);

  const CompiledType& compiled() const { return *compiled_; }

  const AccessPlan& plan(PortId port, InvId inv) const {
    return plans_[static_cast<std::size_t>(port) *
                      static_cast<std::size_t>(compiled_->num_invocations()) +
                  static_cast<std::size_t>(inv)];
  }

  /// Performs one access on `cell`, returning the response.  `rng` resolves
  /// nondeterministic cells (any choice is a legal transition).  Throws
  /// std::logic_error when the reached state has no transition for the
  /// invocation (partial cell), mirroring Engine::commit.
  Val access(PaddedState& cell, PortId port, InvId inv,
             std::mt19937_64& rng) const;

 private:
  std::shared_ptr<const CompiledType> compiled_;
  std::vector<AccessPlan> plans_;  // [port * num_invocations + inv]
};

}  // namespace wfregs::native
