// Built-in native stress targets: the paper's constructions (and one
// deliberately broken control) packaged as conformance workloads.
//
//   chain          Section 4.1 full register chain (MRMW from MRSW from
//                  SRSW), one thread per port, mixed reads/writes.
//   oneuse-array   Section 4.3 bounded SRSW bit from one-use bits; reader
//                  thread + writer thread; linearizability AND regularity.
//   simpson        Simpson's four-slot SRSW register; linearizability AND
//                  regularity.
//   snapshot       Afek et al. single-writer snapshot from MRSW registers;
//                  updates racing scans.
//   shift-register Aspnes 2025 consensus from one w-bit shift register,
//                  w = thread count; one propose per thread per round.
//   torn-register  CONTROL, deliberately buggy: a 4-valued register from
//                  two bits written one at a time with no protocol.  A read
//                  between the two half-writes observes a torn value; the
//                  oracle must catch it, and --replay must reproduce it.
#pragma once

#include <string>
#include <vector>

#include "wfregs/native/conformance.hpp"

namespace wfregs::native {

/// All registry names, torn-register last.
const std::vector<std::string>& workload_names();

/// Builds the named workload for `threads` threads performing
/// `ops_per_thread` interface ops per round (bounded-use constructions are
/// sized to exactly that budget).  Throws std::invalid_argument for an
/// unknown name or an unsupported thread count (simpson and oneuse-array
/// are inherently 2-threaded; the rest take 2..4).
Workload make_workload(const std::string& name, int threads,
                       int ops_per_thread);

}  // namespace wfregs::native
