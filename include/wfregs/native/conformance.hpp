// The conformance driver: run a workload natively, round after round, and
// feed every recorded history to the model oracles.
//
// A round = one NativeRuntime::run from fresh object state.  Each round has
// its own seed derived from (base seed, round index); a deterministic
// round is a pure function of that seed, which is what --replay consumes.
// The driver stops at the first failing history and reports the seed and
// every parameter needed to reproduce the run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "wfregs/native/runtime.hpp"

namespace wfregs::native {

/// A native stress target: an implementation plus the invocation mix to
/// drive it with and the oracles its histories must satisfy.  Histories are
/// always checked for linearizability against impl->iface(); single-writer
/// register workloads additionally run the regularity oracle, and consensus
/// workloads additionally check agreement + validity of the decisions.
struct Workload {
  std::string name;
  std::string summary;
  std::shared_ptr<const Implementation> impl;
  InvPicker pick;
  /// Additionally run check_history_regular (single-writer registers only;
  /// atomicity implies regularity, so a conforming history passes both).
  bool check_regular = false;
  int regular_values = 0;
  /// Consensus workload: every process decides the same proposed value.
  bool consensus = false;
  /// When nonzero, overrides ConformanceOptions::ops_per_thread (consensus
  /// objects are single-use: exactly one propose per process per round).
  int force_ops_per_thread = 0;
};

struct ConformanceOptions {
  int rounds = 50;
  int ops_per_thread = 4;
  std::uint64_t seed = 1;
  /// Token-stepped rounds: reproducible, fully serialized.  Free-running
  /// rounds race for real but cannot be replayed exactly.
  bool deterministic = false;
  int yield_period = 3;
};

struct ConformanceFailure {
  /// The failing ROUND's derived seed: pass to --replay / replay_round.
  std::uint64_t seed = 0;
  int round = -1;
  std::string detail;   ///< oracle verdict
  std::string history;  ///< the recorded history, rendered
};

struct ConformanceReport {
  std::string workload;
  int threads = 0;
  int ops_per_thread = 0;
  bool deterministic = false;
  std::size_t rounds = 0;
  std::size_t ops = 0;
  std::size_t base_accesses = 0;
  std::size_t histories_checked = 0;
  std::optional<ConformanceFailure> failure;

  bool ok() const { return !failure.has_value(); }
};

/// Runs opts.rounds rounds of `w`, checking every history; stops at the
/// first failure.  Throws only on workload/runtime misuse (thread errors
/// surface here), never on an oracle violation.
ConformanceReport run_conformance(const Workload& w,
                                  const ConformanceOptions& opts);

/// Runs exactly ONE deterministic round with `seed` as the round seed (the
/// --replay path): same seed, same schedule, same history, bit for bit.
ConformanceReport replay_round(const Workload& w,
                               const ConformanceOptions& opts,
                               std::uint64_t seed);

/// The seed of round `round` under base seed `base`: exposed so failure
/// reports and replays agree on the derivation.
std::uint64_t round_seed(std::uint64_t base, int round);

/// Human-readable failure report: seed, thread/iteration parameters, the
/// exact --replay command line, oracle detail, and the history.
std::string describe_failure(const ConformanceReport& report);

}  // namespace wfregs::native
