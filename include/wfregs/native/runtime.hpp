// NativeRuntime: execute an Implementation on real std::threads.
//
// The same Implementation the model checker explores is flattened (via
// System, so the wiring rules are identical) onto cache-line-padded
// std::atomic base objects; one thread per interface port runs the
// implementation's own bytecode programs, performing base accesses through
// the per-type lowering (lowering.hpp) and recording every interface-level
// operation in a fixed-capacity per-thread log.  After the threads join,
// the logs merge into the same History type the model checker consumes, so
// the recorded run can be fed to the public single-history oracles
// (wfregs/runtime/history_check.hpp).
//
// Two execution modes:
//
//   * free-running (deterministic = false): threads race for real, with
//     seeded std::this_thread::yield injection before accesses to shake
//     out interleavings.  This is the tsan stress mode; schedules are NOT
//     reproducible.
//   * token-stepped (deterministic = true): every observable event (the
//     invocation timestamp, each base access, the response timestamp)
//     requires a token granted under a mutex; the grant order is drawn
//     from a seeded rng only when every live thread is parked, so the
//     entire schedule -- and therefore the recorded history -- is a pure
//     function of the seed.  This is the replay mode behind --replay.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <random>

#include "wfregs/native/lowering.hpp"
#include "wfregs/runtime/history.hpp"
#include "wfregs/runtime/implementation.hpp"
#include "wfregs/runtime/system.hpp"

namespace wfregs::native {

struct NativeOptions {
  int ops_per_thread = 4;
  std::uint64_t seed = 1;
  /// Token-stepped schedule: fully serialized, reproducible from the seed.
  bool deterministic = false;
  /// Free-running mode: yield before roughly 1 in `yield_period` events.
  int yield_period = 3;
};

/// Chooses the k-th interface invocation thread `port` performs.  Called
/// outside any lock with a per-thread seeded rng, so deterministic runs
/// stay deterministic.
using InvPicker = std::function<InvId(PortId port, int k, std::mt19937_64&)>;

struct NativeRun {
  /// Merged interface-level history; the implemented object has id
  /// NativeRuntime::iface_object().  Process p == interface port p.
  History history;
  std::size_t base_accesses = 0;
};

class NativeRuntime {
 public:
  /// Flattens `impl`.  Throws std::invalid_argument when two interface
  /// ports reach the same (inner object, port) pair -- such wiring would
  /// make two threads share a port, which the concurrent-object model
  /// (one client per port) and the persistent-variable memory layout both
  /// forbid.
  explicit NativeRuntime(std::shared_ptr<const Implementation> impl);

  /// One thread per interface port.
  int threads() const { return threads_; }
  const Implementation& impl() const { return *impl_; }
  /// Object id the recorded ops carry (the implemented object).
  ObjectId iface_object() const { return iface_object_; }

  /// Executes one round from fresh object state: threads() real threads,
  /// thread p performing opts.ops_per_thread invocations chosen by `pick`
  /// on interface port p.  Rethrows the first failure thrown inside a
  /// thread (program fail(), lowering errors) after joining all threads.
  NativeRun run(const InvPicker& pick, const NativeOptions& opts) const;

 private:
  std::shared_ptr<const Implementation> impl_;
  std::shared_ptr<const System> sys_;
  ObjectId iface_object_ = -1;
  int threads_ = 0;
  /// Per object id: the lowering for base objects, null for virtual ones.
  std::vector<std::shared_ptr<const ObjectLowering>> lowerings_;
};

}  // namespace wfregs::native
