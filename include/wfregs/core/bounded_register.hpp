// Section 4.3: implementing a bounded-use single-reader single-writer bit
// from one-use bits.
//
// A bit b initialized to v, read at most r_b times and written at most w_b
// times, is implemented from an array of r_b * (w_b + 1) one-use bits
//
//     bits[1 .. w_b + 1, 1 .. r_b]
//
// (the last row is never written; the paper keeps it "to simplify the
// presentation of the read routine", and so do we).  Each row corresponds to
// a write and each column to a read:
//
//     write:  flip every bit in row i_w, then i_w := i_w + 1
//     read:   scan column j_r downwards for the first unflipped bit; its row
//             index reveals how many writes happened; then j_r := j_r + 1
//             and return (v + (i_r - 1)) mod 2
//
// i_r, j_r (reader) and i_w (writer) are per-port persistent local
// variables, exactly the "local integer variables" of the paper.  Because
// the writer is the only writer, the paper assumes b "is only written when
// its value is being changed"; we realize that assumption by having the
// writer track the current value and turn same-value writes into no-ops.
//
// Use discipline guaranteed by construction (and asserted with fail
// instructions): no one-use bit is ever read twice or written twice, and no
// read ever happens in the DEAD state -- which is why the nondeterminism of
// T_1u "will play no role" (Section 3).
#pragma once

#include <functional>
#include <memory>

#include "wfregs/runtime/implementation.hpp"

namespace wfregs::core {

/// Provides one-use bits: each call returns a FRESH implementation of
/// zoo::one_use_bit_type() (port 0 = reader, port 1 = writer), e.g. one
/// produced by the Section 5 constructions.  Empty means "use base one-use
/// bit objects".
using OneUseFactory = std::function<std::shared_ptr<const Implementation>()>;

/// Builds the Section 4.3 array implementation of an SRSW bit (interface
/// zoo::srsw_bit_type(), port 0 = reader, port 1 = writer) that tolerates at
/// most `max_reads` reads and `max_writes` value-changing writes, from
/// max_reads * (max_writes + 1) one-use bits.  Exceeding a bound aborts the
/// run loudly (the Section 4.2 analysis guarantees sized-right bounds for
/// wait-free consensus implementations).
std::shared_ptr<const Implementation> bounded_bit_from_oneuse(
    int max_reads, int max_writes, int initial_value,
    const OneUseFactory& factory = {});

/// Number of one-use bits the construction consumes: r_b * (w_b + 1).
int oneuse_bits_needed(int max_reads, int max_writes);

}  // namespace wfregs::core
