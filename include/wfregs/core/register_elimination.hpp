// Theorem 5: the register-elimination transform.
//
// Given a wait-free implementation of n-process consensus that uses
// read/write registers plus objects of other types, produce an
// implementation that uses NO registers, by composing the paper's pipeline:
//
//   stage 1 (Section 4.1): replace every register with its implementation
//           from single-reader single-writer atomic bits (the classical
//           chain, built in wfregs/registers/);
//   stage 2 (Section 4.2): explore all 2^n execution trees of the resulting
//           implementation to obtain the depth D and per-bit access bounds
//           r_b, w_b (finite because the implementation is wait-free);
//   stage 3 (Section 4.3): replace each SRSW bit with its array of
//           r_b * (w_b + 1) one-use bits;
//   stage 4 (Section 5):   replace each one-use bit with an implementation
//           from the caller's chosen substrate -- one object of any
//           non-trivial deterministic type (Sections 5.1/5.2) or a
//           2-consensus implementation (Section 5.3).
//
// The result demonstrates h_m(T) = h_m^r(T) constructively: model-check it
// with consensus::check_consensus.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "wfregs/core/access_bounds.hpp"
#include "wfregs/core/bounded_register.hpp"
#include "wfregs/registers/chain.hpp"
#include "wfregs/runtime/implementation.hpp"

namespace wfregs::core {

/// Structural classification of register TypeSpecs (names are ignored; the
/// transition tables are compared against the zoo builders).
struct RegisterShape {
  enum class Kind { kMrmw, kMrsw, kSrsw };
  Kind kind = Kind::kMrmw;
  int values = 0;
  int readers = 0;  ///< meaningful for kMrsw
  int ports = 0;
};

/// Recognizes zoo::register_type / mrsw_register_type / srsw_register_type
/// tables; nullopt for anything else.
std::optional<RegisterShape> classify_register(const TypeSpec& spec);

/// Recognizes the srsw BIT (the Section 4.3 target) and the one-use bit.
bool is_srsw_bit_spec(const TypeSpec& spec);
bool is_one_use_bit_spec(const TypeSpec& spec);

struct EliminationOptions {
  /// Stage 4 substrate.  Empty leaves base one-use-bit objects in place
  /// (useful for inspecting the intermediate result).
  OneUseFactory oneuse_factory;
  /// Limits for the stage 2 exploration.
  ExploreLimits bounds_limits;
  /// Use the paper's uniform bound r_b = w_b = D for every bit instead of
  /// the measured per-bit bound (faithful but much larger arrays).
  bool uniform_paper_bound = false;
  /// Stage 1 chain parameters.
  registers::ChainOptions chain;
};

struct EliminationReport {
  bool ok = false;
  std::string detail;  ///< why the transform failed, when !ok
  /// The register-free implementation (stage 4 output).
  std::shared_ptr<const Implementation> result;
  /// The stage 1 output (registers replaced by bit constructions).
  std::shared_ptr<const Implementation> bits_stage;
  /// Stage 2 measurements on bits_stage.
  AccessBounds bounds;
  int registers_replaced = 0;
  int bits_replaced = 0;
  long oneuse_bits_created = 0;
  std::map<std::string, int> census_before;
  std::map<std::string, int> census_after;
};

/// Runs the full pipeline on `impl` (an implementation of T_{c,n}).
EliminationReport eliminate_registers(
    std::shared_ptr<const Implementation> impl,
    const EliminationOptions& options);

}  // namespace wfregs::core
