// Section 5.3: implementing a one-use bit from 2-process consensus.
//
// The reader proposes 0 ("read precedes write"), the writer proposes 1
// ("write precedes read"), and the consensus value decides how the two
// operations linearize.  This works for ANY type T with h_m(T) >= 2 -- even
// nondeterministic T -- by letting the consensus object itself be
// implemented from objects of T.
//
// (The same reader always receives the same response to every read; as the
// paper notes, that is permitted by the nondeterministic specification of
// one-use bits.)
#pragma once

#include <memory>

#include "wfregs/runtime/implementation.hpp"

namespace wfregs::core {

/// One-use bit from a NESTED implementation of 2-process consensus (e.g.
/// one built from objects of a type with h_m >= 2).  `cons2` must implement
/// zoo::consensus_type(2).
std::shared_ptr<const Implementation> oneuse_from_consensus(
    std::shared_ptr<const Implementation> cons2);

/// One-use bit from a single base T_{c,2} object (the degenerate case,
/// mostly useful in tests and benches).
std::shared_ptr<const Implementation> oneuse_from_consensus_object();

}  // namespace wfregs::core
