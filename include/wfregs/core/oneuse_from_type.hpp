// Sections 5.1 and 5.2: implementing one-use bits from a single object of
// (almost) any deterministic type.
//
// Section 5.1 (oblivious types): a non-trivial oblivious deterministic type
// has states q, p with p = delta(q, i').next and an invocation i whose
// response differs between q and p.  Initialize an object to q; a write
// performs i', a read performs i and reports 0 iff it saw q's response.
// Intuitively "q corresponds to UNSET, p to SET, and any other state to
// DEAD".
//
// Section 5.2 (general deterministic types): the minimal non-trivial pair
// (H1, H2) of Lemmas 2-4 yields a reader port, a writer port, a single
// writer invocation i_w and a reader invocation sequence i-bar whose last
// response distinguishes "written" from "unwritten".  The reader may observe
// a response that matches NEITHER history when the write lands mid-sequence;
// per the paper, "this still indicates that the writer has written, so 1 can
// be returned".
//
// Both constructions are synthesized automatically from the TypeSpec by the
// witness searches in wfregs/typesys/triviality.hpp.
#pragma once

#include <memory>

#include "wfregs/runtime/implementation.hpp"
#include "wfregs/typesys/triviality.hpp"

namespace wfregs::core {

/// Section 5.1.  Returns nullptr when `type` is trivial (no witness).
/// Requires `type` deterministic and oblivious (throws otherwise).  The
/// result implements zoo::one_use_bit_type() from ONE object of `type`
/// (port 0 = reader, port 1 = writer); the inner object uses the type's
/// ports `reader_port`/`writer_port` (both default to ports 0/1 of an
/// oblivious type, where ports are interchangeable).
std::shared_ptr<const Implementation> oneuse_from_oblivious(
    const TypeSpec& type);

/// Section 5.2.  Returns nullptr when `type` is trivial in the general
/// sense.  Requires `type` deterministic (throws otherwise).
std::shared_ptr<const Implementation> oneuse_from_deterministic(
    const TypeSpec& type);

/// The construction underlying oneuse_from_deterministic, exposed for
/// callers that already hold a witness (e.g. benches sweeping random types).
std::shared_ptr<const Implementation> oneuse_from_pair(
    const TypeSpec& type, const NonTrivialPair& pair);

}  // namespace wfregs::core
