// Section 4.2: access bounds in wait-free consensus implementations.
//
// The paper argues via Koenig's lemma that the execution trees of a
// wait-free consensus implementation (one tree per vector of initial
// proposals, 2^n trees in all) are finite; letting D be the maximum depth,
// every implementing object is accessed at most D times in any execution,
// so the bit bounds r_b = w_b = D always exist.
//
// This module computes those numbers exactly by exhaustive exploration: D
// (the paper's uniform bound) and, as a refinement the paper's coarse bound
// subsumes, a per-object bound (the maximum number of accesses to THAT
// object over all executions), which keeps the Section 4.3 arrays small.
// Non-wait-free inputs are detected as configuration cycles -- the
// contrapositive of the paper's Koenig argument.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "wfregs/runtime/explorer.hpp"
#include "wfregs/runtime/implementation.hpp"

namespace wfregs::core {

struct ObjectBound {
  /// Declaration path of the base object under the consensus
  /// implementation (see System::Placement).
  std::vector<int> path;
  std::string type_name;
  /// Maximum accesses over all executions from all 2^n roots.
  std::size_t max_accesses = 0;
  /// Per-invocation maxima (indexed by InvId); each may be attained on a
  /// different execution, so their sum can exceed max_accesses.
  std::vector<std::size_t> max_by_inv;
  /// r_b / w_b for an SRSW register/bit (invocation 0 = read, the rest are
  /// writes): computed per execution tree and then maximized, so a proposer
  /// that writes value 0 under one input vector and value 1 under another
  /// still counts as one write.
  std::size_t read_bound = 0;
  std::size_t write_bound = 0;
};

struct AccessBounds {
  bool wait_free = true;  ///< no configuration cycle in any tree
  bool complete = true;   ///< exploration finished within limits
  bool solves = true;     ///< agreement+validity held at every terminal
  std::string detail;
  /// The paper's D: maximum depth over the 2^n execution trees.
  int depth = 0;
  std::size_t configs = 0;
  std::vector<ObjectBound> per_object;  ///< base objects, flatten order

  /// Bound for the base object at `path`; throws when absent.
  const ObjectBound& at(std::span<const int> path) const;
};

/// Explores all 2^n trees of `impl` (an implementation of T_{c,n}) and
/// returns the Section 4.2 bounds.
AccessBounds compute_access_bounds(std::shared_ptr<const Implementation> impl,
                                   ExploreLimits limits = {});

}  // namespace wfregs::core
