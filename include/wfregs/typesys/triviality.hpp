// Triviality deciders and non-triviality witness searches for Section 5 of
// Bazzi, Neiger & Peterson (PODC 1994).
//
// Section 5.1 defines triviality for *oblivious* deterministic types: T is
// trivial when, for every state q and invocation i, every state reachable
// from q gives the same response to i as q does.  A non-trivial oblivious
// type admits a witness (q, i', p, i) with p reachable from q in ONE step
// (via i') and with differing responses to i -- exactly the object the
// paper's one-use-bit construction needs.
//
// Section 5.2 generalizes to non-oblivious types: T is trivial when, from
// every start state, the response sequence seen on any port is independent
// of activity on other ports.  The paper's Lemmas 2-4 show that a *minimal*
// non-trivial pair of histories (H1, H2) has a rigid shape:
//
//     H1 = the invocation sequence i-bar on the reader port;
//     H2 = one invocation i_w on a writer port, then i-bar on the reader
//          port;
//
// with the two runs of i-bar agreeing on every response except the last.
// For finite deterministic types this makes non-triviality decidable: search
// over (start state, reader port, writer port, i_w) for a pair of states
// that are distinguishable by reader-port-only invocation sequences (a Mealy
// machine equivalence check), and extract the shortest distinguishing
// sequence.  Lemmas 2-4 guarantee the search is complete: a non-trivial pair
// exists if and only if a witness of this shape exists.
#pragma once

#include <optional>
#include <vector>

#include "wfregs/typesys/type_spec.hpp"

namespace wfregs {

// ---- Section 5.1: oblivious deterministic types -----------------------------

/// The Section 5.1 witness: delta(q, i') = <p, .>, and i distinguishes q
/// from p by response (r_q != r_p).  Initializing an object to q yields a
/// one-use bit: write = invoke i', read = invoke i and compare with r_q.
struct ObliviousWitness {
  StateId q = 0;       ///< UNSET state
  InvId i_prime = 0;   ///< the write invocation i'
  StateId p = 0;       ///< SET state, delta(q, i').next
  InvId i = 0;         ///< the read invocation
  RespId r_q = 0;      ///< response to i in state q ("bit is 0")
  RespId r_p = 0;      ///< response to i in state p ("bit is 1")
};

/// True when the oblivious deterministic type `t` is trivial *from q*: every
/// invocation's response is constant over all states reachable from q.
/// Requires t deterministic and oblivious (throws std::invalid_argument).
bool is_trivial_oblivious_from(const TypeSpec& t, StateId q);

/// Section 5.1 triviality: trivial from every state.
bool is_trivial_oblivious(const TypeSpec& t);

/// Finds a Section 5.1 witness, or nullopt when the type is trivial.  The
/// paper remarks that q and p "can be chosen such that p is reachable from q
/// in one step"; the search scans one-step edges directly, which also proves
/// that remark constructively.  Requires t deterministic and oblivious.
std::optional<ObliviousWitness> find_oblivious_witness(const TypeSpec& t);

// ---- Section 5.2: general deterministic types --------------------------------

/// A minimal non-trivial pair in the Lemma 4 shape.
struct NonTrivialPair {
  StateId q = 0;              ///< start state of both histories
  PortId reader_port = 0;     ///< the paper's "port 1"
  PortId writer_port = 0;     ///< the paper's "port 2"
  InvId write_inv = 0;        ///< i_w, H2's single writer-port invocation
  std::vector<InvId> read_seq;  ///< i-bar, the reader-port invocations
  RespId unwritten_resp = 0;  ///< H1's return value (last response)
  RespId written_resp = 0;    ///< H2's return value (last response)
};

/// Section 5.2 triviality for deterministic (not necessarily oblivious)
/// types.  Requires t deterministic (throws std::invalid_argument) and at
/// least 2 ports (a 1-port type is vacuously trivial in this sense).
bool is_trivial_general(const TypeSpec& t);

/// Finds a minimal non-trivial pair (shortest read sequence over all
/// (q, reader, writer, i_w) choices; ties broken by smallest ids), or
/// nullopt when the type is trivial.  Requires t deterministic.
std::optional<NonTrivialPair> find_nontrivial_pair(const TypeSpec& t);

// ---- Mealy-machine equivalence helper ---------------------------------------

/// Partitions states of the deterministic type `t` by *port-j trace
/// equivalence*: q1 ~ q2 iff every invocation sequence issued on port j
/// yields identical response sequences from q1 and q2.  Returns a vector
/// mapping StateId -> class id (0-based, dense).
std::vector<int> port_trace_classes(const TypeSpec& t, PortId j);

/// The shortest invocation sequence on port j whose response differs when
/// run from q1 versus q2 (difference at the last position only), or nullopt
/// when q1 ~ q2.  Requires t deterministic.
std::optional<std::vector<InvId>> shortest_distinguishing_sequence(
    const TypeSpec& t, PortId j, StateId q1, StateId q2);

}  // namespace wfregs
