// Text serialization for TypeSpecs, so types can be defined in files and
// fed to the command-line tool (examples/wfregs_cli.cpp) or exchanged
// between runs.
//
// Format (line-oriented; '#' starts a comment; blank lines ignored):
//
//     type turnstile
//     ports 2
//     states 3 pos0 pos1 pos2          # count, then optional names
//     invocations 1 click
//     responses 3 r0 r1 r2
//     delta pos0 * click -> pos1 r1    # '*' = every port (oblivious cell)
//     delta pos1 * click -> pos2 r2
//     delta pos2 0 click -> pos0 r0    # or a specific port number
//     delta pos2 1 click -> pos0 r0
//
// States/invocations/responses may be referred to by name or by index.
// Repeating a delta line for the same (state, port, invocation) adds a
// nondeterministic alternative.  parse_type accepts exactly what
// print_type emits (round-trip stable).
// Whole-job serialization (the service layer's content-addressed keys and
// the fuzzer's repro files) extends the same line-oriented format to
// implementations and verification options:
//
//     impl srsw_from_safe
//     iface_initial 0
//     persistent 2 0 0                 # persistent slot count, then values
//     iface                            # the implemented TypeSpec, nested
//       type register
//       ...
//     end iface
//     object base 0 map 0 1            # base: initial state + port map
//       type safe_bit
//       ...
//     end object
//     object nested map 0 -1           # -1 = kNoPort; body is a nested impl
//       impl inner
//       ...
//     end object
//     program read * reader            # invocation, port ('*' = all), name
//       assign 1 (+ (r 0) (c 1))      # bytecode, exprs as s-expressions
//       invoke 0 0 (c 3)              # result reg, slot, invocation expr
//       branch 5 (== (r 0) (c 1))     # pc target, condition
//       jump 2
//       ret (r 1)
//       fail
//     end program
//     end impl
//
// Programs are serialized from their static disassembly (ProgramCode::
// static_code()); hand-written ProgramCode subclasses without one cannot be
// serialized and raise std::runtime_error.  kFail messages are not part of
// the disassembly and round-trip as a generic message.
//
// VerifyOptions serialize in *normalized* form: a fixed field order with
// every field explicit, so equal option sets always produce byte-identical
// text (the service layer hashes this text into job keys).  The thread
// count and the static_precheck hook are deliberately NOT serialized: the
// explorers' determinism contract makes verdicts and stats thread-count-
// invariant, and the hook is reduced to an on/off bit (`precheck`) that the
// consumer maps back to analysis::static_precheck().
//
// print_implementation / print_verify_options and their parsers are defined
// in the wfregs_runtime library (the types live there); typesys-only
// consumers can keep linking just wfregs_typesys for the TypeSpec entry
// points.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "wfregs/typesys/type_spec.hpp"

namespace wfregs {

class Implementation;  // runtime/implementation.hpp
struct VerifyOptions;  // runtime/explorer.hpp

/// Renders `t` in the text format above (always with explicit per-port
/// delta lines collapsed to '*' where the cell is port-independent).
std::string print_type(const TypeSpec& t);

/// Parses the text format.  Throws std::runtime_error with a line number on
/// malformed input; the result is validated (total).
TypeSpec parse_type(const std::string& text);

/// Convenience file wrappers.
TypeSpec load_type(const std::string& path);
void save_type(const TypeSpec& t, const std::string& path);

// ---- whole-job serialization (defined in wfregs_runtime) -------------------

/// Renders `impl` in the `impl ... end impl` format above.  Throws
/// std::runtime_error when a program is not statically inspectable.
/// parse_implementation accepts exactly what print_implementation emits
/// (round-trip stable).
std::string print_implementation(const Implementation& impl);

/// Parses the `impl` format; throws std::runtime_error with a line number
/// on malformed input.
std::shared_ptr<const Implementation> parse_implementation(
    const std::string& text);

/// Renders `options` in normalized form (fixed field order, every field
/// explicit; see the header comment for what is deliberately dropped).
std::string print_verify_options(const VerifyOptions& options);

/// Additionally reports whether the options asked for the standard static
/// precheck; the caller re-attaches analysis::static_precheck() (the
/// runtime layer cannot name the analysis library).
std::string print_verify_options(const VerifyOptions& options, bool precheck);

/// Parses the normalized options format.  `precheck_out`, when non-null,
/// receives the `precheck` bit (the returned options carry no hook).
VerifyOptions parse_verify_options(const std::string& text,
                                   bool* precheck_out = nullptr);

}  // namespace wfregs
