// Text serialization for TypeSpecs, so types can be defined in files and
// fed to the command-line tool (examples/wfregs_cli.cpp) or exchanged
// between runs.
//
// Format (line-oriented; '#' starts a comment; blank lines ignored):
//
//     type turnstile
//     ports 2
//     states 3 pos0 pos1 pos2          # count, then optional names
//     invocations 1 click
//     responses 3 r0 r1 r2
//     delta pos0 * click -> pos1 r1    # '*' = every port (oblivious cell)
//     delta pos1 * click -> pos2 r2
//     delta pos2 0 click -> pos0 r0    # or a specific port number
//     delta pos2 1 click -> pos0 r0
//
// States/invocations/responses may be referred to by name or by index.
// Repeating a delta line for the same (state, port, invocation) adds a
// nondeterministic alternative.  parse_type accepts exactly what
// print_type emits (round-trip stable).
#pragma once

#include <iosfwd>
#include <string>

#include "wfregs/typesys/type_spec.hpp"

namespace wfregs {

/// Renders `t` in the text format above (always with explicit per-port
/// delta lines collapsed to '*' where the cell is port-independent).
std::string print_type(const TypeSpec& t);

/// Parses the text format.  Throws std::runtime_error with a line number on
/// malformed input; the result is validated (total).
TypeSpec parse_type(const std::string& text);

/// Convenience file wrappers.
TypeSpec load_type(const std::string& path);
void save_type(const TypeSpec& t, const std::string& path);

}  // namespace wfregs
