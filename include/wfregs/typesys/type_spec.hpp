// Type specifications: the 5-tuple <n, Q, I, R, delta> of Section 2.1 of
// Bazzi, Neiger & Peterson, "On the Use of Registers in Achieving Wait-Free
// Consensus" (PODC 1994).
//
// A TypeSpec describes a concurrent data type as an explicit finite table:
// states, invocations, responses are small integer ids, and delta maps
// (state, port, invocation) to a *set* of (state, response) pairs.  A
// deterministic type has exactly one transition per cell; a nondeterministic
// type may have several.  An oblivious type has a delta that does not depend
// on the port (Section 2.1).
//
// Everything downstream -- the triviality deciders of Section 5, the one-use
// bit syntheses, the linearizability checker, and the hierarchy harness --
// consumes this representation.
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace wfregs {

class CompiledType;  // compiled_type.hpp

/// Runtime value exchanged between programs and objects (large enough to
/// carry any encoded response or local quantity).
using Val = std::int64_t;

/// Index of a state in Q.
using StateId = std::int32_t;
/// Index of an invocation in I.
using InvId = std::int32_t;
/// Index of a response in R.
using RespId = std::int32_t;
/// Port number (0-based internally; the paper's ports are 1-based).
using PortId = std::int32_t;

/// One entry of delta(q, p, i): the successor state and the response.
struct Transition {
  StateId next = 0;
  RespId resp = 0;
  friend auto operator<=>(const Transition&, const Transition&) = default;
};

/// An explicit-table concurrent data type specification.
///
/// Invariants maintained by the builder interface:
///   * all ids passed to add() are range-checked;
///   * transition sets are kept sorted and duplicate-free.
///
/// A spec is *total* when every (state, port, invocation) cell is non-empty.
/// Most algorithms in this library require totality; call is_total() (or
/// validate()) after building.
class TypeSpec {
 public:
  /// Creates an empty spec with the given dimensions.  All four counts must
  /// be positive; throws std::invalid_argument otherwise.
  TypeSpec(std::string name, int ports, int num_states, int num_invocations,
           int num_responses);

  // ---- builders ----------------------------------------------------------

  /// Adds (q2, r) to delta(q, p, i).  Duplicates are ignored.
  void add(StateId q, PortId p, InvId i, StateId q2, RespId r);

  /// Adds (q2, r) to delta(q, p, i) for every port p.  This is the natural
  /// builder for oblivious types.
  void add_oblivious(StateId q, InvId i, StateId q2, RespId r);

  /// Attaches a symbolic name used by diagnostics and to_string().
  void name_state(StateId q, std::string name);
  void name_invocation(InvId i, std::string name);
  void name_response(RespId r, std::string name);

  // ---- dimensions --------------------------------------------------------

  const std::string& name() const { return name_; }
  int ports() const { return ports_; }
  int num_states() const { return num_states_; }
  int num_invocations() const { return num_invocations_; }
  int num_responses() const { return num_responses_; }

  // ---- delta -------------------------------------------------------------

  /// The (sorted, duplicate-free) transition set delta(q, p, i).
  std::span<const Transition> delta(StateId q, PortId p, InvId i) const;

  /// delta(q, p, i) for a deterministic type.  Throws std::logic_error when
  /// the cell does not contain exactly one transition.
  Transition delta_det(StateId q, PortId p, InvId i) const;

  /// Flattens this spec into the execution-core representation: one
  /// contiguous transition array with an offset index, precomputed
  /// structural flags and the pairwise commutation matrix (see
  /// compiled_type.hpp).  The result is self-contained and immutable.
  CompiledType compile() const;

  // ---- structural predicates (Section 2.1) -------------------------------

  /// Every cell has at least one transition.
  bool is_total() const;
  /// Every cell has exactly one transition.
  bool is_deterministic() const;
  /// delta(q, p1, i) == delta(q, p2, i) for all ports p1, p2.
  bool is_oblivious() const;

  /// Throws std::logic_error with a descriptive message if the spec is not
  /// total.  Call once after building.
  void validate() const;

  // ---- reachability ------------------------------------------------------

  /// All states reachable from q via any (port, invocation, choice),
  /// including q itself.  Sorted ascending.
  std::vector<StateId> reachable_from(StateId q) const;

  /// True when `to` appears in some sequential history from `from`
  /// (equivalently, to == from or to is reachable via transitions).
  bool reachable(StateId from, StateId to) const;

  // ---- diagnostics -------------------------------------------------------

  std::string state_name(StateId q) const;
  std::string invocation_name(InvId i) const;
  std::string response_name(RespId r) const;

  /// Full human-readable table dump.
  std::string to_string() const;

  friend bool operator==(const TypeSpec& a, const TypeSpec& b) {
    return a.ports_ == b.ports_ && a.num_states_ == b.num_states_ &&
           a.num_invocations_ == b.num_invocations_ &&
           a.num_responses_ == b.num_responses_ && a.table_ == b.table_;
  }

 private:
  std::size_t cell(StateId q, PortId p, InvId i) const;
  void check_state(StateId q) const;
  void check_port(PortId p) const;
  void check_invocation(InvId i) const;
  void check_response(RespId r) const;

  std::string name_;
  int ports_ = 0;
  int num_states_ = 0;
  int num_invocations_ = 0;
  int num_responses_ = 0;
  std::vector<std::vector<Transition>> table_;
  std::vector<std::string> state_names_;
  std::vector<std::string> invocation_names_;
  std::vector<std::string> response_names_;
};

}  // namespace wfregs
