// Small structural operations on TypeSpecs.
#pragma once

#include "wfregs/typesys/type_spec.hpp"

namespace wfregs {

/// Restricts `t` to its part reachable from `initial`, renumbering states
/// densely (state 0 of the result is `initial`).  Useful before running the
/// Section 5 searches when only one initialization matters.
TypeSpec reachable_part(const TypeSpec& t, StateId initial);

/// Widens (or narrows) the port count.  When widening, new ports copy the
/// behaviour of port `clone_from`; narrowing requires the dropped ports to
/// be unused by the caller.  Preserves obliviousness when `t` is oblivious.
TypeSpec with_ports(const TypeSpec& t, int ports, PortId clone_from = 0);

}  // namespace wfregs
