// Compiled form of a TypeSpec: the execution-core representation.
//
// TypeSpec stores delta as one heap-allocated vector per (state, port,
// invocation) cell -- ideal for incremental building, hostile to the
// explorer's hot loop, which performs one delta lookup per examined edge.
// CompiledType flattens the whole table into a single contiguous Transition
// array addressed through a dense offset index, so a lookup is two array
// reads with no pointer chasing, and precomputes the structural facts the
// runtime layers ask for repeatedly:
//
//   * totality / determinism / obliviousness flags (Section 2.1 predicates),
//     evaluated once instead of per query;
//   * the pairwise commutation matrix -- "(port a, invocation i1) commutes
//     with (port b, invocation i2) in EVERY state" -- which the reduction
//     layer's IndependenceTable consumes directly instead of re-deriving
//     outcome sets from delta on every table build.
//
// A CompiledType is immutable and self-contained (it does not reference the
// TypeSpec it was compiled from), so System can share one instance across
// every object using the same spec and across any number of explorer
// threads.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "wfregs/typesys/type_spec.hpp"

namespace wfregs {

class CompiledType {
 public:
  /// Flattens `spec`.  Equivalent to spec.compile().
  explicit CompiledType(const TypeSpec& spec);

  // ---- dimensions --------------------------------------------------------

  const std::string& name() const { return name_; }
  int ports() const { return ports_; }
  int num_states() const { return num_states_; }
  int num_invocations() const { return num_invocations_; }
  int num_responses() const { return num_responses_; }

  // ---- delta -------------------------------------------------------------

  /// The transition set delta(q, p, i), bounds-checked exactly like
  /// TypeSpec::delta (one combined comparison; throws std::out_of_range).
  std::span<const Transition> delta(StateId q, PortId p, InvId i) const {
    check(q, p, i);
    return delta_unchecked(q, p, i);
  }

  /// Hot-path lookup: two array reads, no checks.  The caller must
  /// guarantee 0 <= q < num_states(), 0 <= p < ports(),
  /// 0 <= i < num_invocations() (the engine does: states come from
  /// transitions, ports from system wiring, invocations are validated when
  /// the access becomes pending).
  std::span<const Transition> delta_unchecked(StateId q, PortId p,
                                              InvId i) const noexcept {
    const std::size_t c = cell(q, p, i);
    return {transitions_.data() + offsets_[c],
            static_cast<std::size_t>(offsets_[c + 1] - offsets_[c])};
  }

  /// Size of the delta set (0 for a partial cell).
  int width(StateId q, PortId p, InvId i) const {
    check(q, p, i);
    const std::size_t c = cell(q, p, i);
    return static_cast<int>(offsets_[c + 1] - offsets_[c]);
  }

  /// delta(q, p, i) for a deterministic cell; throws std::logic_error when
  /// the cell does not contain exactly one transition (mirrors
  /// TypeSpec::delta_det).
  Transition delta_det(StateId q, PortId p, InvId i) const;

  // ---- precomputed structural predicates ---------------------------------

  bool is_total() const { return total_; }
  bool is_deterministic() const { return deterministic_; }
  bool is_oblivious() const { return oblivious_; }

  // ---- precomputed pairwise commutation ----------------------------------

  /// True when the accesses (port a, invocation i1) and (port b, invocation
  /// i2) commute in EVERY state: executing them in either order yields the
  /// same set of (final state, response to i1, response to i2) outcomes.
  /// This is exactly the conjunction over states of
  /// accesses_commute_at(spec, q, a, i1, b, i2) from the reduction layer,
  /// precomputed at compile() time so IndependenceTable::build is a copy.
  bool commutes_everywhere(PortId a, InvId i1, PortId b, InvId i2) const {
    const std::size_t invs = static_cast<std::size_t>(num_invocations_);
    const std::size_t idx =
        ((static_cast<std::size_t>(a) * invs + static_cast<std::size_t>(i1)) *
             static_cast<std::size_t>(ports_) +
         static_cast<std::size_t>(b)) *
            invs +
        static_cast<std::size_t>(i2);
    return commute_[idx] != 0;
  }

  /// The raw commutation matrix, laid out [(a*I + i1)*P*I + b*I + i2] --
  /// the same layout IndependenceTable uses per object.
  std::span<const char> commutation_matrix() const { return commute_; }

 private:
  std::size_t cell(StateId q, PortId p, InvId i) const noexcept {
    // Same layout as TypeSpec::cell: (q * P + p) * I + i.
    return (static_cast<std::size_t>(q) * static_cast<std::size_t>(ports_) +
            static_cast<std::size_t>(p)) *
               static_cast<std::size_t>(num_invocations_) +
           static_cast<std::size_t>(i);
  }
  void check(StateId q, PortId p, InvId i) const;

  std::string name_;
  int ports_ = 0;
  int num_states_ = 0;
  int num_invocations_ = 0;
  int num_responses_ = 0;
  bool total_ = false;
  bool deterministic_ = false;
  bool oblivious_ = false;
  /// All transition sets, concatenated in cell order.
  std::vector<Transition> transitions_;
  /// offsets_[c] .. offsets_[c+1]: the slice of transitions_ for cell c;
  /// one extra sentinel entry at the end.
  std::vector<std::uint32_t> offsets_;
  /// Pairwise "commutes in every state" bits (see commutes_everywhere).
  std::vector<char> commute_;
};

}  // namespace wfregs
