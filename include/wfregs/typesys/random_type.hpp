// Seeded random finite type generation, used by the property-based tests of
// the Section 5 deciders and by experiment E5 (witness-search scaling over
// random types).  All generation is deterministic in the seed.
#pragma once

#include <cstdint>

#include "wfregs/typesys/type_spec.hpp"

namespace wfregs {

/// Shape parameters for random type generation.
struct RandomTypeParams {
  int ports = 2;
  int num_states = 4;
  int num_invocations = 2;
  int num_responses = 2;
  /// When true, delta ignores the port (Section 2.1 obliviousness).
  bool oblivious = false;
  /// Expected number of transitions per cell; 1 yields deterministic types,
  /// larger values yield nondeterministic ones (each cell gets between 1 and
  /// 2*branching-1 choices, uniformly).
  int branching = 1;
};

/// Generates a random total type with the given shape.  Deterministic in
/// `seed`.  With branching == 1 the result is deterministic.
TypeSpec random_type(const RandomTypeParams& params, std::uint64_t seed);

}  // namespace wfregs
