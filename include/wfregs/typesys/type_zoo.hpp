// A zoo of concrete concurrent data types, each expressed as an explicit
// TypeSpec table.  The zoo covers:
//
//   * the paper's own types: the one-use bit (Section 3) and the n-process
//     binary consensus type T_{c,n} (Section 2.1);
//   * the standard type menagerie used throughout the wait-free hierarchy
//     literature (Herlihy 1991; Jayanti 1993): read/write registers,
//     test&set, fetch&add, compare&swap, sticky bits (Plotkin 1989), bounded
//     FIFO queues;
//   * deliberately degenerate types used to exercise the Section 5
//     triviality deciders: trivial types whose state changes but whose
//     responses do not, non-oblivious types, and a nondeterministic coin.
//
// Each builder returns a validated, total TypeSpec.  The companion *Layout
// structs give symbolic access to the integer encodings of invocations and
// responses so that programs and tests never hard-code raw ids.
#pragma once

#include "wfregs/typesys/type_spec.hpp"

namespace wfregs::zoo {

// ---- read/write register -------------------------------------------------

/// Encoding of the multi-value read/write register type.
struct RegisterLayout {
  int values = 0;

  InvId read() const { return 0; }
  InvId write(int v) const { return 1 + v; }
  RespId value_resp(int v) const { return v; }
  RespId ok() const { return values; }
  /// State id holding value v (states are the values themselves).
  StateId state_of(int v) const { return v; }
};

/// An atomic multi-reader multi-writer register over `values` values.
/// Consensus number 1 (FLP / Loui-Abu-Amara / Herlihy).
TypeSpec register_type(int values, int ports);
/// A one-bit register.
TypeSpec bit_type(int ports);

/// Encoding of the single-reader single-writer register: port 0 may only
/// read, port 1 may only write.  Misuse (writing on the read port or vice
/// versa) leaves the state unchanged and returns err() -- constructions
/// never do this, and the distinguished response makes violations visible
/// in tests rather than silently tolerated.
struct SrswRegisterLayout {
  int values = 0;

  static constexpr PortId reader_port() { return 0; }
  static constexpr PortId writer_port() { return 1; }
  InvId read() const { return 0; }
  InvId write(int v) const { return 1 + v; }
  RespId value_resp(int v) const { return v; }
  RespId ok() const { return values; }
  RespId err() const { return values + 1; }
  StateId state_of(int v) const { return v; }
};

/// A single-reader single-writer atomic register (Section 4.1's normal form
/// for the registers used in consensus implementations).
TypeSpec srsw_register_type(int values);
/// A single-reader single-writer atomic bit, the exact register kind that
/// Section 4.3 implements from one-use bits.
TypeSpec srsw_bit_type();

/// Encoding of the multi-reader single-writer register: ports 0..readers-1
/// may only read, port `readers` may only write; misuse returns err().
struct MrswRegisterLayout {
  int values = 0;
  int readers = 0;

  PortId reader_port(int i) const { return i; }
  PortId writer_port() const { return readers; }
  InvId read() const { return 0; }
  InvId write(int v) const { return 1 + v; }
  RespId value_resp(int v) const { return v; }
  RespId ok() const { return values; }
  RespId err() const { return values + 1; }
  StateId state_of(int v) const { return v; }
};

/// A multi-reader single-writer atomic register with `readers` read ports
/// and one write port (the intermediate rung of the Section 4.1 chain).
TypeSpec mrsw_register_type(int values, int readers);

enum class WeakBitKind {
  kSafe,     ///< a read overlapping a write returns ANY bit
  kRegular,  ///< a read overlapping a write returns the old or the new bit
};

/// Encoding of the non-atomic (safe / regular) SRSW bit.  Writes take two
/// explicit steps -- start_write(v) then finish_write -- so that reads can
/// genuinely overlap them; a read is one step whose response is
/// nondeterministic exactly while a write is in flight.  This is how the
/// simulator models the bottom of the classical register ladder the paper
/// cites in Section 4.1 (Lamport 1986; Burns & Peterson 1987).
struct WeakBitLayout {
  static constexpr PortId reader_port() { return 0; }
  static constexpr PortId writer_port() { return 1; }
  InvId read() const { return 0; }
  InvId start_write(int v) const { return 1 + v; }
  InvId finish_write() const { return 3; }
  RespId value_resp(int v) const { return v; }
  RespId ok() const { return 2; }
  RespId err() const { return 3; }
  StateId idle(int v) const { return v; }
  StateId writing(int old_v, int new_v) const {
    return 2 + old_v * 2 + new_v;
  }
};

/// A safe or regular single-reader single-writer bit (see WeakBitLayout).
/// Misuse (nested writes, finish without start, wrong port) returns err().
TypeSpec weak_bit_type(WeakBitKind kind);

// ---- the one-use bit (Section 3) ------------------------------------------

/// Encoding of T_1u.  State names match the paper: UNSET, SET, DEAD.
struct OneUseBitLayout {
  StateId unset() const { return 0; }
  StateId set() const { return 1; }
  StateId dead() const { return 2; }
  InvId read() const { return 0; }
  InvId write() const { return 1; }
  RespId zero() const { return 0; }
  RespId one() const { return 1; }
  RespId ok() const { return 2; }
};

/// The one-use bit T_1u exactly as specified in Section 3: a bit, initially
/// UNSET, that can be usefully read at most once and written at most once;
/// any read sends it to DEAD, where reads return nondeterministic values.
TypeSpec one_use_bit_type();

// ---- consensus (Section 2.1) ----------------------------------------------

struct ConsensusLayout {
  StateId bottom() const { return 0; }
  StateId decided(int v) const { return 1 + v; }
  InvId propose(int v) const { return v; }
  RespId decide_resp(int v) const { return v; }
};

/// The n-process binary consensus type T_{c,n}: the first proposal fixes all
/// responses.  `ports` is the paper's n.
TypeSpec consensus_type(int ports);

struct MultiConsensusLayout {
  int values = 0;
  StateId bottom() const { return 0; }
  StateId decided(int v) const { return 1 + v; }
  InvId propose(int v) const { return v; }
  RespId decide_resp(int v) const { return v; }
};

/// Multi-valued consensus over `values` values (the generalization Herlihy's
/// universal construction consumes); same first-proposal-wins semantics.
TypeSpec multi_consensus_type(int values, int ports);

// ---- classic read-modify-write types ---------------------------------------

struct TestAndSetLayout {
  InvId test_and_set() const { return 0; }
  RespId old_value(int v) const { return v; }
};

/// One-shot test&set bit: the invocation returns the old value and sets the
/// bit.  Consensus number 2 (Herlihy 1991).
TypeSpec test_and_set_type(int ports);

struct FetchAndAddLayout {
  int cap = 0;
  InvId fetch_and_add() const { return 0; }
  RespId old_value(int v) const { return v; }
};

/// Saturating fetch&add(1) over 0..cap (the saturation bound substitutes for
/// the unbounded counter; all uses in this library stay far below it).
/// Consensus number 2.
TypeSpec fetch_and_add_type(int cap, int ports);

struct CasLayout {
  int values = 0;
  InvId read() const { return 0; }
  InvId cas(int expected, int desired) const {
    return 1 + expected * values + desired;
  }
  RespId value_resp(int v) const { return v; }
  RespId success() const { return values; }
  RespId failure() const { return values + 1; }
};

/// Compare&swap register over `values` values with an auxiliary read.
/// Consensus number infinity (here: ports).
TypeSpec cas_type(int values, int ports);

struct CasOldLayout {
  int values = 0;
  InvId cas(int expected, int desired) const {
    return expected * values + desired;
  }
  RespId old_value(int v) const { return v; }
};

/// Compare&swap that returns the register's PREVIOUS value (the common
/// hardware semantics): the caller learns it succeeded iff the response
/// equals its expected value.  Solves n-process consensus in a single
/// invocation per process.
TypeSpec cas_old_type(int values, int ports);

struct StickyBitLayout {
  StateId bottom_state() const { return 0; }
  StateId stuck(int v) const { return 1 + v; }
  InvId jam(int v) const { return v; }
  InvId read() const { return 2; }
  RespId value_resp(int v) const { return v; }
  RespId bottom() const { return 2; }
};

/// Plotkin's sticky bit: jam(v) sticks the first value and returns whatever
/// value is stuck; read reports the current value (or bottom).  Consensus
/// number infinity (here: ports).
TypeSpec sticky_bit_type(int ports);

// ---- bounded FIFO queue -----------------------------------------------------

struct QueueLayout {
  int capacity = 0;
  int values = 0;

  InvId enqueue(int v) const { return v; }
  InvId dequeue() const { return values; }
  RespId front_value(int v) const { return v; }
  RespId ok() const { return values; }
  RespId empty() const { return values + 1; }
  RespId full() const { return values + 2; }

  /// Total number of queue states: all sequences of length <= capacity.
  int num_states() const;
  /// State id of a concrete queue content (front of the queue first).
  StateId state_of(std::span<const int> content) const;
};

/// A bounded FIFO queue over `values` values with at most `capacity`
/// elements.  Consensus number 2 (Herlihy 1991, via a pre-loaded queue).
TypeSpec queue_type(int capacity, int values, int ports);

struct StackLayout {
  int capacity = 0;
  int values = 0;

  InvId push(int v) const { return v; }
  InvId pop() const { return values; }
  RespId top_value(int v) const { return v; }
  RespId ok() const { return values; }
  RespId empty() const { return values + 1; }
  RespId full() const { return values + 2; }

  int num_states() const;
  /// State id of concrete stack content (bottom of the stack first).
  StateId state_of(std::span<const int> content) const;
};

/// A bounded LIFO stack over `values` values.  Consensus number 2.
TypeSpec stack_type(int capacity, int values, int ports);

struct SnapshotLayout {
  int components = 0;  ///< one per port (single-writer snapshot)
  int values = 0;

  InvId update(int v) const { return v; }
  InvId scan() const { return values; }
  /// View id of a component vector: sum of view[i] * values^i.
  RespId view_resp(std::span<const int> view) const;
  RespId ok() const { return power(); }
  StateId state_of(std::span<const int> view) const {
    return view_resp(view);
  }
  /// values^components (number of distinct views).
  int power() const;
  /// Component i of a view id.
  int component(RespId view, int i) const;
};

/// A single-writer atomic snapshot object: port p's update(v) sets component
/// p; scan() returns the id of the full component vector.  Consensus number
/// 1 (Afek, Attiya, Dolev, Gafni, Merritt & Shavit 1993) -- the classic
/// "stronger-looking register abstraction that still cannot do consensus".
TypeSpec snapshot_type(int values, int ports);

// ---- degenerate and adversarial types ---------------------------------------

/// A trivial type (Section 5.1 definition) whose state nevertheless changes:
/// `ping` toggles between two states but always responds `ok`.  Exercises
/// the subtlety that triviality is about responses, not state.
TypeSpec trivial_toggle_type(int ports);

/// The ultimate trivial type: one state, one invocation, one response.
TypeSpec trivial_sink_type(int ports);

/// A nondeterministic single-state coin: `flip` returns 0 or 1 arbitrarily.
/// Deterministic-only deciders must reject it.
TypeSpec nondet_coin_type(int ports);

struct PortFlagLayout {
  InvId touch() const { return 0; }
  RespId zero() const { return 0; }
  RespId one() const { return 1; }
  RespId ok() const { return 2; }
};

/// A *non-oblivious* deterministic type for the Section 5.2 general case:
/// `touch` on port 1 raises a flag (responding ok); `touch` on port 0 reports
/// whether the flag is raised.  Ports >= 2 respond ok and change nothing.
TypeSpec port_flag_type(int ports);

/// A modulo-m counter whose `inc` returns the new value.  Deterministic,
/// oblivious, non-trivial.
TypeSpec mod_counter_type(int modulus, int ports);

// ---- shift register (Aspnes 2025) -----------------------------------------

/// Encoding of the w-bit shift register: the state is the register contents
/// (an integer in [0, 2^w)), and shl(b) shifts bit b in at the bottom,
/// discarding the top bit and returning the OLD contents.
struct ShiftRegisterLayout {
  int width = 0;

  InvId shl(int b) const { return b; }
  RespId old_resp(int v) const { return v; }
  StateId state_of(int v) const { return v; }
  /// Number of distinct contents, 2^width.
  int capacity() const { return 1 << width; }
};

/// A w-bit shift register whose shl(b) returns the pre-shift contents.
/// Consensus number exactly w (Aspnes, "The Consensus Number of a Shift
/// Register", 2025): a single register initialized to 1 carries a marker
/// bit that survives w - 1 shifts, letting each of w processes recover the
/// first shifter's bit from its response (consensus::from_shift_register);
/// the (w+1)-st shifter sees the marker fall off the top.
TypeSpec shift_register_type(int width, int ports);

}  // namespace wfregs::zoo
