// The wait-free hierarchy harness: experimental evidence for Jayanti's four
// hierarchies h_1, h_1^r, h_m, h_m^r (Section 2.3) over concrete types.
//
// For a type T this module gathers:
//
//   * a RACE WITNESS (a state q and invocation i whose first and second
//     applications return different responses) -- the generic ingredient
//     that gives h_1^r(T) >= 2 via the publish/race/adopt protocol;
//   * a verified h_1^r >= 2 certificate: the race protocol (one object of T
//     plus two SRSW announce bits) model-checked over all schedules;
//   * a verified h_m >= 2 certificate: the SAME protocol pushed through the
//     Theorem 5 register-elimination transform, leaving objects of T only --
//     the paper's h_m = h_m^r equality made executable;
//   * bounded-synthesis evidence about h_1 (single object, NO registers),
//     where the depth-bounded search is exhaustive.
//
// The resulting table reproduces the paper's punchline: registers matter for
// the single-object hierarchies (test&set: h_1 = 1 < 2 = h_1^r) but never
// for the multi-object ones (h_m = h_m^r on deterministic types).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "wfregs/consensus/power.hpp"
#include "wfregs/runtime/implementation.hpp"
#include "wfregs/typesys/type_spec.hpp"

namespace wfregs::hierarchy {

/// A state q and invocation i such that, with process 0 on port 0 and
/// process 1 on port min(1, ports-1), EACH accessor of an object
/// initialized to q can tell from its own response whether it ran first or
/// second (for oblivious types: delta(q,i).resp != delta(q',i).resp where
/// q' = delta(q,i).next).  `first_resp` is port 0's first-place response;
/// the port-1 value is recomputed from the type where needed.
struct RaceWitness {
  StateId q = 0;
  InvId i = 0;
  RespId first_resp = 0;
};

/// Finds a race witness; nullopt when none exists (e.g. read/write
/// registers, trivial types).  Requires a deterministic type.
std::optional<RaceWitness> find_race_witness(const TypeSpec& type);

/// The publish/race/adopt 2-process consensus protocol from one object of
/// `type` plus two SRSW announce bits; nullptr when no race witness exists.
/// Oblivious use: processes take ports 0 and 1 of the object.
std::shared_ptr<const Implementation> race_consensus(const TypeSpec& type);

/// A stronger, register-FREE template: a state q, per-value invocations
/// i[0], i[1] and a decision table h(own-input, response) such that "invoke
/// i[v], decide h(v, response)" solves 2-process consensus with the single
/// object -- the shape that makes sticky bits, consensus objects and
/// old-value-returning cas solve consensus alone (h_1(T) >= 2).
struct AdoptWitness {
  StateId q = 0;
  InvId inv[2] = {0, 0};
  /// decide[v * num_responses + r] in {-1, 0, 1}; -1 = unconstrained.
  std::vector<int> decide;
};

/// Finds an adopt witness; nullopt when none exists.  Requires a
/// deterministic type.
std::optional<AdoptWitness> find_adopt_witness(const TypeSpec& type);

/// The register-free one-object protocol from an adopt witness; nullptr
/// when no witness exists.
std::shared_ptr<const Implementation> adopt_consensus(const TypeSpec& type);

/// Evidence gathered about one type.  "Verified" fields are backed by
/// exhaustive model checking; synthesis fields are exhaustive up to the
/// stated depth.
struct HierarchyRow {
  std::string type_name;
  bool deterministic = false;
  bool oblivious = false;
  /// General (Section 5.2) triviality; only computed for deterministic
  /// types.
  std::optional<bool> trivial;
  /// Bounded synthesis: can ONE object solve 2-consensus without registers
  /// at the probed depth?  (kUnsolvable here is evidence that h_1(T) = 1.)
  consensus::SynthesisVerdict h1_single_object =
      consensus::SynthesisVerdict::kUnknown;
  int h1_probe_depth = 0;
  /// Verified: race protocol (1 object + register bits) solves 2-consensus.
  bool h1r_at_least_2 = false;
  /// Verified: Theorem 5 transform of the race protocol solves 2-consensus
  /// using objects of T only.
  bool hm_at_least_2 = false;
  /// h_m == h_m^r as predicted by Theorem 5 for this type (both certified
  /// at level 2, or neither applicable).
  bool theorem5_consistent = true;
  std::string note;
};

struct ClassifyOptions {
  int h1_probe_depth = 2;
  std::size_t synthesis_node_cap = 2000000;
  /// Skip the (slow) bounded-synthesis probe.
  bool probe_h1 = true;
};

/// Gathers the evidence for one type.
HierarchyRow classify_type(const TypeSpec& type,
                           const ClassifyOptions& options = {});

/// Classifies the standard zoo (registers, test&set, fetch&add, queue, cas,
/// sticky bit, consensus, mod counter, trivial and nondeterministic
/// examples).
std::vector<HierarchyRow> survey_zoo(const ClassifyOptions& options = {});

/// Renders rows as an aligned text table.
std::string to_table(const std::vector<HierarchyRow>& rows);

}  // namespace wfregs::hierarchy
