// FrontierCheckpoint: crash-safe snapshots of an exploration's frontier and
// interner manifest, written through the record-log machinery
// (record_log.hpp -- the VerdictStore's CRC'd append-only format with
// torn-tail truncation on replay).
//
// A checkpoint directory holds two logs:
//
//   * arena.log    -- key batches: each record carries the configurations
//     interned since the previous checkpoint as (parent id, words) in id
//     order, so replaying the batches rebuilds the interner manifest (and
//     the delta codec re-compresses on the fly);
//   * frontier.log -- snapshot records: exploration counters, the DFS stack
//     (each frame's interned id, enumeration position and partial DP
//     state), and the per-node DP table, all bound to a fingerprint of the
//     root configuration + exploration shape.
//
// WRITE ORDER INVARIANT: the key batch is appended and fdatasync'd BEFORE
// the snapshot that references it.  A crash can therefore leave (a) a torn
// batch -- dropped by CRC replay, losing only the snapshot that was never
// written; or (b) a batch without its snapshot -- truncated away on open.
// Every surviving snapshot has its full key prefix on disk, and open()
// resumes from the newest one, truncating both logs to its boundary so the
// exploration continues as if the crash never happened.  Final snapshots
// (finished = true) compact the directory to a single record embedding the
// complete outcome, which lets re-runs and resubmissions short-circuit.
//
// The snapshot fingerprint covers the root key, reduction mode, access-
// bounds tracking and max_depth -- NOT max_configs or the cancel flag, so a
// run interrupted by a budget or deadline resumes under a new budget.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "wfregs/storage/record_log.hpp"

namespace wfregs::storage {

/// One suspended DFS frame: the node's interned id, where its child
/// enumeration stands (steps[step_idx], nondeterministic choice `choice`),
/// its post-canonicalization sleep mask, and the partial longest-path DP
/// accumulated from the children already explored.
struct FrameSnap {
  std::uint32_t id = 0;
  std::uint32_t step_idx = 0;
  std::int32_t choice = 0;
  std::uint64_t sleep = 0;
  std::int32_t depth_from = 0;
  std::vector<std::uint64_t> acc_from;
  std::vector<std::uint64_t> inv_from;
};

struct FrontierSnapshot {
  std::uint64_t fp_hi = 0;
  std::uint64_t fp_lo = 0;
  bool finished = false;
  bool wait_free = true;
  bool complete = true;
  bool has_violation = false;
  std::string violation;
  std::uint64_t configs = 0;
  std::uint64_t edges = 0;
  std::uint64_t terminals = 0;
  std::int32_t depth = 0;  ///< meaningful on finished snapshots only
  std::uint32_t interned = 0;
  /// DFS stack, root first.  Empty on finished snapshots.
  std::vector<FrameSnap> frames;
  /// Per-node DP (indexed by interned id; entries of on-path ids -- the
  /// frame ids -- are placeholders).  node_acc/node_inv are flattened
  /// interned x acc_len / interned x inv_len, empty when not tracking.
  std::vector<std::int32_t> node_depth_from;
  std::uint32_t acc_len = 0;
  std::uint32_t inv_len = 0;
  std::vector<std::uint64_t> node_acc;
  std::vector<std::uint64_t> node_inv;
  /// Finished-snapshot outcome extras.
  std::vector<std::uint64_t> max_accesses;
  std::vector<std::vector<std::uint64_t>> max_accesses_by_inv;
};

/// What `wfregs_cli checkpoint-info` prints.
struct CheckpointInfo {
  bool present = false;
  bool finished = false;
  std::uint64_t fp_hi = 0;
  std::uint64_t fp_lo = 0;
  std::uint64_t configs = 0;
  std::uint64_t edges = 0;
  std::uint64_t terminals = 0;
  std::uint32_t interned = 0;
  std::uint32_t frames = 0;
  std::uint32_t snapshots = 0;  ///< snapshot records on disk
  std::uint64_t frontier_bytes = 0;
  std::uint64_t arena_bytes = 0;
  std::uint64_t dropped_bytes = 0;  ///< torn-tail bytes across both logs
};

class FrontierCheckpoint {
 public:
  /// Creates `dir` when missing.  No file is touched until open().
  explicit FrontierCheckpoint(std::string dir);
  ~FrontierCheckpoint();

  /// Receives one interned key during resume, in id order.
  using KeyCallback = std::function<void(
      std::uint32_t id, std::uint32_t parent,
      std::span<const std::uint64_t> words)>;

  /// Provides key `id` during a checkpoint write: fill `parent` and `words`
  /// with the id's parent and decoded key.
  using KeySource = std::function<void(std::uint32_t id, std::uint32_t* parent,
                                       std::vector<std::uint64_t>* words)>;

  /// Opens (and heals) both logs.  When `resume` holds and the newest
  /// usable snapshot matches the fingerprint, feeds its interned keys
  /// through `key_cb` in id order, truncates both logs to that snapshot's
  /// boundary and returns it (finished snapshots return immediately with no
  /// keys fed -- the stored outcome stands on its own).  Otherwise both
  /// logs are reset empty and nullopt is returned.
  std::optional<FrontierSnapshot> open(std::uint64_t fp_hi,
                                       std::uint64_t fp_lo, bool resume,
                                       const KeyCallback& key_cb);

  /// Durably appends the keys [keys_on_disk, snap.interned) -- pulled from
  /// `src` -- as one batch, then the snapshot record (see the write-order
  /// invariant above).
  void write_snapshot(const FrontierSnapshot& snap, const KeySource& src);

  /// Compacts the directory to this finished snapshot alone.
  void write_final(const FrontierSnapshot& snap);

  /// Keys already durable in arena.log (resume sets this to the restored
  /// snapshot's interned count).
  std::uint32_t keys_on_disk() const { return keys_on_disk_; }

  const std::string& dir() const { return dir_; }

  /// Inspects a checkpoint directory without mutating it.
  static CheckpointInfo info(const std::string& dir);

 private:
  std::string dir_;
  std::unique_ptr<RecordLogWriter> frontier_;
  std::unique_ptr<RecordLogWriter> arena_;
  std::uint32_t keys_on_disk_ = 0;
};

}  // namespace wfregs::storage
