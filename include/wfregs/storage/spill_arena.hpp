// SpillArena: an append-only 64-bit-word arena whose storage lives in
// fixed-size mmap'd segments that can be evicted to disk under a memory
// budget.
//
// The explorers' interners address keys by (arena handle, word count); a
// handle is a stable 64-bit word index that never moves -- segments are
// mapped once and stay mapped for the arena's lifetime, so a resident
// lookup is pointer arithmetic.  What the budget controls is RESIDENCY:
// when the bytes of resident segments exceed the budget, the
// least-recently-touched segment that is neither the current append target
// nor the one being read is evicted with madvise(MADV_DONTNEED).  Segments
// are file-backed (MAP_SHARED on a per-segment file in `dir`), so eviction
// drops the process's page frames -- RSS falls -- while the kernel keeps
// the data reachable through the page cache / backing file; the next view()
// of an evicted segment faults the pages back in transparently and
// re-charges the budget.  The files are scratch, not a persistence format:
// checkpoint durability is the FrontierCheckpoint's log, never the spill
// files (which a crash may leave with unwritten dirty pages).
//
// With no directory and no budget the arena degrades to plain anonymous
// mmap segments -- same addressing, no files, no eviction.
//
// Not thread-safe: one arena per (sequential) exploration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace wfregs::storage {

/// Aggregated residency accounting across every live SpillArena in the
/// process, maintained with relaxed atomics so the bench layer
/// (benchjson::memory_counters) can report arena bytes alongside
/// peak_rss_bytes without plumbing arena pointers through the benches.
struct ArenaGlobalStats {
  std::uint64_t total_bytes = 0;     ///< all segment bytes ever mapped (live)
  std::uint64_t resident_bytes = 0;  ///< currently resident segment bytes
  std::uint64_t spilled_bytes = 0;   ///< currently evicted segment bytes
  std::uint64_t max_resident_bytes = 0;  ///< process-lifetime high water
  std::uint64_t evictions = 0;           ///< process-lifetime eviction count
};
ArenaGlobalStats arena_global_stats() noexcept;

class SpillArena {
 public:
  struct Options {
    /// Residency budget in bytes; 0 = unbounded (no eviction).  Budgets
    /// below two segments are rounded up to two segments (append target +
    /// read target must both stay resident).
    std::size_t budget_bytes = 0;
    /// Segment size; rounded up to a multiple of the page size.
    std::size_t segment_bytes = std::size_t{1} << 20;
    /// Backing-file directory (created if missing).  Empty = anonymous
    /// memory, eviction disabled regardless of budget.
    std::string dir;
  };

  explicit SpillArena(Options options);
  ~SpillArena();
  SpillArena(const SpillArena&) = delete;
  SpillArena& operator=(const SpillArena&) = delete;

  /// Appends `words`, returning its stable handle (a word index).  A run
  /// never spans segments: when the current segment's remainder is too
  /// small the remainder is abandoned and a fresh segment starts.  `words`
  /// must fit one segment.
  std::uint64_t append(std::span<const std::uint64_t> words);

  /// The `nwords` words at `handle`.  The span is valid until the next
  /// append()/view() call (either may trigger eviction of its segment).
  std::span<const std::uint64_t> view(std::uint64_t handle,
                                      std::size_t nwords);

  struct Stats {
    std::uint64_t total_bytes = 0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t spilled_bytes = 0;
    std::uint64_t evictions = 0;
    std::uint64_t refaults = 0;  ///< views that brought a segment back
    std::uint64_t segments = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Words appended (capacity accounting is per segment; this is payload).
  std::uint64_t words_appended() const { return words_appended_; }

  std::size_t segment_bytes() const { return segment_bytes_; }

 private:
  struct Segment {
    std::uint64_t* base = nullptr;
    bool resident = true;
    std::uint64_t last_touch = 0;
  };

  void new_segment();
  void touch(std::size_t seg);
  void enforce_budget(std::size_t protect);

  std::size_t budget_bytes_ = 0;
  std::size_t segment_bytes_ = 0;
  std::size_t words_per_segment_ = 0;
  std::string dir_;
  bool owns_dir_ = false;     ///< we created dir_ (a temp dir): remove it
  bool file_backed_ = false;  ///< eviction available
  std::vector<Segment> segments_;
  std::size_t tail_used_ = 0;  ///< words used in the last segment
  std::uint64_t tick_ = 0;
  std::uint64_t words_appended_ = 0;
  Stats stats_;
};

}  // namespace wfregs::storage
