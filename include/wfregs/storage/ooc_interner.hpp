// OocInterner: ConfigInterner's find/intern contract (dense u32 ids in
// insertion order, open-addressing probe table, cached full hashes) with the
// key words held by a DeltaCodec over a SpillArena instead of an in-RAM
// arena.  What stays in RAM per id is 8 bytes of cached hash + 24 bytes of
// codec metadata + the probe slot; the variable-length words are delta-
// compressed and budget-evictable.
//
// A probe hit compares hashes first (rejecting almost every collision
// without touching the arena) and only then decodes the candidate key for
// the word-exact comparison -- the spill cost is paid on true matches and
// 64-bit hash collisions only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "wfregs/storage/delta_codec.hpp"

namespace wfregs::storage {

class OocInterner {
 public:
  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  /// `arena` must outlive the interner.
  OocInterner(SpillArena* arena, std::size_t keyframe_interval);

  /// Id of `words` (whose hash is `hash`), or kNotFound.
  std::uint32_t find(std::span<const std::uint64_t> words,
                     std::uint64_t hash) const;

  /// Id of `words`, inserting when absent.  `parent` is the interned id of
  /// the DFS parent whose step produced this configuration (kNoParent for
  /// the root), `parent_words` its decoded key when the caller holds it.
  std::uint32_t intern(std::span<const std::uint64_t> words,
                       std::uint64_t hash, std::uint32_t parent,
                       std::span<const std::uint64_t> parent_words);

  std::size_t size() const { return hashes_.size(); }

  /// Decodes key `id` into `out` (cleared first).
  void decode_into(std::uint32_t id, std::vector<std::uint64_t>& out) const {
    codec_.decode_into(id, out);
  }
  std::uint32_t parent(std::uint32_t id) const { return codec_.parent(id); }

  const DeltaCodec& codec() const { return codec_; }

  /// RAM held by the probe table, hash cache and codec metadata (the arena
  /// payload is accounted by the SpillArena).
  std::size_t memory_bytes() const;

 private:
  void grow();

  DeltaCodec codec_;
  std::vector<std::uint64_t> hashes_;
  /// Open-addressing probe table of id+1 values (0 = empty slot);
  /// power-of-two size, linear probing.
  std::vector<std::uint32_t> slots_;
  std::size_t mask_ = 0;
  mutable std::vector<std::uint64_t> probe_scratch_;
};

}  // namespace wfregs::storage
