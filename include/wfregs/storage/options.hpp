// Out-of-core exploration options: the one knob block threaded from the CLI
// through VerifyOptions and ExploreOptions down to the storage-backed
// explorer (src/runtime/explorer_ooc.cpp).
//
// Storage options are EXECUTION parameters, not job identity: like
// VerifyOptions::threads, they are never serialized into a job's canonical
// text, so the same JobKey may run in-core today and under a 64 MiB budget
// tomorrow and hit the same verdict cache entry.  This is load-bearing for
// resume: resubmitting a job under different storage settings must find the
// same checkpoint directory.
#pragma once

#include <cstddef>
#include <string>

namespace wfregs::storage {

struct StorageOptions {
  /// Memory budget for interned configuration storage, in bytes.  0 = no
  /// budget (nothing is evicted).  When positive, the explorer keeps at most
  /// this many bytes of arena segments resident and evicts the
  /// least-recently-used segments to their disk backing with
  /// madvise(MADV_DONTNEED).  Budgets below two arena segments are treated
  /// as two segments (the currently-written segment plus one being read can
  /// never be evicted).
  std::size_t memory_budget_bytes = 0;

  /// Directory for the arena's backing files.  Empty with a budget set: a
  /// private directory under the system temp dir is created and removed
  /// with the exploration.  Empty without a budget: the arena stays
  /// anonymous (plain mmap, no files, eviction disabled).
  std::string spill_dir;

  /// Size of one mmap'd arena segment.  Eviction granularity and the unit
  /// of residency accounting; must be a multiple of the page size.
  std::size_t arena_segment_bytes = std::size_t{1} << 20;

  /// Delta-chain length bound: a full keyframe is stored at least every
  /// this many parent links, so decoding any config replays at most this
  /// many deltas.
  std::size_t keyframe_interval = 32;

  /// Directory for crash-safe frontier checkpoints.  Empty = checkpointing
  /// (and resume) disabled.
  std::string checkpoint_dir;

  /// Write a checkpoint every this many newly interned configurations.
  std::size_t checkpoint_every_configs = 65536;

  /// When true (the default) and checkpoint_dir holds a compatible
  /// checkpoint, the exploration resumes from it instead of starting fresh.
  /// Fingerprint mismatches (different root / reduction / tracking /
  /// max_depth) always start fresh.
  bool resume = true;

  /// Optional directory whose checkpoint state seeds checkpoint_dir before
  /// opening (frontier.log / arena.log are copied in, overwriting).  The
  /// run itself always checkpoints into checkpoint_dir; resume_from is a
  /// read-only source, useful for resuming from a snapshotted copy.
  std::string resume_from;

  /// True when any storage machinery is requested; the explorers dispatch
  /// to the out-of-core engine iff this holds.
  bool enabled() const {
    return memory_budget_bytes != 0 || !spill_dir.empty() ||
           !checkpoint_dir.empty();
  }
};

}  // namespace wfregs::storage
