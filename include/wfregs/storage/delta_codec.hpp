// DeltaCodec: parent-pointer delta encoding of configuration keys over a
// SpillArena.
//
// A DFS explorer interns configurations in discovery order, and each new
// configuration is one engine step away from the node on top of the stack:
// its key differs from its parent's in a handful of words (the stepped
// process's program position, one object's state word, a clock).  The codec
// exploits this: id n stores either
//
//   * a KEYFRAME -- the full word vector, or
//   * a DELTA    -- (index, value) pairs relative to its parent's key,
//
// choosing a keyframe whenever the parent chain would exceed the keyframe
// interval, the word counts differ, or the delta would not actually be
// smaller.  decode() walks at most keyframe_interval parent links, so
// random access stays O(interval * words).
//
// Per-id metadata (arena handle, parent, counts) is a fixed 24 bytes of RAM;
// the variable payload lives in the SpillArena and is subject to its memory
// budget.  Ids are dense and append-ordered, exactly like ConfigInterner's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "wfregs/storage/spill_arena.hpp"

namespace wfregs::storage {

class DeltaCodec {
 public:
  static constexpr std::uint32_t kNoParent = 0xffffffffu;

  /// `arena` must outlive the codec.  `keyframe_interval` bounds the parent
  /// chain replayed by decode (minimum 1 = every id a keyframe).
  DeltaCodec(SpillArena* arena, std::size_t keyframe_interval);

  /// Appends the key of the next id (ids are assigned densely in call
  /// order) encoded against `parent` (kNoParent for a root/keyframe).
  /// `parent_words` are the parent's decoded words when the caller has them
  /// handy (the explorer's parent frame does); pass empty to let the codec
  /// decode the parent itself.
  std::uint32_t append(std::span<const std::uint64_t> words,
                       std::uint32_t parent,
                       std::span<const std::uint64_t> parent_words);

  /// Decodes id's full key into `out` (cleared first).
  void decode_into(std::uint32_t id, std::vector<std::uint64_t>& out) const;

  std::size_t size() const { return meta_.size(); }
  std::uint32_t parent(std::uint32_t id) const { return meta_[id].parent; }
  std::size_t word_count(std::uint32_t id) const { return meta_[id].nwords; }

  std::uint64_t keyframes() const { return keyframes_; }
  std::uint64_t deltas() const { return size() - keyframes_; }
  /// Words written to the arena vs. the raw sum of key lengths: the
  /// compression the codec achieved.
  std::uint64_t encoded_words() const { return encoded_words_; }
  std::uint64_t raw_words() const { return raw_words_; }
  /// RAM held by the per-id metadata table.
  std::size_t memory_bytes() const {
    return meta_.capacity() * sizeof(Meta);
  }

 private:
  struct Meta {
    std::uint64_t handle = 0;
    std::uint32_t parent = kNoParent;
    std::uint16_t nwords = 0;
    std::uint16_t npairs = 0;  ///< 0 = keyframe (nwords words at handle)
    std::uint32_t chain = 0;   ///< parent-chain length to nearest keyframe
  };

  SpillArena* arena_;
  std::size_t keyframe_interval_;
  std::vector<Meta> meta_;
  std::uint64_t keyframes_ = 0;
  std::uint64_t encoded_words_ = 0;
  std::uint64_t raw_words_ = 0;
  mutable std::vector<std::uint64_t> parent_scratch_;
  mutable std::vector<std::uint32_t> chain_scratch_;
  std::vector<std::uint64_t> pair_scratch_;
};

}  // namespace wfregs::storage
