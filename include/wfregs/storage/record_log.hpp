// Append-only CRC'd record logs: the VerdictStore's proven crash-safety
// machinery (one write() per record, CRC-32 payload checksums, torn-tail
// truncation on replay), factored out of src/service/store.cpp so the
// storage layer's checkpoint files speak the same format discipline.
//
// File layout: an 8-byte magic header followed by records
//
//   [magic u32 "WFR1"] [tag u32] [payload_len u32] [crc32 u32] [payload...]
//
// all little-endian.  `tag` is caller-defined (the checkpoint layer uses it
// to distinguish snapshot records from key-batch records).  A reader accepts
// the longest valid prefix and reports how many trailing bytes it dropped; a
// writer positioned by open_record_log() truncates that torn tail before the
// first append so every append lands on a clean record boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wfregs::storage {

/// Standard CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) -- the
/// same function the VerdictStore has always used; service/store.cpp now
/// calls this one.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept;

struct LogRecord {
  std::uint32_t tag = 0;
  std::vector<std::uint8_t> payload;
  /// Byte offset one past this record's end (from the start of the file,
  /// header included): the truncation point that keeps this record and
  /// drops everything after it.
  std::uint64_t end_offset = 0;
};

struct LogContents {
  /// True when the file exists and starts with a valid header.
  bool present = false;
  std::vector<LogRecord> records;
  /// Total file bytes and how many trailing bytes failed validation (torn
  /// or corrupt tail).
  std::uint64_t file_bytes = 0;
  std::uint64_t dropped_bytes = 0;
};

/// Reads and validates `path`.  Missing file: present == false.  A file
/// that exists but lacks the header is reported as present == false with
/// file_bytes set (the caller decides whether that is fatal).
LogContents read_record_log(const std::string& path);

/// Append-only writer.  Creating one opens (or creates) the file, writes
/// the header when the file is empty, validates existing contents and
/// truncates any torn tail, leaving the write position at the end of the
/// last valid record.  Throws std::runtime_error on I/O failure.
class RecordLogWriter {
 public:
  explicit RecordLogWriter(std::string path);
  ~RecordLogWriter();
  RecordLogWriter(const RecordLogWriter&) = delete;
  RecordLogWriter& operator=(const RecordLogWriter&) = delete;

  /// Appends one record with a single write() (a SIGKILL between appends
  /// never tears a record; a machine crash can leave a prefix, which the
  /// next reader truncates).
  void append(std::uint32_t tag, const std::uint8_t* payload,
              std::size_t payload_len);

  /// fdatasync the log: on return every previously appended record is
  /// durable.  Checkpoint writers call this between the key-batch append
  /// and the snapshot append that references it.
  void sync();

  /// Truncates the file to `bytes` (a record boundary from LogRecord::
  /// end_offset, or the header size to clear the log) and repositions the
  /// writer there.
  void truncate_to(std::uint64_t bytes);

  std::uint64_t file_bytes() const { return file_bytes_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t file_bytes_ = 0;
};

/// Size of the file header ("WFRLOG01").
inline constexpr std::size_t kRecordLogHeaderBytes = 8;

}  // namespace wfregs::storage
