// Operation histories, recorded by the engine for linearizability checking.
//
// Time is the engine's commit counter (number of base-object accesses
// performed so far, globally).  An operation on an implemented object is
// invoked when its process reaches the call in program order and responds
// when its program returns; the interval [invoke_time, response_time]
// contains all of the operation's base accesses.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "wfregs/typesys/type_spec.hpp"

namespace wfregs {

using ProcId = int;
using ObjectId = int;

/// One high-level operation on an implemented object.
struct OpRecord {
  ProcId proc = -1;
  ObjectId object = -1;  ///< engine object id of the implemented object
  PortId port = -1;      ///< port the process holds on that object
  InvId inv = 0;
  std::size_t invoke_time = 0;
  std::optional<Val> response;  ///< nullopt while pending
  std::size_t response_time = 0;
};

/// Append-only log of high-level operations.
class History {
 public:
  /// Records an invocation; returns the op id used to complete it later.
  int begin_op(ProcId proc, ObjectId object, PortId port, InvId inv,
               std::size_t time);
  void end_op(int op_id, Val response, std::size_t time);

  /// Rewrites process and port ids in place.  Process-symmetry reduction
  /// renames configurations to orbit representatives; renaming the recorded
  /// path along with them keeps the history consistent -- it is then the
  /// history of the renamed execution, which is a real execution of the
  /// same system.
  void rename(const std::function<ProcId(ProcId)>& proc_map,
              const std::function<PortId(ObjectId, PortId)>& port_map);

  // ---- undo support (Engine::revert) -------------------------------------

  /// Number of recorded ops (== the next op id begin_op would return).
  std::size_t size() const { return ops_.size(); }
  /// Drops every op with id >= n (inverse of the begin_ops of one step).
  /// Throws std::out_of_range when n > size().
  void truncate(std::size_t n);
  /// Clears the response of a completed op (inverse of end_op).  Throws
  /// std::out_of_range on a bad id, std::logic_error when still pending.
  void reopen_op(int op_id);

  const std::vector<OpRecord>& ops() const { return ops_; }
  /// Ops on one object, preserving order.
  std::vector<OpRecord> ops_on(ObjectId object) const;

  std::string to_string() const;

 private:
  std::vector<OpRecord> ops_;
};

}  // namespace wfregs
