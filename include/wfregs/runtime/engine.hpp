// The execution engine: runs the processes of a System one shared-memory
// step at a time.
//
// Granularity matches the paper's model (Section 4.2): one engine step =
// one access to one *base* object.  All local computation -- including
// calling into and returning from the programs of implemented objects -- is
// performed eagerly between steps, leaving every process either finished or
// "poised" at its next base access.  Nondeterminism has exactly two sources,
// both external to programs: which process steps next (the scheduler /
// explorer) and which transition a nondeterministic base object takes (the
// chooser / explorer).
//
// Engines are value types: copy one to snapshot an execution.  The
// configuration key (config_key) captures exactly the information the
// paper's Section 4.2 trees put in a node: the states of the implementing
// objects and the processes' program counters, stacks and registers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "wfregs/runtime/history.hpp"
#include "wfregs/runtime/system.hpp"

namespace wfregs {

struct ProcessRenaming;  // reduction.hpp

/// Hashable, equality-comparable snapshot of an engine configuration.
/// Excludes the history and access counters (path data, not state).
struct ConfigKey {
  std::vector<std::uint64_t> words;
  friend bool operator==(const ConfigKey&, const ConfigKey&) = default;
};

struct ConfigKeyHash {
  std::size_t operator()(const ConfigKey& k) const;
};

class Engine {
 public:
  /// Builds the initial configuration and prepares every process up to its
  /// first base access (or completion).
  explicit Engine(std::shared_ptr<const System> sys);

  const System& system() const { return *sys_; }

  // ---- process status ------------------------------------------------------

  bool done(ProcId p) const;
  bool all_done() const;
  /// Final value returned by p's top-level program (nullopt while running or
  /// when p had no program).
  std::optional<Val> result(ProcId p) const;
  std::vector<ProcId> runnable() const;

  // ---- stepping -------------------------------------------------------------

  /// Width of the nondeterministic choice at p's pending base access (the
  /// size of the delta set); >= 1.  Throws when p is done.
  int pending_choices(ProcId p) const;

  /// The base object p's pending access targets.  Throws when p is done.
  ObjectId pending_object(ProcId p) const;

  /// Port / invocation of p's pending base access (for the reduction
  /// layer's independence queries).  Throws when p is done.
  PortId pending_port(ProcId p) const;
  InvId pending_inv(ProcId p) const;

  struct CommitInfo {
    ObjectId object = -1;
    PortId port = -1;
    InvId inv = 0;
    RespId resp = 0;
  };

  /// Performs p's pending base access, taking transition `choice` of the
  /// delta set, then advances p to its next base access or completion.
  CommitInfo commit(ProcId p, int choice = 0);

  /// Journal of one committed step, filled by apply() and consumed by
  /// revert().  Opaque outside the engine; default-construct one and reuse
  /// it across apply/revert pairs (its buffers keep their capacity).
  struct UndoRecord;

  /// As commit(), additionally journaling everything the step mutates --
  /// the stepped process, the object state, the clocks, persistent-variable
  /// write-backs and history growth -- so revert(undo) restores this engine
  /// EXACTLY (bit-for-bit, including the history) to its pre-apply state.
  /// This is what lets the explorers keep one engine per worker instead of
  /// copying the engine once per branch.
  CommitInfo apply(ProcId p, int choice, UndoRecord& undo);

  /// Inverse of the matching apply().  Records must be reverted in LIFO
  /// order relative to their applies; `undo` is left reusable.
  void revert(UndoRecord& undo);

  // ---- observation ------------------------------------------------------------

  /// Global commit counter (the history's clock).
  std::size_t time() const { return time_; }
  const History& history() const { return history_; }
  /// Current state of a base object.
  StateId object_state(ObjectId g) const;
  /// Number of accesses committed on base object g (optionally per
  /// invocation).
  std::size_t access_count(ObjectId g) const;
  std::size_t access_count(ObjectId g, InvId i) const;
  /// Depth of p's frame stack (0 when done); for diagnostics.
  int stack_depth(ProcId p) const;

  // ---- configuration identity ---------------------------------------------------

  ConfigKey config_key() const;

  /// As config_key(), writing into `key` (cleared first) so the explorers
  /// can reuse one buffer across millions of nodes.
  void config_key_into(ConfigKey& key) const;
  /// Renamed-view variant (see config_key(const ProcessRenaming&)).
  void config_key_into(ConfigKey& key, const ProcessRenaming& r) const;

  /// The configuration key of the renamed configuration (the key this
  /// engine would have after apply_renaming(r)), computed without copying
  /// the engine.  Process-symmetry reduction calls this once per group
  /// element to pick the orbit-minimal representative.
  ConfigKey config_key(const ProcessRenaming& r) const;

  /// Rewrites this configuration in place under a process renaming:
  /// permutes process states, per-port persistent blocks and history
  /// process/port ids, and rewrites the port of every held handle.  `r`
  /// must come from symmetry_renamings(system()): the renamed configuration
  /// is then a reachable configuration of the same system.
  void apply_renaming(const ProcessRenaming& r);

 private:
  struct Frame {
    ProgramRef code;
    Locals locals;
    std::vector<Handle> env;
    int result_reg_in_parent = -1;
    int op_id = -1;  ///< history op owned by this frame; -1 for top level
    /// When >= 0, registers [0, persist_count) are that virtual object's
    /// per-port persistent variables, written back on return.
    ObjectId persist_gid = -1;
    PortId persist_port = -1;
    int persist_count = 0;
  };
  struct PendingAccess {
    Handle handle;
    InvId inv = 0;
    int result_reg = 0;
  };
  struct Proc {
    std::vector<Frame> stack;
    std::optional<PendingAccess> pending;
    std::optional<Val> result;
    bool finished = false;
  };

  void prepare(ProcId p, UndoRecord* undo = nullptr);
  CommitInfo commit_impl(ProcId p, int choice, UndoRecord* undo);
  std::vector<Handle> inner_env(const System::VirtualObject& v,
                                PortId port) const;
  void check_proc(ProcId p) const;
  void emit_key(ConfigKey& key, const ProcessRenaming* renaming) const;

  std::shared_ptr<const System> sys_;
  /// Dense, construction-order-stable id for every ProgramCode reachable
  /// from sys_ (toplevels in process order, then implementation programs in
  /// (object, invocation, port) order).  config_key() emits these ids
  /// instead of raw pointers, so keys -- and the checkpoint fingerprints
  /// built from them -- are identical across processes and across separate
  /// constructions of an equivalent System.  Shared so that the many engine
  /// copies the explorer makes don't each rebuild (or duplicate) the table.
  std::shared_ptr<const std::unordered_map<const ProgramCode*, std::uint64_t>>
      program_ids_;
  /// compiled_[gid]: the hot-path transition table of base object gid
  /// (nullptr for virtual slots).  Borrowed from sys_'s BaseObjects, which
  /// the engine keeps alive through sys_.
  std::vector<const CompiledType*> compiled_;
  std::vector<StateId> object_state_;  // indexed by gid; 0 for virtual slots
  /// persistent_[gid][port * P + k]: persistent variable k of port `port`
  /// on implemented object gid (empty for objects without persistent state).
  std::vector<std::vector<Val>> persistent_;
  std::vector<Proc> procs_;
  std::size_t time_ = 0;
  /// Logical clock, strictly increasing across commits *and* history events,
  /// so that operation precedence (response before invocation) is never
  /// ambiguous in the linearizability checker.
  std::size_t clock_ = 0;
  History history_;
  std::vector<std::size_t> access_count_;           // per gid
  std::vector<std::vector<std::size_t>> access_by_inv_;  // per gid, per inv
};

/// The apply() journal.  One record covers exactly one committed step: the
/// pre-step snapshot of the stepped process (everything prepare() may touch
/// lives in its Proc), the accessed object's state, the clocks, the old
/// values of persistent blocks written back by returning frames, and the
/// history bookkeeping (ops begun during the step are truncated away; ops
/// ENDED during the step that began earlier are reopened).
struct Engine::UndoRecord {
 private:
  friend class Engine;
  struct PersistUndo {
    ObjectId gid = -1;
    std::size_t offset = 0;
    std::vector<Val> old;
  };
  ProcId p = -1;
  ObjectId gid = -1;
  InvId inv = 0;
  StateId saved_state = 0;
  std::size_t saved_time = 0;
  std::size_t saved_clock = 0;
  std::size_t history_size = 0;
  Proc saved_proc;
  std::vector<PersistUndo> persist;
  std::vector<int> reopened_ops;
};

}  // namespace wfregs
