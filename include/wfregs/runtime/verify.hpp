// End-to-end correctness checking of an implementation (Section 2.2): runs a
// driver scenario in which each process issues a fixed script of invocations
// on the implemented object, explores EVERY interleaving and every
// nondeterministic object transition, and checks that each resulting history
// is linearizable with respect to the implemented type's specification and
// that the implementation is wait-free (no configuration cycles).
//
// This is the executable counterpart of the paper's notion of a "correct
// wait-free implementation": correctness quantifies over all histories,
// which the explorer enumerates exactly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "wfregs/runtime/explorer.hpp"
#include "wfregs/runtime/implementation.hpp"

namespace wfregs {

struct VerifyResult {
  bool ok = false;          ///< linearizable in every schedule AND wait-free
  bool wait_free = false;   ///< no configuration cycle found
  bool complete = false;    ///< exploration finished within limits
  std::string detail;       ///< first violation, when !ok
  bool resumed = false;      ///< exploration resumed from a checkpoint
  bool checkpointed = false; ///< an interrupted run left a resumable checkpoint
  ExploreStats stats;
};

/// Verifies `impl` under the scenario `scripts`: process p (attached to
/// iface port p) performs scripts[p] in order.  scripts.size() must equal
/// impl->iface().ports(); empty scripts are allowed (the process finishes
/// immediately).  Every schedule's history is checked for linearizability
/// against impl->iface() from impl->iface_initial().  Exploration runs on
/// options.threads workers (0 = hardware concurrency, 1 = the sequential
/// legacy path); see the PARALLEL EXPLORATION contract in explorer.hpp.
VerifyResult verify_linearizable(std::shared_ptr<const Implementation> impl,
                                 std::vector<std::vector<InvId>> scripts,
                                 const VerifyOptions& options = {});

/// Legacy-limits convenience overload; equivalent to passing
/// VerifyOptions{limits} (default thread count).
VerifyResult verify_linearizable(std::shared_ptr<const Implementation> impl,
                                 std::vector<std::vector<InvId>> scripts,
                                 const ExploreLimits& limits);

}  // namespace wfregs
