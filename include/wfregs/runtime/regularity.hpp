// Regular-register semantics checking (Lamport 1986).
//
// A single-writer register is REGULAR when every read returns either the
// value of the latest write that completed before the read began (or the
// initial value when there is none) or the value of some write overlapping
// the read.  Regularity is strictly weaker than atomicity: it permits
// new/old inversion between consecutive reads.
//
// The checker consumes the same OpRecord histories the engine produces,
// under the register invocation convention (invocation 0 = read returning
// the value; invocation 1+v = write(v)).  Writes must be sequential (single
// writer); overlapping writes are reported as a usage error.
//
// verify_regular() is the regular-register analogue of verify_linearizable:
// it explores every schedule of a scenario and checks each history.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "wfregs/runtime/explorer.hpp"
#include "wfregs/runtime/history.hpp"
#include "wfregs/runtime/implementation.hpp"

namespace wfregs {

struct RegularityResult {
  bool regular = false;
  std::string detail;  ///< first violating read, when !regular
};

/// Checks the regular-register condition on `ops` for a register over
/// `values` values initially holding `initial`.
RegularityResult check_regular(const std::vector<OpRecord>& ops, int values,
                               int initial);

struct RegularVerifyResult {
  bool ok = false;
  bool wait_free = false;
  bool complete = false;
  std::string detail;
  bool resumed = false;      ///< exploration resumed from a checkpoint
  bool checkpointed = false; ///< an interrupted run left a resumable checkpoint
  ExploreStats stats;
};

/// Explores every schedule of the scenario (process p runs scripts[p] on
/// iface port p) and checks each resulting history with check_regular.
/// impl's interface must follow the register invocation convention with
/// its initial state being the initial value.  Exploration runs on
/// options.threads workers (0 = hardware concurrency, 1 = the sequential
/// legacy path).
RegularVerifyResult verify_regular(std::shared_ptr<const Implementation> impl,
                                   std::vector<std::vector<InvId>> scripts,
                                   int values,
                                   const VerifyOptions& options = {});

/// Legacy-limits convenience overload; equivalent to passing
/// VerifyOptions{limits} (default thread count).
RegularVerifyResult verify_regular(std::shared_ptr<const Implementation> impl,
                                   std::vector<std::vector<InvId>> scripts,
                                   int values, const ExploreLimits& limits);

}  // namespace wfregs
