// Public single-history oracles: check ONE recorded History against a type
// specification, independently of how the history was produced.
//
// The explorer-driven verify_linearizable / verify_regular paths apply
// exactly these checks to every terminal history they enumerate; the native
// conformance lab (wfregs/native) applies them to histories recorded from
// real std::thread executions.  Splitting them out keeps the two producers
// verifiably on the same oracle: a construction that passes exhaustive
// model checking and then fails natively has a genuine bug in either the
// construction or the model, never a divergence between two checkers.
#pragma once

#include <string>

#include "wfregs/runtime/history.hpp"
#include "wfregs/typesys/type_spec.hpp"

namespace wfregs {

/// Restrict a check to ops on every object in the history.
inline constexpr ObjectId kAnyObject = -1;

struct HistoryCheckResult {
  bool ok = false;
  std::string detail;  ///< human-readable violation, when !ok

  explicit operator bool() const { return ok; }
};

/// Checks that the ops recorded on `object` (all ops when kAnyObject) form a
/// linearizable history of `spec` starting from `initial`.  Pending ops are
/// completed or dropped per the standard rule (see linearizability.hpp); at
/// most 64 ops are supported.  The failure detail is the same rendering the
/// verify_linearizable explorer reports for a violating schedule.
HistoryCheckResult check_history_linearizable(const History& history,
                                              const TypeSpec& spec,
                                              StateId initial,
                                              ObjectId object = kAnyObject);

/// Checks the regular-register condition (Lamport 1986) on the ops recorded
/// on `object`, under the register invocation convention (invocation 0 =
/// read returning the value; invocation 1+v = write(v)) for a single-writer
/// register over `values` values initially holding `initial`.
HistoryCheckResult check_history_regular(const History& history, int values,
                                         int initial,
                                         ObjectId object = kAnyObject);

}  // namespace wfregs
