// Implementations in the sense of Section 2.2: a set of (appropriately
// initialized) objects plus one deterministic program per (invocation of the
// implemented type, port).
//
// Inner objects may themselves be implemented (nested), which is how the
// register-construction chain of Section 4.1 and the register-elimination
// transform of Theorem 5 compose: e.g. a multi-valued register implemented
// from atomic bits, each of which is implemented from one-use bits, each of
// which is implemented from an object of some non-trivial type T.
//
// Port plumbing: when the implemented object is accessed on its port j, the
// running program addresses inner object k through the port
// objects()[k].port_of_outer[j].  A value of kNoPort means port j's programs
// never touch that inner object (enforced at run time by the engine).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "wfregs/runtime/program.hpp"
#include "wfregs/typesys/type_spec.hpp"

namespace wfregs {

class Implementation;

/// Marker: this outer port has no access to the inner object.
inline constexpr PortId kNoPort = -1;

/// One inner object of an implementation: either a base object (a TypeSpec
/// plus initial state) or a nested implementation.
struct ObjectDecl {
  // Base object (spec != nullptr) ...
  std::shared_ptr<const TypeSpec> spec;
  StateId initial = 0;
  // ... or nested implementation (impl != nullptr).
  std::shared_ptr<const Implementation> impl;
  // port_of_outer[j] = the port on this inner object used when the
  // implemented object is accessed on port j.
  std::vector<PortId> port_of_outer;

  bool is_base() const { return spec != nullptr; }
};

/// A wait-free-candidate implementation of a type from inner objects.
/// Correctness (linearizability, wait-freedom) is established externally by
/// the explorer; this class only carries the structure.
class Implementation {
 public:
  /// `iface` is the implemented type; `iface_initial` the state the
  /// implementation realizes (Section 2.2 implements a type *in a state*).
  Implementation(std::string name, std::shared_ptr<const TypeSpec> iface,
                 StateId iface_initial);

  /// Declares a base inner object.  Returns its slot index (the programs'
  /// environment slot).  port_of_outer must have iface().ports() entries.
  int add_base(std::shared_ptr<const TypeSpec> spec, StateId initial,
               std::vector<PortId> port_of_outer);

  /// Declares a nested implemented inner object.
  int add_nested(std::shared_ptr<const Implementation> impl,
                 std::vector<PortId> port_of_outer);

  /// Installs the program run when invocation `inv` arrives on port `port`.
  void set_program(InvId inv, PortId port, ProgramRef code);
  /// Installs the same program for every port (typical for oblivious use).
  void set_program_all_ports(InvId inv, ProgramRef code);

  /// Declares `initial.size()` per-port local variables that persist across
  /// operations (the paper's Section 4.3 reader keeps i_r, j_r this way).
  /// At the start of every operation on port j, registers 0..P-1 of the
  /// frame hold that port's persistent values; on return they are stored
  /// back.  Programs that do not change a persistent variable must simply
  /// leave its register untouched.
  void set_persistent(std::vector<Val> initial);
  int persistent_slots() const {
    return static_cast<int>(persistent_initial_.size());
  }
  const std::vector<Val>& persistent_initial() const {
    return persistent_initial_;
  }

  const std::string& name() const { return name_; }
  const TypeSpec& iface() const { return *iface_; }
  const std::shared_ptr<const TypeSpec>& iface_ptr() const { return iface_; }
  StateId iface_initial() const { return iface_initial_; }
  std::span<const ObjectDecl> objects() const { return objects_; }

  /// The program for (inv, port); throws std::logic_error when absent (the
  /// implementation does not support that invocation on that port).
  const ProgramRef& program(InvId inv, PortId port) const;
  bool has_program(InvId inv, PortId port) const;

  /// Total number of *base* objects in the fully flattened tree.
  int flattened_base_count() const;

  /// Structural rewriting, the engine of the Theorem 5 transform: returns a
  /// copy of this implementation in which every inner-object declaration d
  /// at declaration path `path` is replaced by fn(path, d) when that returns
  /// a value.  When fn declines (nullopt) and d is a nested implementation,
  /// the rewrite recurses into it.  Programs, interface and persistent state
  /// are shared/copied unchanged -- replacements must therefore implement
  /// the same interface type (same invocations/responses/ports) as the
  /// declaration they replace.
  using RewriteFn = std::function<std::optional<ObjectDecl>(
      std::span<const int> path, const ObjectDecl& decl)>;
  std::shared_ptr<Implementation> rewrite_objects(const RewriteFn& fn) const;

 private:
  std::size_t prog_index(InvId inv, PortId port) const;
  void check_port_map(const std::vector<PortId>& map, int inner_ports) const;

  std::string name_;
  std::shared_ptr<const TypeSpec> iface_;
  StateId iface_initial_ = 0;
  std::vector<ObjectDecl> objects_;
  std::vector<ProgramRef> programs_;  // [inv * ports + port]
  std::vector<Val> persistent_initial_;
};

}  // namespace wfregs
