// Partial-order and symmetry reduction for the schedule explorer.
//
// The explorer of explorer.hpp enumerates every interleaving of base-object
// accesses.  Much of that work is redundant in exactly the Mazurkiewicz
// sense: two enabled steps by different processes COMMUTE when they access
// disjoint base objects, or the same object with operations whose transition
// tables compose to the same outcomes in either order.  Executions that
// differ only by swapping adjacent commuting steps reach the same terminal
// configuration with the same length and the same per-object access counts,
// so one representative per equivalence class suffices for every verdict the
// explorer reports.  This header provides the three ingredients:
//
//   * IndependenceTable -- the static commutation relation, computed from
//     the TypeSpec transition tables (see accesses_commute_at); the
//     analysis library refines it with reachable-state and issued-invocation
//     facts (analysis::refined_independence) and injects the result through
//     ExploreOptions::independence.
//   * symmetry_renamings -- the process-symmetry group of a System: process
//     permutations (with their induced per-object port maps) under which the
//     system is invariant, used to canonicalize configurations to orbit
//     representatives.
//   * ReductionContext -- the per-exploration driver shared by the
//     sequential DFS and the parallel work-stealing frontier: enabled-step
//     enumeration, sleep-set propagation (Flanagan/Godefroid sleep sets over
//     process-id bitmasks) and node-key canonicalization.
//
// SOUNDNESS.  Sleep sets prune only executions whose Mazurkiewicz trace has
// another explored representative, and the exploration keeps the full
// enabled set otherwise (no persistent-set restriction), so every terminal
// configuration is still visited, the longest explored path still realizes
// the Section 4.2 depth, and per-object / per-invocation access bounds are
// unchanged (trace-equivalent executions have identical access multisets).
// Wait-freedom is preserved because an infinite execution yields unbounded
// trace representatives, which in a finite (configuration, sleep-set) node
// graph forces a node repeat along some explored path -- the same cycle
// abort the unreduced explorer performs.  Symmetry canonicalization merges
// whole orbits; automorphisms fix object ids (they only permute processes
// and ports), so depth, access bounds, cycles and terminal verdicts lift
// along orbits.  Like memoization itself, reduction requires TerminalChecks
// that are functions of the terminal configuration (the MEMOIZATION
// CONTRACT of explorer.hpp); symmetry additionally requires the check to be
// invariant under process renaming, which every check in this library is
// (agreement, validity and linearizability do not name processes).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wfregs/runtime/engine.hpp"
#include "wfregs/runtime/system.hpp"

namespace wfregs {

/// Reduction mode for the explorers (ExploreOptions::reduction).
enum class Reduction {
  kNone,           ///< bit-identical legacy exploration
  kSleep,          ///< sleep-set partial-order reduction
  kSleepSymmetry,  ///< sleep sets + process-symmetry canonicalization
};

/// True when the accesses (port a, invocation i1) and (port b, invocation
/// i2) -- performed by two different processes -- commute at state q of `t`:
/// executing them in either order yields the same set of (final state,
/// response to i1, response to i2) outcomes.  Nondeterministic and partial
/// cells are handled by the set comparison (an empty delta in one order must
/// be empty in the other for the accesses to commute).
bool accesses_commute_at(const TypeSpec& t, StateId q, PortId a, InvId i1,
                         PortId b, InvId i2);

/// Static commutation relation over the base objects of a System: for each
/// base object, a (port, invocation) x (port, invocation) matrix of
/// "commutes in every state".  Steps on distinct base objects are always
/// independent and are not represented here (ReductionContext handles them).
class IndependenceTable {
 public:
  /// Baseline table from the TypeSpec transition tables alone: a pair
  /// commutes iff accesses_commute_at holds in every state of the object's
  /// spec.  Sound for any exploration of `sys`.
  static IndependenceTable build(const System& sys);

  /// An all-dependent table of the right shape (the refinement starting
  /// point used by analysis::refined_independence).
  static IndependenceTable all_dependent(const System& sys);

  /// True when the table covers base object g with the given dimensions
  /// (tables built for one System must not be injected into explorations of
  /// another shape).
  bool covers(ObjectId g, int ports, int invs) const;

  bool independent(ObjectId g, PortId a, InvId i1, PortId b, InvId i2) const;
  void set_independent(ObjectId g, PortId a, InvId i1, PortId b, InvId i2,
                       bool independent);

  /// Number of independent (unordered) pairs over all objects; diagnostics.
  std::size_t independent_pairs() const;

 private:
  struct PerObject {
    int ports = 0;
    int invs = 0;
    std::vector<char> bits;  ///< [(a*invs+i1)*ports*invs + b*invs+i2]
  };
  std::vector<PerObject> objects_;  ///< indexed by gid; empty for virtual
};

/// One element of a System's process-symmetry group: a process permutation
/// together with the per-object port maps it induces.  Applying a renaming
/// to a reachable configuration yields a reachable configuration of the
/// same system (the root is a fixed point: all processes start poised at
/// their first access with zeroed registers).
struct ProcessRenaming {
  std::vector<ProcId> proc_map;  ///< old process id -> new process id
  std::vector<ProcId> old_proc;  ///< inverse: new process id -> old
  /// port_map[g][old port] -> new port; empty vector = identity on g.
  std::vector<std::vector<PortId>> port_map;
  /// Inverse per-object maps (new port -> old); empty = identity.
  std::vector<std::vector<PortId>> old_port;

  PortId map_port(ObjectId g, PortId port) const {
    if (port < 0) return port;  // kNoPort handles pass through
    const auto& m = port_map[static_cast<std::size_t>(g)];
    return m.empty() ? port : m[static_cast<std::size_t>(port)];
  }
};

/// All non-identity renamings under which `sys` is invariant: permutations
/// pi with toplevel_program(p) == toplevel_program(pi(p)) (pointer equality
/// -- programs are immutable and shared), identical environment object
/// sequences, and induced port maps under which every moved held port has
/// an identical transition table (base objects) or identical programs
/// (implemented objects).  Returns empty for asymmetric systems and for
/// systems with more than 6 processes (the factorial enumeration stops
/// paying for itself well before the memory of the exploration it would
/// reduce fits in RAM).
std::vector<ProcessRenaming> symmetry_renamings(const System& sys);

/// Per-exploration reduction driver shared by explore() and
/// explore_parallel().  Thread-compatible: all state is immutable after
/// construction, so concurrent workers may share one const instance.
class ReductionContext {
 public:
  /// `mode` != kNone required.  `injected` optionally overrides the
  /// baseline independence table (it must cover every base object of
  /// `sys`); pass nullptr to build the TypeSpec baseline.  When the system
  /// shares an object port between two processes, sleep-set pruning is
  /// disabled (steps on distinct base objects may then conflict through the
  /// shared per-port persistent state) and only symmetry remains active.
  ReductionContext(const System& sys, Reduction mode,
                   const IndependenceTable* injected);

  /// One enabled step: a process poised at a base access, with the
  /// nondeterministic width of that access.
  struct Step {
    ProcId p = -1;
    ObjectId object = -1;
    PortId port = -1;
    InvId inv = 0;
    int width = 0;
  };

  /// All runnable processes' pending steps, in ascending process order (the
  /// exploration order of the sequential explorer).
  std::vector<Step> steps(const Engine& e) const;

  /// Whether two steps by different processes commute.
  bool independent(const Step& a, const Step& b) const;

  /// True when sleep-set pruning is active (kSleep or kSleepSymmetry, <= 64
  /// processes, no shared ports).
  bool sleep_active() const { return sleep_active_; }

  /// Sleep mask for the child reached by taking steps[taken] from a node
  /// with sleep mask `sleep`: processes already slept or explored earlier at
  /// this node whose pending step commutes with the taken one.  The same
  /// mask applies to every nondeterministic choice of the taken step.
  std::uint64_t child_sleep(const std::vector<Step>& steps, std::size_t taken,
                            std::uint64_t sleep) const;

  /// Canonicalizes (e, sleep) to its orbit representative: picks the
  /// renaming minimizing the (ConfigKey, renamed sleep mask) pair, applies
  /// it to `e` and `sleep` in place, and returns the node identity -- the
  /// canonical ConfigKey with the sleep mask appended as a final word.
  /// Under kSleep (or an asymmetric system) the engine is untouched and the
  /// identity key is returned.  Node identity is exact: two nodes are
  /// merged only when both the canonical configuration AND the sleep mask
  /// coincide, which keeps the reduced node graph -- and therefore every
  /// counter -- deterministic and shared between the sequential and
  /// parallel explorers.
  ConfigKey canonical_node_key(Engine& e, std::uint64_t& sleep) const;

  /// As canonical_node_key, writing the node key into `out` (reused
  /// storage, cleared first) and reporting through `applied` which group
  /// renaming was applied to `e` (an index for undo_renaming, or -1 when
  /// the engine was left untouched).  This is the undo-based explorers'
  /// entry point: they must invert the canonicalization before reverting
  /// the step that produced `e`.
  void canonical_node_key_into(Engine& e, std::uint64_t& sleep, ConfigKey& out,
                               int* applied) const;

  /// Re-applies renaming `idx` (as reported by canonical_node_key_into) to
  /// an engine -- the parallel explorer's path replay uses this to
  /// re-canonicalize without recomputing any keys.
  void apply_renaming_index(Engine& e, int idx) const;

  /// Applies the inverse of renaming `idx`, exactly undoing
  /// apply_renaming_index / canonical_node_key_into on the same engine.
  void undo_renaming(Engine& e, int idx) const;

  /// Number of non-identity renamings in play (0 under kSleep or for
  /// asymmetric systems); diagnostics.
  std::size_t symmetry_order() const { return renamings_.size(); }

 private:
  const System* sys_;
  bool sleep_active_ = false;
  IndependenceTable table_;
  std::vector<ProcessRenaming> renamings_;
  /// inverses_[k] undoes renamings_[k] (same group, swapped maps).
  std::vector<ProcessRenaming> inverses_;
};

}  // namespace wfregs
