// Linearizability checking (Herlihy & Wing 1990) for operation histories
// recorded by the engine, in the style of Wing & Gong's decision procedure
// with failure memoization.
//
// Given the ops performed on one implemented object and that object's
// interface TypeSpec, the checker searches for a total order of the ops that
// (a) respects real-time precedence (op A before op B whenever A responded
// before B was invoked) and (b) is a legal sequential history of the spec
// from the given initial state, matching every recorded response.  Pending
// operations (no response) may be linearized with any legal response or
// omitted entirely, per the standard completion rule.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "wfregs/runtime/history.hpp"
#include "wfregs/typesys/type_spec.hpp"

namespace wfregs {

struct LinearizabilityResult {
  bool linearizable = false;
  /// Indices into the input ops, in linearization order (completed ops only
  /// appear when linearizable; pending ops appear when they were linearized
  /// rather than omitted).
  std::vector<int> order;
  std::size_t states_explored = 0;
};

/// Checks linearizability of `ops` against `spec` starting from `initial`.
/// Supports up to 64 operations (throws std::invalid_argument beyond that).
LinearizabilityResult check_linearizable(const std::vector<OpRecord>& ops,
                                         const TypeSpec& spec,
                                         StateId initial);

/// Convenience: renders a human-readable explanation of a non-linearizable
/// history for diagnostics.
std::string describe_history(const std::vector<OpRecord>& ops,
                             const TypeSpec& spec);

}  // namespace wfregs
