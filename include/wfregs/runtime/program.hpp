// Deterministic programs for the simulated shared-memory runtime.
//
// The paper's model (Section 2.2) has one deterministic program per process
// per invocation of the implemented type.  We represent programs as small
// bytecode state machines over integer registers:
//
//   * configurations must be copyable and hashable, because the exhaustive
//     explorer (and the Section 4.2 execution-tree construction) snapshots
//     and memoizes them;
//   * all control flow and arithmetic is explicit, so a "step" of the engine
//     is exactly one shared-object access, matching the paper's granularity.
//
// A program advances via step(Locals&), which runs local computation until
// it either invokes an object in its environment (DoInvoke) or returns
// (DoReturn).  Responses are delivered by the engine writing the response
// value into the register named by the DoInvoke.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "wfregs/typesys/type_spec.hpp"

namespace wfregs {

/// Per-frame local state: a program counter and a register file.  Value
/// semantics; hashable via locals_hash().
struct Locals {
  std::int32_t pc = 0;
  std::vector<Val> regs;

  friend bool operator==(const Locals&, const Locals&) = default;
};

std::size_t locals_hash(const Locals& l);

/// Program action: invoke `inv` on environment slot `slot`, storing the
/// response into register `result_reg`...
struct DoInvoke {
  int slot = 0;
  InvId inv = 0;
  int result_reg = 0;
};
/// ...or complete with a return value.
struct DoReturn {
  Val value = 0;
};
using Action = std::variant<DoInvoke, DoReturn>;

struct StaticInstr;  // static disassembly entry, defined below

/// Abstract deterministic program code.  Implementations must be pure: the
/// result of step() may depend only on the Locals passed in.
class ProgramCode {
 public:
  virtual ~ProgramCode() = default;
  /// Runs local computation from l.pc until the next action.  Must mutate
  /// only `l`.  Throws std::runtime_error if local computation exceeds the
  /// interpreter's fuel (a diverging loop that never touches shared memory).
  virtual Action step(Locals& l) const = 0;
  virtual const std::string& name() const = 0;
  /// Number of registers the engine should allocate for a fresh frame.
  virtual int num_regs() const = 0;
  /// Static disassembly for analysis tools; nullopt when the program is not
  /// statically inspectable (hand-written ProgramCode subclasses).  Programs
  /// built by ProgramBuilder always return their resolved instruction list.
  virtual std::optional<std::vector<StaticInstr>> static_code() const;
};

using ProgramRef = std::shared_ptr<const ProgramCode>;

// ---- expression mini-language ------------------------------------------------

/// Immutable expression tree over registers and constants.
class Expr {
 public:
  enum class Kind {
    kConst,
    kReg,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kMod,
    kEq,
    kNe,
    kLt,
    kLe,
    kAnd,
    kOr,
    kNot
  };

  static Expr lit(Val v);
  static Expr reg(int index);

  Val eval(const std::vector<Val>& regs) const;
  int max_reg() const;

  // ---- structural inspection (wfregs/analysis) ---------------------------
  // The static linter re-evaluates expressions over abstract value sets, so
  // it needs to fold over the tree without the interpreter.

  Kind kind() const;
  /// The literal of a kConst node; throws std::logic_error otherwise.
  Val const_value() const;
  /// The register index of a kReg node; throws std::logic_error otherwise.
  int reg_index() const;
  /// First / second operand; nullopt when the node has none.
  std::optional<Expr> child_a() const;
  std::optional<Expr> child_b() const;

  friend Expr operator+(Expr a, Expr b);
  friend Expr operator-(Expr a, Expr b);
  friend Expr operator*(Expr a, Expr b);
  friend Expr operator/(Expr a, Expr b);  ///< division by zero throws
  friend Expr operator%(Expr a, Expr b);  ///< modulo by zero throws
  friend Expr operator==(Expr a, Expr b);
  friend Expr operator!=(Expr a, Expr b);
  friend Expr operator<(Expr a, Expr b);
  friend Expr operator<=(Expr a, Expr b);
  friend Expr operator&&(Expr a, Expr b);
  friend Expr operator||(Expr a, Expr b);
  friend Expr operator!(Expr a);

  /// Implementation node; opaque to clients.
  struct Node;

 private:
  explicit Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  static Expr binary(Kind k, Expr a, Expr b);
  std::shared_ptr<const Node> node_;
};

/// Shorthand builders.
inline Expr lit(Val v) { return Expr::lit(v); }
inline Expr reg(int index) { return Expr::reg(index); }

// ---- static disassembly ---------------------------------------------------

/// One resolved bytecode instruction, exposed for static analysis
/// (wfregs/analysis): jump targets are program counters, not label ids, so
/// a consumer can build the control-flow graph directly.  Successors:
/// kAssign/kInvoke fall through to pc+1; kJump goes to `target`; kBranchIf
/// goes to `target` or falls through; kRet/kFail terminate the path.
struct StaticInstr {
  enum class Op { kAssign, kInvoke, kJump, kBranchIf, kRet, kFail };
  Op op = Op::kAssign;
  int reg = -1;     ///< kAssign target / kInvoke result register
  int slot = -1;    ///< kInvoke environment slot
  int target = -1;  ///< kJump / kBranchIf resolved destination pc
  /// kAssign value / kInvoke invocation id / kBranchIf condition / kRet
  /// value; nullopt for kJump and kFail.
  std::optional<Expr> expr;
};

// ---- bytecode builder -----------------------------------------------------------

/// Opaque forward-referencable jump target.
struct Label {
  int id = -1;
};

/// Builds a bytecode ProgramCode.  Typical usage:
///
///   ProgramBuilder b;
///   const int kResp = 0, kRow = 1;
///   b.assign(kRow, lit(1));
///   const Label loop = b.bind_here();
///   b.invoke(kSlotBits, lit(read_inv), kResp);
///   b.branch_if(reg(kResp) == lit(1), loop);
///   b.ret(reg(kRow) % lit(2));
///   ProgramRef p = b.build("reader");
class ProgramBuilder {
 public:
  /// Creates an unbound label for forward jumps.
  Label make_label();
  /// Binds `l` to the next emitted instruction.
  void bind(Label l);
  /// Creates a label already bound to the next instruction.
  Label bind_here();

  void assign(int reg, Expr value);
  /// Invoke `inv` (evaluated at run time) on environment slot `slot`; the
  /// response lands in register `result_reg`.
  void invoke(int slot, Expr inv, int result_reg);
  void jump(Label target);
  void branch_if(Expr condition, Label target);
  void ret(Expr value);
  /// Aborts the run with std::runtime_error(message): an internal invariant
  /// of the construction was violated.
  void fail(std::string message);

  /// Finalizes.  Throws std::logic_error when a used label is unbound or the
  /// program does not end every path in ret/jump/fail.
  ProgramRef build(std::string name);

 private:
  friend class BytecodeProgram;
  struct Instr {
    enum class Op { kAssign, kInvoke, kJump, kBranchIf, kRet, kFail };
    Op op = Op::kAssign;
    int reg = -1;        // kAssign / kInvoke result register
    int slot = -1;       // kInvoke environment slot
    int label = -1;      // kJump / kBranchIf target label id
    std::optional<Expr> expr;  // value / invocation id / condition
    std::string message;       // kFail
  };
  std::vector<Instr> code_;
  std::vector<int> label_targets_;
  int max_reg_ = -1;
  void note_reg(int r);
  void note_expr(const Expr& e);
};

}  // namespace wfregs
