// Schedulers and nondeterminism choosers for scheduler-driven runs (as
// opposed to exhaustive exploration, which drives the engine directly).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "wfregs/runtime/engine.hpp"

namespace wfregs {

/// Picks which runnable process takes the next step.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// `runnable` is non-empty and sorted ascending.
  virtual ProcId pick(const Engine& engine,
                      const std::vector<ProcId>& runnable) = 0;
};

/// Resolves nondeterministic base-object transitions.
class Chooser {
 public:
  virtual ~Chooser() = default;
  /// Returns a value in [0, n).
  virtual int pick(int n) = 0;
};

/// Cycles through processes in id order, skipping finished ones.
class RoundRobinScheduler final : public Scheduler {
 public:
  ProcId pick(const Engine& engine,
              const std::vector<ProcId>& runnable) override;

 private:
  ProcId last_ = -1;
};

/// Uniform random scheduling, deterministic in the seed.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  ProcId pick(const Engine& engine,
              const std::vector<ProcId>& runnable) override;

 private:
  std::mt19937_64 rng_;
};

/// Always takes the first transition (adequate for deterministic systems).
class FirstChooser final : public Chooser {
 public:
  int pick(int n) override;
};

/// Uniform random transition choice, deterministic in the seed.
class RandomChooser final : public Chooser {
 public:
  explicit RandomChooser(std::uint64_t seed) : rng_(seed) {}
  int pick(int n) override;

 private:
  std::mt19937_64 rng_;
};

/// A contention-seeking adversary: schedules a process whose pending access
/// races with another process on the same object whenever such a pair
/// exists (alternating within the racing pair), falling back to the
/// least-advanced process otherwise.  A deterministic stress heuristic --
/// exhaustive exploration remains the ground truth for correctness; this
/// scheduler exists to make single runs (benches, fuzzing) hit the
/// interesting interleavings more often than uniform randomness does.
class AdversarialScheduler final : public Scheduler {
 public:
  ProcId pick(const Engine& engine,
              const std::vector<ProcId>& runnable) override;

 private:
  ProcId last_ = -1;
  std::vector<std::size_t> steps_;
};

/// Replays a fixed process sequence (useful for regression-pinning a
/// specific schedule); throws std::out_of_range when the sequence is
/// exhausted or names a finished process.
class ReplayScheduler final : public Scheduler {
 public:
  explicit ReplayScheduler(std::vector<ProcId> sequence)
      : sequence_(std::move(sequence)) {}
  ProcId pick(const Engine& engine,
              const std::vector<ProcId>& runnable) override;

 private:
  std::vector<ProcId> sequence_;
  std::size_t next_ = 0;
};

/// Runs the engine under the given scheduler/chooser until every process
/// finishes or `max_steps` commits have happened.  Returns true when all
/// processes finished.
bool run_to_completion(Engine& engine, Scheduler& scheduler, Chooser& chooser,
                       std::size_t max_steps = 1000000);

}  // namespace wfregs
