// Static structure of a simulated shared-memory system: the flattened set of
// base objects, the implemented (virtual) objects layered over them, and the
// top-level program each process runs.
//
// Flattening: implemented objects declared with nested inner implementations
// are expanded recursively so that every base object occupies one global
// slot; programs address objects through per-frame environments of
// (object id, port) handles, so no program ever needs rewriting.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "wfregs/runtime/implementation.hpp"
#include "wfregs/runtime/program.hpp"
#include "wfregs/typesys/compiled_type.hpp"
#include "wfregs/typesys/type_spec.hpp"

namespace wfregs {

using ProcId = int;
using ObjectId = int;

/// A reference to an object as seen from one port: which global object, and
/// which of its ports the holder occupies.
struct Handle {
  ObjectId gid = -1;
  PortId port = -1;

  friend bool operator==(const Handle&, const Handle&) = default;
};

/// Immutable system description; the Engine holds the mutable state.
class System {
 public:
  explicit System(int num_processes);

  /// Adds a top-level base object.  port_of_process[p] is the port process p
  /// occupies (kNoPort when p never accesses it).  Returns the object id.
  ObjectId add_base(std::shared_ptr<const TypeSpec> spec, StateId initial,
                    std::vector<PortId> port_of_process);

  /// Adds a top-level implemented object, recursively instantiating its
  /// inner objects.  Returns the id of the implemented object itself.
  ObjectId add_implemented(std::shared_ptr<const Implementation> impl,
                           std::vector<PortId> port_of_process);

  /// Sets process p's top-level program.  env lists the object ids the
  /// program's slots refer to; each must have been added with a port for p.
  void set_toplevel(ProcId p, ProgramRef code, std::vector<ObjectId> env);

  // ---- queries (used by the engine) --------------------------------------

  int num_processes() const { return num_processes_; }
  int num_objects() const { return static_cast<int>(objects_.size()); }

  struct BaseObject {
    std::shared_ptr<const TypeSpec> spec;
    StateId initial = 0;
    /// Compiled form of `spec` (see compiled_type.hpp): the engine's hot
    /// path reads delta through this.  Built once per distinct spec when
    /// the object is added; never null.
    std::shared_ptr<const CompiledType> compiled;
  };
  struct VirtualObject {
    std::shared_ptr<const Implementation> impl;
    std::vector<ObjectId> inner;  ///< global ids of the impl's inner objects
  };

  bool is_base(ObjectId g) const;
  const BaseObject& base(ObjectId g) const;
  const VirtualObject& virt(ObjectId g) const;

  /// Number of base objects (for state vectors and access counters).  Base
  /// and virtual objects share the id space; use is_base() to discriminate.
  int num_base_objects() const { return num_base_; }

  const ProgramRef& toplevel_program(ProcId p) const;
  /// Handles (object id + port) for process p's top-level environment.
  const std::vector<Handle>& toplevel_env(ProcId p) const;

  /// Port process p holds on top-level object g (kNoPort if none).
  PortId top_port(ObjectId g, ProcId p) const;

  /// Where an object sits in the declaration tree: the top-level object it
  /// belongs to, and the chain of inner-object slot indices leading to it
  /// (empty for top-level objects themselves).  This is how the Section 4.2
  /// bound computation and the Theorem 5 transform relate explorer object
  /// ids back to Implementation declarations.
  struct Placement {
    ObjectId top = -1;
    std::vector<int> path;
  };
  const Placement& placement(ObjectId g) const;
  /// Inverse lookup: the object id at `path` under top-level object `top`.
  ObjectId resolve(ObjectId top, std::span<const int> path) const;

 private:
  ObjectId instantiate(const ObjectDecl& decl, std::vector<int>& path,
                       std::vector<std::pair<ObjectId, std::vector<int>>>&
                           collected);
  void check_proc(ProcId p) const;
  /// Compiles `spec` or returns the cached result: constructions like the
  /// register-elimination pipelines add hundreds of base objects sharing a
  /// handful of specs, and one CompiledType serves them all.
  std::shared_ptr<const CompiledType> compiled_for(const TypeSpec& spec);

  int num_processes_ = 0;
  int num_base_ = 0;
  std::vector<std::variant<BaseObject, VirtualObject>> objects_;
  /// top_ports_[g][p]: port of process p on top-level object g (empty vector
  /// for inner objects, which are never addressed from top level).
  std::vector<std::vector<PortId>> top_ports_;
  std::vector<ProgramRef> toplevel_;
  std::vector<std::vector<Handle>> toplevel_env_;
  std::vector<Placement> placements_;
  /// Cache for compiled_for, keyed by spec identity (the spec shared_ptrs
  /// in objects_ keep the keys alive).
  std::vector<std::pair<const TypeSpec*, std::shared_ptr<const CompiledType>>>
      compiled_cache_;
};

}  // namespace wfregs
