// Exhaustive schedule exploration: the proof engine of this library.
//
// The explorer enumerates every interleaving of process steps and every
// nondeterministic object transition from a root configuration, memoizing on
// configuration keys.  It realizes, executably, the execution trees of
// Section 4.2 of the paper:
//
//   * nodes are configurations (object states + process program states);
//   * an edge is one low-level (base-object) access by one process;
//   * wait-freedom corresponds to all trees being finite, which the explorer
//     decides by cycle detection (a configuration revisited along the
//     current path yields an infinite execution, contradicting wait-freedom
//     exactly as in the paper's Koenig's-lemma argument);
//   * the depth D of the tree (longest root-to-leaf path) and per-object
//     access bounds are computed by longest-path dynamic programming over
//     the (memoized) configuration DAG.
//
// A user-supplied TerminalCheck validates each terminal configuration (all
// processes finished): e.g. consensus agreement/validity, or history
// linearizability.
//
// MEMOIZATION CONTRACT: the explorer identifies configurations by
// ConfigKey, which covers object states and process program states but NOT
// the history (a path property).  A TerminalCheck that inspects the history
// is therefore only exhaustive if every datum it depends on is reflected in
// process state -- drivers must fold operation responses into their local
// registers / return values (verify_linearizable and verify_regular do
// exactly this).  Checks that read only process results (e.g. consensus
// agreement) are always safe: results are part of the configuration.
//
// PARALLEL EXPLORATION (explore_parallel) extends the contract:
//
//   * The memo table is a single lock-free interner (CAS slot reservation,
//     two-phase publication -- wfregs/concurrent/interner.hpp); the
//     frontier is a set of Chase-Lev work-stealing deques (owner push/pop
//     wait-free, steals lock-free -- wfregs/concurrent/ws_deque.hpp); and
//     per-worker statistics flow through a wait-free atomic-snapshot
//     aggregator (wfregs/concurrent/snapshot.hpp).  Subtrees of the
//     configuration DAG are claimed by whichever worker first publishes the
//     configuration, so its terminal check runs on that worker -- the
//     TerminalCheck must be safe to invoke concurrently (all checks in this
//     library capture only const data).  The prior mutex-striped engine is
//     retained verbatim as explore_parallel_locked for differential testing
//     and contention benchmarking.
//   * DETERMINISM GUARANTEE: whenever discovery runs to completion (limits
//     not hit, and no early stop -- i.e. no violation exists or
//     stop_at_violation is false), the outcome is BIT-IDENTICAL to
//     explore(): a single-threaded post-pass replays the sequential DFS
//     over the discovered DAG in its canonical edge order, so configs,
//     edges, terminals, depth, access bounds, the wait-freedom verdict, the
//     cycle-abort point and the identity of the first-reported violation
//     all match the sequential explorer exactly, at any thread count.
//   * Under an early abort (stop_at_violation with a violating terminal, or
//     a limit hit), flags match the sequential explorer (violation present
//     / complete == false) but the counters are nondeterministic lower
//     bounds, and the reported violation may be a different-but-valid first
//     violation: whichever worker's subtree surfaced one first.  Violation
//     *presence* is still deterministic for contract-compliant checks,
//     because failure is then a function of the configuration alone.
//   * Because a terminal is checked on the first path that reaches it,
//     history-derived violation MESSAGE TEXT (not presence) may describe a
//     different path than the sequential explorer's.
//
// REDUCTION (ExploreOptions::reduction) prunes the exploration without
// changing any verdict (see reduction.hpp for the machinery and the
// soundness argument):
//
//   * kNone is bit-identical to the historical explorer -- same code path,
//     same counters, same messages.
//   * kSleep applies sleep-set partial-order reduction: nodes become
//     (configuration, sleep mask) pairs, memoized and cycle-checked
//     exactly; wait-freedom, violation presence, depth and access bounds
//     are preserved, while configs / edges / terminals count the REDUCED
//     node graph (that shrinkage is the point -- the counters of a reduced
//     run are comparable only to other runs at the same reduction).
//   * kSleepSymmetry additionally canonicalizes every node to the minimal
//     representative of its process-symmetry orbit.  The engine a
//     TerminalCheck sees is then a renamed -- but real and reachable --
//     execution, so checks must not name specific processes (all checks in
//     this library are renaming-invariant).
//   * Reduced runs are deterministic at any thread count: sequential and
//     parallel reduced explorations build the same node graph and report
//     identical stats (the parallel post-pass replays it canonically).
//   * Under an early abort (stop_at_violation, limit hits) reduced counters
//     are, as in the unreduced parallel case, valid lower bounds of the
//     completed reduced run's counters.
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "wfregs/concurrent/contention.hpp"
#include "wfregs/runtime/engine.hpp"
#include "wfregs/runtime/reduction.hpp"
#include "wfregs/storage/options.hpp"

namespace wfregs {

struct ExploreLimits {
  /// Bail out after this many distinct configurations.
  std::size_t max_configs = 2000000;
  /// Bail out on any path longer than this (guards against implementations
  /// whose local state diverges without ever repeating a configuration).
  int max_depth = 20000;
  /// When true, compute per-base-object access bounds (costs memory
  /// proportional to configs * objects).
  bool track_access_bounds = false;
  /// When true, stop at the first terminal-check violation.
  bool stop_at_violation = true;
  /// Cooperative cancellation: when non-null, the explorers poll this flag
  /// at every node entry and abort (complete = false, like a limit hit) once
  /// it reads true.  The pointee must outlive the exploration.  Deadline-
  /// and shutdown-driven cancellation in the service layer sets this from
  /// another thread; a relaxed load per node keeps the null case free.
  const std::atomic<bool>* cancel = nullptr;
};

struct ExploreStats {
  std::size_t configs = 0;  ///< distinct configurations visited
  std::size_t edges = 0;    ///< steps examined (including re-derived ones)
  std::size_t terminals = 0;
  /// Distinct keys held by the memo table when the exploration returned --
  /// the intern pool's occupancy.  Always equals configs (every counted
  /// configuration is interned exactly once); reported separately so the
  /// bench layer can cross-check the arena bookkeeping.
  std::size_t interned_configs = 0;
  /// Longest root-to-leaf path: the Section 4.2 depth d of this tree.
  int depth = 0;
  /// max_accesses[g]: maximum, over all executions, of the number of
  /// accesses to base object g (empty unless track_access_bounds).
  std::vector<std::size_t> max_accesses;
  /// max_accesses_by_inv[g][i]: maximum, over all executions, of the number
  /// of invocations of i on base object g (empty unless
  /// track_access_bounds; empty inner vectors for non-base ids).  Note that
  /// per-invocation maxima are attained on possibly different executions,
  /// so their sum may exceed max_accesses[g].
  std::vector<std::vector<std::size_t>> max_accesses_by_inv;
};

/// How hard the lock-free primitives had to fight during a parallel run
/// (all zero for sequential explorations): failed interner CAS
/// reservations, deque steal attempts / successful steals, and invalidated
/// snapshot collects.  Purely observational -- never part of any
/// determinism contract (contention IS the nondeterminism being measured).
using ContentionStats = concurrent::ContentionCounters;

struct ExploreOutcome {
  /// False when a configuration cycle was found (some execution runs
  /// forever: the implementation is not wait-free).
  bool wait_free = true;
  /// False when limits were hit; all other fields are then lower bounds.
  bool complete = true;
  /// First terminal-check failure, if any.
  std::optional<std::string> violation;
  ExploreStats stats;
  ContentionStats contention;
  /// Out-of-core observability (never part of any bit-identity contract --
  /// a resumed run matches an uninterrupted one on every field above):
  /// `resumed` reports that this run restored state from a checkpoint, and
  /// `checkpointed` that an incomplete run left a resumable checkpoint on
  /// disk (the scheduler marks such verdicts with Provenance::kPartial).
  bool resumed = false;
  bool checkpointed = false;
};

/// Returns an error description when the terminal configuration is invalid.
using TerminalCheck =
    std::function<std::optional<std::string>(const Engine&)>;

/// Exploration limits plus the reduction mode (see REDUCTION above).
struct ExploreOptions {
  ExploreLimits limits;
  Reduction reduction = Reduction::kNone;
  /// Optional refined independence table (e.g. from
  /// analysis::refined_independence); must cover every base object of the
  /// explored system and outlive the exploration.  nullptr = the explorer
  /// builds the TypeSpec baseline itself.  Ignored under kNone.
  const IndependenceTable* independence = nullptr;
  /// Out-of-core storage: memory budget + spill directory for the interned
  /// configuration store, and crash-safe checkpoint/resume of the
  /// exploration frontier (see wfregs/storage/options.hpp).  When
  /// storage.enabled(), every explore entry point routes to the
  /// storage-backed engine (src/runtime/explorer_ooc.cpp), which is
  /// bit-identical to explore() in every mode -- parallel entry points
  /// included, since their contract is already "identical to sequential".
  storage::StorageOptions storage{};
};

/// Explores all executions from `root`.  The root engine is copied, never
/// mutated.
ExploreOutcome explore(const Engine& root, const ExploreLimits& limits = {},
                       const TerminalCheck& check = {});

/// As above, with a reduction mode.  options.reduction == kNone is
/// bit-identical to explore(root, options.limits, check).
ExploreOutcome explore(const Engine& root, const ExploreOptions& options,
                       const TerminalCheck& check = {});

/// The pre-compiled-core reference explorer: copy-the-engine-to-branch DFS
/// over a std::unordered_map memo, kept verbatim for differential testing
/// and the E12 speedup measurement.  Produces bit-identical ExploreOutcomes
/// to explore() in every mode; new code should always call explore().
ExploreOutcome explore_legacy(const Engine& root,
                              const ExploreOptions& options,
                              const TerminalCheck& check = {});

/// Explores all executions from `root` on `n_threads` workers over the
/// lock-free memo table and work-stealing frontier (see PARALLEL
/// EXPLORATION above for the determinism guarantee).  `n_threads` == 0
/// picks std::thread::hardware_concurrency(); 1 is the exact sequential
/// legacy path (explore() itself).  `check` must be safe to invoke
/// concurrently.
ExploreOutcome explore_parallel(const Engine& root,
                                const TerminalCheck& check = {},
                                const ExploreLimits& limits = {},
                                int n_threads = 0);

/// As above, with a reduction mode: sleep-set pruning is applied as a
/// claim-time filter on the work-stealing frontier, and node identities are
/// canonicalized before claiming, so the reduced node graph -- and, when
/// discovery completes, every counter -- matches the sequential reduced
/// explorer at any thread count.
ExploreOutcome explore_parallel(const Engine& root, const TerminalCheck& check,
                                const ExploreOptions& options,
                                int n_threads = 0);

/// The lock-free parallel engine itself, without the threads == 1 ->
/// explore() dispatch: runs the full discovery + canonical-replay machinery
/// at ANY n_threads >= 1 (0 still picks hardware concurrency).  This is
/// what explore_parallel calls for n_threads != 1; it is exposed so the
/// contention bench can measure the machinery's single-thread overhead
/// against explore_parallel_locked under the same harness.
ExploreOutcome explore_parallel_lockfree(const Engine& root,
                                         const TerminalCheck& check,
                                         const ExploreOptions& options,
                                         int n_threads = 0);

/// The prior mutex-based parallel engine (64-way lock-striped memo shards,
/// mutexed per-worker frontier deques), retained verbatim: the differential
/// reference for the lock-free engine and the baseline of the E17
/// contention bench.  Same outcome contract as explore_parallel_lockfree;
/// runs its machinery at any n_threads >= 1.  New code should call
/// explore_parallel.
ExploreOutcome explore_parallel_locked(const Engine& root,
                                       const TerminalCheck& check,
                                       const ExploreOptions& options,
                                       int n_threads = 0);

/// A static decision about a consensus job: produced by a
/// VerifyOptions::static_consensus hook when theory already settles the
/// question, letting check_consensus skip exploration entirely.  The hook
/// vouches for every field: `solves` and `wait_free` must hold over ALL
/// schedules (the standard hook, analysis::static_consensus_decider(), only
/// ever refutes -- a sound upper bound proves no protocol exists, while no
/// static argument can certify that a particular implementation is correct).
struct StaticConsensusDecision {
  bool solves = false;
  bool wait_free = true;
  /// Human-readable justification (the rules that fired), surfaced as the
  /// verification detail.
  std::string detail;
};

/// Options shared by the end-to-end verifiers (verify_linearizable,
/// verify_regular, check_consensus): exploration limits plus the explorer
/// thread count.
struct VerifyOptions {
  ExploreLimits limits;
  /// Explorer worker threads: 0 = hardware concurrency, 1 = the exact
  /// sequential legacy path.
  int threads = 0;
  /// Optional fail-fast hook run on the implementation before any
  /// exploration: return an error description to abort the verification
  /// immediately (reported as a failure with that detail), nullopt to
  /// proceed.  analysis::static_precheck() supplies the standard hook
  /// (wfregs-lint's discipline passes); kept as a std::function so the
  /// runtime layer stays independent of the analysis library.
  std::function<std::optional<std::string>(const Implementation&)>
      static_precheck;
  /// Optional static consensus decider, run by check_consensus after the
  /// precheck and before any exploration: return a StaticConsensusDecision
  /// to answer the job without exploring (the result is marked
  /// static_decision = true), nullopt to fall through to exploration.
  /// analysis::static_consensus_decider() supplies the standard hook (the
  /// certified consensus-power classifier); ignored by the linearizability
  /// and regularity verifiers.
  std::function<std::optional<StaticConsensusDecision>(const Implementation&)>
      static_consensus;
  /// Reduction mode for every exploration the verifier runs (see REDUCTION
  /// above); kNone preserves historical behaviour bit for bit.
  Reduction reduction = Reduction::kNone;
  /// Out-of-core storage settings, passed to every exploration the verifier
  /// runs.  Like `threads`, storage is an execution parameter, never job
  /// identity: the service layer does not serialize it into job text.
  /// check_consensus derives a per-root subdirectory of
  /// storage.checkpoint_dir for each input vector it explores.
  storage::StorageOptions storage{};
};

namespace detail {
/// The out-of-core sequential engine behind ExploreOptions::storage:
/// spillable delta-compressed interning plus crash-safe checkpoint/resume.
/// Exposed for the storage test suite; call explore() instead.
ExploreOutcome explore_ooc(const Engine& root, const ExploreOptions& options,
                           const TerminalCheck& check);
}  // namespace detail

}  // namespace wfregs
