// Randomized validation for implementations whose configuration spaces are
// too large to explore exhaustively (deep composed stacks: the full register
// chain, universal-construction towers, Theorem 5 outputs with the uniform
// paper bound).  Samples seeded random schedules and random nondeterministic
// transitions, checking linearizability of every sampled history.
//
// This complements -- never replaces -- verify_linearizable: exhaustive
// checking is the correctness story on small instances; fuzzing is the
// regression net on big ones.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "wfregs/runtime/implementation.hpp"

namespace wfregs {

struct FuzzOptions {
  std::size_t runs = 50;
  std::uint64_t seed = 1;
  std::size_t max_steps_per_run = 1000000;
};

struct FuzzResult {
  bool ok = false;
  std::string detail;       ///< first failing run's description
  std::size_t runs = 0;     ///< runs completed
  std::size_t total_steps = 0;
};

/// Runs the scenario `scripts` (process p performs scripts[p] on iface port
/// p) under `options.runs` random schedules and checks each history against
/// impl's interface spec.
FuzzResult fuzz_linearizable(std::shared_ptr<const Implementation> impl,
                             const std::vector<std::vector<InvId>>& scripts,
                             const FuzzOptions& options = {});

}  // namespace wfregs
