// Graphviz export of configuration graphs -- the Section 4.2 execution
// trees, drawable.  Nodes are configurations (terminal ones doubled-circled
// and labeled with the processes' results); edges are single base-object
// accesses labeled "p0: test&set -> 1".  Optionally colors nodes by
// consensus valence (bivalent / 0-valent / 1-valent), turning the FLP
// picture into an actual picture.
#pragma once

#include <cstddef>
#include <string>

#include "wfregs/runtime/engine.hpp"

namespace wfregs {

struct DotOptions {
  /// Stop after this many distinct configurations (the graph is for eyes,
  /// not for proofs).
  std::size_t max_configs = 2000;
  /// Color nodes by the set of values decidable from them (treats process
  /// results as consensus decisions).
  bool color_by_valence = false;
};

/// Renders the configuration graph reachable from `root` as a DOT digraph.
std::string export_dot(const Engine& root, const DotOptions& options = {});

}  // namespace wfregs
