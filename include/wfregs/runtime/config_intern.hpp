// Configuration interning: the explorers' memo-table substrate.
//
// A ConfigKey is a short vector of 64-bit words.  The legacy memo tables
// (std::unordered_map<ConfigKey, ...>) paid one heap allocation for the key
// vector plus one for the map node on every distinct configuration, and the
// FNV-1a key hash mixed words weakly (sequential small-integer words --
// exactly what configuration keys are made of -- landed in clustered
// buckets).  This header provides the replacement:
//
//   * config_mix64 / config_hash_words -- a splitmix64-style per-word mixer
//     with full 64-bit avalanche, shared by ConfigKeyHash and the interner
//     so one hash computation serves shard selection, probing and caching;
//   * ConfigInterner -- an arena pool that stores every distinct key's
//     words contiguously and maps each key to a dense u32 id through an
//     open-addressing flat table (power-of-two capacity, linear probing,
//     cached full hashes).  Ids are assigned in insertion order, so the
//     sequential explorer's node ids are deterministic, and per-shard ids
//     in the parallel table are stable for the lifetime of the shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "wfregs/concurrent/hash.hpp"

namespace wfregs {

/// splitmix64 finalizer: a bijective full-avalanche 64-bit mixer.  The
/// canonical definition is concurrent::mix64 (wfregs/concurrent/hash.hpp);
/// these names are kept as thin aliases so the runtime layer's historical
/// call sites -- and any hash value ever persisted by them -- stay exactly
/// what they were.
constexpr std::uint64_t config_mix64(std::uint64_t x) noexcept {
  return concurrent::mix64(x);
}

/// Hash of a word sequence (alias of concurrent::hash_words): every word is
/// mixed through config_mix64 before entering the chain, so single-bit and
/// small-integer differences anywhere in the key avalanche across the whole
/// output.
constexpr std::uint64_t config_hash_words(
    std::span<const std::uint64_t> words) noexcept {
  return concurrent::hash_words(words);
}

/// Arena-pooled key -> dense id map (see the header comment).  Not
/// thread-safe; the parallel explorer wraps one per locked shard.
class ConfigInterner {
 public:
  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  ConfigInterner();

  /// Id of `words` (whose hash is `hash`), or kNotFound.
  std::uint32_t find(std::span<const std::uint64_t> words,
                     std::uint64_t hash) const noexcept;

  /// Id of `words`, inserting when absent.  New ids are dense and assigned
  /// in insertion order: the n-th distinct key gets id n-1.
  std::uint32_t intern(std::span<const std::uint64_t> words,
                       std::uint64_t hash);

  /// Number of distinct keys interned.
  std::size_t size() const { return starts_.size() - 1; }

  /// The words of key `id` (valid until the next intern()).
  std::span<const std::uint64_t> operator[](std::uint32_t id) const {
    const std::size_t b = starts_[id];
    return {arena_.data() + b, starts_[id + 1] - b};
  }

  /// Bytes held by the arena, offsets, hash cache and probe table --
  /// the bench layer's memory accounting.
  std::size_t memory_bytes() const;

 private:
  void grow();

  /// All interned keys' words, concatenated in id order.
  std::vector<std::uint64_t> arena_;
  /// starts_[id] .. starts_[id+1]: key id's slice of arena_ (sentinel last).
  std::vector<std::size_t> starts_;
  /// Cached full hash per id (rehash-free growth, cheap probe rejection).
  std::vector<std::uint64_t> hashes_;
  /// Open-addressing probe table of id+1 values (0 = empty slot);
  /// power-of-two size, linear probing.
  std::vector<std::uint32_t> slots_;
  std::size_t mask_ = 0;
};

}  // namespace wfregs
