// Tests for the job scheduler: cache-first admission, in-flight coalescing,
// queue bounds, deadline cancellation, drain semantics (all with an
// injectable gated runner), plus the cache-coherence differential -- cached
// verdicts must be bit-identical to fresh recomputation across the protocol
// zoo and every reduction mode.
#include "wfregs/service/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "wfregs/consensus/protocols.hpp"

namespace wfregs::service {
namespace {

using namespace std::chrono_literals;

/// Distinct real jobs on demand: same implementation, different (key-
/// relevant) exploration limits.
VerifyJob job_number(int n) {
  static const std::shared_ptr<const Implementation> impl =
      consensus::from_test_and_set();
  VerifyJob job;
  job.kind = JobKind::kConsensus;
  job.impl = impl;
  job.options.limits.max_depth = 10000 + n;
  return job;
}

Verdict quick_verdict(int n) {
  Verdict v;
  v.kind = JobKind::kConsensus;
  v.ok = true;
  v.wait_free = true;
  v.complete = true;
  v.stats.configs = static_cast<std::size_t>(n);
  return v;
}

/// A runner whose jobs park until the test releases the gate.
struct GatedRunner {
  std::atomic<bool> release{false};
  std::atomic<int> started{0};

  JobScheduler::Runner runner() {
    return [this](const VerifyJob& job, const std::atomic<bool>& cancel) {
      started.fetch_add(1);
      while (!release.load() && !cancel.load()) {
        std::this_thread::sleep_for(1ms);
      }
      Verdict v = quick_verdict(job.options.limits.max_depth);
      if (cancel.load()) v.complete = false;
      return v;
    };
  }

  void wait_started(int n) {
    while (started.load() < n) std::this_thread::sleep_for(1ms);
  }
};

SchedulerOptions one_worker() {
  SchedulerOptions options;
  options.workers = 1;
  return options;
}

TEST(JobScheduler, ComputesCachesAndHits) {
  JobScheduler sched(one_worker(),
                     [](const VerifyJob& job, const std::atomic<bool>&) {
                       return quick_verdict(job.options.limits.max_depth);
                     });
  const Submitted first = sched.submit(job_number(1));
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(first.result.get() == quick_verdict(10001));

  const Submitted again = sched.submit(job_number(1));
  EXPECT_TRUE(again.cached);
  EXPECT_FALSE(again.coalesced);
  EXPECT_TRUE(again.result.get() == quick_verdict(10001));

  const Metrics m = sched.metrics();
  EXPECT_EQ(m.submitted, 2u);
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.cache_misses, 1u);
  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(m.store_records, 1u);

  const auto status = sched.poll(first.key);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_TRUE(status->from_cache);
}

TEST(JobScheduler, IdenticalInFlightJobsCoalesce) {
  GatedRunner gate;
  JobScheduler sched(one_worker(), gate.runner());
  const Submitted a = sched.submit(job_number(1));
  gate.wait_started(1);
  const Submitted b = sched.submit(job_number(1));  // identical, running
  const Submitted c = sched.submit(job_number(2));  // different, queued
  const Submitted d = sched.submit(job_number(2));  // identical, queued
  EXPECT_FALSE(a.coalesced);
  EXPECT_TRUE(b.coalesced);
  EXPECT_FALSE(c.coalesced);
  EXPECT_TRUE(d.coalesced);
  EXPECT_TRUE(b.key == a.key);
  gate.release.store(true);
  EXPECT_TRUE(a.result.get() == b.result.get());
  EXPECT_TRUE(c.result.get() == d.result.get());
  const Metrics m = sched.metrics();
  EXPECT_EQ(m.coalesced, 2u);
  // Only two computations ever ran.
  EXPECT_EQ(m.cache_misses, 2u);
  EXPECT_EQ(gate.started.load(), 2);
}

TEST(JobScheduler, BoundedQueueRejectsOverflow) {
  GatedRunner gate;
  SchedulerOptions options = one_worker();
  options.queue_capacity = 1;
  JobScheduler sched(options, gate.runner());
  sched.submit(job_number(1));
  gate.wait_started(1);        // worker busy
  sched.submit(job_number(2));  // fills the queue
  const Submitted rejected = sched.try_submit(job_number(3));
  EXPECT_TRUE(rejected.rejected);
  EXPECT_THROW(sched.submit(job_number(4)), std::runtime_error);
  const Metrics m = sched.metrics();
  EXPECT_EQ(m.rejected, 2u);
  EXPECT_EQ(m.queue_depth, 1u);
  EXPECT_EQ(m.in_flight, 1u);
  gate.release.store(true);
}

TEST(JobScheduler, DeadlineCancelsAndNeverCaches) {
  GatedRunner gate;  // never released: only the deadline can end the job
  SchedulerOptions options = one_worker();
  options.default_deadline = 30ms;
  JobScheduler sched(options, gate.runner());
  const Submitted s = sched.submit(job_number(1));
  const Verdict v = s.result.get();
  EXPECT_FALSE(v.complete);
  EXPECT_EQ(sched.metrics().cancelled, 1u);
  EXPECT_FALSE(sched.lookup(s.key).has_value());  // not cached
  const auto status = sched.poll(s.key);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kCancelled);
  // A resubmission really recomputes (and, released, completes and caches).
  gate.release.store(true);
  const Submitted again = sched.submit(job_number(1));
  EXPECT_FALSE(again.cached);
  EXPECT_TRUE(again.result.get().complete);
  EXPECT_TRUE(sched.lookup(s.key).has_value());
}

TEST(JobScheduler, IncompleteVerdictsAreReportedButNotCached) {
  JobScheduler sched(one_worker(),
                     [](const VerifyJob& job, const std::atomic<bool>&) {
                       Verdict v = quick_verdict(job.options.limits.max_depth);
                       v.complete = false;  // limit hit
                       return v;
                     });
  const Submitted s = sched.submit(job_number(1));
  EXPECT_FALSE(s.result.get().complete);
  EXPECT_FALSE(sched.lookup(s.key).has_value());
  const auto status = sched.poll(s.key);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_FALSE(status->from_cache);
  // Identical resubmission misses the cache and recomputes.
  const Submitted again = sched.submit(job_number(1));
  EXPECT_FALSE(again.cached);
  again.result.wait();
  EXPECT_EQ(sched.metrics().cache_misses, 2u);
}

TEST(JobScheduler, RunnerExceptionsBecomeFailedJobs) {
  JobScheduler sched(one_worker(),
                     [](const VerifyJob&, const std::atomic<bool>&) -> Verdict {
                       throw std::runtime_error("boom");
                     });
  const Submitted s = sched.submit(job_number(1));
  const Verdict v = s.result.get();
  EXPECT_FALSE(v.complete);
  EXPECT_EQ(v.detail, "boom");
  EXPECT_EQ(sched.metrics().failed, 1u);
  const auto status = sched.poll(s.key);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kFailed);
}

TEST(JobScheduler, DrainFinishesEverythingThenRefusesSubmissions) {
  SchedulerOptions options;
  options.workers = 2;
  JobScheduler sched(options,
                     [](const VerifyJob& job, const std::atomic<bool>&) {
                       std::this_thread::sleep_for(2ms);
                       return quick_verdict(job.options.limits.max_depth);
                     });
  std::vector<Submitted> subs;
  for (int n = 0; n < 8; ++n) subs.push_back(sched.submit(job_number(n)));
  sched.drain();
  for (const Submitted& s : subs) {
    EXPECT_TRUE(s.result.get().complete);
  }
  EXPECT_EQ(sched.metrics().completed, 8u);
  EXPECT_EQ(sched.metrics().queue_depth, 0u);
  EXPECT_THROW(sched.submit(job_number(99)), std::runtime_error);
}

TEST(JobScheduler, ShutdownCancelsTheBacklog) {
  GatedRunner gate;  // never released
  JobScheduler sched(one_worker(), gate.runner());
  const Submitted running = sched.submit(job_number(1));
  gate.wait_started(1);
  const Submitted queued = sched.submit(job_number(2));
  sched.shutdown();
  EXPECT_FALSE(running.result.get().complete);
  EXPECT_FALSE(queued.result.get().complete);
  EXPECT_EQ(sched.metrics().cancelled, 2u);
}

TEST(JobScheduler, StatusHistoryIsBoundedWithEvictions) {
  SchedulerOptions options = one_worker();
  options.status_history = 4;
  JobScheduler sched(options,
                     [](const VerifyJob& job, const std::atomic<bool>&) {
                       Verdict v = quick_verdict(job.options.limits.max_depth);
                       v.complete = false;  // uncacheable: lands in history
                       return v;
                     });
  std::vector<Submitted> subs;
  for (int n = 0; n < 10; ++n) subs.push_back(sched.submit(job_number(n)));
  sched.drain();
  EXPECT_EQ(sched.metrics().evictions, 6u);
  EXPECT_FALSE(sched.poll(subs[0].key).has_value());  // evicted
  EXPECT_TRUE(sched.poll(subs[9].key).has_value());
}

// ---- the cache-coherence differential -------------------------------------

TEST(JobScheduler, CachedVerdictsAreBitIdenticalToFreshRecomputation) {
  const std::string store =
      ::testing::TempDir() + "wfregs_sched_coherence_" +
      std::to_string(::getpid()) + ".log";
  std::remove(store.c_str());
  struct Case {
    const char* name;
    std::shared_ptr<const Implementation> impl;
  };
  const std::vector<Case> zoo = {
      {"tas", consensus::from_test_and_set()},
      {"queue", consensus::from_queue()},
      {"faa", consensus::from_fetch_and_add()},
  };
  const JobScheduler::Runner fresh = JobScheduler::default_runner(1);
  const std::atomic<bool> no_cancel{false};

  SchedulerOptions options = one_worker();
  options.store_path = store;
  JobScheduler sched(options);  // the real default runner
  for (const Case& c : zoo) {
    for (const Reduction r : {Reduction::kNone, Reduction::kSleep,
                              Reduction::kSleepSymmetry}) {
      VerifyJob job;
      job.kind = JobKind::kConsensus;
      job.impl = c.impl;
      job.options.reduction = r;
      const Submitted cold = sched.submit(job);
      EXPECT_FALSE(cold.cached) << c.name;
      const Verdict computed = cold.result.get();
      EXPECT_TRUE(computed.ok) << c.name;

      const Submitted warm = sched.submit(job);
      EXPECT_TRUE(warm.cached) << c.name;
      const Verdict cached = warm.result.get();
      const Verdict recomputed = fresh(job, no_cancel);
      EXPECT_TRUE(encode_verdict(cached) == encode_verdict(recomputed))
          << c.name << " reduction " << static_cast<int>(r);
      // Thread count is not part of the key, so the parallel explorer must
      // land on the same cached verdict (determinism contract).
      const Verdict parallel = JobScheduler::default_runner(2)(job, no_cancel);
      EXPECT_TRUE(encode_verdict(cached) == encode_verdict(parallel))
          << c.name << " reduction " << static_cast<int>(r);
    }
  }
  std::remove(store.c_str());
}

TEST(JobScheduler, StaticPowerJobsSkipExplorationButKeepTheDecision) {
  const std::string store =
      ::testing::TempDir() + "wfregs_sched_static_" +
      std::to_string(::getpid()) + ".log";
  std::remove(store.c_str());
  SchedulerOptions options = one_worker();
  options.store_path = store;
  JobScheduler sched(options);  // the real default runner

  VerifyJob job;
  job.kind = JobKind::kConsensus;
  job.impl = consensus::registers_only_attempt(2);
  job.static_power = true;

  // The flag is part of the job identity: same implementation, different
  // keys, so the static and explored verdicts never alias in the store.
  VerifyJob explored_job = job;
  explored_job.static_power = false;
  EXPECT_FALSE(job_key(job) == job_key(explored_job));

  const Submitted fast = sched.submit(job);
  const Verdict statically = fast.result.get();
  EXPECT_EQ(statically.provenance, Provenance::kStatic);
  EXPECT_FALSE(statically.ok);
  EXPECT_TRUE(statically.wait_free);
  EXPECT_TRUE(statically.complete);
  EXPECT_EQ(statically.stats.configs, 0u);  // no exploration ran
  EXPECT_NE(statically.detail.find("statically refuted"), std::string::npos);
  EXPECT_EQ(sched.metrics().static_decisions, 1u);

  const Submitted slow = sched.submit(explored_job);
  const Verdict explored = slow.result.get();
  EXPECT_EQ(explored.provenance, Provenance::kExplored);
  EXPECT_GT(explored.stats.configs, 0u);
  EXPECT_EQ(sched.metrics().static_decisions, 1u);

  // Same decision either way, and the cached static verdict replays with
  // its provenance intact.
  EXPECT_EQ(encode_verdict(decision_projection(statically)),
            encode_verdict(decision_projection(explored)));
  const Submitted warm = sched.submit(job);
  EXPECT_TRUE(warm.cached);
  EXPECT_TRUE(warm.result.get() == statically);
  EXPECT_EQ(sched.metrics().static_decisions, 1u);  // cache hit, no re-decide

  // A static-power job the decider declines (strong base objects) falls
  // back to full exploration and reports it honestly.
  VerifyJob strong;
  strong.kind = JobKind::kConsensus;
  strong.impl = consensus::from_test_and_set();
  strong.static_power = true;
  const Verdict fallback = sched.submit(strong).result.get();
  EXPECT_EQ(fallback.provenance, Provenance::kExplored);
  EXPECT_TRUE(fallback.ok);
  EXPECT_GT(fallback.stats.configs, 0u);
  std::remove(store.c_str());
}

// ---- out-of-core checkpoint/resume through the scheduler -------------------

TEST(JobScheduler, DeadlineLeavesAPartialCheckpointAndResubmissionResumes) {
  const std::string root = ::testing::TempDir() + "wfregs_sched_ooc_" +
                           std::to_string(::getpid());
  std::filesystem::remove_all(root);

  // from_cas_ids(4) out of core (64 KiB segments, 256 KiB budget,
  // checkpoint every 64 configs) takes well over 100 ms end to end, so a
  // 25 ms deadline reliably interrupts the first run even on a much faster
  // machine.
  VerifyJob job;
  job.kind = JobKind::kConsensus;
  job.impl = consensus::from_cas_ids(4);

  SchedulerOptions options = one_worker();
  options.storage.memory_budget_bytes = 256 * 1024;
  options.storage.arena_segment_bytes = 64 * 1024;
  options.storage.checkpoint_dir = root;
  options.storage.checkpoint_every_configs = 64;
  const JobKey key = job_key(job);
  const std::string job_dir = root + "/" + job_key_hex(key);

  // Phase 1: a deadline'd scheduler cuts the job mid-exploration.  The
  // verdict must say "partial, resumable" and the per-key checkpoint
  // directory must hold the banked progress.
  {
    SchedulerOptions deadline_options = options;
    deadline_options.default_deadline = 25ms;
    JobScheduler sched(deadline_options);  // the real default runner
    const Submitted s = sched.submit(job);
    const Verdict v = s.result.get();
    ASSERT_FALSE(v.complete)
        << "25 ms deadline did not interrupt the job; the workload is too "
           "small for this machine";
    EXPECT_TRUE(v.checkpointed);
    EXPECT_EQ(v.provenance, Provenance::kPartial);
    EXPECT_TRUE(std::filesystem::exists(job_dir));
    EXPECT_FALSE(sched.lookup(key).has_value());  // partials never cached
    const auto status = sched.poll(key);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::kCancelled);
    EXPECT_EQ(status->verdict.provenance, Provenance::kPartial);
    const Metrics m = sched.metrics();
    EXPECT_EQ(m.cancelled, 1u);
    EXPECT_EQ(m.partial_checkpoints, 1u);
    EXPECT_EQ(m.completed, 0u);
  }

  // Phase 2: a scheduler without a deadline sees the same checkpoint root;
  // resubmitting the same key resumes the banked roots instead of starting
  // over, completes, and retires the per-job directory.
  {
    JobScheduler sched(options);
    const Submitted s = sched.submit(job);
    EXPECT_TRUE(s.key == key);
    const Verdict v = s.result.get();
    EXPECT_TRUE(v.complete);
    EXPECT_TRUE(v.ok);
    EXPECT_TRUE(v.resumed);
    EXPECT_EQ(v.provenance, Provenance::kExplored);

    // The cached verdict is byte-identical to an uninterrupted in-core
    // run: resume replays the same traversal, and the transient resumed /
    // checkpointed markers are deliberately outside the encoding.
    const std::atomic<bool> no_cancel{false};
    VerifyJob fresh_job = job;  // no storage options: plain in-core run
    const Verdict fresh = JobScheduler::default_runner(1)(fresh_job, no_cancel);
    const std::optional<Verdict> cached = sched.lookup(key);
    ASSERT_TRUE(cached.has_value());
    EXPECT_TRUE(encode_verdict(*cached) == encode_verdict(fresh));

    // Completion retired the per-job checkpoint directory.
    EXPECT_FALSE(std::filesystem::exists(job_dir));
    const Metrics m = sched.metrics();
    EXPECT_EQ(m.completed, 1u);
    EXPECT_EQ(m.resumed_jobs, 1u);
    EXPECT_EQ(m.cancelled, 0u);
  }
  std::filesystem::remove_all(root);
}

TEST(JobScheduler, StaticPowerFlagRoundTripsThroughTheJobText) {
  VerifyJob job;
  job.kind = JobKind::kConsensus;
  job.impl = consensus::registers_only_attempt(2);
  job.static_power = true;
  const std::string text = print_job(job);
  EXPECT_NE(text.find("static-power"), std::string::npos);
  const VerifyJob parsed = parse_job(text);
  EXPECT_TRUE(parsed.static_power);
  EXPECT_TRUE(job_key(parsed) == job_key(job));

  // Unflagged jobs keep their pre-flag text (and so their historical keys).
  job.static_power = false;
  const std::string bare = print_job(job);
  EXPECT_EQ(bare.find("static-power"), std::string::npos);
  EXPECT_FALSE(parse_job(bare).static_power);
}

}  // namespace
}  // namespace wfregs::service
