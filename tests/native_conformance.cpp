// The native conformance lab, as a test suite: every workload runs as real
// concurrent code (std::thread + std::atomic) in both execution modes and
// every recorded history must satisfy the model oracles.  The suite also
// proves the lab's teeth -- the deliberately torn register control IS
// caught, with a seed that replays to the exact same failing history.
//
// Round counts default low so tier-1 stays fast; the CI native-stress job
// raises them through WFREGS_STRESS_ITERS (see .github/workflows/ci.yml).
#include "wfregs/native/conformance.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "wfregs/native/workloads.hpp"

namespace wfregs::native {
namespace {

/// Rounds per (workload, mode) pairing: WFREGS_STRESS_ITERS when set (the
/// CI stress job), else a small default that keeps tier-1 quick.
int stress_rounds(int fallback) {
  if (const char* s = std::getenv("WFREGS_STRESS_ITERS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

/// Runs `name` at `threads` in both free-running and deterministic modes;
/// every history must pass the workload's oracles.
void expect_conforms(const std::string& name, int threads) {
  SCOPED_TRACE(name + " @ " + std::to_string(threads) + " threads");
  const Workload w = make_workload(name, threads, /*ops_per_thread=*/4);
  for (const bool det : {false, true}) {
    ConformanceOptions opts;
    opts.rounds = stress_rounds(det ? 10 : 25);
    opts.ops_per_thread = 4;
    opts.seed = 0xC0FFEE + threads;
    opts.deterministic = det;
    const ConformanceReport r = run_conformance(w, opts);
    EXPECT_TRUE(r.ok()) << describe_failure(r);
    EXPECT_EQ(r.rounds, static_cast<std::size_t>(opts.rounds));
    EXPECT_GT(r.histories_checked, 0u);
    EXPECT_GT(r.ops, 0u);
    EXPECT_GT(r.base_accesses, 0u);
    EXPECT_EQ(r.threads, threads);
    EXPECT_EQ(r.deterministic, det);
  }
}

TEST(NativeConformance, ChainRegister) {
  for (const int threads : {2, 3, 4}) expect_conforms("chain", threads);
}

TEST(NativeConformance, OneUseArrayBit) { expect_conforms("oneuse-array", 2); }

TEST(NativeConformance, SimpsonRegister) { expect_conforms("simpson", 2); }

TEST(NativeConformance, Snapshot) {
  for (const int threads : {2, 3, 4}) expect_conforms("snapshot", threads);
}

TEST(NativeConformance, ShiftRegisterConsensus) {
  for (const int threads : {2, 3, 4}) {
    expect_conforms("shift-register", threads);
  }
}

TEST(NativeConformance, WorkloadListIsClosed) {
  // Every published workload constructs at 2 threads; unknown names throw.
  for (const auto& name : workload_names()) {
    EXPECT_NO_THROW(make_workload(name, 2, 4)) << name;
  }
  EXPECT_THROW(make_workload("no-such-workload", 2, 4),
               std::invalid_argument);
  EXPECT_THROW(make_workload("simpson", 3, 4), std::invalid_argument);
  EXPECT_THROW(make_workload("chain", 9, 4), std::invalid_argument);
}

TEST(NativeConformance, DeterministicRoundsReproduceBitForBit) {
  // Two deterministic runs from the same seed must record the SAME history
  // -- the property --replay depends on.
  const Workload w = make_workload("chain", 3, 4);
  NativeRuntime rt(w.impl);
  NativeOptions opts;
  opts.ops_per_thread = 4;
  opts.seed = 2026;
  opts.deterministic = true;
  const NativeRun a = rt.run(w.pick, opts);
  const NativeRun b = rt.run(w.pick, opts);
  EXPECT_EQ(a.history.to_string(), b.history.to_string());
  EXPECT_EQ(a.base_accesses, b.base_accesses);
  // A different seed explores a different schedule (with overwhelming
  // probability a different history -- ops interleave differently).
  opts.seed = 2027;
  const NativeRun c = rt.run(w.pick, opts);
  EXPECT_EQ(c.history.ops().size(), a.history.ops().size());
}

TEST(NativeConformance, TornRegisterIsCaughtAndReplays) {
  // The control: a 4-valued register whose writes tear across two bit
  // stores.  Deterministic rounds MUST find a torn read, the report names
  // the failing round's seed, and replaying that seed reproduces the exact
  // failing history twice over.
  const Workload w = make_workload("torn-register", 2, 6);
  ConformanceOptions opts;
  opts.rounds = 2000;  // deterministic rounds are cheap; plenty to tear
  opts.ops_per_thread = 6;
  opts.seed = 7;
  opts.deterministic = true;
  const ConformanceReport r = run_conformance(w, opts);
  ASSERT_FALSE(r.ok()) << "torn register was not caught";
  const ConformanceFailure& f = *r.failure;
  EXPECT_EQ(f.seed, round_seed(opts.seed, f.round));

  // The human-readable report carries everything needed to reproduce.
  const std::string report = describe_failure(r);
  EXPECT_NE(report.find(std::to_string(f.seed)), std::string::npos);
  EXPECT_NE(report.find("--replay"), std::string::npos);
  EXPECT_NE(report.find("torn-register"), std::string::npos);
  EXPECT_NE(report.find("deterministic"), std::string::npos);

  // Replay twice: same seed, same schedule, same failing history.
  const ConformanceReport r1 = replay_round(w, opts, f.seed);
  const ConformanceReport r2 = replay_round(w, opts, f.seed);
  ASSERT_FALSE(r1.ok());
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r1.failure->history, f.history);
  EXPECT_EQ(r2.failure->history, f.history);
  EXPECT_EQ(r1.failure->detail, f.detail);
  EXPECT_EQ(r2.failure->detail, f.detail);
}

TEST(NativeConformance, TornRegisterSurvivesShortFreeRuns) {
  // Free-running rounds may or may not hit the window -- both verdicts are
  // legal; what matters is that a failure, when found, is well-formed.
  const Workload w = make_workload("torn-register", 2, 6);
  ConformanceOptions opts;
  opts.rounds = stress_rounds(50);
  opts.ops_per_thread = 6;
  opts.seed = 11;
  const ConformanceReport r = run_conformance(w, opts);
  if (!r.ok()) {
    EXPECT_FALSE(r.failure->detail.empty());
    EXPECT_FALSE(r.failure->history.empty());
    EXPECT_NE(describe_failure(r).find("free-running"), std::string::npos);
  }
}

}  // namespace
}  // namespace wfregs::native
