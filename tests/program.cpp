// Tests for the bytecode program layer: expression evaluation, builder
// validation, and step-machine semantics.
#include "wfregs/runtime/program.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace wfregs {
namespace {

Val eval(const Expr& e, std::vector<Val> regs = {}) { return e.eval(regs); }

TEST(Expr, ArithmeticAndComparisons) {
  EXPECT_EQ(eval(lit(2) + lit(3)), 5);
  EXPECT_EQ(eval(lit(2) - lit(3)), -1);
  EXPECT_EQ(eval(lit(2) * lit(3)), 6);
  EXPECT_EQ(eval(lit(7) / lit(2)), 3);
  EXPECT_EQ(eval(lit(7) % lit(2)), 1);
  EXPECT_EQ(eval(lit(2) == lit(2)), 1);
  EXPECT_EQ(eval(lit(2) == lit(3)), 0);
  EXPECT_EQ(eval(lit(2) != lit(3)), 1);
  EXPECT_EQ(eval(lit(2) < lit(3)), 1);
  EXPECT_EQ(eval(lit(3) <= lit(3)), 1);
  EXPECT_EQ(eval(lit(1) && lit(0)), 0);
  EXPECT_EQ(eval(lit(1) || lit(0)), 1);
  EXPECT_EQ(eval(!lit(0)), 1);
  EXPECT_EQ(eval(!lit(5)), 0);
}

TEST(Expr, RegistersAndComposition) {
  const std::vector<Val> regs{10, 20};
  EXPECT_EQ((reg(0) + reg(1) * lit(2)).eval(regs), 50);
  EXPECT_EQ((reg(0) + reg(1)).max_reg(), 1);
  EXPECT_EQ(lit(3).max_reg(), -1);
}

TEST(Expr, ErrorsOnBadAccess) {
  EXPECT_THROW(Expr::reg(-1), std::invalid_argument);
  EXPECT_THROW((reg(3)).eval({1, 2}), std::out_of_range);
  EXPECT_THROW((lit(1) / lit(0)).eval({}), std::domain_error);
  EXPECT_THROW((lit(1) % lit(0)).eval({}), std::domain_error);
}

TEST(ProgramBuilder, StraightLineProgram) {
  ProgramBuilder b;
  b.assign(0, lit(5));
  b.assign(1, reg(0) * lit(3));
  b.ret(reg(1) + lit(1));
  const auto p = b.build("straight");
  EXPECT_EQ(p->name(), "straight");
  EXPECT_EQ(p->num_regs(), 2);
  Locals l;
  l.regs.resize(2, 0);
  const Action a = p->step(l);
  ASSERT_TRUE(std::holds_alternative<DoReturn>(a));
  EXPECT_EQ(std::get<DoReturn>(a).value, 16);
}

TEST(ProgramBuilder, InvokeSuspendsAndResumes) {
  ProgramBuilder b;
  b.invoke(2, lit(7), 0);
  b.ret(reg(0) + lit(100));
  const auto p = b.build("caller");
  Locals l;
  l.regs.resize(1, 0);
  const Action a = p->step(l);
  ASSERT_TRUE(std::holds_alternative<DoInvoke>(a));
  const auto& inv = std::get<DoInvoke>(a);
  EXPECT_EQ(inv.slot, 2);
  EXPECT_EQ(inv.inv, 7);
  EXPECT_EQ(inv.result_reg, 0);
  // The engine delivers the response by writing the register.
  l.regs[0] = 42;
  const Action a2 = p->step(l);
  ASSERT_TRUE(std::holds_alternative<DoReturn>(a2));
  EXPECT_EQ(std::get<DoReturn>(a2).value, 142);
}

TEST(ProgramBuilder, LoopsViaLabels) {
  // Sum 1..5 without shared accesses.
  ProgramBuilder b;
  b.assign(0, lit(0));  // sum
  b.assign(1, lit(1));  // i
  const Label loop = b.bind_here();
  b.assign(0, reg(0) + reg(1));
  b.assign(1, reg(1) + lit(1));
  b.branch_if(reg(1) <= lit(5), loop);
  b.ret(reg(0));
  const auto p = b.build("sum");
  Locals l;
  l.regs.resize(2, 0);
  const Action a = p->step(l);
  ASSERT_TRUE(std::holds_alternative<DoReturn>(a));
  EXPECT_EQ(std::get<DoReturn>(a).value, 15);
}

TEST(ProgramBuilder, ForwardJumps) {
  ProgramBuilder b;
  const Label skip = b.make_label();
  b.assign(0, lit(1));
  b.jump(skip);
  b.assign(0, lit(99));  // dead code
  b.bind(skip);
  b.ret(reg(0));
  const auto p = b.build("fwd");
  Locals l;
  l.regs.resize(1, 0);
  EXPECT_EQ(std::get<DoReturn>(p->step(l)).value, 1);
}

TEST(ProgramBuilder, ValidationErrors) {
  {
    ProgramBuilder b;
    const Label l = b.make_label();
    b.jump(l);  // never bound
    EXPECT_THROW(b.build("dangling"), std::logic_error);
  }
  {
    ProgramBuilder b;
    b.assign(0, lit(1));  // falls off the end
    EXPECT_THROW(b.build("fallthrough"), std::logic_error);
  }
  {
    ProgramBuilder b;
    EXPECT_THROW(b.build("empty"), std::logic_error);
  }
  {
    ProgramBuilder b;
    const Label l = b.bind_here();
    EXPECT_THROW(b.bind(l), std::logic_error);  // double bind
    EXPECT_THROW(b.bind(Label{99}), std::invalid_argument);
    EXPECT_THROW(b.assign(-1, lit(0)), std::invalid_argument);
    EXPECT_THROW(b.invoke(-1, lit(0), 0), std::invalid_argument);
  }
}

TEST(ProgramBuilder, FailInstructionThrowsItsMessage) {
  ProgramBuilder b;
  b.fail("invariant broken");
  const auto p = b.build("failer");
  Locals l;
  try {
    p->step(l);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("invariant broken"),
              std::string::npos);
  }
}

TEST(ProgramBuilder, InfiniteLocalLoopExhaustsFuel) {
  ProgramBuilder b;
  const Label loop = b.bind_here();
  b.jump(loop);
  const auto p = b.build("spin");
  Locals l;
  EXPECT_THROW(p->step(l), std::runtime_error);
}

TEST(Locals, HashDiffersAcrossPcAndRegs) {
  Locals a;
  a.pc = 1;
  a.regs = {1, 2};
  Locals b = a;
  EXPECT_EQ(locals_hash(a), locals_hash(b));
  b.pc = 2;
  EXPECT_NE(locals_hash(a), locals_hash(b));
  b = a;
  b.regs[1] = 3;
  EXPECT_NE(locals_hash(a), locals_hash(b));
}

}  // namespace
}  // namespace wfregs
