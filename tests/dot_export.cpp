// Tests for the Graphviz configuration-graph export.
#include "wfregs/runtime/dot_export.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using testsup::one_shot;
using testsup::share;

TEST(DotExport, SingleProcessChain) {
  const auto bit = share(zoo::bit_type(1));
  const zoo::RegisterLayout lay{2};
  auto sys = std::make_shared<System>(1);
  const ObjectId b = sys->add_base(bit, 0, {0});
  sys->set_toplevel(0, one_shot("p0", 0, lay.write(1)), {b});
  const Engine root{std::move(sys)};
  const auto dot = export_dot(root);
  EXPECT_NE(dot.find("digraph executions"), std::string::npos);
  EXPECT_NE(dot.find("write(1)->ok"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_EQ(dot.find("triangle"), std::string::npos);  // not truncated
}

TEST(DotExport, ValenceColoringOnConsensusTree) {
  const Engine root{consensus::consensus_scenario(
      consensus::from_test_and_set(), {0, 1})};
  DotOptions options;
  options.color_by_valence = true;
  const auto dot = export_dot(root, options);
  // Mixed inputs: the initial configuration is bivalent (gold) and both
  // univalent colors appear downstream.
  EXPECT_NE(dot.find("gold"), std::string::npos);
  EXPECT_NE(dot.find("lightblue"), std::string::npos);
  EXPECT_NE(dot.find("lightpink"), std::string::npos);
  EXPECT_NE(dot.find("test&set"), std::string::npos);
  EXPECT_NE(dot.find("decide 0 0"), std::string::npos);
  EXPECT_NE(dot.find("decide 1 1"), std::string::npos);
}

TEST(DotExport, TruncationMarksTheCut) {
  const Engine root{consensus::consensus_scenario(
      consensus::from_cas(3), {0, 1, 1})};
  DotOptions options;
  options.max_configs = 5;
  const auto dot = export_dot(root, options);
  EXPECT_NE(dot.find("triangle"), std::string::npos);
}

}  // namespace
}  // namespace wfregs
