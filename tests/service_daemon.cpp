// End-to-end tests for the framed protocol, the in-process daemon +
// client lifecycle, and verdict-store survival across daemon restarts.
#include "wfregs/service/daemon.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>

#include "wfregs/consensus/protocols.hpp"
#include "wfregs/service/client.hpp"
#include "wfregs/service/job.hpp"
#include "wfregs/service/transport.hpp"

namespace wfregs::service {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string job_text(const std::shared_ptr<const Implementation>& impl) {
  VerifyJob job;
  job.kind = JobKind::kConsensus;
  job.impl = impl;
  return print_job(job);
}

/// Unix sockets cap sun_path at ~108 bytes, so keep names short and in /tmp.
std::string socket_path(const std::string& tag) {
  return "/tmp/wfregsd_test_" + tag + "_" + std::to_string(::getpid()) +
         ".sock";
}

TEST(Protocol, FramesRoundTripOverASocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A 1 MiB frame overflows the socket buffer, so the writer needs its own
  // thread (write_frame is intentionally blocking).
  const std::string big(1 << 20, 'x');
  for (const Frame& sent : {Frame{FrameType::kSubmit, "job text"},
                           Frame{FrameType::kStats, ""},
                           Frame{FrameType::kReply, big}}) {
    std::thread writer([&] { write_frame(fds[0], sent); });
    const auto got = read_frame(fds[1]);
    writer.join();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, sent.type);
    EXPECT_EQ(got->payload, sent.payload);
  }
  // Clean EOF at a frame boundary is nullopt, not an error.
  ASSERT_EQ(::close(fds[0]), 0);
  EXPECT_FALSE(read_frame(fds[1]).has_value());
  ::close(fds[1]);
}

TEST(Protocol, MidFrameEofThrows) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char partial[] = {5, 0, 0, 0, 1, 'a'};  // 2 payload bytes cut
  ASSERT_EQ(::write(fds[0], partial, sizeof partial),
            static_cast<ssize_t>(sizeof partial));
  ::close(fds[0]);
  EXPECT_THROW(read_frame(fds[1]), std::runtime_error);
  ::close(fds[1]);
}

TEST(Protocol, OversizedLengthPrefixThrows) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint32_t len = kMaxFrame + 1;
  unsigned char prefix[4] = {
      static_cast<unsigned char>(len), static_cast<unsigned char>(len >> 8),
      static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 24)};
  ASSERT_EQ(::write(fds[0], prefix, 4), 4);
  EXPECT_THROW(read_frame(fds[1]), std::runtime_error);
  ::close(fds[0]);
  ::close(fds[1]);
}

/// Runs a daemon on a background thread for the duration of a test.
struct DaemonFixture {
  explicit DaemonFixture(const std::string& sock,
                         const std::string& store = "") {
    DaemonOptions options;
    options.socket_path = sock;
    options.scheduler.workers = 1;
    options.scheduler.store_path = store;
    daemon = std::make_unique<Daemon>(std::move(options));
    server = std::thread([this] { served = daemon->run(); });
  }
  ~DaemonFixture() {
    if (server.joinable()) {
      daemon->request_stop();
      server.join();
    }
  }

  std::unique_ptr<Daemon> daemon;
  std::thread server;
  std::uint64_t served = 0;
};

TEST(Daemon, SubmitPollStatsShutdownLifecycle) {
  const std::string sock = socket_path("life");
  DaemonFixture fixture(sock);
  Client client(sock);

  const std::string text = job_text(consensus::from_test_and_set());
  const std::string submitted = client.submit(text);
  EXPECT_TRUE(contains(submitted, "\"status\":\"queued\"")) << submitted;
  const std::string key = job_key_hex(job_key(parse_job(text)));
  EXPECT_TRUE(contains(submitted, key)) << submitted;

  const std::string done = client.wait(key);
  EXPECT_TRUE(contains(done, "\"status\":\"done\"")) << done;
  EXPECT_TRUE(contains(done, "\"ok\":true")) << done;

  // Resubmission answers straight from the cache, verdict inline.
  const std::string again = client.submit(text);
  EXPECT_TRUE(contains(again, "\"status\":\"cached\"")) << again;
  EXPECT_TRUE(contains(again, "\"ok\":true")) << again;

  EXPECT_TRUE(contains(client.poll(std::string(32, '0')),
                       "\"status\":\"unknown\""));

  const std::string stats = client.stats();
  EXPECT_TRUE(contains(stats, "\"submitted\":2")) << stats;
  EXPECT_TRUE(contains(stats, "\"cache_hits\":1")) << stats;

  EXPECT_TRUE(contains(client.shutdown(), "draining"));
  fixture.server.join();
  EXPECT_GE(fixture.served, 5u);
}

TEST(Daemon, MalformedJobTextGetsAnErrorReplyNotADrop) {
  const std::string sock = socket_path("err");
  DaemonFixture fixture(sock);
  Client client(sock);
  EXPECT_THROW(client.submit("job nonsense\n"), std::runtime_error);
  // The connection and the daemon both survive the error.
  const std::string text = job_text(consensus::from_test_and_set());
  EXPECT_TRUE(contains(client.submit(text), "\"status\":\"queued\""));
}

TEST(Daemon, RestartServesCachedVerdictsFromThePersistentStore) {
  const std::string sock = socket_path("restart");
  const std::string store = ::testing::TempDir() + "wfregsd_restart_" +
                            std::to_string(::getpid()) + ".log";
  std::remove(store.c_str());
  const std::string text = job_text(consensus::from_queue());
  const std::string key = job_key_hex(job_key(parse_job(text)));
  std::string first_verdict;
  {
    DaemonFixture fixture(sock, store);
    Client client(sock);
    client.submit(text);
    first_verdict = client.wait(key);
    EXPECT_TRUE(contains(first_verdict, "\"status\":\"done\""));
    client.shutdown();
    fixture.server.join();
  }
  {
    DaemonFixture fixture(sock, store);
    Client client(sock);
    const std::string reply = client.submit(text);
    EXPECT_TRUE(contains(reply, "\"status\":\"cached\"")) << reply;
    EXPECT_TRUE(contains(reply, "\"ok\":true")) << reply;
    client.shutdown();
    fixture.server.join();
  }
  std::remove(store.c_str());
}

TEST(Protocol, PackBatchRoundTripsAndValidates) {
  const std::vector<std::string> items = {"", "one", std::string("\x00\xFF", 2),
                                          std::string(100000, 'z')};
  EXPECT_EQ(unpack_batch(pack_batch(items)), items);
  EXPECT_EQ(unpack_batch(pack_batch({})), std::vector<std::string>{});
  // Truncation, impossible counts and trailing garbage all throw.
  const std::string packed = pack_batch({"abc"});
  EXPECT_THROW(unpack_batch(packed.substr(0, packed.size() - 1)),
               std::runtime_error);
  EXPECT_THROW(unpack_batch(packed + "x"), std::runtime_error);
  EXPECT_THROW(unpack_batch(std::string("\xFF\xFF\xFF\xFF", 4)),
               std::runtime_error);
}

TEST(Daemon, PipelinedFramesInOneSendAllGetReplies) {
  // Regression for the poll-loop drain bug: a client writing TWO complete
  // frames in a single send() must receive both replies without another
  // wakeup -- the loop has to dispatch every buffered frame, not one frame
  // per poll cycle.
  const std::string sock = socket_path("pipe");
  DaemonFixture fixture(sock);
  const int fd = connect_endpoint(parse_endpoint(sock));
  std::string two;
  for (int n = 0; n < 2; ++n) {
    const std::uint32_t len = 1;  // type byte only, empty payload
    for (int k = 0; k < 4; ++k) {
      two.push_back(static_cast<char>((len >> (8 * k)) & 0xFF));
    }
    two.push_back(static_cast<char>(FrameType::kStats));
  }
  ASSERT_EQ(::send(fd, two.data(), two.size(), 0),
            static_cast<ssize_t>(two.size()));
  for (int n = 0; n < 2; ++n) {
    const auto reply = read_frame(fd);
    ASSERT_TRUE(reply.has_value()) << "reply " << n << " never arrived";
    EXPECT_EQ(reply->type, FrameType::kReply);
    EXPECT_TRUE(contains(reply->payload, "\"submitted\"")) << reply->payload;
  }
  ::close(fd);
}

TEST(Daemon, ServesTheSameProtocolOverTcp) {
  DaemonOptions options;
  options.tcp = "tcp:127.0.0.1:0";  // ephemeral: no fixed-port races
  options.scheduler.workers = 1;
  Daemon daemon(std::move(options));
  ASSERT_NE(daemon.tcp_port(), 0);
  std::thread server([&daemon] { daemon.run(); });
  Client client("tcp:127.0.0.1:" + std::to_string(daemon.tcp_port()));
  const std::string text = job_text(consensus::from_test_and_set());
  client.submit(text);
  const std::string done =
      client.wait(job_key_hex(job_key(parse_job(text))));
  EXPECT_TRUE(contains(done, "\"status\":\"done\"")) << done;
  EXPECT_TRUE(contains(client.shutdown(), "draining"));
  server.join();
}

TEST(Daemon, BatchSubmitAndPollRoundTripInOrder) {
  const std::string sock = socket_path("batch");
  DaemonFixture fixture(sock);
  Client client(sock);
  const std::string tas = job_text(consensus::from_test_and_set());
  const std::string queue = job_text(consensus::from_queue());
  // One frame pair for the whole batch; replies come back in order.  The
  // duplicate tas entry must NOT queue a second computation: it comes back
  // "coalesced" when the first is still pending, or "cached" if the tiny
  // job already finished by the time the batch reaches the duplicate.
  const std::string submitted = client.submit_batch({tas, queue, tas});
  EXPECT_TRUE(contains(submitted, "\"status\":\"queued\"")) << submitted;
  EXPECT_TRUE(contains(submitted, "\"status\":\"coalesced\"") ||
              contains(submitted, "\"status\":\"cached\""))
      << submitted;
  const std::string tas_key = job_key_hex(job_key(parse_job(tas)));
  const std::string queue_key = job_key_hex(job_key(parse_job(queue)));
  EXPECT_LT(submitted.find(tas_key), submitted.find(queue_key)) << submitted;
  client.wait(tas_key);
  client.wait(queue_key);
  const std::string polled = client.poll_batch({tas_key, queue_key});
  EXPECT_TRUE(contains(polled, "[{")) << polled;
  EXPECT_LT(polled.find(tas_key), polled.find(queue_key)) << polled;
  EXPECT_FALSE(contains(polled, "\"status\":\"queued\"")) << polled;
  EXPECT_FALSE(contains(polled, "\"status\":\"running\"")) << polled;
  client.shutdown();
}

}  // namespace
}  // namespace wfregs::service
