// Exhaustive verification of the consensus protocol zoo: every protocol is
// model-checked over all schedules, all nondeterministic transitions and all
// 2^n input vectors.
#include <gtest/gtest.h>

#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/registers/chain.hpp"

namespace wfregs {
namespace {

using consensus::check_consensus;

TEST(ConsensusProtocols, TestAndSetSolvesTwoProcess) {
  const auto r = check_consensus(consensus::from_test_and_set());
  EXPECT_TRUE(r.solves) << r.detail;
  EXPECT_TRUE(r.wait_free);
  EXPECT_TRUE(r.complete);
  EXPECT_GE(r.depth, 2);
}

TEST(ConsensusProtocols, QueueSolvesTwoProcess) {
  const auto r = check_consensus(consensus::from_queue());
  EXPECT_TRUE(r.solves) << r.detail;
}

TEST(ConsensusProtocols, FetchAndAddSolvesTwoProcess) {
  const auto r = check_consensus(consensus::from_fetch_and_add());
  EXPECT_TRUE(r.solves) << r.detail;
}

class CasSweep : public ::testing::TestWithParam<int> {};

TEST_P(CasSweep, CasSolvesNProcess) {
  const auto r = check_consensus(consensus::from_cas(GetParam()));
  EXPECT_TRUE(r.solves) << r.detail;
}

INSTANTIATE_TEST_SUITE_P(N, CasSweep, ::testing::Values(1, 2, 3, 4));

class StickySweep : public ::testing::TestWithParam<int> {};

TEST_P(StickySweep, StickyBitSolvesNProcess) {
  const auto r = check_consensus(consensus::from_sticky_bit(GetParam()));
  EXPECT_TRUE(r.solves) << r.detail;
}

INSTANTIATE_TEST_SUITE_P(N, StickySweep, ::testing::Values(1, 2, 3, 4));

TEST(ConsensusProtocols, ConsensusObjectForwards) {
  for (int n = 1; n <= 3; ++n) {
    const auto r = check_consensus(consensus::from_consensus_object(n));
    EXPECT_TRUE(r.solves) << "n=" << n << ": " << r.detail;
  }
}

TEST(ConsensusProtocols, CasIdsSolvesWithRegisters) {
  for (int n = 2; n <= 3; ++n) {
    const auto r = check_consensus(consensus::from_cas_ids(n));
    EXPECT_TRUE(r.solves) << "n=" << n << ": " << r.detail;
  }
}

class ShiftRegisterSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShiftRegisterSweep, WidthWSolvesWProcesses) {
  // cons(shift-register of width w) >= w [Aspnes 2025, arXiv 2505.01691]:
  // one w-bit shift register initialized to the marker value 1 solves
  // wait-free w-process consensus, no auxiliary registers needed.
  const int w = GetParam();
  const auto r = check_consensus(consensus::from_shift_register(w));
  EXPECT_TRUE(r.solves) << "w=" << w << ": " << r.detail;
  EXPECT_TRUE(r.wait_free);
  EXPECT_TRUE(r.complete);
}

INSTANTIATE_TEST_SUITE_P(W, ShiftRegisterSweep, ::testing::Values(1, 2, 3, 4));

TEST(ConsensusProtocols, ShiftRegisterOverWidthFailsAgreement) {
  // cons(shift-register of width w) = w exactly: with w+1 processes the
  // marker bit is shifted out of the top and the late shifters decode the
  // wrong bit (or mistake themselves for first).  The protocol stays
  // wait-free; only agreement breaks.
  for (int w = 1; w <= 3; ++w) {
    const auto r = check_consensus(consensus::from_shift_register(w + 1, w));
    EXPECT_FALSE(r.solves) << "w=" << w;
    EXPECT_TRUE(r.wait_free) << "w=" << w;
    EXPECT_NE(r.detail.find("agreement"), std::string::npos)
        << "w=" << w << ": " << r.detail;
  }
}

TEST(ConsensusProtocols, RegistersOnlyAttemptFailsAgreement) {
  // Registers cannot solve 2-process consensus [FLP85, LA87, Herlihy91]:
  // the natural register-only protocol is wait-free but loses agreement,
  // and the checker exhibits it.
  const auto r = check_consensus(consensus::registers_only_attempt(2));
  EXPECT_FALSE(r.solves);
  EXPECT_TRUE(r.wait_free);  // it IS wait-free; it just disagrees
  EXPECT_NE(r.detail.find("agreement"), std::string::npos) << r.detail;
}

TEST(ConsensusProtocols, RegistersOnlyAttemptFailsForThree) {
  const auto r = check_consensus(consensus::registers_only_attempt(3));
  EXPECT_FALSE(r.solves);
}

TEST(ConsensusProtocols, AccessBoundsAreReportedWhenTracked) {
  ExploreLimits limits;
  limits.track_access_bounds = true;
  const auto r = check_consensus(consensus::from_test_and_set(), limits);
  ASSERT_TRUE(r.solves) << r.detail;
  // System objects: bit, bit, test&set, consensus(top).  Every execution
  // touches the test&set exactly once per process.
  ASSERT_EQ(r.max_accesses.size(), 4u);
  EXPECT_EQ(r.max_accesses[2], 2u);  // the test&set object
  EXPECT_LE(r.max_accesses[0], 2u);  // announce bit: 1 write + <=1 read
  EXPECT_GE(r.depth, 4);             // at least 2 steps per process
  EXPECT_LE(r.depth, 6);             // publish + race + read, two processes
}

TEST(ConsensusProtocols, InvalidArguments) {
  EXPECT_THROW(consensus::from_cas(0), std::invalid_argument);
  EXPECT_THROW(consensus::from_shift_register(0), std::invalid_argument);
  EXPECT_THROW(consensus::from_shift_register(2, 0), std::invalid_argument);
  EXPECT_THROW(consensus::from_sticky_bit(0), std::invalid_argument);
  EXPECT_THROW(consensus::from_cas_ids(1), std::invalid_argument);
  EXPECT_THROW(consensus::registers_only_attempt(1), std::invalid_argument);
}

TEST(ConsensusScenario, RejectsBadInputs) {
  EXPECT_THROW(consensus::consensus_scenario(nullptr, {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(
      consensus::consensus_scenario(consensus::from_test_and_set(), {0}),
      std::invalid_argument);
  EXPECT_THROW(
      consensus::consensus_scenario(consensus::from_test_and_set(), {0, 7}),
      std::invalid_argument);
}

}  // namespace
}  // namespace wfregs
