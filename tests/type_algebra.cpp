// Tests for structural TypeSpec operations and the random type generator.
#include "wfregs/typesys/type_algebra.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "wfregs/typesys/random_type.hpp"
#include "wfregs/typesys/triviality.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

TEST(ReachablePart, DropsUnreachableStatesAndRebasesInitial) {
  // 0 -> 1 (cycle), 2 unreachable from 0.
  TypeSpec t("t", 1, 3, 1, 2);
  t.add(0, 0, 0, 1, 0);
  t.add(1, 0, 0, 0, 1);
  t.add(2, 0, 0, 2, 0);
  t.validate();
  const auto r = reachable_part(t, 0);
  EXPECT_EQ(r.num_states(), 2);
  EXPECT_EQ(r.delta_det(0, 0, 0).resp, 0);
  EXPECT_EQ(r.delta_det(1, 0, 0).resp, 1);
  // Starting from state 1, the result rebases it to state 0.
  const auto r1 = reachable_part(t, 1);
  EXPECT_EQ(r1.num_states(), 2);
  EXPECT_EQ(r1.delta_det(0, 0, 0).resp, 1);
}

TEST(ReachablePart, PreservesSemanticsOfZooTypes) {
  const auto t = zoo::consensus_type(2);
  const auto r = reachable_part(t, 0);
  EXPECT_EQ(r.num_states(), 3);  // all consensus states are reachable
  EXPECT_EQ(is_trivial_oblivious(r), is_trivial_oblivious(t));
}

TEST(WithPorts, WideningClonesBehaviour) {
  const auto t = zoo::test_and_set_type(2);
  const auto w = with_ports(t, 5);
  EXPECT_EQ(w.ports(), 5);
  EXPECT_TRUE(w.is_oblivious());
  for (PortId p = 0; p < 5; ++p) {
    EXPECT_EQ(w.delta_det(0, p, 0).resp, t.delta_det(0, 0, 0).resp);
  }
}

TEST(WithPorts, NarrowingKeepsLowPorts) {
  const auto t = zoo::port_flag_type(3);
  const auto w = with_ports(t, 2);
  EXPECT_EQ(w.ports(), 2);
  EXPECT_EQ(w.delta_det(0, 1, 0).next, 1);  // port 1 still raises the flag
}

TEST(WithPorts, RejectsBadArguments) {
  const auto t = zoo::bit_type(2);
  EXPECT_THROW(with_ports(t, 0), std::invalid_argument);
  EXPECT_THROW(with_ports(t, 3, 7), std::out_of_range);
}

TEST(RandomType, DeterministicInSeed) {
  RandomTypeParams params;
  const auto a = random_type(params, 42);
  const auto b = random_type(params, 42);
  EXPECT_EQ(a, b);
  const auto c = random_type(params, 43);
  EXPECT_FALSE(a == c);  // overwhelmingly likely for these shapes
}

TEST(RandomType, ShapeHonoured) {
  RandomTypeParams params;
  params.ports = 3;
  params.num_states = 6;
  params.num_invocations = 4;
  params.num_responses = 2;
  const auto t = random_type(params, 7);
  EXPECT_EQ(t.ports(), 3);
  EXPECT_EQ(t.num_states(), 6);
  EXPECT_TRUE(t.is_total());
  EXPECT_TRUE(t.is_deterministic());
}

TEST(RandomType, ObliviousFlagProducesObliviousTypes) {
  RandomTypeParams params;
  params.ports = 4;
  params.oblivious = true;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    EXPECT_TRUE(random_type(params, seed).is_oblivious());
  }
}

TEST(RandomType, BranchingProducesNondeterminism) {
  RandomTypeParams params;
  params.branching = 3;
  params.num_states = 8;
  params.num_responses = 4;
  bool saw_nondet = false;
  for (std::uint64_t seed = 0; seed < 10 && !saw_nondet; ++seed) {
    saw_nondet = !random_type(params, seed).is_deterministic();
  }
  EXPECT_TRUE(saw_nondet);
  EXPECT_THROW(random_type(RandomTypeParams{.branching = 0}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace wfregs
