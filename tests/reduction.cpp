// Differential tests for the reduction layer: on every zoo type, every
// consensus protocol, the register-elimination pipeline stages and 24 seeded
// random types, exploring with Reduction::kSleep / kSleepSymmetry must
// report the SAME verdicts (wait-freedom, violation presence, depth,
// per-object access bounds) as Reduction::kNone while visiting no more --
// and on symmetric systems provably fewer -- configurations.  Also covers
// the parallel reduced explorer (bit-identical to the sequential reduced
// one), ExploreStats lower bounds under early aborts, the analysis-refined
// independence table, and the shared-port fallback.
#include "wfregs/runtime/reduction.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "test_support.hpp"
#include "wfregs/analysis/independence.hpp"
#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/core/register_elimination.hpp"
#include "wfregs/runtime/explorer.hpp"
#include "wfregs/typesys/random_type.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using testsup::share;

constexpr Reduction kReductions[] = {Reduction::kSleep,
                                     Reduction::kSleepSymmetry};

std::string reduction_name(Reduction r) {
  switch (r) {
    case Reduction::kNone:
      return "none";
    case Reduction::kSleep:
      return "sleep";
    case Reduction::kSleepSymmetry:
      return "sleep+symmetry";
  }
  return "?";
}

/// The reduction contract: verdicts, depth and access bounds match the
/// unreduced run.  Node counts are NOT asserted <=: reduced nodes are
/// (configuration, sleep mask) pairs, so on small dependence-heavy systems
/// -- where pruning fires only partially -- the same configuration can
/// appear under two sleep masks and the reduced graph runs a few nodes
/// larger.  That exact identity is what keeps reduced runs deterministic at
/// any thread count; the payoff on independence- and symmetry-rich systems
/// is asserted separately.  A 2x guard still catches pathological blowup.
void ExpectSameVerdict(const ExploreOutcome& none, const ExploreOutcome& red,
                       const std::string& what) {
  EXPECT_EQ(none.wait_free, red.wait_free) << what;
  EXPECT_EQ(none.complete, red.complete) << what;
  EXPECT_EQ(none.violation.has_value(), red.violation.has_value()) << what;
  EXPECT_EQ(none.stats.depth, red.stats.depth) << what;
  EXPECT_EQ(none.stats.max_accesses, red.stats.max_accesses) << what;
  EXPECT_EQ(none.stats.max_accesses_by_inv, red.stats.max_accesses_by_inv)
      << what;
  EXPECT_LE(red.stats.configs, 2 * none.stats.configs) << what;
}

void ExpectIdentical(const ExploreOutcome& a, const ExploreOutcome& b,
                     const std::string& what) {
  EXPECT_EQ(a.wait_free, b.wait_free) << what;
  EXPECT_EQ(a.complete, b.complete) << what;
  EXPECT_EQ(a.violation.has_value(), b.violation.has_value()) << what;
  EXPECT_EQ(a.stats.configs, b.stats.configs) << what;
  EXPECT_EQ(a.stats.edges, b.stats.edges) << what;
  EXPECT_EQ(a.stats.terminals, b.stats.terminals) << what;
  EXPECT_EQ(a.stats.depth, b.stats.depth) << what;
  EXPECT_EQ(a.stats.max_accesses, b.stats.max_accesses) << what;
  EXPECT_EQ(a.stats.max_accesses_by_inv, b.stats.max_accesses_by_inv) << what;
}

/// Asymmetric scenario over one shared instance of `t`: process p performs
/// two invocations starting at invocation p, folding responses into its
/// result (the memoization contract).  Identical to the parallel-explorer
/// test scenario so counters stay comparable across suites.
Engine scenario_for(std::shared_ptr<const TypeSpec> t) {
  const int n = t->ports();
  const int invs = t->num_invocations();
  auto sys = std::make_shared<System>(n);
  std::vector<PortId> ports(static_cast<std::size_t>(n));
  std::iota(ports.begin(), ports.end(), 0);
  const ObjectId obj = sys->add_base(std::move(t), 0, ports);
  for (ProcId p = 0; p < n; ++p) {
    ProgramBuilder b;
    b.assign(1, lit(0));
    for (int k = 0; k < 2; ++k) {
      b.invoke(0, lit((p + k) % invs), 0);
      b.assign(1, reg(1) * lit(1 << 20) + reg(0) + lit(1));
    }
    b.ret(reg(1));
    sys->set_toplevel(p, b.build("p" + std::to_string(p)), {obj});
  }
  return Engine{std::move(sys)};
}

/// Fully symmetric scenario: every process runs the SAME shared program (two
/// identical invocations, responses folded) on its own port of one shared
/// object.  When the object is port-oblivious every process permutation is a
/// system automorphism, so kSleepSymmetry collapses whole orbits.
Engine symmetric_scenario_for(std::shared_ptr<const TypeSpec> t, InvId inv) {
  const int n = t->ports();
  auto sys = std::make_shared<System>(n);
  std::vector<PortId> ports(static_cast<std::size_t>(n));
  std::iota(ports.begin(), ports.end(), 0);
  const ObjectId obj = sys->add_base(std::move(t), 0, ports);
  ProgramBuilder b;
  b.assign(1, lit(0));
  for (int k = 0; k < 2; ++k) {
    b.invoke(0, lit(inv), 0);
    b.assign(1, reg(1) * lit(1 << 20) + reg(0) + lit(1));
  }
  b.ret(reg(1));
  const ProgramRef shared_prog = b.build("hammer");
  for (ProcId p = 0; p < n; ++p) {
    sys->set_toplevel(p, shared_prog, {obj});
  }
  return Engine{std::move(sys)};
}

std::vector<std::pair<std::string, TypeSpec>> zoo_instances() {
  std::vector<std::pair<std::string, TypeSpec>> out;
  out.emplace_back("register(3,2)", zoo::register_type(3, 2));
  out.emplace_back("register(2,3)", zoo::register_type(2, 3));
  out.emplace_back("bit(2)", zoo::bit_type(2));
  out.emplace_back("srsw_register(2)", zoo::srsw_register_type(2));
  out.emplace_back("srsw_bit", zoo::srsw_bit_type());
  out.emplace_back("mrsw_register(2,2)", zoo::mrsw_register_type(2, 2));
  out.emplace_back("safe_bit", zoo::weak_bit_type(zoo::WeakBitKind::kSafe));
  out.emplace_back("regular_bit",
                   zoo::weak_bit_type(zoo::WeakBitKind::kRegular));
  out.emplace_back("one_use_bit", zoo::one_use_bit_type());
  out.emplace_back("consensus(2)", zoo::consensus_type(2));
  out.emplace_back("multi_consensus(3,2)", zoo::multi_consensus_type(3, 2));
  out.emplace_back("test_and_set(2)", zoo::test_and_set_type(2));
  out.emplace_back("fetch_and_add(4,2)", zoo::fetch_and_add_type(4, 2));
  out.emplace_back("cas(2,2)", zoo::cas_type(2, 2));
  out.emplace_back("cas_old(2,2)", zoo::cas_old_type(2, 2));
  out.emplace_back("sticky_bit(2)", zoo::sticky_bit_type(2));
  out.emplace_back("queue(2,2,2)", zoo::queue_type(2, 2, 2));
  out.emplace_back("stack(2,2,2)", zoo::stack_type(2, 2, 2));
  out.emplace_back("snapshot(2,2)", zoo::snapshot_type(2, 2));
  out.emplace_back("trivial_toggle(2)", zoo::trivial_toggle_type(2));
  out.emplace_back("trivial_sink(2)", zoo::trivial_sink_type(2));
  out.emplace_back("nondet_coin(2)", zoo::nondet_coin_type(2));
  out.emplace_back("port_flag(2)", zoo::port_flag_type(2));
  out.emplace_back("mod_counter(3,2)", zoo::mod_counter_type(3, 2));
  return out;
}

ExploreLimits full_limits() {
  ExploreLimits limits;
  limits.track_access_bounds = true;
  limits.stop_at_violation = false;
  return limits;
}

TEST(Reduction, DifferentialOnZooTypes) {
  const ExploreLimits limits = full_limits();
  for (auto& [name, t] : zoo_instances()) {
    const Engine root = scenario_for(share(std::move(t)));
    const auto none = explore(root, limits);
    ASSERT_TRUE(none.complete) << name;
    for (const Reduction r : kReductions) {
      const auto red = explore(root, ExploreOptions{limits, r});
      ExpectSameVerdict(none, red, name + " @ " + reduction_name(r));
    }
  }
}

TEST(Reduction, DifferentialOnConsensusProtocols) {
  const ExploreLimits limits = full_limits();
  const std::vector<
      std::pair<std::string, std::shared_ptr<const Implementation>>>
      protocols = {
          {"test_and_set", consensus::from_test_and_set()},
          {"queue", consensus::from_queue()},
          {"fetch_and_add", consensus::from_fetch_and_add()},
          {"cas(2)", consensus::from_cas(2)},
          {"cas(3)", consensus::from_cas(3)},
          {"sticky_bit(2)", consensus::from_sticky_bit(2)},
          {"sticky_bit(3)", consensus::from_sticky_bit(3)},
          {"consensus_object(3)", consensus::from_consensus_object(3)},
          {"cas_ids(2)", consensus::from_cas_ids(2)},
          // Deliberately broken: agreement violations must survive reduction.
          {"registers_only(2)", consensus::registers_only_attempt(2)},
      };
  for (const auto& [name, impl] : protocols) {
    const int n = impl->iface().ports();
    const TerminalCheck check =
        [n](const Engine& e) -> std::optional<std::string> {
      const Val decided = *e.result(0);
      for (ProcId p = 1; p < n; ++p) {
        if (*e.result(p) != decided) return "disagreement";
      }
      return std::nullopt;
    };
    for (int vec = 0; vec < (1 << n); ++vec) {
      std::vector<int> inputs;
      for (int p = 0; p < n; ++p) inputs.push_back((vec >> p) & 1);
      const Engine root{consensus::consensus_scenario(impl, inputs)};
      const auto none = explore(root, limits, check);
      ASSERT_TRUE(none.complete) << name;
      for (const Reduction r : kReductions) {
        const auto red = explore(root, ExploreOptions{limits, r}, check);
        ExpectSameVerdict(none, red,
                          name + " inputs " + std::to_string(vec) + " @ " +
                              reduction_name(r));
      }
    }
  }
}

TEST(Reduction, DifferentialOnEliminationStages) {
  // The register-elimination pipeline produces the deepest composed
  // implementations in the library; its stage outputs are the stress test
  // for reduction over virtual objects, persistent state and port plumbing.
  core::EliminationOptions options;  // empty factory: keep one-use bits
  const auto report =
      core::eliminate_registers(consensus::from_test_and_set(), options);
  ASSERT_TRUE(report.ok) << report.detail;
  for (const auto& stage : {report.bits_stage, report.result}) {
    VerifyOptions none;
    none.threads = 1;
    none.limits.track_access_bounds = true;
    const auto base = consensus::check_consensus(stage, none);
    ASSERT_TRUE(base.solves) << base.detail;
    for (const Reduction r : kReductions) {
      VerifyOptions red = none;
      red.reduction = r;
      const auto out = consensus::check_consensus(stage, red);
      const std::string what = stage->name() + " @ " + reduction_name(r);
      EXPECT_EQ(base.solves, out.solves) << what;
      EXPECT_EQ(base.wait_free, out.wait_free) << what;
      EXPECT_EQ(base.complete, out.complete) << what;
      EXPECT_EQ(base.depth, out.depth) << what;
      EXPECT_EQ(base.max_accesses, out.max_accesses) << what;
      EXPECT_EQ(base.max_accesses_by_inv, out.max_accesses_by_inv) << what;
      EXPECT_LE(out.configs, base.configs) << what;
    }
  }
}

TEST(Reduction, DifferentialOnRandomTypes) {
  // Same 24-seed family as the fuzz differential suite, so a failure here
  // has a known repro recipe there.
  const ExploreLimits limits = full_limits();
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    RandomTypeParams params;
    params.ports = 2 + static_cast<int>(seed % 2);
    params.num_states = 3 + static_cast<int>(seed % 3);
    params.num_invocations = 2 + static_cast<int>(seed % 2);
    params.num_responses = 2 + static_cast<int>(seed % 2);
    params.oblivious = (seed % 3) == 0;
    params.branching = 1 + static_cast<int>(seed % 2);
    const TypeSpec t = random_type(params, seed);
    const Engine root = scenario_for(share(t));
    const auto none = explore(root, limits);
    ASSERT_TRUE(none.complete) << "seed " << seed;
    for (const Reduction r : kReductions) {
      const auto red = explore(root, ExploreOptions{limits, r});
      ExpectSameVerdict(none, red,
                        "seed " + std::to_string(seed) + " @ " +
                            reduction_name(r));
    }
  }
}

TEST(Reduction, ParallelMatchesSequentialReducedBitForBit) {
  // The determinism guarantee extends to reduced runs: the parallel
  // explorer must reproduce the sequential reduced explorer's counters
  // exactly, at any thread count.
  const ExploreLimits limits = full_limits();
  std::vector<std::pair<std::string, Engine>> roots;
  roots.emplace_back("cas(2,2)", scenario_for(share(zoo::cas_type(2, 2))));
  roots.emplace_back("queue(2,2,2)",
                     scenario_for(share(zoo::queue_type(2, 2, 2))));
  roots.emplace_back(
      "symmetric fetch_and_add(4,3)",
      symmetric_scenario_for(share(zoo::fetch_and_add_type(4, 3)), 0));
  roots.emplace_back("consensus cas(3)",
                     Engine{consensus::consensus_scenario(
                         consensus::from_cas(3), {1, 1, 1})});
  for (const auto& [name, root] : roots) {
    for (const Reduction r : kReductions) {
      const ExploreOptions options{limits, r};
      const auto seq = explore(root, options);
      ASSERT_TRUE(seq.complete) << name;
      for (const int threads : {2, 8}) {
        const auto par = explore_parallel(root, {}, options, threads);
        ExpectIdentical(seq, par,
                        name + " @ " + reduction_name(r) + " x " +
                            std::to_string(threads) + " threads");
      }
    }
  }
}

TEST(Reduction, SymmetricScenarioShrinksAtLeastThreefold) {
  // Three identical processes hammering one port-oblivious object: the
  // symmetry group is all of S_3, so canonicalization should collapse (at
  // least) the 3!-sized orbits of the asymmetric configurations.
  const ExploreLimits limits = full_limits();
  const Engine root =
      symmetric_scenario_for(share(zoo::fetch_and_add_type(4, 3)), 0);
  const auto none = explore(root, limits);
  ASSERT_TRUE(none.complete);
  const auto red =
      explore(root, ExploreOptions{limits, Reduction::kSleepSymmetry});
  ExpectSameVerdict(none, red, "symmetric fetch_and_add");
  EXPECT_LE(red.stats.configs * 3, none.stats.configs)
      << "expected >= 3x reduction, got " << none.stats.configs << " -> "
      << red.stats.configs;
}

TEST(Reduction, SymmetricConsensusScenarioShrinks) {
  // consensus_scenario shares one propose program per input value, so the
  // all-equal-input roots are fully symmetric.
  const ExploreLimits limits = full_limits();
  const Engine root{
      consensus::consensus_scenario(consensus::from_cas(3), {1, 1, 1})};
  const auto none = explore(root, limits);
  ASSERT_TRUE(none.complete);
  const auto red =
      explore(root, ExploreOptions{limits, Reduction::kSleepSymmetry});
  ExpectSameVerdict(none, red, "cas(3) all-ones");
  // One-invocation propose programs keep this tree shallow, so the orbit
  // collapse stays below the asymptotic |S_3| = 6; 2x is already symmetry
  // at work (sleep alone GROWS this root: see DifferentialOnConsensusProtocols).
  EXPECT_LE(red.stats.configs * 2, none.stats.configs)
      << "expected >= 2x reduction, got " << none.stats.configs << " -> "
      << red.stats.configs;
}

TEST(Reduction, EarlyAbortCountersAreLowerBounds) {
  const Engine root = scenario_for(share(zoo::register_type(3, 3)));
  for (const Reduction r : kReductions) {
    const auto full = explore(root, ExploreOptions{full_limits(), r});
    ASSERT_TRUE(full.complete);
    // Config-limit abort: incomplete, and every counter is a valid lower
    // bound of the completed reduced run's counter.
    ExploreLimits capped;
    capped.max_configs = 5;
    const auto seq = explore(root, ExploreOptions{capped, r});
    EXPECT_FALSE(seq.complete);
    EXPECT_LE(seq.stats.configs, full.stats.configs);
    EXPECT_LE(seq.stats.terminals, full.stats.terminals);
    for (const int threads : {2, 8}) {
      const auto par = explore_parallel(root, {}, ExploreOptions{capped, r},
                                        threads);
      EXPECT_FALSE(par.complete);
      EXPECT_LE(par.stats.configs, full.stats.configs);
      EXPECT_LE(par.stats.terminals, full.stats.terminals);
    }
  }
}

TEST(Reduction, StopAtViolationStillReportsViolation) {
  const Engine root = scenario_for(share(zoo::nondet_coin_type(2)));
  // Every terminal violates, so any early stop must still surface one.
  const TerminalCheck check =
      [](const Engine&) -> std::optional<std::string> { return "always"; };
  ExploreLimits limits;
  limits.stop_at_violation = true;
  for (const Reduction r : kReductions) {
    const auto seq = explore(root, ExploreOptions{limits, r}, check);
    EXPECT_TRUE(seq.violation.has_value()) << reduction_name(r);
    EXPECT_GE(seq.stats.configs, 1u);
    for (const int threads : {2, 8}) {
      const auto par =
          explore_parallel(root, check, ExploreOptions{limits, r}, threads);
      EXPECT_TRUE(par.violation.has_value())
          << reduction_name(r) << " x " << threads;
    }
  }
}

TEST(Reduction, InjectedRefinedTableStaysSound) {
  const ExploreLimits limits = full_limits();
  for (auto& [name, t] : {std::pair<std::string, TypeSpec>{
                              "cas(2,2)", zoo::cas_type(2, 2)},
                          {"queue(2,2,2)", zoo::queue_type(2, 2, 2)},
                          {"mod_counter(3,2)", zoo::mod_counter_type(3, 2)}}) {
    const Engine root = scenario_for(share(std::move(t)));
    const auto none = explore(root, limits);
    const IndependenceTable refined =
        analysis::refined_independence(root.system());
    ExploreOptions options{limits, Reduction::kSleep};
    options.independence = &refined;
    const auto red = explore(root, options);
    ExpectSameVerdict(none, red, name + " @ refined table");
    // The refined table is never coarser than the baseline.
    const auto baseline =
        explore(root, ExploreOptions{limits, Reduction::kSleep});
    EXPECT_LE(red.stats.configs, baseline.stats.configs) << name;
  }
}

TEST(Reduction, RefinedTableNeverCoarserThanBaseline) {
  for (auto& [name, t] : zoo_instances()) {
    const Engine root = scenario_for(share(std::move(t)));
    const System& sys = root.system();
    const IndependenceTable baseline = IndependenceTable::build(sys);
    const IndependenceTable refined = analysis::refined_independence(sys);
    EXPECT_GE(refined.independent_pairs(), baseline.independent_pairs())
        << name;
    const std::string description = analysis::describe_independence(sys);
    EXPECT_NE(description.find("total independent pairs"), std::string::npos)
        << name;
  }
}

TEST(Reduction, SharedPortSystemsFallBackToSymmetryOnly) {
  // Two processes sharing port 0 of an oblivious counter: steps conflict
  // through per-port state identity, so sleep-set pruning must deactivate
  // and the reduced run must degrade gracefully to the unreduced graph.
  auto sys = std::make_shared<System>(2);
  const ObjectId obj =
      sys->add_base(share(zoo::fetch_and_add_type(4, 2)), 0, {0, 0});
  for (ProcId p = 0; p < 2; ++p) {
    ProgramBuilder b;
    b.assign(1, lit(0));
    b.invoke(0, lit(0), 0);
    b.assign(1, reg(1) * lit(1 << 20) + reg(0) + lit(1));
    b.ret(reg(1));
    sys->set_toplevel(p, b.build("shared_p" + std::to_string(p)), {obj});
  }
  const Engine root{std::move(sys)};
  const ReductionContext ctx(root.system(), Reduction::kSleep, nullptr);
  EXPECT_FALSE(ctx.sleep_active());
  const ExploreLimits limits = full_limits();
  const auto none = explore(root, limits);
  const auto red = explore(root, ExploreOptions{limits, Reduction::kSleep});
  ExpectSameVerdict(none, red, "shared-port");
  EXPECT_EQ(none.stats.configs, red.stats.configs);
}

TEST(Reduction, InjectedTableShapeMismatchThrows) {
  const Engine a = scenario_for(share(zoo::cas_type(2, 2)));
  const Engine b = scenario_for(share(zoo::queue_type(2, 2, 2)));
  const IndependenceTable wrong = IndependenceTable::build(a.system());
  ExploreOptions options{{}, Reduction::kSleep};
  options.independence = &wrong;
  EXPECT_THROW(explore(b, options), std::invalid_argument);
}

TEST(Reduction, VerifiersThreadReductionThrough) {
  // End-to-end: VerifyOptions::reduction reaches the explorer and preserves
  // the consensus verdict and measured bounds.
  const auto impl = consensus::from_test_and_set();
  VerifyOptions none;
  none.threads = 1;
  none.limits.track_access_bounds = true;
  const auto base = consensus::check_consensus(impl, none);
  ASSERT_TRUE(base.solves) << base.detail;
  for (const Reduction r : kReductions) {
    VerifyOptions red = none;
    red.reduction = r;
    const auto out = consensus::check_consensus(impl, red);
    EXPECT_TRUE(out.solves) << out.detail;
    EXPECT_EQ(base.depth, out.depth) << reduction_name(r);
    EXPECT_EQ(base.max_accesses, out.max_accesses) << reduction_name(r);
    EXPECT_LE(out.configs, base.configs) << reduction_name(r);
  }
}

}  // namespace
}  // namespace wfregs
