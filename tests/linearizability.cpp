// Tests for the linearizability checker against hand-built histories with
// known verdicts.
#include "wfregs/runtime/linearizability.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

// Builds a completed op.
OpRecord op(ProcId proc, PortId port, InvId inv, Val resp,
            std::size_t invoke_time, std::size_t response_time) {
  OpRecord rec;
  rec.proc = proc;
  rec.object = 0;
  rec.port = port;
  rec.inv = inv;
  rec.invoke_time = invoke_time;
  rec.response = resp;
  rec.response_time = response_time;
  return rec;
}

OpRecord pending_op(ProcId proc, PortId port, InvId inv,
                    std::size_t invoke_time) {
  OpRecord rec;
  rec.proc = proc;
  rec.object = 0;
  rec.port = port;
  rec.inv = inv;
  rec.invoke_time = invoke_time;
  return rec;
}

const zoo::RegisterLayout kBit{2};

TEST(Linearizability, EmptyHistoryIsLinearizable) {
  const auto spec = zoo::bit_type(2);
  const auto r = check_linearizable({}, spec, 0);
  EXPECT_TRUE(r.linearizable);
  EXPECT_TRUE(r.order.empty());
}

TEST(Linearizability, SequentialReadAfterWrite) {
  const auto spec = zoo::bit_type(2);
  const std::vector<OpRecord> ops{
      op(0, 0, kBit.write(1), kBit.ok(), 0, 1),
      op(1, 1, kBit.read(), kBit.value_resp(1), 2, 3),
  };
  const auto r = check_linearizable(ops, spec, 0);
  EXPECT_TRUE(r.linearizable);
  ASSERT_EQ(r.order.size(), 2u);
  EXPECT_EQ(r.order[0], 0);
  EXPECT_EQ(r.order[1], 1);
}

TEST(Linearizability, StaleReadAfterCompletedWriteIsRejected) {
  const auto spec = zoo::bit_type(2);
  // write(1) completes strictly before the read, yet the read returns 0.
  const std::vector<OpRecord> ops{
      op(0, 0, kBit.write(1), kBit.ok(), 0, 1),
      op(1, 1, kBit.read(), kBit.value_resp(0), 2, 3),
  };
  EXPECT_FALSE(check_linearizable(ops, spec, 0).linearizable);
}

TEST(Linearizability, ConcurrentReadMayReturnEitherValue) {
  const auto spec = zoo::bit_type(2);
  for (const int read_value : {0, 1}) {
    const std::vector<OpRecord> ops{
        op(0, 0, kBit.write(1), kBit.ok(), 0, 3),
        op(1, 1, kBit.read(), kBit.value_resp(read_value), 1, 2),
    };
    EXPECT_TRUE(check_linearizable(ops, spec, 0).linearizable)
        << "read value " << read_value;
  }
}

TEST(Linearizability, NewOldInversionIsRejected) {
  // Two sequential reads around a concurrent write: the first read sees the
  // new value, the second (later) read sees the old one.  Classic atomicity
  // violation.
  const auto spec = zoo::bit_type(3);
  const std::vector<OpRecord> ops{
      op(0, 0, kBit.write(1), kBit.ok(), 0, 10),
      op(1, 1, kBit.read(), kBit.value_resp(1), 1, 2),
      op(1, 1, kBit.read(), kBit.value_resp(0), 3, 4),
  };
  EXPECT_FALSE(check_linearizable(ops, spec, 0).linearizable);
}

TEST(Linearizability, ReadsRespectInitialState) {
  const auto spec = zoo::bit_type(2);
  const std::vector<OpRecord> ops{
      op(0, 0, kBit.read(), kBit.value_resp(1), 0, 1),
  };
  EXPECT_FALSE(check_linearizable(ops, spec, 0).linearizable);
  EXPECT_TRUE(check_linearizable(ops, spec, 1).linearizable);
}

TEST(Linearizability, PendingOpMayBeOmitted) {
  const auto spec = zoo::bit_type(2);
  // A pending write(1) that never took effect; later read of 0 is fine.
  const std::vector<OpRecord> ops{
      pending_op(0, 0, kBit.write(1), 0),
      op(1, 1, kBit.read(), kBit.value_resp(0), 5, 6),
  };
  EXPECT_TRUE(check_linearizable(ops, spec, 0).linearizable);
}

TEST(Linearizability, PendingOpMayBeLinearized) {
  const auto spec = zoo::bit_type(2);
  // A pending write(1) whose effect WAS observed.
  const std::vector<OpRecord> ops{
      pending_op(0, 0, kBit.write(1), 0),
      op(1, 1, kBit.read(), kBit.value_resp(1), 5, 6),
  };
  const auto r = check_linearizable(ops, spec, 0);
  EXPECT_TRUE(r.linearizable);
  ASSERT_EQ(r.order.size(), 2u);
  EXPECT_EQ(r.order[0], 0);  // the pending write linearizes first
}

TEST(Linearizability, TestAndSetWinnersAndLosers) {
  const auto spec = zoo::test_and_set_type(2);
  const zoo::TestAndSetLayout lay;
  // Two concurrent T&S; exactly one may win (return 0).
  const std::vector<OpRecord> both_win{
      op(0, 0, lay.test_and_set(), lay.old_value(0), 0, 3),
      op(1, 1, lay.test_and_set(), lay.old_value(0), 1, 2),
  };
  EXPECT_FALSE(check_linearizable(both_win, spec, 0).linearizable);
  const std::vector<OpRecord> one_wins{
      op(0, 0, lay.test_and_set(), lay.old_value(0), 0, 3),
      op(1, 1, lay.test_and_set(), lay.old_value(1), 1, 2),
  };
  EXPECT_TRUE(check_linearizable(one_wins, spec, 0).linearizable);
}

TEST(Linearizability, QueueFifoOrderEnforced) {
  const auto spec = zoo::queue_type(2, 2, 2);
  const zoo::QueueLayout lay{2, 2};
  // enq(0) before enq(1), then two sequential dequeues must be 0 then 1.
  const std::vector<OpRecord> good{
      op(0, 0, lay.enqueue(0), lay.ok(), 0, 1),
      op(0, 0, lay.enqueue(1), lay.ok(), 2, 3),
      op(1, 1, lay.dequeue(), lay.front_value(0), 4, 5),
      op(1, 1, lay.dequeue(), lay.front_value(1), 6, 7),
  };
  EXPECT_TRUE(check_linearizable(good, spec, 0).linearizable);
  const std::vector<OpRecord> bad{
      op(0, 0, lay.enqueue(0), lay.ok(), 0, 1),
      op(0, 0, lay.enqueue(1), lay.ok(), 2, 3),
      op(1, 1, lay.dequeue(), lay.front_value(1), 4, 5),
      op(1, 1, lay.dequeue(), lay.front_value(0), 6, 7),
  };
  EXPECT_FALSE(check_linearizable(bad, spec, 0).linearizable);
}

TEST(Linearizability, NondeterministicSpecAllowsAnyChoice) {
  const auto spec = zoo::one_use_bit_type();
  const zoo::OneUseBitLayout lay;
  // Two reads of a DEAD one-use bit may return different values.
  std::vector<OpRecord> ops{
      op(0, 0, lay.read(), lay.zero(), 0, 1),
      op(0, 0, lay.read(), lay.one(), 2, 3),
  };
  EXPECT_TRUE(check_linearizable(ops, spec, lay.dead()).linearizable);
  // But a fresh UNSET bit must read 0 first.
  std::vector<OpRecord> bad{
      op(0, 0, lay.read(), lay.one(), 0, 1),
  };
  EXPECT_FALSE(check_linearizable(bad, spec, lay.unset()).linearizable);
}

TEST(Linearizability, RejectsOversizedHistories) {
  const auto spec = zoo::bit_type(2);
  std::vector<OpRecord> ops;
  for (int i = 0; i < 65; ++i) {
    ops.push_back(op(0, 0, kBit.read(), kBit.value_resp(0), 2 * i, 2 * i + 1));
  }
  EXPECT_THROW(check_linearizable(ops, spec, 0), std::invalid_argument);
  EXPECT_THROW(check_linearizable({}, spec, 9), std::out_of_range);
}

TEST(Linearizability, DescribeHistoryMentionsOps) {
  const auto spec = zoo::bit_type(2);
  const std::vector<OpRecord> ops{
      op(0, 0, kBit.write(1), kBit.ok(), 0, 1),
      pending_op(1, 1, kBit.read(), 2),
  };
  const auto s = describe_history(ops, spec);
  EXPECT_NE(s.find("write(1)"), std::string::npos);
  EXPECT_NE(s.find("pending"), std::string::npos);
}

}  // namespace
}  // namespace wfregs
