// Differential tests for the parallel explorer: on every zoo type and every
// consensus protocol, explore_parallel must return a BIT-IDENTICAL
// ExploreOutcome to the sequential explorer at 1, 2 and 8 threads whenever
// discovery runs to completion (the determinism guarantee of the PARALLEL
// EXPLORATION contract in explorer.hpp) -- including the partial stats at a
// cycle-detection abort, which the canonical replay reproduces exactly.
#include "wfregs/runtime/explorer.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "test_support.hpp"
#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/runtime/regularity.hpp"
#include "wfregs/runtime/verify.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using testsup::make_impl;
using testsup::one_shot;
using testsup::share;

constexpr int kThreadCounts[] = {1, 2, 8};

void ExpectIdentical(const ExploreOutcome& seq, const ExploreOutcome& par,
                     const std::string& what) {
  EXPECT_EQ(seq.wait_free, par.wait_free) << what;
  EXPECT_EQ(seq.complete, par.complete) << what;
  EXPECT_EQ(seq.violation.has_value(), par.violation.has_value()) << what;
  EXPECT_EQ(seq.stats.configs, par.stats.configs) << what;
  EXPECT_EQ(seq.stats.edges, par.stats.edges) << what;
  EXPECT_EQ(seq.stats.terminals, par.stats.terminals) << what;
  EXPECT_EQ(seq.stats.depth, par.stats.depth) << what;
  EXPECT_EQ(seq.stats.max_accesses, par.stats.max_accesses) << what;
  EXPECT_EQ(seq.stats.max_accesses_by_inv, par.stats.max_accesses_by_inv)
      << what;
}

/// Generic scenario over one shared instance of `t`: process p (on port p)
/// performs two invocations, folding every response into its result so
/// distinct response histories occupy distinct configurations (the
/// memoization contract).
Engine scenario_for(std::shared_ptr<const TypeSpec> t) {
  const int n = t->ports();
  const int invs = t->num_invocations();
  auto sys = std::make_shared<System>(n);
  std::vector<PortId> ports(static_cast<std::size_t>(n));
  std::iota(ports.begin(), ports.end(), 0);
  const ObjectId obj = sys->add_base(std::move(t), 0, ports);
  for (ProcId p = 0; p < n; ++p) {
    ProgramBuilder b;
    b.assign(1, lit(0));
    for (int k = 0; k < 2; ++k) {
      b.invoke(0, lit((p + k) % invs), 0);
      b.assign(1, reg(1) * lit(1 << 20) + reg(0) + lit(1));
    }
    b.ret(reg(1));
    sys->set_toplevel(p, b.build("p" + std::to_string(p)), {obj});
  }
  return Engine{std::move(sys)};
}

std::vector<std::pair<std::string, TypeSpec>> zoo_instances() {
  std::vector<std::pair<std::string, TypeSpec>> out;
  out.emplace_back("register(3,2)", zoo::register_type(3, 2));
  out.emplace_back("register(2,3)", zoo::register_type(2, 3));
  out.emplace_back("bit(2)", zoo::bit_type(2));
  out.emplace_back("srsw_register(2)", zoo::srsw_register_type(2));
  out.emplace_back("srsw_bit", zoo::srsw_bit_type());
  out.emplace_back("mrsw_register(2,2)", zoo::mrsw_register_type(2, 2));
  out.emplace_back("safe_bit", zoo::weak_bit_type(zoo::WeakBitKind::kSafe));
  out.emplace_back("regular_bit",
                   zoo::weak_bit_type(zoo::WeakBitKind::kRegular));
  out.emplace_back("one_use_bit", zoo::one_use_bit_type());
  out.emplace_back("consensus(2)", zoo::consensus_type(2));
  out.emplace_back("multi_consensus(3,2)", zoo::multi_consensus_type(3, 2));
  out.emplace_back("test_and_set(2)", zoo::test_and_set_type(2));
  out.emplace_back("fetch_and_add(4,2)", zoo::fetch_and_add_type(4, 2));
  out.emplace_back("cas(2,2)", zoo::cas_type(2, 2));
  out.emplace_back("cas_old(2,2)", zoo::cas_old_type(2, 2));
  out.emplace_back("sticky_bit(2)", zoo::sticky_bit_type(2));
  out.emplace_back("queue(2,2,2)", zoo::queue_type(2, 2, 2));
  out.emplace_back("stack(2,2,2)", zoo::stack_type(2, 2, 2));
  out.emplace_back("snapshot(2,2)", zoo::snapshot_type(2, 2));
  out.emplace_back("trivial_toggle(2)", zoo::trivial_toggle_type(2));
  out.emplace_back("trivial_sink(2)", zoo::trivial_sink_type(2));
  out.emplace_back("nondet_coin(2)", zoo::nondet_coin_type(2));
  out.emplace_back("port_flag(2)", zoo::port_flag_type(2));
  out.emplace_back("mod_counter(3,2)", zoo::mod_counter_type(3, 2));
  return out;
}

TEST(ParallelExplorer, DifferentialOnZooTypes) {
  ExploreLimits limits;
  limits.track_access_bounds = true;
  limits.stop_at_violation = false;
  for (auto& [name, t] : zoo_instances()) {
    const Engine root = scenario_for(share(std::move(t)));
    const auto seq = explore(root, limits);
    EXPECT_TRUE(seq.complete) << name;
    for (const int threads : kThreadCounts) {
      ExpectIdentical(seq, explore_parallel(root, {}, limits, threads),
                      name + " @ " + std::to_string(threads) + " threads");
    }
  }
}

void DifferentialOnProtocol(const std::string& name,
                            std::shared_ptr<const Implementation> impl) {
  const int n = impl->iface().ports();
  ExploreLimits limits;
  limits.track_access_bounds = true;
  limits.stop_at_violation = false;
  for (int vec = 0; vec < (1 << n); ++vec) {
    std::vector<int> inputs;
    for (int p = 0; p < n; ++p) inputs.push_back((vec >> p) & 1);
    // Agreement-only check: results are configuration state, so this is
    // exhaustive under memoization and safe to run concurrently.
    const TerminalCheck check =
        [n](const Engine& e) -> std::optional<std::string> {
      const Val decided = *e.result(0);
      for (ProcId p = 1; p < n; ++p) {
        if (*e.result(p) != decided) return "disagreement";
      }
      return std::nullopt;
    };
    const Engine root{consensus::consensus_scenario(impl, inputs)};
    const auto seq = explore(root, limits, check);
    EXPECT_TRUE(seq.complete) << name;
    for (const int threads : kThreadCounts) {
      ExpectIdentical(seq, explore_parallel(root, check, limits, threads),
                      name + " inputs " + std::to_string(vec) + " @ " +
                          std::to_string(threads) + " threads");
    }
  }
}

TEST(ParallelExplorer, DifferentialOnConsensusProtocols) {
  DifferentialOnProtocol("test_and_set", consensus::from_test_and_set());
  DifferentialOnProtocol("queue", consensus::from_queue());
  DifferentialOnProtocol("fetch_and_add", consensus::from_fetch_and_add());
  DifferentialOnProtocol("cas(2)", consensus::from_cas(2));
  DifferentialOnProtocol("cas(3)", consensus::from_cas(3));
  DifferentialOnProtocol("sticky_bit(2)", consensus::from_sticky_bit(2));
  DifferentialOnProtocol("sticky_bit(3)", consensus::from_sticky_bit(3));
  DifferentialOnProtocol("consensus_object(3)",
                         consensus::from_consensus_object(3));
  DifferentialOnProtocol("cas_ids(2)", consensus::from_cas_ids(2));
  // The deliberately broken protocol: agreement violations exist, and with
  // stop_at_violation off both explorers visit every terminal, so the full
  // outcome (including which violation is reported first) is identical.
  DifferentialOnProtocol("registers_only(2)",
                         consensus::registers_only_attempt(2));
}

TEST(ParallelExplorer, CycleAbortMatchesSequentialBitForBit) {
  // The lock-style waiting scenario from the sequential explorer tests: the
  // schedule that never runs the setter revisits a configuration.  The
  // canonical replay must abort at the same point with the same partial
  // counters as the sequential DFS.
  const auto bit = share(zoo::bit_type(2));
  const zoo::RegisterLayout lay{2};
  auto sys = std::make_shared<System>(2);
  const ObjectId b = sys->add_base(bit, 0, {0, 1});
  sys->set_toplevel(0, one_shot("setter", 0, lay.write(1)), {b});
  ProgramBuilder pb;
  const Label loop = pb.bind_here();
  pb.invoke(0, lit(lay.read()), 0);
  pb.branch_if(reg(0) == lit(0), loop);
  pb.ret(lit(1));
  sys->set_toplevel(1, pb.build("waiter"), {b});
  const Engine root{std::move(sys)};
  const auto seq = explore(root);
  ASSERT_FALSE(seq.wait_free);
  for (const int threads : {2, 8}) {
    const auto par = explore_parallel(root, {}, ExploreLimits{}, threads);
    ExpectIdentical(seq, par, "lock-style @ " + std::to_string(threads));
  }
}

TEST(ParallelExplorer, StopAtViolationAbortsEarly) {
  const auto coin = share(zoo::nondet_coin_type(1));
  auto sys = std::make_shared<System>(1);
  const ObjectId c = sys->add_base(coin, 0, {0});
  sys->set_toplevel(0, one_shot("flipper", 0, 0), {c});
  const Engine root{std::move(sys)};
  const TerminalCheck check =
      [](const Engine& e) -> std::optional<std::string> {
    if (e.result(0) == 1) return "saw tails";
    return std::nullopt;
  };
  for (const int threads : {2, 8}) {
    const auto out = explore_parallel(root, check, ExploreLimits{}, threads);
    ASSERT_TRUE(out.violation.has_value());
    EXPECT_EQ(*out.violation, "saw tails");
    EXPECT_TRUE(out.wait_free);
    EXPECT_TRUE(out.complete);
  }
}

TEST(ParallelExplorer, ConfigLimitReportsIncomplete) {
  const Engine root = scenario_for(share(zoo::register_type(3, 3)));
  ExploreLimits limits;
  limits.max_configs = 5;
  for (const int threads : {2, 8}) {
    const auto out = explore_parallel(root, {}, limits, threads);
    EXPECT_FALSE(out.complete);
  }
}

TEST(ParallelExplorer, CheckConsensusThreadsKnob) {
  const auto impl = consensus::from_test_and_set();
  VerifyOptions sequential;
  sequential.threads = 1;
  sequential.limits.track_access_bounds = true;
  VerifyOptions parallel = sequential;
  parallel.threads = 8;
  const auto seq = consensus::check_consensus(impl, sequential);
  const auto par = consensus::check_consensus(impl, parallel);
  EXPECT_TRUE(par.solves);
  EXPECT_EQ(seq.solves, par.solves);
  EXPECT_EQ(seq.configs, par.configs);
  EXPECT_EQ(seq.terminals, par.terminals);
  EXPECT_EQ(seq.depth, par.depth);
  EXPECT_EQ(seq.max_accesses, par.max_accesses);
  EXPECT_EQ(seq.max_accesses_by_inv, par.max_accesses_by_inv);
}

TEST(ParallelExplorer, VerifyLinearizableThreadsKnob) {
  const auto impl = consensus::from_consensus_object(2);
  VerifyOptions sequential;
  sequential.threads = 1;
  sequential.limits.track_access_bounds = true;
  VerifyOptions parallel = sequential;
  parallel.threads = 8;
  const auto seq = verify_linearizable(impl, {{0}, {1}}, sequential);
  const auto par = verify_linearizable(impl, {{0}, {1}}, parallel);
  EXPECT_TRUE(par.ok) << par.detail;
  EXPECT_EQ(seq.ok, par.ok);
  EXPECT_EQ(seq.stats.configs, par.stats.configs);
  EXPECT_EQ(seq.stats.depth, par.stats.depth);
  EXPECT_EQ(seq.stats.max_accesses, par.stats.max_accesses);
}

/// A pass-through SRSW register: each interface invocation forwards to one
/// base register of the same type.
std::shared_ptr<const Implementation> passthrough_srsw_register() {
  auto impl = make_impl("passthrough", share(zoo::srsw_register_type(2)), 0);
  const int base = impl->add_base(share(zoo::srsw_register_type(2)), 0, {0, 1});
  for (InvId i = 0; i < impl->iface().num_invocations(); ++i) {
    ProgramBuilder b;
    b.invoke(base, lit(i), 0);
    b.ret(reg(0));
    impl->set_program_all_ports(i, b.build("fwd"));
  }
  return impl;
}

TEST(ParallelExplorer, VerifyRegularThreadsKnob) {
  const zoo::SrswRegisterLayout lay{2};
  const auto impl = passthrough_srsw_register();
  const std::vector<std::vector<InvId>> scripts{{lay.read(), lay.read()},
                                                {lay.write(1)}};
  VerifyOptions sequential;
  sequential.threads = 1;
  VerifyOptions parallel = sequential;
  parallel.threads = 8;
  const auto seq = verify_regular(impl, scripts, 2, sequential);
  const auto par = verify_regular(impl, scripts, 2, parallel);
  EXPECT_TRUE(par.ok) << par.detail;
  EXPECT_EQ(seq.ok, par.ok);
  EXPECT_EQ(seq.stats.configs, par.stats.configs);
  EXPECT_EQ(seq.stats.depth, par.stats.depth);
}

}  // namespace
}  // namespace wfregs
