// Tests for the persistent verdict store: round-trips, reopen persistence,
// last-writer-wins, byte-granular torn-tail recovery, and real crash safety
// (a forked writer SIGKILLed mid-append).
#include "wfregs/service/store.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace wfregs::service {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "wfregs_store_" + std::to_string(::getpid()) +
         "_" + name;
}

/// A synthetic verdict whose every field is a function of `i`, so crash
/// tests can validate content, not just presence.
Verdict verdict_of(std::uint64_t i) {
  Verdict v;
  v.kind = static_cast<JobKind>(i % 3);
  v.ok = i % 2 == 0;
  v.wait_free = i % 3 != 0;
  v.complete = true;
  v.detail = "record " + std::to_string(i);
  v.stats.configs = i * 17 + 1;
  v.stats.edges = i * 5;
  v.stats.terminals = i + 2;
  v.stats.interned_configs = i * 17 + 1;
  v.stats.depth = static_cast<int>(i % 40);
  v.stats.max_accesses = {i, i + 1};
  v.stats.max_accesses_by_inv = {{i}, {i, i * 2}};
  v.provenance = i % 2 == 0 ? Provenance::kExplored : Provenance::kStatic;
  return v;
}

JobKey key_of(std::uint64_t i) {
  return hash_job_text("store-test-" + std::to_string(i));
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<char>& bytes,
                std::size_t len) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(len));
}

TEST(VerdictStore, InMemoryRoundTrip) {
  VerdictStore store("");
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.file_bytes(), 0u);
  for (std::uint64_t i = 0; i < 50; ++i) store.put(key_of(i), verdict_of(i));
  EXPECT_EQ(store.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto got = store.lookup(key_of(i));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_TRUE(*got == verdict_of(i)) << i;
  }
  EXPECT_FALSE(store.lookup(key_of(999)).has_value());
}

TEST(VerdictStore, ProvenanceSurvivesEncodingAndRejectsUnknownValues) {
  // verdict_of alternates kExplored / kStatic, so the round-trip above
  // already covers both; here the byte itself: version 2 placed it right
  // after the flags byte, and the decoder must reject values outside the
  // enum rather than aliasing them onto a real provenance.
  Verdict v = verdict_of(7);
  ASSERT_EQ(v.provenance, Provenance::kStatic);
  std::vector<std::uint8_t> bytes = encode_verdict(v);
  EXPECT_TRUE(decode_verdict(bytes.data(), bytes.size()) == v);
  bytes[3] = 0xFF;  // version, kind, flags, provenance, ...
  EXPECT_THROW(decode_verdict(bytes.data(), bytes.size()),
               std::runtime_error);
}

TEST(VerdictStore, DecisionProjectionMasksEverythingButTheDecision) {
  // A statically decided verdict and an explored one for the same job agree
  // as decisions: equal projections (and equal projection bytes) despite
  // different stats, detail and provenance.
  Verdict statically;
  statically.kind = JobKind::kConsensus;
  statically.ok = false;
  statically.wait_free = true;
  statically.complete = true;
  statically.detail = "statically refuted";
  statically.provenance = Provenance::kStatic;
  Verdict explored = statically;
  explored.detail = "agreement violated at depth 3";
  explored.provenance = Provenance::kExplored;
  explored.stats.configs = 412;
  explored.stats.depth = 9;
  EXPECT_FALSE(statically == explored);
  EXPECT_TRUE(decision_projection(statically) ==
              decision_projection(explored));
  EXPECT_EQ(encode_verdict(decision_projection(statically)),
            encode_verdict(decision_projection(explored)));
  // But a flipped decision bit must show through the projection.
  explored.ok = true;
  EXPECT_FALSE(decision_projection(statically) ==
               decision_projection(explored));
}

TEST(VerdictStore, PersistsAcrossReopen) {
  const std::string path = temp_path("reopen.log");
  std::remove(path.c_str());
  {
    VerdictStore store(path);
    for (std::uint64_t i = 0; i < 20; ++i) store.put(key_of(i), verdict_of(i));
    EXPECT_GT(store.file_bytes(), 8u);
  }
  VerdictStore store(path);
  EXPECT_EQ(store.size(), 20u);
  EXPECT_EQ(store.recovered_drop(), 0u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    const auto got = store.lookup(key_of(i));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_TRUE(*got == verdict_of(i)) << i;
  }
  std::remove(path.c_str());
}

TEST(VerdictStore, LastWriterWins) {
  const std::string path = temp_path("rewrite.log");
  std::remove(path.c_str());
  {
    VerdictStore store(path);
    store.put(key_of(0), verdict_of(0));
    store.put(key_of(0), verdict_of(7));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_TRUE(*store.lookup(key_of(0)) == verdict_of(7));
  }
  // Both records are in the log; replay must also keep the later one.
  VerdictStore store(path);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(*store.lookup(key_of(0)) == verdict_of(7));
  std::remove(path.c_str());
}

TEST(VerdictStore, TornTailTruncatedAtEveryByte) {
  const std::string path = temp_path("torn.log");
  std::remove(path.c_str());
  std::vector<std::size_t> boundaries;  // file size after header, rec 0, 1, 2
  {
    VerdictStore store(path);
    boundaries.push_back(store.file_bytes());
    for (std::uint64_t i = 0; i < 3; ++i) {
      store.put(key_of(i), verdict_of(i));
      boundaries.push_back(store.file_bytes());
    }
  }
  const std::vector<char> full = read_file(path);
  ASSERT_EQ(full.size(), boundaries.back());

  const std::string torn = temp_path("torn_cut.log");
  for (std::size_t len = boundaries.front(); len < full.size(); ++len) {
    write_file(torn, full, len);
    VerdictStore store(torn);
    // Every record wholly inside the prefix survives; the torn one is gone.
    std::size_t expect = 0;
    while (expect + 1 < boundaries.size() && boundaries[expect + 1] <= len) {
      ++expect;
    }
    ASSERT_EQ(store.size(), expect) << "prefix length " << len;
    for (std::uint64_t i = 0; i < expect; ++i) {
      const auto got = store.lookup(key_of(i));
      ASSERT_TRUE(got.has_value()) << "prefix " << len << " record " << i;
      EXPECT_TRUE(*got == verdict_of(i));
    }
    EXPECT_FALSE(store.lookup(key_of(expect)).has_value());
    const bool at_boundary = len == boundaries[expect];
    EXPECT_EQ(store.recovered_drop() > 0, !at_boundary)
        << "prefix length " << len;
  }
  std::remove(path.c_str());
  std::remove(torn.c_str());
}

TEST(VerdictStore, CorruptPayloadByteDropsOnlyTheTail) {
  const std::string path = temp_path("corrupt.log");
  std::remove(path.c_str());
  std::size_t second_boundary = 0;
  {
    VerdictStore store(path);
    store.put(key_of(0), verdict_of(0));
    store.put(key_of(1), verdict_of(1));
    second_boundary = store.file_bytes();
    store.put(key_of(2), verdict_of(2));
  }
  std::vector<char> bytes = read_file(path);
  bytes[second_boundary + 30] ^= 0x5A;  // a payload byte of record 2
  write_file(path, bytes, bytes.size());
  VerdictStore store(path);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_GT(store.recovered_drop(), 0u);
  EXPECT_TRUE(*store.lookup(key_of(0)) == verdict_of(0));
  EXPECT_TRUE(*store.lookup(key_of(1)) == verdict_of(1));
  EXPECT_FALSE(store.lookup(key_of(2)).has_value());
  // The truncated log appends cleanly again.
  store.put(key_of(2), verdict_of(2));
  EXPECT_EQ(store.size(), 3u);
  std::remove(path.c_str());
}

TEST(VerdictStore, SigkillMidAppendRecoversEveryCommittedRecord) {
  const std::string path = temp_path("sigkill.log");
  std::remove(path.c_str());
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: append records as fast as possible until killed.
    VerdictStore store(path);
    for (std::uint64_t i = 0;; ++i) store.put(key_of(i), verdict_of(i));
    ::_exit(0);  // unreachable
  }
  // Let the child commit a bunch of records mid-stream, then kill it hard.
  ::usleep(100 * 1000);
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  // Restart: every committed record must decode with the right content, and
  // the committed set must be a prefix (no holes).
  VerdictStore store(path);
  const std::size_t n = store.size();
  EXPECT_GT(n, 0u) << "child was killed before committing anything";
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto got = store.lookup(key_of(i));
    ASSERT_TRUE(got.has_value()) << "hole at record " << i << " of " << n;
    EXPECT_TRUE(*got == verdict_of(i)) << i;
  }
  EXPECT_FALSE(store.lookup(key_of(n)).has_value());
  // And the recovered log keeps accepting appends.
  store.put(key_of(n), verdict_of(n));
  EXPECT_TRUE(*store.lookup(key_of(n)) == verdict_of(n));
  std::remove(path.c_str());
}

/// Merges every committed record of the log at `src` into `dst`, the
/// fleet's replication primitive driven offline (what `wfregs_cli
/// store-merge` does).  Returns the number of records applied.
std::size_t merge_log_into(VerdictStore* dst, const std::string& src) {
  const std::vector<char> bytes = read_file(src);
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
  EXPECT_TRUE(check_store_header(data, bytes.size()));
  std::vector<StoreRecord> records;
  parse_store_records(data + kStoreHeaderBytes,
                      bytes.size() - kStoreHeaderBytes, &records);
  std::size_t applied = 0;
  for (const StoreRecord& record : records) {
    if (dst->merge_encoded(record.key, record.payload)) ++applied;
  }
  return applied;
}

TEST(VerdictStoreMerge, DisjointLogsMergeByteIdenticalToASingleStore) {
  // Differential: 10 verdicts written to one store must equal, per key and
  // as ENCODED BYTES, the merge of two disjoint 5-verdict logs.
  const std::string all = temp_path("merge_all.log");
  const std::string a = temp_path("merge_a.log");
  const std::string b = temp_path("merge_b.log");
  const std::string merged = temp_path("merge_dst.log");
  for (const auto* p : {&all, &a, &b, &merged}) std::remove(p->c_str());
  {
    VerdictStore single(all);
    VerdictStore left(a);
    VerdictStore right(b);
    for (std::uint64_t i = 0; i < 10; ++i) {
      single.put(key_of(i), verdict_of(i));
      (i % 2 == 0 ? left : right).put(key_of(i), verdict_of(i));
    }
  }
  VerdictStore dst(merged);
  EXPECT_EQ(merge_log_into(&dst, a), 5u);
  EXPECT_EQ(merge_log_into(&dst, b), 5u);
  const VerdictStore reference(all);
  ASSERT_EQ(dst.size(), reference.size());
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto got = dst.lookup_encoded(key_of(i));
    const auto want = reference.lookup_encoded(key_of(i));
    ASSERT_TRUE(got.has_value() && want.has_value()) << "key " << i;
    EXPECT_EQ(*got, *want) << "key " << i << " not byte-identical";
  }
  for (const auto* p : {&all, &a, &b, &merged}) std::remove(p->c_str());
}

TEST(VerdictStoreMerge, OverlappingLogsMergeIdempotently) {
  // Keys 0..6 and 3..9 overlap on 3..6; the overlap must be skipped (no
  // log growth) and the result must still match the single-store run.
  const std::string a = temp_path("overlap_a.log");
  const std::string b = temp_path("overlap_b.log");
  const std::string merged = temp_path("overlap_dst.log");
  for (const auto* p : {&a, &b, &merged}) std::remove(p->c_str());
  {
    VerdictStore left(a);
    VerdictStore right(b);
    for (std::uint64_t i = 0; i < 7; ++i) left.put(key_of(i), verdict_of(i));
    for (std::uint64_t i = 3; i < 10; ++i) right.put(key_of(i), verdict_of(i));
  }
  VerdictStore dst(merged);
  EXPECT_EQ(merge_log_into(&dst, a), 7u);
  EXPECT_EQ(merge_log_into(&dst, b), 3u);  // 3..6 already present: skipped
  EXPECT_EQ(dst.size(), 10u);
  const std::uint64_t bytes_after_merge = dst.file_bytes();
  // Re-merging either source is a no-op: zero applied, zero growth.
  EXPECT_EQ(merge_log_into(&dst, a), 0u);
  EXPECT_EQ(merge_log_into(&dst, b), 0u);
  EXPECT_EQ(dst.file_bytes(), bytes_after_merge);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto got = dst.lookup_encoded(key_of(i));
    ASSERT_TRUE(got.has_value()) << "key " << i;
    EXPECT_EQ(*got, encode_verdict(verdict_of(i))) << "key " << i;
  }
  for (const auto* p : {&a, &b, &merged}) std::remove(p->c_str());
}

TEST(VerdictStoreMerge, TornTailOnOneSideDropsOnlyTheTornRecord) {
  // One source log loses the back half of its final record (mid-append
  // crash); the merge must land every committed record and silently skip
  // the torn one -- parse_store_records applies the same recovery rule as
  // open()-time replay.
  const std::string a = temp_path("torn_a.log");
  const std::string b = temp_path("torn_b.log");
  const std::string merged = temp_path("torn_dst.log");
  for (const auto* p : {&a, &b, &merged}) std::remove(p->c_str());
  {
    VerdictStore left(a);
    VerdictStore right(b);
    for (std::uint64_t i = 0; i < 4; ++i) left.put(key_of(i), verdict_of(i));
    for (std::uint64_t i = 4; i < 8; ++i) right.put(key_of(i), verdict_of(i));
  }
  const std::vector<char> bytes = read_file(b);
  write_file(b, bytes, bytes.size() - 7);  // tear the last record
  VerdictStore dst(merged);
  EXPECT_EQ(merge_log_into(&dst, a), 4u);
  EXPECT_EQ(merge_log_into(&dst, b), 3u);  // torn record 7 dropped
  EXPECT_EQ(dst.size(), 7u);
  EXPECT_FALSE(dst.lookup_encoded(key_of(7)).has_value());
  for (std::uint64_t i = 0; i < 7; ++i) {
    const auto got = dst.lookup_encoded(key_of(i));
    ASSERT_TRUE(got.has_value()) << "key " << i;
    EXPECT_EQ(*got, encode_verdict(verdict_of(i))) << "key " << i;
  }
  for (const auto* p : {&a, &b, &merged}) std::remove(p->c_str());
}

TEST(VerdictStoreMerge, PutEncodedRejectsMalformedPayloads) {
  VerdictStore store("");
  EXPECT_THROW(store.put_encoded(key_of(0), {0x01, 0x02, 0x03}),
               std::runtime_error);
  EXPECT_EQ(store.size(), 0u);  // nothing committed
  // A valid payload through the encoded path reads back byte-identical.
  const std::vector<std::uint8_t> payload = encode_verdict(verdict_of(1));
  store.put_encoded(key_of(1), payload);
  EXPECT_EQ(store.lookup_encoded(key_of(1)), payload);
}

}  // namespace
}  // namespace wfregs::service
