// Tests for TypeSpec text serialization: round-trip stability over the whole
// zoo and over random types, plus parser error reporting.
#include "wfregs/typesys/serialize.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/registers/mrsw.hpp"
#include "wfregs/registers/weak.hpp"
#include "wfregs/runtime/implementation.hpp"
#include "wfregs/typesys/random_type.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

TEST(Serialize, HandWrittenExample) {
  const std::string text = R"(
# a 3-position turnstile
type turnstile
ports 2
states 3 pos0 pos1 pos2
invocations 1 click
responses 3 r0 r1 r2
delta pos0 * click -> pos1 r1
delta pos1 * click -> pos2 r2
delta pos2 * click -> pos0 r0
)";
  const auto t = parse_type(text);
  EXPECT_EQ(t.name(), "turnstile");
  EXPECT_EQ(t.ports(), 2);
  EXPECT_EQ(t.num_states(), 3);
  EXPECT_TRUE(t.is_deterministic());
  EXPECT_TRUE(t.is_oblivious());
  EXPECT_EQ(t.delta_det(0, 1, 0).next, 1);
  EXPECT_EQ(t.state_name(2), "pos2");
}

TEST(Serialize, IndicesWorkInPlaceOfNames) {
  const std::string text = R"(
type t
ports 1
states 2
invocations 1
responses 2
delta 0 0 0 -> 1 1
delta 1 * 0 -> 0 0
)";
  const auto t = parse_type(text);
  EXPECT_EQ(t.delta_det(0, 0, 0).resp, 1);
  EXPECT_EQ(t.delta_det(1, 0, 0).resp, 0);
}

TEST(Serialize, NondeterminismByRepetition) {
  const std::string text = R"(
type coin
ports 1
states 1 s
invocations 1 flip
responses 2 heads tails
delta s * flip -> s heads
delta s * flip -> s tails
)";
  const auto t = parse_type(text);
  EXPECT_FALSE(t.is_deterministic());
  EXPECT_EQ(t.delta(0, 0, 0).size(), 2u);
}

TEST(Serialize, PerPortDeltas) {
  const std::string text = R"(
type flag
ports 2
states 2 down up
invocations 1 touch
responses 3 n0 n1 ok
delta down 0 touch -> down n0
delta down 1 touch -> up ok
delta up 0 touch -> up n1
delta up 1 touch -> up ok
)";
  const auto t = parse_type(text);
  EXPECT_FALSE(t.is_oblivious());
  EXPECT_EQ(t, zoo::port_flag_type(2));
}

TEST(Serialize, RoundTripOverTheZoo) {
  for (const auto& t :
       {zoo::bit_type(2), zoo::register_type(3, 2), zoo::one_use_bit_type(),
        zoo::test_and_set_type(2), zoo::fetch_and_add_type(3, 2),
        zoo::cas_type(2, 2), zoo::cas_old_type(2, 2),
        zoo::sticky_bit_type(2), zoo::queue_type(2, 2, 2),
        zoo::stack_type(2, 2, 2), zoo::consensus_type(3),
        zoo::multi_consensus_type(3, 2), zoo::snapshot_type(2, 2),
        zoo::srsw_register_type(3), zoo::mrsw_register_type(2, 2),
        zoo::weak_bit_type(zoo::WeakBitKind::kSafe),
        zoo::weak_bit_type(zoo::WeakBitKind::kRegular),
        zoo::port_flag_type(3), zoo::trivial_toggle_type(2),
        zoo::nondet_coin_type(2)}) {
    SCOPED_TRACE(t.name());
    const auto round = parse_type(print_type(t));
    EXPECT_EQ(round, t);
    EXPECT_EQ(round.name(), t.name());
  }
}

class SerializeRandomSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeRandomSweep, RoundTripIsIdentity) {
  RandomTypeParams params;
  params.ports = 3;
  params.num_states = 6;
  params.num_invocations = 3;
  params.num_responses = 3;
  params.branching = (GetParam() % 2) ? 2 : 1;
  params.oblivious = (GetParam() % 3 == 0);
  const auto t = random_type(params, GetParam());
  const auto round = parse_type(print_type(t));
  EXPECT_EQ(round, t);
  // Idempotence: printing the reparse yields the same text.
  EXPECT_EQ(print_type(round), print_type(t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRandomSweep,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(Serialize, ParserErrorsCarryLineNumbers) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle) {
    try {
      parse_type(text);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("bogus 1\n", "unknown keyword");
  expect_error("type t\nports 1\ndelta 0 0 0 -> 0 0\n", "headers");
  expect_error(
      "type t\nports 1\nstates 1\ninvocations 1\nresponses 1\n"
      "delta 9 0 0 -> 0 0\n",
      "unknown state");
  expect_error(
      "type t\nports 1\nstates 1\ninvocations 1\nresponses 1\n"
      "delta 0 0 0 => 0 0\n",
      "expected");
  expect_error("type t\nports 1\nstates 1\ninvocations 1\nresponses 1\n",
               "no transitions");
  // Partial tables are rejected by validation.
  expect_error(
      "type t\nports 1\nstates 2\ninvocations 1\nresponses 1\n"
      "delta 0 0 0 -> 0 0\n",
      "missing transition");
}

TEST(Serialize, FileRoundTrip) {
  const auto t = zoo::queue_type(2, 2, 2);
  const std::string path = ::testing::TempDir() + "/queue.wftype";
  save_type(t, path);
  EXPECT_EQ(load_type(path), t);
  EXPECT_THROW(load_type("/nonexistent/nowhere.wftype"),
               std::runtime_error);
}

// ---- whole-job serialization: implementations -----------------------------

TEST(SerializeImpl, LibraryImplementationsRoundTripStable) {
  const std::vector<std::shared_ptr<const Implementation>> impls = {
      consensus::from_test_and_set(),
      consensus::from_queue(),
      consensus::from_fetch_and_add(),
      registers::regular_bit_from_safe(1),
      registers::regular_multivalued_from_bits(3, 1),
  };
  for (const auto& impl : impls) {
    const std::string text = print_implementation(*impl);
    const auto reparsed = parse_implementation(text);
    EXPECT_EQ(print_implementation(*reparsed), text) << impl->name();
    EXPECT_EQ(reparsed->name(), impl->name());
  }
}

TEST(SerializeImpl, NestedImplementationsRoundTripStable) {
  // mrsw_register over Simpson sub-registers nests implementations two
  // levels deep -- the `object nested` branch of the format.
  const auto impl = registers::mrsw_register(
      2, 2, 0, 2, registers::simpson_srsw_factory());
  const std::string text = print_implementation(*impl);
  const auto reparsed = parse_implementation(text);
  EXPECT_EQ(print_implementation(*reparsed), text);
}

TEST(SerializeImpl, RoundTripPreservesBehaviour) {
  const auto impl = consensus::from_test_and_set();
  const auto reparsed =
      parse_implementation(print_implementation(*impl));
  const auto a = consensus::check_consensus(impl);
  const auto b = consensus::check_consensus(reparsed);
  EXPECT_EQ(a.solves, b.solves);
  EXPECT_EQ(a.wait_free, b.wait_free);
  EXPECT_EQ(a.configs, b.configs);
  EXPECT_EQ(a.terminals, b.terminals);
  EXPECT_EQ(a.depth, b.depth);
}

TEST(SerializeImpl, HandBuiltControlFlowAndPersistentState) {
  // Covers every instruction form (branch/jump/fail included), persistent
  // slots, per-port-distinct programs and the '*' collapse in one impl.
  auto iface = std::make_shared<const TypeSpec>(zoo::bit_type(2));
  auto impl = std::make_shared<Implementation>("toy", iface, 0);
  impl->set_persistent({1, 2});
  impl->add_base(std::make_shared<const TypeSpec>(zoo::bit_type(2)), 0,
                 {0, 1});
  const zoo::RegisterLayout bit{2};

  ProgramBuilder b0;
  {
    Label done = b0.make_label();
    Label spin = b0.make_label();
    b0.bind(spin);
    b0.invoke(0, lit(bit.read()), 2);
    b0.branch_if(reg(2) == lit(1), done);
    b0.jump(spin);
    b0.bind(done);
    b0.assign(3, reg(2) + lit(1));
    b0.ret(reg(3));
  }
  ProgramBuilder b1;
  b1.invoke(0, lit(bit.read()), 2);
  b1.ret(reg(2));
  ProgramBuilder bw;
  bw.fail("never");
  impl->set_program(bit.read(), 0, b0.build("reader0"));
  impl->set_program(bit.read(), 1, b1.build("reader1"));
  impl->set_program_all_ports(bit.write(0), bw.build("no_write"));

  const std::string text = print_implementation(*impl);
  EXPECT_NE(text.find("persistent 2 1 2"), std::string::npos);
  EXPECT_NE(text.find("program 1 * no_write"), std::string::npos);
  EXPECT_NE(text.find("program 0 0 reader0"), std::string::npos);
  EXPECT_NE(text.find("program 0 1 reader1"), std::string::npos);
  const auto reparsed = parse_implementation(text);
  EXPECT_EQ(print_implementation(*reparsed), text);
}

TEST(SerializeImpl, ParserRejectsMalformedInput) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle) {
    try {
      parse_implementation(text);
      FAIL() << "no error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("", "unexpected end");
  expect_error("impl x\nbogus\n", "iface_initial");
  expect_error("impl x\niface_initial 0\niface\nend iface\nend impl\n",
               "nested type");
  const std::string good =
      print_implementation(*consensus::from_test_and_set());
  expect_error(good + "trailing\n", "trailing");
}

// ---- whole-job serialization: verify options ------------------------------

TEST(SerializeOptions, RoundTripAllFields) {
  for (const Reduction r : {Reduction::kNone, Reduction::kSleep,
                            Reduction::kSleepSymmetry}) {
    for (const bool precheck : {false, true}) {
      VerifyOptions options;
      options.limits.max_configs = 12345;
      options.limits.max_depth = 77;
      options.limits.track_access_bounds = true;
      options.limits.stop_at_violation = false;
      options.reduction = r;
      const std::string text = print_verify_options(options, precheck);
      bool got_precheck = !precheck;
      const VerifyOptions back = parse_verify_options(text, &got_precheck);
      EXPECT_EQ(back.limits.max_configs, options.limits.max_configs);
      EXPECT_EQ(back.limits.max_depth, options.limits.max_depth);
      EXPECT_EQ(back.limits.track_access_bounds,
                options.limits.track_access_bounds);
      EXPECT_EQ(back.limits.stop_at_violation,
                options.limits.stop_at_violation);
      EXPECT_EQ(back.reduction, options.reduction);
      EXPECT_EQ(got_precheck, precheck);
      EXPECT_EQ(print_verify_options(back, got_precheck), text);
    }
  }
}

TEST(SerializeOptions, NormalizationDropsThreadCount) {
  VerifyOptions a, b;
  a.threads = 1;
  b.threads = 16;
  EXPECT_EQ(print_verify_options(a), print_verify_options(b));
}

TEST(SerializeOptions, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_verify_options("options\n"), std::runtime_error);
  EXPECT_THROW(parse_verify_options("options\nbogus 1\nend options\n"),
               std::runtime_error);
  EXPECT_THROW(
      parse_verify_options("options\nmax_configs ten\nend options\n"),
      std::runtime_error);
  EXPECT_THROW(
      parse_verify_options("options\nreduction some\nend options\n"),
      std::runtime_error);
}

}  // namespace
}  // namespace wfregs
