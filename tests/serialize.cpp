// Tests for TypeSpec text serialization: round-trip stability over the whole
// zoo and over random types, plus parser error reporting.
#include "wfregs/typesys/serialize.hpp"

#include <gtest/gtest.h>

#include "wfregs/typesys/random_type.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

TEST(Serialize, HandWrittenExample) {
  const std::string text = R"(
# a 3-position turnstile
type turnstile
ports 2
states 3 pos0 pos1 pos2
invocations 1 click
responses 3 r0 r1 r2
delta pos0 * click -> pos1 r1
delta pos1 * click -> pos2 r2
delta pos2 * click -> pos0 r0
)";
  const auto t = parse_type(text);
  EXPECT_EQ(t.name(), "turnstile");
  EXPECT_EQ(t.ports(), 2);
  EXPECT_EQ(t.num_states(), 3);
  EXPECT_TRUE(t.is_deterministic());
  EXPECT_TRUE(t.is_oblivious());
  EXPECT_EQ(t.delta_det(0, 1, 0).next, 1);
  EXPECT_EQ(t.state_name(2), "pos2");
}

TEST(Serialize, IndicesWorkInPlaceOfNames) {
  const std::string text = R"(
type t
ports 1
states 2
invocations 1
responses 2
delta 0 0 0 -> 1 1
delta 1 * 0 -> 0 0
)";
  const auto t = parse_type(text);
  EXPECT_EQ(t.delta_det(0, 0, 0).resp, 1);
  EXPECT_EQ(t.delta_det(1, 0, 0).resp, 0);
}

TEST(Serialize, NondeterminismByRepetition) {
  const std::string text = R"(
type coin
ports 1
states 1 s
invocations 1 flip
responses 2 heads tails
delta s * flip -> s heads
delta s * flip -> s tails
)";
  const auto t = parse_type(text);
  EXPECT_FALSE(t.is_deterministic());
  EXPECT_EQ(t.delta(0, 0, 0).size(), 2u);
}

TEST(Serialize, PerPortDeltas) {
  const std::string text = R"(
type flag
ports 2
states 2 down up
invocations 1 touch
responses 3 n0 n1 ok
delta down 0 touch -> down n0
delta down 1 touch -> up ok
delta up 0 touch -> up n1
delta up 1 touch -> up ok
)";
  const auto t = parse_type(text);
  EXPECT_FALSE(t.is_oblivious());
  EXPECT_EQ(t, zoo::port_flag_type(2));
}

TEST(Serialize, RoundTripOverTheZoo) {
  for (const auto& t :
       {zoo::bit_type(2), zoo::register_type(3, 2), zoo::one_use_bit_type(),
        zoo::test_and_set_type(2), zoo::fetch_and_add_type(3, 2),
        zoo::cas_type(2, 2), zoo::cas_old_type(2, 2),
        zoo::sticky_bit_type(2), zoo::queue_type(2, 2, 2),
        zoo::stack_type(2, 2, 2), zoo::consensus_type(3),
        zoo::multi_consensus_type(3, 2), zoo::snapshot_type(2, 2),
        zoo::srsw_register_type(3), zoo::mrsw_register_type(2, 2),
        zoo::weak_bit_type(zoo::WeakBitKind::kSafe),
        zoo::weak_bit_type(zoo::WeakBitKind::kRegular),
        zoo::port_flag_type(3), zoo::trivial_toggle_type(2),
        zoo::nondet_coin_type(2)}) {
    SCOPED_TRACE(t.name());
    const auto round = parse_type(print_type(t));
    EXPECT_EQ(round, t);
    EXPECT_EQ(round.name(), t.name());
  }
}

class SerializeRandomSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeRandomSweep, RoundTripIsIdentity) {
  RandomTypeParams params;
  params.ports = 3;
  params.num_states = 6;
  params.num_invocations = 3;
  params.num_responses = 3;
  params.branching = (GetParam() % 2) ? 2 : 1;
  params.oblivious = (GetParam() % 3 == 0);
  const auto t = random_type(params, GetParam());
  const auto round = parse_type(print_type(t));
  EXPECT_EQ(round, t);
  // Idempotence: printing the reparse yields the same text.
  EXPECT_EQ(print_type(round), print_type(t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRandomSweep,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(Serialize, ParserErrorsCarryLineNumbers) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle) {
    try {
      parse_type(text);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("bogus 1\n", "unknown keyword");
  expect_error("type t\nports 1\ndelta 0 0 0 -> 0 0\n", "headers");
  expect_error(
      "type t\nports 1\nstates 1\ninvocations 1\nresponses 1\n"
      "delta 9 0 0 -> 0 0\n",
      "unknown state");
  expect_error(
      "type t\nports 1\nstates 1\ninvocations 1\nresponses 1\n"
      "delta 0 0 0 => 0 0\n",
      "expected");
  expect_error("type t\nports 1\nstates 1\ninvocations 1\nresponses 1\n",
               "no transitions");
  // Partial tables are rejected by validation.
  expect_error(
      "type t\nports 1\nstates 2\ninvocations 1\nresponses 1\n"
      "delta 0 0 0 -> 0 0\n",
      "missing transition");
}

TEST(Serialize, FileRoundTrip) {
  const auto t = zoo::queue_type(2, 2, 2);
  const std::string path = ::testing::TempDir() + "/queue.wftype";
  save_type(t, path);
  EXPECT_EQ(load_type(path), t);
  EXPECT_THROW(load_type("/nonexistent/nowhere.wftype"),
               std::runtime_error);
}

}  // namespace
}  // namespace wfregs
