// Unit tests for the type zoo: every builder must produce a total spec whose
// sequential behaviour matches the intended data type, and whose structural
// classification (deterministic / oblivious) is as documented.
#include "wfregs/typesys/type_zoo.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace wfregs {
namespace {

using namespace zoo;

TEST(RegisterType, ReadReturnsCurrentValueAndWriteSetsIt) {
  const auto t = register_type(4, 3);
  const RegisterLayout lay{4};
  EXPECT_TRUE(t.is_deterministic());
  EXPECT_TRUE(t.is_oblivious());
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(t.delta_det(lay.state_of(v), 0, lay.read()).resp,
              lay.value_resp(v));
    EXPECT_EQ(t.delta_det(lay.state_of(v), 0, lay.read()).next,
              lay.state_of(v));
    for (int w = 0; w < 4; ++w) {
      const auto tr = t.delta_det(lay.state_of(v), 0, lay.write(w));
      EXPECT_EQ(tr.next, lay.state_of(w));
      EXPECT_EQ(tr.resp, lay.ok());
    }
  }
}

TEST(RegisterType, RejectsDegenerateShapes) {
  EXPECT_THROW(register_type(1, 2), std::invalid_argument);
  EXPECT_THROW(register_type(2, 0), std::invalid_argument);
}

TEST(OneUseBitType, MatchesSection3Verbatim) {
  const auto t = one_use_bit_type();
  const OneUseBitLayout lay;
  EXPECT_EQ(t.ports(), 2);
  EXPECT_EQ(t.num_states(), 3);
  EXPECT_FALSE(t.is_deterministic());
  EXPECT_TRUE(t.is_oblivious());
  EXPECT_TRUE(t.is_total());
  // UNSET reads 0, SET reads 1, both dying.
  EXPECT_EQ(t.delta(lay.unset(), 0, lay.read()).size(), 1u);
  EXPECT_EQ(t.delta_det(lay.unset(), 0, lay.read()).resp, lay.zero());
  EXPECT_EQ(t.delta_det(lay.unset(), 0, lay.read()).next, lay.dead());
  EXPECT_EQ(t.delta_det(lay.set(), 0, lay.read()).resp, lay.one());
  EXPECT_EQ(t.delta_det(lay.set(), 0, lay.read()).next, lay.dead());
  // DEAD reads are nondeterministic over {0, 1}.
  const auto dead_reads = t.delta(lay.dead(), 0, lay.read());
  ASSERT_EQ(dead_reads.size(), 2u);
  EXPECT_EQ(dead_reads[0].next, lay.dead());
  EXPECT_EQ(dead_reads[1].next, lay.dead());
  // Writes: UNSET -> SET, SET -> DEAD, DEAD -> DEAD, all ok.
  EXPECT_EQ(t.delta_det(lay.unset(), 0, lay.write()).next, lay.set());
  EXPECT_EQ(t.delta_det(lay.set(), 0, lay.write()).next, lay.dead());
  EXPECT_EQ(t.delta_det(lay.dead(), 0, lay.write()).next, lay.dead());
  EXPECT_EQ(t.delta_det(lay.unset(), 0, lay.write()).resp, lay.ok());
}

TEST(ConsensusType, FirstProposalFixesAllResponses) {
  const auto t = consensus_type(3);
  const ConsensusLayout lay;
  EXPECT_TRUE(t.is_deterministic());
  EXPECT_TRUE(t.is_oblivious());
  for (int first = 0; first < 2; ++first) {
    const auto tr = t.delta_det(lay.bottom(), 0, lay.propose(first));
    EXPECT_EQ(tr.next, lay.decided(first));
    EXPECT_EQ(tr.resp, lay.decide_resp(first));
    for (int later = 0; later < 2; ++later) {
      const auto tr2 = t.delta_det(lay.decided(first), 1, lay.propose(later));
      EXPECT_EQ(tr2.next, lay.decided(first));
      EXPECT_EQ(tr2.resp, lay.decide_resp(first));
    }
  }
}

TEST(TestAndSetType, ReturnsOldValueAndSticksAtOne) {
  const auto t = test_and_set_type(2);
  const TestAndSetLayout lay;
  EXPECT_EQ(t.delta_det(0, 0, lay.test_and_set()).resp, lay.old_value(0));
  EXPECT_EQ(t.delta_det(0, 0, lay.test_and_set()).next, 1);
  EXPECT_EQ(t.delta_det(1, 0, lay.test_and_set()).resp, lay.old_value(1));
  EXPECT_EQ(t.delta_det(1, 0, lay.test_and_set()).next, 1);
}

TEST(FetchAndAddType, CountsUpAndSaturates) {
  const auto t = fetch_and_add_type(3, 2);
  const FetchAndAddLayout lay{3};
  StateId q = 0;
  for (int expected = 0; expected < 3; ++expected) {
    const auto tr = t.delta_det(q, 0, lay.fetch_and_add());
    EXPECT_EQ(tr.resp, lay.old_value(expected));
    q = tr.next;
  }
  // Saturated: stays at cap, keeps returning cap.
  const auto tr = t.delta_det(q, 0, lay.fetch_and_add());
  EXPECT_EQ(tr.resp, lay.old_value(3));
  EXPECT_EQ(tr.next, q);
}

TEST(CasType, SucceedsOnlyOnExpectedValue) {
  const auto t = cas_type(3, 4);
  const CasLayout lay{3};
  EXPECT_EQ(t.delta_det(0, 0, lay.cas(0, 2)).resp, lay.success());
  EXPECT_EQ(t.delta_det(0, 0, lay.cas(0, 2)).next, 2);
  EXPECT_EQ(t.delta_det(0, 0, lay.cas(1, 2)).resp, lay.failure());
  EXPECT_EQ(t.delta_det(0, 0, lay.cas(1, 2)).next, 0);
  EXPECT_EQ(t.delta_det(2, 0, lay.read()).resp, lay.value_resp(2));
}

TEST(StickyBitType, FirstJamSticksAndAllJamsReportStuckValue) {
  const auto t = sticky_bit_type(3);
  const StickyBitLayout lay;
  EXPECT_EQ(t.delta_det(lay.bottom_state(), 0, lay.jam(1)).next, lay.stuck(1));
  EXPECT_EQ(t.delta_det(lay.bottom_state(), 0, lay.jam(1)).resp,
            lay.value_resp(1));
  EXPECT_EQ(t.delta_det(lay.stuck(1), 0, lay.jam(0)).next, lay.stuck(1));
  EXPECT_EQ(t.delta_det(lay.stuck(1), 0, lay.jam(0)).resp, lay.value_resp(1));
  EXPECT_EQ(t.delta_det(lay.bottom_state(), 0, lay.read()).resp,
            lay.bottom());
}

TEST(QueueType, StateEnumerationCountsAllSequences) {
  const QueueLayout lay{3, 2};
  // lengths 0..3 over 2 values: 1 + 2 + 4 + 8 = 15.
  EXPECT_EQ(lay.num_states(), 15);
  const QueueLayout lay2{2, 3};
  EXPECT_EQ(lay2.num_states(), 1 + 3 + 9);
}

TEST(QueueType, FifoSemantics) {
  const auto t = queue_type(3, 2, 2);
  const QueueLayout lay{3, 2};
  const StateId empty = lay.state_of(std::array<int, 0>{});
  // enqueue 1, enqueue 0, dequeue -> 1, dequeue -> 0, dequeue -> empty.
  StateId q = t.delta_det(empty, 0, lay.enqueue(1)).next;
  q = t.delta_det(q, 0, lay.enqueue(0)).next;
  auto tr = t.delta_det(q, 0, lay.dequeue());
  EXPECT_EQ(tr.resp, lay.front_value(1));
  tr = t.delta_det(tr.next, 0, lay.dequeue());
  EXPECT_EQ(tr.resp, lay.front_value(0));
  tr = t.delta_det(tr.next, 0, lay.dequeue());
  EXPECT_EQ(tr.resp, lay.empty());
  EXPECT_EQ(tr.next, empty);
}

TEST(QueueType, EnqueueOnFullQueueReportsFullAndDropsNothing) {
  const auto t = queue_type(2, 2, 2);
  const QueueLayout lay{2, 2};
  const std::array<int, 2> content{1, 0};
  const StateId full = lay.state_of(content);
  const auto tr = t.delta_det(full, 0, lay.enqueue(1));
  EXPECT_EQ(tr.resp, lay.full());
  EXPECT_EQ(tr.next, full);
}

TEST(QueueType, StateOfRejectsBadContent) {
  const QueueLayout lay{2, 2};
  const std::array<int, 3> too_long{0, 0, 0};
  EXPECT_THROW(lay.state_of(too_long), std::out_of_range);
  const std::array<int, 1> bad_value{7};
  EXPECT_THROW(lay.state_of(bad_value), std::out_of_range);
}

TEST(DegenerateTypes, ShapesAreAsDocumented) {
  EXPECT_TRUE(trivial_toggle_type(2).is_deterministic());
  EXPECT_TRUE(trivial_sink_type(2).is_deterministic());
  EXPECT_FALSE(nondet_coin_type(2).is_deterministic());
  EXPECT_TRUE(nondet_coin_type(2).is_total());
  EXPECT_FALSE(port_flag_type(2).is_oblivious());
  EXPECT_TRUE(port_flag_type(2).is_deterministic());
  EXPECT_TRUE(mod_counter_type(3, 2).is_oblivious());
}

TEST(PortFlagType, Port1RaisesFlagAndPort0Observes) {
  const auto t = port_flag_type(3);
  const PortFlagLayout lay;
  EXPECT_EQ(t.delta_det(0, 0, lay.touch()).resp, lay.zero());
  EXPECT_EQ(t.delta_det(0, 1, lay.touch()).next, 1);
  EXPECT_EQ(t.delta_det(1, 0, lay.touch()).resp, lay.one());
  // Port 2 is inert.
  EXPECT_EQ(t.delta_det(0, 2, lay.touch()).next, 0);
  EXPECT_EQ(t.delta_det(0, 2, lay.touch()).resp, lay.ok());
}

TEST(ShiftRegisterType, ShiftsInBitsAndReturnsOldContents) {
  // w-bit shift register [Aspnes 2025]: shl(b) returns the old contents
  // and installs (2q + b) mod 2^w -- the top bit falls off.
  const auto t = shift_register_type(3, 2);
  const ShiftRegisterLayout lay{3};
  EXPECT_EQ(lay.capacity(), 8);
  EXPECT_TRUE(t.is_deterministic());
  EXPECT_TRUE(t.is_oblivious());
  EXPECT_TRUE(t.is_total());
  EXPECT_EQ(t.num_states(), 8);
  EXPECT_EQ(t.num_invocations(), 2);
  EXPECT_EQ(t.num_responses(), 8);
  for (int q = 0; q < 8; ++q) {
    for (int b = 0; b < 2; ++b) {
      const auto tr = t.delta_det(lay.state_of(q), 0, lay.shl(b));
      EXPECT_EQ(tr.resp, lay.old_resp(q));
      EXPECT_EQ(tr.next, lay.state_of((2 * q + b) % 8));
    }
  }
}

TEST(ShiftRegisterType, RejectsDegenerateShapes) {
  EXPECT_THROW(shift_register_type(0, 2), std::invalid_argument);
  EXPECT_THROW(shift_register_type(17, 2), std::invalid_argument);
  EXPECT_THROW(shift_register_type(2, 0), std::invalid_argument);
}

TEST(ModCounterType, WrapsAround) {
  const auto t = mod_counter_type(3, 2);
  EXPECT_EQ(t.delta_det(2, 0, 0).next, 0);
  EXPECT_EQ(t.delta_det(2, 0, 0).resp, 0);
  EXPECT_EQ(t.delta_det(0, 0, 0).resp, 1);
}

}  // namespace
}  // namespace wfregs
