// Tests for the Section 4.3 construction: a bounded-use SRSW bit from
// r_b * (w_b + 1) one-use bits.
#include "wfregs/core/bounded_register.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "wfregs/core/oneuse_from_type.hpp"
#include "wfregs/runtime/verify.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using core::bounded_bit_from_oneuse;
using core::oneuse_bits_needed;

const zoo::SrswRegisterLayout kBit{2};

TEST(OneUseBitsNeeded, MatchesPaperFormula) {
  EXPECT_EQ(oneuse_bits_needed(3, 2), 9);   // r_b (w_b + 1)
  EXPECT_EQ(oneuse_bits_needed(1, 0), 1);
  EXPECT_EQ(oneuse_bits_needed(0, 5), 0);
  EXPECT_THROW(oneuse_bits_needed(-1, 0), std::invalid_argument);
}

TEST(BoundedBit, StructureMatchesFormula) {
  const auto impl = bounded_bit_from_oneuse(3, 2, 0);
  EXPECT_EQ(impl->flattened_base_count(), 9);
  EXPECT_EQ(impl->iface().ports(), 2);
  EXPECT_THROW(bounded_bit_from_oneuse(1, 1, 7), std::out_of_range);
  EXPECT_THROW(bounded_bit_from_oneuse(-1, 1, 0), std::invalid_argument);
}

// Scenario sweep: writer performs a sequence of writes, reader interleaves
// reads; all schedules must linearize against the SRSW bit spec.
struct BoundedBitScenario {
  int initial;
  std::vector<int> writes;
  int reads;
};

class BoundedBitSweep
    : public ::testing::TestWithParam<BoundedBitScenario> {};

TEST_P(BoundedBitSweep, LinearizableUnderAllSchedules) {
  const auto& sc = GetParam();
  // Value-changing writes are what consume rows.
  int changes = 0;
  int cur = sc.initial;
  for (const int w : sc.writes) {
    if (w != cur) ++changes;
    cur = w;
  }
  const auto impl =
      bounded_bit_from_oneuse(sc.reads, changes, sc.initial);
  std::vector<InvId> reader_script(static_cast<std::size_t>(sc.reads),
                                   kBit.read());
  std::vector<InvId> writer_script;
  for (const int w : sc.writes) writer_script.push_back(kBit.write(w));
  const auto r =
      verify_linearizable(impl, {reader_script, writer_script});
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_TRUE(r.wait_free);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, BoundedBitSweep,
    ::testing::Values(BoundedBitScenario{0, {1}, 1},
                      BoundedBitScenario{0, {1, 0}, 2},
                      BoundedBitScenario{1, {0, 1}, 2},
                      BoundedBitScenario{0, {1, 1, 0}, 2},
                      BoundedBitScenario{1, {}, 3},
                      BoundedBitScenario{0, {0, 0}, 2}));

TEST(BoundedBit, SameValueWritesCostNothing) {
  // w_b = 0: every write repeats the initial value and must still succeed.
  const auto impl = bounded_bit_from_oneuse(1, 0, 1);
  const auto r = verify_linearizable(
      impl, {{kBit.read()}, {kBit.write(1), kBit.write(1)}});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(BoundedBit, ExceedingWriteBoundFailsLoudly) {
  const auto impl = bounded_bit_from_oneuse(1, 1, 0);
  EXPECT_THROW(verify_linearizable(
                   impl, {{}, {kBit.write(1), kBit.write(0)}}),
               std::runtime_error);
}

TEST(BoundedBit, ExceedingReadBoundFailsLoudly) {
  const auto impl = bounded_bit_from_oneuse(1, 1, 0);
  EXPECT_THROW(verify_linearizable(impl, {{kBit.read(), kBit.read()}, {}}),
               std::runtime_error);
}

// The paper's claim that the type's nondeterminism "will play no role": in
// all uses, no one-use bit is ever read in the DEAD state, so every access
// has exactly one possible transition.  We walk the whole configuration
// space and assert every pending access is deterministic.
TEST(BoundedBit, NoDeadReadsEver) {
  const auto impl = bounded_bit_from_oneuse(2, 2, 0);
  auto sys = std::make_shared<System>(2);
  const ObjectId obj = sys->add_implemented(impl, {0, 1});
  {
    ProgramBuilder b;
    b.invoke(0, lit(kBit.read()), 0);
    b.invoke(0, lit(kBit.read()), 0);
    b.ret(lit(0));
    sys->set_toplevel(0, b.build("reader"), {obj});
  }
  {
    ProgramBuilder b;
    b.invoke(0, lit(kBit.write(1)), 0);
    b.invoke(0, lit(kBit.write(0)), 0);
    b.ret(lit(0));
    sys->set_toplevel(1, b.build("writer"), {obj});
  }
  const Engine root{std::move(sys)};
  std::unordered_set<ConfigKey, ConfigKeyHash> seen;
  const auto walk = [&](const auto& self, const Engine& e) -> void {
    if (!seen.insert(e.config_key()).second) return;
    for (const ProcId p : e.runnable()) {
      ASSERT_EQ(e.pending_choices(p), 1)
          << "nondeterministic one-use-bit access (a DEAD read?)";
      Engine child = e;
      child.commit(p, 0);
      self(self, child);
    }
  };
  walk(walk, root);
  EXPECT_GT(seen.size(), 10u);
}

TEST(BoundedBit, WorksWithSynthesizedOneUseBits) {
  // One-use bits manufactured from test&set objects (Section 5.1) plugged
  // into the Section 4.3 array: the composed object is still an SRSW bit.
  const auto tas = zoo::test_and_set_type(2);
  const core::OneUseFactory factory = [&tas] {
    return core::oneuse_from_oblivious(tas);
  };
  const auto impl = bounded_bit_from_oneuse(2, 1, 0, factory);
  // All base objects are now test&sets.
  auto census_ok = true;
  for (const ObjectDecl& decl : impl->objects()) {
    census_ok = census_ok && !decl.is_base();
  }
  EXPECT_TRUE(census_ok);
  const auto r = verify_linearizable(
      impl, {{kBit.read(), kBit.read()}, {kBit.write(1)}});
  EXPECT_TRUE(r.ok) << r.detail;
}

}  // namespace
}  // namespace wfregs
