// Tests for the universality layer (Section 2.3): multi-valued consensus
// from binary consensus + registers, and Herlihy's universal construction
// of arbitrary deterministic types from consensus slots.
#include "wfregs/consensus/universal.hpp"

#include <gtest/gtest.h>

#include "wfregs/consensus/multivalued.hpp"
#include "wfregs/runtime/explorer.hpp"
#include "wfregs/runtime/verify.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using consensus::binary_slot_factory;
using consensus::multivalued_from_binary;
using consensus::universal_implementation;

// ---- multi-valued consensus -----------------------------------------------------

// Exhaustively checks agreement + validity of a multi-valued consensus
// implementation for every input vector over `values`.
void check_multivalued(const std::shared_ptr<const Implementation>& impl,
                       int values, int n) {
  const zoo::MultiConsensusLayout lay{values};
  std::vector<int> inputs(static_cast<std::size_t>(n), 0);
  const auto next_vector = [&inputs, values]() -> bool {
    for (auto& v : inputs) {
      if (++v < values) return true;
      v = 0;
    }
    return false;
  };
  do {
    auto sys = std::make_shared<System>(n);
    std::vector<PortId> ports;
    for (PortId p = 0; p < n; ++p) ports.push_back(p);
    const ObjectId obj = sys->add_implemented(impl, ports);
    for (ProcId p = 0; p < n; ++p) {
      ProgramBuilder b;
      b.invoke(0, lit(lay.propose(inputs[static_cast<std::size_t>(p)])), 0);
      b.ret(reg(0));
      sys->set_toplevel(p, b.build("p" + std::to_string(p)), {obj});
    }
    const auto check = [&inputs, n](const Engine& e)
        -> std::optional<std::string> {
      const Val decided = *e.result(0);
      for (ProcId p = 1; p < n; ++p) {
        if (*e.result(p) != decided) return "agreement violated";
      }
      for (int p = 0; p < n; ++p) {
        if (inputs[static_cast<std::size_t>(p)] == decided) {
          return std::nullopt;
        }
      }
      return "validity violated";
    };
    const Engine root{std::move(sys)};
    const auto out = explore(root, ExploreLimits{}, check);
    ASSERT_TRUE(out.wait_free);
    ASSERT_TRUE(out.complete);
    ASSERT_FALSE(out.violation.has_value())
        << *out.violation << " for inputs vector starting with "
        << inputs[0];
  } while (next_vector());
}

TEST(MultivaluedConsensus, TwoProcessesFourValues) {
  check_multivalued(multivalued_from_binary(4, 2), 4, 2);
}

TEST(MultivaluedConsensus, TwoProcessesThreeValues) {
  // Non-power-of-two value count exercises the prefix-matching path.
  check_multivalued(multivalued_from_binary(3, 2), 3, 2);
}

TEST(MultivaluedConsensus, ThreeProcessesThreeValues) {
  check_multivalued(multivalued_from_binary(3, 3), 3, 3);
}

TEST(MultivaluedConsensus, RejectsBadShapes) {
  EXPECT_THROW(multivalued_from_binary(1, 2), std::invalid_argument);
  EXPECT_THROW(multivalued_from_binary(2, 0), std::invalid_argument);
}

// ---- the universal construction ---------------------------------------------------

TEST(Universal, RegisterFromConsensusSlots) {
  const auto bit = zoo::bit_type(2);
  const zoo::RegisterLayout lay{2};
  const auto impl = universal_implementation(bit, 0, /*log_length=*/6);
  const auto r = verify_linearizable(
      impl, {{lay.write(1), lay.read()}, {lay.read(), lay.write(0)}});
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_TRUE(r.wait_free);
}

TEST(Universal, TestAndSetFromConsensusSlots) {
  const auto tas = zoo::test_and_set_type(2);
  const zoo::TestAndSetLayout lay;
  const auto impl = universal_implementation(tas, 0, 4);
  const auto r = verify_linearizable(
      impl, {{lay.test_and_set()}, {lay.test_and_set()}});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Universal, QueueFromConsensusSlots) {
  const auto q = zoo::queue_type(2, 2, 2);
  const zoo::QueueLayout lay{2, 2};
  const auto impl =
      universal_implementation(q, lay.state_of(std::array<int, 0>{}), 5);
  const auto r = verify_linearizable(
      impl,
      {{lay.enqueue(1), lay.dequeue()}, {lay.enqueue(0), lay.dequeue()}});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Universal, ThreeProcessCounter) {
  const auto counter = zoo::mod_counter_type(4, 3);
  const auto impl = universal_implementation(counter, 0, 4);
  const auto r = verify_linearizable(impl, {{0}, {0}, {0}});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Universal, LogExhaustionFailsLoudly) {
  const auto bit = zoo::bit_type(2);
  const zoo::RegisterLayout lay{2};
  const auto impl = universal_implementation(bit, 0, /*log_length=*/1);
  EXPECT_THROW(
      verify_linearizable(impl, {{lay.read(), lay.read()}, {}}),
      std::runtime_error);
}

TEST(Universal, ComposedDownToBinaryConsensusAndRegisters) {
  // The full tower: a bit implemented from consensus slots, each slot
  // multi-valued consensus from BINARY consensus + registers.  One
  // concurrent race, exhaustively explored.
  const auto bit = zoo::bit_type(2);
  const zoo::RegisterLayout lay{2};
  const auto impl =
      universal_implementation(bit, 0, 3, binary_slot_factory());
  EXPECT_GT(impl->flattened_base_count(), 10);
  const auto r = verify_linearizable(impl, {{lay.write(1)}, {lay.read()}});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Universal, RejectsBadInput) {
  EXPECT_THROW(universal_implementation(zoo::nondet_coin_type(2), 0, 4),
               std::invalid_argument);
  EXPECT_THROW(universal_implementation(zoo::bit_type(2), 9, 4),
               std::out_of_range);
  EXPECT_THROW(universal_implementation(zoo::bit_type(2), 0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace wfregs
