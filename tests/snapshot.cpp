// Tests for the atomic snapshot: the TypeSpec itself, the
// Afek-et-al-style construction from registers (verified exhaustively), and
// the classic fact that a snapshot -- despite strengthening registers --
// still cannot solve 2-process consensus.
#include "wfregs/registers/snapshot.hpp"

#include <gtest/gtest.h>

#include "wfregs/consensus/power.hpp"
#include "wfregs/runtime/fuzz.hpp"
#include "wfregs/runtime/verify.hpp"
#include "wfregs/typesys/triviality.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using registers::snapshot_from_registers;

// ---- the type spec ---------------------------------------------------------------

TEST(SnapshotType, UpdateSetsOwnComponentAndScanReportsAll) {
  const auto t = zoo::snapshot_type(2, 3);
  const zoo::SnapshotLayout lay{3, 2};
  EXPECT_EQ(t.num_states(), 8);
  EXPECT_FALSE(t.is_oblivious());  // updates are port-directed
  EXPECT_TRUE(t.is_deterministic());
  // From all-zero, port 1 updates to 1: view = 0b010 (id 2).
  StateId q = t.delta_det(0, 1, lay.update(1)).next;
  const std::array<int, 3> expected{0, 1, 0};
  EXPECT_EQ(q, lay.state_of(expected));
  EXPECT_EQ(t.delta_det(q, 0, lay.scan()).resp, lay.view_resp(expected));
  // Port 2 updates; port 1's component is untouched.
  q = t.delta_det(q, 2, lay.update(1)).next;
  const std::array<int, 3> expected2{0, 1, 1};
  EXPECT_EQ(q, lay.state_of(expected2));
  EXPECT_EQ(lay.component(lay.view_resp(expected2), 1), 1);
  EXPECT_EQ(lay.component(lay.view_resp(expected2), 0), 0);
}

TEST(SnapshotType, LayoutErrors) {
  const zoo::SnapshotLayout lay{2, 2};
  const std::array<int, 1> short_view{0};
  EXPECT_THROW(lay.view_resp(short_view), std::invalid_argument);
  const std::array<int, 2> bad{0, 5};
  EXPECT_THROW(lay.view_resp(bad), std::out_of_range);
}

TEST(SnapshotType, NonTrivialDeterministic) {
  // It can therefore implement one-use bits (Section 5.2) like everything
  // else in the deterministic world.
  EXPECT_FALSE(is_trivial_general(zoo::snapshot_type(2, 2)));
}

// ---- the construction ---------------------------------------------------------------

TEST(SnapshotFromRegisters, SequentialSemantics) {
  const zoo::SnapshotLayout lay{2, 2};
  const auto impl = snapshot_from_registers(2, 2, 3);
  // Port 0 updates then scans; port 1 idle.
  const auto r = verify_linearizable(
      impl, {{lay.update(1), lay.scan()}, {}});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(SnapshotFromRegisters, ConcurrentUpdateAndScanExhaustive) {
  const zoo::SnapshotLayout lay{2, 2};
  const auto impl = snapshot_from_registers(2, 2, 3);
  const auto r = verify_linearizable(
      impl, {{lay.scan(), lay.scan()}, {lay.update(1), lay.update(0)}});
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_TRUE(r.wait_free);
}

TEST(SnapshotFromRegisters, DuelingUpdatersExhaustive) {
  const zoo::SnapshotLayout lay{2, 2};
  const auto impl = snapshot_from_registers(2, 2, 3);
  const auto r = verify_linearizable(
      impl, {{lay.update(1), lay.scan()}, {lay.update(1), lay.scan()}});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(SnapshotFromRegisters, ThreePortsFuzzed) {
  // Three ports exceed comfortable exhaustive budgets; fuzz instead.
  const zoo::SnapshotLayout lay{3, 2};
  const auto impl = snapshot_from_registers(2, 3, 4);
  FuzzOptions options;
  options.runs = 40;
  const auto r = fuzz_linearizable(
      impl,
      {{lay.update(1), lay.scan()},
       {lay.scan(), lay.update(1)},
       {lay.update(1), lay.scan()}},
      options);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.runs, 40u);
}

TEST(SnapshotFromRegisters, UpdateOverflowFailsLoudly) {
  const zoo::SnapshotLayout lay{2, 2};
  const auto impl = snapshot_from_registers(2, 2, 1);
  EXPECT_THROW(
      verify_linearizable(impl, {{lay.update(1), lay.update(0)}, {}}),
      std::runtime_error);
}

TEST(SnapshotFromRegisters, ArgumentChecking) {
  EXPECT_THROW(snapshot_from_registers(1, 2, 3), std::invalid_argument);
  EXPECT_THROW(snapshot_from_registers(2, 1, 3), std::invalid_argument);
  EXPECT_THROW(snapshot_from_registers(2, 2, -1), std::invalid_argument);
}

// ---- still consensus number 1 ---------------------------------------------------------

TEST(Snapshot, CannotSolveTwoProcessConsensusAtDepthOne) {
  const auto spec =
      std::make_shared<const TypeSpec>(zoo::snapshot_type(2, 2));
  const auto r = consensus::synthesize_two_consensus({{spec, 0, {}}}, 1,
                                                     50000000);
  EXPECT_EQ(r.verdict, consensus::SynthesisVerdict::kUnsolvable);
}

}  // namespace
}  // namespace wfregs
