// Tests for the Section 5 constructions: one-use bits from non-trivial
// deterministic types (5.1 oblivious, 5.2 general) and from 2-process
// consensus (5.3).  Every synthesized implementation is verified by
// exhaustive exploration against the one-use bit specification -- including
// the concurrent read/write races the paper's correctness argument is
// about.
#include "wfregs/core/oneuse_from_type.hpp"

#include <gtest/gtest.h>

#include "wfregs/consensus/protocols.hpp"
#include "wfregs/core/oneuse_from_consensus.hpp"
#include "wfregs/runtime/verify.hpp"
#include "wfregs/typesys/random_type.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using core::oneuse_from_consensus;
using core::oneuse_from_consensus_object;
using core::oneuse_from_deterministic;
using core::oneuse_from_oblivious;

const zoo::OneUseBitLayout kOub;

// The canonical one-use-bit scenarios: reader reads once, writer writes
// once, in every interleaving.  Also the "overuse" scenarios, which the
// DEAD-state nondeterminism of the spec must absorb.
void expect_valid_oneuse(const std::shared_ptr<const Implementation>& impl,
                         const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_NE(impl, nullptr);
  {
    const auto r =
        verify_linearizable(impl, {{kOub.read()}, {kOub.write()}});
    EXPECT_TRUE(r.ok) << r.detail;
    EXPECT_TRUE(r.wait_free);
  }
  {
    // Read with no write at all: must return 0.
    const auto r = verify_linearizable(impl, {{kOub.read()}, {}});
    EXPECT_TRUE(r.ok) << r.detail;
  }
  {
    // Write strictly before read (exercised within the interleavings above,
    // but pinned explicitly here): overuse with two reads.
    const auto r = verify_linearizable(
        impl, {{kOub.read(), kOub.read()}, {kOub.write()}});
    EXPECT_TRUE(r.ok) << r.detail;
  }
  {
    // Two writes and a read: the second write drives the bit DEAD, where
    // everything is permitted.
    const auto r = verify_linearizable(
        impl, {{kOub.read()}, {kOub.write(), kOub.write()}});
    EXPECT_TRUE(r.ok) << r.detail;
  }
}

// ---- Section 5.1: oblivious deterministic types --------------------------------

TEST(OneUseFromOblivious, ZooTypes) {
  for (const auto& t :
       {zoo::bit_type(2), zoo::register_type(3, 2),
        zoo::test_and_set_type(2), zoo::fetch_and_add_type(4, 2),
        zoo::cas_type(2, 2), zoo::sticky_bit_type(2), zoo::queue_type(2, 2, 2),
        zoo::consensus_type(2), zoo::mod_counter_type(3, 2)}) {
    expect_valid_oneuse(oneuse_from_oblivious(t), "5.1 from " + t.name());
  }
}

TEST(OneUseFromOblivious, TrivialTypesYieldNull) {
  EXPECT_EQ(oneuse_from_oblivious(zoo::trivial_sink_type(2)), nullptr);
  EXPECT_EQ(oneuse_from_oblivious(zoo::trivial_toggle_type(2)), nullptr);
}

TEST(OneUseFromOblivious, RejectsWrongKinds) {
  EXPECT_THROW(oneuse_from_oblivious(zoo::nondet_coin_type(2)),
               std::invalid_argument);
  EXPECT_THROW(oneuse_from_oblivious(zoo::port_flag_type(2)),
               std::invalid_argument);
}

// ---- Section 5.2: general deterministic types ------------------------------------

TEST(OneUseFromDeterministic, ZooTypesIncludingNonOblivious) {
  for (const auto& t :
       {zoo::bit_type(2), zoo::test_and_set_type(2), zoo::port_flag_type(2),
        zoo::queue_type(2, 2, 2), zoo::stack_type(2, 2, 2),
        zoo::cas_old_type(2, 2), zoo::snapshot_type(2, 2),
        zoo::multi_consensus_type(3, 2), zoo::mod_counter_type(4, 2)}) {
    expect_valid_oneuse(oneuse_from_deterministic(t),
                        "5.2 from " + t.name());
  }
}

TEST(OneUseFromDeterministic, TrivialYieldsNull) {
  EXPECT_EQ(oneuse_from_deterministic(zoo::trivial_toggle_type(2)), nullptr);
  // A single-port type is vacuously trivial in the Section 5.2 sense.
  EXPECT_EQ(oneuse_from_deterministic(zoo::bit_type(1)), nullptr);
}

// Property sweep over random deterministic types: whenever the witness
// search finds a non-trivial pair, the synthesized one-use bit must verify
// under exhaustive exploration.  This is the executable form of the
// Section 5.2 correctness argument (including the "response of neither
// history" case).
class OneUseRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OneUseRandomSweep, SynthesizedBitIsCorrect) {
  RandomTypeParams params;
  params.ports = 2;
  params.num_states = 4;
  params.num_invocations = 2;
  params.num_responses = 2;
  params.oblivious = (GetParam() % 2 == 0);
  const auto t = random_type(params, GetParam());
  const auto impl = oneuse_from_deterministic(t);
  if (impl == nullptr) return;  // trivial type; nothing to verify
  expect_valid_oneuse(impl, "random type seed " +
                                std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneUseRandomSweep,
                         ::testing::Range<std::uint64_t>(0, 40));

// ---- Section 5.3: from 2-process consensus ------------------------------------------

TEST(OneUseFromConsensus, FromBaseConsensusObject) {
  expect_valid_oneuse(oneuse_from_consensus_object(), "5.3 base object");
}

TEST(OneUseFromConsensus, FromImplementedConsensus) {
  // The consensus object is itself implemented -- from a sticky bit and
  // from test&set + bits -- exactly the h_m(T) >= 2 hypothesis of
  // Section 5.3.
  expect_valid_oneuse(oneuse_from_consensus(consensus::from_sticky_bit(2)),
                      "5.3 via sticky-bit consensus");
  expect_valid_oneuse(oneuse_from_consensus(consensus::from_test_and_set()),
                      "5.3 via test&set consensus");
}

TEST(OneUseFromConsensus, RejectsBadInput) {
  EXPECT_THROW(oneuse_from_consensus(nullptr), std::invalid_argument);
  EXPECT_THROW(oneuse_from_consensus(consensus::from_cas(3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace wfregs
