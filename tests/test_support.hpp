// Shared helpers for runtime-level tests and benches.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "wfregs/runtime/implementation.hpp"
#include "wfregs/runtime/program.hpp"
#include "wfregs/typesys/type_spec.hpp"

namespace wfregs::testsup {

inline std::shared_ptr<const TypeSpec> share(TypeSpec t) {
  return std::make_shared<const TypeSpec>(std::move(t));
}

inline std::shared_ptr<Implementation> make_impl(
    std::string name, std::shared_ptr<const TypeSpec> iface,
    StateId initial) {
  return std::make_shared<Implementation>(std::move(name), std::move(iface),
                                          initial);
}

/// A program that performs a single invocation on env slot `slot` and
/// returns the response.
inline ProgramRef one_shot(const std::string& name, int slot, InvId inv) {
  ProgramBuilder b;
  b.invoke(slot, lit(inv), 0);
  b.ret(reg(0));
  return b.build(name);
}

/// A program that performs `first` then `second` on slot `slot` and returns
/// the second response.
inline ProgramRef two_shot(const std::string& name, int slot, InvId first,
                           InvId second) {
  ProgramBuilder b;
  b.invoke(slot, lit(first), 0);
  b.invoke(slot, lit(second), 1);
  b.ret(reg(1));
  return b.build(name);
}

/// A program that returns a constant without touching shared memory.
inline ProgramRef constant(const std::string& name, Val value) {
  ProgramBuilder b;
  b.ret(lit(value));
  return b.build(name);
}

}  // namespace wfregs::testsup
