// Unit tests for the TypeSpec 5-tuple representation (paper Section 2.1).
#include "wfregs/typesys/type_spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

TEST(TypeSpec, RejectsNonPositiveDimensions) {
  EXPECT_THROW(TypeSpec("bad", 0, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(TypeSpec("bad", 1, 0, 1, 1), std::invalid_argument);
  EXPECT_THROW(TypeSpec("bad", 1, 1, 0, 1), std::invalid_argument);
  EXPECT_THROW(TypeSpec("bad", 1, 1, 1, 0), std::invalid_argument);
}

TEST(TypeSpec, AddRangeChecksAllIds) {
  TypeSpec t("t", 2, 2, 2, 2);
  EXPECT_THROW(t.add(2, 0, 0, 0, 0), std::out_of_range);
  EXPECT_THROW(t.add(0, 2, 0, 0, 0), std::out_of_range);
  EXPECT_THROW(t.add(0, 0, 2, 0, 0), std::out_of_range);
  EXPECT_THROW(t.add(0, 0, 0, 2, 0), std::out_of_range);
  EXPECT_THROW(t.add(0, 0, 0, 0, 2), std::out_of_range);
  EXPECT_THROW(t.add(-1, 0, 0, 0, 0), std::out_of_range);
}

TEST(TypeSpec, DuplicateTransitionsAreDeduplicated) {
  TypeSpec t("t", 1, 1, 1, 1);
  t.add(0, 0, 0, 0, 0);
  t.add(0, 0, 0, 0, 0);
  EXPECT_EQ(t.delta(0, 0, 0).size(), 1u);
  EXPECT_TRUE(t.is_deterministic());
}

TEST(TypeSpec, TransitionSetsAreSorted) {
  TypeSpec t("t", 1, 2, 1, 2);
  t.add(0, 0, 0, 1, 1);
  t.add(0, 0, 0, 0, 0);
  t.add(0, 0, 0, 1, 0);
  const auto set = t.delta(0, 0, 0);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_LT(set[0], set[1]);
  EXPECT_LT(set[1], set[2]);
}

TEST(TypeSpec, TotalityAndDeterminism) {
  TypeSpec t("t", 1, 2, 1, 1);
  EXPECT_FALSE(t.is_total());
  t.add(0, 0, 0, 1, 0);
  EXPECT_FALSE(t.is_total());
  EXPECT_THROW(t.validate(), std::logic_error);
  t.add(1, 0, 0, 0, 0);
  EXPECT_TRUE(t.is_total());
  EXPECT_TRUE(t.is_deterministic());
  EXPECT_NO_THROW(t.validate());
  t.add(1, 0, 0, 1, 0);
  EXPECT_TRUE(t.is_total());
  EXPECT_FALSE(t.is_deterministic());
}

TEST(TypeSpec, DeltaDetThrowsOnNondeterministicCell) {
  TypeSpec t("t", 1, 1, 1, 2);
  t.add(0, 0, 0, 0, 0);
  EXPECT_EQ(t.delta_det(0, 0, 0).resp, 0);
  t.add(0, 0, 0, 0, 1);
  EXPECT_THROW(t.delta_det(0, 0, 0), std::logic_error);
}

TEST(TypeSpec, ObliviousnessDetection) {
  TypeSpec t("t", 2, 1, 1, 2);
  t.add(0, 0, 0, 0, 0);
  t.add(0, 1, 0, 0, 0);
  EXPECT_TRUE(t.is_oblivious());
  t.add(0, 1, 0, 0, 1);
  EXPECT_FALSE(t.is_oblivious());
}

TEST(TypeSpec, AddObliviousCoversAllPorts) {
  TypeSpec t("t", 3, 1, 1, 1);
  t.add_oblivious(0, 0, 0, 0);
  EXPECT_TRUE(t.is_total());
  EXPECT_TRUE(t.is_oblivious());
}

TEST(TypeSpec, ReachabilityIncludesSelfAndFollowsEdges) {
  // 0 -> 1 -> 2, and 3 isolated.
  TypeSpec t("t", 1, 4, 1, 1);
  t.add(0, 0, 0, 1, 0);
  t.add(1, 0, 0, 2, 0);
  t.add(2, 0, 0, 2, 0);
  t.add(3, 0, 0, 3, 0);
  EXPECT_EQ(t.reachable_from(0), (std::vector<StateId>{0, 1, 2}));
  EXPECT_EQ(t.reachable_from(3), (std::vector<StateId>{3}));
  EXPECT_TRUE(t.reachable(0, 2));
  EXPECT_FALSE(t.reachable(2, 0));
  EXPECT_TRUE(t.reachable(2, 2));
}

TEST(TypeSpec, ReachabilityFollowsNondeterministicBranches) {
  TypeSpec t("t", 1, 3, 1, 1);
  t.add(0, 0, 0, 1, 0);
  t.add(0, 0, 0, 2, 0);
  t.add(1, 0, 0, 1, 0);
  t.add(2, 0, 0, 2, 0);
  EXPECT_EQ(t.reachable_from(0), (std::vector<StateId>{0, 1, 2}));
}

TEST(TypeSpec, NamesDefaultAndOverride) {
  TypeSpec t("t", 1, 1, 1, 1);
  EXPECT_EQ(t.state_name(0), "q0");
  EXPECT_EQ(t.invocation_name(0), "i0");
  EXPECT_EQ(t.response_name(0), "r0");
  t.name_state(0, "idle");
  t.name_invocation(0, "poke");
  t.name_response(0, "ok");
  EXPECT_EQ(t.state_name(0), "idle");
  EXPECT_EQ(t.invocation_name(0), "poke");
  EXPECT_EQ(t.response_name(0), "ok");
}

TEST(TypeSpec, ToStringMentionsDimensionsAndNames) {
  auto t = zoo::one_use_bit_type();
  const auto s = t.to_string();
  EXPECT_NE(s.find("one_use_bit"), std::string::npos);
  EXPECT_NE(s.find("UNSET"), std::string::npos);
  EXPECT_NE(s.find("DEAD"), std::string::npos);
}

TEST(TypeSpec, EqualityComparesTables) {
  auto a = zoo::bit_type(2);
  auto b = zoo::bit_type(2);
  EXPECT_EQ(a, b);
  auto c = zoo::register_type(3, 2);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace wfregs
