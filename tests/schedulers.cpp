// Tests for the scheduler family: round-robin fairness, replay pinning, and
// the contention-seeking adversary.
#include "wfregs/runtime/scheduler.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "wfregs/core/bounded_register.hpp"
#include "wfregs/runtime/linearizability.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using testsup::share;
using testsup::two_shot;

std::shared_ptr<System> two_writer_system(
    const std::shared_ptr<const TypeSpec>& reg4) {
  const zoo::RegisterLayout lay{4};
  auto sys = std::make_shared<System>(2);
  const ObjectId r = sys->add_base(reg4, 0, {0, 1});
  for (ProcId p = 0; p < 2; ++p) {
    sys->set_toplevel(
        p, two_shot("p" + std::to_string(p), 0, lay.write(p + 1), lay.read()),
        {r});
  }
  return sys;
}

TEST(RoundRobin, AlternatesAmongRunnable) {
  const auto reg4 = share(zoo::register_type(4, 2));
  Engine e{two_writer_system(reg4)};
  RoundRobinScheduler sched;
  std::vector<ProcId> order;
  FirstChooser chooser;
  while (!e.all_done()) {
    const ProcId p = sched.pick(e, e.runnable());
    order.push_back(p);
    e.commit(p, 0);
  }
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<ProcId>{0, 1, 0, 1}));
}

TEST(Replay, PinsASchedule) {
  const auto reg4 = share(zoo::register_type(4, 2));
  Engine e{two_writer_system(reg4)};
  ReplayScheduler sched({1, 1, 0, 0});
  FirstChooser chooser;
  EXPECT_TRUE(run_to_completion(e, sched, chooser));
  // p1 ran fully first: p1 reads its own 2, p0 reads its own 1.
  const zoo::RegisterLayout lay{4};
  EXPECT_EQ(e.result(1), lay.value_resp(2));
  EXPECT_EQ(e.result(0), lay.value_resp(1));
}

TEST(Replay, ErrorsOnBadSequences) {
  const auto reg4 = share(zoo::register_type(4, 2));
  {
    Engine e{two_writer_system(reg4)};
    ReplayScheduler sched({0});
    FirstChooser chooser;
    EXPECT_THROW(run_to_completion(e, sched, chooser), std::out_of_range);
  }
  {
    Engine e{two_writer_system(reg4)};
    ReplayScheduler sched({0, 0, 0, 1, 1});  // p0 done after 2 steps
    FirstChooser chooser;
    EXPECT_THROW(run_to_completion(e, sched, chooser), std::out_of_range);
  }
}

TEST(Adversary, InterleavesRacingProcesses) {
  // Both processes hammer one register: the adversary must alternate, not
  // let either run solo.
  const auto reg4 = share(zoo::register_type(4, 2));
  Engine e{two_writer_system(reg4)};
  AdversarialScheduler sched;
  std::vector<ProcId> order;
  while (!e.all_done()) {
    const ProcId p = sched.pick(e, e.runnable());
    order.push_back(p);
    e.commit(p, 0);
  }
  ASSERT_EQ(order.size(), 4u);
  EXPECT_NE(order[0], order[1]);  // alternation within the racing pair
  EXPECT_NE(order[1], order[2]);
}

TEST(Adversary, DrivesLinearizableRunsOnRealConstructions) {
  // Adversarial single runs over the bounded-bit construction still produce
  // linearizable histories (sanity: the adversary is a stressor, not a
  // soundness hazard).
  const zoo::SrswRegisterLayout bit{2};
  const auto impl = core::bounded_bit_from_oneuse(2, 2, 0);
  auto sys = std::make_shared<System>(2);
  const ObjectId obj = sys->add_implemented(impl, {0, 1});
  {
    ProgramBuilder b;
    b.invoke(0, lit(bit.read()), 0);
    b.invoke(0, lit(bit.read()), 0);
    b.ret(lit(0));
    sys->set_toplevel(0, b.build("reader"), {obj});
  }
  {
    ProgramBuilder b;
    b.invoke(0, lit(bit.write(1)), 0);
    b.invoke(0, lit(bit.write(0)), 0);
    b.ret(lit(0));
    sys->set_toplevel(1, b.build("writer"), {obj});
  }
  Engine e{std::move(sys)};
  AdversarialScheduler sched;
  FirstChooser chooser;
  ASSERT_TRUE(run_to_completion(e, sched, chooser));
  const auto ops = e.history().ops_on(obj);
  const auto spec = zoo::srsw_bit_type();
  EXPECT_TRUE(check_linearizable(ops, spec, 0).linearizable)
      << describe_history(ops, spec);
}

}  // namespace
}  // namespace wfregs
