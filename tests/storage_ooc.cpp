// Out-of-core exploration tests.
//
// The contract under test (explorer.hpp): explore() with storage enabled is
// BIT-IDENTICAL to plain explore() in every reduction mode -- same counters,
// same violation, same access bounds -- whether the run completes in one
// shot, is interrupted and resumed under a checkpoint, or is SIGKILL'd at a
// randomized moment and resumed from whatever checkpoint prefix survived on
// disk.  The differential suite runs both explorers across the zoo; the
// crash matrix forks a child, kills it at seeded random offsets, and resumes
// in the parent.
#include "wfregs/runtime/explorer.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/runtime/verify.hpp"
#include "wfregs/storage/checkpoint.hpp"
#include "wfregs/storage/spill_arena.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

namespace fs = std::filesystem;

using testsup::share;

constexpr Reduction kModes[] = {Reduction::kNone, Reduction::kSleep,
                                Reduction::kSleepSymmetry};

const char* mode_name(Reduction r) {
  switch (r) {
    case Reduction::kNone:
      return "none";
    case Reduction::kSleep:
      return "sleep";
    case Reduction::kSleepSymmetry:
      return "sleep+symmetry";
  }
  return "?";
}

struct TempDir {
  fs::path path;
  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("wfregs-ooc-test-") + info->test_suite_name() + "-" +
            info->name() + "-" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string sub(const std::string& name) const {
    return (path / name).string();
  }
};

void ExpectIdentical(const ExploreOutcome& ref, const ExploreOutcome& ooc,
                     const std::string& what) {
  EXPECT_EQ(ref.wait_free, ooc.wait_free) << what;
  EXPECT_EQ(ref.complete, ooc.complete) << what;
  EXPECT_EQ(ref.violation, ooc.violation) << what;
  EXPECT_EQ(ref.stats.configs, ooc.stats.configs) << what;
  EXPECT_EQ(ref.stats.edges, ooc.stats.edges) << what;
  EXPECT_EQ(ref.stats.terminals, ooc.stats.terminals) << what;
  EXPECT_EQ(ref.stats.interned_configs, ooc.stats.interned_configs) << what;
  EXPECT_EQ(ref.stats.depth, ooc.stats.depth) << what;
  EXPECT_EQ(ref.stats.max_accesses, ooc.stats.max_accesses) << what;
  EXPECT_EQ(ref.stats.max_accesses_by_inv, ooc.stats.max_accesses_by_inv)
      << what;
}

/// The parallel_explorer scenario: every process performs two invocations
/// on one shared instance of `t`, folding responses into its result.
Engine scenario_for(std::shared_ptr<const TypeSpec> t) {
  const int n = t->ports();
  const int invs = t->num_invocations();
  auto sys = std::make_shared<System>(n);
  std::vector<PortId> ports(static_cast<std::size_t>(n));
  std::iota(ports.begin(), ports.end(), 0);
  const ObjectId obj = sys->add_base(std::move(t), 0, ports);
  for (ProcId p = 0; p < n; ++p) {
    ProgramBuilder b;
    b.assign(1, lit(0));
    for (int k = 0; k < 2; ++k) {
      b.invoke(0, lit((p + k) % invs), 0);
      b.assign(1, reg(1) * lit(1 << 20) + reg(0) + lit(1));
    }
    b.ret(reg(1));
    sys->set_toplevel(p, b.build("p" + std::to_string(p)), {obj});
  }
  return Engine{std::move(sys)};
}

/// Storage options exercising everything at deliberately hostile sizes: a
/// one-page segment and a two-page budget force constant eviction, a short
/// keyframe interval forces delta decoding.
storage::StorageOptions tiny_storage(const std::string& spill_dir) {
  storage::StorageOptions s;
  s.memory_budget_bytes = 2 * 4096;
  s.arena_segment_bytes = 4096;
  s.keyframe_interval = 6;
  s.spill_dir = spill_dir;
  return s;
}

TEST(OocExplorer, DifferentialOnZooTypes) {
  TempDir tmp;
  std::vector<std::pair<std::string, TypeSpec>> instances;
  instances.emplace_back("register(3,2)", zoo::register_type(3, 2));
  instances.emplace_back("bit(2)", zoo::bit_type(2));
  instances.emplace_back("mrsw_register(2,2)",
                         zoo::mrsw_register_type(2, 2));
  instances.emplace_back("regular_bit",
                         zoo::weak_bit_type(zoo::WeakBitKind::kRegular));
  instances.emplace_back("consensus(2)", zoo::consensus_type(2));
  instances.emplace_back("test_and_set(2)", zoo::test_and_set_type(2));
  instances.emplace_back("fetch_and_add(4,2)",
                         zoo::fetch_and_add_type(4, 2));
  instances.emplace_back("cas(2,2)", zoo::cas_type(2, 2));
  instances.emplace_back("queue(2,2,2)", zoo::queue_type(2, 2, 2));
  instances.emplace_back("snapshot(2,2)", zoo::snapshot_type(2, 2));
  instances.emplace_back("nondet_coin(2)", zoo::nondet_coin_type(2));
  instances.emplace_back("sticky_bit(2)", zoo::sticky_bit_type(2));
  ExploreLimits limits;
  limits.track_access_bounds = true;
  limits.stop_at_violation = false;
  int scenario = 0;
  for (auto& [name, t] : instances) {
    const Engine root = scenario_for(share(std::move(t)));
    for (const Reduction mode : kModes) {
      ExploreOptions ref_options{limits, mode};
      const auto ref = explore(root, ref_options);
      EXPECT_TRUE(ref.complete) << name;
      ExploreOptions ooc_options{limits, mode};
      ooc_options.storage =
          tiny_storage(tmp.sub("s" + std::to_string(scenario++)));
      const auto ooc = explore(root, ooc_options);
      ExpectIdentical(ref, ooc,
                      name + " [" + mode_name(mode) + "]");
      EXPECT_FALSE(ooc.resumed);
    }
  }
}

TEST(OocExplorer, DifferentialOnConsensusProtocolsWithViolations) {
  // registers_only_attempt harbors genuine agreement violations; with
  // stop_at_violation off both explorers must visit every terminal and
  // report the SAME first violation string.
  TempDir tmp;
  ExploreLimits limits;
  limits.stop_at_violation = false;
  const auto impl = consensus::registers_only_attempt(2);
  const int n = impl->iface().ports();
  const TerminalCheck check =
      [n](const Engine& e) -> std::optional<std::string> {
    const Val decided = *e.result(0);
    for (ProcId p = 1; p < n; ++p) {
      if (*e.result(p) != decided) {
        return "disagreement: " + std::to_string(decided) + " vs " +
               std::to_string(*e.result(p));
      }
    }
    return std::nullopt;
  };
  int scenario = 0;
  for (int vec = 0; vec < (1 << n); ++vec) {
    std::vector<int> inputs;
    for (int p = 0; p < n; ++p) inputs.push_back((vec >> p) & 1);
    const Engine root{consensus::consensus_scenario(impl, inputs)};
    for (const Reduction mode : kModes) {
      const auto ref = explore(root, ExploreOptions{limits, mode}, check);
      ExploreOptions ooc_options{limits, mode};
      ooc_options.storage =
          tiny_storage(tmp.sub("s" + std::to_string(scenario++)));
      ExpectIdentical(ref, explore(root, ooc_options, check),
                      std::string("registers_only inputs ") +
                          std::to_string(vec) + " [" + mode_name(mode) + "]");
    }
  }
}

TEST(OocExplorer, CycleAbortMatchesBitForBit) {
  // The lock-style waiting scenario: a schedule that never runs the setter
  // revisits a configuration, and the partial counters at the abort point
  // must match the in-core explorer exactly.
  TempDir tmp;
  const auto bit = share(zoo::bit_type(2));
  const zoo::RegisterLayout lay{2};
  auto sys = std::make_shared<System>(2);
  const ObjectId b = sys->add_base(bit, 0, {0, 1});
  sys->set_toplevel(0, testsup::one_shot("setter", 0, lay.write(1)), {b});
  ProgramBuilder pb;
  const Label loop = pb.bind_here();
  pb.invoke(0, lit(lay.read()), 0);
  pb.branch_if(reg(0) == lit(0), loop);
  pb.ret(lit(1));
  sys->set_toplevel(1, pb.build("waiter"), {b});
  const Engine root{std::move(sys)};
  const auto ref = explore(root);
  ASSERT_FALSE(ref.wait_free);
  ExploreOptions ooc_options;
  ooc_options.storage = tiny_storage(tmp.sub("spill"));
  ExpectIdentical(ref, explore(root, ooc_options), "lock-style cycle");
}

/// A scenario large enough to cross many checkpoint periods: three
/// processes alternating four invocations across two shared mod-3 counters
/// (~12.8k configurations, ~16k edges).
Engine big_scenario() {
  const auto t = share(zoo::mod_counter_type(3, 3));
  const int n = t->ports();
  const int invs = t->num_invocations();
  auto sys = std::make_shared<System>(n);
  std::vector<PortId> ports(static_cast<std::size_t>(n));
  std::iota(ports.begin(), ports.end(), 0);
  std::vector<ObjectId> objs = {sys->add_base(t, 0, ports),
                                sys->add_base(t, 0, ports)};
  for (ProcId p = 0; p < n; ++p) {
    ProgramBuilder b;
    b.assign(1, lit(0));
    for (int k = 0; k < 4; ++k) {
      b.invoke(k % 2, lit((p + k) % invs), 0);
      b.assign(1, reg(1) * lit(1 << 20) + reg(0) + lit(1));
    }
    b.ret(reg(1));
    sys->set_toplevel(p, b.build("p" + std::to_string(p)), objs);
  }
  return Engine{std::move(sys)};
}

TEST(OocExplorer, InterruptThenResumeIsBitIdentical) {
  // Deterministic interrupt: run with a max_configs budget that stops
  // mid-exploration, then resume without the budget.  The resumed outcome
  // must equal the uninterrupted reference bit for bit, and the checkpoint
  // directory must end compacted to a finished snapshot.
  TempDir tmp;
  const Engine root = big_scenario();
  ExploreLimits full;
  full.track_access_bounds = true;
  full.stop_at_violation = false;
  const auto ref = explore(root, full);
  ASSERT_TRUE(ref.complete);
  ASSERT_GT(ref.stats.configs, 2000u);

  for (const std::size_t cut :
       {std::size_t{1}, std::size_t{500}, ref.stats.configs - 1}) {
    const std::string dir =
        tmp.sub("ckpt-" + std::to_string(cut));
    ExploreOptions interrupted{full};
    interrupted.limits.max_configs = cut;
    interrupted.storage = tiny_storage(tmp.sub("spill"));
    interrupted.storage.checkpoint_dir = dir;
    interrupted.storage.checkpoint_every_configs = 128;
    const auto partial = explore(root, interrupted);
    EXPECT_FALSE(partial.complete) << cut;
    EXPECT_TRUE(partial.checkpointed) << cut;

    ExploreOptions resumed{full};
    resumed.storage = interrupted.storage;
    resumed.limits.max_configs = full.max_configs;
    const auto out = explore(root, resumed);
    EXPECT_TRUE(out.resumed) << cut;
    ExpectIdentical(ref, out, "resume after cut " + std::to_string(cut));

    // The directory is now a finished snapshot: re-running short-circuits
    // without exploring (and still reports the identical outcome).
    const auto cached = explore(root, resumed);
    EXPECT_TRUE(cached.resumed);
    ExpectIdentical(ref, cached, "finished-snapshot short-circuit");
    const auto info = storage::FrontierCheckpoint::info(dir);
    EXPECT_TRUE(info.finished);
  }
}

TEST(OocExplorer, RepeatedInterruptsAccumulateToTheSameAnswer) {
  // Starvation-style resume: give each attempt only a little more budget
  // than the last checkpoint until the exploration completes.
  TempDir tmp;
  const Engine root = big_scenario();
  ExploreLimits full;
  full.track_access_bounds = true;
  full.stop_at_violation = false;
  const auto ref = explore(root, full);

  ExploreOptions step{full};
  step.storage = tiny_storage(tmp.sub("spill"));
  step.storage.checkpoint_dir = tmp.sub("ckpt");
  step.storage.checkpoint_every_configs = 64;
  ExploreOutcome out;
  int attempts = 0;
  const std::size_t slice = ref.stats.configs / 8;
  for (std::size_t budget = slice;; budget += slice) {
    step.limits.max_configs = budget;
    out = explore(root, step);
    ++attempts;
    ASSERT_LT(attempts, 100);
    if (out.complete) break;
    EXPECT_TRUE(out.checkpointed) << "attempt " << attempts;
  }
  EXPECT_GT(attempts, 2);
  ExpectIdentical(ref, out, "incremental resume");
}

TEST(OocExplorer, CancellationCheckpointsLikeADeadline) {
  // A pre-set cancel flag models a deadline that fires mid-run: the
  // explorer must stop incomplete but leave a resumable checkpoint (this is
  // the path the JobScheduler's deadline cancellation takes).
  TempDir tmp;
  const Engine root = big_scenario();
  ExploreLimits full;
  full.stop_at_violation = false;
  const auto ref = explore(root, full);

  // Cancel after some configs via max_configs proxy is deterministic; the
  // atomic flag path is exercised by flipping cancel from the start, which
  // must checkpoint at the very first node.
  std::atomic<bool> cancel{true};
  ExploreOptions cancelled{full};
  cancelled.limits.cancel = &cancel;
  cancelled.storage.checkpoint_dir = tmp.sub("ckpt");
  const auto out = explore(root, cancelled);
  EXPECT_FALSE(out.complete);

  cancel.store(false);
  const auto resumed = explore(root, cancelled);
  ExpectIdentical(ref, resumed, "resume after cancellation");
}

TEST(OocExplorer, FingerprintMismatchStartsFresh) {
  // A checkpoint taken under one reduction mode must not be resumed by a
  // run under another: the fingerprint covers the exploration shape.
  TempDir tmp;
  const Engine root = big_scenario();
  ExploreOptions a;
  a.limits.max_configs = 300;
  a.storage.checkpoint_dir = tmp.sub("ckpt");
  a.storage.checkpoint_every_configs = 64;
  const auto partial = explore(root, a);
  ASSERT_FALSE(partial.complete);

  ExploreOptions b{a};
  b.reduction = Reduction::kSleep;
  b.limits.max_configs = ExploreLimits{}.max_configs;
  const auto out = explore(root, b);
  EXPECT_FALSE(out.resumed);
  EXPECT_TRUE(out.complete);
  const auto ref = explore(root, ExploreOptions{{}, Reduction::kSleep});
  ExpectIdentical(ref, out, "fresh start under different mode");
}

TEST(OocExplorer, ResumeFromSeedsANewDirectory) {
  TempDir tmp;
  const Engine root = big_scenario();
  ExploreLimits full;
  full.stop_at_violation = false;
  const auto ref = explore(root, full);

  ExploreOptions interrupted;
  interrupted.limits = full;
  interrupted.limits.max_configs = 600;
  interrupted.storage.checkpoint_dir = tmp.sub("original");
  interrupted.storage.checkpoint_every_configs = 128;
  ASSERT_FALSE(explore(root, interrupted).complete);

  ExploreOptions seeded;
  seeded.limits = full;
  seeded.storage.checkpoint_dir = tmp.sub("copy");
  seeded.storage.resume_from = tmp.sub("original");
  const auto out = explore(root, seeded);
  EXPECT_TRUE(out.resumed);
  ExpectIdentical(ref, out, "resume_from copy");
  // The original directory is untouched (still unfinished).
  EXPECT_FALSE(storage::FrontierCheckpoint::info(tmp.sub("original"))
                   .finished);
  EXPECT_TRUE(storage::FrontierCheckpoint::info(tmp.sub("copy")).finished);
}

// ---------------------------------------------------------------------------
// SIGKILL crash matrix
// ---------------------------------------------------------------------------

/// Runs the exploration in a forked child and SIGKILLs it after `delay_us`.
/// Returns true when the kill landed before the child finished (the
/// interesting case; the child exits 0 when it wins the race, which is also
/// fine -- the final checkpoint must then short-circuit).
bool run_child_and_kill(const Engine& root, const ExploreOptions& options,
                        useconds_t delay_us) {
  const pid_t pid = fork();
  if (pid == 0) {
    // Child: explore with checkpoints on; exit cleanly if we finish first.
    explore(root, options);
    _exit(0);
  }
  ::usleep(delay_us);
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

TEST(OocExplorer, SigkillAtRandomizedOffsetsResumesBitIdentical) {
  TempDir tmp;
  const Engine root = big_scenario();
  ExploreLimits full;
  full.track_access_bounds = true;
  full.stop_at_violation = false;
  const auto ref = explore(root, full);

  // Seeded offsets: reproducible, but spread across the run's lifetime.
  std::mt19937 rng(20260808);
  int killed = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const std::string dir = tmp.sub("ckpt-" + std::to_string(trial));
    ExploreOptions options{full};
    options.storage = tiny_storage(tmp.sub("spill-" + std::to_string(trial)));
    options.storage.checkpoint_dir = dir;
    options.storage.checkpoint_every_configs = 64;
    const useconds_t delay = 1000 + rng() % 120000;
    if (run_child_and_kill(root, options, delay)) ++killed;

    // Resume in-process from whatever prefix the child left behind.
    const auto out = explore(root, options);
    ExpectIdentical(ref, out,
                    "trial " + std::to_string(trial) + " delay " +
                        std::to_string(delay) + "us");
  }
  // The matrix is only meaningful if some kills actually landed mid-run;
  // the delays are chosen well inside the exploration's runtime.
  EXPECT_GT(killed, 0);
}

TEST(OocExplorer, SigkillWithGarbageTailStillResumes) {
  // A kill plus a torn/garbage tail on the frontier log (as a disk-level
  // crash could leave): resume must heal the log and still reach the
  // bit-identical answer.
  TempDir tmp;
  const Engine root = big_scenario();
  ExploreLimits full;
  full.stop_at_violation = false;
  const auto ref = explore(root, full);

  const std::string dir = tmp.sub("ckpt");
  ExploreOptions options;
  options.limits = full;
  options.storage.checkpoint_dir = dir;
  options.storage.checkpoint_every_configs = 64;
  run_child_and_kill(root, options, 20000);

  for (const char* log : {"frontier.log", "arena.log"}) {
    const fs::path p = fs::path(dir) / log;
    if (!fs::exists(p)) continue;
    std::ofstream f(p, std::ios::binary | std::ios::app);
    f.write("\x13garbage-tail\xff\x00\x7f", 16);
  }
  const auto out = explore(root, options);
  ExpectIdentical(ref, out, "garbage tail resume");
}

TEST(OocExplorer, VerifyPlumbsStorageThrough) {
  // End-to-end through verify_linearizable: interrupt via a tiny
  // max_configs, observe the partial marker, then resume to the reference
  // verdict.
  TempDir tmp;
  const auto impl = consensus::from_test_and_set();
  std::vector<std::vector<InvId>> scripts(
      static_cast<std::size_t>(impl->iface().ports()));
  for (auto& s : scripts) s = {0};
  VerifyOptions plain;
  plain.threads = 1;
  const auto ref = verify_linearizable(impl, scripts, plain);

  ASSERT_GT(ref.stats.configs, 4u);
  VerifyOptions interrupted = plain;
  interrupted.limits.max_configs = ref.stats.configs / 2;
  interrupted.storage.checkpoint_dir = tmp.sub("ckpt");
  interrupted.storage.checkpoint_every_configs = 4;
  const auto partial = verify_linearizable(impl, scripts, interrupted);
  EXPECT_FALSE(partial.complete);
  EXPECT_TRUE(partial.checkpointed);

  VerifyOptions resumed = plain;
  resumed.storage = interrupted.storage;
  const auto out = verify_linearizable(impl, scripts, resumed);
  EXPECT_TRUE(out.resumed);
  EXPECT_EQ(ref.ok, out.ok);
  EXPECT_EQ(ref.complete, out.complete);
  EXPECT_EQ(ref.stats.configs, out.stats.configs);
  EXPECT_EQ(ref.stats.edges, out.stats.edges);
  EXPECT_EQ(ref.detail, out.detail);
}

TEST(OocExplorer, CheckConsensusUsesPerRootSubdirectories) {
  TempDir tmp;
  const auto impl = consensus::from_test_and_set();
  VerifyOptions plain;
  plain.threads = 1;
  const auto ref = consensus::check_consensus(impl, plain);

  VerifyOptions stored = plain;
  stored.storage.checkpoint_dir = tmp.sub("ckpt");
  const auto out = consensus::check_consensus(impl, stored);
  EXPECT_EQ(ref.solves, out.solves);
  EXPECT_EQ(ref.configs, out.configs);
  EXPECT_EQ(ref.depth, out.depth);
  // One finished per-root checkpoint per input vector.
  const int n = impl->iface().ports();
  for (int vec = 0; vec < (1 << n); ++vec) {
    const auto info = storage::FrontierCheckpoint::info(
        tmp.sub("ckpt") + "/root" + std::to_string(vec));
    EXPECT_TRUE(info.finished) << vec;
  }
  // Re-running short-circuits on every root.
  const auto cached = consensus::check_consensus(impl, stored);
  EXPECT_TRUE(cached.resumed);
  EXPECT_EQ(ref.configs, cached.configs);
}

}  // namespace
}  // namespace wfregs
