// Tests for valency analysis and bounded protocol synthesis.  These pin the
// classical facts the paper builds on:
//
//   * registers alone cannot solve 2-process consensus (FLP / Loui-Abu-Amara
//     / Herlihy) -- the synthesizer proves it exhaustively for bounded
//     protocols;
//   * one test&set object ALONE cannot (its response carries no value), even
//     though test&set plus registers can: h_1 and h_1^r genuinely differ;
//   * several test&set objects CAN (this paper's Theorem 5 predicts
//     h_m = h_m^r = 2), and the synthesizer finds the protocol;
//   * value-revealing racers (sticky bit, consensus, cas) solve it alone.
#include <gtest/gtest.h>

#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/power.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/consensus/valency.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using consensus::SynthesisObject;
using consensus::SynthesisVerdict;
using consensus::synthesize_two_consensus;
using consensus::valency_analysis;

std::shared_ptr<const TypeSpec> share(TypeSpec t) {
  return std::make_shared<const TypeSpec>(std::move(t));
}

// ---- synthesis: solvable cases ------------------------------------------------

TEST(Synthesis, ConsensusObjectAloneSolvesAtDepthOne) {
  const zoo::ConsensusLayout lay;
  const auto r = synthesize_two_consensus(
      {{share(zoo::consensus_type(2)), lay.bottom(), {}}}, 1);
  EXPECT_EQ(r.verdict, SynthesisVerdict::kSolvable);
}

TEST(Synthesis, StickyBitAloneSolves) {
  const zoo::StickyBitLayout lay;
  const auto r = synthesize_two_consensus(
      {{share(zoo::sticky_bit_type(2)), lay.bottom_state(), {}}}, 1);
  EXPECT_EQ(r.verdict, SynthesisVerdict::kSolvable);
}

TEST(Synthesis, CasReturningOldValueSolvesAtDepthOne) {
  // cas(bottom -> v) whose response is the old value reveals the winner's
  // input to every loser: one invocation suffices.
  const auto r = synthesize_two_consensus(
      {{share(zoo::cas_old_type(3, 2)), 2, {}}}, 1);
  EXPECT_EQ(r.verdict, SynthesisVerdict::kSolvable);
}

TEST(Synthesis, FindsTheUsefulObjectAmongDistractors) {
  // Multi-object search: a sticky bit hidden among trivial toggles is still
  // found and used.  (The deeper multi-object instances -- e.g. test&set
  // plus one-use bits at depth 3, the h_m(test&set) = 2 protocol that
  // Theorem 5 predicts -- are exercised in bench_e6_consensus with looser
  // budgets, and demonstrated constructively by the register-elimination
  // transform tests.)
  const zoo::StickyBitLayout lay;
  const auto toggle = share(zoo::trivial_toggle_type(2));
  const auto r = synthesize_two_consensus(
      {{toggle, 0, {}},
       {share(zoo::sticky_bit_type(2)), lay.bottom_state(), {}},
       {toggle, 0, {}}},
      2);
  EXPECT_EQ(r.verdict, SynthesisVerdict::kSolvable);
}

// ---- synthesis: unsolvable cases -------------------------------------------------

TEST(Synthesis, OneTestAndSetAloneCannotSolve) {
  // The loser learns it lost but never learns the winner's input: no depth
  // bound helps within one object.  (Exhaustive for max_ops = 2.)
  const auto r = synthesize_two_consensus(
      {{share(zoo::test_and_set_type(2)), 0, {}}}, 2, 50000000);
  EXPECT_EQ(r.verdict, SynthesisVerdict::kUnsolvable);
}

TEST(Synthesis, OneRegisterBitCannotSolve) {
  const auto r = synthesize_two_consensus(
      {{share(zoo::bit_type(2)), 0, {}}}, 2, 50000000);
  EXPECT_EQ(r.verdict, SynthesisVerdict::kUnsolvable);
}

TEST(Synthesis, TwoRegisterBitsCannotSolveAtDepthOne) {
  // Registers cannot solve 2-process consensus no matter how many [FLP85,
  // LA87]: checked exhaustively here for two bits at depth 1 (deeper bounds
  // are exercised in bench_e6_consensus, where runtime budgets are looser).
  const auto bit = share(zoo::bit_type(2));
  const auto r = synthesize_two_consensus({{bit, 0, {}}, {bit, 0, {}}}, 1,
                                          100000000);
  EXPECT_EQ(r.verdict, SynthesisVerdict::kUnsolvable);
}

TEST(Synthesis, TrivialTypeCannotSolve) {
  const auto r = synthesize_two_consensus(
      {{share(zoo::trivial_toggle_type(2)), 0, {}}}, 3);
  EXPECT_EQ(r.verdict, SynthesisVerdict::kUnsolvable);
}

TEST(Synthesis, NondeterministicCoinCannotSolve) {
  const auto r = synthesize_two_consensus(
      {{share(zoo::nondet_coin_type(2)), 0, {}}}, 2);
  EXPECT_EQ(r.verdict, SynthesisVerdict::kUnsolvable);
}

TEST(Synthesis, ZeroOpsMeansBlindDecision) {
  // With no invocations allowed, processes decide blindly: impossible even
  // with the mixed-input vectors alone.
  const auto r = synthesize_two_consensus(
      {{share(zoo::consensus_type(2)), 0, {}}}, 0);
  EXPECT_EQ(r.verdict, SynthesisVerdict::kUnsolvable);
}

TEST(Synthesis, NodeCapYieldsUnknown) {
  const auto tas = share(zoo::test_and_set_type(2));
  const auto r = synthesize_two_consensus(
      {{tas, 0, {}}, {tas, 0, {}}, {tas, 0, {}}}, 3, 10);
  EXPECT_EQ(r.verdict, SynthesisVerdict::kUnknown);
}

TEST(Synthesis, InvalidArguments) {
  EXPECT_THROW(synthesize_two_consensus({{nullptr, 0, {}}}, 1),
               std::invalid_argument);
  EXPECT_THROW(synthesize_two_consensus(
                   {{share(zoo::bit_type(1)), 0, {}}}, 1),
               std::invalid_argument);
  EXPECT_THROW(synthesize_two_consensus(
                   {{share(zoo::bit_type(2)), 0, {}}}, -1),
               std::invalid_argument);
}

// ---- valency analysis ---------------------------------------------------------------

TEST(Valency, MixedInputTestAndSetIsInitiallyBivalent) {
  const Engine root{
      consensus::consensus_scenario(consensus::from_test_and_set(), {0, 1})};
  const auto report = valency_analysis(root);
  EXPECT_TRUE(report.agreement_holds);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.initial_bivalent);
  EXPECT_GT(report.bivalent, 0u);
  EXPECT_GT(report.critical, 0u);
  // The decisive accesses happen at the test&set object, exactly as
  // Herlihy's critical-state argument says they must (a register access
  // could not break bivalence).
  EXPECT_EQ(report.critical_object_type, "test_and_set");
}

TEST(Valency, UnanimousInputsAreUnivalent) {
  const Engine root{
      consensus::consensus_scenario(consensus::from_test_and_set(), {1, 1})};
  const auto report = valency_analysis(root);
  EXPECT_TRUE(report.agreement_holds);
  EXPECT_FALSE(report.initial_bivalent);
  EXPECT_EQ(report.bivalent, 0u);
  EXPECT_EQ(report.zero_valent, 0u);
}

TEST(Valency, BrokenProtocolReportsDisagreement) {
  const Engine root{consensus::consensus_scenario(
      consensus::registers_only_attempt(2), {1, 0})};
  const auto report = valency_analysis(root);
  EXPECT_FALSE(report.agreement_holds);
}

TEST(Valency, CasProtocolCriticalObjectIsCas) {
  const Engine root{
      consensus::consensus_scenario(consensus::from_cas(2), {0, 1})};
  const auto report = valency_analysis(root);
  EXPECT_TRUE(report.initial_bivalent);
  EXPECT_EQ(report.critical_object_type, "cas3");
}

}  // namespace
}  // namespace wfregs
