// Tests for the exhaustive explorer: depth computation, cycle detection
// (non-wait-freedom), terminal checks, nondeterministic branching and
// access-bound tracking.
#include "wfregs/runtime/explorer.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using testsup::one_shot;
using testsup::share;
using testsup::two_shot;

TEST(Explorer, SingleProcessStraightLine) {
  const auto bit = share(zoo::bit_type(1));
  const zoo::RegisterLayout lay{2};
  auto sys = std::make_shared<System>(1);
  const ObjectId b = sys->add_base(bit, 0, {0});
  sys->set_toplevel(0, two_shot("p0", 0, lay.write(1), lay.read()), {b});
  const Engine root{std::move(sys)};
  const auto out = explore(root);
  EXPECT_TRUE(out.wait_free);
  EXPECT_TRUE(out.complete);
  EXPECT_FALSE(out.violation.has_value());
  EXPECT_EQ(out.stats.depth, 2);
  EXPECT_EQ(out.stats.terminals, 1u);
  EXPECT_EQ(out.stats.configs, 3u);  // initial, after write, after read
}

TEST(Explorer, TwoProcessInterleavingsShareConfigs) {
  // Two writers to distinct registers: 2 interleavings, diamond-shaped DAG.
  const auto bit = share(zoo::bit_type(1));
  const zoo::RegisterLayout lay{2};
  auto sys = std::make_shared<System>(2);
  const ObjectId b0 = sys->add_base(bit, 0, {0, kNoPort});
  const ObjectId b1 = sys->add_base(bit, 0, {kNoPort, 0});
  sys->set_toplevel(0, one_shot("p0", 0, lay.write(1)), {b0});
  sys->set_toplevel(1, one_shot("p1", 0, lay.write(1)), {b1});
  const Engine root{std::move(sys)};
  const auto out = explore(root);
  EXPECT_TRUE(out.wait_free);
  EXPECT_EQ(out.stats.depth, 2);
  EXPECT_EQ(out.stats.configs, 4u);  // diamond: both orders converge
  EXPECT_EQ(out.stats.terminals, 1u);
}

TEST(Explorer, NondeterministicObjectBranches) {
  const auto coin = share(zoo::nondet_coin_type(1));
  auto sys = std::make_shared<System>(1);
  const ObjectId c = sys->add_base(coin, 0, {0});
  sys->set_toplevel(0, one_shot("flipper", 0, 0), {c});
  const Engine root{std::move(sys)};
  const auto out = explore(root);
  EXPECT_TRUE(out.wait_free);
  // Terminal configs differ in the process result (0 vs 1).
  EXPECT_EQ(out.stats.terminals, 2u);
}

TEST(Explorer, SpinLoopIsDetectedAsNotWaitFree) {
  // A process that re-reads a bit until it becomes 1 -- which never happens
  // because nobody writes: a configuration cycle.
  const auto bit = share(zoo::bit_type(1));
  const zoo::RegisterLayout lay{2};
  auto sys = std::make_shared<System>(1);
  const ObjectId b = sys->add_base(bit, 0, {0});
  ProgramBuilder pb;
  const Label loop = pb.bind_here();
  pb.invoke(0, lit(lay.read()), 0);
  pb.branch_if(reg(0) == lit(0), loop);
  pb.ret(lit(1));
  sys->set_toplevel(0, pb.build("spinner"), {b});
  const Engine root{std::move(sys)};
  const auto out = explore(root);
  EXPECT_FALSE(out.wait_free);
}

TEST(Explorer, LockStyleWaitingIsNotWaitFree) {
  // p1 spins on a flag that p0 sets after 1 step: every schedule terminates
  // under fairness, but the schedule that never runs p0 is a cycle, so the
  // implementation is not wait-free.  This is the behaviour that separates
  // wait-freedom from mere livelock-freedom.
  const auto bit = share(zoo::bit_type(2));
  const zoo::RegisterLayout lay{2};
  auto sys = std::make_shared<System>(2);
  const ObjectId b = sys->add_base(bit, 0, {0, 1});
  sys->set_toplevel(0, one_shot("setter", 0, lay.write(1)), {b});
  ProgramBuilder pb;
  const Label loop = pb.bind_here();
  pb.invoke(0, lit(lay.read()), 0);
  pb.branch_if(reg(0) == lit(0), loop);
  pb.ret(lit(1));
  sys->set_toplevel(1, pb.build("waiter"), {b});
  const Engine root{std::move(sys)};
  EXPECT_FALSE(explore(root).wait_free);
}

TEST(Explorer, DivergingLocalStateHitsDepthLimit) {
  // A counter in a register grows forever: no configuration ever repeats,
  // so only the depth limit stops exploration.
  const auto big = share(zoo::register_type(50, 1));
  const zoo::RegisterLayout lay{50};
  auto sys = std::make_shared<System>(1);
  const ObjectId r = sys->add_base(big, 0, {0});
  ProgramBuilder pb;
  const Label loop = pb.bind_here();
  pb.invoke(0, lit(lay.read()), 0);
  pb.invoke(0, (reg(0) + lit(1)) % lit(50) + lit(1), 1);  // write(v+1 mod 50)
  pb.jump(loop);
  sys->set_toplevel(0, pb.build("counter"), {r});
  const Engine root{std::move(sys)};
  ExploreLimits limits;
  limits.max_depth = 64;
  const auto out = explore(root, limits);
  // Either the cycle in register states is found (wait_free false) or the
  // depth limit fires (complete false); for this program states do repeat.
  EXPECT_FALSE(out.wait_free && out.complete);
}

TEST(Explorer, TerminalCheckSeesAllOutcomes) {
  // Nondeterministic coin: flag any terminal where the result is 1.
  const auto coin = share(zoo::nondet_coin_type(1));
  auto sys = std::make_shared<System>(1);
  const ObjectId c = sys->add_base(coin, 0, {0});
  sys->set_toplevel(0, one_shot("flipper", 0, 0), {c});
  const Engine root{std::move(sys)};
  const auto check = [](const Engine& e) -> std::optional<std::string> {
    if (e.result(0) == 1) return "saw tails";
    return std::nullopt;
  };
  const auto out = explore(root, ExploreLimits{}, check);
  ASSERT_TRUE(out.violation.has_value());
  EXPECT_EQ(*out.violation, "saw tails");
}

TEST(Explorer, ViolationStopsEarlyByDefault) {
  const auto coin = share(zoo::nondet_coin_type(1));
  auto sys = std::make_shared<System>(1);
  const ObjectId c = sys->add_base(coin, 0, {0});
  sys->set_toplevel(0, two_shot("flipper", 0, 0, 0), {c});
  const Engine root{std::move(sys)};
  std::size_t terminals_seen = 0;
  const auto check =
      [&terminals_seen](const Engine&) -> std::optional<std::string> {
    ++terminals_seen;
    return "always bad";
  };
  const auto stopped = explore(root, ExploreLimits{}, check);
  EXPECT_TRUE(stopped.violation.has_value());
  EXPECT_EQ(terminals_seen, 1u);
  terminals_seen = 0;
  ExploreLimits keep_going;
  keep_going.stop_at_violation = false;
  const auto full = explore(root, keep_going, check);
  EXPECT_TRUE(full.violation.has_value());
  // 2x2 coin outcomes, but terminal *configurations* are memoized and the
  // first flip's value dies with its frame: 2 distinct terminals remain.
  EXPECT_EQ(terminals_seen, 2u);
}

TEST(Explorer, AccessBoundsTrackMaxOverPaths) {
  const auto bit = share(zoo::bit_type(2));
  const zoo::RegisterLayout lay{2};
  auto sys = std::make_shared<System>(2);
  const ObjectId b = sys->add_base(bit, 0, {0, 1});
  sys->set_toplevel(0, two_shot("p0", 0, lay.write(1), lay.read()), {b});
  sys->set_toplevel(1, one_shot("p1", 0, lay.read()), {b});
  const Engine root{std::move(sys)};
  ExploreLimits limits;
  limits.track_access_bounds = true;
  const auto out = explore(root, limits);
  EXPECT_TRUE(out.wait_free);
  ASSERT_EQ(out.stats.max_accesses.size(), 1u);
  EXPECT_EQ(out.stats.max_accesses[0], 3u);  // every path: 3 accesses total
  EXPECT_EQ(out.stats.depth, 3);
}

TEST(Explorer, ConfigLimitReportsIncomplete) {
  const auto reg8 = share(zoo::register_type(8, 3));
  const zoo::RegisterLayout lay{8};
  auto sys = std::make_shared<System>(3);
  const ObjectId r = sys->add_base(reg8, 0, {0, 1, 2});
  for (ProcId p = 0; p < 3; ++p) {
    sys->set_toplevel(
        p, two_shot("p" + std::to_string(p), 0, lay.write(p), lay.read()),
        {r});
  }
  const Engine root{std::move(sys)};
  ExploreLimits limits;
  limits.max_configs = 5;
  const auto out = explore(root, limits);
  EXPECT_FALSE(out.complete);
}

}  // namespace
}  // namespace wfregs
