// Tests for the safe/regular register layer (Lamport 1986, the Section 4.1
// bottom rung): the weak-bit model itself, the regularity checker, and the
// classical constructions -- including the NEGATIVE result that dropping
// Lamport's write-on-change discipline breaks regularity over safe bits.
#include "wfregs/registers/weak.hpp"

#include <gtest/gtest.h>

#include "wfregs/runtime/regularity.hpp"
#include "wfregs/runtime/verify.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using registers::naive_bit_from_safe;
using registers::regular_bit_from_safe;
using registers::regular_multivalued_from_bits;

const zoo::WeakBitLayout kWeak;

// ---- the weak-bit model ----------------------------------------------------------

TEST(WeakBitType, IdleReadsAreExactAndWritesTakeTwoSteps) {
  for (const auto kind :
       {zoo::WeakBitKind::kSafe, zoo::WeakBitKind::kRegular}) {
    const auto t = zoo::weak_bit_type(kind);
    EXPECT_EQ(t.delta_det(kWeak.idle(1), 0, kWeak.read()).resp,
              kWeak.value_resp(1));
    const auto started =
        t.delta_det(kWeak.idle(1), 1, kWeak.start_write(0));
    EXPECT_EQ(started.next, kWeak.writing(1, 0));
    EXPECT_EQ(t.delta_det(kWeak.writing(1, 0), 1, kWeak.finish_write()).next,
              kWeak.idle(0));
  }
}

TEST(WeakBitType, OverlapNondeterminismDiffersByKind) {
  const auto safe = zoo::weak_bit_type(zoo::WeakBitKind::kSafe);
  const auto regular = zoo::weak_bit_type(zoo::WeakBitKind::kRegular);
  // Write 1 -> 1 in flight: regular must return 1; safe may return 0 or 1.
  EXPECT_EQ(regular.delta(kWeak.writing(1, 1), 0, kWeak.read()).size(), 1u);
  EXPECT_EQ(safe.delta(kWeak.writing(1, 1), 0, kWeak.read()).size(), 2u);
  // Write 1 -> 0 in flight: both allow {0, 1}.
  EXPECT_EQ(regular.delta(kWeak.writing(1, 0), 0, kWeak.read()).size(), 2u);
  EXPECT_EQ(safe.delta(kWeak.writing(1, 0), 0, kWeak.read()).size(), 2u);
}

TEST(WeakBitType, MisuseReturnsErr) {
  const auto t = zoo::weak_bit_type(zoo::WeakBitKind::kRegular);
  EXPECT_EQ(t.delta_det(kWeak.idle(0), 1, kWeak.finish_write()).resp,
            kWeak.err());
  EXPECT_EQ(
      t.delta_det(kWeak.writing(0, 1), 1, kWeak.start_write(0)).resp,
      kWeak.err());
  EXPECT_EQ(t.delta_det(kWeak.idle(0), 0, kWeak.start_write(1)).resp,
            kWeak.err());
  EXPECT_EQ(t.delta_det(kWeak.idle(0), 1, kWeak.read()).resp, kWeak.err());
}

// ---- the regularity checker --------------------------------------------------------

OpRecord op(InvId inv, Val resp, std::size_t t0, std::size_t t1) {
  OpRecord rec;
  rec.proc = inv == 0 ? 0 : 1;
  rec.object = 0;
  rec.port = rec.proc;
  rec.inv = inv;
  rec.invoke_time = t0;
  rec.response = resp;
  rec.response_time = t1;
  return rec;
}

TEST(CheckRegular, SequentialReadsFollowWrites) {
  const zoo::SrswRegisterLayout lay{2};
  // write(1) [0,1]; read -> 1 [2,3].
  EXPECT_TRUE(check_regular({op(lay.write(1), lay.ok(), 0, 1),
                             op(lay.read(), 1, 2, 3)},
                            2, 0)
                  .regular);
  // read -> 0 after the completed write(1): violation.
  EXPECT_FALSE(check_regular({op(lay.write(1), lay.ok(), 0, 1),
                              op(lay.read(), 0, 2, 3)},
                             2, 0)
                   .regular);
}

TEST(CheckRegular, OverlappingWriteAllowsOldOrNew) {
  const zoo::SrswRegisterLayout lay{2};
  for (const Val v : {0, 1}) {
    EXPECT_TRUE(check_regular({op(lay.write(1), lay.ok(), 0, 10),
                               op(lay.read(), v, 2, 3)},
                              2, 0)
                    .regular)
        << "read " << v;
  }
}

TEST(CheckRegular, NewOldInversionIsPermitted) {
  // The defining difference from atomicity: read 1 (new) then read 0 (old)
  // around one long write IS regular.
  const zoo::SrswRegisterLayout lay{2};
  EXPECT_TRUE(check_regular({op(lay.write(1), lay.ok(), 0, 20),
                             op(lay.read(), 1, 2, 3),
                             op(lay.read(), 0, 5, 6)},
                            2, 0)
                  .regular);
}

TEST(CheckRegular, RejectsOverlappingWrites) {
  const zoo::SrswRegisterLayout lay{2};
  const auto r = check_regular({op(lay.write(1), lay.ok(), 0, 10),
                                op(lay.write(0), lay.ok(), 5, 15)},
                               2, 0);
  EXPECT_FALSE(r.regular);
  EXPECT_NE(r.detail.find("single-writer"), std::string::npos);
}

TEST(CheckRegular, ArgumentChecking) {
  EXPECT_THROW(check_regular({}, 1, 0), std::invalid_argument);
  EXPECT_THROW(check_regular({}, 2, 5), std::out_of_range);
}

// ---- constructions -------------------------------------------------------------------

TEST(RegularBitFromSafe, RegularUnderAllSchedules) {
  const zoo::SrswRegisterLayout lay{2};
  for (int initial = 0; initial < 2; ++initial) {
    const auto impl = regular_bit_from_safe(initial);
    const auto r = verify_regular(
        impl,
        {{lay.read(), lay.read(), lay.read()},
         {lay.write(1), lay.write(1), lay.write(0)}},
        2);
    EXPECT_TRUE(r.ok) << "initial " << initial << ": " << r.detail;
    EXPECT_TRUE(r.wait_free);
  }
}

TEST(NaiveBitFromSafe, SameValueWriteBreaksRegularity) {
  // Without write-on-change, re-writing 0 over a safe bit lets an
  // overlapping read return 1 out of thin air: the checker exhibits it.
  const zoo::SrswRegisterLayout lay{2};
  const auto impl = naive_bit_from_safe(0);
  const auto r = verify_regular(
      impl, {{lay.read()}, {lay.write(0)}}, 2);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("read"), std::string::npos) << r.detail;
}

TEST(NaiveBitFromSafe, StillFineWhenValuesChange) {
  // The naive wrapper only misbehaves on same-value writes.
  const zoo::SrswRegisterLayout lay{2};
  const auto impl = naive_bit_from_safe(0);
  const auto r =
      verify_regular(impl, {{lay.read(), lay.read()}, {lay.write(1)}}, 2);
  EXPECT_TRUE(r.ok) << r.detail;
}

class UnarySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(UnarySweep, RegularUnderAllSchedules) {
  const auto [values, initial, w1, w2] = GetParam();
  const zoo::SrswRegisterLayout lay{values};
  const auto impl = regular_multivalued_from_bits(values, initial);
  const auto r = verify_regular(
      impl,
      {{lay.read(), lay.read()}, {lay.write(w1), lay.write(w2)}}, values);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_TRUE(r.wait_free);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, UnarySweep,
    ::testing::Values(std::tuple{2, 0, 1, 0}, std::tuple{3, 0, 2, 1},
                      std::tuple{3, 2, 0, 1}, std::tuple{4, 1, 3, 0},
                      std::tuple{4, 3, 2, 2}));

TEST(UnaryRegular, SequentialSemantics) {
  const zoo::SrswRegisterLayout lay{4};
  const auto impl = regular_multivalued_from_bits(4, 2);
  const auto r = verify_regular(
      impl, {{lay.read()}, {}}, 4);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(UnaryRegular, ArgumentChecking) {
  EXPECT_THROW(regular_multivalued_from_bits(1, 0), std::invalid_argument);
  EXPECT_THROW(regular_multivalued_from_bits(3, 7), std::out_of_range);
}

}  // namespace
}  // namespace wfregs
