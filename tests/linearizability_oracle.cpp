// Differential testing of the Wing-Gong linearizability checker against a
// brute-force oracle that enumerates every permutation of the operations.
// Random histories are produced by mutating genuinely-linearizable ones
// (generated from sequential executions), so both verdicts occur.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "wfregs/runtime/history_check.hpp"
#include "wfregs/runtime/linearizability.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

// Brute force: some permutation of the (completed) ops respects real-time
// order and replays against the spec.
bool oracle(std::vector<OpRecord> ops, const TypeSpec& spec,
            StateId initial) {
  std::vector<int> order(ops.size());
  for (std::size_t k = 0; k < ops.size(); ++k) order[k] = static_cast<int>(k);
  std::ranges::sort(order);
  do {
    bool ok = true;
    // Real-time: if a finishes before b starts, a must precede b.
    for (std::size_t x = 0; x < order.size() && ok; ++x) {
      for (std::size_t y = x + 1; y < order.size() && ok; ++y) {
        const auto& a = ops[static_cast<std::size_t>(order[x])];
        const auto& b = ops[static_cast<std::size_t>(order[y])];
        if (b.response_time < a.invoke_time) ok = false;
      }
    }
    if (!ok) continue;
    StateId q = initial;
    for (std::size_t x = 0; x < order.size() && ok; ++x) {
      const auto& op = ops[static_cast<std::size_t>(order[x])];
      bool matched = false;
      for (const Transition& t : spec.delta(q, op.port, op.inv)) {
        if (static_cast<Val>(t.resp) == *op.response) {
          q = t.next;
          matched = true;
          break;
        }
      }
      ok = matched;
    }
    if (ok) return true;
  } while (std::ranges::next_permutation(order).found);
  return false;
}

class OracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleSweep, CheckerAgreesWithBruteForce) {
  std::mt19937_64 rng(GetParam());
  const auto spec = zoo::register_type(3, 3);
  const zoo::RegisterLayout lay{3};
  std::uniform_int_distribution<int> val(0, 2);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<std::size_t> jitter(0, 6);

  // Generate a sequential history, then randomly perturb intervals and
  // responses so both verdicts arise.
  std::vector<OpRecord> ops;
  int value = 0;
  const int n = 6;
  for (int k = 0; k < n; ++k) {
    OpRecord rec;
    rec.proc = k % 3;
    rec.object = 0;
    rec.port = rec.proc;
    const std::size_t base = static_cast<std::size_t>(k) * 10 + 10;
    rec.invoke_time = base - jitter(rng);
    rec.response_time = base + 1 + jitter(rng);
    if (coin(rng)) {
      const int v = val(rng);
      rec.inv = lay.write(v);
      rec.response = lay.ok();
      value = v;
    } else {
      rec.inv = lay.read();
      // Half the time: the true value; otherwise a random (maybe wrong) one.
      rec.response = coin(rng) ? lay.value_resp(value)
                               : lay.value_resp(val(rng));
    }
    ops.push_back(rec);
  }
  const bool expected = oracle(ops, spec, 0);
  const auto got = check_linearizable(ops, spec, 0);
  EXPECT_EQ(got.linearizable, expected);
  if (got.linearizable) {
    // The checker's own witness order must replay correctly.
    ASSERT_EQ(got.order.size(), ops.size());
    StateId q = 0;
    for (const int idx : got.order) {
      const auto& op = ops[static_cast<std::size_t>(idx)];
      bool matched = false;
      for (const Transition& t : spec.delta(q, op.port, op.inv)) {
        if (static_cast<Val>(t.resp) == *op.response) {
          q = t.next;
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched) << "witness order does not replay";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSweep,
                         ::testing::Range<std::uint64_t>(0, 120));

// ---- the public single-history API (history_check.hpp) --------------------
// Hand-written histories with explicit timestamps: the producer-independent
// entry point the native conformance lab feeds real-thread recordings into.

/// Appends a completed op spanning [t0, t1] to `h`.
void op(History& h, ProcId proc, PortId port, InvId inv, Val resp,
        std::size_t t0, std::size_t t1, ObjectId object = 0) {
  const int id = h.begin_op(proc, object, port, inv, t0);
  h.end_op(id, resp, t1);
}

TEST(HistoryCheck, AcceptsASequentialRegisterHistory) {
  const auto spec = zoo::register_type(3, 2);
  const zoo::RegisterLayout lay{3};
  History h;
  op(h, 0, 0, lay.write(1), lay.ok(), 0, 1);
  op(h, 1, 1, lay.read(), lay.value_resp(1), 2, 3);
  const auto r = check_history_linearizable(h, spec, 0);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_TRUE(static_cast<bool>(r));
}

TEST(HistoryCheck, AcceptsAConcurrentOldValueRead) {
  // read -> 0 overlapping write(1): linearize the read first.
  const auto spec = zoo::register_type(2, 2);
  const zoo::RegisterLayout lay{2};
  History h;
  op(h, 0, 0, lay.write(1), lay.ok(), 0, 5);
  op(h, 1, 1, lay.read(), lay.value_resp(0), 1, 2);
  EXPECT_TRUE(check_history_linearizable(h, spec, 0).ok);
}

TEST(HistoryCheck, RejectsAReadOfAValueNeverWritten) {
  const auto spec = zoo::register_type(3, 2);
  const zoo::RegisterLayout lay{3};
  History h;
  op(h, 0, 0, lay.read(), lay.value_resp(2), 0, 1);
  const auto r = check_history_linearizable(h, spec, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_NE(r.detail.find("not linearizable"), std::string::npos);
}

TEST(HistoryCheck, RejectsNewOldInversionUnderLinearizability) {
  // Two sequential reads during one write seeing new then old: regular,
  // but NOT atomic -- the exact gap between Lamport's register classes.
  const auto spec = zoo::register_type(2, 3);
  const zoo::RegisterLayout lay{2};
  History h;
  op(h, 0, 0, lay.write(1), lay.ok(), 2, 9);
  op(h, 1, 1, lay.read(), lay.value_resp(1), 3, 4);
  op(h, 2, 2, lay.read(), lay.value_resp(0), 5, 6);
  EXPECT_FALSE(check_history_linearizable(h, spec, 0).ok);
  const auto reg = check_history_regular(h, 2, 0);
  EXPECT_TRUE(reg.ok) << reg.detail;
}

TEST(HistoryCheck, FiltersByObjectId) {
  // Object 0 holds a clean history, object 7 a broken one; the verdict
  // follows the filter, and kAnyObject sees the union (broken).
  const auto spec = zoo::register_type(3, 2);
  const zoo::RegisterLayout lay{3};
  History h;
  op(h, 0, 0, lay.write(1), lay.ok(), 0, 1, /*object=*/0);
  op(h, 1, 1, lay.read(), lay.value_resp(2), 2, 3, /*object=*/7);
  op(h, 1, 1, lay.read(), lay.value_resp(1), 4, 5, /*object=*/0);
  EXPECT_TRUE(check_history_linearizable(h, spec, 0, 0).ok);
  EXPECT_FALSE(check_history_linearizable(h, spec, 0, 7).ok);
  EXPECT_FALSE(check_history_linearizable(h, spec, 0, kAnyObject).ok);
}

TEST(HistoryCheck, RegularAcceptsOverlappingWriteValues) {
  const zoo::RegisterLayout lay{2};
  History h;
  op(h, 0, 0, lay.read(), 0, 0, 1);        // before the write: initial
  op(h, 1, 1, lay.write(1), lay.ok(), 2, 6);
  op(h, 0, 0, lay.read(), 1, 3, 4);        // during the write: new value ok
  const auto r = check_history_regular(h, 2, 0);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(HistoryCheck, RegularRejectsAReadFromTheFuture) {
  // read -> 1 completes strictly before the only write(1) begins.
  const zoo::RegisterLayout lay{2};
  History h;
  op(h, 0, 0, lay.read(), 1, 0, 1);
  op(h, 1, 1, lay.write(1), lay.ok(), 2, 3);
  const auto r = check_history_regular(h, 2, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.detail.empty());
}

TEST(HistoryCheck, RegularRejectsOverlappingWrites) {
  // Two concurrent writers violate the single-writer precondition.
  const zoo::RegisterLayout lay{2};
  History h;
  op(h, 0, 0, lay.write(1), lay.ok(), 0, 5);
  op(h, 1, 1, lay.write(0), lay.ok(), 2, 3);
  EXPECT_FALSE(check_history_regular(h, 2, 0).ok);
}

}  // namespace
}  // namespace wfregs
