// Tests for Section 4.2 access bounds and the Theorem 5 register-elimination
// transform -- the paper's headline result, exercised end to end: a
// consensus implementation using registers is mechanically rewritten into a
// register-free one over a single non-trivial deterministic type, and the
// result is re-verified by exhaustive model checking.
#include "wfregs/core/register_elimination.hpp"

#include <gtest/gtest.h>

#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/core/oneuse_from_consensus.hpp"
#include "wfregs/core/oneuse_from_type.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using core::classify_register;
using core::compute_access_bounds;
using core::eliminate_registers;
using core::EliminationOptions;
using core::RegisterShape;

// ---- spec classification ---------------------------------------------------------

TEST(ClassifyRegister, RecognizesRegisterShapes) {
  const auto mrmw = classify_register(zoo::register_type(3, 4));
  ASSERT_TRUE(mrmw.has_value());
  EXPECT_EQ(mrmw->kind, RegisterShape::Kind::kMrmw);
  EXPECT_EQ(mrmw->values, 3);
  EXPECT_EQ(mrmw->ports, 4);

  const auto mrsw = classify_register(zoo::mrsw_register_type(2, 3));
  ASSERT_TRUE(mrsw.has_value());
  EXPECT_EQ(mrsw->kind, RegisterShape::Kind::kMrsw);
  EXPECT_EQ(mrsw->readers, 3);

  const auto srsw = classify_register(zoo::srsw_register_type(4));
  ASSERT_TRUE(srsw.has_value());
  EXPECT_EQ(srsw->kind, RegisterShape::Kind::kSrsw);
  EXPECT_EQ(srsw->values, 4);
}

TEST(ClassifyRegister, RejectsNonRegisters) {
  EXPECT_FALSE(classify_register(zoo::test_and_set_type(2)).has_value());
  EXPECT_FALSE(classify_register(zoo::queue_type(2, 2, 2)).has_value());
  EXPECT_FALSE(classify_register(zoo::consensus_type(2)).has_value());
  EXPECT_FALSE(classify_register(zoo::one_use_bit_type()).has_value());
  EXPECT_FALSE(classify_register(zoo::sticky_bit_type(2)).has_value());
}

TEST(ClassifyRegister, BitHelpers) {
  EXPECT_TRUE(core::is_srsw_bit_spec(zoo::srsw_bit_type()));
  EXPECT_FALSE(core::is_srsw_bit_spec(zoo::srsw_register_type(3)));
  EXPECT_FALSE(core::is_srsw_bit_spec(zoo::bit_type(2)));
  EXPECT_TRUE(core::is_one_use_bit_spec(zoo::one_use_bit_type()));
  EXPECT_FALSE(core::is_one_use_bit_spec(zoo::bit_type(2)));
}

// ---- Section 4.2 access bounds ----------------------------------------------------

TEST(AccessBounds, TestAndSetProtocolBounds) {
  const auto bounds = compute_access_bounds(consensus::from_test_and_set());
  EXPECT_TRUE(bounds.wait_free);
  EXPECT_TRUE(bounds.complete);
  EXPECT_TRUE(bounds.solves);
  // Per-execution: each process publishes (1 bit write), races (1 t&s) and
  // the loser reads (1 bit read): depth D between 4 and 6.
  EXPECT_GE(bounds.depth, 4);
  EXPECT_LE(bounds.depth, 6);
  ASSERT_EQ(bounds.per_object.size(), 3u);  // 2 announce bits + 1 test&set
  // Every bit is written once and read at most once.
  for (const auto& b : bounds.per_object) {
    if (b.type_name == "srsw_register2") {
      EXPECT_LE(b.max_accesses, 2u);
      EXPECT_GE(b.max_accesses, 1u);
    } else {
      EXPECT_EQ(b.type_name, "test_and_set");
      EXPECT_EQ(b.max_accesses, 2u);
    }
  }
  // The per-object bounds never exceed the paper's uniform bound D.
  for (const auto& b : bounds.per_object) {
    EXPECT_LE(b.max_accesses, static_cast<std::size_t>(bounds.depth));
  }
  EXPECT_THROW(bounds.at(std::array<int, 1>{99}), std::out_of_range);
}

TEST(AccessBounds, DetectsNonWaitFreeInput) {
  // A "consensus" implementation whose propose spins on a bit nobody sets:
  // the Section 4.2 Koenig argument in contrapositive form.
  const zoo::ConsensusLayout cons;
  const zoo::SrswRegisterLayout bit{2};
  auto impl = std::make_shared<Implementation>(
      "spinning", std::make_shared<const TypeSpec>(zoo::consensus_type(2)),
      cons.bottom());
  const int flag = impl->add_base(
      std::make_shared<const TypeSpec>(zoo::srsw_bit_type()), 0,
      {zoo::SrswRegisterLayout::reader_port(),
       zoo::SrswRegisterLayout::writer_port()});
  for (int v = 0; v < 2; ++v) {
    ProgramBuilder b;
    const Label loop = b.bind_here();
    b.invoke(flag, lit(bit.read()), 0);
    b.branch_if(reg(0) == lit(0), loop);
    b.ret(lit(v));
    impl->set_program(v, 0, b.build("spin" + std::to_string(v)));
    ProgramBuilder w;
    w.ret(lit(v));
    impl->set_program(v, 1, w.build("noop" + std::to_string(v)));
  }
  const auto bounds = compute_access_bounds(impl);
  EXPECT_FALSE(bounds.wait_free);
}

// ---- Theorem 5, end to end -----------------------------------------------------------

// Eliminates registers from `protocol` using one-use bits built from
// `substrate` (Section 5.2), then model-checks the result.
void expect_theorem5(std::shared_ptr<const Implementation> protocol,
                     const TypeSpec& substrate,
                     const std::string& expected_census_key) {
  SCOPED_TRACE(protocol->name() + " over " + substrate.name());
  EliminationOptions options;
  options.oneuse_factory = [&substrate] {
    return core::oneuse_from_deterministic(substrate);
  };
  const auto report = eliminate_registers(protocol, options);
  ASSERT_TRUE(report.ok) << report.detail;
  EXPECT_GT(report.bits_replaced, 0);
  EXPECT_GT(report.oneuse_bits_created, 0);
  // The result is register-free at every nesting depth: no base
  // declaration is structurally a register or a one-use bit.
  const auto walk = [](const auto& self, const Implementation& impl) -> void {
    for (const ObjectDecl& decl : impl.objects()) {
      if (decl.is_base()) {
        EXPECT_FALSE(classify_register(*decl.spec).has_value())
            << "register survived: " << decl.spec->name();
        EXPECT_FALSE(core::is_one_use_bit_spec(*decl.spec));
      } else {
        self(self, *decl.impl);
      }
    }
  };
  walk(walk, *report.result);
  EXPECT_TRUE(report.census_after.contains(expected_census_key))
      << "census lacks " << expected_census_key;
  // And it still solves consensus, wait-free, in every schedule.
  const auto check = consensus::check_consensus(report.result);
  EXPECT_TRUE(check.solves) << check.detail;
}

TEST(Theorem5, TestAndSetConsensusOverTestAndSetOnly) {
  // h_m(test&set) = h_m^r(test&set) = 2, constructively: the register-using
  // protocol becomes a protocol over test&set objects alone.
  expect_theorem5(consensus::from_test_and_set(), zoo::test_and_set_type(2),
                  "test_and_set");
}

TEST(Theorem5, QueueConsensusOverQueuesOnly) {
  expect_theorem5(consensus::from_queue(), zoo::queue_type(2, 2, 2),
                  "queue_cap2_vals2");
}

TEST(Theorem5, FetchAndAddConsensusOverFetchAndAddOnly) {
  expect_theorem5(consensus::from_fetch_and_add(),
                  zoo::fetch_and_add_type(2, 2), "fetch_and_add_cap2");
}

TEST(Theorem5, MixedSubstrateIsAllowed) {
  // The substrate need not match the racing object: test&set race, queue
  // one-use bits.
  expect_theorem5(consensus::from_test_and_set(), zoo::queue_type(2, 2, 2),
                  "queue_cap2_vals2");
}

TEST(Theorem5, Section53SubstrateWorksToo) {
  // One-use bits via Section 5.3: each is a 2-consensus implementation from
  // a sticky bit.
  EliminationOptions options;
  options.oneuse_factory = [] {
    return core::oneuse_from_consensus(consensus::from_sticky_bit(2));
  };
  const auto report =
      eliminate_registers(consensus::from_test_and_set(), options);
  ASSERT_TRUE(report.ok) << report.detail;
  EXPECT_TRUE(report.census_after.contains("sticky_bit"));
  const auto check = consensus::check_consensus(report.result);
  EXPECT_TRUE(check.solves) << check.detail;
}

TEST(Theorem5, EmptyFactoryLeavesOneUseBits) {
  EliminationOptions options;  // no substrate
  const auto report =
      eliminate_registers(consensus::from_test_and_set(), options);
  ASSERT_TRUE(report.ok) << report.detail;
  EXPECT_TRUE(report.census_after.contains("one_use_bit"));
  const auto check = consensus::check_consensus(report.result);
  EXPECT_TRUE(check.solves) << check.detail;
}

TEST(Theorem5, ThreeProcessProtocolWithMrswRegisters) {
  // The full pipeline at n = 3: from_cas_ids uses genuine MRSW registers
  // (2 readers each), so stage 1 engages the Section 4.1 chain
  // (MRSW -> Simpson -> bits) before stages 2-4 run.  The transform
  // produces hundreds of one-use bits and the result is STILL exhaustively
  // model-checked over all schedules and all 2^3 input vectors.
  core::EliminationOptions options;
  options.bounds_limits.max_configs = 50000000;
  options.oneuse_factory = [] {
    return core::oneuse_from_deterministic(zoo::test_and_set_type(2));
  };
  const auto report =
      eliminate_registers(consensus::from_cas_ids(3), options);
  ASSERT_TRUE(report.ok) << report.detail;
  EXPECT_EQ(report.registers_replaced, 3);  // the three MRSW input registers
  EXPECT_GT(report.bits_replaced, 100);
  // With per-direction (r_b, w_b) bounds the arrays stay modest (~200
  // one-use bits); the paper's uniform r_b = w_b = D bound would need
  // hundreds of thousands here (D is ~100).
  EXPECT_GT(report.oneuse_bits_created, 150);
  EXPECT_FALSE(report.census_after.contains("srsw_register2"));
  ExploreLimits limits;
  limits.max_configs = 50000000;
  const auto check = consensus::check_consensus(report.result, limits);
  EXPECT_TRUE(check.solves) << check.detail;
}

TEST(Theorem5, ReportCountsAreConsistent) {
  EliminationOptions options;
  options.oneuse_factory = [] {
    return core::oneuse_from_deterministic(zoo::test_and_set_type(2));
  };
  const auto report =
      eliminate_registers(consensus::from_test_and_set(), options);
  ASSERT_TRUE(report.ok) << report.detail;
  EXPECT_EQ(report.bits_replaced, 2);  // the two announce bits
  EXPECT_EQ(report.registers_replaced, 0);  // they were already SRSW bits
  EXPECT_TRUE(report.census_before.contains("srsw_register2"));
  EXPECT_FALSE(report.census_after.contains("srsw_register2"));
  // Each replaced bit consumed r_b (w_b + 1) one-use bits with the
  // measured per-direction bounds (each announce bit: 1 read, 1 write).
  long expected = 0;
  for (const auto& b : report.bounds.per_object) {
    if (b.type_name == "srsw_register2") {
      EXPECT_EQ(b.read_bound, 1u);
      EXPECT_EQ(b.write_bound, 1u);
      expected += static_cast<long>(b.read_bound) *
                  (static_cast<long>(b.write_bound) + 1);
    }
  }
  EXPECT_EQ(report.oneuse_bits_created, expected);
}

}  // namespace
}  // namespace wfregs
