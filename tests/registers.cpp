// Exhaustive verification of the Section 4.1 register chain.  Each layer is
// checked by exploring EVERY interleaving of a concurrent scenario and
// checking linearizability of every resulting history -- the strongest
// correctness statement the simulator can make.
#include <gtest/gtest.h>

#include "wfregs/registers/chain.hpp"
#include "wfregs/registers/mrmw.hpp"
#include "wfregs/registers/mrsw.hpp"
#include "wfregs/registers/simpson.hpp"
#include "wfregs/runtime/verify.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using registers::chained_mrsw_factory;
using registers::full_chain_register;
using registers::mrmw_register;
using registers::mrsw_register;
using registers::simpson_register;
using registers::simpson_srsw_factory;

TEST(SlotBits, CeilLog2) {
  EXPECT_EQ(registers::slot_bits(2), 1);
  EXPECT_EQ(registers::slot_bits(3), 2);
  EXPECT_EQ(registers::slot_bits(4), 2);
  EXPECT_EQ(registers::slot_bits(5), 3);
  EXPECT_THROW(registers::slot_bits(1), std::invalid_argument);
}

TEST(Simpson, StructureAndErrors) {
  const auto impl = simpson_register(4, 3);
  EXPECT_EQ(impl->iface().ports(), 2);
  // 4 slots x 2 bits + slot[2] + latest + reading = 12 bits.
  EXPECT_EQ(impl->flattened_base_count(), 12);
  EXPECT_THROW(simpson_register(4, 4), std::out_of_range);
}

// The scenario sweep: reader does two reads while the writer does two
// writes; all interleavings are explored.
class SimpsonSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SimpsonSweep, LinearizableUnderAllSchedules) {
  const auto [values, initial, w1, w2] = GetParam();
  const zoo::SrswRegisterLayout lay{values};
  const auto impl = simpson_register(values, initial);
  const auto r = verify_linearizable(
      impl, {{lay.read(), lay.read()}, {lay.write(w1), lay.write(w2)}});
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_TRUE(r.wait_free);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, SimpsonSweep,
    ::testing::Values(std::tuple{2, 0, 1, 0}, std::tuple{2, 1, 0, 0},
                      std::tuple{2, 0, 1, 1}, std::tuple{3, 0, 2, 1},
                      std::tuple{3, 2, 0, 2}, std::tuple{4, 1, 3, 2}));

TEST(Simpson, ThreeReadsTwoWritesExhaustive) {
  const zoo::SrswRegisterLayout lay{2};
  const auto impl = simpson_register(2, 0);
  const auto r = verify_linearizable(
      impl,
      {{lay.read(), lay.read(), lay.read()}, {lay.write(1), lay.write(0)}});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Mrsw, StructureAndErrors) {
  EXPECT_THROW(mrsw_register(1, 2, 0, 4), std::invalid_argument);
  EXPECT_THROW(mrsw_register(2, 0, 0, 4), std::invalid_argument);
  EXPECT_THROW(mrsw_register(2, 2, 5, 4), std::out_of_range);
  EXPECT_THROW(mrsw_register(2, 2, 0, -1), std::invalid_argument);
  const auto impl = mrsw_register(2, 3, 0, 4);
  // table[3] + report[3][2] = 3 + 6 sub-registers.
  EXPECT_EQ(impl->flattened_base_count(), 9);
  EXPECT_EQ(impl->iface().ports(), 4);
}

TEST(Mrsw, TwoReadersWriterExhaustive) {
  const zoo::MrswRegisterLayout lay{2, 2};
  const auto impl = mrsw_register(2, 2, 0, 4);
  const auto r = verify_linearizable(
      impl, {{lay.read(), lay.read()},
             {lay.read()},
             {lay.write(1), lay.write(0)}});
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_TRUE(r.wait_free);
}

TEST(Mrsw, ThreeValuedRegister) {
  const zoo::MrswRegisterLayout lay{3, 2};
  const auto impl = mrsw_register(3, 2, 1, 3);
  const auto r = verify_linearizable(
      impl, {{lay.read()}, {lay.read(), lay.read()}, {lay.write(2)}});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Mrsw, WriterOverflowFailsLoudly) {
  const zoo::MrswRegisterLayout lay{2, 1};
  const auto impl = mrsw_register(2, 1, 0, 1);
  EXPECT_THROW(
      verify_linearizable(impl, {{}, {lay.write(1), lay.write(0)}}),
      std::runtime_error);
}

TEST(Mrsw, OnTopOfSimpsonBits) {
  const zoo::MrswRegisterLayout lay{2, 2};
  const auto impl = mrsw_register(2, 2, 0, 2, simpson_srsw_factory());
  // All base objects are single bits now.
  const auto census = registers::base_census(*impl);
  ASSERT_EQ(census.size(), 1u);
  EXPECT_EQ(census.begin()->first, "srsw_register2");
  const auto r = verify_linearizable(
      impl, {{lay.read()}, {lay.read()}, {lay.write(1)}});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Mrmw, StructureAndErrors) {
  EXPECT_THROW(mrmw_register(2, 1, 0, 4), std::invalid_argument);
  EXPECT_THROW(mrmw_register(1, 2, 0, 4), std::invalid_argument);
  EXPECT_THROW(mrmw_register(2, 2, 2, 4), std::out_of_range);
  const auto impl = mrmw_register(2, 3, 0, 4);
  EXPECT_EQ(impl->flattened_base_count(), 3);  // one ts register per port
  EXPECT_EQ(impl->iface().ports(), 3);
}

TEST(Mrmw, TwoWritersOneReaderExhaustive) {
  const zoo::RegisterLayout lay{2};
  const auto impl = mrmw_register(2, 3, 0, 4);
  const auto r = verify_linearizable(
      impl, {{lay.write(1)}, {lay.write(0)}, {lay.read(), lay.read()}});
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_TRUE(r.wait_free);
}

TEST(Mrmw, WritersAlsoRead) {
  const zoo::RegisterLayout lay{3};
  const auto impl = mrmw_register(3, 2, 0, 4);
  const auto r = verify_linearizable(
      impl,
      {{lay.write(2), lay.read()}, {lay.write(1), lay.read()}});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Mrmw, ReadOwnWriteIsImmediate) {
  // A port that writes then reads with no concurrency must see its own
  // write (the persistent own-cache path).
  const zoo::RegisterLayout lay{4};
  const auto impl = mrmw_register(4, 2, 0, 4);
  const auto r = verify_linearizable(impl, {{lay.write(3), lay.read()}, {}});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(FullChain, BottomsOutAtBits) {
  registers::ChainOptions options;
  options.mrmw_max_writes = 2;
  options.mrsw_max_writes = 4;
  const auto impl = full_chain_register(2, 2, 0, options);
  const auto census = registers::base_census(*impl);
  ASSERT_EQ(census.size(), 1u);
  EXPECT_EQ(census.begin()->first, "srsw_register2");
  EXPECT_GT(census.begin()->second, 10);
}

TEST(FullChain, ExhaustiveSmallScenario) {
  registers::ChainOptions options;
  options.mrmw_max_writes = 2;
  options.mrsw_max_writes = 4;
  options.bits_at_bottom = false;  // keep the state space tractable
  const auto impl = full_chain_register(2, 2, 0, options);
  const zoo::RegisterLayout lay{2};
  const auto r = verify_linearizable(impl, {{lay.write(1)}, {lay.read()}});
  EXPECT_TRUE(r.ok) << r.detail;
}

}  // namespace
}  // namespace wfregs
