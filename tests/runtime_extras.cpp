// Further runtime-layer tests: object placement bookkeeping, per-port
// persistent state, history error paths, verify() argument checking, and a
// crash-tolerance scenario exercising the wait-freedom semantics the paper's
// model is built on (a stopped process cannot block others, and the
// resulting history with a pending operation is still linearizable).
#include <gtest/gtest.h>

#include "test_support.hpp"
#include "wfregs/core/bounded_register.hpp"
#include "wfregs/runtime/linearizability.hpp"
#include "wfregs/runtime/verify.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using testsup::make_impl;
using testsup::one_shot;
using testsup::share;

// ---- placement -----------------------------------------------------------------

TEST(Placement, PathsIdentifyNestedObjects) {
  // outer implemented object with: [0] base bit, [1] nested impl holding a
  // base bit of its own.
  const auto bit = share(zoo::bit_type(1));
  auto inner = make_impl("inner", share(zoo::bit_type(1)), 0);
  const int inner_slot = inner->add_base(bit, 0, {0});
  inner->set_program_all_ports(0, one_shot("r", inner_slot, 0));
  auto outer = make_impl("outer", share(zoo::bit_type(1)), 0);
  outer->add_base(bit, 0, {0});
  const int nested = outer->add_nested(inner, {0});
  outer->set_program_all_ports(0, one_shot("r", nested, 0));

  auto sys = std::make_shared<System>(1);
  const ObjectId top = sys->add_implemented(outer, {0});
  sys->set_toplevel(0, one_shot("main", 0, 0), {top});

  // Flatten order: outer's base bit, inner's base bit, inner virtual, outer.
  ASSERT_EQ(sys->num_objects(), 4);
  EXPECT_EQ(sys->placement(0).top, top);
  EXPECT_EQ(sys->placement(0).path, (std::vector<int>{0}));
  EXPECT_EQ(sys->placement(1).path, (std::vector<int>{1, 0}));
  EXPECT_EQ(sys->placement(2).path, (std::vector<int>{1}));
  EXPECT_TRUE(sys->placement(top).path.empty());
  // resolve() inverts placement().
  for (ObjectId g = 0; g < sys->num_objects(); ++g) {
    EXPECT_EQ(sys->resolve(top, sys->placement(g).path), g);
  }
  EXPECT_THROW(sys->resolve(top, std::array<int, 1>{9}), std::out_of_range);
  EXPECT_THROW(sys->placement(99), std::out_of_range);
}

// ---- persistent per-port state -----------------------------------------------------

TEST(PersistentState, SurvivesAcrossOperationsPerPort) {
  // An implemented "counter view": op() returns how many times THIS port
  // called it (kept in persistent register 0); the shared bit is only
  // touched to consume a step.
  const auto bit_spec = share(zoo::bit_type(2));
  const zoo::RegisterLayout lay{2};
  auto impl = make_impl("percall", share(zoo::mod_counter_type(8, 2)), 0);
  const int scratch = impl->add_base(bit_spec, 0, {0, 1});
  impl->set_persistent({0});
  {
    ProgramBuilder b;
    b.invoke(scratch, lit(lay.read()), 1);
    b.assign(0, reg(0) + lit(1));
    b.ret(reg(0));
    impl->set_program_all_ports(0, b.build("count"));
  }
  auto sys = std::make_shared<System>(2);
  const ObjectId obj = sys->add_implemented(impl, {0, 1});
  for (ProcId p = 0; p < 2; ++p) {
    ProgramBuilder b;
    b.invoke(0, lit(0), 0);
    b.invoke(0, lit(0), 1);
    b.invoke(0, lit(0), 2);
    b.ret(reg(2));
    sys->set_toplevel(p, b.build("driver" + std::to_string(p)), {obj});
  }
  Engine e{std::move(sys)};
  while (!e.all_done()) {
    for (const ProcId p : e.runnable()) e.commit(p);
  }
  // Each port counted ITS OWN three calls: persistence is per port.
  EXPECT_EQ(e.result(0), 3);
  EXPECT_EQ(e.result(1), 3);
}

// ---- history error paths -------------------------------------------------------------

TEST(History, ErrorPaths) {
  History h;
  const int op = h.begin_op(0, 0, 0, 0, 1);
  EXPECT_THROW(h.end_op(99, 0, 2), std::out_of_range);
  h.end_op(op, 5, 2);
  EXPECT_THROW(h.end_op(op, 5, 3), std::logic_error);
  EXPECT_NE(h.to_string().find("op0"), std::string::npos);
}

// ---- verify() argument checking -----------------------------------------------------

TEST(Verify, ArgumentChecking) {
  EXPECT_THROW(verify_linearizable(nullptr, {}), std::invalid_argument);
  const auto impl = core::bounded_bit_from_oneuse(1, 1, 0);
  EXPECT_THROW(verify_linearizable(impl, {{}}), std::invalid_argument);
}

// ---- crash tolerance ------------------------------------------------------------------

TEST(CrashTolerance, StoppedWriterCannotBlockTheReader) {
  // The Section 4.3 bit: the writer "crashes" mid-write (we simply stop
  // scheduling it after its first one-use-bit access).  Wait-freedom means
  // the reader still finishes, and the history -- with the write pending --
  // is linearizable (the pending write may be linearized or dropped).
  const zoo::SrswRegisterLayout bit{2};
  const auto impl = core::bounded_bit_from_oneuse(2, 2, 0);
  auto sys = std::make_shared<System>(2);
  const ObjectId obj = sys->add_implemented(impl, {0, 1});
  {
    ProgramBuilder b;
    b.invoke(0, lit(bit.read()), 0);
    b.invoke(0, lit(bit.read()), 1);
    b.ret(reg(1));
    sys->set_toplevel(0, b.build("reader"), {obj});
  }
  sys->set_toplevel(1, one_shot("writer", 0, bit.write(1)), {obj});
  Engine e{std::move(sys)};
  // Writer performs exactly one low-level step of its write, then crashes.
  e.commit(1);
  EXPECT_FALSE(e.done(1));
  // The reader must finish on its own steps alone.
  int guard = 0;
  while (!e.done(0)) {
    e.commit(0);
    ASSERT_LT(++guard, 100) << "reader did not finish: not wait-free";
  }
  const auto ops = e.history().ops_on(obj);
  ASSERT_EQ(ops.size(), 3u);  // 2 reads + 1 pending write
  int pending = 0;
  for (const auto& op : ops) {
    if (!op.response) {
      ++pending;
      EXPECT_EQ(op.inv, bit.write(1));  // the crashed write
    }
  }
  EXPECT_EQ(pending, 1);
  const auto spec = zoo::srsw_bit_type();
  EXPECT_TRUE(check_linearizable(ops, spec, 0).linearizable)
      << describe_history(ops, spec);
}

TEST(CrashTolerance, AllCrashPointsLeaveLinearizableHistories) {
  // Sweep every prefix length k: writer takes k steps then crashes; reader
  // runs to completion; history must linearize for every k.
  const zoo::SrswRegisterLayout bit{2};
  const auto spec = zoo::srsw_bit_type();
  for (int k = 0; k < 8; ++k) {
    const auto impl = core::bounded_bit_from_oneuse(2, 2, 0);
    auto sys = std::make_shared<System>(2);
    const ObjectId obj = sys->add_implemented(impl, {0, 1});
    {
      ProgramBuilder b;
      b.invoke(0, lit(bit.read()), 0);
      b.invoke(0, lit(bit.read()), 1);
      b.ret(reg(1));
      sys->set_toplevel(0, b.build("reader"), {obj});
    }
    {
      ProgramBuilder b;
      b.invoke(0, lit(bit.write(1)), 0);
      b.invoke(0, lit(bit.write(0)), 1);
      b.ret(lit(0));
      sys->set_toplevel(1, b.build("writer"), {obj});
    }
    Engine e{std::move(sys)};
    for (int s = 0; s < k && !e.done(1); ++s) e.commit(1);
    while (!e.done(0)) e.commit(0);
    const auto ops = e.history().ops_on(obj);
    EXPECT_TRUE(check_linearizable(ops, spec, 0).linearizable)
        << "crash point " << k << ":\n"
        << describe_history(ops, spec);
  }
}

// ---- stack type (zoo extension) ------------------------------------------------------

TEST(StackType, LifoSemantics) {
  const auto t = zoo::stack_type(3, 2, 2);
  const zoo::StackLayout lay{3, 2};
  const StateId empty = lay.state_of(std::array<int, 0>{});
  StateId q = t.delta_det(empty, 0, lay.push(1)).next;
  q = t.delta_det(q, 0, lay.push(0)).next;
  auto tr = t.delta_det(q, 0, lay.pop());
  EXPECT_EQ(tr.resp, lay.top_value(0));  // LIFO: last pushed first
  tr = t.delta_det(tr.next, 0, lay.pop());
  EXPECT_EQ(tr.resp, lay.top_value(1));
  tr = t.delta_det(tr.next, 0, lay.pop());
  EXPECT_EQ(tr.resp, lay.empty());
}

TEST(StackType, FullAndErrors) {
  const auto t = zoo::stack_type(1, 2, 2);
  const zoo::StackLayout lay{1, 2};
  const std::array<int, 1> one{1};
  const StateId full = lay.state_of(one);
  EXPECT_EQ(t.delta_det(full, 0, lay.push(0)).resp, lay.full());
  EXPECT_EQ(t.delta_det(full, 0, lay.push(0)).next, full);
  EXPECT_THROW(zoo::stack_type(0, 2, 2), std::invalid_argument);
  const std::array<int, 2> too_long{0, 0};
  EXPECT_THROW(lay.state_of(too_long), std::out_of_range);
}

}  // namespace
}  // namespace wfregs
