// Tests for System flattening and Engine stepping semantics: base accesses,
// nested implemented objects, port plumbing, nondeterministic choice,
// history recording and configuration keys.
#include "wfregs/runtime/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_support.hpp"
#include "wfregs/runtime/scheduler.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using testsup::constant;
using testsup::make_impl;
using testsup::one_shot;
using testsup::share;
using testsup::two_shot;

TEST(System, RejectsBadConstruction) {
  EXPECT_THROW(System(0), std::invalid_argument);
  System sys(2);
  EXPECT_THROW(sys.add_base(nullptr, 0, {0, 1}), std::invalid_argument);
  const auto bit = share(zoo::bit_type(2));
  EXPECT_THROW(sys.add_base(bit, 5, {0, 1}), std::out_of_range);
  EXPECT_THROW(sys.add_base(bit, 0, {0}), std::invalid_argument);
  EXPECT_THROW(sys.add_base(bit, 0, {0, 7}), std::out_of_range);
}

TEST(Engine, WriteThenReadOnBaseRegister) {
  const auto reg4 = share(zoo::register_type(4, 2));
  const zoo::RegisterLayout lay{4};
  auto sys = std::make_shared<System>(2);
  const ObjectId r = sys->add_base(reg4, lay.state_of(0), {0, 1});
  // p0: write(3) then read; p1: read.
  sys->set_toplevel(0, two_shot("p0", 0, lay.write(3), lay.read()), {r});
  sys->set_toplevel(1, one_shot("p1", 0, lay.read()), {r});
  Engine e(std::move(sys));
  // Run p0 fully first, then p1.
  e.commit(0);  // write(3)
  e.commit(0);  // read
  EXPECT_TRUE(e.done(0));
  EXPECT_EQ(e.result(0), lay.value_resp(3));
  e.commit(1);
  EXPECT_EQ(e.result(1), lay.value_resp(3));
  EXPECT_TRUE(e.all_done());
  EXPECT_EQ(e.time(), 3u);
}

TEST(Engine, ProcessWithoutSharedAccessFinishesImmediately) {
  auto sys = std::make_shared<System>(1);
  sys->set_toplevel(0, constant("noop", 17), {});
  Engine e(std::move(sys));
  EXPECT_TRUE(e.all_done());
  EXPECT_EQ(e.result(0), 17);
  EXPECT_TRUE(e.runnable().empty());
}

TEST(Engine, PortsRouteToTypeDelta) {
  // port_flag: port 0 observes, port 1 raises.
  const auto flag = share(zoo::port_flag_type(2));
  const zoo::PortFlagLayout lay;
  auto sys = std::make_shared<System>(2);
  // Process 0 holds port 1 (writer), process 1 holds port 0 (reader).
  const ObjectId f = sys->add_base(flag, 0, {1, 0});
  sys->set_toplevel(0, one_shot("toucher", 0, lay.touch()), {f});
  sys->set_toplevel(1, one_shot("observer", 0, lay.touch()), {f});
  Engine e(std::move(sys));
  e.commit(0);  // raise via port 1
  e.commit(1);  // observe via port 0
  EXPECT_EQ(e.result(0), lay.ok());
  EXPECT_EQ(e.result(1), lay.one());
}

TEST(Engine, NondeterministicAccessExposesChoices) {
  const auto oub = share(zoo::one_use_bit_type());
  const zoo::OneUseBitLayout lay;
  auto sys = std::make_shared<System>(1);
  // Read the bit twice: the second read happens in DEAD and has 2 choices.
  const ObjectId b = sys->add_base(oub, lay.dead(), {0});
  sys->set_toplevel(0, one_shot("deadread", 0, lay.read()), {b});
  Engine e(std::move(sys));
  EXPECT_EQ(e.pending_choices(0), 2);
  Engine e1 = e;
  e1.commit(0, 0);
  EXPECT_EQ(e1.result(0), lay.zero());
  Engine e2 = e;
  e2.commit(0, 1);
  EXPECT_EQ(e2.result(0), lay.one());
  EXPECT_THROW(e.commit(0, 2), std::out_of_range);
}

// An implemented "negated bit": read returns 1-v, write(v) stores 1-v.
std::shared_ptr<Implementation> negated_bit_impl(int ports) {
  const zoo::RegisterLayout lay{2};
  auto impl = make_impl("negated_bit", share(zoo::bit_type(ports)), 0);
  std::vector<PortId> identity;
  for (int p = 0; p < ports; ++p) identity.push_back(p);
  const int slot = impl->add_base(share(zoo::bit_type(ports)), 1, identity);
  {
    ProgramBuilder b;
    b.invoke(slot, lit(lay.read()), 0);
    b.ret(lit(1) - reg(0));
    impl->set_program_all_ports(lay.read(), b.build("negread"));
  }
  for (int v = 0; v < 2; ++v) {
    ProgramBuilder b;
    b.invoke(slot, lit(lay.write(1 - v)), 0);
    b.ret(lit(lay.ok()));
    impl->set_program_all_ports(lay.write(v), b.build("negwrite"));
  }
  return impl;
}

TEST(Engine, ImplementedObjectRunsItsPrograms) {
  const zoo::RegisterLayout lay{2};
  auto sys = std::make_shared<System>(2);
  const ObjectId nb = sys->add_implemented(negated_bit_impl(2), {0, 1});
  sys->set_toplevel(0, two_shot("p0", 0, lay.write(1), lay.read()), {nb});
  sys->set_toplevel(1, one_shot("p1", 0, lay.read()), {nb});
  Engine e(std::move(sys));
  e.commit(0);  // inner write(0)
  e.commit(0);  // inner read -> 0, negated to 1
  e.commit(1);
  EXPECT_EQ(e.result(0), lay.value_resp(1));
  EXPECT_EQ(e.result(1), lay.value_resp(1));
  // The negated-bit ops were recorded in the history.
  const auto& ops = e.history().ops();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].inv, lay.write(1));
  EXPECT_EQ(ops[0].proc, 0);
  ASSERT_TRUE(ops[0].response.has_value());
  EXPECT_EQ(*ops[0].response, lay.ok());
  EXPECT_LT(ops[0].invoke_time, ops[0].response_time);
}

TEST(Engine, NestedImplementationsFlatten) {
  // A negated-negated bit: behaves like a plain bit, two layers deep.
  const zoo::RegisterLayout lay{2};
  auto outer =
      make_impl("double_negated_bit", share(zoo::bit_type(2)), 0);
  const int slot = outer->add_nested(negated_bit_impl(2), {0, 1});
  outer->set_program_all_ports(lay.read(), one_shot("fwdread", slot,
                                                    lay.read()));
  for (int v = 0; v < 2; ++v) {
    outer->set_program_all_ports(lay.write(v),
                                 one_shot("fwdwrite", slot, lay.write(v)));
  }
  auto sys = std::make_shared<System>(1);
  const ObjectId obj = sys->add_implemented(outer, {0});
  sys->set_toplevel(0, two_shot("p0", 0, lay.write(1), lay.read()), {obj});
  Engine e(std::move(sys));
  EXPECT_EQ(e.system().num_base_objects(), 1);
  EXPECT_EQ(e.system().num_objects(), 3);  // bit, negated, double-negated
  e.commit(0);
  e.commit(0);
  EXPECT_EQ(e.result(0), lay.value_resp(1));
}

TEST(Engine, NoPortAccessIsRejected) {
  const auto bit = share(zoo::bit_type(2));
  const zoo::RegisterLayout lay{2};
  auto sys = std::make_shared<System>(2);
  const ObjectId b = sys->add_base(bit, 0, {0, kNoPort});
  sys->set_toplevel(0, one_shot("ok", 0, lay.read()), {b});
  sys->set_toplevel(1, one_shot("bad", 0, lay.read()), {b});
  EXPECT_THROW(Engine e(std::move(sys)), std::logic_error);
}

TEST(Engine, UnknownSlotIsRejected) {
  auto sys = std::make_shared<System>(1);
  sys->set_toplevel(0, one_shot("bad", 3, 0), {});
  EXPECT_THROW(Engine e(std::move(sys)), std::logic_error);
}

TEST(Engine, AccessCountsPerObjectAndInvocation) {
  const auto reg2 = share(zoo::bit_type(1));
  const zoo::RegisterLayout lay{2};
  auto sys = std::make_shared<System>(1);
  const ObjectId r = sys->add_base(reg2, 0, {0});
  sys->set_toplevel(0, two_shot("p0", 0, lay.write(1), lay.read()), {r});
  Engine e(std::move(sys));
  e.commit(0);
  e.commit(0);
  EXPECT_EQ(e.access_count(r), 2u);
  EXPECT_EQ(e.access_count(r, lay.read()), 1u);
  EXPECT_EQ(e.access_count(r, lay.write(1)), 1u);
  EXPECT_EQ(e.access_count(r, lay.write(0)), 0u);
}

TEST(Engine, ConfigKeysIdentifyConfigurations) {
  const auto bit = share(zoo::bit_type(2));
  const zoo::RegisterLayout lay{2};
  // Keys embed program identity, so they are only comparable between
  // engines over the same System instance.
  auto sys = std::make_shared<System>(2);
  const ObjectId bid = sys->add_base(bit, 0, {0, 1});
  sys->set_toplevel(0, two_shot("p0", 0, lay.write(1), lay.read()), {bid});
  sys->set_toplevel(1, one_shot("p1", 0, lay.write(1)), {bid});
  Engine a{sys};
  Engine b = a;  // copied engine: same configuration
  EXPECT_EQ(a.config_key(), b.config_key());
  b.commit(0);
  EXPECT_FALSE(a.config_key() == b.config_key());
  a.commit(0);
  EXPECT_EQ(a.config_key(), b.config_key());
  // Different schedules reaching equivalent configurations compare equal:
  // both processes write 1, so either order leaves the same configuration.
  Engine c{sys};
  Engine d{sys};
  c.commit(0);
  c.commit(1);
  d.commit(1);
  d.commit(0);
  EXPECT_EQ(c.config_key(), d.config_key());
  const ConfigKeyHash h;
  EXPECT_EQ(h(c.config_key()), h(d.config_key()));
}

TEST(Engine, RunToCompletionWithSchedulers) {
  const auto reg4 = share(zoo::register_type(4, 3));
  const zoo::RegisterLayout lay{4};
  auto sys = std::make_shared<System>(3);
  const ObjectId r = sys->add_base(reg4, 0, {0, 1, 2});
  for (ProcId p = 0; p < 3; ++p) {
    sys->set_toplevel(
        p, two_shot("p" + std::to_string(p), 0, lay.write(p + 1), lay.read()),
        {r});
  }
  {
    Engine e{std::make_shared<System>(*sys)};
    RoundRobinScheduler sched;
    FirstChooser chooser;
    EXPECT_TRUE(run_to_completion(e, sched, chooser));
    EXPECT_TRUE(e.all_done());
  }
  {
    Engine e{std::make_shared<System>(*sys)};
    RandomScheduler sched(123);
    RandomChooser chooser(456);
    EXPECT_TRUE(run_to_completion(e, sched, chooser));
    // Every process read one of the written values.
    for (ProcId p = 0; p < 3; ++p) {
      const Val v = *e.result(p);
      EXPECT_GE(v, 1);
      EXPECT_LE(v, 3);
    }
  }
}

}  // namespace
}  // namespace wfregs
