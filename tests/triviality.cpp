// Tests for the Section 5 triviality deciders and witness searches.
//
// These tests mechanize claims the paper leaves as "it is not hard to see":
//   * the trivial/non-trivial classification of familiar types;
//   * that a Section 5.1 witness can always be chosen one step apart;
//   * that minimal non-trivial pairs have the Lemma 2-4 shape (one writer
//     invocation, then reader invocations, responses agreeing on all but the
//     last position).
#include "wfregs/typesys/triviality.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "wfregs/typesys/random_type.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using namespace zoo;

// ---- Section 5.1 classification ----------------------------------------------

TEST(TrivialityOblivious, SinkAndToggleAreTrivial) {
  EXPECT_TRUE(is_trivial_oblivious(trivial_sink_type(2)));
  // The toggle changes state on every ping yet always answers ok: trivial,
  // because triviality is about responses, not states.
  EXPECT_TRUE(is_trivial_oblivious(trivial_toggle_type(2)));
}

TEST(TrivialityOblivious, FamiliarTypesAreNonTrivial) {
  EXPECT_FALSE(is_trivial_oblivious(bit_type(2)));
  EXPECT_FALSE(is_trivial_oblivious(register_type(3, 2)));
  EXPECT_FALSE(is_trivial_oblivious(test_and_set_type(2)));
  EXPECT_FALSE(is_trivial_oblivious(fetch_and_add_type(4, 2)));
  EXPECT_FALSE(is_trivial_oblivious(cas_type(2, 2)));
  EXPECT_FALSE(is_trivial_oblivious(cas_old_type(2, 2)));
  EXPECT_FALSE(is_trivial_oblivious(sticky_bit_type(2)));
  EXPECT_FALSE(is_trivial_oblivious(queue_type(2, 2, 2)));
  EXPECT_FALSE(is_trivial_oblivious(stack_type(2, 2, 2)));
  EXPECT_FALSE(is_trivial_oblivious(consensus_type(2)));
  EXPECT_FALSE(is_trivial_oblivious(multi_consensus_type(3, 2)));
  EXPECT_FALSE(is_trivial_oblivious(mod_counter_type(2, 2)));
}

TEST(TrivialityOblivious, RejectsNondeterministicAndNonObliviousInput) {
  EXPECT_THROW(is_trivial_oblivious(nondet_coin_type(2)),
               std::invalid_argument);
  EXPECT_THROW(is_trivial_oblivious(port_flag_type(2)),
               std::invalid_argument);
  EXPECT_THROW(find_oblivious_witness(nondet_coin_type(2)),
               std::invalid_argument);
}

TEST(TrivialityOblivious, TrivialFromDependsOnStartState) {
  // State 0 can reach the response-changing part; state 2 cannot.
  //   0 --a--> 1 (ok), 1 --a--> 1 (bad), 2 --a--> 2 (ok)
  TypeSpec t("partial", 1, 3, 1, 2);
  t.name_response(0, "ok");
  t.name_response(1, "bad");
  t.add(0, 0, 0, 1, 0);
  t.add(1, 0, 0, 1, 1);
  t.add(2, 0, 0, 2, 0);
  EXPECT_FALSE(is_trivial_oblivious_from(t, 0));
  // From state 1 the response is constantly "bad" over {1}: trivial.
  EXPECT_TRUE(is_trivial_oblivious_from(t, 1));
  EXPECT_TRUE(is_trivial_oblivious_from(t, 2));
  EXPECT_FALSE(is_trivial_oblivious(t));
}

// ---- Section 5.1 witness shape -------------------------------------------------

// The witness invariant the one-use-bit construction relies on: p is one
// step from q via i_prime, and i's responses differ across that edge.
void check_oblivious_witness(const TypeSpec& t, const ObliviousWitness& w) {
  const auto step = t.delta_det(w.q, 0, w.i_prime);
  EXPECT_EQ(step.next, w.p);
  EXPECT_EQ(t.delta_det(w.q, 0, w.i).resp, w.r_q);
  EXPECT_EQ(t.delta_det(w.p, 0, w.i).resp, w.r_p);
  EXPECT_NE(w.r_q, w.r_p);
}

TEST(ObliviousWitness, FoundForEveryNonTrivialZooType) {
  for (const auto& t :
       {bit_type(2), register_type(4, 2), test_and_set_type(2),
        fetch_and_add_type(3, 2), cas_type(3, 2), sticky_bit_type(2),
        queue_type(2, 2, 2), consensus_type(2), mod_counter_type(4, 2)}) {
    SCOPED_TRACE(t.name());
    const auto w = find_oblivious_witness(t);
    ASSERT_TRUE(w.has_value());
    check_oblivious_witness(t, *w);
  }
}

TEST(ObliviousWitness, AbsentForTrivialTypes) {
  EXPECT_FALSE(find_oblivious_witness(trivial_sink_type(2)).has_value());
  EXPECT_FALSE(find_oblivious_witness(trivial_toggle_type(2)).has_value());
}

// Property sweep: over random oblivious deterministic types, the decider and
// the witness search must agree, and every witness must satisfy its shape.
class ObliviousWitnessSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ObliviousWitnessSweep, WitnessIffNonTrivial) {
  RandomTypeParams params;
  params.ports = 2;
  params.num_states = 5;
  params.num_invocations = 3;
  params.num_responses = 3;
  params.oblivious = true;
  const auto t = random_type(params, GetParam());
  const auto w = find_oblivious_witness(t);
  EXPECT_EQ(w.has_value(), !is_trivial_oblivious(t));
  if (w) check_oblivious_witness(t, *w);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObliviousWitnessSweep,
                         ::testing::Range<std::uint64_t>(0, 50));

// ---- Section 5.2 general case ---------------------------------------------------

TEST(TrivialityGeneral, MatchesObliviousDeciderOnObliviousTypes) {
  for (const auto& t : {bit_type(2), test_and_set_type(2), consensus_type(2),
                        trivial_sink_type(2), trivial_toggle_type(2)}) {
    SCOPED_TRACE(t.name());
    EXPECT_EQ(is_trivial_general(t), is_trivial_oblivious(t));
  }
}

TEST(TrivialityGeneral, PortFlagIsNonTrivial) {
  EXPECT_FALSE(is_trivial_general(port_flag_type(2)));
  EXPECT_FALSE(is_trivial_general(port_flag_type(3)));
}

TEST(TrivialityGeneral, SinglePortTypesAreVacuouslyTrivial) {
  EXPECT_TRUE(is_trivial_general(bit_type(1)));
}

TEST(TrivialityGeneral, RejectsNondeterministicInput) {
  EXPECT_THROW(is_trivial_general(nondet_coin_type(2)),
               std::invalid_argument);
}

// A non-oblivious type that is nonetheless trivial: each port sees its own
// private counter parity; no port can affect another port's responses.
TEST(TrivialityGeneral, PrivateParityIsTrivial) {
  // States encode (parity of port 0's touches, parity of port 1's), and
  // touch returns the toucher's own NEW parity.
  TypeSpec t("private_parity", 2, 4, 1, 2);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const StateId q = a * 2 + b;
      t.add(q, 0, 0, (1 - a) * 2 + b, 1 - a);
      t.add(q, 1, 0, a * 2 + (1 - b), 1 - b);
    }
  }
  t.validate();
  EXPECT_FALSE(t.is_oblivious());
  EXPECT_TRUE(is_trivial_general(t));
  EXPECT_FALSE(find_nontrivial_pair(t).has_value());
}

// ---- Lemma 2-4 shape of minimal pairs -------------------------------------------

// Replays a NonTrivialPair against the spec and checks the Lemma 2-4 shape:
// H1 and H2 run the same reader sequence; responses agree at every position
// except the last; the writer invocation alone separates them.
void check_pair_shape(const TypeSpec& t, const NonTrivialPair& pair) {
  ASSERT_FALSE(pair.read_seq.empty());
  ASSERT_NE(pair.reader_port, pair.writer_port);
  StateId h1 = pair.q;
  StateId h2 = t.delta_det(pair.q, pair.writer_port, pair.write_inv).next;
  for (std::size_t k = 0; k < pair.read_seq.size(); ++k) {
    const auto t1 = t.delta_det(h1, pair.reader_port, pair.read_seq[k]);
    const auto t2 = t.delta_det(h2, pair.reader_port, pair.read_seq[k]);
    if (k + 1 < pair.read_seq.size()) {
      // Minimality: only the last response may differ (Lemma 2-4).
      EXPECT_EQ(t1.resp, t2.resp) << "premature divergence at position " << k;
    } else {
      EXPECT_EQ(t1.resp, pair.unwritten_resp);
      EXPECT_EQ(t2.resp, pair.written_resp);
      EXPECT_NE(t1.resp, t2.resp);
    }
    h1 = t1.next;
    h2 = t2.next;
  }
}

TEST(NonTrivialPair, FoundForNonTrivialZooTypesWithShape) {
  for (const auto& t :
       {bit_type(2), register_type(3, 2), test_and_set_type(2),
        fetch_and_add_type(3, 2), sticky_bit_type(2), queue_type(2, 2, 2),
        stack_type(2, 2, 2), cas_old_type(2, 2), snapshot_type(2, 2),
        multi_consensus_type(3, 2), consensus_type(2), port_flag_type(2),
        mod_counter_type(3, 2)}) {
    SCOPED_TRACE(t.name());
    const auto pair = find_nontrivial_pair(t);
    ASSERT_TRUE(pair.has_value());
    check_pair_shape(t, *pair);
  }
}

TEST(NonTrivialPair, RegisterPairIsWriteThenRead) {
  const auto t = bit_type(2);
  const RegisterLayout lay{2};
  const auto pair = find_nontrivial_pair(t);
  ASSERT_TRUE(pair.has_value());
  // The minimal pair for a bit register is a single read distinguished by a
  // single write of the opposite value.
  EXPECT_EQ(pair->read_seq.size(), 1u);
  EXPECT_EQ(pair->read_seq[0], lay.read());
}

// Property sweep over random (possibly non-oblivious) deterministic types:
// the general decider agrees with pair existence, every pair replays with
// the documented shape, and on oblivious instances the general decider
// agrees with the Section 5.1 decider.
class NonTrivialPairSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NonTrivialPairSweep, PairIffNonTrivialWithShape) {
  RandomTypeParams params;
  params.ports = 3;
  params.num_states = 5;
  params.num_invocations = 2;
  params.num_responses = 3;
  params.oblivious = (GetParam() % 2 == 0);
  const auto t = random_type(params, GetParam());
  const auto pair = find_nontrivial_pair(t);
  EXPECT_EQ(pair.has_value(), !is_trivial_general(t));
  if (pair) check_pair_shape(t, *pair);
  if (params.oblivious) {
    // On oblivious types the general and oblivious classifications coincide.
    EXPECT_EQ(is_trivial_general(t), is_trivial_oblivious(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NonTrivialPairSweep,
                         ::testing::Range<std::uint64_t>(0, 80));

// ---- Mealy helper ---------------------------------------------------------------

TEST(PortTraceClasses, SeparatesStatesWithDifferentTraces) {
  const auto t = bit_type(2);
  const auto cls = port_trace_classes(t, 0);
  EXPECT_NE(cls[0], cls[1]);  // val0 and val1 answer read differently
}

TEST(PortTraceClasses, MergesTraceEquivalentStates) {
  const auto t = trivial_toggle_type(2);
  const auto cls = port_trace_classes(t, 0);
  EXPECT_EQ(cls[0], cls[1]);  // A and B are trace-equivalent
}

TEST(ShortestDistinguishingSequence, NulloptForEquivalentStates) {
  const auto t = trivial_toggle_type(2);
  EXPECT_FALSE(shortest_distinguishing_sequence(t, 0, 0, 1).has_value());
  EXPECT_FALSE(shortest_distinguishing_sequence(t, 0, 0, 0).has_value());
}

TEST(ShortestDistinguishingSequence, FindsMultiStepDifference) {
  // 0 --a--> 1 --a--> 2(resp X); 3 --a--> 4 --a--> 5(resp Y).  States 0 and
  // 3 differ only at depth 2.
  TypeSpec t("twostep", 1, 6, 1, 2);
  t.add(0, 0, 0, 1, 0);
  t.add(1, 0, 0, 2, 0);
  t.add(2, 0, 0, 2, 0);
  t.add(3, 0, 0, 4, 0);
  t.add(4, 0, 0, 5, 1);
  t.add(5, 0, 0, 5, 1);
  const auto seq = shortest_distinguishing_sequence(t, 0, 0, 3);
  ASSERT_TRUE(seq.has_value());
  EXPECT_EQ(seq->size(), 2u);
}

}  // namespace
}  // namespace wfregs
