// The wait-free concurrency core (wfregs/concurrent), raced directly and
// differentially:
//
//   * WsDeque -- owner LIFO / thief FIFO discipline, owner-side growth, and
//     an exactly-once claim stress (owner popping against thief packs);
//   * ConcurrentInterner -- the two-phase claim protocol's exactly-once
//     publication under same-key races, and growth (table chaining) keeping
//     every key findable;
//   * StatsSnapshot -- the seqlock + double-collect read is a consistent
//     cut (a writer-maintained cross-counter invariant survives concurrent
//     collects; a torn read would break it), and the quiescent collect is
//     exact;
//   * the lock-free explorer vs the retained locked engine vs the
//     sequential explorer, bit-identical across the zoo x every reduction
//     mode x 1/2/8 threads.
//
// Iteration counts default low so tier-1 stays fast; the CI
// concurrent-stress job raises them under ThreadSanitizer through
// WFREGS_STRESS_ITERS (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "test_support.hpp"
#include "wfregs/concurrent/hash.hpp"
#include "wfregs/concurrent/interner.hpp"
#include "wfregs/concurrent/snapshot.hpp"
#include "wfregs/concurrent/ws_deque.hpp"
#include "wfregs/runtime/explorer.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using concurrent::ConcurrentInterner;
using concurrent::ContentionCounters;
using concurrent::StatsSnapshot;
using concurrent::WsDeque;
using testsup::share;

/// Iteration multiplier: WFREGS_STRESS_ITERS when set (the CI stress job),
/// else a small default that keeps tier-1 quick.
int stress_rounds(int fallback) {
  if (const char* s = std::getenv("WFREGS_STRESS_ITERS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

// ---------------------------------------------------------------------------
// WsDeque

TEST(ConcurrentCoreDeque, OwnerPopsLifoThievesStealFifo) {
  WsDeque<int> dq;
  std::vector<int> items(8);
  std::iota(items.begin(), items.end(), 0);
  for (int& v : items) dq.push(&v);
  // Owner side: LIFO (DFS locality).
  for (int expect = 7; expect >= 4; --expect) {
    ASSERT_EQ(dq.pop(), &items[static_cast<std::size_t>(expect)]);
  }
  // Thief side: FIFO (oldest, largest subtrees first).
  ContentionCounters c;
  for (int expect = 0; expect <= 3; ++expect) {
    ASSERT_EQ(dq.steal(c), &items[static_cast<std::size_t>(expect)]);
  }
  EXPECT_EQ(dq.pop(), nullptr);
  EXPECT_EQ(dq.steal(c), nullptr);
  EXPECT_EQ(c.steal_attempts, 5u);  // 4 hits + the empty probe
  EXPECT_EQ(c.steals, 4u);
}

TEST(ConcurrentCoreDeque, GrowthPreservesEveryItem) {
  WsDeque<int> dq(2);  // force repeated owner-side growth
  const int n = 1000;
  std::vector<int> items(static_cast<std::size_t>(n));
  std::iota(items.begin(), items.end(), 0);
  for (int& v : items) dq.push(&v);
  EXPECT_EQ(dq.size_estimate(), static_cast<std::size_t>(n));
  for (int expect = n - 1; expect >= 0; --expect) {
    ASSERT_EQ(dq.pop(), &items[static_cast<std::size_t>(expect)]);
  }
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(ConcurrentCoreDeque, StealStressClaimsEachItemExactlyOnce) {
  const int rounds = stress_rounds(4);
  const int kItems = 2000;
  const int kThieves = 4;
  for (int round = 0; round < rounds; ++round) {
    WsDeque<int> dq(4);  // growth happens live, under thieves
    std::vector<int> items(static_cast<std::size_t>(kItems));
    std::iota(items.begin(), items.end(), 0);
    std::atomic<int> remaining{kItems};
    std::atomic<bool> start{false};
    std::vector<std::vector<int>> claimed(
        static_cast<std::size_t>(kThieves) + 1);

    std::vector<std::thread> thieves;
    for (int th = 0; th < kThieves; ++th) {
      thieves.emplace_back([&, th] {
        ContentionCounters c;
        while (!start.load(std::memory_order_acquire)) {}
        while (remaining.load(std::memory_order_acquire) > 0) {
          if (int* p = dq.steal(c)) {
            claimed[static_cast<std::size_t>(th)].push_back(*p);
            remaining.fetch_sub(1, std::memory_order_acq_rel);
          }
        }
      });
    }
    // The owner interleaves pushes with pops, as the explorer does.
    start.store(true, std::memory_order_release);
    for (int& v : items) dq.push(&v);
    while (remaining.load(std::memory_order_acquire) > 0) {
      if (int* p = dq.pop()) {
        claimed[static_cast<std::size_t>(kThieves)].push_back(*p);
        remaining.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
    for (auto& t : thieves) t.join();

    std::vector<int> seen(static_cast<std::size_t>(kItems), 0);
    for (const auto& per_thread : claimed) {
      for (const int v : per_thread) seen[static_cast<std::size_t>(v)] += 1;
    }
    for (int v = 0; v < kItems; ++v) {
      ASSERT_EQ(seen[static_cast<std::size_t>(v)], 1)
          << "item " << v << " round " << round;
    }
  }
}

// ---------------------------------------------------------------------------
// ConcurrentInterner

std::vector<std::uint64_t> key_words(std::uint64_t i) {
  // Variable-length keys (1-3 words) exercise the inline-words layout.
  std::vector<std::uint64_t> w{i};
  if (i % 3 != 0) w.push_back(concurrent::splitmix64(i));
  if (i % 3 == 2) w.push_back(~i);
  return w;
}

TEST(ConcurrentCoreInterner, ClaimsOnceThenShares) {
  ConcurrentInterner<int> interner;
  ContentionCounters c;
  const auto words = key_words(7);
  const std::uint64_t h = concurrent::hash_words(words);
  const auto first = interner.intern(words, h, c);
  ASSERT_NE(first.value, nullptr);
  EXPECT_TRUE(first.inserted);
  *first.value = 42;
  const auto again = interner.intern(words, h, c);
  EXPECT_FALSE(again.inserted);
  EXPECT_EQ(again.value, first.value);  // address-stable payload
  EXPECT_EQ(*again.value, 42);
  EXPECT_EQ(interner.size(), 1u);
  EXPECT_EQ(interner.find(words, h), first.value);
  const auto absent = key_words(8);
  EXPECT_EQ(interner.find(absent, concurrent::hash_words(absent)), nullptr);
}

TEST(ConcurrentCoreInterner, GrowthKeepsEveryKeyFindable) {
  // Tiny initial table: the chain grows many times; published keys stay in
  // their original table and every lookup still finds them.
  ConcurrentInterner<std::uint64_t> interner(8);
  ContentionCounters c;
  const std::uint64_t n = 5000;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto words = key_words(i);
    const auto r = interner.intern(words, concurrent::hash_words(words), c);
    ASSERT_TRUE(r.inserted) << i;
    *r.value = i;
  }
  EXPECT_EQ(interner.size(), n);
  EXPECT_GT(interner.memory_bytes(), n * sizeof(std::uint64_t));
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto words = key_words(i);
    auto* v = interner.find(words, concurrent::hash_words(words));
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
}

TEST(ConcurrentCoreInterner, PublishRacePublishesEachKeyExactlyOnce) {
  const int rounds = stress_rounds(4);
  const int kThreads = 8;
  const std::uint64_t kKeys = 512;
  for (int round = 0; round < rounds; ++round) {
    // Small initial table: same-key races and seal/growth races overlap.
    ConcurrentInterner<int> interner(8);
    std::vector<std::atomic<int>> inserted_count(kKeys);
    for (auto& a : inserted_count) a.store(0, std::memory_order_relaxed);
    std::vector<std::atomic<int*>> address(kKeys);
    for (auto& a : address) a.store(nullptr, std::memory_order_relaxed);
    std::atomic<bool> start{false};

    std::vector<std::thread> threads;
    for (int th = 0; th < kThreads; ++th) {
      threads.emplace_back([&, th] {
        ContentionCounters c;
        while (!start.load(std::memory_order_acquire)) {}
        // Every thread interns EVERY key, in a thread-dependent order, so
        // each key sees kThreads racing claimers.
        for (std::uint64_t k = 0; k < kKeys; ++k) {
          const std::uint64_t i =
              (k * 7 + static_cast<std::uint64_t>(th) * 61) % kKeys;
          const auto words = key_words(i);
          const auto r =
              interner.intern(words, concurrent::hash_words(words), c);
          ASSERT_NE(r.value, nullptr);
          if (r.inserted) {
            inserted_count[i].fetch_add(1, std::memory_order_relaxed);
          }
          int* expected = nullptr;
          if (!address[i].compare_exchange_strong(
                  expected, r.value, std::memory_order_acq_rel)) {
            // Someone recorded the payload first: ours must be the same.
            ASSERT_EQ(r.value, expected);
          }
        }
      });
    }
    start.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();

    EXPECT_EQ(interner.size(), kKeys);
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      ASSERT_EQ(inserted_count[i].load(std::memory_order_relaxed), 1)
          << "key " << i << " round " << round;
    }
  }
}

// ---------------------------------------------------------------------------
// StatsSnapshot

TEST(ConcurrentCoreSnapshot, CollectIsAConsistentCutUnderWrites) {
  // Each writer maintains counter[1] == 2 * counter[0] in every published
  // record.  The invariant is linear, so it also holds for the summed
  // totals of any consistent cut -- while a torn read (mixing halves of
  // two publications) would break it.  tier-1 runs a short burst; the CI
  // stress job runs it long under TSan.
  const int publishes = 2000 * stress_rounds(1);
  const std::size_t kWriters = 3;
  StatsSnapshot stats(kWriters, 2);
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&stats, w, publishes] {
      auto writer = stats.writer(w);
      for (int i = 0; i < publishes; ++i) {
        writer.add(0, 1);
        writer.add(1, 2);
        writer.publish();
      }
    });
  }
  std::uint64_t collects = 0;
  ContentionCounters c;
  while (!done.load(std::memory_order_acquire)) {
    const auto totals = stats.collect(&c);
    ASSERT_EQ(totals.size(), 2u);
    ASSERT_EQ(totals[1], 2 * totals[0])
        << "torn snapshot after " << collects << " collects";
    ASSERT_LE(totals[0], static_cast<std::uint64_t>(publishes) * kWriters);
    ++collects;
    if (totals[0] == static_cast<std::uint64_t>(publishes) * kWriters) break;
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);

  // Quiescent: the collect is exact and retry-free.
  const auto final_totals = stats.collect();
  EXPECT_EQ(final_totals[0], static_cast<std::uint64_t>(publishes) * kWriters);
  EXPECT_EQ(final_totals[1],
            2 * static_cast<std::uint64_t>(publishes) * kWriters);
}

TEST(ConcurrentCoreSnapshot, SetOverwritesAndUnpublishedStagingIsInvisible) {
  StatsSnapshot stats(2, 3);
  auto w0 = stats.writer(0);
  auto w1 = stats.writer(1);
  w0.add(0, 5);
  w0.set(2, 99);
  // Nothing published yet: the cut is all zeros.
  EXPECT_EQ(stats.collect(), (std::vector<std::uint64_t>{0, 0, 0}));
  w0.publish();
  w1.add(0, 1);
  w1.publish();
  EXPECT_EQ(stats.collect(), (std::vector<std::uint64_t>{6, 0, 99}));
  w0.set(2, 100);  // monotone overwrite, republished as one record
  w0.publish();
  EXPECT_EQ(stats.collect(), (std::vector<std::uint64_t>{6, 0, 100}));
}

// ---------------------------------------------------------------------------
// Differential: lock-free engine vs locked engine vs sequential explorer.

void ExpectIdentical(const ExploreOutcome& seq, const ExploreOutcome& par,
                     const std::string& what) {
  EXPECT_EQ(seq.wait_free, par.wait_free) << what;
  EXPECT_EQ(seq.complete, par.complete) << what;
  EXPECT_EQ(seq.violation.has_value(), par.violation.has_value()) << what;
  EXPECT_EQ(seq.stats.configs, par.stats.configs) << what;
  EXPECT_EQ(seq.stats.edges, par.stats.edges) << what;
  EXPECT_EQ(seq.stats.terminals, par.stats.terminals) << what;
  EXPECT_EQ(seq.stats.depth, par.stats.depth) << what;
  EXPECT_EQ(seq.stats.max_accesses, par.stats.max_accesses) << what;
  EXPECT_EQ(seq.stats.max_accesses_by_inv, par.stats.max_accesses_by_inv)
      << what;
  // The intern-pool occupancy cross-check holds for both engines.
  EXPECT_EQ(par.stats.interned_configs, par.stats.configs) << what;
}

/// The parallel_explorer.cpp scenario: two invocations per process over one
/// shared instance, every response folded into the result.
Engine scenario_for(std::shared_ptr<const TypeSpec> t) {
  const int n = t->ports();
  const int invs = t->num_invocations();
  auto sys = std::make_shared<System>(n);
  std::vector<PortId> ports(static_cast<std::size_t>(n));
  std::iota(ports.begin(), ports.end(), 0);
  const ObjectId obj = sys->add_base(std::move(t), 0, ports);
  for (ProcId p = 0; p < n; ++p) {
    ProgramBuilder b;
    b.assign(1, lit(0));
    for (int k = 0; k < 2; ++k) {
      b.invoke(0, lit((p + k) % invs), 0);
      b.assign(1, reg(1) * lit(1 << 20) + reg(0) + lit(1));
    }
    b.ret(reg(1));
    sys->set_toplevel(p, b.build("p" + std::to_string(p)), {obj});
  }
  return Engine{std::move(sys)};
}

TEST(ConcurrentCoreDifferential, EnginesMatchSequentialAcrossReductions) {
  const std::vector<std::pair<std::string, TypeSpec>> workloads = [] {
    std::vector<std::pair<std::string, TypeSpec>> out;
    out.emplace_back("register(3,2)", zoo::register_type(3, 2));
    out.emplace_back("cas(2,2)", zoo::cas_type(2, 2));
    out.emplace_back("fetch_and_add(4,2)", zoo::fetch_and_add_type(4, 2));
    out.emplace_back("queue(2,2,2)", zoo::queue_type(2, 2, 2));
    out.emplace_back("sticky_bit(2)", zoo::sticky_bit_type(2));
    out.emplace_back("nondet_coin(2)", zoo::nondet_coin_type(2));
    return out;
  }();
  constexpr Reduction kModes[] = {Reduction::kNone, Reduction::kSleep,
                                  Reduction::kSleepSymmetry};
  constexpr int kThreadCounts[] = {1, 2, 8};
  // Deterministic outcome, so extra rounds only buy TSan more
  // interleavings: a few are enough even in the stress lane.
  const int rounds = std::min(stress_rounds(1), 4);

  for (const auto& [name, spec] : workloads) {
    const Engine root = scenario_for(share(TypeSpec{spec}));
    for (const Reduction mode : kModes) {
      ExploreOptions options;
      options.limits.track_access_bounds = true;
      options.limits.stop_at_violation = false;
      options.reduction = mode;
      const auto seq = explore(root, options);
      ASSERT_TRUE(seq.complete) << name;
      for (int round = 0; round < rounds; ++round) {
        for (const int threads : kThreadCounts) {
          const std::string what =
              name + " mode " + std::to_string(static_cast<int>(mode)) +
              " @ " + std::to_string(threads) + " threads";
          ExpectIdentical(
              seq, explore_parallel_lockfree(root, {}, options, threads),
              "lockfree " + what);
          ExpectIdentical(
              seq, explore_parallel_locked(root, {}, options, threads),
              "locked " + what);
        }
      }
    }
  }
}

TEST(ConcurrentCoreDifferential, LockFreeEngineReportsContention) {
  // A broad frontier at 8 workers: the idle workers' steal loops must
  // actually run (steal_attempts is the floor the E17 suite gates on).
  const Engine root = scenario_for(share(zoo::register_type(3, 3)));
  ExploreOptions options;
  options.limits.stop_at_violation = false;
  const auto out = explore_parallel_lockfree(root, {}, options, 8);
  ASSERT_TRUE(out.complete);
  EXPECT_GT(out.contention.steal_attempts, 0u);
  // Sequential exploration reports zero contention by construction.
  const auto seq = explore(root, options);
  EXPECT_EQ(seq.contention.cas_retries, 0u);
  EXPECT_EQ(seq.contention.steal_attempts, 0u);
  EXPECT_EQ(seq.contention.snapshot_retries, 0u);
}

}  // namespace
}  // namespace wfregs
