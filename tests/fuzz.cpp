// Tests for the random-schedule fuzz harness itself: determinism in the
// seed, argument checking, and -- most importantly -- that it actually
// catches broken implementations.
#include "wfregs/runtime/fuzz.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "wfregs/core/bounded_register.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using testsup::make_impl;
using testsup::share;

// A deliberately broken "bit": reads always return 1, writes are dropped.
std::shared_ptr<const Implementation> stuck_bit() {
  const zoo::RegisterLayout lay{2};
  auto impl = make_impl("stuck_bit", share(zoo::bit_type(2)), 0);
  const int scratch = impl->add_base(share(zoo::bit_type(2)), 0, {0, 1});
  {
    ProgramBuilder b;
    b.invoke(scratch, lit(lay.read()), 0);
    b.ret(lit(1));  // lie
    impl->set_program_all_ports(lay.read(), b.build("stuck_read"));
  }
  for (int v = 0; v < 2; ++v) {
    ProgramBuilder b;
    b.invoke(scratch, lit(lay.read()), 0);
    b.ret(lit(lay.ok()));  // drop the write
    impl->set_program_all_ports(lay.write(v), b.build("stuck_write"));
  }
  return impl;
}

TEST(Fuzz, CatchesABrokenImplementation) {
  const zoo::RegisterLayout lay{2};
  const auto r = fuzz_linearizable(stuck_bit(), {{lay.read()}, {}});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("not linearizable"), std::string::npos);
}

TEST(Fuzz, PassesACorrectImplementation) {
  const zoo::SrswRegisterLayout lay{2};
  const auto impl = core::bounded_bit_from_oneuse(3, 2, 0);
  FuzzOptions options;
  options.runs = 25;
  const auto r = fuzz_linearizable(
      impl,
      {{lay.read(), lay.read(), lay.read()}, {lay.write(1), lay.write(0)}},
      options);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.runs, 25u);
  EXPECT_GT(r.total_steps, 0u);
}

TEST(Fuzz, DeterministicInSeed) {
  const zoo::SrswRegisterLayout lay{2};
  const auto impl = core::bounded_bit_from_oneuse(2, 1, 0);
  FuzzOptions options;
  options.runs = 10;
  options.seed = 99;
  const auto a = fuzz_linearizable(impl, {{lay.read()}, {lay.write(1)}},
                                   options);
  const auto b = fuzz_linearizable(impl, {{lay.read()}, {lay.write(1)}},
                                   options);
  EXPECT_EQ(a.total_steps, b.total_steps);
}

TEST(Fuzz, ArgumentChecking) {
  EXPECT_THROW(fuzz_linearizable(nullptr, {}), std::invalid_argument);
  const auto impl = core::bounded_bit_from_oneuse(1, 1, 0);
  EXPECT_THROW(fuzz_linearizable(impl, {{}}), std::invalid_argument);
}

TEST(Fuzz, StepBudgetIsReported) {
  // A tiny step budget cannot finish the scenario: reported as failure.
  const zoo::SrswRegisterLayout lay{2};
  const auto impl = core::bounded_bit_from_oneuse(2, 2, 0);
  FuzzOptions options;
  options.max_steps_per_run = 1;
  const auto r = fuzz_linearizable(
      impl, {{lay.read()}, {lay.write(1)}}, options);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("did not finish"), std::string::npos);
}

}  // namespace
}  // namespace wfregs
