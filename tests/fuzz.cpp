// Tests for the random-schedule fuzz harness itself: determinism in the
// seed, argument checking, and -- most importantly -- that it actually
// catches broken implementations.  Also the property-based differential
// test driving seeded random types through the sequential AND parallel
// explorers, failing with the serialized type as a repro artifact.
#include "wfregs/runtime/fuzz.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "test_support.hpp"
#include "wfregs/analysis/consensus_power.hpp"
#include "wfregs/analysis/lint.hpp"
#include "wfregs/consensus/check.hpp"
#include "wfregs/hierarchy/hierarchy.hpp"
#include "wfregs/core/bounded_register.hpp"
#include "wfregs/native/runtime.hpp"
#include "wfregs/runtime/explorer.hpp"
#include "wfregs/runtime/history_check.hpp"
#include "wfregs/typesys/compiled_type.hpp"
#include "wfregs/typesys/random_type.hpp"
#include "wfregs/typesys/serialize.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using testsup::make_impl;
using testsup::share;

// A deliberately broken "bit": reads always return 1, writes are dropped.
std::shared_ptr<const Implementation> stuck_bit() {
  const zoo::RegisterLayout lay{2};
  auto impl = make_impl("stuck_bit", share(zoo::bit_type(2)), 0);
  const int scratch = impl->add_base(share(zoo::bit_type(2)), 0, {0, 1});
  {
    ProgramBuilder b;
    b.invoke(scratch, lit(lay.read()), 0);
    b.ret(lit(1));  // lie
    impl->set_program_all_ports(lay.read(), b.build("stuck_read"));
  }
  for (int v = 0; v < 2; ++v) {
    ProgramBuilder b;
    b.invoke(scratch, lit(lay.read()), 0);
    b.ret(lit(lay.ok()));  // drop the write
    impl->set_program_all_ports(lay.write(v), b.build("stuck_write"));
  }
  return impl;
}

TEST(Fuzz, CatchesABrokenImplementation) {
  const zoo::RegisterLayout lay{2};
  const auto r = fuzz_linearizable(stuck_bit(), {{lay.read()}, {}});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("not linearizable"), std::string::npos);
}

TEST(Fuzz, PassesACorrectImplementation) {
  const zoo::SrswRegisterLayout lay{2};
  const auto impl = core::bounded_bit_from_oneuse(3, 2, 0);
  FuzzOptions options;
  options.runs = 25;
  const auto r = fuzz_linearizable(
      impl,
      {{lay.read(), lay.read(), lay.read()}, {lay.write(1), lay.write(0)}},
      options);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.runs, 25u);
  EXPECT_GT(r.total_steps, 0u);
}

TEST(Fuzz, DeterministicInSeed) {
  const zoo::SrswRegisterLayout lay{2};
  const auto impl = core::bounded_bit_from_oneuse(2, 1, 0);
  FuzzOptions options;
  options.runs = 10;
  options.seed = 99;
  const auto a = fuzz_linearizable(impl, {{lay.read()}, {lay.write(1)}},
                                   options);
  const auto b = fuzz_linearizable(impl, {{lay.read()}, {lay.write(1)}},
                                   options);
  EXPECT_EQ(a.total_steps, b.total_steps);
}

TEST(Fuzz, ArgumentChecking) {
  EXPECT_THROW(fuzz_linearizable(nullptr, {}), std::invalid_argument);
  const auto impl = core::bounded_bit_from_oneuse(1, 1, 0);
  EXPECT_THROW(fuzz_linearizable(impl, {{}}), std::invalid_argument);
}

/// Scenario over one shared instance of `t`: every port performs two
/// invocations, folding responses into process state (the memoization
/// contract), so both explorers see rich, check-relevant configurations.
Engine random_scenario(std::shared_ptr<const TypeSpec> t) {
  const int n = t->ports();
  const int invs = t->num_invocations();
  auto sys = std::make_shared<System>(n);
  std::vector<PortId> ports(static_cast<std::size_t>(n));
  std::iota(ports.begin(), ports.end(), 0);
  const ObjectId obj = sys->add_base(std::move(t), 0, ports);
  for (ProcId p = 0; p < n; ++p) {
    ProgramBuilder b;
    b.assign(1, lit(0));
    for (int k = 0; k < 2; ++k) {
      b.invoke(0, lit((p + k) % invs), 0);
      b.assign(1, reg(1) * lit(1 << 20) + reg(0) + lit(1));
    }
    b.ret(reg(1));
    sys->set_toplevel(p, b.build("p" + std::to_string(p)), {obj});
  }
  return Engine{std::move(sys)};
}

TEST(Fuzz, DifferentialExplorersOnRandomTypes) {
  ExploreLimits limits;
  limits.track_access_bounds = true;
  limits.stop_at_violation = false;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    RandomTypeParams params;
    params.ports = 2 + static_cast<int>(seed % 2);
    params.num_states = 3 + static_cast<int>(seed % 3);
    params.num_invocations = 2 + static_cast<int>(seed % 2);
    params.num_responses = 2 + static_cast<int>(seed % 2);
    params.oblivious = (seed % 3) == 0;
    params.branching = 1 + static_cast<int>(seed % 2);
    const TypeSpec t = random_type(params, seed);
    const Engine root = random_scenario(testsup::share(t));
    // Pseudo-agreement check: process results are configuration state, so
    // the verdict is exhaustive under memoization and thread-safe.
    const int n = params.ports;
    const TerminalCheck check =
        [n](const Engine& e) -> std::optional<std::string> {
      const Val first = *e.result(0);
      for (ProcId p = 1; p < n; ++p) {
        if (*e.result(p) != first) return "results diverge";
      }
      return std::nullopt;
    };
    const auto seq = explore(root, limits, check);
    ASSERT_TRUE(seq.complete) << "seed " << seed;
    for (const int threads : {2, 8}) {
      const auto par = explore_parallel(root, check, limits, threads);
      const bool same = seq.wait_free == par.wait_free &&
                        seq.complete == par.complete &&
                        seq.violation.has_value() ==
                            par.violation.has_value() &&
                        seq.stats.configs == par.stats.configs &&
                        seq.stats.edges == par.stats.edges &&
                        seq.stats.terminals == par.stats.terminals &&
                        seq.stats.depth == par.stats.depth &&
                        seq.stats.max_accesses == par.stats.max_accesses &&
                        seq.stats.max_accesses_by_inv ==
                            par.stats.max_accesses_by_inv;
      if (!same) {
        const std::string repro =
            "fuzz_explorer_repro_seed" + std::to_string(seed) + ".wfregs";
        save_type(t, repro);
        ADD_FAILURE() << "sequential/parallel explorer mismatch at seed "
                      << seed << ", " << threads
                      << " threads; type saved to " << repro
                      << "; repro type:\n"
                      << print_type(t);
      }
    }
  }
}

/// Wraps `t` in the identity pass-through implementation: iface = t, one
/// base of type t wired port-for-port, every program a single forwarded
/// invocation.
std::shared_ptr<const Implementation> pass_through(
    std::shared_ptr<const TypeSpec> t) {
  const int ports = t->ports();
  const int invs = t->num_invocations();
  auto impl = make_impl("fuzz_passthrough", t, 0);
  std::vector<PortId> identity(static_cast<std::size_t>(ports));
  std::iota(identity.begin(), identity.end(), 0);
  const int slot = impl->add_base(t, 0, identity);
  for (InvId i = 0; i < invs; ++i) {
    impl->set_program_all_ports(i, testsup::one_shot("fwd", slot, i));
  }
  return impl;
}

TEST(Fuzz, NativeBridgeAgreesWithTheModelOnRandomPassThroughs) {
  // Bridge to the native conformance lab (wfregs/native): the same random
  // pass-through implementations the simulated fuzz path accepts also run
  // one short REAL-THREAD round each, and the recorded history must pass
  // the identical single-history oracle.  A divergence here would mean the
  // native lowering executes a different type than the model checks.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    RandomTypeParams params;
    params.ports = 2;  // one native thread per port
    params.num_states = 2 + static_cast<int>(seed % 4);
    params.num_invocations = 1 + static_cast<int>(seed % 3);
    params.num_responses = 2 + static_cast<int>(seed % 2);
    params.oblivious = (seed % 2) == 0;
    params.branching = 1 + static_cast<int>(seed % 2);
    const auto t = share(random_type(params, seed));

    // Simulated verdict: the identity pass-through is always linearizable.
    const std::vector<InvId> script(2, 0);
    FuzzOptions fopts;
    fopts.runs = 5;
    fopts.seed = seed;
    const auto sim = fuzz_linearizable(pass_through(t), {script, script},
                                       fopts);
    ASSERT_TRUE(sim.ok) << "seed " << seed << ": " << sim.detail;

    // Native verdict: one deterministic round, 2 threads, small budget.
    native::NativeRuntime rt(pass_through(t));
    native::NativeOptions nopts;
    nopts.ops_per_thread = 3;
    nopts.seed = seed;
    nopts.deterministic = true;
    const int invs = t->num_invocations();
    const native::NativeRun run = rt.run(
        [invs](PortId, int, std::mt19937_64& rng) {
          return static_cast<InvId>(rng() % static_cast<std::uint64_t>(invs));
        },
        nopts);
    ASSERT_EQ(run.history.ops().size(), 6u) << "seed " << seed;
    EXPECT_GT(run.base_accesses, 0u);
    const auto nat = check_history_linearizable(run.history, *t, 0,
                                                rt.iface_object());
    EXPECT_TRUE(nat.ok) << "seed " << seed << ": " << nat.detail << "\n"
                        << run.history.to_string();
  }
}

TEST(Fuzz, LintAcceptsEveryRandomImplementation) {
  // The static checker must digest arbitrary (valid) implementations
  // without crashing, yield a bound for the one base object, and never
  // report wiring errors for the identity pass-through.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    RandomTypeParams params;
    params.ports = 2 + static_cast<int>(seed % 3);
    params.num_states = 2 + static_cast<int>(seed % 4);
    params.num_invocations = 1 + static_cast<int>(seed % 3);
    params.num_responses = 2 + static_cast<int>(seed % 2);
    params.oblivious = (seed % 2) == 0;
    params.branching = 1 + static_cast<int>(seed % 2);
    const auto impl = pass_through(share(random_type(params, seed)));
    analysis::LintReport report;
    ASSERT_NO_THROW(report = analysis::lint(*impl)) << "seed " << seed;
    ASSERT_EQ(report.bounds.size(), 1u) << "seed " << seed;
    // One forwarded invocation per port: the static bound must cover it.
    EXPECT_TRUE(analysis::Bound::dominates(
        report.bounds.front().accesses,
        static_cast<std::size_t>(params.ports)))
        << "seed " << seed << ": " << report.to_string();
    for (const auto& d : report.diagnostics) {
      EXPECT_NE(d.pass, analysis::Diagnostic::Pass::kStructure)
          << "seed " << seed << ": " << d.to_string();
    }
  }
}

/// Differential check of one compiled table against its source spec: every
/// cell's transition slice, the deterministic accessor, the structural
/// flags, and the precomputed pairwise commutation bits.
void expect_compiled_matches(const TypeSpec& t) {
  const CompiledType c = t.compile();
  EXPECT_EQ(c.name(), t.name());
  EXPECT_EQ(c.ports(), t.ports());
  EXPECT_EQ(c.num_states(), t.num_states());
  EXPECT_EQ(c.num_invocations(), t.num_invocations());
  EXPECT_EQ(c.num_responses(), t.num_responses());
  EXPECT_EQ(c.is_total(), t.is_total());
  EXPECT_EQ(c.is_deterministic(), t.is_deterministic());
  EXPECT_EQ(c.is_oblivious(), t.is_oblivious());
  for (StateId q = 0; q < t.num_states(); ++q) {
    for (PortId p = 0; p < t.ports(); ++p) {
      for (InvId i = 0; i < t.num_invocations(); ++i) {
        const auto want = t.delta(q, p, i);
        const auto got = c.delta(q, p, i);
        ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(),
                               got.end()))
            << t.name() << " delta(" << q << ", " << p << ", " << i << ")";
        ASSERT_EQ(c.width(q, p, i), static_cast<int>(want.size()));
        if (want.size() == 1) {
          const Transition det = c.delta_det(q, p, i);
          EXPECT_EQ(det.next, want.front().next);
          EXPECT_EQ(det.resp, want.front().resp);
        } else {
          EXPECT_THROW(c.delta_det(q, p, i), std::logic_error);
        }
      }
    }
  }
  for (PortId a = 0; a < t.ports(); ++a) {
    for (InvId i1 = 0; i1 < t.num_invocations(); ++i1) {
      for (PortId b = 0; b < t.ports(); ++b) {
        for (InvId i2 = 0; i2 < t.num_invocations(); ++i2) {
          bool everywhere = true;
          for (StateId q = 0; q < t.num_states() && everywhere; ++q) {
            everywhere = accesses_commute_at(t, q, a, i1, b, i2);
          }
          ASSERT_EQ(c.commutes_everywhere(a, i1, b, i2), everywhere)
              << t.name() << " commute(" << a << ", " << i1 << ", " << b
              << ", " << i2 << ")";
        }
      }
    }
  }
  EXPECT_THROW(c.delta(t.num_states(), 0, 0), std::out_of_range);
  EXPECT_THROW(c.delta(0, t.ports(), 0), std::out_of_range);
  EXPECT_THROW(c.delta(0, 0, t.num_invocations()), std::out_of_range);
}

TEST(Fuzz, CompiledTypeMatchesSpecAcrossTheZoo) {
  expect_compiled_matches(zoo::register_type(3, 2));
  expect_compiled_matches(zoo::bit_type(3));
  expect_compiled_matches(zoo::srsw_register_type(3));
  expect_compiled_matches(zoo::srsw_bit_type());
  expect_compiled_matches(zoo::mrsw_register_type(2, 2));
  expect_compiled_matches(zoo::weak_bit_type(zoo::WeakBitKind::kSafe));
  expect_compiled_matches(zoo::weak_bit_type(zoo::WeakBitKind::kRegular));
  expect_compiled_matches(zoo::one_use_bit_type());
  expect_compiled_matches(zoo::consensus_type(3));
  expect_compiled_matches(zoo::multi_consensus_type(3, 2));
  expect_compiled_matches(zoo::test_and_set_type(2));
  expect_compiled_matches(zoo::fetch_and_add_type(4, 2));
  expect_compiled_matches(zoo::cas_type(2, 2));
  expect_compiled_matches(zoo::cas_old_type(2, 2));
  expect_compiled_matches(zoo::sticky_bit_type(3));
  expect_compiled_matches(zoo::queue_type(2, 2, 2));
  expect_compiled_matches(zoo::stack_type(2, 2, 2));
  expect_compiled_matches(zoo::snapshot_type(2, 2));
  expect_compiled_matches(zoo::trivial_toggle_type(2));
  expect_compiled_matches(zoo::trivial_sink_type(2));
  expect_compiled_matches(zoo::nondet_coin_type(2));
  expect_compiled_matches(zoo::port_flag_type(3));
  expect_compiled_matches(zoo::mod_counter_type(5, 2));
  expect_compiled_matches(zoo::shift_register_type(3, 2));
}

TEST(Fuzz, CompiledTypeMatchesSpecOnRandomTypes) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    RandomTypeParams params;
    params.ports = 1 + static_cast<int>(seed % 4);
    params.num_states = 2 + static_cast<int>(seed % 5);
    params.num_invocations = 1 + static_cast<int>(seed % 4);
    params.num_responses = 2 + static_cast<int>(seed % 3);
    params.oblivious = (seed % 3) == 0;
    params.branching = 1 + static_cast<int>(seed % 3);
    const TypeSpec t = random_type(params, seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_compiled_matches(t);
  }
}

TEST(Fuzz, StaticConsensusBoundsNeverContradictTheModelChecker) {
  // Differential gate for the static consensus-power classifier: on seeded
  // random types, every emitted certificate must pass the independent
  // checker, a finite static upper bound must agree with the hierarchy
  // harness's exhaustive witness searches (a race or adopt witness IS a
  // verified 2-consensus protocol, so its existence would contradict
  // cons <= 1), and a static lower bound >= 2 whose gadget the harness can
  // also realize must yield a protocol the model checker accepts.  Any
  // failure saves the type as a repro artifact.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RandomTypeParams params;
    params.ports = 2;
    params.num_states = 2 + static_cast<int>(seed % 4);
    params.num_invocations = 1 + static_cast<int>(seed % 3);
    params.num_responses = 2 + static_cast<int>(seed % 3);
    params.oblivious = (seed % 5) == 0;
    params.branching = 1 + static_cast<int>(seed % 3 == 0 ? 1 : 0);
    const TypeSpec t = random_type(params, seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    if (!t.is_total()) continue;

    auto repro = [&](const std::string& what) {
      const std::string path =
          "fuzz_static_power_repro_seed" + std::to_string(seed) + ".wfregs";
      save_type(t, path);
      ADD_FAILURE() << what << " at seed " << seed << "; type saved to "
                    << path << "; repro type:\n"
                    << print_type(t);
    };

    analysis::ConsensusPowerResult r;
    try {
      r = analysis::classify_consensus_power(t);
    } catch (const std::exception& e) {
      repro(std::string("classifier threw: ") + e.what());
      continue;
    }
    for (const auto& claim : r.claims) {
      const auto check = analysis::check_certificate(t, claim);
      if (!check.ok) {
        repro(std::string("certificate rejected (") +
              analysis::power_rule_name(claim.rule) + "): " + check.detail);
      }
    }
    if (r.upper_finite && r.lower > r.upper) {
      repro("contradictory interval");
      continue;
    }

    if (!t.is_deterministic()) {
      // Nondeterministic types must get the solo bound only -- the static
      // rules argue over delta as a function.
      if (r.lower != 1 || r.upper_finite) repro("nondeterministic overclaim");
      continue;
    }

    if (r.upper_finite) {
      // cons <= 1 certified: the exhaustive harness searches must agree
      // that no single-object 2-consensus gadget exists.
      if (hierarchy::find_race_witness(t)) {
        repro("static upper bound 1 but a race witness exists");
      }
      if (hierarchy::find_adopt_witness(t)) {
        repro("static upper bound 1 but an adopt witness exists");
      }
    }
    if (r.lower >= 2) {
      // cons >= 2 certified: when the harness can realize a gadget of its
      // own, the resulting protocol must model-check.  (The static race
      // gadget is broader than the harness's same-invocation witness, so a
      // null protocol here is not by itself a contradiction.)
      auto protocol = hierarchy::race_consensus(t);
      if (!protocol) protocol = hierarchy::adopt_consensus(t);
      if (protocol) {
        const auto verdict = consensus::check_consensus(protocol);
        if (!verdict.complete || !verdict.solves) {
          repro("static lower bound 2 but the harness protocol fails: " +
                verdict.detail);
        }
      }
    }
  }
}

TEST(Fuzz, StepBudgetIsReported) {
  // A tiny step budget cannot finish the scenario: reported as failure.
  const zoo::SrswRegisterLayout lay{2};
  const auto impl = core::bounded_bit_from_oneuse(2, 2, 0);
  FuzzOptions options;
  options.max_steps_per_run = 1;
  const auto r = fuzz_linearizable(
      impl, {{lay.read()}, {lay.write(1)}}, options);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("did not finish"), std::string::npos);
}

}  // namespace
}  // namespace wfregs
