// Differential and adversarial tests for the static consensus-power
// classifier (analysis::classify_consensus_power):
//
//   * a zoo sweep pinning the expected bounds per type, with every emitted
//     certificate re-validated by the independent checker;
//   * model-checking differentials: each static lower bound is witnessed by
//     an actual protocol (hierarchy race/adopt construction) that
//     check_consensus verifies, so static claims are sandwiched by dynamic
//     ground truth;
//   * shift registers w = 1..4 (the Aspnes family) never contradict the
//     model checker;
//   * hand-corrupted certificates -- tampered dispositions, response
//     tables, race histories, decide tables -- must be REJECTED;
//   * the family rule (classify_family / check_family_result) and the
//     register-shape probe;
//   * the static fast-path decider: refutes registers-only consensus
//     without exploration and agrees with full exploration bit for bit on
//     the solves/wait_free verdict.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "wfregs/analysis/consensus_power.hpp"
#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/hierarchy/hierarchy.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using analysis::CertCheckResult;
using analysis::check_certificate;
using analysis::check_family_result;
using analysis::classify_consensus_power;
using analysis::classify_family;
using analysis::CommuteOverwriteCert;
using analysis::ConsensusPowerResult;
using analysis::AdoptCert;
using analysis::FamilyCert;
using analysis::PowerClaim;
using analysis::PowerRule;
using analysis::RaceCert;
using analysis::TrivialGeneralCert;
using analysis::TrivialObliviousCert;

// Classifies and re-validates every claim; returns the result.
ConsensusPowerResult classify_checked(const TypeSpec& t) {
  ConsensusPowerResult r = classify_consensus_power(t);
  for (const PowerClaim& claim : r.claims) {
    const CertCheckResult c = check_certificate(t, claim);
    EXPECT_TRUE(c.ok) << t.name() << " [" << power_rule_name(claim.rule)
                      << "]: " << c.detail;
  }
  return r;
}

// ---- the zoo sweep ---------------------------------------------------------

struct Expected {
  TypeSpec type;
  int lower;
  bool upper_finite;
};

TEST(StaticPower, RegisterLikeTypesAreExactlyOne) {
  // cons = 1 exactly: lower 1 (solo) meets upper 1 (commute-or-overwrite or
  // triviality).  These are the >= 6 exact matches of the acceptance gate.
  const TypeSpec exact_one[] = {
      zoo::bit_type(2),
      zoo::register_type(3, 2),
      zoo::srsw_register_type(4),
      zoo::srsw_bit_type(),
      zoo::mrsw_register_type(2, 2),
      zoo::snapshot_type(2, 2),
      zoo::trivial_toggle_type(2),
      zoo::trivial_sink_type(2),
      zoo::port_flag_type(2),
  };
  int exact = 0;
  for (const TypeSpec& t : exact_one) {
    const ConsensusPowerResult r = classify_checked(t);
    EXPECT_EQ(r.lower, 1) << r.summary();
    EXPECT_TRUE(r.upper_finite) << r.summary();
    EXPECT_EQ(r.upper, 1) << r.summary();
    if (r.lower == 1 && r.upper_finite && r.upper == 1) ++exact;
  }
  EXPECT_GE(exact, 6);
}

TEST(StaticPower, RacyTypesAreAtLeastTwo) {
  const TypeSpec at_least_two[] = {
      zoo::test_and_set_type(2),
      zoo::cas_type(2, 2),
      zoo::fetch_and_add_type(3, 2),
      zoo::mod_counter_type(3, 2),
      zoo::queue_type(2, 2, 2),
      zoo::stack_type(2, 2, 2),
  };
  for (const TypeSpec& t : at_least_two) {
    const ConsensusPowerResult r = classify_checked(t);
    EXPECT_GE(r.lower, 2) << r.summary();
    EXPECT_FALSE(r.upper_finite) << r.summary();
  }
}

TEST(StaticPower, FirstValueRevealersGetAdoptDepthTwo) {
  const TypeSpec adopters[] = {
      zoo::sticky_bit_type(2),
      zoo::consensus_type(2),
      zoo::cas_old_type(3, 2),
  };
  for (const TypeSpec& t : adopters) {
    const ConsensusPowerResult r = classify_checked(t);
    EXPECT_GE(r.lower, 2) << r.summary();
    bool has_adopt = false;
    for (const PowerClaim& claim : r.claims) {
      has_adopt = has_adopt || claim.rule == PowerRule::kAdoptLower;
    }
    EXPECT_TRUE(has_adopt) << r.summary();
  }
}

TEST(StaticPower, AdoptDepthScalesWithConsensusObjectPorts) {
  // An n-port consensus object carries a depth-n adopt gadget: every
  // invoker's old-value response is the first proposal.
  for (int n = 2; n <= 4; ++n) {
    const ConsensusPowerResult r = classify_checked(zoo::consensus_type(n));
    EXPECT_GE(r.lower, n) << r.summary();
  }
}

TEST(StaticPower, NondeterministicTypesGetSoloOnly) {
  const TypeSpec nondet[] = {
      zoo::one_use_bit_type(),
      zoo::nondet_coin_type(2),
      zoo::weak_bit_type(zoo::WeakBitKind::kSafe),
  };
  for (const TypeSpec& t : nondet) {
    const ConsensusPowerResult r = classify_checked(t);
    EXPECT_FALSE(r.deterministic);
    EXPECT_EQ(r.lower, 1) << r.summary();
    EXPECT_FALSE(r.upper_finite) << r.summary();
    EXPECT_EQ(r.claims.size(), 1u) << r.summary();
    EXPECT_EQ(r.claims[0].rule, PowerRule::kSoloLower);
  }
}

TEST(StaticPower, SinglePortTypesAreVacuouslyOne) {
  // One port = no cross-process communication through the object at all.
  const ConsensusPowerResult r = classify_checked(zoo::shift_register_type(1, 1));
  EXPECT_EQ(r.lower, 1) << r.summary();
  EXPECT_TRUE(r.upper_finite) << r.summary();
  EXPECT_EQ(r.upper, 1) << r.summary();
}

// ---- shift registers (the Aspnes family) -----------------------------------

TEST(StaticPower, ShiftRegistersNeverContradictTheModelChecker) {
  // This zoo's shift register returns the OLD contents on shl, so even
  // w = 1 races (shl is a swap); the static pass must put cons in
  // [2, inf) for every width.  The model checker confirms the lower bound
  // with an actual protocol: at w = 1 the race construction (one swap
  // object + announce registers -- registers are allowed by cons), and for
  // w >= 2 the register-free PR-6 shift-register protocol itself.
  for (int w = 1; w <= 4; ++w) {
    const TypeSpec t = zoo::shift_register_type(w, 2);
    const ConsensusPowerResult r = classify_checked(t);
    EXPECT_GE(r.lower, 2) << r.summary();
    EXPECT_FALSE(r.upper_finite) << r.summary();

    const auto protocol = w == 1 ? hierarchy::race_consensus(t)
                                 : consensus::from_shift_register(2, w);
    ASSERT_NE(protocol, nullptr) << "w=" << w;
    const auto checked = consensus::check_consensus(protocol);
    ASSERT_TRUE(checked.complete) << "w=" << w;
    EXPECT_TRUE(checked.solves)
        << "w=" << w << ": " << checked.detail;  // cons >= 2 >= static L
  }
}

// ---- model-checked differentials for the lower-bound gadgets ---------------

TEST(StaticPower, RaceLowerBoundIsWitnessedByAVerifiedProtocol) {
  // Static claim: race => cons >= 2.  Dynamic witness: the publish/race/
  // adopt protocol (one object + announce bits) model-checks as solving
  // 2-process consensus.
  const TypeSpec racy[] = {
      zoo::test_and_set_type(2),
      zoo::fetch_and_add_type(3, 2),
      zoo::shift_register_type(1, 2),
  };
  for (const TypeSpec& t : racy) {
    const ConsensusPowerResult r = classify_checked(t);
    bool has_race = false;
    for (const PowerClaim& claim : r.claims) {
      has_race = has_race || claim.rule == PowerRule::kRaceLower;
    }
    ASSERT_TRUE(has_race) << r.summary();
    const auto protocol = hierarchy::race_consensus(t);
    ASSERT_NE(protocol, nullptr) << t.name();
    const auto checked = consensus::check_consensus(protocol);
    ASSERT_TRUE(checked.complete) << t.name();
    EXPECT_TRUE(checked.solves) << t.name() << ": " << checked.detail;
  }
}

TEST(StaticPower, AdoptLowerBoundIsWitnessedByAVerifiedProtocol) {
  // Static claim: depth-2 adopt => cons >= 2 with NO registers.  Dynamic
  // witness: the one-object protocol solves 2-process consensus.
  const TypeSpec adopters[] = {
      zoo::sticky_bit_type(2),
      zoo::consensus_type(2),
  };
  for (const TypeSpec& t : adopters) {
    const auto protocol = hierarchy::adopt_consensus(t);
    ASSERT_NE(protocol, nullptr) << t.name();
    const auto checked = consensus::check_consensus(protocol);
    ASSERT_TRUE(checked.complete) << t.name();
    EXPECT_TRUE(checked.solves) << t.name() << ": " << checked.detail;
  }
  // Depth 3: three processes on one consensus object.
  const auto three = consensus::check_consensus(
      consensus::from_consensus_object(3));
  ASSERT_TRUE(three.complete);
  EXPECT_TRUE(three.solves) << three.detail;
}

// ---- corrupted certificates must be rejected (satellite 3) -----------------

PowerClaim claim_with_rule(const ConsensusPowerResult& r, PowerRule rule) {
  for (const PowerClaim& claim : r.claims) {
    if (claim.rule == rule) return claim;
  }
  ADD_FAILURE() << "no claim with rule " << power_rule_name(rule) << " in "
                << r.summary();
  return {};
}

TEST(StaticPower, TamperedCommutationEntryIsRejected) {
  const TypeSpec t = zoo::register_type(2, 2);
  PowerClaim claim =
      claim_with_rule(classify_checked(t), PowerRule::kCommuteOverwriteUpper);
  auto& cert = std::get<CommuteOverwriteCert>(claim.cert);
  // Flip every used entry in turn until one flips the verdict; a wrong
  // disposition anywhere must be caught.
  bool caught = false;
  for (std::size_t k = 0; k < cert.dispositions.size() && !caught; ++k) {
    if (cert.dispositions[k] == analysis::kPairUnused) continue;
    const std::uint8_t keep = cert.dispositions[k];
    cert.dispositions[k] = (keep + 1) % 3;
    caught = !check_certificate(t, claim).ok;
    cert.dispositions[k] = keep;
  }
  EXPECT_TRUE(caught);
  // Truncated table: rejected outright.
  cert.dispositions.pop_back();
  EXPECT_FALSE(check_certificate(t, claim).ok);
}

TEST(StaticPower, TamperedTrivialityTablesAreRejected) {
  const TypeSpec toggle = zoo::trivial_toggle_type(2);
  const ConsensusPowerResult r = classify_checked(toggle);
  {
    PowerClaim claim = claim_with_rule(r, PowerRule::kTrivialObliviousUpper);
    auto& cert = std::get<TrivialObliviousCert>(claim.cert);
    cert.resp[0] = static_cast<RespId>(cert.resp[0] + 1);
    const CertCheckResult c = check_certificate(toggle, claim);
    EXPECT_FALSE(c.ok);
    EXPECT_FALSE(c.detail.empty());
  }
  {
    PowerClaim claim = claim_with_rule(r, PowerRule::kTrivialGeneralUpper);
    auto& cert = std::get<TrivialGeneralCert>(claim.cert);
    // Merging two distinct trace classes fabricates an equivalence the
    // checker's bisimulation pass must refute (a toggle's two states answer
    // read differently), or -- if all states already share a class --
    // splitting one state out breaks foreign-port invariance.
    std::vector<int> orig = cert.classes;
    bool tampered = false;
    for (std::size_t k = 1; k < cert.classes.size() && !tampered; ++k) {
      if (cert.classes[k] != cert.classes[0]) {
        cert.classes[k] = cert.classes[0];
        tampered = true;
      }
    }
    if (!tampered) cert.classes[0] = cert.classes[0] + 1;
    EXPECT_FALSE(check_certificate(toggle, claim).ok);
  }
}

TEST(StaticPower, TamperedRaceHistoryIsRejected) {
  const TypeSpec tas = zoo::test_and_set_type(2);
  const PowerClaim good =
      claim_with_rule(classify_checked(tas), PowerRule::kRaceLower);
  {
    // Claim the wrong second-application response.
    PowerClaim claim = good;
    auto& cert = std::get<RaceCert>(claim.cert);
    cert.second_a = cert.first_a;  // "the race is invisible"
    EXPECT_FALSE(check_certificate(tas, claim).ok);
  }
  {
    // Tamper the embedded non-trivial pair's history.
    PowerClaim claim = good;
    auto& cert = std::get<RaceCert>(claim.cert);
    cert.pair.written_resp = cert.pair.unwritten_resp;
    EXPECT_FALSE(check_certificate(tas, claim).ok);
  }
  {
    // A race on one port is no race.
    PowerClaim claim = good;
    auto& cert = std::get<RaceCert>(claim.cert);
    cert.port_b = cert.port_a;
    EXPECT_FALSE(check_certificate(tas, claim).ok);
  }
  {
    // Wrong bound for the rule.
    PowerClaim claim = good;
    claim.bound = 3;
    EXPECT_FALSE(check_certificate(tas, claim).ok);
  }
}

TEST(StaticPower, TamperedAdoptTableIsRejected) {
  const TypeSpec sticky = zoo::sticky_bit_type(2);
  const PowerClaim good =
      claim_with_rule(classify_checked(sticky), PowerRule::kAdoptLower);
  {
    // Rewrite a reachable decide entry: some execution now decodes the
    // wrong first value.
    PowerClaim claim = good;
    auto& cert = std::get<AdoptCert>(claim.cert);
    bool caught = false;
    for (int& d : cert.decide) {
      if (d == -1) continue;
      const int keep = d;
      d = 1 - d;
      caught = caught || !check_certificate(sticky, claim).ok;
      d = keep;
    }
    EXPECT_TRUE(caught);
  }
  {
    // Inflate the claimed depth beyond the table's consistency.
    PowerClaim claim = good;
    auto& cert = std::get<AdoptCert>(claim.cert);
    cert.depth = cert.depth + 1;
    claim.bound = cert.depth;
    EXPECT_FALSE(check_certificate(sticky, claim).ok);
  }
  {
    // Mismatched variant: a race claim carrying an adopt table.
    PowerClaim claim = good;
    claim.rule = PowerRule::kRaceLower;
    claim.bound = 2;
    EXPECT_FALSE(check_certificate(sticky, claim).ok);
  }
}

// ---- the family rule -------------------------------------------------------

TEST(StaticPower, FamilyOfRegistersIsAbsorbed) {
  const std::vector<TypeSpec> family = {
      zoo::bit_type(2), zoo::register_type(3, 2), zoo::srsw_register_type(2)};
  const auto r = classify_family(family);
  EXPECT_EQ(r.lower, 1);
  EXPECT_TRUE(r.upper_finite);
  EXPECT_EQ(r.upper, 1);
  ASSERT_TRUE(r.augmentation.has_value());
  EXPECT_EQ(r.augmentation->rule, PowerRule::kRegisterAugmentation);
  const CertCheckResult c = check_family_result(family, r);
  EXPECT_TRUE(c.ok) << c.detail;
}

TEST(StaticPower, FamilyInheritsTheStrongestMemberLowerBound) {
  const std::vector<TypeSpec> family = {zoo::bit_type(2),
                                        zoo::consensus_type(3)};
  const auto r = classify_family(family);
  EXPECT_GE(r.lower, 3);
  EXPECT_FALSE(r.upper_finite);
  EXPECT_FALSE(r.augmentation.has_value());
  const CertCheckResult c = check_family_result(family, r);
  EXPECT_TRUE(c.ok) << c.detail;
}

TEST(StaticPower, TamperedFamilyResultIsRejected) {
  const std::vector<TypeSpec> family = {zoo::bit_type(2),
                                        zoo::register_type(2, 2)};
  auto r = classify_family(family);
  ASSERT_TRUE(check_family_result(family, r).ok);
  {
    auto bad = r;
    bad.lower = 2;  // not backed by any member claim
    EXPECT_FALSE(check_family_result(family, bad).ok);
  }
  {
    auto bad = r;
    bad.members[0].upper = 3;  // family rule only ever certifies 1
    EXPECT_FALSE(check_family_result(family, bad).ok);
  }
  {
    // A FamilyCert claim routed to the single-type checker must fail.
    EXPECT_FALSE(check_certificate(family[0], *r.augmentation).ok);
  }
}

TEST(StaticPower, RegisterShapeProbe) {
  EXPECT_TRUE(analysis::is_register_shaped(zoo::register_type(3, 2)));
  EXPECT_TRUE(analysis::is_register_shaped(zoo::bit_type(2)));
  EXPECT_FALSE(analysis::is_register_shaped(zoo::test_and_set_type(2)));
  EXPECT_FALSE(analysis::is_register_shaped(zoo::sticky_bit_type(2)));
  EXPECT_FALSE(analysis::is_register_shaped(zoo::fetch_and_add_type(3, 2)));
}

// ---- the static fast-path decider ------------------------------------------

TEST(StaticPower, DeciderRefutesRegistersOnlyConsensusWithoutExploring) {
  const auto impl = consensus::registers_only_attempt(2);
  const auto decider = analysis::static_consensus_decider();
  const auto decision = decider(*impl);
  ASSERT_TRUE(decision.has_value());
  EXPECT_FALSE(decision->solves);
  EXPECT_TRUE(decision->wait_free);
  EXPECT_NE(decision->detail.find("cons <= 1"), std::string::npos)
      << decision->detail;
}

TEST(StaticPower, DeciderDeclinesWhenABaseTypeIsStrong) {
  const auto decider = analysis::static_consensus_decider();
  EXPECT_FALSE(decider(*consensus::from_test_and_set()).has_value());
  EXPECT_FALSE(decider(*consensus::from_sticky_bit(2)).has_value());
}

TEST(StaticPower, FastPathAgreesWithFullExploration) {
  // The differential that matters: on a statically decidable job the
  // fast-path and the explorer return the same solves/wait_free verdict.
  for (int n = 2; n <= 3; ++n) {
    const auto impl = consensus::registers_only_attempt(n);

    VerifyOptions fast;
    fast.static_consensus = analysis::static_consensus_decider();
    const auto s = consensus::check_consensus(impl, fast);
    ASSERT_TRUE(s.static_decision);
    ASSERT_TRUE(s.complete);

    const auto full = consensus::check_consensus(impl, VerifyOptions{});
    ASSERT_TRUE(full.complete);
    ASSERT_FALSE(full.static_decision);
    EXPECT_EQ(s.solves, full.solves);
    EXPECT_EQ(s.wait_free, full.wait_free);
  }
}

TEST(StaticPower, ExplorationPathIsUntouchedWhenDeciderDeclines) {
  VerifyOptions options;
  options.static_consensus = analysis::static_consensus_decider();
  const auto r =
      consensus::check_consensus(consensus::from_test_and_set(), options);
  EXPECT_FALSE(r.static_decision);
  EXPECT_TRUE(r.solves) << r.detail;
}

// ---- misc ------------------------------------------------------------------

TEST(StaticPower, SummaryMentionsBoundsAndRules) {
  const auto r = classify_checked(zoo::test_and_set_type(2));
  const std::string s = r.summary();
  EXPECT_NE(s.find("cons in [2, inf]"), std::string::npos) << s;
  EXPECT_NE(s.find("race"), std::string::npos) << s;
}

TEST(StaticPower, NonTotalSpecThrows) {
  TypeSpec partial("partial", 2, 2, 2, 2);
  partial.add(0, 0, 0, 1, 0);  // single entry: everything else undefined
  EXPECT_THROW(classify_consensus_power(partial), std::invalid_argument);
}

}  // namespace
}  // namespace wfregs
