// Tests for the compiled execution core: Engine::apply/revert undo
// exactness, the ConfigInterner memo substrate, the splitmix-style key hash,
// and the differential cross-check holding the interned undo-based explorers
// (explore, explore_parallel) to the legacy reference (explore_legacy) in
// every reduction mode, including abort paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <numeric>
#include <sstream>
#include <vector>

#include "test_support.hpp"
#include "wfregs/runtime/config_intern.hpp"
#include "wfregs/runtime/explorer.hpp"
#include "wfregs/typesys/random_type.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using testsup::make_impl;
using testsup::one_shot;
using testsup::share;

/// Every observable facet of an engine configuration, serialized: the
/// configuration key (object states, process program state, persistent
/// blocks), the commit clock, per-object access counters, and the full
/// history text.  Two engines with equal fingerprints are indistinguishable
/// to every consumer in this library.
std::string fingerprint(const Engine& e) {
  std::ostringstream os;
  for (const std::uint64_t w : e.config_key().words) os << w << ',';
  os << "|t" << e.time();
  const System& sys = e.system();
  for (ObjectId g = 0; g < sys.num_objects(); ++g) {
    if (!sys.is_base(g)) continue;
    os << "|g" << g << ':' << e.object_state(g) << ':' << e.access_count(g);
    const int invs = sys.base(g).spec->num_invocations();
    for (InvId i = 0; i < invs; ++i) os << ',' << e.access_count(g, i);
  }
  os << "|h" << e.history().to_string();
  return os.str();
}

/// Symmetric scenario over one shared instance of `t`: every process runs
/// the SAME program object (pointer equality is what symmetry_renamings
/// keys on), performing two invocations and folding responses into local
/// state per the memoization contract.
Engine symmetric_scenario(std::shared_ptr<const TypeSpec> t) {
  const int n = t->ports();
  const int invs = t->num_invocations();
  auto sys = std::make_shared<System>(n);
  std::vector<PortId> ports(static_cast<std::size_t>(n));
  std::iota(ports.begin(), ports.end(), 0);
  const ObjectId obj = sys->add_base(std::move(t), 0, ports);
  ProgramBuilder b;
  b.assign(1, lit(0));
  for (int k = 0; k < 2; ++k) {
    b.invoke(0, lit(k % invs), 0);
    b.assign(1, reg(1) * lit(1 << 20) + reg(0) + lit(1));
  }
  b.ret(reg(1));
  const ProgramRef prog = b.build("sym");
  for (ProcId p = 0; p < n; ++p) sys->set_toplevel(p, prog, {obj});
  return Engine{std::move(sys)};
}

/// Per-process programs (distinct invocation sequences): the asymmetric
/// counterpart, identical to the fuzz suite's random_scenario.
Engine asymmetric_scenario(std::shared_ptr<const TypeSpec> t) {
  const int n = t->ports();
  const int invs = t->num_invocations();
  auto sys = std::make_shared<System>(n);
  std::vector<PortId> ports(static_cast<std::size_t>(n));
  std::iota(ports.begin(), ports.end(), 0);
  const ObjectId obj = sys->add_base(std::move(t), 0, ports);
  for (ProcId p = 0; p < n; ++p) {
    ProgramBuilder b;
    b.assign(1, lit(0));
    for (int k = 0; k < 2; ++k) {
      b.invoke(0, lit((p + k) % invs), 0);
      b.assign(1, reg(1) * lit(1 << 20) + reg(0) + lit(1));
    }
    b.ret(reg(1));
    sys->set_toplevel(p, b.build("p" + std::to_string(p)), {obj});
  }
  return Engine{std::move(sys)};
}

/// Implemented-object scenario exercising everything the undo journal must
/// cover beyond base state: history begin/end, frame stacks, and per-port
/// persistent write-backs (each port counts its own calls in persistent
/// register 0).
Engine persistent_scenario() {
  const zoo::RegisterLayout lay{2};
  auto impl = make_impl("percall", share(zoo::mod_counter_type(8, 2)), 0);
  const int scratch = impl->add_base(share(zoo::bit_type(2)), 0, {0, 1});
  impl->set_persistent({0});
  {
    ProgramBuilder b;
    b.invoke(scratch, lit(lay.read()), 1);
    b.assign(0, reg(0) + lit(1));
    b.ret(reg(0));
    impl->set_program_all_ports(0, b.build("count"));
  }
  auto sys = std::make_shared<System>(2);
  const ObjectId obj = sys->add_implemented(impl, {0, 1});
  for (ProcId p = 0; p < 2; ++p) {
    ProgramBuilder b;
    b.invoke(0, lit(0), 0);
    b.invoke(0, lit(0), 1);
    b.ret(reg(1));
    sys->set_toplevel(p, b.build("driver" + std::to_string(p)), {obj});
  }
  return Engine{std::move(sys)};
}

/// One process spinning on a bit nobody sets: a configuration cycle, the
/// legacy explorers' Koenig's-lemma abort path.
Engine spinner_scenario() {
  const zoo::RegisterLayout lay{2};
  auto sys = std::make_shared<System>(1);
  const ObjectId b = sys->add_base(share(zoo::bit_type(1)), 0, {0});
  ProgramBuilder pb;
  const Label loop = pb.bind_here();
  pb.invoke(0, lit(lay.read()), 0);
  pb.branch_if(reg(0) == lit(0), loop);
  pb.ret(lit(1));
  sys->set_toplevel(0, pb.build("spinner"), {b});
  return Engine{std::move(sys)};
}

std::uint64_t lcg(std::uint64_t& s) {
  s = s * 6364136223846793005ULL + 1442695040888963407ULL;
  return s >> 33;
}

// ---- Engine::apply / Engine::revert ------------------------------------------

/// At every configuration along a seeded random walk, every enabled
/// (process, choice) edge is applied and reverted: apply must observe
/// exactly what commit on a copied engine observes, and revert must restore
/// the pre-apply fingerprint bit for bit.
void check_apply_revert_walk(const Engine& root, std::uint64_t seed,
                             int max_steps) {
  Engine e = root;
  std::uint64_t s = seed;
  Engine::UndoRecord undo;  // reused across every apply/revert pair
  for (int step = 0; step < max_steps && !e.all_done(); ++step) {
    const std::string before = fingerprint(e);
    const auto runnable = e.runnable();
    for (const ProcId p : runnable) {
      const int width = e.pending_choices(p);
      for (int c = 0; c < width; ++c) {
        Engine ref = e;
        const Engine::CommitInfo want = ref.commit(p, c);
        const Engine::CommitInfo got = e.apply(p, c, undo);
        EXPECT_EQ(want.object, got.object);
        EXPECT_EQ(want.port, got.port);
        EXPECT_EQ(want.inv, got.inv);
        EXPECT_EQ(want.resp, got.resp);
        ASSERT_EQ(fingerprint(e), fingerprint(ref))
            << "apply diverged from commit at step " << step << ", p=" << p
            << ", c=" << c;
        e.revert(undo);
        ASSERT_EQ(fingerprint(e), before)
            << "revert did not restore at step " << step << ", p=" << p
            << ", c=" << c;
      }
    }
    const ProcId p = runnable[lcg(s) % runnable.size()];
    e.commit(p, static_cast<int>(lcg(s) %
                                 static_cast<std::uint64_t>(
                                     e.pending_choices(p))));
  }
}

TEST(UndoRoundTrip, NondeterministicBaseScenario) {
  check_apply_revert_walk(symmetric_scenario(share(zoo::nondet_coin_type(2))),
                          7, 64);
}

TEST(UndoRoundTrip, ConsensusScenario) {
  check_apply_revert_walk(asymmetric_scenario(share(zoo::consensus_type(2))),
                          11, 64);
}

TEST(UndoRoundTrip, ImplementedObjectWithPersistentState) {
  check_apply_revert_walk(persistent_scenario(), 13, 64);
}

TEST(UndoRoundTrip, RandomTypes) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomTypeParams params;
    params.ports = 2 + static_cast<int>(seed % 2);
    params.num_states = 3 + static_cast<int>(seed % 3);
    params.num_invocations = 2 + static_cast<int>(seed % 2);
    params.branching = 1 + static_cast<int>(seed % 2);
    check_apply_revert_walk(
        asymmetric_scenario(share(random_type(params, seed))), seed, 32);
  }
}

TEST(UndoRoundTrip, LifoChainUnwindsToRoot) {
  const Engine root = persistent_scenario();
  const std::string origin = fingerprint(root);
  Engine e = root;
  Engine ref = root;
  std::uint64_t s = 5;
  std::vector<std::unique_ptr<Engine::UndoRecord>> chain;
  while (!e.all_done()) {
    const auto runnable = e.runnable();
    const ProcId p = runnable[lcg(s) % runnable.size()];
    const int c = static_cast<int>(
        lcg(s) % static_cast<std::uint64_t>(e.pending_choices(p)));
    chain.push_back(std::make_unique<Engine::UndoRecord>());
    e.apply(p, c, *chain.back());
    ref.commit(p, c);
  }
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(fingerprint(e), fingerprint(ref));
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) e.revert(**it);
  EXPECT_EQ(fingerprint(e), origin);
}

TEST(UndoRoundTrip, RevertingAnUnusedRecordThrows) {
  Engine e = spinner_scenario();
  Engine::UndoRecord undo;
  EXPECT_THROW(e.revert(undo), std::logic_error);
  e.apply(0, 0, undo);
  e.revert(undo);
  // Consumed: a second revert of the same record must throw too.
  EXPECT_THROW(e.revert(undo), std::logic_error);
}

// ---- ConfigInterner ----------------------------------------------------------

std::vector<std::uint64_t> key_words(std::uint64_t i) {
  // Variable lengths to exercise the length check in probe comparison.
  std::vector<std::uint64_t> w{i, i * i + 3, 12345};
  if (i % 3 == 0) w.push_back(i ^ 0xabcdef);
  return w;
}

TEST(ConfigInterner, DenseInsertionOrderIds) {
  ConfigInterner pool;
  EXPECT_EQ(pool.size(), 0u);
  const std::vector<std::uint64_t> a{1, 2, 3};
  const std::vector<std::uint64_t> b{1, 2, 4};
  const std::uint64_t ha = config_hash_words(a);
  const std::uint64_t hb = config_hash_words(b);
  EXPECT_EQ(pool.find(a, ha), ConfigInterner::kNotFound);
  EXPECT_EQ(pool.intern(a, ha), 0u);
  EXPECT_EQ(pool.intern(b, hb), 1u);
  EXPECT_EQ(pool.intern(a, ha), 0u);  // idempotent
  EXPECT_EQ(pool.find(b, hb), 1u);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_TRUE(std::ranges::equal(pool[0], a));
  EXPECT_TRUE(std::ranges::equal(pool[1], b));
  // Same prefix, different length: distinct keys (no aliasing).
  const std::vector<std::uint64_t> c{1, 2};
  EXPECT_EQ(pool.intern(c, config_hash_words(c)), 2u);
}

TEST(ConfigInterner, GrowthKeepsIdsAndLookups) {
  ConfigInterner pool;
  constexpr std::uint64_t kKeys = 500;  // forces several doublings from 64
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const auto w = key_words(i);
    ASSERT_EQ(pool.intern(w, config_hash_words(w)), i);
  }
  EXPECT_EQ(pool.size(), kKeys);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const auto w = key_words(i);
    ASSERT_EQ(pool.find(w, config_hash_words(w)), i) << "key " << i;
    ASSERT_TRUE(std::ranges::equal(pool[static_cast<std::uint32_t>(i)], w));
  }
  EXPECT_GT(pool.memory_bytes(),
            kKeys * 3 * sizeof(std::uint64_t));  // at least the arena words
}

// ---- the key hash ------------------------------------------------------------

TEST(ConfigHash, SmallIntegerKeysNeitherCollideNorCluster) {
  // Configuration key words are exactly this: small sequential integers in
  // every position.  The old FNV-1a chain clustered them; the splitmix
  // mixer must produce zero collisions over the full 21^3 grid and spread
  // the low bits (which pick the 64 parallel shards) evenly.
  std::vector<std::uint64_t> hashes;
  std::array<int, 64> shard_load{};
  for (std::uint64_t a = 0; a <= 20; ++a) {
    for (std::uint64_t b = 0; b <= 20; ++b) {
      for (std::uint64_t c = 0; c <= 20; ++c) {
        const std::array<std::uint64_t, 3> words{a, b, c};
        const std::uint64_t h = config_hash_words(words);
        hashes.push_back(h);
        ++shard_load[h % 64];
      }
    }
  }
  std::ranges::sort(hashes);
  EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()), hashes.end())
      << "hash collision among small-integer keys";
  const int expected = static_cast<int>(hashes.size()) / 64;
  for (int shard = 0; shard < 64; ++shard) {
    EXPECT_LT(shard_load[shard], 2 * expected)
        << "shard " << shard << " is overloaded";
    EXPECT_GT(shard_load[shard], expected / 2)
        << "shard " << shard << " is starved";
  }
}

TEST(ConfigHash, LengthIsPartOfTheKey) {
  const std::vector<std::uint64_t> zero1{0};
  const std::vector<std::uint64_t> zero2{0, 0};
  EXPECT_NE(config_hash_words(zero1), config_hash_words(zero2));
}

TEST(ConfigHash, ConfigKeyHashAgreesWithWordHash) {
  const Engine e = persistent_scenario();
  const ConfigKey key = e.config_key();
  EXPECT_EQ(ConfigKeyHash{}(key),
            static_cast<std::size_t>(config_hash_words(key.words)));
}

// ---- compiled explorers vs the legacy reference ------------------------------

void expect_same_outcome(const ExploreOutcome& legacy,
                         const ExploreOutcome& fresh, const char* what) {
  EXPECT_EQ(legacy.wait_free, fresh.wait_free) << what;
  EXPECT_EQ(legacy.complete, fresh.complete) << what;
  EXPECT_EQ(legacy.violation.has_value(), fresh.violation.has_value()) << what;
  if (legacy.violation && fresh.violation) {
    EXPECT_EQ(*legacy.violation, *fresh.violation) << what;
  }
  EXPECT_EQ(legacy.stats.configs, fresh.stats.configs) << what;
  EXPECT_EQ(legacy.stats.edges, fresh.stats.edges) << what;
  EXPECT_EQ(legacy.stats.terminals, fresh.stats.terminals) << what;
  EXPECT_EQ(legacy.stats.depth, fresh.stats.depth) << what;
  EXPECT_EQ(legacy.stats.max_accesses, fresh.stats.max_accesses) << what;
  EXPECT_EQ(legacy.stats.max_accesses_by_inv, fresh.stats.max_accesses_by_inv)
      << what;
  EXPECT_EQ(legacy.stats.interned_configs, fresh.stats.interned_configs)
      << what;
  EXPECT_EQ(fresh.stats.interned_configs, fresh.stats.configs)
      << what << ": intern pool occupancy must track the configs counter";
}

std::vector<std::pair<std::string, Engine>> differential_scenarios() {
  std::vector<std::pair<std::string, Engine>> out;
  out.emplace_back("nondet_coin",
                   symmetric_scenario(share(zoo::nondet_coin_type(2))));
  out.emplace_back("sticky_bit",
                   symmetric_scenario(share(zoo::sticky_bit_type(3))));
  out.emplace_back("consensus",
                   asymmetric_scenario(share(zoo::consensus_type(2))));
  out.emplace_back("persistent_impl", persistent_scenario());
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RandomTypeParams params;
    params.ports = 2 + static_cast<int>(seed % 2);
    params.num_states = 3 + static_cast<int>(seed % 3);
    params.num_invocations = 2 + static_cast<int>(seed % 2);
    params.branching = 1 + static_cast<int>(seed % 2);
    out.emplace_back("random_type_seed" + std::to_string(seed),
                     asymmetric_scenario(share(random_type(params, seed))));
  }
  return out;
}

TEST(CompiledVsLegacy, CompleteRunsMatchBitForBitInEveryMode) {
  ExploreOptions options;
  options.limits.track_access_bounds = true;
  options.limits.stop_at_violation = false;
  for (const auto& [name, root] : differential_scenarios()) {
    for (const Reduction mode :
         {Reduction::kNone, Reduction::kSleep, Reduction::kSleepSymmetry}) {
      options.reduction = mode;
      const auto legacy = explore_legacy(root, options);
      const auto fresh = explore(root, options);
      const std::string what =
          name + " mode " + std::to_string(static_cast<int>(mode));
      expect_same_outcome(legacy, fresh, what.c_str());
      ASSERT_TRUE(fresh.complete) << what;
      for (const int threads : {2, 8}) {
        const auto par = explore_parallel(root, {}, options, threads);
        expect_same_outcome(legacy, par,
                            (what + " threads " + std::to_string(threads))
                                .c_str());
      }
    }
  }
}

TEST(CompiledVsLegacy, CycleAbortMatches) {
  const Engine root = spinner_scenario();
  for (const Reduction mode :
       {Reduction::kNone, Reduction::kSleep, Reduction::kSleepSymmetry}) {
    ExploreOptions options;
    options.reduction = mode;
    const auto legacy = explore_legacy(root, options);
    const auto fresh = explore(root, options);
    EXPECT_FALSE(fresh.wait_free);
    expect_same_outcome(legacy, fresh, "spinner");
  }
}

TEST(CompiledVsLegacy, LimitAbortMatches) {
  const Engine root = symmetric_scenario(share(zoo::nondet_coin_type(2)));
  for (const std::size_t max_configs : {1u, 5u, 17u}) {
    ExploreOptions options;
    options.limits.max_configs = max_configs;
    const auto legacy = explore_legacy(root, options);
    const auto fresh = explore(root, options);
    EXPECT_FALSE(fresh.complete);
    expect_same_outcome(
        legacy, fresh,
        ("max_configs " + std::to_string(max_configs)).c_str());
  }
}

TEST(CompiledVsLegacy, ViolationStopMatches) {
  const Engine root = symmetric_scenario(share(zoo::nondet_coin_type(2)));
  // Flags every terminal: exercises the first-violation bookkeeping and the
  // stop_at_violation abort on a configuration-only (contract-safe) check.
  const TerminalCheck check = [](const Engine&) -> std::optional<std::string> {
    return "every terminal is flagged";
  };
  for (const bool stop : {true, false}) {
    ExploreOptions options;
    options.limits.stop_at_violation = stop;
    const auto legacy = explore_legacy(root, options, check);
    const auto fresh = explore(root, options, check);
    ASSERT_TRUE(fresh.violation.has_value());
    expect_same_outcome(legacy, fresh, stop ? "stop" : "no-stop");
  }
}

}  // namespace
}  // namespace wfregs
