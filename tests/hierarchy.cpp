// Tests for the hierarchy harness: race/adopt witnesses, the generic
// protocols they generate, and the zoo survey that reproduces the paper's
// h_m = h_m^r punchline.
#include "wfregs/hierarchy/hierarchy.hpp"

#include <gtest/gtest.h>

#include "wfregs/consensus/check.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using hierarchy::adopt_consensus;
using hierarchy::classify_type;
using hierarchy::find_adopt_witness;
using hierarchy::find_race_witness;
using hierarchy::race_consensus;

// ---- race witnesses -----------------------------------------------------------

TEST(RaceWitness, FoundForRaceableTypes) {
  EXPECT_TRUE(find_race_witness(zoo::test_and_set_type(2)).has_value());
  EXPECT_TRUE(find_race_witness(zoo::fetch_and_add_type(3, 2)).has_value());
  EXPECT_TRUE(find_race_witness(zoo::queue_type(2, 2, 2)).has_value());
  EXPECT_TRUE(find_race_witness(zoo::mod_counter_type(3, 2)).has_value());
}

TEST(RaceWitness, AbsentForRegistersAndTrivialTypes) {
  // A register read/write response never depends on being first.
  EXPECT_FALSE(find_race_witness(zoo::bit_type(2)).has_value());
  EXPECT_FALSE(find_race_witness(zoo::register_type(4, 2)).has_value());
  EXPECT_FALSE(find_race_witness(zoo::trivial_toggle_type(2)).has_value());
  // The consensus type reveals the first VALUE, not the first ACCESSOR:
  // repeating one invocation returns identical responses.
  EXPECT_FALSE(find_race_witness(zoo::consensus_type(2)).has_value());
  EXPECT_THROW(find_race_witness(zoo::nondet_coin_type(2)),
               std::invalid_argument);
}

TEST(RaceConsensus, GeneratedProtocolsSolveConsensus) {
  for (const auto& t :
       {zoo::test_and_set_type(2), zoo::fetch_and_add_type(3, 2),
        zoo::queue_type(2, 2, 2), zoo::mod_counter_type(3, 2)}) {
    SCOPED_TRACE(t.name());
    const auto impl = race_consensus(t);
    ASSERT_NE(impl, nullptr);
    const auto check = consensus::check_consensus(impl);
    EXPECT_TRUE(check.solves) << check.detail;
  }
}

TEST(RaceConsensus, NullForUnraceableTypes) {
  EXPECT_EQ(race_consensus(zoo::bit_type(2)), nullptr);
}

// ---- adopt witnesses -------------------------------------------------------------

TEST(AdoptWitness, FoundForValueRevealingTypes) {
  EXPECT_TRUE(find_adopt_witness(zoo::consensus_type(2)).has_value());
  EXPECT_TRUE(find_adopt_witness(zoo::sticky_bit_type(2)).has_value());
  EXPECT_TRUE(find_adopt_witness(zoo::cas_old_type(3, 2)).has_value());
}

TEST(AdoptWitness, AbsentForValueBlindTypes) {
  // test&set tells you whether you won but not what the winner proposed.
  EXPECT_FALSE(find_adopt_witness(zoo::test_and_set_type(2)).has_value());
  EXPECT_FALSE(find_adopt_witness(zoo::bit_type(2)).has_value());
  EXPECT_FALSE(find_adopt_witness(zoo::fetch_and_add_type(3, 2)).has_value());
}

TEST(AdoptConsensus, GeneratedProtocolsSolveConsensusAlone) {
  for (const auto& t : {zoo::consensus_type(2), zoo::sticky_bit_type(2),
                        zoo::cas_old_type(3, 2)}) {
    SCOPED_TRACE(t.name());
    const auto impl = adopt_consensus(t);
    ASSERT_NE(impl, nullptr);
    EXPECT_EQ(impl->flattened_base_count(), 1);  // truly register-free
    const auto check = consensus::check_consensus(impl);
    EXPECT_TRUE(check.solves) << check.detail;
  }
}

// ---- classification ----------------------------------------------------------------

TEST(ClassifyType, TestAndSetShowsTheRegisterGap) {
  hierarchy::ClassifyOptions options;
  options.h1_probe_depth = 2;
  const auto row = classify_type(zoo::test_and_set_type(2), options);
  EXPECT_TRUE(row.deterministic);
  EXPECT_FALSE(*row.trivial);
  // One test&set alone cannot solve 2-consensus (exhaustive at depth 2)...
  EXPECT_EQ(row.h1_single_object, consensus::SynthesisVerdict::kUnsolvable);
  // ...but with registers it can (h_1^r >= 2), and Theorem 5 transfers that
  // to h_m >= 2 without registers.
  EXPECT_TRUE(row.h1r_at_least_2);
  EXPECT_TRUE(row.hm_at_least_2);
  EXPECT_TRUE(row.theorem5_consistent);
}

TEST(ClassifyType, RegistersStayAtLevelOne) {
  hierarchy::ClassifyOptions options;
  options.h1_probe_depth = 1;
  const auto row = classify_type(zoo::bit_type(2), options);
  EXPECT_EQ(row.h1_single_object, consensus::SynthesisVerdict::kUnsolvable);
  EXPECT_FALSE(row.h1r_at_least_2);
  EXPECT_FALSE(row.hm_at_least_2);
  EXPECT_TRUE(row.theorem5_consistent);
}

TEST(ClassifyType, StickySolvesAlone) {
  hierarchy::ClassifyOptions options;
  options.probe_h1 = false;
  const auto row = classify_type(zoo::sticky_bit_type(2), options);
  EXPECT_TRUE(row.h1r_at_least_2);
  EXPECT_TRUE(row.hm_at_least_2);
  EXPECT_NE(row.note.find("adopt witness"), std::string::npos);
}

TEST(ClassifyType, NondeterministicTypesAreFlagged) {
  const auto row = classify_type(zoo::nondet_coin_type(2));
  EXPECT_FALSE(row.deterministic);
  EXPECT_FALSE(row.trivial.has_value());
  EXPECT_NE(row.note.find("nondeterministic"), std::string::npos);
}

TEST(SurveyZoo, TheoremFiveConsistentEverywhere) {
  hierarchy::ClassifyOptions options;
  options.probe_h1 = false;  // keep the survey fast; probes tested above
  const auto rows = hierarchy::survey_zoo(options);
  ASSERT_GE(rows.size(), 10u);
  for (const auto& row : rows) {
    EXPECT_TRUE(row.theorem5_consistent) << row.type_name << ": " << row.note;
  }
  const auto table = hierarchy::to_table(rows);
  EXPECT_NE(table.find("test_and_set"), std::string::npos);
  EXPECT_NE(table.find("sticky_bit"), std::string::npos);
}

}  // namespace
}  // namespace wfregs
