// Tests for the wfregs-lint static discipline checker: malformed fixtures
// must produce path-carrying diagnostics, every repo-provided construction
// must lint clean, and the pass-3 static bounds must dominate the exact
// dynamic bounds of Section 4.2.
#include "wfregs/analysis/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "test_support.hpp"
#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/core/access_bounds.hpp"
#include "wfregs/core/bounded_register.hpp"
#include "wfregs/core/register_elimination.hpp"
#include "wfregs/registers/chain.hpp"
#include "wfregs/runtime/verify.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs {
namespace {

using analysis::Diagnostic;
using analysis::LintReport;
using testsup::make_impl;
using testsup::share;

std::size_t count_errors(const LintReport& report, Diagnostic::Pass pass) {
  return static_cast<std::size_t>(std::count_if(
      report.diagnostics.begin(), report.diagnostics.end(),
      [pass](const Diagnostic& d) {
        return d.severity == Diagnostic::Severity::kError && d.pass == pass;
      }));
}

bool any_error_has_trace(const LintReport& report, Diagnostic::Pass pass) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [pass](const Diagnostic& d) {
                       return d.severity == Diagnostic::Severity::kError &&
                              d.pass == pass && !d.trace.empty();
                     });
}

// ---- malformed fixtures ----------------------------------------------------

/// A "bit" whose backing store is an MRMW register that BOTH interface
/// ports read and write -- the exact shape Section 4.1's normal form
/// forbids to smuggle past the register-elimination pipeline.
std::shared_ptr<const Implementation> smuggled_mrmw() {
  const zoo::RegisterLayout bit{2};
  const zoo::RegisterLayout lay{2};
  auto impl = make_impl("smuggled_mrmw", share(zoo::bit_type(2)), 0);
  const int slot = impl->add_base(share(zoo::register_type(2, 2)), 0, {0, 1});
  impl->set_program_all_ports(bit.read(),
                              testsup::one_shot("smuggle_read", slot,
                                                lay.read()));
  for (int v = 0; v < 2; ++v) {
    ProgramBuilder b;
    b.invoke(slot, lit(lay.write(v)), 0);
    b.ret(lit(bit.ok()));
    impl->set_program_all_ports(bit.write(v), b.build("smuggle_write"));
  }
  return impl;
}

/// A "bit" that reads its one-use backing bit twice along one static path,
/// violating the Section 3 read-once discipline.
std::shared_ptr<const Implementation> twice_read_oneuse() {
  const zoo::RegisterLayout bit{2};
  const zoo::OneUseBitLayout lay;
  auto impl = make_impl("twice_read_oneuse", share(zoo::bit_type(2)), 0);
  const int slot = impl->add_base(share(zoo::one_use_bit_type()), 0, {0, 1});
  impl->set_program_all_ports(
      bit.read(),
      testsup::two_shot("greedy_read", slot, lay.read(), lay.read()));
  for (int v = 0; v < 2; ++v) {
    ProgramBuilder b;
    b.invoke(slot, lit(lay.write()), 0);
    b.ret(lit(bit.ok()));
    impl->set_program_all_ports(bit.write(v), b.build("oneuse_write"));
  }
  return impl;
}

/// A base object whose type table has an empty delta cell (state 1 has no
/// transitions at all): a totality violation pass 4 must name.
std::shared_ptr<const Implementation> partial_delta_base() {
  TypeSpec partial("partial_pair", 1, 2, 1, 1);
  partial.add(0, 0, 0, 0, 0);  // state 1 left undefined
  auto impl = make_impl("partial_host", share(zoo::bit_type(1)), 0);
  const int slot = impl->add_base(share(std::move(partial)), 0, {0});
  const zoo::RegisterLayout bit{2};
  impl->set_program(bit.read(), 0, testsup::one_shot("poke", slot, 0));
  for (int v = 0; v < 2; ++v) {
    impl->set_program(bit.write(v), 0, testsup::constant("skip", bit.ok()));
  }
  return impl;
}

/// A program on a port wired to kNoPort that nonetheless touches the slot:
/// a wiring error the walk must report with a witness trace.
std::shared_ptr<const Implementation> noport_misuse() {
  const zoo::RegisterLayout bit{2};
  const zoo::SrswRegisterLayout lay{2};
  auto impl = make_impl("noport_misuse", share(zoo::bit_type(2)), 0);
  const int slot =
      impl->add_base(share(zoo::srsw_register_type(2)), 0, {0, kNoPort});
  for (PortId p = 0; p < 2; ++p) {
    impl->set_program(bit.read(), p,
                      testsup::one_shot("read", slot, lay.read()));
    for (int v = 0; v < 2; ++v) {
      impl->set_program(bit.write(v), p,
                        testsup::constant("noop", bit.ok()));
    }
  }
  return impl;
}

TEST(AnalysisLint, FlagsSmuggledMrmwRegister) {
  const auto report = analysis::lint(*smuggled_mrmw());
  EXPECT_FALSE(report.ok());
  EXPECT_GE(count_errors(report, Diagnostic::Pass::kPortDiscipline), 1u)
      << report.to_string();
}

TEST(AnalysisLint, FlagsTwiceReadOneUseBit) {
  const auto report = analysis::lint(*twice_read_oneuse());
  EXPECT_FALSE(report.ok());
  EXPECT_GE(count_errors(report, Diagnostic::Pass::kOneUse), 1u)
      << report.to_string();
  // The violation must come with a counterexample instruction path.
  EXPECT_TRUE(any_error_has_trace(report, Diagnostic::Pass::kOneUse))
      << report.to_string();
}

TEST(AnalysisLint, FlagsPartialDeltaBase) {
  const auto report = analysis::lint(*partial_delta_base());
  EXPECT_FALSE(report.ok());
  EXPECT_GE(count_errors(report, Diagnostic::Pass::kTypeSpec), 1u)
      << report.to_string();
}

TEST(AnalysisLint, FlagsInvocationThroughNoPort) {
  const auto report = analysis::lint(*noport_misuse());
  EXPECT_FALSE(report.ok());
  EXPECT_GE(count_errors(report, Diagnostic::Pass::kStructure), 1u)
      << report.to_string();
  EXPECT_TRUE(any_error_has_trace(report, Diagnostic::Pass::kStructure))
      << report.to_string();
}

TEST(AnalysisLint, DiagnosticsRenderLocationAndTrace) {
  const auto report = analysis::lint(*twice_read_oneuse());
  ASSERT_FALSE(report.diagnostics.empty());
  for (const auto& d : report.diagnostics) {
    const std::string s = d.to_string();
    EXPECT_NE(s.find('('), std::string::npos) << s;  // pass name present
    EXPECT_FALSE(d.message.empty());
  }
  EXPECT_NE(report.to_string().find("error"), std::string::npos);
}

// ---- clean sweep -----------------------------------------------------------

void expect_clean(const Implementation& impl) {
  const auto report = analysis::lint(impl);
  EXPECT_TRUE(report.ok()) << impl.name() << ":\n" << report.to_string();
  EXPECT_FALSE(report.bounds.empty()) << impl.name();
}

TEST(AnalysisLint, SectionFourPointOneChainIsClean) {
  registers::ChainOptions options;
  options.mrmw_max_writes = 2;
  options.mrsw_max_writes = 2;
  expect_clean(*registers::full_chain_register(2, 2, 0, options));
  options.bits_at_bottom = false;
  expect_clean(*registers::full_chain_register(2, 3, 1, options));
}

TEST(AnalysisLint, SectionFourPointThreeArrayBitIsClean) {
  expect_clean(*core::bounded_bit_from_oneuse(1, 1, 0));
  expect_clean(*core::bounded_bit_from_oneuse(2, 3, 1));
  expect_clean(*core::bounded_bit_from_oneuse(3, 2, 0));
}

TEST(AnalysisLint, AllBundledProtocolsAreClean) {
  expect_clean(*consensus::from_test_and_set());
  expect_clean(*consensus::from_queue());
  expect_clean(*consensus::from_fetch_and_add());
  expect_clean(*consensus::from_cas(2));
  expect_clean(*consensus::from_cas(3));
  expect_clean(*consensus::from_sticky_bit(3));
  expect_clean(*consensus::from_consensus_object(3));
  expect_clean(*consensus::from_cas_ids(2));
  expect_clean(*consensus::from_cas_ids(3));
  expect_clean(*consensus::registers_only_attempt(2));
}

// ---- pass 3: static bounds dominate the exact dynamic bounds ---------------

TEST(AnalysisLint, StaticBoundsDominateDynamicOnProtocols) {
  for (const auto& impl : {consensus::from_test_and_set(),
                           consensus::from_cas(2),
                           consensus::from_sticky_bit(3)}) {
    const auto statics = analysis::lint(*impl);
    ASSERT_TRUE(statics.ok()) << statics.to_string();
    const auto dyn = core::compute_access_bounds(impl);
    ASSERT_TRUE(dyn.complete) << impl->name() << ": " << dyn.detail;
    const auto cross = analysis::check_bound_dominance(statics, dyn);
    EXPECT_TRUE(cross.empty()) << impl->name() << ": "
                               << cross.front().to_string();
  }
}

TEST(AnalysisLint, StaticBoundsDominateDynamicThroughElimination) {
  core::EliminationOptions options;  // no substrate: keep base one-use bits
  const auto report =
      core::eliminate_registers(consensus::from_test_and_set(), options);
  ASSERT_TRUE(report.ok) << report.detail;
  const auto bits = analysis::lint(*report.bits_stage);
  ASSERT_TRUE(bits.ok()) << bits.to_string();
  const auto cross = analysis::check_bound_dominance(bits, report.bounds);
  EXPECT_TRUE(cross.empty())
      << (cross.empty() ? "" : cross.front().to_string());
  expect_clean(*report.result);
}

TEST(AnalysisLint, DominanceCheckerCatchesUnderestimates) {
  // Feed it a static report claiming zero accesses for an object the
  // dynamic analysis saw touched: the cross-check must object.
  const auto impl = consensus::from_test_and_set();
  auto statics = analysis::lint(*impl);
  ASSERT_FALSE(statics.bounds.empty());
  statics.bounds.front().accesses = analysis::Bound::of(0);
  statics.bounds.front().reads = analysis::Bound::of(0);
  statics.bounds.front().writes = analysis::Bound::of(0);
  const auto dyn = core::compute_access_bounds(impl);
  ASSERT_TRUE(dyn.complete);
  const auto cross = analysis::check_bound_dominance(statics, dyn);
  EXPECT_FALSE(cross.empty());
  for (const auto& d : cross) {
    EXPECT_EQ(d.pass, Diagnostic::Pass::kBounds) << d.to_string();
  }
}

// ---- the VerifyOptions::static_precheck hook -------------------------------

/// A consensus-interface implementation with a lint violation inside, so the
/// precheck (not the explorer) is what rejects it.
std::shared_ptr<const Implementation> dirty_consensus() {
  const zoo::RegisterLayout lay{2};
  auto impl = make_impl("dirty_consensus", share(zoo::consensus_type(2)), 0);
  const int slot = impl->add_base(share(zoo::register_type(2, 2)), 0, {0, 1});
  for (int v = 0; v < 2; ++v) {
    ProgramBuilder b;
    b.invoke(slot, lit(lay.write(v)), 0);
    b.invoke(slot, lit(lay.read()), 1);
    b.ret(reg(1));
    impl->set_program_all_ports(v, b.build("dirty_propose"));
  }
  return impl;
}

TEST(AnalysisLint, StaticPrecheckFailsFastInConsensusCheck) {
  VerifyOptions options;
  options.static_precheck = analysis::static_precheck();
  const auto result = consensus::check_consensus(dirty_consensus(), options);
  EXPECT_FALSE(result.solves);
  EXPECT_NE(result.detail.find("static precheck"), std::string::npos)
      << result.detail;
  EXPECT_EQ(result.configs, 0u);  // never reached the explorer
}

TEST(AnalysisLint, StaticPrecheckFailsFastInVerify) {
  const zoo::RegisterLayout bit{2};
  VerifyOptions options;
  options.static_precheck = analysis::static_precheck();
  const auto result = verify_linearizable(
      twice_read_oneuse(), {{bit.read()}, {bit.write(1)}}, options);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.complete);  // the static answer is a full answer
  EXPECT_NE(result.detail.find("static precheck"), std::string::npos)
      << result.detail;
}

TEST(AnalysisLint, StaticPrecheckPassesCleanImplementations) {
  VerifyOptions options;
  options.static_precheck = analysis::static_precheck();
  const auto result =
      consensus::check_consensus(consensus::from_test_and_set(), options);
  EXPECT_TRUE(result.solves) << result.detail;
  EXPECT_GT(result.configs, 0u);  // precheck let the explorer run
}

// ---- pass 4: TypeSpec table lints ------------------------------------------

TEST(AnalysisLint, TypeLintAcceptsTheZooTables) {
  for (const TypeSpec& t : {zoo::bit_type(2), zoo::one_use_bit_type(),
                            zoo::test_and_set_type(2), zoo::cas_type(2, 2),
                            zoo::queue_type(2, 2, 2)}) {
    const auto report = analysis::lint_type(t);
    EXPECT_EQ(report.error_count(), 0u) << t.name() << ":\n"
                                        << report.to_string();
  }
}

TEST(AnalysisLint, TypeLintFlagsPartialTables) {
  TypeSpec partial("partial_pair", 1, 2, 1, 1);
  partial.add(0, 0, 0, 0, 0);
  const auto report = analysis::lint_type(partial);
  EXPECT_GE(count_errors(report, Diagnostic::Pass::kTypeSpec), 1u)
      << report.to_string();
}

TEST(AnalysisLint, TypeLintWarnsOnNondeterminismAndPortSensitivity) {
  const auto coin = analysis::lint_type(zoo::nondet_coin_type(2));
  EXPECT_EQ(coin.error_count(), 0u) << coin.to_string();
  EXPECT_GE(coin.warning_count(), 1u) << coin.to_string();

  const auto flag = analysis::lint_type(zoo::port_flag_type(2));
  EXPECT_EQ(flag.error_count(), 0u) << flag.to_string();
  EXPECT_GE(flag.warning_count(), 1u) << flag.to_string();
}

TEST(AnalysisLint, TypeLintWarnsOnUnreachableStates) {
  // State 1 is total and deterministic but unreachable from state 0.
  TypeSpec island("island", 1, 2, 1, 1);
  island.add(0, 0, 0, 0, 0);
  island.add(1, 0, 0, 1, 0);
  const auto report = analysis::lint_type(island, 0);
  EXPECT_EQ(report.error_count(), 0u) << report.to_string();
  EXPECT_GE(report.warning_count(), 1u) << report.to_string();
}

// ---- satellite: declaration-time port-map validation -----------------------

TEST(AnalysisLint, BuilderRejectsBadPortMapsWithClearErrors) {
  auto impl = make_impl("host", share(zoo::bit_type(2)), 0);
  // Wrong arity: one entry per INTERFACE port is required.
  EXPECT_THROW(impl->add_base(share(zoo::srsw_register_type(2)), 0, {0}),
               std::invalid_argument);
  // Out-of-range inner port.
  EXPECT_THROW(impl->add_base(share(zoo::srsw_register_type(2)), 0, {0, 7}),
               std::out_of_range);
  // kNoPort and duplicate inner ports are both legitimate wirings.
  EXPECT_NO_THROW(
      impl->add_base(share(zoo::srsw_register_type(2)), 0, {0, kNoPort}));
  EXPECT_NO_THROW(impl->add_base(share(zoo::bit_type(2)), 0, {0, 0}));
}

}  // namespace
}  // namespace wfregs
