// Unit tests for the storage layer's building blocks: record logs (CRC'd
// append-only files with torn-tail truncation, byte-granular), the
// SpillArena (budget-driven eviction must never corrupt appended data), the
// DeltaCodec (round-trip under bounded parent chains) and the OocInterner
// (ConfigInterner's find/intern contract over spilled storage).
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "wfregs/runtime/config_intern.hpp"
#include "wfregs/storage/checkpoint.hpp"
#include "wfregs/storage/delta_codec.hpp"
#include "wfregs/storage/ooc_interner.hpp"
#include "wfregs/storage/record_log.hpp"
#include "wfregs/storage/spill_arena.hpp"

namespace wfregs::storage {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory per test, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("wfregs-storage-test-") + info->test_suite_name() +
            "-" + info->name() + "-" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Crc32, KnownVector) {
  // The standard CRC-32 check value: crc32("123456789") == 0xCBF43926.
  const std::string msg = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(msg.data()),
                  msg.size()),
            0xCBF43926u);
}

TEST(RecordLog, RoundTrip) {
  TempDir tmp;
  const std::string path = tmp.file("log");
  {
    RecordLogWriter w(path);
    const auto a = bytes_of("alpha");
    const auto b = bytes_of("");
    const auto c = bytes_of(std::string(3000, 'x'));
    w.append(1, a.data(), a.size());
    w.append(7, b.data(), b.size());
    w.append(2, c.data(), c.size());
    w.sync();
  }
  const LogContents log = read_record_log(path);
  ASSERT_TRUE(log.present);
  ASSERT_EQ(log.records.size(), 3u);
  EXPECT_EQ(log.records[0].tag, 1u);
  EXPECT_EQ(log.records[0].payload, bytes_of("alpha"));
  EXPECT_EQ(log.records[1].tag, 7u);
  EXPECT_TRUE(log.records[1].payload.empty());
  EXPECT_EQ(log.records[2].payload.size(), 3000u);
  EXPECT_EQ(log.dropped_bytes, 0u);
  EXPECT_EQ(log.records[2].end_offset, log.file_bytes);
}

TEST(RecordLog, MissingAndHeaderless) {
  TempDir tmp;
  EXPECT_FALSE(read_record_log(tmp.file("nope")).present);
  std::ofstream(tmp.file("junk")) << "not a log";
  const LogContents junk = read_record_log(tmp.file("junk"));
  EXPECT_FALSE(junk.present);
  EXPECT_EQ(junk.file_bytes, 9u);
}

TEST(RecordLog, TornTailTruncationAtEveryByte) {
  // Two good records followed by a third; truncating the file anywhere
  // strictly inside the third record must recover exactly the first two,
  // and reopening a writer must heal the file to that boundary.
  TempDir tmp;
  const std::string path = tmp.file("log");
  std::uint64_t two_records_end = 0;
  {
    RecordLogWriter w(path);
    const auto a = bytes_of("first");
    const auto b = bytes_of("second-record");
    const auto c = bytes_of("third, to be torn");
    w.append(1, a.data(), a.size());
    w.append(2, b.data(), b.size());
    two_records_end = w.file_bytes();
    w.append(3, c.data(), c.size());
  }
  const std::uint64_t full = fs::file_size(path);
  std::vector<char> image(full);
  std::ifstream(path, std::ios::binary).read(image.data(), image.size());
  for (std::uint64_t cut = two_records_end + 1; cut < full; ++cut) {
    const std::string torn = tmp.file("torn");
    std::ofstream(torn, std::ios::binary)
        .write(image.data(), static_cast<std::streamsize>(cut));
    const LogContents log = read_record_log(torn);
    ASSERT_TRUE(log.present) << "cut at " << cut;
    ASSERT_EQ(log.records.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(log.dropped_bytes, cut - two_records_end) << "cut at " << cut;
    RecordLogWriter heal(torn);
    EXPECT_EQ(heal.file_bytes(), two_records_end) << "cut at " << cut;
  }
}

TEST(RecordLog, CorruptPayloadDropsTail) {
  TempDir tmp;
  const std::string path = tmp.file("log");
  {
    RecordLogWriter w(path);
    const auto a = bytes_of("kept");
    const auto b = bytes_of("to-be-corrupted");
    w.append(1, a.data(), a.size());
    w.append(2, b.data(), b.size());
  }
  // Flip one byte inside the LAST record's payload: CRC fails, the record
  // and everything after it is dropped, the first record survives.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-3, std::ios::end);
  f.put('!');
  f.close();
  const LogContents log = read_record_log(path);
  ASSERT_TRUE(log.present);
  ASSERT_EQ(log.records.size(), 1u);
  EXPECT_EQ(log.records[0].payload, bytes_of("kept"));
  EXPECT_GT(log.dropped_bytes, 0u);
}

TEST(RecordLog, TruncateToClearsAndRepositions) {
  TempDir tmp;
  const std::string path = tmp.file("log");
  RecordLogWriter w(path);
  const auto a = bytes_of("payload");
  w.append(1, a.data(), a.size());
  w.truncate_to(kRecordLogHeaderBytes);
  w.append(9, a.data(), a.size());
  w.sync();
  const LogContents log = read_record_log(path);
  ASSERT_EQ(log.records.size(), 1u);
  EXPECT_EQ(log.records[0].tag, 9u);
}

TEST(SpillArena, EvictionPreservesData) {
  // Budget of 2 pages, many pages of appended runs: every append past the
  // budget evicts, every historical view refaults, and the words read back
  // must be exactly the words written.
  TempDir tmp;
  SpillArena::Options opt;
  opt.segment_bytes = 4096;
  opt.budget_bytes = 2 * 4096;
  opt.dir = tmp.file("arena");
  SpillArena arena(opt);
  std::mt19937_64 rng(42);
  std::vector<std::vector<std::uint64_t>> runs;
  std::vector<std::uint64_t> handles;
  for (int k = 0; k < 400; ++k) {
    std::vector<std::uint64_t> run(1 + rng() % 100);
    for (auto& w : run) w = rng();
    handles.push_back(arena.append(run));
    runs.push_back(std::move(run));
  }
  EXPECT_GT(arena.stats().segments, 4u);
  EXPECT_GT(arena.stats().evictions, 0u);
  EXPECT_LE(arena.stats().resident_bytes, opt.budget_bytes);
  // Read back in a hostile order (repeatedly jumping across segments).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t k = 0; k < runs.size(); ++k) {
      const std::size_t idx =
          (pass == 0) ? runs.size() - 1 - k : (k * 7919) % runs.size();
      const auto view = arena.view(handles[idx], runs[idx].size());
      ASSERT_TRUE(std::equal(view.begin(), view.end(), runs[idx].begin()))
          << "run " << idx << " pass " << pass;
    }
  }
  EXPECT_GT(arena.stats().refaults, 0u);
  const ArenaGlobalStats global = arena_global_stats();
  EXPECT_GE(global.evictions, arena.stats().evictions);
  EXPECT_GE(global.total_bytes, arena.stats().total_bytes);
}

TEST(SpillArena, AnonymousModeNeverEvicts) {
  SpillArena::Options opt;  // no dir, no budget
  opt.segment_bytes = 4096;
  SpillArena arena(opt);
  std::vector<std::uint64_t> run(100, 0xabcdefull);
  std::vector<std::uint64_t> handles;
  for (int k = 0; k < 50; ++k) handles.push_back(arena.append(run));
  EXPECT_EQ(arena.stats().evictions, 0u);
  for (const auto h : handles) {
    const auto view = arena.view(h, run.size());
    EXPECT_EQ(view[0], 0xabcdefull);
  }
}

TEST(SpillArena, RunLargerThanSegmentThrows) {
  SpillArena::Options opt;
  opt.segment_bytes = 4096;
  SpillArena arena(opt);
  const std::vector<std::uint64_t> run(4096 / 8 + 1, 1);
  EXPECT_THROW(arena.append(run), std::runtime_error);
}

TEST(DeltaCodec, RoundTripWithBoundedChains) {
  SpillArena arena({});
  const std::size_t interval = 8;
  DeltaCodec codec(&arena, interval);
  std::mt19937_64 rng(7);
  // A chain of 200 keys, each differing from its parent in 1-3 words out of
  // 40: deltas everywhere except the periodic keyframes.
  std::vector<std::vector<std::uint64_t>> keys;
  keys.emplace_back(40);
  for (auto& w : keys.back()) w = rng();
  ASSERT_EQ(codec.append(keys[0], DeltaCodec::kNoParent, {}), 0u);
  for (std::uint32_t k = 1; k < 200; ++k) {
    std::vector<std::uint64_t> next = keys[k - 1];
    const int changes = 1 + static_cast<int>(rng() % 3);
    for (int c = 0; c < changes; ++c) next[rng() % next.size()] = rng();
    ASSERT_EQ(codec.append(next, k - 1, keys[k - 1]), k);
    keys.push_back(std::move(next));
  }
  for (std::uint32_t k = 0; k < 200; ++k) {
    std::vector<std::uint64_t> got;
    codec.decode_into(k, got);
    ASSERT_EQ(got, keys[k]) << "id " << k;
  }
  EXPECT_GT(codec.deltas(), codec.keyframes());
  EXPECT_LT(codec.encoded_words(), codec.raw_words());
  // The interval bounds every chain: at least ceil(200/interval) keyframes.
  EXPECT_GE(codec.keyframes(), 200 / interval);
}

TEST(DeltaCodec, KeyframeWhenShapeChangesOrDeltaTooBig) {
  SpillArena arena({});
  DeltaCodec codec(&arena, 32);
  const std::vector<std::uint64_t> a(10, 1);
  std::vector<std::uint64_t> b(12, 2);   // different length: keyframe
  std::vector<std::uint64_t> c(12, 3);   // every word differs: keyframe
  codec.append(a, DeltaCodec::kNoParent, {});
  codec.append(b, 0, a);
  codec.append(c, 1, b);
  EXPECT_EQ(codec.keyframes(), 3u);
  std::vector<std::uint64_t> got;
  codec.decode_into(2, got);
  EXPECT_EQ(got, c);
}

TEST(DeltaCodec, DecodesParentWhenCallerLacksWords) {
  SpillArena arena({});
  DeltaCodec codec(&arena, 32);
  std::vector<std::uint64_t> a(10, 1);
  std::vector<std::uint64_t> b = a;
  b[3] = 99;
  codec.append(a, DeltaCodec::kNoParent, {});
  codec.append(b, 0, {});  // parent words not supplied: codec decodes id 0
  std::vector<std::uint64_t> got;
  codec.decode_into(1, got);
  EXPECT_EQ(got, b);
}

TEST(OocInterner, FindInternContract) {
  // Differential against a plain map: dense ids in insertion order,
  // find-after-intern hits, re-intern returns the original id.
  TempDir tmp;
  SpillArena::Options opt;
  opt.segment_bytes = 4096;
  opt.budget_bytes = 2 * 4096;
  opt.dir = tmp.file("arena");
  SpillArena arena(opt);
  OocInterner interner(&arena, 8);
  std::mt19937_64 rng(11);
  std::vector<std::vector<std::uint64_t>> keys;
  std::vector<std::uint64_t> cur(20);
  for (auto& w : cur) w = rng();
  for (std::uint32_t k = 0; k < 2000; ++k) {
    keys.push_back(cur);
    const std::uint64_t h = config_hash_words(cur);
    EXPECT_EQ(interner.find(cur, h), OocInterner::kNotFound);
    const std::uint32_t parent = k == 0 ? DeltaCodec::kNoParent : k - 1;
    EXPECT_EQ(interner.intern(cur, h, parent,
                              k == 0 ? std::span<const std::uint64_t>{}
                                     : std::span<const std::uint64_t>(
                                           keys[k - 1])),
              k);
    cur[rng() % cur.size()] = rng();
  }
  ASSERT_EQ(interner.size(), 2000u);
  for (std::uint32_t k = 0; k < 2000; ++k) {
    const std::uint64_t h = config_hash_words(keys[k]);
    EXPECT_EQ(interner.find(keys[k], h), k);
    EXPECT_EQ(interner.intern(keys[k], h, DeltaCodec::kNoParent, {}), k);
  }
  EXPECT_EQ(interner.size(), 2000u);
  EXPECT_GT(arena.stats().evictions, 0u);
}

TEST(FrontierCheckpoint, WriteOpenRoundTrip) {
  TempDir tmp;
  const std::string dir = tmp.file("ckpt");
  FrontierSnapshot snap;
  snap.fp_hi = 0x1111;
  snap.fp_lo = 0x2222;
  snap.configs = 3;
  snap.edges = 5;
  snap.terminals = 1;
  snap.interned = 3;
  snap.node_depth_from = {-1, 2, 0};
  FrameSnap frame;
  frame.id = 0;
  frame.step_idx = 1;
  frame.choice = 2;
  frame.sleep = 0b10;
  frame.depth_from = 4;
  snap.frames.push_back(frame);
  const std::vector<std::vector<std::uint64_t>> keys = {
      {1, 2, 3}, {1, 2, 4}, {9, 9, 9, 9}};
  {
    FrontierCheckpoint ckpt(dir);
    const auto none = ckpt.open(0x1111, 0x2222, true,
                                [](std::uint32_t, std::uint32_t,
                                   std::span<const std::uint64_t>) {});
    EXPECT_FALSE(none.has_value());
    ckpt.write_snapshot(snap, [&](std::uint32_t id, std::uint32_t* parent,
                                  std::vector<std::uint64_t>* words) {
      *parent = id == 0 ? DeltaCodec::kNoParent : id - 1;
      *words = keys[id];
    });
  }
  std::vector<std::uint32_t> fed_ids, fed_parents;
  std::vector<std::vector<std::uint64_t>> fed_words;
  FrontierCheckpoint reopened(dir);
  const auto got = reopened.open(
      0x1111, 0x2222, true,
      [&](std::uint32_t id, std::uint32_t parent,
          std::span<const std::uint64_t> words) {
        fed_ids.push_back(id);
        fed_parents.push_back(parent);
        fed_words.emplace_back(words.begin(), words.end());
      });
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->configs, 3u);
  EXPECT_EQ(got->edges, 5u);
  ASSERT_EQ(got->frames.size(), 1u);
  EXPECT_EQ(got->frames[0].step_idx, 1u);
  EXPECT_EQ(got->frames[0].choice, 2);
  EXPECT_EQ(got->frames[0].sleep, 0b10u);
  EXPECT_EQ(got->node_depth_from, snap.node_depth_from);
  EXPECT_EQ(fed_ids, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(fed_parents[0], DeltaCodec::kNoParent);
  EXPECT_EQ(fed_words, keys);
  EXPECT_EQ(reopened.keys_on_disk(), 3u);
  const CheckpointInfo info = FrontierCheckpoint::info(dir);
  EXPECT_TRUE(info.present);
  EXPECT_FALSE(info.finished);
  EXPECT_EQ(info.interned, 3u);
  EXPECT_EQ(info.frames, 1u);
}

TEST(FrontierCheckpoint, FingerprintMismatchStartsFresh) {
  TempDir tmp;
  const std::string dir = tmp.file("ckpt");
  FrontierSnapshot snap;
  snap.fp_hi = 1;
  snap.fp_lo = 2;
  snap.interned = 1;
  snap.node_depth_from = {-1};
  snap.frames.emplace_back();
  {
    FrontierCheckpoint ckpt(dir);
    ckpt.open(1, 2, true,
              [](std::uint32_t, std::uint32_t,
                 std::span<const std::uint64_t>) {});
    ckpt.write_snapshot(snap, [](std::uint32_t, std::uint32_t* parent,
                                 std::vector<std::uint64_t>* words) {
      *parent = DeltaCodec::kNoParent;
      *words = {42};
    });
  }
  int fed = 0;
  FrontierCheckpoint other(dir);
  const auto got = other.open(3, 4, true,
                              [&](std::uint32_t, std::uint32_t,
                                  std::span<const std::uint64_t>) { ++fed; });
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(fed, 0);
  EXPECT_EQ(other.keys_on_disk(), 0u);
}

TEST(FrontierCheckpoint, FinalSnapshotShortCircuits) {
  TempDir tmp;
  const std::string dir = tmp.file("ckpt");
  FrontierSnapshot fin;
  fin.fp_hi = 5;
  fin.fp_lo = 6;
  fin.finished = true;
  fin.wait_free = false;
  fin.configs = 123;
  fin.edges = 456;
  fin.depth = 9;
  {
    FrontierCheckpoint ckpt(dir);
    ckpt.open(5, 6, true,
              [](std::uint32_t, std::uint32_t,
                 std::span<const std::uint64_t>) {});
    fin.interned = 123;
    ckpt.write_final(fin);
  }
  int fed = 0;
  FrontierCheckpoint reopened(dir);
  const auto got = reopened.open(5, 6, true,
                                 [&](std::uint32_t, std::uint32_t,
                                     std::span<const std::uint64_t>) {
                                   ++fed;
                                 });
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->finished);
  EXPECT_FALSE(got->wait_free);
  EXPECT_EQ(got->configs, 123u);
  EXPECT_EQ(got->depth, 9);
  EXPECT_EQ(fed, 0);
  const CheckpointInfo info = FrontierCheckpoint::info(dir);
  EXPECT_TRUE(info.finished);
}

TEST(FrontierCheckpoint, TornFrontierTailFallsBackToPriorSnapshot) {
  // Two snapshots; tearing the second one's frontier record must resume
  // from the first, with the arena log truncated to the first's batch.
  TempDir tmp;
  const std::string dir = tmp.file("ckpt");
  const std::vector<std::vector<std::uint64_t>> keys = {
      {1}, {2}, {3}, {4}};
  const auto src = [&](std::uint32_t id, std::uint32_t* parent,
                       std::vector<std::uint64_t>* words) {
    *parent = DeltaCodec::kNoParent;
    *words = keys[id];
  };
  std::uint64_t first_end = 0;
  {
    FrontierCheckpoint ckpt(dir);
    ckpt.open(7, 8, true,
              [](std::uint32_t, std::uint32_t,
                 std::span<const std::uint64_t>) {});
    FrontierSnapshot snap;
    snap.fp_hi = 7;
    snap.fp_lo = 8;
    snap.configs = 2;
    snap.interned = 2;
    snap.node_depth_from = {-1, 0};
    snap.frames.emplace_back();
    ckpt.write_snapshot(snap, src);
    first_end = fs::file_size(fs::path(dir) / "frontier.log");
    snap.configs = 4;
    snap.interned = 4;
    snap.node_depth_from = {-1, 0, 0, 0};
    ckpt.write_snapshot(snap, src);
  }
  const fs::path frontier = fs::path(dir) / "frontier.log";
  fs::resize_file(frontier, first_end + 5);  // tear the second record
  std::vector<std::uint32_t> fed;
  FrontierCheckpoint reopened(dir);
  const auto got = reopened.open(7, 8, true,
                                 [&](std::uint32_t id, std::uint32_t,
                                     std::span<const std::uint64_t>) {
                                   fed.push_back(id);
                                 });
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->configs, 2u);
  EXPECT_EQ(fed, (std::vector<std::uint32_t>{0, 1}));
}

TEST(FrontierCheckpoint, ResumeFalseIgnoresExistingState) {
  TempDir tmp;
  const std::string dir = tmp.file("ckpt");
  {
    FrontierCheckpoint ckpt(dir);
    ckpt.open(1, 1, true,
              [](std::uint32_t, std::uint32_t,
                 std::span<const std::uint64_t>) {});
    FrontierSnapshot snap;
    snap.fp_hi = 1;
    snap.fp_lo = 1;
    snap.interned = 1;
    snap.node_depth_from = {-1};
    snap.frames.emplace_back();
    ckpt.write_snapshot(snap, [](std::uint32_t, std::uint32_t* parent,
                                 std::vector<std::uint64_t>* words) {
      *parent = DeltaCodec::kNoParent;
      *words = {1};
    });
  }
  int fed = 0;
  FrontierCheckpoint reopened(dir);
  const auto got = reopened.open(1, 1, false,
                                 [&](std::uint32_t, std::uint32_t,
                                     std::span<const std::uint64_t>) {
                                   ++fed;
                                 });
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(fed, 0);
}

}  // namespace
}  // namespace wfregs::storage
