// Fleet-layer tests: the Coordinator gateway (sharding, stealing, bounded
// admission, disconnect requeue), Worker registration + result/sync
// replication over real TCP sockets, and the transport primitives they
// ride on.  Verdict runners are injected (instant or gated) so every test
// is about fleet mechanics, not exploration time.
#include "wfregs/service/fleet.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "wfregs/consensus/protocols.hpp"
#include "wfregs/service/client.hpp"
#include "wfregs/service/job.hpp"
#include "wfregs/service/store.hpp"
#include "wfregs/service/transport.hpp"

namespace wfregs::service {
namespace {

using namespace std::chrono_literals;

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::size_t count_of(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// First "name":<digits> in `json`.  The coordinator's fleet counters come
/// before the nested fleet_totals object, so the first hit is always the
/// fleet-level one.
std::uint64_t json_u64(const std::string& json, const std::string& name) {
  const std::string tag = "\"" + name + "\":";
  const std::size_t pos = json.find(tag);
  if (pos == std::string::npos) return 0;
  std::uint64_t v = 0;
  for (std::size_t k = pos + tag.size();
       k < json.size() && json[k] >= '0' && json[k] <= '9'; ++k) {
    v = v * 10 + static_cast<std::uint64_t>(json[k] - '0');
  }
  return v;
}

bool wait_for(const std::function<bool()>& pred,
              std::chrono::milliseconds timeout = 10s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

/// Distinct jobs from one implementation: max_configs is part of the
/// canonical job text, so each salt mints a fresh JobKey.
VerifyJob make_job(std::uint64_t salt) {
  VerifyJob job;
  job.kind = JobKind::kConsensus;
  job.impl = consensus::from_test_and_set();
  job.options.limits.max_configs = 1000000 + salt;
  return job;
}

std::size_t shard_of(const std::string& text, std::size_t workers) {
  const JobKey key = hash_job_text(text);
  return static_cast<std::size_t>((key.hi ^ key.lo) % workers);
}

std::vector<std::string> distinct_jobs(std::size_t n) {
  std::vector<std::string> out;
  for (std::uint64_t salt = 1; out.size() < n; ++salt) {
    out.push_back(print_job(make_job(salt)));
  }
  return out;
}

/// `total` distinct jobs covering BOTH shards of a two-worker fleet, so
/// cross-worker cache attribution is deterministic, not luck.
std::vector<std::string> mixed_shard_jobs(std::size_t total) {
  std::vector<std::string> by_shard[2];
  for (std::uint64_t salt = 1; by_shard[0].empty() || by_shard[1].empty() ||
                               by_shard[0].size() + by_shard[1].size() < total;
       ++salt) {
    const std::string text = print_job(make_job(salt));
    by_shard[shard_of(text, 2)].push_back(text);
  }
  std::vector<std::string> out = {by_shard[0][0], by_shard[1][0]};
  for (const int s : {0, 1}) {
    for (std::size_t k = 1; k < by_shard[s].size() && out.size() < total; ++k) {
      out.push_back(by_shard[s][k]);
    }
  }
  return out;
}

/// `n` distinct jobs that ALL shard to worker index `shard` of a
/// two-worker fleet: the steal test wants one hot queue and one idle
/// worker.
std::vector<std::string> jobs_on_shard(std::size_t n, std::size_t shard) {
  std::vector<std::string> out;
  for (std::uint64_t salt = 1; out.size() < n; ++salt) {
    const std::string text = print_job(make_job(salt));
    if (shard_of(text, 2) == shard) out.push_back(text);
  }
  return out;
}

Verdict instant_verdict(const VerifyJob& job) {
  Verdict v;
  v.kind = job.kind;
  v.ok = true;
  v.wait_free = true;
  v.complete = true;
  v.stats.configs = 1;
  return v;
}

JobScheduler::Runner fast_runner() {
  return [](const VerifyJob& job, const std::atomic<bool>&) {
    return instant_verdict(job);
  };
}

/// Blocks every verdict until *gate flips (or the job is cancelled).
JobScheduler::Runner gated_runner(std::shared_ptr<std::atomic<bool>> gate) {
  return [gate](const VerifyJob& job, const std::atomic<bool>& cancel) {
    while (!gate->load() && !cancel.load()) {
      std::this_thread::sleep_for(1ms);
    }
    return instant_verdict(job);
  };
}

/// A coordinator on a background thread plus N in-process workers, all
/// over a kernel-assigned TCP port (or a Unix socket).
struct FleetFixture {
  explicit FleetFixture(CoordinatorOptions options) {
    coordinator = std::make_unique<Coordinator>(std::move(options));
    coord_thread = std::thread([this] { served = coordinator->run(); });
  }

  ~FleetFixture() {
    for (auto& w : workers) w->request_stop();
    coordinator->request_stop();
    join();
  }

  std::string endpoint() const {
    return "tcp:127.0.0.1:" + std::to_string(coordinator->tcp_port());
  }

  void add_worker(const std::string& name, JobScheduler::Runner runner,
                  const std::string& store_path = "",
                  std::chrono::milliseconds sync_interval = 100ms) {
    WorkerOptions o;
    o.connect = endpoint();
    o.name = name;
    o.runner = std::move(runner);
    o.scheduler.store_path = store_path;
    o.sync_interval = sync_interval;
    workers.push_back(std::make_unique<Worker>(std::move(o)));
    worker_threads.emplace_back(
        [w = workers.back().get()] { (void)w->run(); });
  }

  /// After a client shutdown request: workers exit on kShutdown, then the
  /// coordinator sees the last goodbye and returns.
  void join() {
    for (auto& t : worker_threads) {
      if (t.joinable()) t.join();
    }
    if (coord_thread.joinable()) coord_thread.join();
  }

  std::unique_ptr<Coordinator> coordinator;
  std::thread coord_thread;
  std::uint64_t served = 0;
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::thread> worker_threads;
};

TEST(Transport, EndpointSpecsParseBothFamilies) {
  Endpoint ep = parse_endpoint("/tmp/x.sock");
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/tmp/x.sock");
  EXPECT_EQ(endpoint_to_string(ep), "unix:/tmp/x.sock");
  EXPECT_EQ(parse_endpoint("unix:/a/b").path, "/a/b");

  ep = parse_endpoint("tcp:7461");
  EXPECT_EQ(ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 7461);
  ep = parse_endpoint("tcp:10.1.2.3:80");
  EXPECT_EQ(ep.host, "10.1.2.3");
  EXPECT_EQ(ep.port, 80);
  EXPECT_EQ(endpoint_to_string(ep), "tcp:10.1.2.3:80");

  EXPECT_THROW(parse_endpoint(""), std::runtime_error);
  EXPECT_THROW(parse_endpoint("tcp:"), std::runtime_error);
  EXPECT_THROW(parse_endpoint("tcp:notaport"), std::runtime_error);
  EXPECT_THROW(parse_endpoint("tcp:127.0.0.1:99999"), std::runtime_error);
}

TEST(Transport, FrameSplitterReassemblesByteByByte) {
  // Three frames serialized back to back, fed one byte at a time: the
  // splitter must yield exactly the three frames, in order, regardless of
  // how the stream fragments.
  const std::vector<Frame> frames = {
      Frame{FrameType::kSubmit, "job text"},
      Frame{FrameType::kStats, ""},
      Frame{FrameType::kReply, std::string(10000, 'v')}};
  std::string stream;
  for (const Frame& f : frames) {
    const std::uint32_t len = static_cast<std::uint32_t>(1 + f.payload.size());
    for (int k = 0; k < 4; ++k) {
      stream.push_back(static_cast<char>((len >> (8 * k)) & 0xFF));
    }
    stream.push_back(static_cast<char>(f.type));
    stream.append(f.payload);
  }
  FrameSplitter splitter;
  std::vector<Frame> got;
  Frame frame;
  for (const char c : stream) {
    splitter.feed(&c, 1);
    while (splitter.next(&frame)) got.push_back(frame);
  }
  ASSERT_EQ(got.size(), frames.size());
  for (std::size_t k = 0; k < frames.size(); ++k) {
    EXPECT_EQ(got[k].type, frames[k].type);
    EXPECT_EQ(got[k].payload, frames[k].payload);
  }
  EXPECT_EQ(splitter.buffered(), 0u);
  // A zero-length prefix is a protocol violation, not a hang.
  const char bad[5] = {0, 0, 0, 0, 0};
  splitter.feed(bad, 5);
  EXPECT_THROW(splitter.next(&frame), std::runtime_error);
}

TEST(Fleet, BatchAcrossTwoWorkersWarmsTheSharedCache) {
  CoordinatorOptions options;
  options.listen_tcp = "tcp:127.0.0.1:0";
  options.drain_grace = 500ms;
  FleetFixture fleet(options);
  fleet.add_worker("alpha", fast_runner());
  fleet.add_worker("beta", fast_runner());
  Client client(fleet.endpoint());
  ASSERT_TRUE(
      wait_for([&] { return json_u64(client.stats(), "workers") == 2; }));

  // Jobs chosen to hash onto BOTH shards: each worker computes at least
  // one verdict, so the re-submit below proves cross-worker cache reuse.
  const std::vector<std::string> jobs = mixed_shard_jobs(3);
  const std::string submitted = client.submit_batch(jobs);
  EXPECT_EQ(count_of(submitted, "\"status\":\"queued\""), 3u) << submitted;
  ASSERT_TRUE(
      wait_for([&] { return json_u64(client.stats(), "completed") == 3; }));

  const std::string again = client.submit_batch(jobs);
  EXPECT_EQ(count_of(again, "\"status\":\"cached\""), 3u) << again;
  EXPECT_TRUE(contains(again, "\"ok\":true")) << again;

  const std::string stats = client.stats();
  EXPECT_EQ(json_u64(stats, "cache_hits"), 3u) << stats;
  EXPECT_EQ(json_u64(stats, "dispatched"), 3u) << stats;
  // Every worker holds its own shard, so nothing needed stealing...
  EXPECT_EQ(json_u64(stats, "steals"), 0u) << stats;
  // ...and hits are attributed to both origins.
  EXPECT_GE(json_u64(stats, "alpha"), 1u) << stats;
  EXPECT_GE(json_u64(stats, "beta"), 1u) << stats;

  EXPECT_TRUE(contains(client.shutdown(), "draining"));
  fleet.join();

  const FleetMetrics m = fleet.coordinator->metrics();
  EXPECT_EQ(m.completed, 3u);
  EXPECT_EQ(m.failed, 0u);
  ASSERT_EQ(m.hits_by_origin.size(), 2u);
  // The aggregated worker snapshots survive the goodbyes.
  EXPECT_EQ(fleet.coordinator->fleet_totals().completed, 3u);
}

TEST(Fleet, BoundedAdmissionRejectsAtTheCap) {
  CoordinatorOptions options;
  options.listen_tcp = "tcp:127.0.0.1:0";
  options.admission_capacity = 2;
  options.drain_grace = 200ms;  // pending orphans are abandoned at exit
  FleetFixture fleet(options);
  Client client(fleet.endpoint());

  // No workers: admitted jobs sit in the orphan queue and count against
  // the cap, so the third of three distinct submissions bounces.
  const std::vector<std::string> jobs = distinct_jobs(3);
  const std::string replies = client.submit_batch(jobs);
  EXPECT_EQ(count_of(replies, "\"status\":\"queued\""), 2u) << replies;
  EXPECT_EQ(count_of(replies, "\"status\":\"rejected\""), 1u) << replies;
  // In order: the cap rejects the LAST job, not an arbitrary one.
  EXPECT_LT(replies.rfind("queued"), replies.find("rejected")) << replies;

  const std::string stats = client.stats();
  EXPECT_EQ(json_u64(stats, "admission_rejections"), 1u) << stats;
  EXPECT_EQ(json_u64(stats, "queue_depth"), 2u) << stats;
  EXPECT_EQ(json_u64(stats, "submitted"), 2u) << stats;

  const std::string key = job_key_hex(hash_job_text(jobs[0]));
  EXPECT_TRUE(contains(client.poll(key), "\"status\":\"queued\""));

  EXPECT_TRUE(contains(client.shutdown(), "draining"));
  fleet.join();
  EXPECT_EQ(fleet.coordinator->metrics().admission_rejections, 1u);
}

TEST(Fleet, IdleWorkerStealsFromTheLargestQueue) {
  CoordinatorOptions options;
  options.listen_tcp = "tcp:127.0.0.1:0";
  options.drain_grace = 2000ms;
  FleetFixture fleet(options);

  // Worker join order fixes the shard map: "gated" must be index 0.
  auto gate = std::make_shared<std::atomic<bool>>(false);
  fleet.add_worker("gated", gated_runner(gate));
  Client client(fleet.endpoint());
  ASSERT_TRUE(
      wait_for([&] { return json_u64(client.stats(), "workers") == 1; }));
  fleet.add_worker("swift", fast_runner());
  ASSERT_TRUE(
      wait_for([&] { return json_u64(client.stats(), "workers") == 2; }));

  // Four jobs that ALL shard to the gated worker: it absorbs two into its
  // inflight window (default 2) and the idle fast worker must steal the
  // other two -- there is no orphan work to hide behind.
  const std::vector<std::string> jobs = jobs_on_shard(4, 0);
  client.submit_batch(jobs);
  ASSERT_TRUE(
      wait_for([&] { return json_u64(client.stats(), "completed") == 2; }));

  const std::string stats = client.stats();
  EXPECT_EQ(json_u64(stats, "steals"), 2u) << stats;
  EXPECT_EQ(json_u64(stats, "dispatched"), 4u) << stats;
  EXPECT_EQ(json_u64(stats, "swift"), 0u) << stats;  // no cache hits yet

  gate->store(true);
  ASSERT_TRUE(
      wait_for([&] { return json_u64(client.stats(), "completed") == 4; }));

  // All four verdicts are now served from the coordinator cache, split
  // two-and-two between the origins by the steal.
  const std::string again = client.submit_batch(jobs);
  EXPECT_EQ(count_of(again, "\"status\":\"cached\""), 4u) << again;
  const std::string warm = client.stats();
  EXPECT_EQ(json_u64(warm, "gated"), 2u) << warm;
  EXPECT_EQ(json_u64(warm, "swift"), 2u) << warm;

  EXPECT_TRUE(contains(client.shutdown(), "draining"));
  fleet.join();
}

TEST(Fleet, WorkerStoreTailSyncWarmsTheCoordinatorCache) {
  const std::string store = ::testing::TempDir() + "wfregs_fleet_warm_" +
                            std::to_string(::getpid()) + ".log";
  std::remove(store.c_str());
  const std::string text = print_job(make_job(7));
  const JobKey key = hash_job_text(text);
  {
    // A verdict this worker computed BEFORE the fleet existed.
    VerdictStore seed(store);
    VerifyJob job = make_job(7);
    seed.put(key, instant_verdict(job));
  }

  CoordinatorOptions options;
  options.listen_tcp = "tcp:127.0.0.1:0";
  options.drain_grace = 500ms;
  FleetFixture fleet(options);
  fleet.add_worker("prewarmed", fast_runner(), store, /*sync_interval=*/25ms);
  Client client(fleet.endpoint());

  // The record-log tail arrives with the first periodic sync; no job was
  // ever dispatched for it.
  ASSERT_TRUE(wait_for(
      [&] { return json_u64(client.stats(), "merged_records") >= 1; }));
  const std::string reply = client.submit(text);
  EXPECT_TRUE(contains(reply, "\"status\":\"cached\"")) << reply;
  EXPECT_TRUE(contains(reply, job_key_hex(key))) << reply;

  const std::string stats = client.stats();
  EXPECT_EQ(json_u64(stats, "dispatched"), 0u) << stats;
  EXPECT_EQ(json_u64(stats, "prewarmed"), 1u) << stats;

  EXPECT_TRUE(contains(client.shutdown(), "draining"));
  fleet.join();
  std::remove(store.c_str());
}

TEST(Fleet, DisconnectRequeuesAndASecondWorkerCompletes) {
  CoordinatorOptions options;
  options.listen_tcp = "tcp:127.0.0.1:0";
  options.drain_grace = 2000ms;
  FleetFixture fleet(options);
  Client client(fleet.endpoint());

  // Two jobs land in the orphan queue (no workers yet).
  const std::vector<std::string> jobs = distinct_jobs(2);
  client.submit_batch(jobs);
  EXPECT_EQ(json_u64(client.stats(), "queue_depth"), 2u);

  // A raw fake worker registers, receives both assignments (inflight
  // window 2) and dies without ever answering.
  {
    const int fd = connect_endpoint(parse_endpoint(fleet.endpoint()));
    write_frame(fd, Frame{FrameType::kWorkerHello, pack_batch({"flaky", "8"})});
    const auto welcome = read_frame(fd);
    ASSERT_TRUE(welcome.has_value());
    EXPECT_EQ(welcome->type, FrameType::kWorkerWelcome);
    for (int k = 0; k < 2; ++k) {
      const auto assign = read_frame(fd);
      ASSERT_TRUE(assign.has_value());
      EXPECT_EQ(assign->type, FrameType::kAssign);
    }
    ::close(fd);
  }
  ASSERT_TRUE(wait_for([&] {
    const std::string s = client.stats();
    return json_u64(s, "requeued") == 2 && json_u64(s, "workers") == 0;
  }));
  EXPECT_EQ(json_u64(client.stats(), "queue_depth"), 2u);

  // A second fake worker picks the requeued jobs up and answers with
  // canned encoded verdicts -- exactly what a real worker ships.
  const int fd = connect_endpoint(parse_endpoint(fleet.endpoint()));
  write_frame(fd, Frame{FrameType::kWorkerHello, pack_batch({"steady", "8"})});
  const auto welcome = read_frame(fd);
  ASSERT_TRUE(welcome.has_value());
  for (int k = 0; k < 2; ++k) {
    const auto assign = read_frame(fd);
    ASSERT_TRUE(assign.has_value());
    ASSERT_EQ(assign->type, FrameType::kAssign);
    const std::vector<std::string> parts = unpack_batch(assign->payload);
    ASSERT_EQ(parts.size(), 2u);
    const Verdict v = instant_verdict(parse_job(parts[1]));
    const std::vector<std::uint8_t> encoded = encode_verdict(v);
    write_frame(
        fd, Frame{FrameType::kWorkerResult,
                  pack_batch({parts[0], "done",
                              std::string(encoded.begin(), encoded.end())})});
  }
  ASSERT_TRUE(
      wait_for([&] { return json_u64(client.stats(), "completed") == 2; }));

  const std::string again = client.submit_batch(jobs);
  EXPECT_EQ(count_of(again, "\"status\":\"cached\""), 2u) << again;
  const std::string stats = client.stats();
  EXPECT_EQ(json_u64(stats, "requeued"), 2u) << stats;
  EXPECT_EQ(json_u64(stats, "steady"), 2u) << stats;
  EXPECT_EQ(json_u64(stats, "dispatched"), 4u) << stats;  // 2 lost + 2 redone

  EXPECT_TRUE(contains(client.shutdown(), "draining"));
  // The coordinator tells the surviving worker to drain; acknowledge by
  // closing so the shutdown handshake completes cleanly.
  for (;;) {
    const auto frame = read_frame(fd);
    ASSERT_TRUE(frame.has_value()) << "coordinator closed before kShutdown";
    if (frame->type == FrameType::kShutdown) break;
  }
  ::close(fd);
  fleet.join();
  EXPECT_EQ(fleet.coordinator->metrics().completed, 2u);
}

}  // namespace
}  // namespace wfregs::service
