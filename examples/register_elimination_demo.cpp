// The paper's Theorem 5, end to end: take Herlihy's classical 2-process
// consensus protocol from one test&set plus two registers, and mechanically
// eliminate the registers -- producing a consensus protocol whose only base
// objects are queues (or any other non-trivial deterministic type you pick).
//
//   $ ./register_elimination_demo [substrate]
//   substrate: tas | queue | faa | counter   (default: queue)
#include <cstdlib>
#include <iostream>
#include <string>

#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/core/oneuse_from_type.hpp"
#include "wfregs/core/register_elimination.hpp"
#include "wfregs/typesys/type_zoo.hpp"

using namespace wfregs;

namespace {

TypeSpec pick_substrate(const std::string& name) {
  if (name == "tas") return zoo::test_and_set_type(2);
  if (name == "queue") return zoo::queue_type(2, 2, 2);
  if (name == "faa") return zoo::fetch_and_add_type(2, 2);
  if (name == "counter") return zoo::mod_counter_type(3, 2);
  throw std::invalid_argument("unknown substrate: " + name +
                              " (want tas|queue|faa|counter)");
}

void print_census(const std::string& label,
                  const std::map<std::string, int>& census) {
  std::cout << label << ":\n";
  for (const auto& [name, count] : census) {
    std::cout << "    " << count << " x " << name << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string substrate_name = argc > 1 ? argv[1] : "queue";
  const TypeSpec substrate = pick_substrate(substrate_name);

  const auto protocol = consensus::from_test_and_set();
  std::cout << "input protocol: " << protocol->name() << "\n";

  core::EliminationOptions options;
  options.oneuse_factory = [&substrate] {
    return core::oneuse_from_deterministic(substrate);
  };
  const auto report = core::eliminate_registers(protocol, options);
  if (!report.ok) {
    std::cerr << "transform failed: " << report.detail << "\n";
    return EXIT_FAILURE;
  }

  print_census("base objects before", report.census_before);
  std::cout << "\nSection 4.2 analysis of the bit-normalized protocol:\n"
            << "    execution-tree depth D = " << report.bounds.depth
            << " (over all 2^n input vectors, " << report.bounds.configs
            << " configurations)\n";
  for (const auto& bound : report.bounds.per_object) {
    std::cout << "    " << bound.type_name << " at path [";
    for (std::size_t k = 0; k < bound.path.size(); ++k) {
      std::cout << (k ? "," : "") << bound.path[k];
    }
    std::cout << "]: at most " << bound.max_accesses << " accesses\n";
  }

  std::cout << "\nSection 4.3 + Section 5: replaced " << report.bits_replaced
            << " SRSW bit(s) with " << report.oneuse_bits_created
            << " one-use bit(s), each built from one " << substrate.name()
            << " object\n\n";
  print_census("base objects after", report.census_after);

  std::cout << "\nre-verifying the register-free protocol over ALL "
               "schedules and input vectors...\n";
  const auto check = consensus::check_consensus(report.result);
  if (!check.solves) {
    std::cerr << "FAILED: " << check.detail << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "=> solves wait-free 2-process consensus (" << check.configs
            << " configurations explored, depth " << check.depth << ")\n"
            << "=> h_m and h_m^r agree on " << substrate.name()
            << ", exactly as Theorem 5 states\n";
  return EXIT_SUCCESS;
}
