// wfregs_cli -- the library as a command-line tool.  Define a concurrent
// data type in the text format of wfregs/typesys/serialize.hpp and run the
// paper's machinery on it:
//
//   wfregs_cli zoo                         list built-in types
//   wfregs_cli zoo <name>                  print a built-in type definition
//   wfregs_cli print <file>                parse, validate and re-print
//   wfregs_cli classify <file>             triviality + Section 5 witnesses
//                                          + certified consensus-power bounds
//   wfregs_cli oneuse <file>               synthesize + verify a one-use bit
//   wfregs_cli hierarchy <file>            gather verified hierarchy evidence
//   wfregs_cli eliminate <tas|queue|faa> <file>
//                                          Theorem 5: strip the registers out
//                                          of a classical consensus protocol,
//                                          re-basing it on the file's type
//   wfregs_cli make-job consensus <tas|queue|faa>
//                                          emit a canonical verification job
//                                          (the daemon's submit payload)
//   wfregs_cli verify <job-file>...        run serialized jobs (locally, or
//                                          on a daemon with --server)
//   wfregs_cli submit <job-file>...        fire-and-forget batch submit
//                                          (--server only; poll later)
//   wfregs_cli check <tas|queue|faa>       make-job + verify in one step
//   wfregs_cli stats                       daemon metrics (--server only)
//   wfregs_cli shutdown                    drain the daemon (--server only)
//   wfregs_cli store-merge <dst> <src>     merge verdict log <src> into
//                                          <dst> offline (by JobKey,
//                                          idempotent; <dst> is created)
//   wfregs_cli checkpoint-info <dir>       inspect an out-of-core
//                                          exploration checkpoint directory
//
// A leading `-j N` routes every exhaustive exploration through the parallel
// explorer on N worker threads (0 = hardware concurrency, 1 = sequential).
// A leading `--static-precheck` runs the wfregs-lint discipline passes on
// every implementation before exploring it, failing fast on violations.
// A leading `--reduction none|sleep|sleep+symmetry` applies partial-order /
// symmetry reduction to every exploration (see runtime/reduction.hpp);
// verdicts are unchanged, configuration counts shrink.  A leading `--json`
// switches verify/check verdict output to one JSON object per job (the same
// encoding the daemon replies with); `--server <endpoint>` routes verify /
// submit / check / stats / shutdown to a running wfregsd or fleet
// coordinator -- the endpoint is a Unix socket path, "unix:<path>" or
// "tcp:<host>:<port>".  Server-side verify/submit go over the BATCH frames
// (one frame pair for N jobs), and a "rejected" submit -- the server's
// bounded-admission backpressure -- is retried with exponential backoff.
// Commands that never use a flag warn instead of silently ignoring it.
// A leading `--memory-budget N[K|M|G]` caps explorer memory and spills
// interned configurations to disk beyond it; `--checkpoint-dir <dir>`
// persists crash-safe exploration checkpoints there, and a rerun with the
// same directory resumes instead of recomputing (see storage/options.hpp).
// Both are local execution parameters: they never enter a job's identity or
// its serialized text, and with --server the daemon's own storage
// configuration applies instead.
//
// Exit codes: 0 = success, 1 = a verification/check reported a failure,
// 2 = usage or input error (bad flags, unknown command, unreadable or
// malformed input).
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <functional>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "wfregs/analysis/consensus_power.hpp"
#include "wfregs/analysis/lint.hpp"
#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/core/oneuse_from_type.hpp"
#include "wfregs/core/register_elimination.hpp"
#include "wfregs/hierarchy/hierarchy.hpp"
#include "wfregs/runtime/verify.hpp"
#include "wfregs/service/client.hpp"
#include "wfregs/service/job.hpp"
#include "wfregs/service/scheduler.hpp"
#include "wfregs/service/store.hpp"
#include "wfregs/service/verdict.hpp"
#include "wfregs/storage/checkpoint.hpp"
#include "wfregs/storage/options.hpp"
#include "wfregs/typesys/serialize.hpp"
#include "wfregs/typesys/triviality.hpp"
#include "wfregs/typesys/type_zoo.hpp"

using namespace wfregs;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitVerifyFail = 1;
constexpr int kExitUsage = 2;

/// Explorer thread count from the global -j flag (0 = hardware concurrency).
int g_threads = 0;
/// Whether -j was given at all (for the no-exploration diagnostic).
bool g_threads_set = false;
/// Whether --static-precheck was given.
bool g_precheck = false;
/// Reduction mode from the global --reduction flag.
Reduction g_reduction = Reduction::kNone;
/// Whether --reduction was given at all.
bool g_reduction_set = false;
/// Whether --json was given (verify/check verdict output).
bool g_json = false;
/// Daemon socket from --server (empty = run jobs locally).
std::string g_server;
/// Explorer memory budget from --memory-budget (0 = unbounded, in-core).
std::size_t g_memory_budget = 0;
/// Checkpoint directory from --checkpoint-dir (empty = no checkpointing).
std::string g_checkpoint_dir;
/// Whether either out-of-core flag was given (for the dead-flag warning).
bool g_storage_set = false;

VerifyOptions verify_options() {
  VerifyOptions options;
  options.threads = g_threads;
  options.reduction = g_reduction;
  options.storage.memory_budget_bytes = g_memory_budget;
  options.storage.checkpoint_dir = g_checkpoint_dir;
  if (g_precheck) options.static_precheck = analysis::static_precheck();
  return options;
}

/// Parses "N", "NK", "NM" or "NG" (suffixes case-insensitive) into bytes;
/// nullopt on malformed input or overflow.
std::optional<std::size_t> parse_byte_size(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::size_t shift = 0;
  std::string digits = text;
  switch (digits.back()) {
    case 'k': case 'K': shift = 10; break;
    case 'm': case 'M': shift = 20; break;
    case 'g': case 'G': shift = 30; break;
    default: break;
  }
  if (shift != 0) digits.pop_back();
  if (digits.empty() ||
      !std::all_of(digits.begin(), digits.end(),
                   [](unsigned char c) { return std::isdigit(c); })) {
    return std::nullopt;
  }
  errno = 0;
  const unsigned long long n = std::strtoull(digits.c_str(), nullptr, 10);
  if (errno != 0 || n > (std::numeric_limits<std::size_t>::max() >> shift)) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(n) << shift;
}

const std::map<std::string, std::function<TypeSpec()>> kZoo{
    {"bit", [] { return zoo::bit_type(2); }},
    {"register4", [] { return zoo::register_type(4, 2); }},
    {"srsw_bit", [] { return zoo::srsw_bit_type(); }},
    {"one_use_bit", [] { return zoo::one_use_bit_type(); }},
    {"test_and_set", [] { return zoo::test_and_set_type(2); }},
    {"fetch_and_add", [] { return zoo::fetch_and_add_type(4, 2); }},
    {"cas", [] { return zoo::cas_type(2, 2); }},
    {"cas_old", [] { return zoo::cas_old_type(2, 2); }},
    {"sticky_bit", [] { return zoo::sticky_bit_type(2); }},
    {"queue", [] { return zoo::queue_type(2, 2, 2); }},
    {"stack", [] { return zoo::stack_type(2, 2, 2); }},
    {"shift_register", [] { return zoo::shift_register_type(2, 2); }},
    {"snapshot", [] { return zoo::snapshot_type(2, 2); }},
    {"consensus", [] { return zoo::consensus_type(2); }},
    {"safe_bit", [] { return zoo::weak_bit_type(zoo::WeakBitKind::kSafe); }},
    {"regular_bit",
     [] { return zoo::weak_bit_type(zoo::WeakBitKind::kRegular); }},
    {"port_flag", [] { return zoo::port_flag_type(2); }},
    {"mod_counter", [] { return zoo::mod_counter_type(3, 2); }},
    {"trivial_toggle", [] { return zoo::trivial_toggle_type(2); }},
    {"nondet_coin", [] { return zoo::nondet_coin_type(2); }},
};

int cmd_zoo(int argc, char** argv) {
  if (argc < 3) {
    for (const auto& [name, make] : kZoo) std::cout << name << "\n";
    return kExitOk;
  }
  const auto it = kZoo.find(argv[2]);
  if (it == kZoo.end()) {
    std::cerr << "unknown zoo type: " << argv[2] << "\n";
    return kExitUsage;
  }
  std::cout << print_type(it->second());
  return kExitOk;
}

int cmd_print(const TypeSpec& t) {
  std::cout << print_type(t);
  std::cout << "# deterministic: " << (t.is_deterministic() ? "yes" : "no")
            << ", oblivious: " << (t.is_oblivious() ? "yes" : "no") << "\n";
  return kExitOk;
}

int cmd_classify(const TypeSpec& t) {
  std::cout << "type:          " << t.name() << "\n"
            << "deterministic: " << (t.is_deterministic() ? "yes" : "no")
            << "\n"
            << "oblivious:     " << (t.is_oblivious() ? "yes" : "no") << "\n";
  if (t.is_total()) {
    const auto power = analysis::classify_consensus_power(t);
    std::cout << "cons bounds:   " << power.summary() << "\n";
    for (const auto& claim : power.claims) {
      const auto check = analysis::check_certificate(t, claim);
      if (!check.ok) {
        std::cout << "CERTIFICATE REJECTED ("
                  << analysis::power_rule_name(claim.rule)
                  << "): " << check.detail << "\n";
        return kExitVerifyFail;
      }
    }
  }
  if (!t.is_deterministic()) {
    std::cout << "the Section 5 deciders require determinism; stopping\n";
    return kExitOk;
  }
  std::cout << "trivial (5.2): " << (is_trivial_general(t) ? "yes" : "no")
            << "\n";
  if (t.is_oblivious()) {
    if (const auto w = find_oblivious_witness(t)) {
      std::cout << "5.1 witness:   init " << t.state_name(w->q)
                << ", write = " << t.invocation_name(w->i_prime)
                << ", read = " << t.invocation_name(w->i) << " ("
                << t.response_name(w->r_q) << " vs "
                << t.response_name(w->r_p) << ")\n";
    }
  }
  if (const auto pair = find_nontrivial_pair(t)) {
    std::cout << "5.2 pair:      init " << t.state_name(pair->q)
              << ", writer port " << pair->writer_port << " does "
              << t.invocation_name(pair->write_inv) << "; reader port "
              << pair->reader_port << " runs";
    for (const InvId i : pair->read_seq) {
      std::cout << " " << t.invocation_name(i);
    }
    std::cout << " (" << t.response_name(pair->unwritten_resp) << " vs "
              << t.response_name(pair->written_resp) << ")\n";
  }
  return kExitOk;
}

int cmd_oneuse(const TypeSpec& t) {
  const auto impl = core::oneuse_from_deterministic(t);
  if (!impl) {
    std::cout << t.name()
              << " is trivial: it cannot implement one-use bits\n";
    return kExitVerifyFail;
  }
  const zoo::OneUseBitLayout lay;
  const auto r = verify_linearizable(impl, {{lay.read()}, {lay.write()}},
                                     verify_options());
  std::cout << "synthesized " << impl->name() << "; exhaustive check: "
            << (r.ok ? "LINEARIZABLE and WAIT-FREE" : r.detail) << " ("
            << r.stats.configs << " configurations)\n";
  return r.ok ? kExitOk : kExitVerifyFail;
}

int cmd_hierarchy(const TypeSpec& t) {
  hierarchy::ClassifyOptions options;
  options.h1_probe_depth = 2;
  const auto row = hierarchy::classify_type(t, options);
  std::cout << hierarchy::to_table({row});
  return kExitOk;
}

int cmd_eliminate(const std::string& protocol, const TypeSpec& substrate) {
  std::shared_ptr<const Implementation> impl;
  if (protocol == "tas") {
    impl = consensus::from_test_and_set();
  } else if (protocol == "queue") {
    impl = consensus::from_queue();
  } else if (protocol == "faa") {
    impl = consensus::from_fetch_and_add();
  } else {
    std::cerr << "unknown protocol " << protocol << " (want tas|queue|faa)\n";
    return kExitUsage;
  }
  core::EliminationOptions options;
  const TypeSpec sub = substrate;
  options.oneuse_factory = [sub] {
    return core::oneuse_from_deterministic(sub);
  };
  const auto report = core::eliminate_registers(impl, options);
  if (!report.ok) {
    std::cerr << "transform failed: " << report.detail << "\n";
    return kExitVerifyFail;
  }
  std::cout << "D = " << report.bounds.depth << ", bits replaced = "
            << report.bits_replaced << ", one-use bits = "
            << report.oneuse_bits_created << "\nresult base objects:\n";
  for (const auto& [name, count] : report.census_after) {
    std::cout << "  " << count << " x " << name << "\n";
  }
  const auto check =
      consensus::check_consensus(report.result, verify_options());
  std::cout << "register-free protocol "
            << (check.solves ? "SOLVES" : "FAILS") << " consensus ("
            << check.configs << " configurations)\n";
  return check.solves ? kExitOk : kExitVerifyFail;
}

// ---- service-layer commands ------------------------------------------------

std::shared_ptr<const Implementation> protocol_impl(const std::string& name) {
  if (name == "tas") return consensus::from_test_and_set();
  if (name == "queue") return consensus::from_queue();
  if (name == "faa") return consensus::from_fetch_and_add();
  return nullptr;
}

service::VerifyJob make_consensus_job(
    std::shared_ptr<const Implementation> impl) {
  service::VerifyJob job;
  job.kind = service::JobKind::kConsensus;
  job.impl = std::move(impl);
  job.options = verify_options();
  job.precheck = g_precheck;
  return job;
}

/// Pulls the string value of `"field":"..."` out of a daemon JSON reply.
std::string json_string_field(const std::string& json,
                              const std::string& field) {
  const std::string needle = "\"" + field + "\":\"";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  const std::size_t end = json.find('"', start);
  if (end == std::string::npos) return "";
  return json.substr(start, end - start);
}

/// Splits a batch reply -- a JSON array of objects -- into the top-level
/// object texts (nested braces and strings handled).
std::vector<std::string> split_json_array(const std::string& json) {
  std::vector<std::string> items;
  int depth = 0;
  std::size_t start = 0;
  bool in_string = false;
  bool escaped = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) items.push_back(json.substr(start, i - start + 1));
    }
  }
  return items;
}

void print_verdict_human(const std::string& label,
                         const service::Verdict& v) {
  std::cout << label << ": " << service::job_kind_name(v.kind) << " "
            << (v.ok ? "OK" : "FAILED")
            << (v.complete ? "" : " (incomplete)")
            << ", wait_free=" << (v.wait_free ? "yes" : "no") << ", configs="
            << v.stats.configs;
  if (!v.detail.empty()) std::cout << ", detail: " << v.detail;
  std::cout << "\n";
}

/// Runs (label, canonical job text) pairs locally or on the daemon.
/// Verdict per job on stdout (JSON with --json); exit 1 when any job's
/// verdict is not ok.
int run_jobs(const std::vector<std::pair<std::string, std::string>>& jobs) {
  bool all_ok = true;
  if (!g_server.empty()) {
    service::Client client(g_server);
    // One kBatchSubmit frame for the whole set; "rejected" entries -- the
    // server's bounded-admission backpressure -- are resubmitted with
    // exponential backoff instead of failing the run.
    std::vector<std::string> keys(jobs.size());
    std::vector<std::size_t> todo(jobs.size());
    for (std::size_t k = 0; k < jobs.size(); ++k) todo[k] = k;
    int backoff_ms = 20;
    while (!todo.empty()) {
      std::vector<std::string> batch;
      batch.reserve(todo.size());
      for (const std::size_t k : todo) batch.push_back(jobs[k].second);
      const std::vector<std::string> replies =
          split_json_array(client.submit_batch(batch));
      if (replies.size() != todo.size()) {
        std::cerr << "error: malformed batch submit reply\n";
        return kExitUsage;
      }
      std::vector<std::size_t> still;
      for (std::size_t k = 0; k < replies.size(); ++k) {
        if (json_string_field(replies[k], "status") == "rejected") {
          still.push_back(todo[k]);
        } else {
          keys[todo[k]] = json_string_field(replies[k], "key");
        }
      }
      if (!still.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2, 500);
      }
      todo = std::move(still);
    }
    // One kBatchPoll frame per probe round, until every job is final.
    std::vector<std::string> finals;
    for (;;) {
      finals = split_json_array(client.poll_batch(keys));
      bool pending = false;
      for (const std::string& reply : finals) {
        const std::string status = json_string_field(reply, "status");
        pending = pending || status == "queued" || status == "running";
      }
      if (!pending && finals.size() == keys.size()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    for (std::size_t k = 0; k < finals.size(); ++k) {
      const std::string& reply = finals[k];
      const std::string status = json_string_field(reply, "status");
      const bool ok = status == "done" &&
                      reply.find("\"ok\":true") != std::string::npos;
      all_ok = all_ok && ok;
      if (g_json) {
        std::cout << reply << "\n";
      } else {
        std::cout << jobs[k].first << ": " << status << " key=" << keys[k]
                  << (ok ? " OK" : " FAILED") << "\n";
      }
    }
  } else {
    const service::JobScheduler::Runner runner =
        service::JobScheduler::default_runner(g_threads);
    const std::atomic<bool> no_cancel{false};
    for (const auto& [label, text] : jobs) {
      service::VerifyJob job = service::parse_job(text);
      // Storage knobs are execution parameters, not job identity: the
      // canonical job text never carries them, so the local path injects
      // them after parsing (the daemon path uses its own configuration).
      job.options.storage.memory_budget_bytes = g_memory_budget;
      job.options.storage.checkpoint_dir = g_checkpoint_dir;
      const service::Verdict v = runner(job, no_cancel);
      all_ok = all_ok && v.ok;
      if (g_json) {
        std::cout << service::verdict_to_json(v) << "\n";
      } else {
        print_verdict_human(label, v);
      }
    }
  }
  return all_ok ? kExitOk : kExitVerifyFail;
}

int cmd_make_job(int argc, char** argv) {
  if (argc != 4 || std::string(argv[2]) != "consensus") {
    std::cerr << "usage: wfregs_cli make-job consensus <tas|queue|faa>\n";
    return kExitUsage;
  }
  const auto impl = protocol_impl(argv[3]);
  if (!impl) {
    std::cerr << "unknown protocol " << argv[3] << " (want tas|queue|faa)\n";
    return kExitUsage;
  }
  std::cout << service::print_job(make_consensus_job(impl));
  return kExitOk;
}

int cmd_verify(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: wfregs_cli verify <job-file>...\n";
    return kExitUsage;
  }
  std::vector<std::pair<std::string, std::string>> jobs;
  for (int k = 2; k < argc; ++k) {
    std::ifstream in(argv[k]);
    if (!in) {
      std::cerr << "cannot read " << argv[k] << "\n";
      return kExitUsage;
    }
    std::ostringstream text;
    text << in.rdbuf();
    jobs.emplace_back(argv[k], text.str());
  }
  return run_jobs(jobs);
}

/// Reads job files and batch-submits them without waiting (the reply JSON
/// array goes to stdout); polling is the caller's business.
int cmd_submit(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: wfregs_cli --server <endpoint> submit "
                 "<job-file>...\n";
    return kExitUsage;
  }
  if (g_server.empty()) {
    std::cerr << "error: 'submit' needs --server <endpoint>\n";
    return kExitUsage;
  }
  std::vector<std::string> texts;
  for (int k = 2; k < argc; ++k) {
    std::ifstream in(argv[k]);
    if (!in) {
      std::cerr << "cannot read " << argv[k] << "\n";
      return kExitUsage;
    }
    std::ostringstream text;
    text << in.rdbuf();
    texts.push_back(text.str());
  }
  service::Client client(g_server);
  std::cout << client.submit_batch(texts) << "\n";
  return kExitOk;
}

/// Offline log merge: every committed record of <src> lands in <dst>
/// (created if absent) keyed by JobKey, idempotently -- records <dst>
/// already holds byte-identically are skipped.  A torn tail on <src> is
/// reported and dropped, same rule as open()-time recovery.
int cmd_store_merge(int argc, char** argv) {
  if (argc != 4) {
    std::cerr << "usage: wfregs_cli store-merge <dst> <src>\n";
    return kExitUsage;
  }
  std::ifstream in(argv[3], std::ios::binary);
  if (!in) {
    std::cerr << "cannot read " << argv[3] << "\n";
    return kExitUsage;
  }
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string bytes = raw.str();
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
  if (!service::check_store_header(data, bytes.size())) {
    std::cerr << "error: " << argv[3]
              << " is not a verdict log (bad header)\n";
    return kExitUsage;
  }
  std::vector<service::StoreRecord> records;
  const std::size_t consumed = service::parse_store_records(
      data + service::kStoreHeaderBytes,
      bytes.size() - service::kStoreHeaderBytes, &records);
  service::VerdictStore dst(argv[2]);
  std::size_t applied = 0;
  for (const service::StoreRecord& record : records) {
    if (dst.merge_encoded(record.key, record.payload)) ++applied;
  }
  std::cout << "merged " << records.size() << " records from " << argv[3]
            << " into " << argv[2] << " (" << applied << " applied, "
            << dst.size() << " total)";
  if (service::kStoreHeaderBytes + consumed < bytes.size()) {
    std::cout << "; dropped torn tail of "
              << bytes.size() - service::kStoreHeaderBytes - consumed
              << " bytes";
  }
  std::cout << "\n";
  return kExitOk;
}

void print_checkpoint_info(const std::string& label,
                           const storage::CheckpointInfo& info) {
  std::ostringstream fp;
  fp << std::hex << std::setfill('0') << std::setw(16) << info.fp_hi
     << std::setw(16) << info.fp_lo;
  std::cout << label << ": " << (info.finished ? "finished" : "in progress")
            << ", fingerprint=" << fp.str() << "\n  configs=" << info.configs
            << " edges=" << info.edges << " terminals=" << info.terminals
            << " interned=" << info.interned << "\n  frames=" << info.frames
            << " snapshots=" << info.snapshots
            << " frontier_bytes=" << info.frontier_bytes
            << " arena_bytes=" << info.arena_bytes;
  if (info.dropped_bytes != 0) {
    std::cout << " dropped_bytes=" << info.dropped_bytes;
  }
  std::cout << "\n";
}

/// Inspects a checkpoint directory without opening it for writing: either a
/// single exploration checkpoint, or a parent holding several (a consensus
/// check keeps one `root<vec>` subdirectory per input vector; the scheduler
/// one `<job-key-hex>` subdirectory per job).
int cmd_checkpoint_info(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: wfregs_cli checkpoint-info <dir>\n";
    return kExitUsage;
  }
  const std::string dir = argv[2];
  const auto info = storage::FrontierCheckpoint::info(dir);
  if (info.present) {
    print_checkpoint_info(dir, info);
    return kExitOk;
  }
  std::vector<std::filesystem::path> subs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_directory()) subs.push_back(entry.path());
  }
  if (ec) {
    std::cerr << "cannot read " << dir << ": " << ec.message() << "\n";
    return kExitUsage;
  }
  std::sort(subs.begin(), subs.end());
  std::size_t found = 0;
  for (const auto& sub : subs) {
    const auto child = storage::FrontierCheckpoint::info(sub.string());
    if (!child.present) continue;
    ++found;
    print_checkpoint_info(sub.filename().string(), child);
  }
  if (found == 0) {
    std::cerr << dir << ": no checkpoint found\n";
    return kExitUsage;
  }
  return kExitOk;
}

int cmd_check(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: wfregs_cli check <tas|queue|faa>\n";
    return kExitUsage;
  }
  const auto impl = protocol_impl(argv[2]);
  if (!impl) {
    std::cerr << "unknown protocol " << argv[2] << " (want tas|queue|faa)\n";
    return kExitUsage;
  }
  return run_jobs(
      {{argv[2], service::print_job(make_consensus_job(impl))}});
}

}  // namespace

int main(int argc, char** argv) {
  for (bool more = true; more && argc >= 2;) {
    const std::string flag = argv[1];
    if (flag == "-j") {
      char* end = nullptr;
      const long n = argc >= 3 ? std::strtol(argv[2], &end, 10) : -1;
      if (argc < 3 || end == argv[2] || *end != '\0' || n < 0) {
        std::cerr << "error: -j requires a non-negative thread count\n";
        return kExitUsage;
      }
      g_threads = static_cast<int>(n);
      g_threads_set = true;
      argv[2] = argv[0];
      argc -= 2;
      argv += 2;
    } else if (flag == "--reduction") {
      const std::string mode = argc >= 3 ? argv[2] : "";
      if (mode == "none") {
        g_reduction = Reduction::kNone;
      } else if (mode == "sleep") {
        g_reduction = Reduction::kSleep;
      } else if (mode == "sleep+symmetry") {
        g_reduction = Reduction::kSleepSymmetry;
      } else {
        std::cerr
            << "error: --reduction wants none|sleep|sleep+symmetry\n";
        return kExitUsage;
      }
      g_reduction_set = true;
      argv[2] = argv[0];
      argc -= 2;
      argv += 2;
    } else if (flag == "--static-precheck") {
      g_precheck = true;
      argv[1] = argv[0];
      argc -= 1;
      argv += 1;
    } else if (flag == "--json") {
      g_json = true;
      argv[1] = argv[0];
      argc -= 1;
      argv += 1;
    } else if (flag == "--server") {
      if (argc < 3 || argv[2][0] == '\0') {
        std::cerr << "error: --server requires a socket path\n";
        return kExitUsage;
      }
      g_server = argv[2];
      argv[2] = argv[0];
      argc -= 2;
      argv += 2;
    } else if (flag == "--memory-budget") {
      const auto bytes =
          argc >= 3 ? parse_byte_size(argv[2]) : std::nullopt;
      if (!bytes) {
        std::cerr << "error: --memory-budget wants a size like 64M "
                     "(suffixes K, M, G)\n";
        return kExitUsage;
      }
      g_memory_budget = *bytes;
      g_storage_set = true;
      argv[2] = argv[0];
      argc -= 2;
      argv += 2;
    } else if (flag == "--checkpoint-dir") {
      if (argc < 3 || argv[2][0] == '\0') {
        std::cerr << "error: --checkpoint-dir requires a directory\n";
        return kExitUsage;
      }
      g_checkpoint_dir = argv[2];
      g_storage_set = true;
      argv[2] = argv[0];
      argc -= 2;
      argv += 2;
    } else {
      more = false;
    }
  }
  if (argc < 2) {
    std::cerr << "usage: wfregs_cli [-j N] [--reduction MODE] "
                 "[--static-precheck] [--json] [--server ENDPOINT] "
                 "[--memory-budget N[K|M|G]] [--checkpoint-dir DIR] "
                 "zoo|print|classify|oneuse|hierarchy|eliminate|make-job|"
                 "verify|submit|check|stats|shutdown|store-merge|"
                 "checkpoint-info ...\n";
    return kExitUsage;
  }
  const std::string cmd = argv[1];
  // zoo / print / classify / hierarchy run no exhaustive exploration, so
  // explorer knobs would be silently dead -- say so instead.
  if ((g_threads_set || g_reduction_set) &&
      (cmd == "zoo" || cmd == "print" || cmd == "classify" ||
       cmd == "hierarchy" || cmd == "stats" || cmd == "shutdown" ||
       cmd == "store-merge" || cmd == "checkpoint-info")) {
    std::cerr << "warning: " << (g_threads_set ? "-j" : "")
              << (g_threads_set && g_reduction_set ? " and " : "")
              << (g_reduction_set ? "--reduction" : "") << " ignored: '"
              << cmd << "' runs no exhaustive exploration\n";
  }
  // --json only changes verify/check verdict output (stats and shutdown
  // replies are JSON already); warn where it is dead.
  if (g_json && cmd != "verify" && cmd != "check" && cmd != "stats" &&
      cmd != "shutdown") {
    std::cerr << "warning: --json ignored: '" << cmd
              << "' has no verdict output\n";
  }
  if (!g_server.empty() && cmd != "verify" && cmd != "submit" &&
      cmd != "check" && cmd != "stats" && cmd != "shutdown") {
    std::cerr << "warning: --server ignored: '" << cmd
              << "' always runs locally\n";
  }
  // The out-of-core flags configure local exploration only: make-job does
  // not serialize them (execution parameter, not job identity) and with
  // --server the daemon's own storage configuration governs.
  if (g_storage_set) {
    const bool local_exploration =
        g_server.empty() && (cmd == "verify" || cmd == "check" ||
                             cmd == "oneuse" || cmd == "eliminate");
    if (!local_exploration) {
      std::cerr << "warning: --memory-budget/--checkpoint-dir ignored: "
                << (g_server.empty()
                        ? "'" + cmd + "' runs no local exploration\n"
                        : "the daemon's storage configuration applies\n");
    }
  }
  try {
    if (cmd == "zoo") return cmd_zoo(argc, argv);
    if (cmd == "make-job") return cmd_make_job(argc, argv);
    if (cmd == "verify") return cmd_verify(argc, argv);
    if (cmd == "submit") return cmd_submit(argc, argv);
    if (cmd == "check") return cmd_check(argc, argv);
    if (cmd == "store-merge") return cmd_store_merge(argc, argv);
    if (cmd == "checkpoint-info") return cmd_checkpoint_info(argc, argv);
    if (cmd == "stats" || cmd == "shutdown") {
      if (g_server.empty()) {
        std::cerr << "error: '" << cmd << "' needs --server <socket>\n";
        return kExitUsage;
      }
      service::Client client(g_server);
      std::cout << (cmd == "stats" ? client.stats() : client.shutdown())
                << "\n";
      return kExitOk;
    }
    if (cmd == "eliminate") {
      if (argc != 4) {
        std::cerr << "usage: wfregs_cli eliminate <tas|queue|faa> <file>\n";
        return kExitUsage;
      }
      return cmd_eliminate(argv[2], load_type(argv[3]));
    }
    if (argc != 3) {
      std::cerr << "usage: wfregs_cli " << cmd << " <file>\n";
      return kExitUsage;
    }
    const TypeSpec t = load_type(argv[2]);
    if (cmd == "print") return cmd_print(t);
    if (cmd == "classify") return cmd_classify(t);
    if (cmd == "oneuse") return cmd_oneuse(t);
    if (cmd == "hierarchy") return cmd_hierarchy(t);
    std::cerr << "unknown command: " << cmd << "\n";
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitUsage;
  }
}
