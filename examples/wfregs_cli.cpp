// wfregs_cli -- the library as a command-line tool.  Define a concurrent
// data type in the text format of wfregs/typesys/serialize.hpp and run the
// paper's machinery on it:
//
//   wfregs_cli zoo                         list built-in types
//   wfregs_cli zoo <name>                  print a built-in type definition
//   wfregs_cli print <file>                parse, validate and re-print
//   wfregs_cli classify <file>             triviality + Section 5 witnesses
//   wfregs_cli oneuse <file>               synthesize + verify a one-use bit
//   wfregs_cli hierarchy <file>            gather verified hierarchy evidence
//   wfregs_cli eliminate <tas|queue|faa> <file>
//                                          Theorem 5: strip the registers out
//                                          of a classical consensus protocol,
//                                          re-basing it on the file's type
//
// A leading `-j N` routes every exhaustive exploration through the parallel
// explorer on N worker threads (0 = hardware concurrency, 1 = sequential).
// A leading `--static-precheck` runs the wfregs-lint discipline passes on
// every implementation before exploring it, failing fast on violations.
// A leading `--reduction none|sleep|sleep+symmetry` applies partial-order /
// symmetry reduction to every exploration (see runtime/reduction.hpp);
// verdicts are unchanged, configuration counts shrink.  Commands that never
// explore (zoo, print, classify, hierarchy) warn when given -j or
// --reduction instead of silently ignoring them.
#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <string>

#include "wfregs/analysis/lint.hpp"
#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/core/oneuse_from_type.hpp"
#include "wfregs/core/register_elimination.hpp"
#include "wfregs/hierarchy/hierarchy.hpp"
#include "wfregs/runtime/verify.hpp"
#include "wfregs/typesys/serialize.hpp"
#include "wfregs/typesys/triviality.hpp"
#include "wfregs/typesys/type_zoo.hpp"

using namespace wfregs;

namespace {

/// Explorer thread count from the global -j flag (0 = hardware concurrency).
int g_threads = 0;
/// Whether -j was given at all (for the no-exploration diagnostic).
bool g_threads_set = false;
/// Whether --static-precheck was given.
bool g_precheck = false;
/// Reduction mode from the global --reduction flag.
Reduction g_reduction = Reduction::kNone;
/// Whether --reduction was given at all.
bool g_reduction_set = false;

VerifyOptions verify_options() {
  VerifyOptions options;
  options.threads = g_threads;
  options.reduction = g_reduction;
  if (g_precheck) options.static_precheck = analysis::static_precheck();
  return options;
}

const std::map<std::string, std::function<TypeSpec()>> kZoo{
    {"bit", [] { return zoo::bit_type(2); }},
    {"register4", [] { return zoo::register_type(4, 2); }},
    {"srsw_bit", [] { return zoo::srsw_bit_type(); }},
    {"one_use_bit", [] { return zoo::one_use_bit_type(); }},
    {"test_and_set", [] { return zoo::test_and_set_type(2); }},
    {"fetch_and_add", [] { return zoo::fetch_and_add_type(4, 2); }},
    {"cas", [] { return zoo::cas_type(2, 2); }},
    {"cas_old", [] { return zoo::cas_old_type(2, 2); }},
    {"sticky_bit", [] { return zoo::sticky_bit_type(2); }},
    {"queue", [] { return zoo::queue_type(2, 2, 2); }},
    {"stack", [] { return zoo::stack_type(2, 2, 2); }},
    {"snapshot", [] { return zoo::snapshot_type(2, 2); }},
    {"consensus", [] { return zoo::consensus_type(2); }},
    {"safe_bit", [] { return zoo::weak_bit_type(zoo::WeakBitKind::kSafe); }},
    {"regular_bit",
     [] { return zoo::weak_bit_type(zoo::WeakBitKind::kRegular); }},
    {"port_flag", [] { return zoo::port_flag_type(2); }},
    {"mod_counter", [] { return zoo::mod_counter_type(3, 2); }},
    {"trivial_toggle", [] { return zoo::trivial_toggle_type(2); }},
    {"nondet_coin", [] { return zoo::nondet_coin_type(2); }},
};

int cmd_zoo(int argc, char** argv) {
  if (argc < 3) {
    for (const auto& [name, make] : kZoo) std::cout << name << "\n";
    return EXIT_SUCCESS;
  }
  const auto it = kZoo.find(argv[2]);
  if (it == kZoo.end()) {
    std::cerr << "unknown zoo type: " << argv[2] << "\n";
    return EXIT_FAILURE;
  }
  std::cout << print_type(it->second());
  return EXIT_SUCCESS;
}

int cmd_print(const TypeSpec& t) {
  std::cout << print_type(t);
  std::cout << "# deterministic: " << (t.is_deterministic() ? "yes" : "no")
            << ", oblivious: " << (t.is_oblivious() ? "yes" : "no") << "\n";
  return EXIT_SUCCESS;
}

int cmd_classify(const TypeSpec& t) {
  std::cout << "type:          " << t.name() << "\n"
            << "deterministic: " << (t.is_deterministic() ? "yes" : "no")
            << "\n"
            << "oblivious:     " << (t.is_oblivious() ? "yes" : "no") << "\n";
  if (!t.is_deterministic()) {
    std::cout << "the Section 5 deciders require determinism; stopping\n";
    return EXIT_SUCCESS;
  }
  std::cout << "trivial (5.2): " << (is_trivial_general(t) ? "yes" : "no")
            << "\n";
  if (t.is_oblivious()) {
    if (const auto w = find_oblivious_witness(t)) {
      std::cout << "5.1 witness:   init " << t.state_name(w->q)
                << ", write = " << t.invocation_name(w->i_prime)
                << ", read = " << t.invocation_name(w->i) << " ("
                << t.response_name(w->r_q) << " vs "
                << t.response_name(w->r_p) << ")\n";
    }
  }
  if (const auto pair = find_nontrivial_pair(t)) {
    std::cout << "5.2 pair:      init " << t.state_name(pair->q)
              << ", writer port " << pair->writer_port << " does "
              << t.invocation_name(pair->write_inv) << "; reader port "
              << pair->reader_port << " runs";
    for (const InvId i : pair->read_seq) {
      std::cout << " " << t.invocation_name(i);
    }
    std::cout << " (" << t.response_name(pair->unwritten_resp) << " vs "
              << t.response_name(pair->written_resp) << ")\n";
  }
  return EXIT_SUCCESS;
}

int cmd_oneuse(const TypeSpec& t) {
  const auto impl = core::oneuse_from_deterministic(t);
  if (!impl) {
    std::cout << t.name()
              << " is trivial: it cannot implement one-use bits\n";
    return EXIT_FAILURE;
  }
  const zoo::OneUseBitLayout lay;
  const auto r = verify_linearizable(impl, {{lay.read()}, {lay.write()}},
                                     verify_options());
  std::cout << "synthesized " << impl->name() << "; exhaustive check: "
            << (r.ok ? "LINEARIZABLE and WAIT-FREE" : r.detail) << " ("
            << r.stats.configs << " configurations)\n";
  return r.ok ? EXIT_SUCCESS : EXIT_FAILURE;
}

int cmd_hierarchy(const TypeSpec& t) {
  hierarchy::ClassifyOptions options;
  options.h1_probe_depth = 2;
  const auto row = hierarchy::classify_type(t, options);
  std::cout << hierarchy::to_table({row});
  return EXIT_SUCCESS;
}

int cmd_eliminate(const std::string& protocol, const TypeSpec& substrate) {
  std::shared_ptr<const Implementation> impl;
  if (protocol == "tas") {
    impl = consensus::from_test_and_set();
  } else if (protocol == "queue") {
    impl = consensus::from_queue();
  } else if (protocol == "faa") {
    impl = consensus::from_fetch_and_add();
  } else {
    std::cerr << "unknown protocol " << protocol << " (want tas|queue|faa)\n";
    return EXIT_FAILURE;
  }
  core::EliminationOptions options;
  const TypeSpec sub = substrate;
  options.oneuse_factory = [sub] {
    return core::oneuse_from_deterministic(sub);
  };
  const auto report = core::eliminate_registers(impl, options);
  if (!report.ok) {
    std::cerr << "transform failed: " << report.detail << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "D = " << report.bounds.depth << ", bits replaced = "
            << report.bits_replaced << ", one-use bits = "
            << report.oneuse_bits_created << "\nresult base objects:\n";
  for (const auto& [name, count] : report.census_after) {
    std::cout << "  " << count << " x " << name << "\n";
  }
  const auto check =
      consensus::check_consensus(report.result, verify_options());
  std::cout << "register-free protocol "
            << (check.solves ? "SOLVES" : "FAILS") << " consensus ("
            << check.configs << " configurations)\n";
  return check.solves ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace

int main(int argc, char** argv) {
  for (bool more = true; more && argc >= 2;) {
    const std::string flag = argv[1];
    if (flag == "-j") {
      char* end = nullptr;
      const long n = argc >= 3 ? std::strtol(argv[2], &end, 10) : -1;
      if (argc < 3 || end == argv[2] || *end != '\0' || n < 0) {
        std::cerr << "error: -j requires a non-negative thread count\n";
        return EXIT_FAILURE;
      }
      g_threads = static_cast<int>(n);
      g_threads_set = true;
      argv[2] = argv[0];
      argc -= 2;
      argv += 2;
    } else if (flag == "--reduction") {
      const std::string mode = argc >= 3 ? argv[2] : "";
      if (mode == "none") {
        g_reduction = Reduction::kNone;
      } else if (mode == "sleep") {
        g_reduction = Reduction::kSleep;
      } else if (mode == "sleep+symmetry") {
        g_reduction = Reduction::kSleepSymmetry;
      } else {
        std::cerr
            << "error: --reduction wants none|sleep|sleep+symmetry\n";
        return EXIT_FAILURE;
      }
      g_reduction_set = true;
      argv[2] = argv[0];
      argc -= 2;
      argv += 2;
    } else if (flag == "--static-precheck") {
      g_precheck = true;
      argv[1] = argv[0];
      argc -= 1;
      argv += 1;
    } else {
      more = false;
    }
  }
  if (argc < 2) {
    std::cerr << "usage: wfregs_cli [-j N] [--reduction MODE] "
                 "[--static-precheck] "
                 "zoo|print|classify|oneuse|hierarchy|eliminate ...\n";
    return EXIT_FAILURE;
  }
  const std::string cmd = argv[1];
  // zoo / print / classify / hierarchy run no exhaustive exploration, so
  // explorer knobs would be silently dead -- say so instead.
  if ((g_threads_set || g_reduction_set) &&
      (cmd == "zoo" || cmd == "print" || cmd == "classify" ||
       cmd == "hierarchy")) {
    std::cerr << "warning: " << (g_threads_set ? "-j" : "")
              << (g_threads_set && g_reduction_set ? " and " : "")
              << (g_reduction_set ? "--reduction" : "") << " ignored: '"
              << cmd << "' runs no exhaustive exploration\n";
  }
  try {
    if (cmd == "zoo") return cmd_zoo(argc, argv);
    if (cmd == "eliminate") {
      if (argc != 4) {
        std::cerr << "usage: wfregs_cli eliminate <tas|queue|faa> <file>\n";
        return EXIT_FAILURE;
      }
      return cmd_eliminate(argv[2], load_type(argv[3]));
    }
    if (argc != 3) {
      std::cerr << "usage: wfregs_cli " << cmd << " <file>\n";
      return EXIT_FAILURE;
    }
    const TypeSpec t = load_type(argv[2]);
    if (cmd == "print") return cmd_print(t);
    if (cmd == "classify") return cmd_classify(t);
    if (cmd == "oneuse") return cmd_oneuse(t);
    if (cmd == "hierarchy") return cmd_hierarchy(t);
    std::cerr << "unknown command: " << cmd << "\n";
    return EXIT_FAILURE;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
