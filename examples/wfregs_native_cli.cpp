// wfregs_native -- the native conformance lab as a command-line tool.  Run
// the paper's constructions as real concurrent code on std::thread +
// std::atomic and check every recorded history against the model oracles:
//
//   wfregs_native --list                   list workloads
//   wfregs_native <workload> [flags]       stress one workload
//   wfregs_native all [flags]              stress every conforming workload
//
// Workloads: chain | oneuse-array | simpson | snapshot | shift-register,
// plus torn-register, a deliberately broken control that MUST fail (and
// therefore exits 1: useful for exercising the failure path end to end).
//
// Flags:
//   --threads N     threads = interface ports (default 2; simpson and
//                   oneuse-array are inherently 2-threaded)
//   --ops K         interface ops per thread per round (default 4)
//   --rounds R      rounds, each from fresh object state (default 200)
//   --seed S        base seed; round r runs with a seed derived from (S, r)
//   --det           token-stepped deterministic schedules (reproducible)
//   --yield P       free-running mode: yield before ~1/P events (default 3)
//   --replay S      run exactly ONE deterministic round with round seed S --
//                   the seed printed by a failure report -- and show its
//                   history and verdict
//
// Exit codes: 0 = all histories passed, 1 = a history failed an oracle,
// 2 = usage error.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "wfregs/native/workloads.hpp"

using namespace wfregs;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitFail = 1;
constexpr int kExitUsage = 2;

void usage() {
  std::cerr << "usage: wfregs_native --list\n"
            << "       wfregs_native <workload>|all [--threads N] [--ops K]"
               " [--rounds R]\n"
            << "                     [--seed S] [--det] [--yield P]"
               " [--replay S]\n";
}

struct Args {
  std::string workload;
  int threads = 2;
  native::ConformanceOptions opts;
  std::optional<std::uint64_t> replay;
};

int run_one(const std::string& name, const Args& a) {
  const native::Workload w =
      native::make_workload(name, a.threads, a.opts.ops_per_thread);
  native::ConformanceReport report;
  if (a.replay) {
    report = native::replay_round(w, a.opts, *a.replay);
  } else {
    report = native::run_conformance(w, a.opts);
  }
  std::cout << "workload=" << report.workload << " threads="
            << report.threads << " ops/thread=" << report.ops_per_thread
            << " mode="
            << (report.deterministic ? "deterministic" : "free-running")
            << " rounds=" << report.rounds << " histories="
            << report.histories_checked << " ops=" << report.ops
            << " base-accesses=" << report.base_accesses << " : "
            << (report.ok() ? "PASS" : "FAIL") << "\n";
  if (!report.ok()) {
    std::cout << native::describe_failure(report) << "\n";
    return kExitFail;
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    usage();
    return kExitUsage;
  }
  if (args[0] == "--list") {
    for (const auto& name : native::workload_names()) {
      std::cout << name << "\n";
    }
    return kExitOk;
  }
  Args a;
  a.workload = args[0];
  a.opts.rounds = 200;
  try {
    for (std::size_t i = 1; i < args.size(); ++i) {
      const auto need_value = [&](const char* flag) -> std::string {
        if (i + 1 >= args.size()) {
          throw std::invalid_argument(std::string(flag) +
                                      " requires a value");
        }
        return args[++i];
      };
      if (args[i] == "--threads") {
        a.threads = std::stoi(need_value("--threads"));
      } else if (args[i] == "--ops") {
        a.opts.ops_per_thread = std::stoi(need_value("--ops"));
      } else if (args[i] == "--rounds") {
        a.opts.rounds = std::stoi(need_value("--rounds"));
      } else if (args[i] == "--seed") {
        a.opts.seed = std::stoull(need_value("--seed"));
      } else if (args[i] == "--det") {
        a.opts.deterministic = true;
      } else if (args[i] == "--yield") {
        a.opts.yield_period = std::stoi(need_value("--yield"));
      } else if (args[i] == "--replay") {
        a.replay = std::stoull(need_value("--replay"));
      } else {
        std::cerr << "unknown flag: " << args[i] << "\n";
        usage();
        return kExitUsage;
      }
    }
    if (a.workload == "all") {
      int rc = kExitOk;
      for (const auto& name : native::workload_names()) {
        if (name == "torn-register") continue;  // the control must fail
        const int one = run_one(name, a);
        if (one != kExitOk) rc = one;
      }
      return rc;
    }
    return run_one(a.workload, a);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage();
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitFail;
  }
}
