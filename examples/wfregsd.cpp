// wfregsd -- the verification daemon.  Listens on a Unix-domain socket for
// framed requests (see wfregs/service/protocol.hpp), schedules submitted
// jobs on a worker pool, and answers repeated submissions from the
// persistent verdict store.
//
//   wfregsd --socket /tmp/wfregsd.sock [--store verdicts.log]
//           [--workers N] [--explore-threads N] [--queue-capacity N]
//           [--deadline-ms N]
//
// SIGINT / SIGTERM (or a client shutdown request) drain the scheduler and
// exit cleanly; the final metrics snapshot goes to stdout as JSON.
//
// Exit codes follow the CLI convention: 0 = clean shutdown, 2 = usage or
// startup error.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "wfregs/service/daemon.hpp"
#include "wfregs/service/metrics.hpp"

namespace {

wfregs::service::Daemon* g_daemon = nullptr;

void on_signal(int) {
  // request_stop() is a single atomic store: safe from a signal handler.
  if (g_daemon != nullptr) g_daemon->request_stop();
}

bool parse_int_flag(const std::string& value, long min, long* out) {
  char* end = nullptr;
  const long n = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || n < min) return false;
  *out = n;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  wfregs::service::DaemonOptions options;
  for (int k = 1; k < argc; ++k) {
    const std::string flag = argv[k];
    const std::string value = k + 1 < argc ? argv[k + 1] : "";
    long n = 0;
    if (flag == "--socket" && !value.empty()) {
      options.socket_path = value;
      ++k;
    } else if (flag == "--store" && !value.empty()) {
      options.scheduler.store_path = value;
      ++k;
    } else if (flag == "--workers" && parse_int_flag(value, 1, &n)) {
      options.scheduler.workers = static_cast<int>(n);
      ++k;
    } else if (flag == "--explore-threads" && parse_int_flag(value, 0, &n)) {
      options.scheduler.explore_threads = static_cast<int>(n);
      ++k;
    } else if (flag == "--queue-capacity" && parse_int_flag(value, 1, &n)) {
      options.scheduler.queue_capacity = static_cast<std::size_t>(n);
      ++k;
    } else if (flag == "--deadline-ms" && parse_int_flag(value, 0, &n)) {
      options.scheduler.default_deadline = std::chrono::milliseconds(n);
      ++k;
    } else {
      std::cerr << "usage: wfregsd --socket <path> [--store <path>] "
                   "[--workers N] [--explore-threads N] "
                   "[--queue-capacity N] [--deadline-ms N]\n";
      return 2;
    }
  }
  if (options.socket_path.empty()) {
    std::cerr << "error: --socket is required\n";
    return 2;
  }
  try {
    wfregs::service::Daemon daemon(std::move(options));
    g_daemon = &daemon;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::cerr << "wfregsd: listening on " << daemon.socket_path() << "\n";
    const std::uint64_t served = daemon.run();
    g_daemon = nullptr;
    std::cout << wfregs::service::metrics_to_json(daemon.scheduler().metrics())
              << "\n";
    std::cerr << "wfregsd: served " << served << " requests, bye\n";
  } catch (const std::exception& e) {
    std::cerr << "wfregsd: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
