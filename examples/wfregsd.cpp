// wfregsd -- the verification daemon, in one of three roles:
//
//   daemon (default): serve framed requests on a Unix socket and/or a TCP
//   endpoint, scheduling jobs on a local worker pool.
//
//     wfregsd --socket /tmp/wfregsd.sock [--listen-tcp 7461]
//             [--store verdicts.log] [--workers N] [--explore-threads N]
//             [--queue-capacity N] [--deadline-ms N]
//
//   coordinator: the fleet gateway -- shard submitted jobs across
//   registered workers, steal work between queues, enforce bounded
//   admission, and merge every worker's verdicts into the local store.
//
//     wfregsd --coordinator [--socket <path>] [--listen-tcp <port>]
//             [--store verdicts.log] [--admission N] [--window N]
//
//   worker: connect to a coordinator, run assigned jobs on a local
//   scheduler and ship results, metrics and record-log tails back.
//
//     wfregsd --worker --connect tcp:127.0.0.1:7461 [--name w1]
//             [--store worker.log] [--workers N] [--explore-threads N]
//             [--queue-capacity N] [--deadline-ms N] [--sync-ms N]
//
// SIGINT / SIGTERM (or a client shutdown request) drain and exit cleanly;
// the final stats snapshot goes to stdout as JSON.
//
// Exit codes follow the CLI convention: 0 = clean shutdown, 2 = usage or
// startup error.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "wfregs/service/daemon.hpp"
#include "wfregs/service/fleet.hpp"
#include "wfregs/service/metrics.hpp"

namespace {

wfregs::service::Daemon* g_daemon = nullptr;
wfregs::service::Coordinator* g_coordinator = nullptr;
wfregs::service::Worker* g_worker = nullptr;

void on_signal(int) {
  // request_stop() is a single atomic store: safe from a signal handler.
  if (g_daemon != nullptr) g_daemon->request_stop();
  if (g_coordinator != nullptr) g_coordinator->request_stop();
  if (g_worker != nullptr) g_worker->request_stop();
}

bool parse_int_flag(const std::string& value, long min, long* out) {
  char* end = nullptr;
  const long n = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || n < min) return false;
  *out = n;
  return true;
}

/// --listen-tcp accepts "7461", "tcp:7461" or "tcp:host:port"; normalize to
/// an endpoint spec.
std::string normalize_tcp(const std::string& value) {
  if (value.rfind("tcp:", 0) == 0) return value;
  return "tcp:" + value;
}

int usage() {
  std::cerr
      << "usage: wfregsd [--socket <path>] [--listen-tcp <port>] "
         "[--store <path>]\n"
         "               [--workers N] [--explore-threads N] "
         "[--queue-capacity N] [--deadline-ms N]\n"
         "       wfregsd --coordinator [--socket <path>] "
         "[--listen-tcp <port>] [--store <path>]\n"
         "               [--admission N] [--window N]\n"
         "       wfregsd --worker --connect <endpoint> [--name <name>] "
         "[--store <path>]\n"
         "               [--workers N] [--sync-ms N] ...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kDaemon, kCoordinator, kWorker };
  Mode mode = Mode::kDaemon;
  std::string socket_path;
  std::string listen_tcp;
  std::string store_path;
  std::string connect;
  std::string name;
  long admission = 256;
  long window = 2;
  long sync_ms = 200;
  wfregs::service::SchedulerOptions sched;

  for (int k = 1; k < argc; ++k) {
    const std::string flag = argv[k];
    const std::string value = k + 1 < argc ? argv[k + 1] : "";
    long n = 0;
    if (flag == "--coordinator") {
      mode = Mode::kCoordinator;
    } else if (flag == "--worker") {
      mode = Mode::kWorker;
    } else if (flag == "--socket" && !value.empty()) {
      socket_path = value;
      ++k;
    } else if (flag == "--listen-tcp" && !value.empty()) {
      listen_tcp = normalize_tcp(value);
      ++k;
    } else if (flag == "--connect" && !value.empty()) {
      connect = value;
      ++k;
    } else if (flag == "--name" && !value.empty()) {
      name = value;
      ++k;
    } else if (flag == "--store" && !value.empty()) {
      store_path = value;
      ++k;
    } else if (flag == "--workers" && parse_int_flag(value, 1, &n)) {
      sched.workers = static_cast<int>(n);
      ++k;
    } else if (flag == "--explore-threads" && parse_int_flag(value, 0, &n)) {
      sched.explore_threads = static_cast<int>(n);
      ++k;
    } else if (flag == "--queue-capacity" && parse_int_flag(value, 1, &n)) {
      sched.queue_capacity = static_cast<std::size_t>(n);
      ++k;
    } else if (flag == "--deadline-ms" && parse_int_flag(value, 0, &n)) {
      sched.default_deadline = std::chrono::milliseconds(n);
      ++k;
    } else if (flag == "--admission" && parse_int_flag(value, 1, &n)) {
      admission = n;
      ++k;
    } else if (flag == "--window" && parse_int_flag(value, 1, &n)) {
      window = n;
      ++k;
    } else if (flag == "--sync-ms" && parse_int_flag(value, 1, &n)) {
      sync_ms = n;
      ++k;
    } else {
      return usage();
    }
  }

  try {
    if (mode == Mode::kWorker) {
      if (connect.empty()) {
        std::cerr << "error: --worker requires --connect\n";
        return 2;
      }
      wfregs::service::WorkerOptions options;
      options.connect = connect;
      options.name = name;
      options.scheduler = sched;
      options.scheduler.store_path = store_path;
      options.sync_interval = std::chrono::milliseconds(sync_ms);
      wfregs::service::Worker worker(std::move(options));
      g_worker = &worker;
      std::signal(SIGINT, on_signal);
      std::signal(SIGTERM, on_signal);
      std::cerr << "wfregsd: worker connecting to " << connect << "\n";
      const std::uint64_t sent = worker.run();
      g_worker = nullptr;
      std::cout << wfregs::service::metrics_to_json(
                       worker.scheduler().metrics())
                << "\n";
      std::cerr << "wfregsd: worker sent " << sent << " results, bye\n";
      return 0;
    }

    if (mode == Mode::kCoordinator) {
      if (socket_path.empty() && listen_tcp.empty()) {
        std::cerr << "error: --coordinator requires --socket or "
                     "--listen-tcp\n";
        return 2;
      }
      wfregs::service::CoordinatorOptions options;
      options.listen = socket_path;
      options.listen_tcp = listen_tcp;
      options.store_path = store_path;
      options.admission_capacity = static_cast<std::size_t>(admission);
      options.max_inflight_per_worker = static_cast<std::size_t>(window);
      wfregs::service::Coordinator coordinator(std::move(options));
      g_coordinator = &coordinator;
      std::signal(SIGINT, on_signal);
      std::signal(SIGTERM, on_signal);
      std::cerr << "wfregsd: coordinator listening";
      if (!socket_path.empty()) std::cerr << " on " << socket_path;
      if (coordinator.tcp_port() != 0) {
        std::cerr << " tcp:" << coordinator.tcp_port();
      }
      std::cerr << "\n";
      const std::uint64_t served = coordinator.run();
      g_coordinator = nullptr;
      std::cout << wfregs::service::fleet_metrics_to_json(
                       coordinator.metrics(), coordinator.fleet_totals())
                << "\n";
      std::cerr << "wfregsd: coordinator served " << served
                << " requests, bye\n";
      return 0;
    }

    if (socket_path.empty() && listen_tcp.empty()) {
      std::cerr << "error: --socket or --listen-tcp is required\n";
      return 2;
    }
    wfregs::service::DaemonOptions options;
    options.socket_path = socket_path;
    options.tcp = listen_tcp;
    options.scheduler = sched;
    options.scheduler.store_path = store_path;
    wfregs::service::Daemon daemon(std::move(options));
    g_daemon = &daemon;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::cerr << "wfregsd: listening";
    if (!socket_path.empty()) std::cerr << " on " << daemon.socket_path();
    if (daemon.tcp_port() != 0) std::cerr << " tcp:" << daemon.tcp_port();
    std::cerr << "\n";
    const std::uint64_t served = daemon.run();
    g_daemon = nullptr;
    std::cout << wfregs::service::metrics_to_json(daemon.scheduler().metrics())
              << "\n";
    std::cerr << "wfregsd: served " << served << " requests, bye\n";
  } catch (const std::exception& e) {
    std::cerr << "wfregsd: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
