// Surveys the wait-free hierarchies (Jayanti 1993; Section 2.3 of the
// paper) over the type zoo, printing verified evidence for each type:
//
//   * h1(k): bounded-exhaustive synthesis verdict for ONE object with NO
//     registers (=1* means provably unsolvable at the probed depth);
//   * h1^r>=2: a model-checked protocol from one object plus registers;
//   * hm>=2:  the same protocol after Theorem 5 register elimination --
//     objects of the type only.
//
// The table shows the paper's punchline: the gap between h_1 and h_1^r is
// real (test&set, fetch&add, queue), but h_m never disagrees with h_m^r on
// deterministic types.
//
//   $ ./hierarchy_survey [--probe-depth k]
#include <cstdlib>
#include <iostream>
#include <string>

#include "wfregs/hierarchy/hierarchy.hpp"

int main(int argc, char** argv) {
  wfregs::hierarchy::ClassifyOptions options;
  options.h1_probe_depth = 2;
  for (int a = 1; a + 1 < argc; ++a) {
    if (std::string(argv[a]) == "--probe-depth") {
      options.h1_probe_depth = std::atoi(argv[a + 1]);
    }
  }
  std::cout << "classifying the zoo (h1 probe depth "
            << options.h1_probe_depth << ") ...\n\n";
  const auto rows = wfregs::hierarchy::survey_zoo(options);
  std::cout << wfregs::hierarchy::to_table(rows);

  bool all_consistent = true;
  for (const auto& row : rows) all_consistent &= row.theorem5_consistent;
  std::cout << "\nTheorem 5 (h_m = h_m^r on deterministic types): "
            << (all_consistent ? "consistent with every row"
                               : "INCONSISTENCY FOUND")
            << "\n";
  return all_consistent ? EXIT_SUCCESS : EXIT_FAILURE;
}
