// Quickstart: define your own concurrent data type as a transition table,
// let the library classify it (Section 5 of Bazzi-Neiger-Peterson, PODC'94),
// synthesize a one-use bit from it, and verify the synthesized
// implementation by exhaustive model checking.
//
//   $ ./quickstart
#include <cstdlib>
#include <iostream>

#include "wfregs/core/oneuse_from_type.hpp"
#include "wfregs/runtime/verify.hpp"
#include "wfregs/typesys/triviality.hpp"
#include "wfregs/typesys/type_zoo.hpp"

using namespace wfregs;

namespace {

// A "turnstile": click() advances through 3 positions and reports the NEW
// position.  Deterministic, oblivious, and -- as the library will confirm --
// non-trivial, so it can implement one-use bits.
TypeSpec make_turnstile() {
  TypeSpec t("turnstile", /*ports=*/2, /*states=*/3, /*invocations=*/1,
             /*responses=*/3);
  t.name_invocation(0, "click");
  for (StateId q = 0; q < 3; ++q) {
    const StateId next = (q + 1) % 3;
    t.name_state(q, "pos" + std::to_string(q));
    t.name_response(q, std::to_string(q));
    t.add_oblivious(q, 0, next, /*resp=*/next);
  }
  t.validate();
  return t;
}

}  // namespace

int main() {
  const TypeSpec turnstile = make_turnstile();
  std::cout << turnstile.to_string() << "\n";

  // --- classification (Section 5.1 / 5.2) ----------------------------------
  std::cout << "deterministic: " << std::boolalpha
            << turnstile.is_deterministic() << "\n"
            << "oblivious:     " << turnstile.is_oblivious() << "\n"
            << "trivial:       " << is_trivial_general(turnstile) << "\n\n";

  const auto witness = find_oblivious_witness(turnstile);
  if (!witness) {
    std::cerr << "unexpectedly trivial -- nothing to build\n";
    return EXIT_FAILURE;
  }
  std::cout << "Section 5.1 witness: from state "
            << turnstile.state_name(witness->q) << ", invocation "
            << turnstile.invocation_name(witness->i_prime)
            << " moves to " << turnstile.state_name(witness->p)
            << "; invocation " << turnstile.invocation_name(witness->i)
            << " then answers "
            << turnstile.response_name(witness->r_q) << " vs "
            << turnstile.response_name(witness->r_p) << "\n\n";

  // --- synthesis: a one-use bit from ONE turnstile --------------------------
  const auto oneuse = core::oneuse_from_oblivious(turnstile);
  std::cout << "synthesized: " << oneuse->name() << " using "
            << oneuse->flattened_base_count() << " turnstile object(s)\n";

  // --- verification: every interleaving of a read racing a write ------------
  const zoo::OneUseBitLayout lay;
  const auto result =
      verify_linearizable(oneuse, {{lay.read()}, {lay.write()}});
  std::cout << "exhaustive verification: "
            << (result.ok ? "LINEARIZABLE and WAIT-FREE" : result.detail)
            << " (" << result.stats.configs << " configurations, depth "
            << result.stats.depth << ")\n";
  return result.ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
