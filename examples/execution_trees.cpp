// The Section 4.2 execution trees, made visible: for each consensus
// protocol in the zoo, exhaustively explore all 2^n trees, report the depth
// D and the per-object access bounds, and run the FLP/Herlihy valency
// analysis (bivalent / univalent / critical configuration counts) on the
// mixed-input tree.
//
//   $ ./execution_trees [--dot out.dot]
//
// With --dot, additionally writes the test&set protocol's mixed-input
// execution tree as a Graphviz file, nodes colored by valence (gold =
// bivalent) -- the FLP picture, drawn by the machine.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "wfregs/consensus/check.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/consensus/valency.hpp"
#include "wfregs/core/access_bounds.hpp"
#include "wfregs/runtime/dot_export.hpp"

using namespace wfregs;

int main(int argc, char** argv) {
  std::string dot_path;
  for (int a = 1; a + 1 < argc; ++a) {
    if (std::string(argv[a]) == "--dot") dot_path = argv[a + 1];
  }
  if (!dot_path.empty()) {
    const Engine root{consensus::consensus_scenario(
        consensus::from_test_and_set(), {0, 1})};
    DotOptions options;
    options.color_by_valence = true;
    std::ofstream out(dot_path);
    out << export_dot(root, options);
    std::cout << "wrote " << dot_path << " (render with: dot -Tsvg "
              << dot_path << " -o tree.svg)\n\n";
  }
  struct Entry {
    const char* label;
    std::shared_ptr<const Implementation> impl;
  };
  const std::vector<Entry> protocols{
      {"test&set + 2 bits (n=2)", consensus::from_test_and_set()},
      {"queue + 2 bits (n=2)", consensus::from_queue()},
      {"fetch&add + 2 bits (n=2)", consensus::from_fetch_and_add()},
      {"cas alone (n=2)", consensus::from_cas(2)},
      {"cas alone (n=3)", consensus::from_cas(3)},
      {"sticky bit alone (n=3)", consensus::from_sticky_bit(3)},
      {"cas-ids + MRSW registers (n=3)", consensus::from_cas_ids(3)},
      {"registers only (broken, n=2)",
       consensus::registers_only_attempt(2)},
  };

  for (const auto& entry : protocols) {
    std::cout << "== " << entry.label << " ==\n";
    const auto bounds = core::compute_access_bounds(entry.impl);
    std::cout << "  solves consensus: " << (bounds.solves ? "yes" : "NO")
              << (bounds.solves ? "" : "  (" + bounds.detail + ")") << "\n"
              << "  wait-free:        " << (bounds.wait_free ? "yes" : "NO")
              << "\n"
              << "  depth D:          " << bounds.depth << "\n"
              << "  configurations:   " << bounds.configs << "\n";
    for (const auto& b : bounds.per_object) {
      std::cout << "    " << b.type_name << " accessed <= "
                << b.max_accesses << " times\n";
    }

    // Valency analysis of the mixed-input tree (inputs 0 and 1).
    const int n = entry.impl->iface().ports();
    std::vector<int> inputs(static_cast<std::size_t>(n), 1);
    inputs[0] = 0;
    const Engine root{consensus::consensus_scenario(entry.impl, inputs)};
    const auto valency = consensus::valency_analysis(root);
    std::cout << "  valency (inputs 0,1,...): " << valency.bivalent
              << " bivalent / " << valency.zero_valent << " zero-valent / "
              << valency.one_valent << " one-valent, " << valency.critical
              << " critical";
    if (!valency.critical_object_type.empty()) {
      std::cout << " (deciding object: " << valency.critical_object_type
                << ")";
    }
    if (!valency.agreement_holds) std::cout << "  [AGREEMENT VIOLATED]";
    std::cout << "\n\n";
  }
  return EXIT_SUCCESS;
}
