// wfregs_lint -- the static discipline checker as a command-line tool.
//
//   wfregs_lint chain                lint the composed Section 4.1 register
//   wfregs_lint oneuse-array         lint the Section 4.3 array bit
//   wfregs_lint protocols            lint every bundled consensus protocol
//   wfregs_lint eliminate <tas|queue|faa>
//                                    lint the Theorem 5 pipeline stages and
//                                    cross-check static vs dynamic bounds
//   wfregs_lint type <zoo-name>      Section 2.1 table lints for one type
//   wfregs_lint consensus <zoo-name|all>
//                                    static consensus-power classification:
//                                    bounds + certificates, every
//                                    certificate re-validated by the
//                                    independent checker and the bounds
//                                    cross-checked against the known
//                                    (model-checked) answers
//   wfregs_lint all                  everything above (except eliminate's
//                                    slower queue/faa variants)
//
// Exit status is nonzero when any lint ERROR was reported (warnings pass),
// any certificate fails its checker, or any static bound contradicts the
// known answer.  `-v` prints the full report (diagnostics plus static
// bounds) even for clean implementations.
#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "wfregs/analysis/consensus_power.hpp"
#include "wfregs/analysis/lint.hpp"
#include "wfregs/consensus/protocols.hpp"
#include "wfregs/core/access_bounds.hpp"
#include "wfregs/core/bounded_register.hpp"
#include "wfregs/core/register_elimination.hpp"
#include "wfregs/registers/chain.hpp"
#include "wfregs/typesys/type_zoo.hpp"

using namespace wfregs;

namespace {

bool g_verbose = false;
int g_errors = 0;

/// Lints one implementation and prints a one-line verdict (or the full
/// report when verbose / dirty).
analysis::LintReport lint_one(const Implementation& impl) {
  const auto report = analysis::lint(impl);
  std::cout << impl.name() << ": " << report.error_count() << " error(s), "
            << report.warning_count() << " warning(s)\n";
  if (g_verbose || !report.ok()) std::cout << report.to_string();
  g_errors += static_cast<int>(report.error_count());
  return report;
}

int cmd_chain() {
  registers::ChainOptions options;
  options.mrmw_max_writes = 2;
  options.mrsw_max_writes = 2;
  lint_one(*registers::full_chain_register(2, 2, 0, options));
  options.bits_at_bottom = false;
  lint_one(*registers::full_chain_register(2, 3, 1, options));
  return EXIT_SUCCESS;
}

int cmd_oneuse_array() {
  lint_one(*core::bounded_bit_from_oneuse(1, 1, 0));
  lint_one(*core::bounded_bit_from_oneuse(2, 3, 1));
  lint_one(*core::bounded_bit_from_oneuse(3, 2, 0));
  return EXIT_SUCCESS;
}

int cmd_protocols() {
  lint_one(*consensus::from_test_and_set());
  lint_one(*consensus::from_queue());
  lint_one(*consensus::from_fetch_and_add());
  lint_one(*consensus::from_cas(2));
  lint_one(*consensus::from_cas(3));
  lint_one(*consensus::from_sticky_bit(3));
  lint_one(*consensus::from_consensus_object(3));
  lint_one(*consensus::from_cas_ids(2));
  lint_one(*consensus::from_cas_ids(3));
  lint_one(*consensus::from_shift_register(2, 2));
  lint_one(*consensus::from_shift_register(3));
  lint_one(*consensus::registers_only_attempt(2));
  return EXIT_SUCCESS;
}

int cmd_eliminate(const std::string& protocol) {
  std::shared_ptr<const Implementation> impl;
  if (protocol == "tas") {
    impl = consensus::from_test_and_set();
  } else if (protocol == "queue") {
    impl = consensus::from_queue();
  } else if (protocol == "faa") {
    impl = consensus::from_fetch_and_add();
  } else {
    std::cerr << "unknown protocol " << protocol << " (want tas|queue|faa)\n";
    return EXIT_FAILURE;
  }
  lint_one(*impl);
  core::EliminationOptions options;  // no substrate: keep base one-use bits
  const auto report = core::eliminate_registers(impl, options);
  if (!report.ok) {
    std::cerr << "elimination failed: " << report.detail << "\n";
    return EXIT_FAILURE;
  }
  const auto bits = lint_one(*report.bits_stage);
  lint_one(*report.result);

  // Cross-check: the static per-object bounds of the bits stage must
  // dominate the exact dynamic bounds the pipeline measured on it.
  const auto cross = analysis::check_bound_dominance(bits, report.bounds);
  std::cout << "static-vs-dynamic bound cross-check on "
            << report.bits_stage->name() << ": "
            << (cross.empty() ? "static dominates dynamic"
                              : "DOMINANCE VIOLATED")
            << " (" << report.bounds.per_object.size() << " base objects)\n";
  for (const auto& d : cross) std::cout << d.to_string() << "\n";
  g_errors += static_cast<int>(cross.size());
  return EXIT_SUCCESS;
}

const std::map<std::string, std::function<TypeSpec()>> kTypes{
    {"bit", [] { return zoo::bit_type(2); }},
    {"srsw_register4", [] { return zoo::srsw_register_type(4); }},
    {"one_use_bit", [] { return zoo::one_use_bit_type(); }},
    {"test_and_set", [] { return zoo::test_and_set_type(2); }},
    {"cas", [] { return zoo::cas_type(2, 2); }},
    {"sticky_bit", [] { return zoo::sticky_bit_type(2); }},
    {"queue", [] { return zoo::queue_type(2, 2, 2); }},
    {"consensus", [] { return zoo::consensus_type(2); }},
    {"port_flag", [] { return zoo::port_flag_type(2); }},
    {"nondet_coin", [] { return zoo::nondet_coin_type(2); }},
    {"shift_register1", [] { return zoo::shift_register_type(1, 2); }},
    {"shift_register2", [] { return zoo::shift_register_type(2, 2); }},
    {"shift_register3", [] { return zoo::shift_register_type(3, 2); }},
    {"shift_register4", [] { return zoo::shift_register_type(4, 2); }},
};

/// Known (model-checked / paper) consensus numbers for the zoo entries above,
/// at the port counts kTypes instantiates.  `exact` marks the types the
/// static pass is expected to pin to a point interval.
struct PowerExpect {
  int known = 1;
  bool exact = false;
};

const std::map<std::string, PowerExpect> kPowerExpect{
    {"bit", {1, true}},
    {"srsw_register4", {1, true}},
    {"one_use_bit", {1, false}},       // nondeterministic: solo bound only
    {"test_and_set", {2, false}},
    {"cas", {2, false}},
    {"sticky_bit", {2, false}},
    {"queue", {2, false}},
    {"consensus", {2, false}},
    {"port_flag", {1, true}},
    {"nondet_coin", {1, false}},       // nondeterministic: solo bound only
    {"shift_register1", {2, false}},   // swap races even at width 1
    {"shift_register2", {2, false}},
    {"shift_register3", {2, false}},
    {"shift_register4", {2, false}},
};

int consensus_one(const std::string& name, const TypeSpec& spec) {
  const auto r = analysis::classify_consensus_power(spec);
  std::cout << r.summary() << "\n";
  for (const auto& claim : r.claims) {
    const auto check = analysis::check_certificate(spec, claim);
    if (!check.ok) {
      std::cout << "  CERTIFICATE REJECTED ("
                << analysis::power_rule_name(claim.rule)
                << "): " << check.detail << "\n";
      ++g_errors;
    } else if (g_verbose) {
      std::cout << "  certificate ok: " << analysis::power_rule_name(claim.rule)
                << " (bound " << claim.bound << ")\n";
    }
  }
  const auto it = kPowerExpect.find(name);
  if (it == kPowerExpect.end()) return EXIT_SUCCESS;
  const PowerExpect e = it->second;
  // Soundness sandwich: the static interval must contain the known answer.
  if (r.lower > e.known || (r.upper_finite && r.upper < e.known)) {
    std::cout << "  BOUND CONTRADICTION: known cons = " << e.known
              << " outside the static interval\n";
    ++g_errors;
  }
  if (e.exact && !(r.upper_finite && r.lower == e.known &&
                   r.upper == e.known)) {
    std::cout << "  EXACTNESS REGRESSION: expected the static pass to pin "
                 "cons = "
              << e.known << "\n";
    ++g_errors;
  }
  return EXIT_SUCCESS;
}

int cmd_consensus(const std::string& name) {
  if (name == "all") {
    for (const auto& [n, make] : kTypes) consensus_one(n, make());
    return EXIT_SUCCESS;
  }
  const auto it = kTypes.find(name);
  if (it == kTypes.end()) {
    std::cerr << "unknown type " << name << "; available:";
    for (const auto& [n, make] : kTypes) std::cerr << " " << n;
    std::cerr << " all\n";
    return EXIT_FAILURE;
  }
  return consensus_one(name, it->second());
}

int cmd_type(const std::string& name) {
  const auto it = kTypes.find(name);
  if (it == kTypes.end()) {
    std::cerr << "unknown type " << name << "; available:";
    for (const auto& [n, make] : kTypes) std::cerr << " " << n;
    std::cerr << "\n";
    return EXIT_FAILURE;
  }
  const TypeSpec spec = it->second();
  const auto report = analysis::lint_type(spec);
  std::cout << spec.name() << ": " << report.error_count() << " error(s), "
            << report.warning_count() << " warning(s)\n"
            << report.to_string();
  g_errors += static_cast<int>(report.error_count());
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args.front() == "-v") {
    g_verbose = true;
    args.erase(args.begin());
  }
  if (args.empty()) {
    std::cerr << "usage: wfregs_lint [-v] "
                 "chain|oneuse-array|protocols|eliminate|type|consensus|all "
                 "...\n";
    return EXIT_FAILURE;
  }
  const std::string cmd = args.front();
  try {
    int rc = EXIT_SUCCESS;
    if (cmd == "chain") {
      rc = cmd_chain();
    } else if (cmd == "oneuse-array") {
      rc = cmd_oneuse_array();
    } else if (cmd == "protocols") {
      rc = cmd_protocols();
    } else if (cmd == "eliminate") {
      rc = cmd_eliminate(args.size() > 1 ? args[1] : "tas");
    } else if (cmd == "type") {
      if (args.size() != 2) {
        std::cerr << "usage: wfregs_lint type <zoo-name>\n";
        return EXIT_FAILURE;
      }
      rc = cmd_type(args[1]);
    } else if (cmd == "consensus") {
      rc = cmd_consensus(args.size() > 1 ? args[1] : "all");
    } else if (cmd == "all") {
      cmd_chain();
      cmd_oneuse_array();
      cmd_protocols();
      cmd_consensus("all");
      rc = cmd_eliminate("tas");
    } else {
      std::cerr << "unknown command: " << cmd << "\n";
      return EXIT_FAILURE;
    }
    if (rc != EXIT_SUCCESS) return rc;
    if (g_errors > 0) {
      std::cout << "TOTAL: " << g_errors << " lint error(s)\n";
      return EXIT_FAILURE;
    }
    std::cout << "all clean\n";
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
