// The universality of consensus (Section 2.3; Herlihy 1991), as a tower:
//
//   a FIFO queue
//     ... implemented from multi-valued consensus slots (Herlihy's log)
//     ... each slot implemented from BINARY consensus + registers
//
// The tower is exercised under a concurrent workload and every interleaving
// is checked for linearizability against the queue's specification.
//
//   $ ./universality_tower
#include <cstdlib>
#include <iostream>

#include "wfregs/consensus/universal.hpp"
#include "wfregs/registers/chain.hpp"
#include "wfregs/runtime/verify.hpp"
#include "wfregs/typesys/type_zoo.hpp"

using namespace wfregs;

int main() {
  const auto queue = zoo::queue_type(/*capacity=*/2, /*values=*/2,
                                     /*ports=*/2);
  const zoo::QueueLayout lay{2, 2};

  std::cout << "building: queue <- consensus log <- binary consensus + "
               "registers\n";
  const auto tower = consensus::universal_implementation(
      queue, lay.state_of(std::array<int, 0>{}), /*log_length=*/5,
      consensus::binary_slot_factory());

  std::cout << "base objects of the tower:\n";
  for (const auto& [name, count] : registers::base_census(*tower)) {
    std::cout << "    " << count << " x " << name << "\n";
  }

  std::cout << "\nexploring every schedule of two processes doing "
               "enqueue+dequeue each...\n";
  const auto r = verify_linearizable(
      tower,
      {{lay.enqueue(1), lay.dequeue()}, {lay.enqueue(0), lay.dequeue()}});
  if (!r.ok) {
    std::cerr << "FAILED: " << r.detail << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "=> LINEARIZABLE and WAIT-FREE (" << r.stats.configs
            << " configurations, depth " << r.stats.depth << ")\n"
            << "=> consensus is universal: a queue lives happily on top of "
               "nothing but consensus and registers\n";
  return EXIT_SUCCESS;
}
