#include "wfregs/consensus/universal.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "wfregs/consensus/multivalued.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs::consensus {

SlotFactory binary_slot_factory() {
  return [](int values, int n) { return multivalued_from_binary(values, n); };
}

std::shared_ptr<const Implementation> universal_implementation(
    const TypeSpec& type, StateId initial, int log_length,
    const SlotFactory& slot_factory) {
  if (!type.is_deterministic()) {
    throw std::invalid_argument(
        "universal_implementation: the replayed type must be deterministic");
  }
  if (initial < 0 || initial >= type.num_states()) {
    throw std::out_of_range("universal_implementation: bad initial state");
  }
  if (log_length < 1) {
    throw std::invalid_argument("universal_implementation: log_length >= 1");
  }
  const int n = type.ports();
  const int num_invs = type.num_invocations();
  const int descriptors = n * num_invs;  // (port, invocation) pairs
  const zoo::MultiConsensusLayout slot_lay{descriptors};

  auto impl = std::make_shared<Implementation>(
      "universal_" + type.name() + "_L" + std::to_string(log_length),
      std::make_shared<const TypeSpec>(type), initial);

  std::vector<PortId> all_ports;
  for (PortId p = 0; p < n; ++p) all_ports.push_back(p);
  const auto slot_spec = std::make_shared<const TypeSpec>(
      zoo::multi_consensus_type(descriptors, n));
  std::vector<int> slots;
  for (int k = 0; k < log_length; ++k) {
    if (slot_factory) {
      slots.push_back(
          impl->add_nested(slot_factory(descriptors, n), all_ports));
    } else {
      slots.push_back(
          impl->add_base(slot_spec, slot_lay.bottom(), all_ports));
    }
  }

  // Persistent per port: r0 = replica state of `type`, r1 = log position.
  impl->set_persistent({initial, 0});
  constexpr int kReplica = 0;
  constexpr int kPos = 1;
  constexpr int kDecided = 2;

  for (PortId p = 0; p < n; ++p) {
    for (InvId i = 0; i < num_invs; ++i) {
      const int own = static_cast<int>(p) * num_invs + static_cast<int>(i);
      ProgramBuilder b;
      const Label loop = b.bind_here();
      // Dispatch the propose on the runtime log position.
      const Label have_decided = b.make_label();
      std::vector<Label> at;
      for (int k = 0; k < log_length; ++k) at.push_back(b.make_label());
      for (int k = 0; k < log_length; ++k) {
        b.branch_if(reg(kPos) == lit(k), at[static_cast<std::size_t>(k)]);
      }
      b.fail("universal construction: log of length " +
             std::to_string(log_length) + " exhausted");
      for (int k = 0; k < log_length; ++k) {
        b.bind(at[static_cast<std::size_t>(k)]);
        b.invoke(slots[static_cast<std::size_t>(k)],
                 lit(slot_lay.propose(own)), kDecided);
        b.jump(have_decided);
      }
      b.bind(have_decided);
      b.assign(kPos, reg(kPos) + lit(1));
      // Replay the decided descriptor against delta: dispatch on
      // (replica state, descriptor).
      const Label next_round = b.make_label();
      std::vector<Label> st;
      for (StateId q = 0; q < type.num_states(); ++q) {
        st.push_back(b.make_label());
      }
      for (StateId q = 0; q < type.num_states(); ++q) {
        b.branch_if(reg(kReplica) == lit(q),
                    st[static_cast<std::size_t>(q)]);
      }
      b.fail("universal construction: replica state out of range");
      for (StateId q = 0; q < type.num_states(); ++q) {
        b.bind(st[static_cast<std::size_t>(q)]);
        std::vector<Label> ds;
        for (int d = 0; d < descriptors; ++d) ds.push_back(b.make_label());
        for (int d = 0; d < descriptors; ++d) {
          b.branch_if(reg(kDecided) == lit(d),
                      ds[static_cast<std::size_t>(d)]);
        }
        b.fail("universal construction: descriptor out of range");
        for (int d = 0; d < descriptors; ++d) {
          b.bind(ds[static_cast<std::size_t>(d)]);
          const PortId dp = static_cast<PortId>(d / num_invs);
          const InvId di = static_cast<InvId>(d % num_invs);
          const Transition t = type.delta_det(q, dp, di);
          b.assign(kReplica, lit(t.next));
          if (d == own) {
            b.ret(lit(t.resp));  // our operation landed here
          } else {
            b.jump(next_round);
          }
        }
      }
      b.bind(next_round);
      b.jump(loop);
      impl->set_program(i, p,
                        b.build("universal_" + type.invocation_name(i) +
                                "_p" + std::to_string(p)));
    }
  }
  return impl;
}

}  // namespace wfregs::consensus
