#include "wfregs/consensus/power.hpp"

#include <map>
#include <stdexcept>
#include <tuple>

namespace wfregs::consensus {

namespace {

struct Action {
  bool decide = false;
  int value = 0;  // decided value
  int object = 0;
  InvId inv = 0;

  friend bool operator==(const Action&, const Action&) = default;
};

using View = std::tuple<int, int, std::vector<RespId>>;  // proc, input, hist

struct Cfg {
  std::vector<StateId> states;
  int input[2] = {0, 0};
  std::vector<RespId> hist[2];
  int decided[2] = {-1, -1};

  bool terminal() const { return decided[0] >= 0 && decided[1] >= 0; }
};

class Synthesizer {
 public:
  Synthesizer(const std::vector<SynthesisObject>& objects, int max_ops,
              std::size_t node_cap)
      : objects_(objects), max_ops_(max_ops), node_cap_(node_cap) {
    for (const auto& obj : objects_) {
      if (!obj.spec) {
        throw std::invalid_argument("synthesize_two_consensus: null spec");
      }
      for (int p = 0; p < 2; ++p) {
        const PortId port = obj.port_of_process.empty()
                                ? p
                                : obj.port_of_process[static_cast<
                                      std::size_t>(p)];
        if (port < 0 || port >= obj.spec->ports()) {
          throw std::invalid_argument(
              "synthesize_two_consensus: object lacks a port for process " +
              std::to_string(p));
        }
      }
    }
    // Candidate actions: invocations first (real protocols communicate
    // before deciding), then the two decides.
    for (std::size_t k = 0; k < objects_.size(); ++k) {
      for (InvId i = 0; i < objects_[k].spec->num_invocations(); ++i) {
        candidates_.push_back(Action{false, 0, static_cast<int>(k), i});
      }
    }
    candidates_.push_back(Action{true, 0, 0, 0});
    candidates_.push_back(Action{true, 1, 0, 0});
  }

  SynthesisResult run() {
    Cfg base;
    for (const auto& obj : objects_) base.states.push_back(obj.initial);
    std::vector<Cfg> obligations;
    for (int in0 = 0; in0 < 2; ++in0) {
      for (int in1 = 0; in1 < 2; ++in1) {
        Cfg cfg = base;
        cfg.input[0] = in0;
        cfg.input[1] = in1;
        obligations.push_back(std::move(cfg));
      }
    }
    SynthesisResult result;
    if (!within_cap_) {
      result.verdict = SynthesisVerdict::kUnknown;
      return result;
    }
    const bool ok = solve(obligations);
    result.nodes = nodes_;
    result.verdict = !within_cap_ ? SynthesisVerdict::kUnknown
                     : ok         ? SynthesisVerdict::kSolvable
                                  : SynthesisVerdict::kUnsolvable;
    return result;
  }

 private:
  PortId port_of(int object, int p) const {
    const auto& obj = objects_[static_cast<std::size_t>(object)];
    return obj.port_of_process.empty()
               ? p
               : obj.port_of_process[static_cast<std::size_t>(p)];
  }

  /// Discharges every obligation on the list; each terminal must satisfy
  /// agreement + validity, each non-terminal must survive every adversary
  /// move of every undecided process.
  bool solve(std::vector<Cfg>& obligations) {
    if (++nodes_ > node_cap_) {
      within_cap_ = false;
      return false;
    }
    if (obligations.empty()) return true;
    Cfg cfg = std::move(obligations.back());
    obligations.pop_back();
    bool ok;
    if (cfg.terminal()) {
      ok = cfg.decided[0] == cfg.decided[1] &&
           (cfg.decided[0] == cfg.input[0] ||
            cfg.decided[0] == cfg.input[1]) &&
           solve(obligations);
    } else {
      ok = expand(cfg, 0, obligations);
    }
    // Restore the caller's list so backtracking above us sees it unchanged.
    obligations.push_back(std::move(cfg));
    return ok;
  }

  /// Queues the successor obligations for every undecided process starting
  /// from index `p`, branching over unassigned strategy entries.
  bool expand(const Cfg& cfg, int p, std::vector<Cfg>& obligations) {
    if (p == 2) return solve(obligations);
    if (cfg.decided[p] >= 0) return expand(cfg, p + 1, obligations);
    const View view{p, cfg.input[p], cfg.hist[p]};
    if (const auto it = strategy_.find(view); it != strategy_.end()) {
      return apply_and_continue(cfg, p, it->second, obligations);
    }
    const bool may_invoke =
        static_cast<int>(cfg.hist[p].size()) < max_ops_;
    // Pruning: a blind decide (before any invocation) can never be part of
    // a correct protocol when invocations are allowed.  If p decides at an
    // empty history, the other process running solo-first observes identical
    // clean objects whatever p's input is, so its (deterministic) decision
    // cannot track p's input -- and validity on the unanimous vectors then
    // forces a contradiction.
    const bool blind = may_invoke && cfg.hist[p].empty();
    for (const Action& a : candidates_) {
      if (!a.decide && !may_invoke) continue;
      if (a.decide && blind) continue;
      strategy_.emplace(view, a);
      const bool ok = apply_and_continue(cfg, p, a, obligations);
      if (ok) return true;
      strategy_.erase(view);
      if (!within_cap_) return false;
    }
    return false;
  }

  bool apply_and_continue(const Cfg& cfg, int p, const Action& a,
                          std::vector<Cfg>& obligations) {
    if (a.decide) {
      Cfg child = cfg;
      child.decided[p] = a.value;
      obligations.push_back(std::move(child));
      const bool ok = expand(cfg, p + 1, obligations);
      obligations.pop_back();
      return ok;
    }
    const auto& obj = objects_[static_cast<std::size_t>(a.object)];
    const auto set = obj.spec->delta(
        cfg.states[static_cast<std::size_t>(a.object)], port_of(a.object, p),
        a.inv);
    // Every nondeterministic outcome becomes an obligation.
    std::size_t pushed = 0;
    for (const Transition& t : set) {
      Cfg child = cfg;
      child.states[static_cast<std::size_t>(a.object)] = t.next;
      child.hist[p].push_back(t.resp);
      obligations.push_back(std::move(child));
      ++pushed;
    }
    const bool ok = expand(cfg, p + 1, obligations);
    for (std::size_t k = 0; k < pushed; ++k) obligations.pop_back();
    return ok;
  }

  const std::vector<SynthesisObject>& objects_;
  int max_ops_;
  std::size_t node_cap_;
  std::size_t nodes_ = 0;
  bool within_cap_ = true;
  std::vector<Action> candidates_;
  std::map<View, Action> strategy_;
};

}  // namespace

SynthesisResult synthesize_two_consensus(
    const std::vector<SynthesisObject>& objects, int max_ops,
    std::size_t node_cap) {
  if (max_ops < 0) {
    throw std::invalid_argument("synthesize_two_consensus: max_ops >= 0");
  }
  Synthesizer synth(objects, max_ops, node_cap);
  return synth.run();
}

}  // namespace wfregs::consensus
