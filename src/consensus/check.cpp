#include "wfregs/consensus/check.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace wfregs::consensus {

std::shared_ptr<System> consensus_scenario(
    std::shared_ptr<const Implementation> impl,
    const std::vector<int>& inputs) {
  if (!impl) {
    throw std::invalid_argument("consensus_scenario: null implementation");
  }
  const int n = impl->iface().ports();
  if (static_cast<int>(inputs.size()) != n) {
    throw std::invalid_argument(
        "consensus_scenario: need one input per port");
  }
  auto sys = std::make_shared<System>(n);
  std::vector<PortId> ports;
  for (PortId p = 0; p < n; ++p) ports.push_back(p);
  const ObjectId obj = sys->add_implemented(std::move(impl), ports);
  // One program per distinct input VALUE, shared by every process proposing
  // it.  Process symmetry compares toplevel programs by pointer, so sharing
  // (rather than building an identical per-process copy) is what lets
  // Reduction::kSleepSymmetry treat same-input processes as interchangeable.
  std::array<ProgramRef, 2> propose;
  for (int v = 0; v < 2; ++v) {
    ProgramBuilder b;
    b.invoke(0, lit(v), 0);  // propose(v) is invocation id `v`
    b.ret(reg(0));
    propose[static_cast<std::size_t>(v)] =
        b.build("propose_v" + std::to_string(v));
  }
  for (ProcId p = 0; p < n; ++p) {
    const int input = inputs[static_cast<std::size_t>(p)];
    if (input != 0 && input != 1) {
      throw std::invalid_argument("consensus_scenario: inputs are binary");
    }
    sys->set_toplevel(p, propose[static_cast<std::size_t>(input)], {obj});
  }
  return sys;
}

ConsensusCheckResult check_consensus(
    std::shared_ptr<const Implementation> impl, const ExploreLimits& limits) {
  VerifyOptions options;
  options.limits = limits;
  return check_consensus(std::move(impl), options);
}

ConsensusCheckResult check_consensus(
    std::shared_ptr<const Implementation> impl,
    const VerifyOptions& options) {
  const ExploreLimits& limits = options.limits;
  if (!impl) {
    throw std::invalid_argument("check_consensus: null implementation");
  }
  const int n = impl->iface().ports();
  if (n > 20) {
    throw std::invalid_argument("check_consensus: too many ports");
  }
  if (options.static_precheck) {
    if (auto err = options.static_precheck(*impl)) {
      ConsensusCheckResult failed;
      failed.solves = false;
      failed.detail = std::move(*err);
      return failed;
    }
  }
  if (options.static_consensus) {
    if (auto decision = options.static_consensus(*impl)) {
      ConsensusCheckResult decided;
      decided.solves = decision->solves;
      decided.wait_free = decision->wait_free;
      decided.complete = true;
      decided.static_decision = true;
      decided.detail = std::move(decision->detail);
      return decided;
    }
  }
  ConsensusCheckResult result;
  result.solves = true;
  // The job is resumable when ANY root persisted state this run: an
  // interrupt checkpoint, a resumed prior checkpoint, or a completed root's
  // final snapshot.  (A deadline can land on a root boundary, where the
  // freshly cancelled root has nothing to write -- the finals banked by the
  // earlier roots still make resubmission cheaper than recomputation.)
  bool any_persisted = false;
  for (int vec = 0; vec < (1 << n); ++vec) {
    std::vector<int> inputs;
    for (int p = 0; p < n; ++p) inputs.push_back((vec >> p) & 1);
    auto sys = consensus_scenario(impl, inputs);
    const TerminalCheck check =
        [&inputs, n](const Engine& e) -> std::optional<std::string> {
      const Val decided = *e.result(0);
      for (ProcId p = 1; p < n; ++p) {
        if (*e.result(p) != decided) {
          std::ostringstream out;
          out << "agreement violated: process 0 decided " << decided
              << " but process " << p << " decided " << *e.result(p);
          return out.str();
        }
      }
      if (std::ranges::find(inputs, static_cast<int>(decided)) ==
          inputs.end()) {
        std::ostringstream out;
        out << "validity violated: decided " << decided
            << " which nobody proposed";
        return out.str();
      }
      return std::nullopt;
    };
    const Engine root{std::move(sys)};
    ExploreOptions explore_options{limits, options.reduction};
    explore_options.storage = options.storage;
    if (!options.storage.checkpoint_dir.empty()) {
      // One checkpoint per input vector: the 2^n roots are independent
      // explorations with distinct fingerprints, so each gets its own
      // subdirectory and resumes independently.
      explore_options.storage.checkpoint_dir =
          options.storage.checkpoint_dir + "/root" + std::to_string(vec);
      if (!options.storage.resume_from.empty()) {
        explore_options.storage.resume_from =
            options.storage.resume_from + "/root" + std::to_string(vec);
      }
    }
    const auto out =
        explore_parallel(root, check, explore_options, options.threads);
    result.wait_free = result.wait_free && out.wait_free;
    result.complete = result.complete && out.complete;
    result.resumed = result.resumed || out.resumed;
    if (!explore_options.storage.checkpoint_dir.empty() &&
        (out.complete || out.checkpointed || out.resumed)) {
      any_persisted = true;
    }
    result.configs += out.stats.configs;
    result.terminals += out.stats.terminals;
    result.depth = std::max(result.depth, out.stats.depth);
    if (limits.track_access_bounds) {
      if (result.max_accesses.size() < out.stats.max_accesses.size()) {
        result.max_accesses.resize(out.stats.max_accesses.size(), 0);
      }
      for (std::size_t g = 0; g < out.stats.max_accesses.size(); ++g) {
        result.max_accesses[g] =
            std::max(result.max_accesses[g], out.stats.max_accesses[g]);
      }
      if (result.max_accesses_by_inv.size() <
          out.stats.max_accesses_by_inv.size()) {
        result.max_accesses_by_inv.resize(
            out.stats.max_accesses_by_inv.size());
      }
      for (std::size_t g = 0; g < out.stats.max_accesses_by_inv.size();
           ++g) {
        auto& acc = result.max_accesses_by_inv[g];
        const auto& cur = out.stats.max_accesses_by_inv[g];
        if (acc.size() < cur.size()) acc.resize(cur.size(), 0);
        for (std::size_t i = 0; i < cur.size(); ++i) {
          acc[i] = std::max(acc[i], cur[i]);
        }
      }
      result.per_root.push_back(out.stats);
    }
    if (out.violation && result.detail.empty()) {
      std::ostringstream prefix;
      prefix << "inputs (";
      for (int p = 0; p < n; ++p) {
        prefix << (p ? "," : "") << inputs[static_cast<std::size_t>(p)];
      }
      prefix << "): " << *out.violation;
      result.detail = prefix.str();
    }
    if (out.violation || !out.wait_free || !out.complete) {
      result.solves = false;
      if (result.detail.empty()) {
        result.detail = out.wait_free ? "exploration exceeded limits"
                                      : "not wait-free (configuration cycle)";
      }
    }
  }
  result.checkpointed = !result.complete && any_persisted;
  return result;
}

}  // namespace wfregs::consensus
