#include "wfregs/consensus/protocols.hpp"

#include <array>
#include <stdexcept>
#include <string>
#include <vector>

#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs::consensus {

namespace {

std::shared_ptr<const TypeSpec> share(TypeSpec t) {
  return std::make_shared<const TypeSpec>(std::move(t));
}

std::shared_ptr<Implementation> new_consensus_impl(const std::string& name,
                                                   int n) {
  const zoo::ConsensusLayout lay;
  return std::make_shared<Implementation>(
      name, share(zoo::consensus_type(n)), lay.bottom());
}

/// Adds the two SRSW "input announcement" bits used by the 2-process
/// protocols: bit[p] is written by port p and read by port 1-p.
std::array<int, 2> add_announce_bits(Implementation& impl) {
  const auto bit_spec = share(zoo::srsw_bit_type());
  std::array<int, 2> bits{};
  for (int p = 0; p < 2; ++p) {
    std::vector<PortId> map(2, kNoPort);
    map[static_cast<std::size_t>(p)] = zoo::SrswRegisterLayout::writer_port();
    map[static_cast<std::size_t>(1 - p)] =
        zoo::SrswRegisterLayout::reader_port();
    bits[static_cast<std::size_t>(p)] =
        impl.add_base(bit_spec, 0, std::move(map));
  }
  return bits;
}

/// Shared scaffold for the 2-process "publish, race, winner takes own /
/// loser reads other" protocols.  `racer_slot` is the racing object's slot;
/// `race_inv` its invocation; the racer's response equals `win_resp` exactly
/// for the first arriver.
void install_publish_race_programs(Implementation& impl,
                                   const std::array<int, 2>& bits,
                                   int racer_slot, InvId race_inv,
                                   Val win_resp) {
  const zoo::SrswRegisterLayout bit{2};
  constexpr int kRace = 0;
  constexpr int kOther = 1;
  constexpr int kTmp = 2;
  for (int p = 0; p < 2; ++p) {
    for (int v = 0; v < 2; ++v) {
      ProgramBuilder b;
      b.invoke(bits[static_cast<std::size_t>(p)], lit(bit.write(v)), kTmp);
      b.invoke(racer_slot, lit(race_inv), kRace);
      const Label lost = b.make_label();
      b.branch_if(!(reg(kRace) == lit(win_resp)), lost);
      b.ret(lit(v));  // winner decides its own value
      b.bind(lost);
      b.invoke(bits[static_cast<std::size_t>(1 - p)], lit(bit.read()),
               kOther);
      b.ret(reg(kOther));  // loser adopts the winner's published value
      impl.set_program(v, p,
                       b.build("propose" + std::to_string(v) + "_p" +
                               std::to_string(p)));
    }
  }
}

}  // namespace

std::shared_ptr<const Implementation> from_test_and_set() {
  auto impl = new_consensus_impl("consensus_from_test_and_set", 2);
  const auto bits = add_announce_bits(*impl);
  const zoo::TestAndSetLayout tas;
  const int racer =
      impl->add_base(share(zoo::test_and_set_type(2)), 0, {0, 1});
  install_publish_race_programs(*impl, bits, racer, tas.test_and_set(),
                                tas.old_value(0));
  return impl;
}

std::shared_ptr<const Implementation> from_queue() {
  auto impl = new_consensus_impl("consensus_from_queue", 2);
  const auto bits = add_announce_bits(*impl);
  const zoo::QueueLayout q{2, 2};
  // Pre-loaded with [winner-token 0, loser-token 1].
  const std::array<int, 2> preload{0, 1};
  const int racer = impl->add_base(share(zoo::queue_type(2, 2, 2)),
                                   q.state_of(preload), {0, 1});
  install_publish_race_programs(*impl, bits, racer, q.dequeue(),
                                q.front_value(0));
  return impl;
}

std::shared_ptr<const Implementation> from_fetch_and_add() {
  auto impl = new_consensus_impl("consensus_from_fetch_and_add", 2);
  const auto bits = add_announce_bits(*impl);
  const zoo::FetchAndAddLayout faa{2};
  const int racer =
      impl->add_base(share(zoo::fetch_and_add_type(2, 2)), 0, {0, 1});
  install_publish_race_programs(*impl, bits, racer, faa.fetch_and_add(),
                                faa.old_value(0));
  return impl;
}

std::shared_ptr<const Implementation> from_cas(int n) {
  if (n < 1) throw std::invalid_argument("from_cas: need n >= 1");
  auto impl = new_consensus_impl("consensus_from_cas_n" + std::to_string(n),
                                 n);
  // Values {0, 1, 2}; 2 is the initial "bottom".
  const zoo::CasLayout cas{3};
  std::vector<PortId> all_ports;
  for (PortId p = 0; p < n; ++p) all_ports.push_back(p);
  const int obj = impl->add_base(share(zoo::cas_type(3, n)), 2, all_ports);
  constexpr int kRes = 0;
  constexpr int kRead = 1;
  for (int v = 0; v < 2; ++v) {
    ProgramBuilder b;
    b.invoke(obj, lit(cas.cas(2, v)), kRes);
    const Label lost = b.make_label();
    b.branch_if(!(reg(kRes) == lit(cas.success())), lost);
    b.ret(lit(v));
    b.bind(lost);
    b.invoke(obj, lit(cas.read()), kRead);
    b.ret(reg(kRead));
    impl->set_program_all_ports(v, b.build("cas_propose" +
                                           std::to_string(v)));
  }
  return impl;
}

std::shared_ptr<const Implementation> from_sticky_bit(int n) {
  if (n < 1) throw std::invalid_argument("from_sticky_bit: need n >= 1");
  auto impl = new_consensus_impl(
      "consensus_from_sticky_n" + std::to_string(n), n);
  const zoo::StickyBitLayout sticky;
  std::vector<PortId> all_ports;
  for (PortId p = 0; p < n; ++p) all_ports.push_back(p);
  const int obj = impl->add_base(share(zoo::sticky_bit_type(n)),
                                 sticky.bottom_state(), all_ports);
  for (int v = 0; v < 2; ++v) {
    // jam(v) responds with whatever value is stuck -- decide exactly that.
    ProgramBuilder b;
    b.invoke(obj, lit(sticky.jam(v)), 0);
    b.ret(reg(0));
    impl->set_program_all_ports(v,
                                b.build("jam_propose" + std::to_string(v)));
  }
  return impl;
}

std::shared_ptr<const Implementation> from_consensus_object(int n) {
  if (n < 1) throw std::invalid_argument("from_consensus_object: n >= 1");
  auto impl = new_consensus_impl(
      "consensus_from_consensus_n" + std::to_string(n), n);
  const zoo::ConsensusLayout lay;
  std::vector<PortId> all_ports;
  for (PortId p = 0; p < n; ++p) all_ports.push_back(p);
  const int obj = impl->add_base(share(zoo::consensus_type(n)),
                                 lay.bottom(), all_ports);
  for (int v = 0; v < 2; ++v) {
    ProgramBuilder b;
    b.invoke(obj, lit(lay.propose(v)), 0);
    b.ret(reg(0));
    impl->set_program_all_ports(v, b.build("fwd_propose" +
                                           std::to_string(v)));
  }
  return impl;
}

std::shared_ptr<const Implementation> from_cas_ids(int n) {
  if (n < 2) throw std::invalid_argument("from_cas_ids: need n >= 2");
  auto impl = new_consensus_impl(
      "consensus_from_cas_ids_n" + std::to_string(n), n);
  const zoo::MrswRegisterLayout lay{2, n - 1};
  const auto reg_spec = share(zoo::mrsw_register_type(2, n - 1));
  // reg[p]: written by p, read by everyone else.
  std::vector<int> regs;
  for (int p = 0; p < n; ++p) {
    std::vector<PortId> map(static_cast<std::size_t>(n), kNoPort);
    for (int q = 0; q < n; ++q) {
      map[static_cast<std::size_t>(q)] =
          q == p ? lay.writer_port() : lay.reader_port(q < p ? q : q - 1);
    }
    regs.push_back(impl->add_base(reg_spec, lay.state_of(0), std::move(map)));
  }
  // CAS over {0..n-1, bottom=n}, deciding the winning process id.
  const zoo::CasLayout cas{n + 1};
  std::vector<PortId> all_ports;
  for (PortId p = 0; p < n; ++p) all_ports.push_back(p);
  const int obj = impl->add_base(share(zoo::cas_type(n + 1, n)), n,
                                 all_ports);
  constexpr int kRes = 0;
  constexpr int kWin = 1;
  constexpr int kVal = 2;
  for (int p = 0; p < n; ++p) {
    for (int v = 0; v < 2; ++v) {
      ProgramBuilder b;
      b.invoke(regs[static_cast<std::size_t>(p)], lit(lay.write(v)), kRes);
      b.invoke(obj, lit(cas.cas(n, p)), kRes);
      const Label lost = b.make_label();
      b.branch_if(!(reg(kRes) == lit(cas.success())), lost);
      b.ret(lit(v));
      b.bind(lost);
      b.invoke(obj, lit(cas.read()), kWin);
      // Read the winner's register: branch over the n-1 possible winners.
      const Label bad = b.make_label();
      std::vector<Label> cases;
      for (int w = 0; w < n; ++w) cases.push_back(b.make_label());
      for (int w = 0; w < n; ++w) {
        b.branch_if(reg(kWin) == lit(w), cases[static_cast<std::size_t>(w)]);
      }
      b.jump(bad);
      for (int w = 0; w < n; ++w) {
        b.bind(cases[static_cast<std::size_t>(w)]);
        if (w == p) {
          b.ret(lit(v));  // we won after all (cannot happen after a failed
                          // cas, but keeps the program total)
        } else {
          b.invoke(regs[static_cast<std::size_t>(w)], lit(lay.read()), kVal);
          b.ret(reg(kVal));
        }
      }
      b.bind(bad);
      b.fail("cas_ids: winner id out of range");
      impl->set_program(v, p,
                        b.build("cas_ids_propose" + std::to_string(v) +
                                "_p" + std::to_string(p)));
    }
  }
  return impl;
}

std::shared_ptr<const Implementation> from_shift_register(int n, int width) {
  if (n < 1) throw std::invalid_argument("from_shift_register: n >= 1");
  auto impl = new_consensus_impl("consensus_from_shift_register" +
                                     std::to_string(width) + "_n" +
                                     std::to_string(n),
                                 n);
  const zoo::ShiftRegisterLayout lay{width};
  std::vector<PortId> map;
  for (int p = 0; p < n; ++p) map.push_back(p);
  // Initialized to 1: the marker bit.  After j - 1 shifts the contents are
  // 2^(j-1) + b1*2^(j-2) + ... + b_{j-1}, so the j-th shifter's response
  // pinpoints j and, for 2 <= j <= width, the first bit b1.
  const int racer = impl->add_base(
      share(zoo::shift_register_type(width, n)), lay.state_of(1), map);
  constexpr int kOld = 0;
  for (int p = 0; p < n; ++p) {
    for (int v = 0; v < 2; ++v) {
      ProgramBuilder b;
      b.invoke(racer, lit(lay.shl(v)), kOld);
      const Label decode = b.make_label();
      b.branch_if(!(reg(kOld) == lit(1)), decode);
      b.ret(lit(v));  // response 1 = untouched marker: we shifted first
      b.bind(decode);
      // Halve away the bits below b1; the marker sits just above it.
      const Label loop = b.bind_here();
      const Label done = b.make_label();
      b.branch_if(reg(kOld) < lit(4), done);
      b.assign(kOld, reg(kOld) / lit(2));
      b.jump(loop);
      b.bind(done);
      b.ret(reg(kOld) % lit(2));
      impl->set_program(v, p,
                        b.build("shiftreg_propose" + std::to_string(v) +
                                "_p" + std::to_string(p)));
    }
  }
  return impl;
}

std::shared_ptr<const Implementation> from_shift_register(int n) {
  return from_shift_register(n, n);
}

std::shared_ptr<const Implementation> registers_only_attempt(int n) {
  if (n < 2) throw std::invalid_argument("registers_only_attempt: n >= 2");
  auto impl = new_consensus_impl(
      "registers_only_attempt_n" + std::to_string(n), n);
  // 3-valued MRSW registers; value 2 is "not yet announced".
  const zoo::MrswRegisterLayout lay{3, n - 1};
  const auto reg_spec = share(zoo::mrsw_register_type(3, n - 1));
  std::vector<int> regs;
  for (int p = 0; p < n; ++p) {
    std::vector<PortId> map(static_cast<std::size_t>(n), kNoPort);
    for (int q = 0; q < n; ++q) {
      map[static_cast<std::size_t>(q)] =
          q == p ? lay.writer_port() : lay.reader_port(q < p ? q : q - 1);
    }
    regs.push_back(impl->add_base(reg_spec, lay.state_of(2), std::move(map)));
  }
  constexpr int kMin = 0;
  constexpr int kTmp = 1;
  for (int p = 0; p < n; ++p) {
    for (int v = 0; v < 2; ++v) {
      ProgramBuilder b;
      b.invoke(regs[static_cast<std::size_t>(p)], lit(lay.write(v)), kTmp);
      b.assign(kMin, lit(v));
      for (int q = 0; q < n; ++q) {
        if (q == p) continue;
        b.invoke(regs[static_cast<std::size_t>(q)], lit(lay.read()), kTmp);
        const Label keep = b.make_label();
        b.branch_if(!(reg(kTmp) < reg(kMin)), keep);
        b.assign(kMin, reg(kTmp));
        b.bind(keep);
      }
      b.ret(reg(kMin));
      impl->set_program(v, p,
                        b.build("minrace_propose" + std::to_string(v) +
                                "_p" + std::to_string(p)));
    }
  }
  return impl;
}

}  // namespace wfregs::consensus
