#include "wfregs/consensus/valency.hpp"

#include <unordered_map>

namespace wfregs::consensus {

namespace {

constexpr unsigned kZero = 1u;
constexpr unsigned kOne = 2u;

class ValencyImpl {
 public:
  explicit ValencyImpl(std::size_t max_configs)
      : max_configs_(max_configs) {}

  ValencyReport run(const Engine& root) {
    const unsigned v = valence(root);
    tally(root, v);
    report_.initial_bivalent = (v == (kZero | kOne));
    report_.configs = memo_.size();
    return report_;
  }

 private:
  /// Bitmask of decided values reachable from `e`.
  unsigned valence(const Engine& e) {
    const ConfigKey key = e.config_key();
    if (const auto it = memo_.find(key); it != memo_.end()) {
      return it->second;
    }
    if (memo_.size() >= max_configs_) {
      report_.complete = false;
      return 0;
    }
    unsigned v = 0;
    if (e.all_done()) {
      bool agree = true;
      const Val first = *e.result(0);
      for (ProcId p = 1; p < e.system().num_processes(); ++p) {
        if (*e.result(p) != first) agree = false;
      }
      if (!agree) report_.agreement_holds = false;
      for (ProcId p = 0; p < e.system().num_processes(); ++p) {
        v |= (*e.result(p) == 0 ? kZero : kOne);
      }
    } else {
      bool all_children_univalent = true;
      for (const ProcId p : e.runnable()) {
        const int width = e.pending_choices(p);
        for (int c = 0; c < width; ++c) {
          Engine child = e;
          child.commit(p, c);
          const unsigned cv = valence(child);
          tally(child, cv);
          v |= cv;
          if (cv == (kZero | kOne)) all_children_univalent = false;
        }
      }
      if (v == (kZero | kOne) && all_children_univalent) {
        ++report_.critical;
        if (report_.critical_object_type.empty()) {
          // At a critical configuration, the pending accesses decide the
          // outcome; report the type of the object the first runnable
          // process is about to touch (Herlihy's "deciding object").
          const ObjectId g = e.pending_object(e.runnable().front());
          report_.critical_object_type = e.system().base(g).spec->name();
        }
      }
    }
    memo_.emplace(key, v);
    return v;
  }

  /// Counts each configuration once, by its valence.
  void tally(const Engine& e, unsigned v) {
    const ConfigKey key = e.config_key();
    if (tallied_.contains(key)) return;
    tallied_.emplace(key, true);
    if (v == kZero) {
      ++report_.zero_valent;
    } else if (v == kOne) {
      ++report_.one_valent;
    } else if (v == (kZero | kOne)) {
      ++report_.bivalent;
    }
  }

  std::size_t max_configs_;
  ValencyReport report_;
  std::unordered_map<ConfigKey, unsigned, ConfigKeyHash> memo_;
  std::unordered_map<ConfigKey, bool, ConfigKeyHash> tallied_;
};

}  // namespace

ValencyReport valency_analysis(const Engine& root, std::size_t max_configs) {
  ValencyImpl impl(max_configs);
  return impl.run(root);
}

}  // namespace wfregs::consensus
