#include "wfregs/consensus/multivalued.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs::consensus {

std::shared_ptr<const Implementation> multivalued_from_binary(int values,
                                                              int n) {
  if (values < 2) {
    throw std::invalid_argument("multivalued_from_binary: values >= 2");
  }
  if (n < 1) throw std::invalid_argument("multivalued_from_binary: n >= 1");
  int bits = 0;
  while ((1 << bits) < values) ++bits;

  const zoo::MultiConsensusLayout iface_lay{values};
  auto impl = std::make_shared<Implementation>(
      "mv_consensus" + std::to_string(values) + "_from_binary",
      std::make_shared<const TypeSpec>(zoo::multi_consensus_type(values, n)),
      iface_lay.bottom());

  std::vector<PortId> all_ports;
  for (PortId p = 0; p < n; ++p) all_ports.push_back(p);

  // announce[p]: MRSW register over values+1 values (the extra value is
  // "nothing announced yet"), written by p, read by everyone else.
  const int none = values;
  const zoo::MrswRegisterLayout ann{values + 1, n > 1 ? n - 1 : 1};
  const auto ann_spec = std::make_shared<const TypeSpec>(
      zoo::mrsw_register_type(values + 1, n > 1 ? n - 1 : 1));
  std::vector<int> announce;
  for (int p = 0; p < n; ++p) {
    std::vector<PortId> map(static_cast<std::size_t>(n), kNoPort);
    for (int q = 0; q < n; ++q) {
      if (q == p) {
        map[static_cast<std::size_t>(q)] = ann.writer_port();
      } else {
        map[static_cast<std::size_t>(q)] = ann.reader_port(q < p ? q : q - 1);
      }
    }
    announce.push_back(
        impl->add_base(ann_spec, ann.state_of(none), std::move(map)));
  }

  // bit[j]: binary consensus deciding bit j of the final value, walked from
  // the most significant bit down.
  const zoo::ConsensusLayout bin;
  const auto bin_spec =
      std::make_shared<const TypeSpec>(zoo::consensus_type(n));
  std::vector<int> bit;
  for (int j = 0; j < bits; ++j) {
    bit.push_back(impl->add_base(bin_spec, bin.bottom(), all_ports));
  }

  constexpr int kCand = 0;
  constexpr int kBit = 1;
  constexpr int kTmp = 2;
  for (int p = 0; p < n; ++p) {
    for (int v = 0; v < values; ++v) {
      ProgramBuilder b;
      b.invoke(announce[static_cast<std::size_t>(p)], lit(ann.write(v)),
               kTmp);
      b.assign(kCand, lit(v));
      for (int j = bits - 1; j >= 0; --j) {
        // Propose bit j of the current candidate.
        b.invoke(bit[static_cast<std::size_t>(j)],
                 (reg(kCand) / lit(1 << j)) % lit(2), kBit);
        const Label keep = b.make_label();
        b.branch_if((reg(kCand) / lit(1 << j)) % lit(2) == reg(kBit), keep);
        // Adopt an announced value whose bits above AND AT position j match
        // the decided prefix: target = (cand >> (j+1)) * 2 + decided_bit.
        const int shift = 1 << j;
        const Label adopted = b.make_label();
        for (int q = 0; q < n; ++q) {
          if (q == p) continue;
          b.invoke(announce[static_cast<std::size_t>(q)], lit(ann.read()),
                   kTmp);
          const Label next_q = b.make_label();
          b.branch_if(reg(kTmp) == lit(none), next_q);
          b.branch_if(!(reg(kTmp) / lit(shift) ==
                        (reg(kCand) / lit(2 * shift)) * lit(2) + reg(kBit)),
                      next_q);
          b.assign(kCand, reg(kTmp));
          b.jump(adopted);
          b.bind(next_q);
        }
        b.fail("multivalued consensus: no announced value matches the "
               "decided prefix (impossible)");
        b.bind(adopted);
        b.bind(keep);
      }
      b.ret(reg(kCand));
      impl->set_program(iface_lay.propose(v), p,
                        b.build("mv_propose" + std::to_string(v) + "_p" +
                                std::to_string(p)));
    }
  }
  return impl;
}

}  // namespace wfregs::consensus
